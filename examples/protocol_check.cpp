// File-driven verification, the way an end user would drive the library:
// parse a .net description, run generalized partial-order analysis, fall
// back to an exhaustive check for the counterexample trace, and export the
// net as Graphviz DOT.
//
//   $ ./example_protocol_check examples/nets/overtake3.net
//   $ ./example_protocol_check my_protocol.net out.dot
#include <fstream>
#include <iostream>
#include <optional>

#include "core/gpo.hpp"
#include "parser/net_format.hpp"
#include "petri/dot.hpp"
#include "reach/explorer.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <file.net> [out.dot]\n";
    return 2;
  }

  std::optional<gpo::petri::PetriNet> loaded;
  try {
    loaded = gpo::parser::parse_net_file(argv[1]);
  } catch (const std::exception& e) {
    std::cerr << "failed to load " << argv[1] << ": " << e.what() << "\n";
    return 1;
  }
  const gpo::petri::PetriNet& net = *loaded;
  std::cout << "loaded '" << net.name() << "': " << net.place_count()
            << " places, " << net.transition_count() << " transitions, "
            << net.initial_marking().count() << " initial tokens\n";

  auto result = gpo::core::run_gpo(net, gpo::core::FamilyKind::kBdd);
  std::cout << "GPO: " << result.state_count << " states, "
            << (result.deadlock_found ? "DEADLOCK" : "no deadlock") << " ("
            << result.seconds << "s";
  if (result.delegated_states > 0)
    std::cout << ", +" << result.delegated_states
              << " delegated classical states";
  std::cout << ")\n";

  if (result.deadlock_found) {
    std::cout << "dead marking: "
              << gpo::reach::marking_to_string(net, *result.deadlock_witness)
              << "\n";
    // Reconstruct a concrete firing sequence with the exhaustive engine.
    gpo::reach::ExplorerOptions eo;
    eo.stop_at_first_deadlock = true;
    eo.max_states = 5'000'000;
    auto ground = gpo::reach::ExplicitExplorer(net, eo).explore();
    if (ground.deadlock_found) {
      std::cout << "replayable trace:";
      for (auto t : ground.counterexample)
        std::cout << " " << net.transition(t).name;
      std::cout << "\n";
    }
  }

  if (argc > 2) {
    std::ofstream out(argv[2]);
    gpo::petri::write_net_dot(out, net);
    std::cout << "wrote DOT to " << argv[2] << "\n";
  }
  return result.deadlock_found ? 10 : 0;
}
