// Quickstart: build a safe Petri net with the public API, check it for
// deadlock with generalized partial-order analysis, and inspect the witness.
//
//   $ ./example_quickstart
//
// The net models two workers that each grab two shared tools in opposite
// order — the textbook recipe for a deadlock.
#include <iostream>

#include "core/gpo.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

int main() {
  using namespace gpo;

  // 1. Describe the net. Places hold at most one token (safe nets);
  //    transitions consume from every input place and fill every output.
  petri::NetBuilder builder("two_workers");
  auto idle_a = builder.add_place("idle_a", /*marked=*/true);
  auto idle_b = builder.add_place("idle_b", /*marked=*/true);
  auto tool1 = builder.add_place("tool1", /*marked=*/true);
  auto tool2 = builder.add_place("tool2", /*marked=*/true);
  auto has1_a = builder.add_place("a_has_tool1");
  auto has2_b = builder.add_place("b_has_tool2");
  auto done_a = builder.add_place("done_a");
  auto done_b = builder.add_place("done_b");

  // Worker A grabs tool1 then tool2; worker B grabs tool2 then tool1.
  auto grab1_a = builder.add_transition("a_grabs_tool1");
  builder.connect(grab1_a, {idle_a, tool1}, {has1_a});
  auto grab2_a = builder.add_transition("a_grabs_tool2");
  builder.connect(grab2_a, {has1_a, tool2}, {done_a, tool1, tool2});
  auto grab2_b = builder.add_transition("b_grabs_tool2");
  builder.connect(grab2_b, {idle_b, tool2}, {has2_b});
  auto grab1_b = builder.add_transition("b_grabs_tool1");
  builder.connect(grab1_b, {has2_b, tool1}, {done_b, tool1, tool2});

  petri::PetriNet net = builder.build();
  std::cout << "net '" << net.name() << "': " << net.place_count()
            << " places, " << net.transition_count() << " transitions\n";

  // 2. Run generalized partial-order analysis. FamilyKind::kBdd picks the
  //    BDD-backed valid-set representation (scales to large conflict counts);
  //    kExplicit is the simpler enumerated one.
  core::GpoResult result = core::run_gpo(net, core::FamilyKind::kBdd);

  std::cout << "explored " << result.state_count << " GPN states ("
            << result.multiple_steps << " simultaneous steps, "
            << result.single_steps << " single steps)\n";

  // 3. Inspect the verdict.
  if (result.deadlock_found) {
    std::cout << "DEADLOCK: "
              << reach::marking_to_string(net, *result.deadlock_witness)
              << "\n";
  } else {
    std::cout << "no deadlock reachable\n";
  }

  // 4. Cross-check with exhaustive search (feasible here — tiny net).
  auto ground = reach::ExplicitExplorer(net).explore();
  std::cout << "exhaustive search: " << ground.state_count << " markings, "
            << (ground.deadlock_found ? "deadlock" : "no deadlock") << "\n";
  if (ground.deadlock_found) {
    std::cout << "shortest counterexample:";
    for (auto t : ground.counterexample)
      std::cout << " " << net.transition(t).name;
    std::cout << "\n";
  }
  return result.deadlock_found == ground.deadlock_found ? 0 : 1;
}
