// Timed verification — the extension the paper names as future work: the
// same handshake protocol analyzed untimed (deadlock reachable) and timed
// (the deadlock depends on a timeout constant). State classes follow
// Berthomieu–Diaz.
//
//   $ ./example_timed_analysis
#include <iostream>

#include "petri/builder.hpp"
#include "reach/explorer.hpp"
#include "timed/timed_net.hpp"

int main() {
  using namespace gpo;

  // A requester sends a request and waits; the server replies within its
  // processing time; the requester times out if the reply is late and
  // retires. If the reply arrives after the timeout it is never consumed —
  // a deadlock that exists only for some timing constants.
  petri::NetBuilder b("timeout_protocol");
  auto idle = b.add_place("idle", true);
  auto waiting = b.add_place("waiting");
  auto req = b.add_place("req");
  auto reply = b.add_place("reply");
  auto done = b.add_place("done");
  auto gave_up = b.add_place("gave_up");
  auto srv_idle = b.add_place("srv_idle", true);

  auto send = b.add_transition("send");
  b.connect(send, {idle}, {waiting, req});
  auto serve = b.add_transition("serve");
  b.connect(serve, {req, srv_idle}, {reply});
  auto recv = b.add_transition("recv");
  b.connect(recv, {waiting, reply}, {done, srv_idle});
  auto reset = b.add_transition("reset");
  b.connect(reset, {done}, {idle});
  auto timeout = b.add_transition("timeout");
  b.connect(timeout, {waiting}, {gave_up});
  petri::PetriNet net = b.build();

  auto untimed = reach::ExplicitExplorer(net).explore();
  std::cout << "untimed: " << untimed.state_count << " markings, "
            << (untimed.deadlock_found ? "deadlock reachable"
                                       : "no deadlock")
            << " (timeout may fire before the reply arrives)\n\n";

  auto analyze = [&](std::int64_t serve_max, std::int64_t timeout_min,
                     const char* label) {
    std::vector<timed::TimeInterval> iv(net.transition_count());
    iv[send] = {0, timed::Bound{1, false}};
    iv[serve] = {1, timed::Bound{serve_max, false}};
    iv[recv] = {0, timed::Bound{0, false}};
    iv[reset] = {0, timed::Bound{1, false}};
    iv[timeout] = {timeout_min, timed::Bound{timeout_min + 1, false}};
    timed::TimedNet tnet(net, iv);
    auto r = timed::StateClassExplorer(tnet).explore();
    std::cout << label << ": serve in [1," << serve_max << "], timeout at ["
              << timeout_min << "," << timeout_min + 1 << "]\n"
              << "  " << r.class_count << " state classes, "
              << r.distinct_markings << " distinct markings, "
              << (r.deadlock_found ? "DEADLOCK" : "no deadlock") << "\n";
    if (r.deadlock_found) {
      std::cout << "  trace:";
      for (auto t : r.counterexample)
        std::cout << " " << net.transition(t).name;
      std::cout << "\n";
    }
  };

  // Generous timeout: the server always beats it; the protocol is safe.
  analyze(3, 10, "generous timeout");
  // Aggressive timeout: the requester can give up while the reply is still
  // in flight — the timed deadlock appears.
  analyze(5, 3, "aggressive timeout");
  return 0;
}
