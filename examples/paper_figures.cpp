// Companion to Section 3 of the paper: replays the Figure 3 and Figure 7
// walkthroughs step by step, printing the GPN markings, the enabling
// families and the valid-set conditioning, so the multiple-firing semantics
// can be followed on the same examples the paper uses.
//
//   $ ./example_paper_figures
#include <iostream>

#include "core/gpn_analyzer.hpp"
#include "models/models.hpp"
#include "reach/explorer.hpp"

namespace {

using namespace gpo;
using Family = core::ExplicitFamily;
using State = core::GpnState<Family>;

std::string family_to_string(const petri::PetriNet& net, const Family& f) {
  std::string out = "{";
  bool first_set = true;
  for (const core::TransitionSet& v : f.members(16)) {
    if (!first_set) out += ", ";
    first_set = false;
    out += "{";
    bool first = true;
    for (std::size_t t = v.find_first(); t < v.size();
         t = v.find_next(t + 1)) {
      if (!first) out += ",";
      first = false;
      out += net.transition(static_cast<petri::TransitionId>(t)).name;
    }
    out += "}";
  }
  return out + "}";
}

void print_state(const petri::PetriNet& net,
                 const core::GpnAnalyzer<Family>& an, const State& s) {
  for (petri::PlaceId p = 0; p < net.place_count(); ++p) {
    if (s.marking[p].is_empty()) continue;
    std::cout << "    m(" << net.place(p).name
              << ") = " << family_to_string(net, s.marking[p]) << "\n";
  }
  std::cout << "    r = " << family_to_string(net, s.r) << "\n";
  std::cout << "    mapping = ";
  for (const auto& m : an.mapping(s))
    std::cout << reach::marking_to_string(net, m) << " ";
  std::cout << "\n";
}

void figure3() {
  std::cout << "=== Figure 3: colored tokens block transition D ===\n";
  auto net = models::make_fig3();
  Family::Context ctx(net.transition_count());
  core::GpnAnalyzer<Family> an(net, ctx);
  auto A = net.find_transition("A");
  auto B = net.find_transition("B");
  auto C = net.find_transition("C");
  auto D = net.find_transition("D");

  State s0 = an.initial_state();
  std::cout << "  initial state (p1 holds the 'white' token = r0):\n";
  print_state(net, an, s0);

  std::cout << "  firing A and B simultaneously (multiple firing rule):\n";
  State s1 = an.m_update(s0, {A, B});
  print_state(net, an, s1);
  std::cout << "  D's inputs now hold conflicting colors:\n"
            << "    m_enabled(D) = " << family_to_string(net, an.m_enabled(D, s1))
            << "  -> D cannot fire\n"
            << "    m_enabled(C) = " << family_to_string(net, an.m_enabled(C, s1))
            << "  -> C fires\n";
  if (auto w = an.deadlock_witness(s1))
    std::cout << "  deadlock possibility already visible here: "
              << reach::marking_to_string(net, *w)
              << " (the B branch: its token is stuck in p4)\n";

  State s2 = an.m_update(s1, {C});
  std::cout << "  after firing C (the dead B scenarios leave r):\n";
  print_state(net, an, s2);
}

void figure7() {
  std::cout << "\n=== Figure 7: extended conflicts shrink the valid sets ===\n";
  auto net = models::make_fig7();
  Family::Context ctx(net.transition_count());
  core::GpnAnalyzer<Family> an(net, ctx);
  auto A = net.find_transition("A");
  auto B = net.find_transition("B");
  auto C = net.find_transition("C");
  auto D = net.find_transition("D");

  State s0 = an.initial_state();
  std::cout << "  initial state <m0,r0>:\n";
  print_state(net, an, s0);
  std::cout << "  m_enabled(A) = " << family_to_string(net, an.m_enabled(A, s0))
            << "\n  m_enabled(B) = " << family_to_string(net, an.m_enabled(B, s0))
            << "\n";

  State s1 = an.m_update(s0, {A, B});
  std::cout << "  after firing {A,B} simultaneously (r1 = r0):\n";
  print_state(net, an, s1);

  State s2 = an.m_update(s1, {C, D});
  std::cout << "  after firing {C,D}: A/D and B/C are now 'extended\n"
               "  conflicts', so r2 keeps only {A,C} and {B,D}:\n";
  print_state(net, an, s2);
}

}  // namespace

int main() {
  figure3();
  figure7();
  return 0;
}
