// The paper's flagship workload: the non-serialized dining philosophers
// (NSDP). Runs all four engines side by side and shows why generalized
// partial-order analysis wins — its state count does not grow with the
// number of philosophers while every other engine's does.
//
//   $ ./example_dining_philosophers [max_n]
#include <iomanip>
#include <iostream>

#include "bdd/symbolic_reach.hpp"
#include "core/gpo.hpp"
#include "models/models.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"

int main(int argc, char** argv) {
  std::size_t max_n = 8;
  if (argc > 1) {
    try {
      max_n = std::stoul(argv[1]);
    } catch (const std::exception&) {
      std::cerr << "usage: " << argv[0] << " [count]\n";
      return 2;
    }
  }

  std::cout << "Non-serialized dining philosophers: each philosopher may\n"
               "grab either fork first, so 'everyone holds one fork' is a\n"
               "reachable deadlock.\n\n";
  std::cout << std::setw(4) << "n" << std::setw(12) << "full"   //
            << std::setw(12) << "stubborn" << std::setw(12) << "bdd-peak"
            << std::setw(12) << "GPO" << std::setw(11) << "deadlock" << "\n"
            << std::string(63, '-') << "\n";

  for (std::size_t n = 2; n <= max_n; n += 2) {
    auto net = gpo::models::make_nsdp(n);

    gpo::reach::ExplorerOptions eo;
    eo.max_states = 2'000'000;
    auto full = gpo::reach::ExplicitExplorer(net, eo).explore();

    auto por = gpo::por::StubbornExplorer(net).explore();

    gpo::bdd::SymbolicOptions so;
    so.max_seconds = 20;
    auto sym = gpo::bdd::SymbolicReachability(net, so).analyze();

    auto g = gpo::core::run_gpo(net, gpo::core::FamilyKind::kBdd);

    std::cout << std::setw(4) << n << std::setw(12)
              << (full.limit_hit ? std::string("> cap")
                                 : std::to_string(full.state_count))
              << std::setw(12) << por.state_count << std::setw(12)
              << (sym.blowup ? std::string("> cap")
                             : std::to_string(sym.peak_nodes))
              << std::setw(12) << g.state_count << std::setw(11)
              << (g.deadlock_found ? "yes" : "no") << "\n";
  }

  // Show one concrete deadlock with its firing sequence.
  auto net = gpo::models::make_nsdp(4);
  auto g = gpo::core::run_gpo(net, gpo::core::FamilyKind::kBdd);
  if (g.deadlock_found) {
    std::cout << "\nGPO deadlock witness for n=4: "
              << gpo::reach::marking_to_string(net, *g.deadlock_witness)
              << "\n";
  }
  auto ground = gpo::reach::ExplicitExplorer(net).explore();
  std::cout << "one shortest path into deadlock:";
  for (auto t : ground.counterexample)
    std::cout << " " << net.transition(t).name;
  std::cout << "\n";
  return 0;
}
