// Safety verification end to end: does the asynchronous arbiter tree
// guarantee mutual exclusion? The check runs through the paper's
// safety-to-deadlock reduction (Section 4's remark) on every engine, after a
// structural pre-analysis (siphons/traps, invariants) that is free of any
// state-space exploration.
//
//   $ ./example_mutex_safety [clients]
#include <iostream>

#include "models/models.hpp"
#include "petri/structure.hpp"
#include "reach/explorer.hpp"
#include "safety/safety.hpp"

int main(int argc, char** argv) {
  std::size_t n = 4;
  if (argc > 1) {
    try {
      n = std::stoul(argv[1]);
    } catch (const std::exception&) {
      std::cerr << "usage: " << argv[0] << " [count]\n";
      return 2;
    }
  }
  auto net = gpo::models::make_arbiter_tree(n);
  std::cout << "arbiter tree with " << n << " clients: " << net.place_count()
            << " places, " << net.transition_count() << " transitions\n\n";

  // Structural pre-analysis: certificates that need no exploration.
  std::cout << "structural analysis:\n";
  auto stp = gpo::petri::siphon_trap_property(net);
  std::cout << "  siphon-trap property: "
            << (stp.holds ? "holds (every siphon stays marked)" : "fails")
            << "\n";
  auto flows = gpo::petri::place_semiflows(net);
  auto certified = gpo::petri::safeness_certified_places(net, flows);
  std::cout << "  " << flows.size() << " place semiflows certify "
            << certified.count() << "/" << net.place_count()
            << " places 1-safe\n\n";

  // The property: clients at leaves n and n+1 are never both critical.
  gpo::safety::SafetyProperty prop{
      {net.find_place("crit_" + std::to_string(n)),
       net.find_place("crit_" + std::to_string(n + 1))}};

  std::cout << "mutual exclusion of crit_" << n << " and crit_" << n + 1
            << " via the deadlock reduction:\n";
  using gpo::safety::Engine;
  for (auto [engine, name] :
       {std::pair{Engine::kExplicit, "exhaustive"},
        std::pair{Engine::kStubborn, "stubborn  "},
        std::pair{Engine::kSymbolic, "symbolic  "},
        std::pair{Engine::kGpoBdd, "gpo (bdd) "}}) {
    gpo::safety::SafetyOptions opt;
    opt.engine = engine;
    opt.max_seconds = 60;
    auto r = gpo::safety::check_safety(net, prop, opt);
    std::cout << "  " << name << ": "
              << (r.violated ? "VIOLATED" : "holds") << " ("
              << r.states_explored << " states, " << r.seconds << "s)\n";
  }

  // Sanity: a property that is genuinely violated — some client does reach
  // its critical section.
  gpo::safety::SafetyProperty reachable{
      {net.find_place("crit_" + std::to_string(n))}};
  auto r = gpo::safety::check_safety(net, reachable,
                                     {gpo::safety::Engine::kGpoBdd});
  std::cout << "\ncontrol check — 'crit_" << n << " is never marked': "
            << (r.violated ? "correctly refuted" : "UNEXPECTEDLY held");
  if (r.witness)
    std::cout << " with witness "
              << gpo::reach::marking_to_string(net, *r.witness);
  std::cout << "\n";
  return 0;
}
