# Empty dependencies file for gpo_petri.
# This may be replaced when dependencies are built.
