file(REMOVE_RECURSE
  "libgpo_petri.a"
)
