
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petri/builder.cpp" "src/petri/CMakeFiles/gpo_petri.dir/builder.cpp.o" "gcc" "src/petri/CMakeFiles/gpo_petri.dir/builder.cpp.o.d"
  "/root/repo/src/petri/conflict.cpp" "src/petri/CMakeFiles/gpo_petri.dir/conflict.cpp.o" "gcc" "src/petri/CMakeFiles/gpo_petri.dir/conflict.cpp.o.d"
  "/root/repo/src/petri/dot.cpp" "src/petri/CMakeFiles/gpo_petri.dir/dot.cpp.o" "gcc" "src/petri/CMakeFiles/gpo_petri.dir/dot.cpp.o.d"
  "/root/repo/src/petri/net.cpp" "src/petri/CMakeFiles/gpo_petri.dir/net.cpp.o" "gcc" "src/petri/CMakeFiles/gpo_petri.dir/net.cpp.o.d"
  "/root/repo/src/petri/structure.cpp" "src/petri/CMakeFiles/gpo_petri.dir/structure.cpp.o" "gcc" "src/petri/CMakeFiles/gpo_petri.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
