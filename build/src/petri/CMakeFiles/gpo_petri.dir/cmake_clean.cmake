file(REMOVE_RECURSE
  "CMakeFiles/gpo_petri.dir/builder.cpp.o"
  "CMakeFiles/gpo_petri.dir/builder.cpp.o.d"
  "CMakeFiles/gpo_petri.dir/conflict.cpp.o"
  "CMakeFiles/gpo_petri.dir/conflict.cpp.o.d"
  "CMakeFiles/gpo_petri.dir/dot.cpp.o"
  "CMakeFiles/gpo_petri.dir/dot.cpp.o.d"
  "CMakeFiles/gpo_petri.dir/net.cpp.o"
  "CMakeFiles/gpo_petri.dir/net.cpp.o.d"
  "CMakeFiles/gpo_petri.dir/structure.cpp.o"
  "CMakeFiles/gpo_petri.dir/structure.cpp.o.d"
  "libgpo_petri.a"
  "libgpo_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
