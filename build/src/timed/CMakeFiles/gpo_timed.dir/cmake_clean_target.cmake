file(REMOVE_RECURSE
  "libgpo_timed.a"
)
