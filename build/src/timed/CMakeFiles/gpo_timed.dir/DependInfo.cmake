
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timed/parse.cpp" "src/timed/CMakeFiles/gpo_timed.dir/parse.cpp.o" "gcc" "src/timed/CMakeFiles/gpo_timed.dir/parse.cpp.o.d"
  "/root/repo/src/timed/timed_net.cpp" "src/timed/CMakeFiles/gpo_timed.dir/timed_net.cpp.o" "gcc" "src/timed/CMakeFiles/gpo_timed.dir/timed_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/petri/CMakeFiles/gpo_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/gpo_parser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
