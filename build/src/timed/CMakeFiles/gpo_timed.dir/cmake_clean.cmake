file(REMOVE_RECURSE
  "CMakeFiles/gpo_timed.dir/parse.cpp.o"
  "CMakeFiles/gpo_timed.dir/parse.cpp.o.d"
  "CMakeFiles/gpo_timed.dir/timed_net.cpp.o"
  "CMakeFiles/gpo_timed.dir/timed_net.cpp.o.d"
  "libgpo_timed.a"
  "libgpo_timed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_timed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
