# Empty dependencies file for gpo_timed.
# This may be replaced when dependencies are built.
