# Empty dependencies file for gpo_mc.
# This may be replaced when dependencies are built.
