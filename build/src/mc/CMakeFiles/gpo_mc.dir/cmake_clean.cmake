file(REMOVE_RECURSE
  "CMakeFiles/gpo_mc.dir/ctl.cpp.o"
  "CMakeFiles/gpo_mc.dir/ctl.cpp.o.d"
  "libgpo_mc.a"
  "libgpo_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
