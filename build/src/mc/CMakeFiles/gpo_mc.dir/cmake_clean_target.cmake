file(REMOVE_RECURSE
  "libgpo_mc.a"
)
