# Empty dependencies file for gpo_por.
# This may be replaced when dependencies are built.
