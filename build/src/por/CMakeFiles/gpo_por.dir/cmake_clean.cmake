file(REMOVE_RECURSE
  "CMakeFiles/gpo_por.dir/stubborn.cpp.o"
  "CMakeFiles/gpo_por.dir/stubborn.cpp.o.d"
  "libgpo_por.a"
  "libgpo_por.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_por.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
