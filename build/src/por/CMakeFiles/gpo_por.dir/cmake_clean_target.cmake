file(REMOVE_RECURSE
  "libgpo_por.a"
)
