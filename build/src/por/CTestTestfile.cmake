# CMake generated Testfile for 
# Source directory: /root/repo/src/por
# Build directory: /root/repo/build/src/por
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
