file(REMOVE_RECURSE
  "libgpo_models.a"
)
