file(REMOVE_RECURSE
  "CMakeFiles/gpo_models.dir/models.cpp.o"
  "CMakeFiles/gpo_models.dir/models.cpp.o.d"
  "libgpo_models.a"
  "libgpo_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
