# Empty dependencies file for gpo_models.
# This may be replaced when dependencies are built.
