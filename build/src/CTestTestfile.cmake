# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("petri")
subdirs("parser")
subdirs("reach")
subdirs("por")
subdirs("bdd")
subdirs("core")
subdirs("safety")
subdirs("timed")
subdirs("mc")
subdirs("unfold")
subdirs("models")
subdirs("cli")
