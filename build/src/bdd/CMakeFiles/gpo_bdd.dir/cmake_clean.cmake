file(REMOVE_RECURSE
  "CMakeFiles/gpo_bdd.dir/bdd.cpp.o"
  "CMakeFiles/gpo_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/gpo_bdd.dir/symbolic_reach.cpp.o"
  "CMakeFiles/gpo_bdd.dir/symbolic_reach.cpp.o.d"
  "libgpo_bdd.a"
  "libgpo_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
