# Empty compiler generated dependencies file for gpo_bdd.
# This may be replaced when dependencies are built.
