file(REMOVE_RECURSE
  "libgpo_bdd.a"
)
