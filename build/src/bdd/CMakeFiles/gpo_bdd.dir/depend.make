# Empty dependencies file for gpo_bdd.
# This may be replaced when dependencies are built.
