file(REMOVE_RECURSE
  "CMakeFiles/julie.dir/julie_main.cpp.o"
  "CMakeFiles/julie.dir/julie_main.cpp.o.d"
  "julie"
  "julie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/julie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
