# Empty compiler generated dependencies file for julie.
# This may be replaced when dependencies are built.
