
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/net_format.cpp" "src/parser/CMakeFiles/gpo_parser.dir/net_format.cpp.o" "gcc" "src/parser/CMakeFiles/gpo_parser.dir/net_format.cpp.o.d"
  "/root/repo/src/parser/pnml.cpp" "src/parser/CMakeFiles/gpo_parser.dir/pnml.cpp.o" "gcc" "src/parser/CMakeFiles/gpo_parser.dir/pnml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/petri/CMakeFiles/gpo_petri.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
