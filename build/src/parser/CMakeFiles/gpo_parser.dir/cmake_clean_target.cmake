file(REMOVE_RECURSE
  "libgpo_parser.a"
)
