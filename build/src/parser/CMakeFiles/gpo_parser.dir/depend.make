# Empty dependencies file for gpo_parser.
# This may be replaced when dependencies are built.
