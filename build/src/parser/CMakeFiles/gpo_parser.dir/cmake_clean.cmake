file(REMOVE_RECURSE
  "CMakeFiles/gpo_parser.dir/net_format.cpp.o"
  "CMakeFiles/gpo_parser.dir/net_format.cpp.o.d"
  "CMakeFiles/gpo_parser.dir/pnml.cpp.o"
  "CMakeFiles/gpo_parser.dir/pnml.cpp.o.d"
  "libgpo_parser.a"
  "libgpo_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
