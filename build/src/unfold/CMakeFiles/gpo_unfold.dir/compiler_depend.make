# Empty compiler generated dependencies file for gpo_unfold.
# This may be replaced when dependencies are built.
