file(REMOVE_RECURSE
  "CMakeFiles/gpo_unfold.dir/unfolding.cpp.o"
  "CMakeFiles/gpo_unfold.dir/unfolding.cpp.o.d"
  "libgpo_unfold.a"
  "libgpo_unfold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_unfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
