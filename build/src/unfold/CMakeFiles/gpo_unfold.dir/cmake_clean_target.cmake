file(REMOVE_RECURSE
  "libgpo_unfold.a"
)
