# Empty compiler generated dependencies file for gpo_reach.
# This may be replaced when dependencies are built.
