file(REMOVE_RECURSE
  "CMakeFiles/gpo_reach.dir/explorer.cpp.o"
  "CMakeFiles/gpo_reach.dir/explorer.cpp.o.d"
  "libgpo_reach.a"
  "libgpo_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
