file(REMOVE_RECURSE
  "libgpo_reach.a"
)
