file(REMOVE_RECURSE
  "libgpo_core.a"
)
