# Empty dependencies file for gpo_core.
# This may be replaced when dependencies are built.
