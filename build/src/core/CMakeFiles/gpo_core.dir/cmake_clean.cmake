file(REMOVE_RECURSE
  "CMakeFiles/gpo_core.dir/gpo.cpp.o"
  "CMakeFiles/gpo_core.dir/gpo.cpp.o.d"
  "CMakeFiles/gpo_core.dir/set_family.cpp.o"
  "CMakeFiles/gpo_core.dir/set_family.cpp.o.d"
  "libgpo_core.a"
  "libgpo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
