file(REMOVE_RECURSE
  "CMakeFiles/gpo_safety.dir/safety.cpp.o"
  "CMakeFiles/gpo_safety.dir/safety.cpp.o.d"
  "libgpo_safety.a"
  "libgpo_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpo_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
