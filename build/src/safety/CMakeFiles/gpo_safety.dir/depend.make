# Empty dependencies file for gpo_safety.
# This may be replaced when dependencies are built.
