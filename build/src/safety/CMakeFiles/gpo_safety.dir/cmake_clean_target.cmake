file(REMOVE_RECURSE
  "libgpo_safety.a"
)
