file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_conflict_chain.dir/fig2_conflict_chain_main.cpp.o"
  "CMakeFiles/bench_fig2_conflict_chain.dir/fig2_conflict_chain_main.cpp.o.d"
  "bench_fig2_conflict_chain"
  "bench_fig2_conflict_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_conflict_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
