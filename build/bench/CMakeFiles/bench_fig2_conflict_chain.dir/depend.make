# Empty dependencies file for bench_fig2_conflict_chain.
# This may be replaced when dependencies are built.
