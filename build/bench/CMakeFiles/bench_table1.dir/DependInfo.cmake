
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_main.cpp" "bench/CMakeFiles/bench_table1.dir/table1_main.cpp.o" "gcc" "bench/CMakeFiles/bench_table1.dir/table1_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/por/CMakeFiles/gpo_por.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/gpo_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/reach/CMakeFiles/gpo_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gpo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/gpo_petri.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
