file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_diamond.dir/fig1_diamond_main.cpp.o"
  "CMakeFiles/bench_fig1_diamond.dir/fig1_diamond_main.cpp.o.d"
  "bench_fig1_diamond"
  "bench_fig1_diamond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_diamond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
