# Empty dependencies file for bench_fig1_diamond.
# This may be replaced when dependencies are built.
