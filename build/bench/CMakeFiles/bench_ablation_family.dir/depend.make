# Empty dependencies file for bench_ablation_family.
# This may be replaced when dependencies are built.
