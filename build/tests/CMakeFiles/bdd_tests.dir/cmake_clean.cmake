file(REMOVE_RECURSE
  "CMakeFiles/bdd_tests.dir/bdd/bdd_test.cpp.o"
  "CMakeFiles/bdd_tests.dir/bdd/bdd_test.cpp.o.d"
  "CMakeFiles/bdd_tests.dir/bdd/symbolic_test.cpp.o"
  "CMakeFiles/bdd_tests.dir/bdd/symbolic_test.cpp.o.d"
  "bdd_tests"
  "bdd_tests.pdb"
  "bdd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
