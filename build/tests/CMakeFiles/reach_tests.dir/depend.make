# Empty dependencies file for reach_tests.
# This may be replaced when dependencies are built.
