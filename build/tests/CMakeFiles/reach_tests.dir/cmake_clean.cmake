file(REMOVE_RECURSE
  "CMakeFiles/reach_tests.dir/reach/explorer_test.cpp.o"
  "CMakeFiles/reach_tests.dir/reach/explorer_test.cpp.o.d"
  "reach_tests"
  "reach_tests.pdb"
  "reach_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
