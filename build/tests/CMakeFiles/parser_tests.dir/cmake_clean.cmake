file(REMOVE_RECURSE
  "CMakeFiles/parser_tests.dir/parser/net_format_test.cpp.o"
  "CMakeFiles/parser_tests.dir/parser/net_format_test.cpp.o.d"
  "CMakeFiles/parser_tests.dir/parser/pnml_test.cpp.o"
  "CMakeFiles/parser_tests.dir/parser/pnml_test.cpp.o.d"
  "parser_tests"
  "parser_tests.pdb"
  "parser_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
