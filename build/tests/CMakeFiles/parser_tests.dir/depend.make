# Empty dependencies file for parser_tests.
# This may be replaced when dependencies are built.
