file(REMOVE_RECURSE
  "CMakeFiles/por_tests.dir/por/stubborn_test.cpp.o"
  "CMakeFiles/por_tests.dir/por/stubborn_test.cpp.o.d"
  "por_tests"
  "por_tests.pdb"
  "por_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/por_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
