# Empty dependencies file for por_tests.
# This may be replaced when dependencies are built.
