# Empty compiler generated dependencies file for timed_tests.
# This may be replaced when dependencies are built.
