file(REMOVE_RECURSE
  "CMakeFiles/timed_tests.dir/timed/timed_test.cpp.o"
  "CMakeFiles/timed_tests.dir/timed/timed_test.cpp.o.d"
  "timed_tests"
  "timed_tests.pdb"
  "timed_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
