
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/safety/safety_test.cpp" "tests/CMakeFiles/safety_tests.dir/safety/safety_test.cpp.o" "gcc" "tests/CMakeFiles/safety_tests.dir/safety/safety_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/gpo_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/timed/CMakeFiles/gpo_timed.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/gpo_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/unfold/CMakeFiles/gpo_unfold.dir/DependInfo.cmake"
  "/root/repo/build/src/por/CMakeFiles/gpo_por.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/gpo_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/reach/CMakeFiles/gpo_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gpo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/gpo_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/gpo_petri.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
