file(REMOVE_RECURSE
  "CMakeFiles/mc_tests.dir/mc/ctl_test.cpp.o"
  "CMakeFiles/mc_tests.dir/mc/ctl_test.cpp.o.d"
  "mc_tests"
  "mc_tests.pdb"
  "mc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
