# Empty compiler generated dependencies file for petri_tests.
# This may be replaced when dependencies are built.
