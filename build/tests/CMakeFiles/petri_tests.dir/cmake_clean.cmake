file(REMOVE_RECURSE
  "CMakeFiles/petri_tests.dir/petri/conflict_test.cpp.o"
  "CMakeFiles/petri_tests.dir/petri/conflict_test.cpp.o.d"
  "CMakeFiles/petri_tests.dir/petri/net_test.cpp.o"
  "CMakeFiles/petri_tests.dir/petri/net_test.cpp.o.d"
  "CMakeFiles/petri_tests.dir/petri/structure_test.cpp.o"
  "CMakeFiles/petri_tests.dir/petri/structure_test.cpp.o.d"
  "petri_tests"
  "petri_tests.pdb"
  "petri_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petri_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
