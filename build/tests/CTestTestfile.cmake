# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/petri_tests[1]_include.cmake")
include("/root/repo/build/tests/parser_tests[1]_include.cmake")
include("/root/repo/build/tests/reach_tests[1]_include.cmake")
include("/root/repo/build/tests/por_tests[1]_include.cmake")
include("/root/repo/build/tests/bdd_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/safety_tests[1]_include.cmake")
include("/root/repo/build/tests/mc_tests[1]_include.cmake")
include("/root/repo/build/tests/timed_tests[1]_include.cmake")
include("/root/repo/build/tests/unfold_tests[1]_include.cmake")
include("/root/repo/build/tests/models_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
add_test(cli_engines_fig7 "/root/repo/build/src/cli/julie" "--model" "fig7" "--engine" "all")
set_tests_properties(cli_engines_fig7 PROPERTIES  PASS_REGULAR_EXPRESSION "gpo-bdd: states=3 DEADLOCK" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;59;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_safety_holds "/root/repo/build/src/cli/julie" "--model" "asat:2" "--safety" "crit_2,crit_3")
set_tests_properties(cli_safety_holds PROPERTIES  PASS_REGULAR_EXPRESSION "holds" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;62;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_safety_violated "/root/repo/build/src/cli/julie" "--model" "nsdp:2" "--safety" "hasL_0,hasL_1")
set_tests_properties(cli_safety_violated PROPERTIES  PASS_REGULAR_EXPRESSION "VIOLATED" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;65;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_ctl "/root/repo/build/src/cli/julie" "--model" "asat:2" "--ctl" "AG !(crit_2 && crit_3)")
set_tests_properties(cli_ctl PROPERTIES  PASS_REGULAR_EXPRESSION "holds" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;68;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_structure "/root/repo/build/src/cli/julie" "--model" "nsdp:3" "--structure" "--engine" "gpo-bdd")
set_tests_properties(cli_structure PROPERTIES  PASS_REGULAR_EXPRESSION "siphon-trap property: FAILS" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bad_model "/root/repo/build/src/cli/julie" "--model" "nosuch:3")
set_tests_properties(cli_bad_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
