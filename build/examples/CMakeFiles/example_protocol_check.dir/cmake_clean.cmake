file(REMOVE_RECURSE
  "CMakeFiles/example_protocol_check.dir/protocol_check.cpp.o"
  "CMakeFiles/example_protocol_check.dir/protocol_check.cpp.o.d"
  "example_protocol_check"
  "example_protocol_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_protocol_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
