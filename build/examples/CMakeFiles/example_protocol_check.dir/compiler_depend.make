# Empty compiler generated dependencies file for example_protocol_check.
# This may be replaced when dependencies are built.
