file(REMOVE_RECURSE
  "CMakeFiles/example_timed_analysis.dir/timed_analysis.cpp.o"
  "CMakeFiles/example_timed_analysis.dir/timed_analysis.cpp.o.d"
  "example_timed_analysis"
  "example_timed_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_timed_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
