# Empty dependencies file for example_timed_analysis.
# This may be replaced when dependencies are built.
