file(REMOVE_RECURSE
  "CMakeFiles/example_mutex_safety.dir/mutex_safety.cpp.o"
  "CMakeFiles/example_mutex_safety.dir/mutex_safety.cpp.o.d"
  "example_mutex_safety"
  "example_mutex_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mutex_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
