# Empty dependencies file for example_mutex_safety.
# This may be replaced when dependencies are built.
