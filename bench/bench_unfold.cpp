// Extended comparison (ours): McMillan's finite complete prefix versus the
// engines of Table 1. Unfoldings collapse the *interleaving* dimension
// (concurrent transitions appear once); generalized partial-order analysis
// additionally collapses the *conflict* dimension — the numbers below show
// where each pays off.
#include <iomanip>
#include <iostream>

#include "core/gpo.hpp"
#include "models/models.hpp"
#include "reach/explorer.hpp"
#include "unfold/unfolding.hpp"

int main() {
  std::cout << "Unfolding prefix vs GPO vs full graph\n\n"
            << std::left << std::setw(12) << "model" << std::right
            << std::setw(10) << "full" << std::setw(12) << "events"
            << std::setw(10) << "cutoffs" << std::setw(10) << "GPO" << "\n"
            << std::string(54, '-') << "\n";
  struct Case {
    std::string label;
    gpo::petri::PetriNet net;
  };
  std::vector<Case> cases;
  for (std::size_t n : {4u, 8u, 12u})
    cases.push_back({"diamond" + std::to_string(n),
                     gpo::models::make_diamond(n)});
  for (std::size_t n : {4u, 8u})
    cases.push_back({"chain" + std::to_string(n),
                     gpo::models::make_conflict_chain(n)});
  for (std::size_t n : {2u, 4u})
    cases.push_back({"nsdp" + std::to_string(n), gpo::models::make_nsdp(n)});
  for (std::size_t n : {3u, 4u})
    cases.push_back({"over" + std::to_string(n),
                     gpo::models::make_overtake(n)});
  for (std::size_t n : {4u, 8u})
    cases.push_back({"cysched" + std::to_string(n),
                     gpo::models::make_cyclic_scheduler(n)});
  for (std::size_t n : {4u, 6u})
    cases.push_back({"rw" + std::to_string(n),
                     gpo::models::make_readers_writers(n)});

  for (const Case& c : cases) {
    gpo::reach::ExplorerOptions eo;
    eo.max_states = 5'000'000;
    auto full = gpo::reach::ExplicitExplorer(c.net, eo).explore();
    gpo::unfold::UnfoldOptions uo;
    uo.max_events = 500'000;
    auto prefix = gpo::unfold::unfold(c.net, uo);
    gpo::core::GpoOptions go;
    go.max_seconds = 30;
    auto g = gpo::core::run_gpo(c.net, gpo::core::FamilyKind::kBdd, go);
    std::cout << std::left << std::setw(12) << c.label << std::right
              << std::setw(10)
              << (full.limit_hit ? std::string("> cap")
                                 : std::to_string(full.state_count))
              << std::setw(12)
              << (prefix.limit_hit ? std::string("> cap")
                                   : std::to_string(prefix.events.size()))
              << std::setw(10) << prefix.cutoff_count << std::setw(10)
              << g.state_count << "\n";
  }
  return 0;
}
