// Ablation for DESIGN.md decision 2: the explicit (sorted-vector) set-family
// representation versus the BDD-backed one, on the full GPO analysis and on
// the construction of the initial valid-set family r0 alone. The explicit
// family enumerates every maximal conflict-free set (exponential in the
// number of choice points), the BDD family builds r0 from polynomial-size
// constraints — the measurements below show where the crossover sits.
#include <benchmark/benchmark.h>

#include "core/gpo.hpp"
#include "core/set_family.hpp"
#include "models/models.hpp"
#include "petri/conflict.hpp"

namespace {

using gpo::core::FamilyKind;
using gpo::petri::PetriNet;

PetriNet model_for(int id, int n) {
  switch (id) {
    case 0: return gpo::models::make_nsdp(n);
    case 1: return gpo::models::make_readers_writers(n);
    case 2: return gpo::models::make_conflict_chain(n);
    default: return gpo::models::make_arbiter_tree(n);
  }
}

const char* model_name(int id) {
  switch (id) {
    case 0: return "nsdp";
    case 1: return "rw";
    case 2: return "chain";
    default: return "asat";
  }
}

void BM_GpoAnalysis(benchmark::State& state) {
  FamilyKind kind = state.range(0) == 0 ? FamilyKind::kExplicit
                                        : FamilyKind::kBdd;
  PetriNet net = model_for(static_cast<int>(state.range(1)),
                           static_cast<int>(state.range(2)));
  gpo::core::GpoOptions opt;
  opt.max_seconds = 30;
  for (auto _ : state) {
    auto r = gpo::core::run_gpo(net, kind, opt);
    benchmark::DoNotOptimize(r.state_count);
    state.counters["gpn_states"] = static_cast<double>(r.state_count);
  }
  state.SetLabel(std::string(model_name(static_cast<int>(state.range(1)))) +
                 "(" + std::to_string(state.range(2)) + ")/" +
                 gpo::core::family_kind_name(kind));
}

// family kind {0 explicit, 1 bdd} x model x size
BENCHMARK(BM_GpoAnalysis)
    ->Args({0, 0, 2})->Args({1, 0, 2})    // NSDP(2)
    ->Args({0, 0, 4})->Args({1, 0, 4})    // NSDP(4)
    ->Args({0, 0, 6})->Args({1, 0, 6})    // NSDP(6)
    ->Args({1, 0, 10})                    // NSDP(10): explicit r0 infeasible
    ->Args({0, 1, 6})->Args({1, 1, 6})    // RW(6)
    ->Args({0, 1, 12})->Args({1, 1, 12})  // RW(12)
    ->Args({0, 2, 8})->Args({1, 2, 8})    // chain(8)
    ->Args({1, 2, 20})                    // chain(20): 2^20 explicit sets
    ->Args({0, 3, 4})->Args({1, 3, 4})    // ASAT(4)
    ->Unit(benchmark::kMillisecond);

void BM_InitialValidSets(benchmark::State& state) {
  bool use_bdd = state.range(0) == 1;
  PetriNet net = gpo::models::make_conflict_chain(
      static_cast<std::size_t>(state.range(1)));
  gpo::petri::ConflictInfo ci(net);
  for (auto _ : state) {
    if (use_bdd) {
      gpo::core::BddFamily::Context ctx(net.transition_count());
      auto r0 = ctx.initial_valid_sets(ci);
      benchmark::DoNotOptimize(r0.count());
    } else {
      gpo::core::ExplicitFamily::Context ctx(net.transition_count());
      auto r0 = ctx.initial_valid_sets(ci);
      benchmark::DoNotOptimize(r0.count());
    }
  }
  state.SetLabel(std::string("chain(") + std::to_string(state.range(1)) +
                 ")/" + (use_bdd ? "bdd" : "explicit"));
}

BENCHMARK(BM_InitialValidSets)
    ->Args({0, 8})->Args({1, 8})
    ->Args({0, 12})->Args({1, 12})
    ->Args({0, 16})->Args({1, 16})
    ->Args({1, 64})->Args({1, 256})  // explicit is hopeless past ~20
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
