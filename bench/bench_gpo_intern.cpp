// Family-storage ablation driver: runs the GPO engine three times per model —
// the seed ExplicitFamily path (deep-copied families, per-probe re-hashing),
// FamilyKind::kInterned (hash-consed families, memoized op cache), and the
// ZDD-backed store (--family-store zdd: one canonical diagram per family) —
// over the Fig-1 diamond, Fig-2 conflict chain and the four Table-1 families,
// checks the verdicts match, and emits BENCH_gpo.json so the perf/memory
// trajectory can be charted across PRs.
//
// Usage: bench_gpo_intern [--smoke] [--slow] [--max-seconds S] [--out FILE]
//                         [--report FILE] [--parallel-out FILE]
//   --smoke         small instances + tight budget (CI bench-smoke job)
//   --slow          also run zdd-only memory-wall rows (nsdp:10, chain:18)
//                   that the explicit backends cannot hold in RAM
//   --max-seconds   per-engine wall-clock budget (default 60)
//   --out           JSON output path (default BENCH_gpo.json)
//   --report        also write the schema-stable run report shared with
//                   `julie --report` (bench/report_schema.json)
//   --parallel-out  also sweep the work-stealing engine over 1/2/4/8 threads
//                   and emit the scaling rows (BENCH_gpo_parallel.json)
//
// JSON schema (schema_version 4):
//   { "schema_version": 4, "benchmark": "bench_gpo_intern", "smoke": bool,
//     "models": [ { "model": str, "states": int, "seed_wall_ms": float,
//                   "interned_wall_ms": float, "zdd_wall_ms": float,
//                   "speedup": float, "mcs_enum_ms": float,
//                   "family_ops_ms": float, "intern_wait_ns_p50": int,
//                   "intern_wait_ns_p99": int, "peak_families": int,
//                   "intern_calls": int, "dedup_ratio": float,
//                   "op_cache_hit_rate": float, "families_bytes": int,
//                   "zdd_families_bytes": int, "zdd_nodes": int,
//                   "peak_rss_bytes": int, "zdd_only": bool,
//                   "reduce_ms": float, "reduced_places": int,
//                   "reduced_transitions": int, "reduced_wall_ms": float,
//                   "reduced_speedup": float,
//                   "verdicts_match": bool } ] }
//   The per-phase columns split the interned run's wall: mcs_enum_ms is the
//   candidate-MCS enumeration (plan_expansion incl. trial m_updates, the
//   engine's mcs_seconds timer), family_ops_ms the deadlock checks plus
//   successor construction (family_ops_seconds). intern_wait_ns_p50/p99 are
//   genuine wait episodes inside the lock-free interner (publish-spins,
//   migration waits) — 0 when the run never waited, which is the expected
//   sequential value.
//   zdd_only rows skip the explicit/interned runs (their seed/interned
//   columns are 0) — they exist to chart the memory wall the ZDD store
//   breaks. peak_rss_bytes is the process high-water mark sampled after the
//   row, so it is monotone down the table; read it as "the run up to and
//   including this row fit in this much".
//   The reduced_* columns chart the net-reduction preprocessing pipeline
//   (src/reduce/, level aggressive): reduce_ms is the pipeline wall,
//   reduced_places/transitions the shrunk net, reduced_wall_ms the interned
//   engine re-run on the reduced net, and reduced_speedup the end-to-end
//   ratio interned_wall_ms / (reduce_ms + reduced_wall_ms). The reduced
//   run's verdict (and, on a deadlock, its certificate-mapped counterexample
//   replayed on the original net) folds into verdicts_match, so any
//   unsoundness in the pipeline fails the benchmark. zdd_only rows report
//   the shrink but skip the reduced engine re-run (reduced_wall_ms 0).
// Parallel sweep schema (schema_version 2):
//   { "schema_version": 2, "benchmark": "bench_gpo_parallel", "smoke": bool,
//     "host_cpus": int,
//     "models": [ { "model": str, "threads": int, "states": int,
//                   "wall_ms": float, "states_per_second": float,
//                   "speedup_vs_1t": float, "steals": int,
//                   "fork_tasks": int, "peak_frontier": int,
//                   "verdict_matches_sequential": bool } ] }
//   fork_tasks counts the intra-state range tasks the analyzer forked onto
//   the pool (candidate checks, per-transition terms, reduction-tree
//   levels) — the fine-grained layer that actually scales on the paper's
//   2-18-state graphs where the per-state layer has nothing to steal.
// Exit status: 0 on success, 1 on any verdict mismatch.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gpo.hpp"
#include "models/models.hpp"
#include "obs/report.hpp"
#include "reduce/reduce.hpp"
#include "util/stopwatch.hpp"

namespace {

using gpo::petri::PetriNet;

struct Row {
  std::string model;
  std::size_t states = 0;
  double seed_ms = 0;
  double interned_ms = 0;
  double zdd_ms = 0;
  /// Interned-run phase split (from the engine's mcs_seconds /
  /// family_ops_seconds timers) and interner wait-episode percentiles.
  double mcs_enum_ms = 0;
  double family_ops_ms = 0;
  std::uint64_t intern_wait_ns_p50 = 0;
  std::uint64_t intern_wait_ns_p99 = 0;
  std::size_t peak_families = 0;
  std::size_t intern_calls = 0;
  double dedup_ratio = 0;
  double op_cache_hit_rate = 0;
  std::size_t families_bytes = 0;
  std::size_t zdd_families_bytes = 0;
  std::size_t zdd_nodes = 0;
  /// Process high-water RSS after this row; monotone down the table.
  std::size_t peak_rss_bytes = 0;
  /// Memory-wall row (--slow): only the ZDD backend ran.
  bool zdd_only = false;
  bool verdicts_match = true;
  /// Net-reduction preprocessing (level aggressive): pipeline wall, shrunk
  /// net, and the interned engine re-run on the reduced net.
  double reduce_ms = 0;
  std::size_t reduced_places = 0;
  std::size_t reduced_transitions = 0;
  double reduced_wall_ms = 0;

  [[nodiscard]] double speedup() const {
    return interned_ms > 0 ? seed_ms / interned_ms : 0.0;
  }
  /// End-to-end: unreduced interned run vs reduce + reduced interned run.
  [[nodiscard]] double reduced_speedup() const {
    double total = reduce_ms + reduced_wall_ms;
    return reduced_wall_ms > 0 && total > 0 ? interned_ms / total : 0.0;
  }
};

Row run_row(const std::string& label, const PetriNet& net, double budget,
            bool zdd_only, gpo::obs::MetricsRegistry* reg,
            gpo::obs::RunReport* report) {
  Row row;
  row.model = label;
  row.zdd_only = zdd_only;
  gpo::core::GpoOptions opt;
  opt.max_seconds = budget;
  opt.metrics = reg;

  gpo::core::GpoResult seed, interned;
  if (!zdd_only) {
    opt.metrics_prefix = "seed.";
    gpo::util::Stopwatch seed_timer;
    seed = gpo::core::run_gpo(net, gpo::core::FamilyKind::kExplicit, opt);
    row.seed_ms = seed_timer.elapsed_seconds() * 1000.0;

    opt.metrics_prefix = "intern.";
    gpo::util::Stopwatch interned_timer;
    interned = gpo::core::run_gpo(net, gpo::core::FamilyKind::kInterned, opt);
    row.interned_ms = interned_timer.elapsed_seconds() * 1000.0;

    if (reg != nullptr) {
      row.mcs_enum_ms =
          reg->value("intern.mcs_seconds").value_or(0.0) * 1000.0;
      row.family_ops_ms =
          reg->value("intern.family_ops_seconds").value_or(0.0) * 1000.0;
      for (const auto& s : reg->snapshot("intern.intern_wait_ns")) {
        if (s.kind != gpo::obs::MetricKind::kHistogram) continue;
        row.intern_wait_ns_p50 =
            static_cast<std::uint64_t>(s.p50 * 1e9 + 0.5);
        row.intern_wait_ns_p99 =
            static_cast<std::uint64_t>(s.p99 * 1e9 + 0.5);
      }
    }
  }

  opt.metrics_prefix = "zdd.";
  opt.family_store = gpo::core::FamilyStore::kZdd;
  gpo::util::Stopwatch zdd_timer;
  auto zdd = gpo::core::run_gpo(net, gpo::core::FamilyKind::kExplicit, opt);
  row.zdd_ms = zdd_timer.elapsed_seconds() * 1000.0;
  opt.family_store = gpo::core::FamilyStore::kExplicit;

  // Net-reduction preprocessing: shrink once (aggressive), then re-run the
  // interned engine on the smaller net. The mapped counterexample must
  // replay to a deadlock of the ORIGINAL net, so the bench doubles as a
  // soundness check on the certificate machinery.
  bool reduced_ok = true;
  {
    gpo::reduce::ReduceOptions ro;
    ro.level = gpo::reduce::ReduceLevel::kAggressive;
    gpo::util::Stopwatch reduce_timer;
    gpo::reduce::ReductionResult red = gpo::reduce::reduce_net(net, ro);
    row.reduce_ms = reduce_timer.elapsed_seconds() * 1000.0;
    row.reduced_places = red.stats.places_after;
    row.reduced_transitions = red.stats.transitions_after;
    if (!zdd_only) {
      opt.metrics_prefix = "reduced.";
      gpo::util::Stopwatch reduced_timer;
      auto reduced = gpo::core::run_gpo(red.net,
                                        gpo::core::FamilyKind::kInterned, opt);
      row.reduced_wall_ms = reduced_timer.elapsed_seconds() * 1000.0;
      // Verdicts are only comparable when both runs finished: a reduced run
      // completing inside a budget the unreduced run blew is the point of
      // the pipeline, not a mismatch.
      if (!reduced.limit_hit && !interned.limit_hit)
        reduced_ok = reduced.deadlock_found == interned.deadlock_found;
      if (reduced.deadlock_found && !reduced.counterexample.empty()) {
        auto mapped = red.certificate.map_to_original(reduced.counterexample);
        auto end = gpo::reduce::replay_trace(net, mapped);
        reduced_ok &= end.has_value() && net.is_deadlocked(*end);
      }
    }
  }

  if (report != nullptr && reg != nullptr) {
    auto add = [&](const char* engine, const auto& r, double seconds,
                   const std::string& prefix) {
      gpo::obs::RunReport::EngineRun er;
      er.engine = engine;
      er.model = label;
      er.verdict = r.limit_hit      ? "aborted"
                   : r.deadlock_found ? "deadlock"
                                      : "no-deadlock";
      er.states = static_cast<double>(r.state_count);
      er.seconds = seconds;
      er.aborted = r.limit_hit;
      er.aborted_phase = r.interrupted_phase;
      er.counters = gpo::obs::registry_to_json(*reg, prefix);
      report->add_engine(std::move(er));
    };
    if (!zdd_only) {
      add("gpo", seed, row.seed_ms / 1000.0, "seed.");
      add("gpo-intern", interned, row.interned_ms / 1000.0, "intern.");
    }
    add("gpo-zdd-store", zdd, row.zdd_ms / 1000.0, "zdd.");
  }

  row.states = zdd.state_count;
  row.zdd_families_bytes = zdd.family_stats.families_bytes;
  row.zdd_nodes = zdd.family_stats.zdd_nodes;
  if (!zdd_only) {
    row.states = interned.state_count;
    row.peak_families = interned.family_stats.distinct_families;
    row.intern_calls = interned.family_stats.intern_calls;
    row.dedup_ratio = interned.family_stats.dedup_ratio;
    row.op_cache_hit_rate = interned.family_stats.op_cache_hit_rate;
    row.families_bytes = interned.family_stats.families_bytes;
    // The ZDD enumerates witnesses in diagram order, so the counterexample
    // is compared only between the two explicit backends; the zdd run must
    // agree on everything order-independent.
    row.verdicts_match = seed.state_count == interned.state_count &&
                         seed.deadlock_found == interned.deadlock_found &&
                         seed.multiple_steps == interned.multiple_steps &&
                         seed.single_steps == interned.single_steps &&
                         seed.counterexample == interned.counterexample &&
                         !interned.limit_hit == !seed.limit_hit &&
                         zdd.state_count == seed.state_count &&
                         zdd.deadlock_found == seed.deadlock_found &&
                         zdd.multiple_steps == seed.multiple_steps &&
                         zdd.single_steps == seed.single_steps &&
                         zdd.limit_hit == seed.limit_hit;
  }
  row.verdicts_match = row.verdicts_match && reduced_ok;
  row.peak_rss_bytes = gpo::obs::peak_rss_bytes();
  return row;
}

std::string json_number(double v) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(4) << v;
  return ss.str();
}

// -- thread-scaling sweep (--parallel-out) ----------------------------------

struct ParallelRow {
  std::string model;
  std::size_t threads = 1;
  std::size_t states = 0;
  double wall_ms = 0;
  double speedup_vs_1t = 1.0;
  std::size_t steals = 0;
  std::size_t fork_tasks = 0;
  std::size_t peak_frontier = 0;
  bool verdict_matches = true;
};

std::vector<ParallelRow> run_thread_sweep(const std::string& label,
                                          const PetriNet& net, double budget,
                                          bool& all_match) {
  std::vector<ParallelRow> rows;
  gpo::core::GpoResult base;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    gpo::core::GpoOptions opt;
    opt.max_seconds = budget;
    opt.num_threads = threads;
    gpo::util::Stopwatch timer;
    auto r = gpo::core::run_gpo(net, gpo::core::FamilyKind::kInterned, opt);
    ParallelRow row;
    row.model = label;
    row.threads = threads;
    row.states = r.state_count;
    row.wall_ms = timer.elapsed_seconds() * 1000.0;
    row.steals = r.parallel.steal_count;
    row.fork_tasks = r.parallel.fork_tasks;
    row.peak_frontier = r.parallel.peak_frontier;
    if (threads == 1) {
      base = r;
    } else {
      row.speedup_vs_1t =
          row.wall_ms > 0 ? rows.front().wall_ms / row.wall_ms : 0.0;
      row.verdict_matches = r.deadlock_found == base.deadlock_found &&
                            r.state_count == base.state_count &&
                            r.limit_hit == base.limit_hit;
    }
    all_match &= row.verdict_matches;
    std::cout << std::left << std::setw(12) << row.model << std::right
              << std::setw(4) << row.threads << "t" << std::setw(8)
              << row.states << std::setw(12) << std::fixed
              << std::setprecision(2) << row.wall_ms << std::setw(8)
              << std::setprecision(2) << row.speedup_vs_1t << "x"
              << std::setw(9) << row.steals << std::setw(9) << row.fork_tasks
              << std::setw(10) << row.peak_frontier
              << (row.verdict_matches ? "" : "  VERDICT MISMATCH") << "\n";
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_parallel_json(std::ostream& out,
                         const std::vector<ParallelRow>& rows, bool smoke) {
  out << "{\n"
      << "  \"schema_version\": 2,\n"
      << "  \"benchmark\": \"bench_gpo_parallel\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"models\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ParallelRow& r = rows[i];
    out << "    {\n"
        << "      \"model\": \"" << r.model << "\",\n"
        << "      \"threads\": " << r.threads << ",\n"
        << "      \"states\": " << r.states << ",\n"
        << "      \"wall_ms\": " << json_number(r.wall_ms) << ",\n"
        << "      \"states_per_second\": "
        << json_number(r.wall_ms > 0
                           ? static_cast<double>(r.states) / (r.wall_ms / 1000.0)
                           : 0.0)
        << ",\n"
        << "      \"speedup_vs_1t\": " << json_number(r.speedup_vs_1t) << ",\n"
        << "      \"steals\": " << r.steals << ",\n"
        << "      \"fork_tasks\": " << r.fork_tasks << ",\n"
        << "      \"peak_frontier\": " << r.peak_frontier << ",\n"
        << "      \"verdict_matches_sequential\": "
        << (r.verdict_matches ? "true" : "false") << "\n"
        << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void write_json(std::ostream& out, const std::vector<Row>& rows, bool smoke) {
  out << "{\n"
      << "  \"schema_version\": 4,\n"
      << "  \"benchmark\": \"bench_gpo_intern\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"models\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\n"
        << "      \"model\": \"" << r.model << "\",\n"
        << "      \"states\": " << r.states << ",\n"
        << "      \"seed_wall_ms\": " << json_number(r.seed_ms) << ",\n"
        << "      \"interned_wall_ms\": " << json_number(r.interned_ms)
        << ",\n"
        << "      \"zdd_wall_ms\": " << json_number(r.zdd_ms) << ",\n"
        << "      \"speedup\": " << json_number(r.speedup()) << ",\n"
        << "      \"mcs_enum_ms\": " << json_number(r.mcs_enum_ms) << ",\n"
        << "      \"family_ops_ms\": " << json_number(r.family_ops_ms)
        << ",\n"
        << "      \"intern_wait_ns_p50\": " << r.intern_wait_ns_p50 << ",\n"
        << "      \"intern_wait_ns_p99\": " << r.intern_wait_ns_p99 << ",\n"
        << "      \"peak_families\": " << r.peak_families << ",\n"
        << "      \"intern_calls\": " << r.intern_calls << ",\n"
        << "      \"dedup_ratio\": " << json_number(r.dedup_ratio) << ",\n"
        << "      \"op_cache_hit_rate\": " << json_number(r.op_cache_hit_rate)
        << ",\n"
        << "      \"families_bytes\": " << r.families_bytes << ",\n"
        << "      \"zdd_families_bytes\": " << r.zdd_families_bytes << ",\n"
        << "      \"zdd_nodes\": " << r.zdd_nodes << ",\n"
        << "      \"peak_rss_bytes\": " << r.peak_rss_bytes << ",\n"
        << "      \"zdd_only\": " << (r.zdd_only ? "true" : "false") << ",\n"
        << "      \"reduce_ms\": " << json_number(r.reduce_ms) << ",\n"
        << "      \"reduced_places\": " << r.reduced_places << ",\n"
        << "      \"reduced_transitions\": " << r.reduced_transitions << ",\n"
        << "      \"reduced_wall_ms\": " << json_number(r.reduced_wall_ms)
        << ",\n"
        << "      \"reduced_speedup\": " << json_number(r.reduced_speedup())
        << ",\n"
        << "      \"verdicts_match\": " << (r.verdicts_match ? "true" : "false")
        << "\n"
        << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool slow = false;
  double budget = 60.0;
  std::string out_path = "BENCH_gpo.json";
  std::string report_path;
  std::string parallel_out_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    if (!std::strcmp(argv[i], "--slow")) slow = true;
    if (!std::strcmp(argv[i], "--max-seconds") && i + 1 < argc)
      budget = std::stod(argv[++i]);
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[++i];
    if (!std::strcmp(argv[i], "--report") && i + 1 < argc)
      report_path = argv[++i];
    if (!std::strcmp(argv[i], "--parallel-out") && i + 1 < argc)
      parallel_out_path = argv[++i];
  }
  if (smoke && budget > 5.0) budget = 5.0;

  gpo::obs::RunReport report("bench_gpo_intern");
  {
    std::string cmd;
    for (int a = 0; a < argc; ++a) {
      if (a > 0) cmd += ' ';
      cmd += argv[a];
    }
    report.set_command(cmd);
  }

  struct Instance {
    std::string label;
    PetriNet net;
    bool zdd_only = false;
  };
  std::vector<Instance> instances;
  using namespace gpo::models;
  if (smoke) {
    instances.push_back({"diamond:4", make_diamond(4)});
    instances.push_back({"chain:8", make_conflict_chain(8)});
    instances.push_back({"nsdp:4", make_nsdp(4)});
    instances.push_back({"nsdp:6", make_nsdp(6)});
    instances.push_back({"asat:4", make_arbiter_tree(4)});
    instances.push_back({"over:3", make_overtake(3)});
    instances.push_back({"rw:6", make_readers_writers(6)});
  } else {
    instances.push_back({"diamond:8", make_diamond(8)});
    instances.push_back({"chain:10", make_conflict_chain(10)});
    instances.push_back({"chain:14", make_conflict_chain(14)});
    instances.push_back({"nsdp:6", make_nsdp(6)});
    instances.push_back({"nsdp:8", make_nsdp(8)});
    instances.push_back({"asat:8", make_arbiter_tree(8)});
    instances.push_back({"over:4", make_overtake(4)});
    instances.push_back({"rw:8", make_readers_writers(8)});
    instances.push_back({"rw:12", make_readers_writers(12)});
  }
  if (slow) {
    // Memory-wall rows: the explicit family stores cannot hold these in a
    // CI-sized address space, so only the ZDD backend runs.
    instances.push_back({"nsdp:10", make_nsdp(10), /*zdd_only=*/true});
    instances.push_back({"chain:18", make_conflict_chain(18),
                         /*zdd_only=*/true});
  }

  std::vector<Row> rows;
  bool all_match = true;
  std::cout << std::left << std::setw(12) << "model" << std::right
            << std::setw(8) << "states" << std::setw(12) << "seed-ms"
            << std::setw(12) << "intern-ms" << std::setw(11) << "zdd-ms"
            << std::setw(9) << "speedup" << std::setw(10) << "families"
            << std::setw(7) << "hit%" << std::setw(12) << "fam-bytes"
            << std::setw(12) << "zdd-bytes" << std::setw(11) << "rss-mb"
            << std::setw(11) << "reduced-ms" << std::setw(9) << "red-spd"
            << "\n";
  for (const Instance& inst : instances) {
    gpo::obs::MetricsRegistry reg;  // fresh per instance
    Row row = run_row(inst.label, inst.net, budget, inst.zdd_only, &reg,
                      report_path.empty() ? nullptr : &report);
    std::cout << std::left << std::setw(12) << row.model << std::right
              << std::setw(8) << row.states << std::setw(12) << std::fixed
              << std::setprecision(2) << row.seed_ms << std::setw(12)
              << row.interned_ms << std::setw(11) << row.zdd_ms
              << std::setw(8) << std::setprecision(1) << row.speedup() << "x"
              << std::setw(10) << row.peak_families << std::setw(6)
              << static_cast<int>(row.op_cache_hit_rate * 100) << "%"
              << std::setw(12) << row.families_bytes << std::setw(12)
              << row.zdd_families_bytes << std::setw(11)
              << std::setprecision(1)
              << static_cast<double>(row.peak_rss_bytes) / (1024.0 * 1024.0)
              << std::setw(11) << std::setprecision(2)
              << row.reduce_ms + row.reduced_wall_ms << std::setw(8)
              << std::setprecision(1) << row.reduced_speedup() << "x"
              << (row.zdd_only ? "  [zdd-only]" : "")
              << (row.verdicts_match ? "" : "  VERDICT MISMATCH") << "\n";
    all_match &= row.verdicts_match;
    rows.push_back(std::move(row));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  write_json(out, rows, smoke);
  std::cout << "JSON written to " << out_path << "\n";
  if (!report_path.empty()) {
    std::ofstream rout(report_path);
    if (!rout) {
      std::cerr << "cannot write " << report_path << "\n";
      return 1;
    }
    report.write(rout, nullptr, nullptr);
    std::cout << "report written to " << report_path << "\n";
  }
  if (!parallel_out_path.empty()) {
    std::cout << "\nthread sweep (fork-join gpo-intern):\n"
              << std::left << std::setw(12) << "model" << std::right
              << std::setw(5) << "thr" << std::setw(8) << "states"
              << std::setw(12) << "wall-ms" << std::setw(9) << "vs-1t"
              << std::setw(9) << "steals" << std::setw(9) << "forks"
              << std::setw(10) << "peak-fr" << "\n";
    std::vector<ParallelRow> prows;
    for (const Instance& inst : instances) {
      auto r = run_thread_sweep(inst.label, inst.net, budget, all_match);
      prows.insert(prows.end(), r.begin(), r.end());
    }
    std::ofstream pout(parallel_out_path);
    if (!pout) {
      std::cerr << "cannot write " << parallel_out_path << "\n";
      return 1;
    }
    write_parallel_json(pout, prows, smoke);
    std::cout << "JSON written to " << parallel_out_path << "\n";
  }
  if (!all_match) {
    std::cerr << "ERROR: verdict mismatch\n";
    return 1;
  }
  return 0;
}
