// Regenerates the Figure 1 experiment: n concurrently enabled independent
// transitions. Interleaving semantics explodes the full graph to 2^n states
// (n! firing sequences); partial-order analysis needs n+1; generalized
// partial-order analysis fires the whole step at once and needs 2.
#include <iomanip>
#include <iostream>

#include "core/gpo.hpp"
#include "models/models.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"

int main() {
  std::cout << "Figure 1 reproduction — interleavings of n concurrent "
               "transitions\n\n"
            << std::setw(4) << "n" << std::setw(12) << "full" << std::setw(12)
            << "stubborn" << std::setw(12) << "GPO" << "\n"
            << std::string(40, '-') << "\n";
  for (std::size_t n : {1u, 2u, 4u, 8u, 12u, 16u}) {
    auto net = gpo::models::make_diamond(n);
    gpo::reach::ExplorerOptions eo;
    eo.max_states = 1u << 20;
    auto full = gpo::reach::ExplicitExplorer(net, eo).explore();
    auto por = gpo::por::StubbornExplorer(net).explore();
    auto g = gpo::core::run_gpo(net, gpo::core::FamilyKind::kBdd);
    std::cout << std::setw(4) << n << std::setw(12)
              << (full.limit_hit ? std::string("> cap")
                                 : std::to_string(full.state_count))
              << std::setw(12) << por.state_count << std::setw(12)
              << g.state_count << "\n";
  }
  std::cout << "\nexpected shape: full = 2^n, stubborn = n+1, GPO = 2\n";
  return 0;
}
