// Micro-benchmarks of the OBDD substrate (apply / quantify / relational
// product) plus the variable-ordering ablation of the symbolic reachability
// engine — the knob that decides whether the SMV-proxy blows up on a model
// (Section 2.4's observation about non-linear communication patterns).
#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "bdd/symbolic_reach.hpp"
#include "models/models.hpp"

namespace {

using namespace gpo::bdd;

// A function with exponentially many nodes under a bad order and linearly
// many under a good one: sum of adjacent-pair conjunctions.
Ref adjacent_pairs(BddManager& mgr, Var n, bool interleaved) {
  Ref f = kFalse;
  for (Var i = 0; i < n; ++i) {
    Var a = interleaved ? 2 * i : i;
    Var b = interleaved ? 2 * i + 1 : n + i;
    f = mgr.apply_or(f, mgr.apply_and(mgr.var(a), mgr.var(b)));
  }
  return f;
}

void BM_ApplyAdjacentPairs(benchmark::State& state) {
  Var n = static_cast<Var>(state.range(0));
  bool interleaved = state.range(1) == 1;
  for (auto _ : state) {
    BddManager mgr(2 * n, 1u << 22);
    Ref f = adjacent_pairs(mgr, n, interleaved);
    benchmark::DoNotOptimize(f);
    state.counters["nodes"] = static_cast<double>(mgr.node_count(f));
  }
  state.SetLabel(interleaved ? "interleaved" : "blocked");
}
BENCHMARK(BM_ApplyAdjacentPairs)
    ->Args({8, 0})->Args({8, 1})
    ->Args({12, 0})->Args({12, 1})
    ->Args({16, 0})->Args({16, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_Exists(benchmark::State& state) {
  Var n = static_cast<Var>(state.range(0));
  BddManager mgr(2 * n, 1u << 22);
  Ref f = adjacent_pairs(mgr, n, true);
  std::vector<Var> evens;
  for (Var i = 0; i < n; ++i) evens.push_back(2 * i);
  Ref cube = mgr.cube(evens);
  for (auto _ : state) {
    Ref g = mgr.exists(f, cube);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_Exists)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_AndExistsVsComposed(benchmark::State& state) {
  Var n = static_cast<Var>(state.range(0));
  bool fused = state.range(1) == 1;
  BddManager mgr(2 * n, 1u << 22);
  Ref f = adjacent_pairs(mgr, n, true);
  Ref g = mgr.apply_not(adjacent_pairs(mgr, n / 2, true));
  std::vector<Var> evens;
  for (Var i = 0; i < n; ++i) evens.push_back(2 * i);
  Ref cube = mgr.cube(evens);
  for (auto _ : state) {
    Ref r = fused ? mgr.and_exists(f, g, cube)
                  : mgr.exists(mgr.apply_and(f, g), cube);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(fused ? "relprod" : "and-then-exists");
}
BENCHMARK(BM_AndExistsVsComposed)
    ->Args({16, 0})->Args({16, 1})
    ->Args({32, 0})->Args({32, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_SymbolicOrdering(benchmark::State& state) {
  bool bfs = state.range(0) == 1;
  int model = static_cast<int>(state.range(1));
  auto net = model == 0 ? gpo::models::make_nsdp(6)
                        : gpo::models::make_arbiter_tree(4);
  SymbolicOptions opt;
  opt.order = bfs ? VariableOrder::kBfs : VariableOrder::kDeclaration;
  opt.max_seconds = 30;
  for (auto _ : state) {
    SymbolicReachability engine(net, opt);
    auto r = engine.analyze();
    benchmark::DoNotOptimize(r.state_count);
    state.counters["peak_nodes"] = static_cast<double>(r.peak_nodes);
    state.counters["blowup"] = r.blowup ? 1 : 0;
  }
  state.SetLabel(std::string(model == 0 ? "nsdp6" : "asat4") + "/" +
                 (bfs ? "bfs" : "decl"));
}
BENCHMARK(BM_SymbolicOrdering)
    ->Args({0, 0})->Args({1, 0})
    ->Args({0, 1})->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
