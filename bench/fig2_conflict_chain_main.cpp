// Regenerates the Figure 2 experiment — the paper's motivating case for
// generalized partial-order analysis. n concurrently *marked conflict
// places*: classical partial-order methods still enumerate every combination
// of choices (the "anticipated reachability graph" of 2^{n+1}-1 states);
// GPO's multiple firing rule collapses the whole family to 2 states.
#include <iomanip>
#include <iostream>

#include "core/gpo.hpp"
#include "models/models.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"

int main() {
  std::cout << "Figure 2 reproduction — n concurrently marked conflict "
               "places\n\n"
            << std::setw(4) << "n" << std::setw(12) << "full"      //
            << std::setw(14) << "stubborn" << std::setw(16)        //
            << "2^{n+1}-1" << std::setw(10) << "GPO" << std::setw(12)
            << "GPO-t(s)" << "\n"
            << std::string(68, '-') << "\n";
  for (std::size_t n : {1u, 2u, 4u, 8u, 12u, 16u, 20u}) {
    auto net = gpo::models::make_conflict_chain(n);
    gpo::reach::ExplorerOptions eo;
    eo.max_states = 2u << 20;
    auto full = gpo::reach::ExplicitExplorer(net, eo).explore();
    gpo::por::StubbornOptions so;
    so.max_states = 2u << 21;
    auto por = gpo::por::StubbornExplorer(net, so).explore();
    auto g = gpo::core::run_gpo(net, gpo::core::FamilyKind::kBdd);
    std::cout << std::setw(4) << n << std::setw(12)
              << (full.limit_hit ? std::string("> cap")
                                 : std::to_string(full.state_count))
              << std::setw(14)
              << (por.limit_hit ? std::string("> cap")
                                : std::to_string(por.state_count))
              << std::setw(16) << ((std::size_t{2} << n) - 1)  //
              << std::setw(10) << g.state_count << std::setw(12) << std::fixed
              << std::setprecision(4) << g.seconds << "\n";
  }
  std::cout << "\nexpected shape: full = 3^n, stubborn = 2^{n+1}-1, GPO = 2\n";
  return 0;
}
