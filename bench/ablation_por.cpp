// Ablation of the stubborn-set seed strategy (por::SeedStrategy): the
// best-over-seeds search pays more per state for smaller graphs; the
// first-enabled and whole-conflict-set ("anticipation", Section 2.3 of the
// paper) variants are cheaper per state but reduce less. Reported counters
// show the reduced-graph size so the time/states tradeoff is visible.
#include <benchmark/benchmark.h>

#include "models/models.hpp"
#include "por/stubborn.hpp"

namespace {

using gpo::por::SeedStrategy;
using gpo::por::StubbornExplorer;
using gpo::por::StubbornOptions;

const char* strategy_name(SeedStrategy s) {
  switch (s) {
    case SeedStrategy::kBestOverSeeds: return "best";
    case SeedStrategy::kFirstEnabled: return "first";
    default: return "anticipation";
  }
}

gpo::petri::PetriNet model_for(int id, int n) {
  switch (id) {
    case 0: return gpo::models::make_nsdp(n);
    case 1: return gpo::models::make_arbiter_tree(n);
    case 2: return gpo::models::make_overtake(n);
    default: return gpo::models::make_readers_writers(n);
  }
}

const char* model_name(int id) {
  switch (id) {
    case 0: return "nsdp";
    case 1: return "asat";
    case 2: return "over";
    default: return "rw";
  }
}

void BM_Stubborn(benchmark::State& state) {
  auto strategy = static_cast<SeedStrategy>(state.range(0));
  auto net = model_for(static_cast<int>(state.range(1)),
                       static_cast<int>(state.range(2)));
  StubbornOptions opt;
  opt.strategy = strategy;
  opt.max_seconds = 30;
  for (auto _ : state) {
    auto r = StubbornExplorer(net, opt).explore();
    benchmark::DoNotOptimize(r.state_count);
    state.counters["states"] = static_cast<double>(r.state_count);
  }
  state.SetLabel(std::string(model_name(static_cast<int>(state.range(1)))) +
                 "(" + std::to_string(state.range(2)) + ")/" +
                 strategy_name(strategy));
}

void register_all() {
  for (int strategy : {0, 1, 2}) {
    for (auto [model, size] : std::initializer_list<std::pair<int, int>>{
             {0, 6}, {1, 4}, {2, 5}, {3, 9}}) {
      benchmark::RegisterBenchmark("BM_Stubborn", BM_Stubborn)
          ->Args({strategy, model, size})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
