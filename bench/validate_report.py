#!/usr/bin/env python3
"""Validate a run report against bench/report_schema.json.

Usage: validate_report.py REPORT.json [SCHEMA.json]
       validate_report.py --bench BENCH_gpo.json
       validate_report.py --events EVENTS.jsonl

Implements the same JSON-Schema subset as the C++ validator
(src/obs/json.hpp: obs::json::validate): type, required, properties,
items, enum, minimum, additionalProperties, and $ref into #/definitions.
No third-party jsonschema dependency, so CI can run it on a bare runner.
Exit status 0 iff the document validates; errors go to stderr.

--bench validates the bench_gpo_intern output instead (schema_version 4,
field presence/types, every verdicts_match true) and enforces the
checked-in memory gate: the nsdp:6 row's zdd_families_bytes must stay
under NSDP6_ZDD_BYTES_MAX. The gate is the regression tripwire for the
ZDD family store — measured ~2.6 MB (of which ~1 MB is the fixed
computed-table allocation), asserted at 3x headroom while the explicit
store needs ~23 MB on the same model.

--events validates a JSONL event log (`julie --events`, `julie batch
--events`, manifest `events=`): every line parses as a JSON object with
a non-negative integer ts_us that never decreases in file order (the
EventLog stamps under the push mutex, so file order IS timestamp
order), a known event name, an integer job id on job-lifecycle records,
and a name on span records.
"""
import json
import sys
from pathlib import Path

# Memory gate for the ZDD family store (bytes); see module docstring.
NSDP6_ZDD_BYTES_MAX = 8_000_000

# bench_gpo_intern row fields -> required python types (bool checked before
# int: isinstance(True, int) holds in python).
BENCH_ROW_FIELDS = {
    "model": str,
    "states": int,
    "seed_wall_ms": (int, float),
    "interned_wall_ms": (int, float),
    "zdd_wall_ms": (int, float),
    "speedup": (int, float),
    # Per-phase split of the interned run (schema_version 4): candidate-MCS
    # enumeration vs family-op wall, and the interner's wait-episode
    # percentiles (0 on sequential runs, which never wait).
    "mcs_enum_ms": (int, float),
    "family_ops_ms": (int, float),
    "intern_wait_ns_p50": int,
    "intern_wait_ns_p99": int,
    "peak_families": int,
    "intern_calls": int,
    "dedup_ratio": (int, float),
    "op_cache_hit_rate": (int, float),
    "families_bytes": int,
    "zdd_families_bytes": int,
    "zdd_nodes": int,
    "peak_rss_bytes": int,
    "zdd_only": bool,
    "reduce_ms": (int, float),
    "reduced_places": int,
    "reduced_transitions": int,
    "reduced_wall_ms": (int, float),
    "reduced_speedup": (int, float),
    "verdicts_match": bool,
}


def validate_bench(doc):
    """Returns a list of error strings for a bench_gpo_intern document."""
    errors = []
    if doc.get("schema_version") != 4:
        errors.append(f"schema_version {doc.get('schema_version')!r} != 4")
    if doc.get("benchmark") != "bench_gpo_intern":
        errors.append(f"benchmark {doc.get('benchmark')!r}")
    models = doc.get("models")
    if not isinstance(models, list) or not models:
        return errors + ["models: expected non-empty array"]
    for i, row in enumerate(models):
        where = f"models[{i}] ({row.get('model', '?')})"
        for key, ty in BENCH_ROW_FIELDS.items():
            if key not in row:
                errors.append(f"{where}: missing '{key}'")
            elif isinstance(row[key], bool) and ty is not bool:
                errors.append(f"{where}: '{key}' is bool, want {ty}")
            elif not isinstance(row[key], ty):
                errors.append(f"{where}: '{key}' is "
                              f"{type(row[key]).__name__}, want {ty}")
        if not row.get("verdicts_match", False):
            errors.append(f"{where}: verdicts_match is false")
        if row.get("zdd_only") and (row.get("seed_wall_ms") or
                                    row.get("interned_wall_ms") or
                                    row.get("reduced_wall_ms")):
            errors.append(f"{where}: zdd_only row has explicit timings")
        if row.get("model") == "nsdp:6" and isinstance(
                row.get("zdd_families_bytes"), int):
            if row["zdd_families_bytes"] > NSDP6_ZDD_BYTES_MAX:
                errors.append(
                    f"{where}: zdd_families_bytes "
                    f"{row['zdd_families_bytes']} exceeds the memory gate "
                    f"NSDP6_ZDD_BYTES_MAX={NSDP6_ZDD_BYTES_MAX}")
    return errors


def main_bench(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    errors = validate_bench(doc)
    if errors:
        for e in errors:
            print(f"BENCH VIOLATION {e}", file=sys.stderr)
        return 1
    gated = [r for r in doc["models"] if r["model"] == "nsdp:6"]
    gate = (f", nsdp:6 zdd bytes {gated[0]['zdd_families_bytes']}"
            f" <= {NSDP6_ZDD_BYTES_MAX}" if gated else "")
    print(f"{path}: valid (schema_version 4, {len(doc['models'])} models, "
          f"all verdicts match{gate})")
    return 0


# Event names the scheduler / tracer sink / EventLog itself can emit.
JOB_EVENTS = {"submitted", "started", "racer-start", "first-answer",
              "cancelled", "finished"}
SPAN_EVENTS = {"span-open", "span-close"}
KNOWN_EVENTS = JOB_EVENTS | SPAN_EVENTS | {"dropped"}


def validate_events(lines):
    """Returns a list of error strings for a JSONL event log."""
    errors = []
    last_ts = -1
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            errors.append(f"line {i}: empty line")
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {i}: not JSON ({e})")
            continue
        if not isinstance(rec, dict):
            errors.append(f"line {i}: expected an object")
            continue
        ts = rec.get("ts_us")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            errors.append(f"line {i}: ts_us {ts!r} is not a non-negative int")
        elif ts < last_ts:
            errors.append(f"line {i}: ts_us {ts} < previous {last_ts} "
                          f"(log must be monotonic in file order)")
        else:
            last_ts = ts
        ev = rec.get("event")
        if ev not in KNOWN_EVENTS:
            errors.append(f"line {i}: unknown event {ev!r}")
            continue
        if ev in JOB_EVENTS:
            job = rec.get("job")
            if not isinstance(job, int) or isinstance(job, bool) or job < 0:
                errors.append(f"line {i}: {ev}: 'job' {job!r} is not a "
                              f"non-negative int")
        if ev in SPAN_EVENTS and not isinstance(rec.get("name"), str):
            errors.append(f"line {i}: {ev}: missing string 'name'")
    return errors


def main_events(path):
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if not lines:
        print(f"error: {path} is empty", file=sys.stderr)
        return 1
    errors = validate_events(lines)
    if errors:
        for e in errors:
            print(f"EVENT-LOG VIOLATION {e}", file=sys.stderr)
        return 1
    print(f"{path}: valid ({len(lines)} events, timestamps monotonic)")
    return 0


def type_ok(schema_type, doc):
    if schema_type == "object":
        return isinstance(doc, dict)
    if schema_type == "array":
        return isinstance(doc, list)
    if schema_type == "string":
        return isinstance(doc, str)
    if schema_type == "boolean":
        return isinstance(doc, bool)
    if schema_type == "integer":
        # Accept 7.0 the way the C++ validator does: an integral double is
        # an integer for schema purposes (json has one number type).
        return (isinstance(doc, int) and not isinstance(doc, bool)) or (
            isinstance(doc, float) and doc == int(doc)
        )
    if schema_type == "number":
        return isinstance(doc, (int, float)) and not isinstance(doc, bool)
    if schema_type == "null":
        return doc is None
    return False


def validate(schema, doc, root, path="$"):
    """Returns a list of error strings (empty iff valid)."""
    if "$ref" in schema:
        ref = schema["$ref"]
        prefix = "#/definitions/"
        if not ref.startswith(prefix):
            return [f"{path}: unsupported $ref '{ref}'"]
        name = ref[len(prefix):]
        target = root.get("definitions", {}).get(name)
        if target is None:
            return [f"{path}: unresolved $ref '{ref}'"]
        return validate(target, doc, root, path)

    errors = []
    if "type" in schema and not type_ok(schema["type"], doc):
        return [f"{path}: expected type {schema['type']}, "
                f"got {type(doc).__name__}"]
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: value {doc!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema["minimum"]:
        errors.append(f"{path}: {doc} < minimum {schema['minimum']}")
    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                errors.append(f"{path}: missing required property '{key}'")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in doc:
                errors += validate(sub, doc[key], root, f"{path}.{key}")
        if schema.get("additionalProperties") is False:
            for key in doc:
                if key not in props:
                    errors.append(f"{path}: unexpected property '{key}'")
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            errors += validate(schema["items"], item, root, f"{path}[{i}]")
    return errors


def main(argv):
    if len(argv) == 3 and argv[1] == "--bench":
        return main_bench(argv[2])
    if len(argv) == 3 and argv[1] == "--events":
        return main_events(argv[2])
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    report_path = Path(argv[1])
    schema_path = (
        Path(argv[2]) if len(argv) == 3
        else Path(__file__).resolve().parent / "report_schema.json"
    )
    try:
        schema = json.loads(schema_path.read_text())
        doc = json.loads(report_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    errors = validate(schema, doc, schema)
    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION {e}", file=sys.stderr)
        return 1
    n = len(doc.get("engines", []))
    jobs = doc.get("jobs", [])
    suffix = f", {len(jobs)} jobs" if jobs else ""
    print(f"{report_path}: valid (schema_version "
          f"{doc.get('schema_version')}, {n} engine runs{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
