#!/usr/bin/env python3
"""Validate a run report against bench/report_schema.json.

Usage: validate_report.py REPORT.json [SCHEMA.json]

Implements the same JSON-Schema subset as the C++ validator
(src/obs/json.hpp: obs::json::validate): type, required, properties,
items, enum, minimum, additionalProperties, and $ref into #/definitions.
No third-party jsonschema dependency, so CI can run it on a bare runner.
Exit status 0 iff the document validates; errors go to stderr.
"""
import json
import sys
from pathlib import Path


def type_ok(schema_type, doc):
    if schema_type == "object":
        return isinstance(doc, dict)
    if schema_type == "array":
        return isinstance(doc, list)
    if schema_type == "string":
        return isinstance(doc, str)
    if schema_type == "boolean":
        return isinstance(doc, bool)
    if schema_type == "integer":
        # Accept 7.0 the way the C++ validator does: an integral double is
        # an integer for schema purposes (json has one number type).
        return (isinstance(doc, int) and not isinstance(doc, bool)) or (
            isinstance(doc, float) and doc == int(doc)
        )
    if schema_type == "number":
        return isinstance(doc, (int, float)) and not isinstance(doc, bool)
    if schema_type == "null":
        return doc is None
    return False


def validate(schema, doc, root, path="$"):
    """Returns a list of error strings (empty iff valid)."""
    if "$ref" in schema:
        ref = schema["$ref"]
        prefix = "#/definitions/"
        if not ref.startswith(prefix):
            return [f"{path}: unsupported $ref '{ref}'"]
        name = ref[len(prefix):]
        target = root.get("definitions", {}).get(name)
        if target is None:
            return [f"{path}: unresolved $ref '{ref}'"]
        return validate(target, doc, root, path)

    errors = []
    if "type" in schema and not type_ok(schema["type"], doc):
        return [f"{path}: expected type {schema['type']}, "
                f"got {type(doc).__name__}"]
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: value {doc!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema["minimum"]:
        errors.append(f"{path}: {doc} < minimum {schema['minimum']}")
    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                errors.append(f"{path}: missing required property '{key}'")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in doc:
                errors += validate(sub, doc[key], root, f"{path}.{key}")
        if schema.get("additionalProperties") is False:
            for key in doc:
                if key not in props:
                    errors.append(f"{path}: unexpected property '{key}'")
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            errors += validate(schema["items"], item, root, f"{path}[{i}]")
    return errors


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    report_path = Path(argv[1])
    schema_path = (
        Path(argv[2]) if len(argv) == 3
        else Path(__file__).resolve().parent / "report_schema.json"
    )
    try:
        schema = json.loads(schema_path.read_text())
        doc = json.loads(report_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    errors = validate(schema, doc, schema)
    if errors:
        for e in errors:
            print(f"SCHEMA VIOLATION {e}", file=sys.stderr)
        return 1
    n = len(doc.get("engines", []))
    jobs = doc.get("jobs", [])
    suffix = f", {len(jobs)} jobs" if jobs else ""
    print(f"{report_path}: valid (schema_version "
          f"{doc.get('schema_version')}, {n} engine runs{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
