// Regenerates Table 1 of the paper: for every instance of the four benchmark
// families (NSDP, ASAT, OVER, RW) it runs
//   * exhaustive reachability           -> "States" column,
//   * the stubborn-set explorer         -> "SPIN+PO" columns (states, time),
//   * symbolic (BDD) reachability       -> "SMV" columns (peak nodes, time),
//   * generalized partial-order analysis-> "GPO" columns (states, time),
// and prints the same rows the paper reports, plus a CSV dump
// (table1_results.csv) for downstream plotting. Engines that exceed the
// per-run budget are reported as ">cap", mirroring the paper's "> 24 hours"
// entries. GPO runs with the BDD-backed set family (the explicit family is
// covered by bench/ablation_family).
//
// Usage: bench_table1 [--quick] [--max-seconds S] [--csv FILE] [--threads N]
//                     [--gpo-threads N] [--report FILE] [--reduce L]
// --threads N runs the exhaustive "States" column on the parallel sharded
// explorer with N workers (counts are identical to the sequential engine).
// --gpo-threads N runs the "GPO" column on the work-stealing interned-family
// engine with N workers (again count-identical; with N=1 the column switches
// from the BDD family to the sequential interned engine so the comparison
// stays within one representation).
// --report FILE additionally writes the schema-stable JSON run report
// (bench/report_schema.json) shared with `julie --report`.
// --reduce L (safe|aggressive) runs the structural net-reduction pipeline
// once per instance and feeds every engine the reduced net (verdicts are
// preserved by construction; see src/reduce/). The CSV gains the
// before/after place and transition counts plus the reduction time.
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/symbolic_reach.hpp"
#include "core/gpo.hpp"
#include "models/models.hpp"
#include "obs/report.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"
#include "reduce/reduce.hpp"

namespace {

using gpo::petri::PetriNet;

struct Cell {
  double value = 0;   // states or nodes
  double seconds = 0;
  bool aborted = false;
  bool deadlock = false;
};

struct Row {
  std::string problem;
  Cell full, por, smv, gpo;
  double smv_states = -1;  // the smv cell's value is peak nodes
  std::size_t gpo_delegated = 0;
  // --reduce: pre-engine net shrink (before == after when off / no-op).
  std::size_t places_before = 0, places_after = 0;
  std::size_t transitions_before = 0, transitions_after = 0;
  double reduce_seconds = 0;
};

std::string fmt_count(const Cell& c) {
  if (c.aborted) return "> cap";
  std::ostringstream ss;
  if (c.value >= 1e7)
    ss << std::scientific << std::setprecision(2) << c.value;
  else
    ss << static_cast<long long>(c.value);
  return ss.str();
}

std::string fmt_time(const Cell& c) {
  if (c.aborted) return "-";
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(c.seconds < 0.01 ? 4 : 2) << c.seconds;
  return ss.str();
}

Row run_row(const std::string& name, const PetriNet& net, double budget,
            std::size_t threads, std::size_t gpo_threads,
            gpo::obs::MetricsRegistry* reg) {
  // Each engine publishes its counters under its default prefix ("full.",
  // "por.", "bdd.", "gpo.") into the per-row registry for --report.
  Row row;
  row.problem = name;

  {
    gpo::reach::ExplorerOptions opt;
    opt.max_seconds = budget;
    opt.max_states = 50'000'000;
    opt.num_threads = threads;
    opt.metrics = reg;
    auto r = gpo::reach::ExplicitExplorer(net, opt).explore();
    row.full = {static_cast<double>(r.state_count), r.seconds, r.limit_hit,
                r.deadlock_found};
  }
  {
    gpo::por::StubbornOptions opt;
    opt.max_seconds = budget;
    opt.metrics = reg;
    auto r = gpo::por::StubbornExplorer(net, opt).explore();
    row.por = {static_cast<double>(r.state_count), r.seconds, r.limit_hit,
               r.deadlock_found};
  }
  {
    gpo::bdd::SymbolicOptions opt;
    opt.max_seconds = budget;
    opt.metrics = reg;
    auto r = gpo::bdd::SymbolicReachability(net, opt).analyze();
    row.smv = {static_cast<double>(r.peak_nodes), r.seconds, r.blowup,
               r.deadlock_found};
    row.smv_states = r.state_count;
  }
  {
    gpo::core::GpoOptions opt;
    opt.max_seconds = budget;
    opt.metrics = reg;
    opt.num_threads = gpo_threads > 0 ? gpo_threads : 1;
    // --gpo-threads selects the interned family (the parallel-capable
    // representation); the default column stays on the BDD family.
    auto kind = gpo_threads > 0 ? gpo::core::FamilyKind::kInterned
                                : gpo::core::FamilyKind::kBdd;
    auto r = gpo::core::run_gpo(net, kind, opt);
    row.gpo = {static_cast<double>(r.state_count), r.seconds, r.limit_hit,
               r.deadlock_found};
    row.gpo_delegated = r.delegated_states;
  }
  return row;
}

gpo::obs::RunReport::EngineRun engine_run(const std::string& engine,
                                          const std::string& model,
                                          const Cell& c, double states,
                                          const gpo::obs::MetricsRegistry& reg,
                                          const std::string& prefix) {
  gpo::obs::RunReport::EngineRun er;
  er.engine = engine;
  er.model = model;
  er.verdict =
      c.aborted ? "aborted" : (c.deadlock ? "deadlock" : "no-deadlock");
  er.states = states;
  er.seconds = c.seconds;
  er.aborted = c.aborted;
  er.counters = gpo::obs::registry_to_json(reg, prefix);
  return er;
}

}  // namespace

int main(int argc, char** argv) {
  double budget = 60.0;
  bool quick = false;
  std::size_t threads = 1;
  std::size_t gpo_threads = 0;  // 0 = GPO column on the default BDD family
  gpo::reduce::ReduceLevel reduce_level = gpo::reduce::ReduceLevel::kOff;
  std::string csv_path = "table1_results.csv";
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) quick = true;
    if (!std::strcmp(argv[i], "--max-seconds") && i + 1 < argc)
      budget = std::stod(argv[++i]);
    if (!std::strcmp(argv[i], "--csv") && i + 1 < argc) csv_path = argv[++i];
    if (!std::strcmp(argv[i], "--report") && i + 1 < argc)
      report_path = argv[++i];
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::stoul(argv[++i]);
      if (threads == 0) threads = 1;
    }
    if (!std::strcmp(argv[i], "--gpo-threads") && i + 1 < argc) {
      gpo_threads = std::stoul(argv[++i]);
      if (gpo_threads == 0) gpo_threads = 1;
    }
    if (!std::strcmp(argv[i], "--reduce") && i + 1 < argc) {
      auto level = gpo::reduce::parse_reduce_level(argv[++i]);
      if (!level.has_value()) {
        std::cerr << "--reduce must be off, safe or aggressive, got '"
                  << argv[i] << "'\n";
        return 2;
      }
      reduce_level = *level;
    }
  }

  gpo::obs::RunReport report("bench_table1");
  {
    std::string cmd;
    for (int a = 0; a < argc; ++a) {
      if (a > 0) cmd += ' ';
      cmd += argv[a];
    }
    report.set_command(cmd);
  }

  struct Instance {
    std::string label;
    PetriNet net;
  };
  std::vector<Instance> instances;
  std::vector<std::size_t> nsdp_sizes = quick
                                            ? std::vector<std::size_t>{2, 4}
                                            : std::vector<std::size_t>{2, 4, 6,
                                                                       8, 10};
  for (std::size_t n : nsdp_sizes)
    instances.push_back({"NSDP(" + std::to_string(n) + ")",
                         gpo::models::make_nsdp(n)});
  for (std::size_t n : quick ? std::vector<std::size_t>{2}
                             : std::vector<std::size_t>{2, 4, 8})
    instances.push_back({"ASAT(" + std::to_string(n) + ")",
                         gpo::models::make_arbiter_tree(n)});
  for (std::size_t n : quick ? std::vector<std::size_t>{2, 3}
                             : std::vector<std::size_t>{2, 3, 4, 5})
    instances.push_back({"OVER(" + std::to_string(n) + ")",
                         gpo::models::make_overtake(n)});
  for (std::size_t n : quick ? std::vector<std::size_t>{6}
                             : std::vector<std::size_t>{6, 9, 12, 15})
    instances.push_back({"RW(" + std::to_string(n) + ")",
                         gpo::models::make_readers_writers(n)});
  // Extended evaluation beyond the paper's four families.
  for (std::size_t n : quick ? std::vector<std::size_t>{4}
                             : std::vector<std::size_t>{4, 8, 12})
    instances.push_back({"CYS(" + std::to_string(n) + ")",
                         gpo::models::make_cyclic_scheduler(n)});
  for (std::size_t n : quick ? std::vector<std::size_t>{4}
                             : std::vector<std::size_t>{4, 5, 6})
    instances.push_back({"RING(" + std::to_string(n) + ")",
                         gpo::models::make_slotted_ring(n)});

  std::cout << "Table 1 reproduction — Generalized Partial Order Analysis\n"
            << "(SPIN+PO proxied by the stubborn-set explorer, SMV by the\n"
            << " from-scratch BDD engine; see DESIGN.md for substitutions)\n";
  if (threads > 1)
    std::cout << "(exhaustive column: parallel explorer, " << threads
              << " threads)\n";
  if (gpo_threads > 0)
    std::cout << "(GPO column: work-stealing interned-family engine, "
              << gpo_threads << " thread" << (gpo_threads > 1 ? "s" : "")
              << ")\n";
  const bool reducing = reduce_level != gpo::reduce::ReduceLevel::kOff;
  if (reducing)
    std::cout << "(all engines run on the "
              << gpo::reduce::reduce_level_name(reduce_level)
              << "-reduced net; Net column shows places/transitions "
                 "before -> after)\n";
  std::cout << "\n";
  std::cout << std::left << std::setw(10) << "Problem" << std::right;
  if (reducing) std::cout << std::setw(20) << "Net(p/t)";
  std::cout << std::setw(10) << "States"                      //
            << std::setw(10) << "PO-states" << std::setw(9) << "PO-t(s)"  //
            << std::setw(12) << "BDD-peak" << std::setw(9) << "BDD-t(s)"  //
            << std::setw(11) << "GPO-states" << std::setw(9) << "GPO-t(s)"
            << std::setw(11) << "GPO-deleg" << "\n";
  std::cout << std::string(reducing ? 111 : 91, '-') << "\n";

  std::ofstream csv(csv_path);
  csv << "problem,full_states,full_s,por_states,por_s,bdd_peak,bdd_s,"
         "gpo_states,gpo_s,gpo_delegated";
  if (reducing)
    csv << ",places_before,places_after,transitions_before,"
           "transitions_after,reduce_s";
  csv << "\n";

  for (const Instance& inst : instances) {
    // A fresh registry per instance keeps the four engines' counters from
    // accumulating across rows.
    gpo::obs::MetricsRegistry reg;
    const PetriNet* net = &inst.net;
    std::optional<PetriNet> reduced;
    Row red_stats;
    if (reducing) {
      gpo::reduce::ReduceOptions ro;
      ro.level = reduce_level;
      gpo::reduce::ReductionResult red = gpo::reduce::reduce_net(inst.net, ro);
      red_stats.places_before = red.stats.places_before;
      red_stats.places_after = red.stats.places_after;
      red_stats.transitions_before = red.stats.transitions_before;
      red_stats.transitions_after = red.stats.transitions_after;
      red_stats.reduce_seconds = red.stats.seconds;
      reduced.emplace(std::move(red.net));
      net = &*reduced;
    }
    Row row = run_row(inst.label, *net, budget, threads, gpo_threads,
                      report_path.empty() ? nullptr : &reg);
    row.places_before = red_stats.places_before;
    row.places_after = red_stats.places_after;
    row.transitions_before = red_stats.transitions_before;
    row.transitions_after = red_stats.transitions_after;
    row.reduce_seconds = red_stats.reduce_seconds;
    std::cout << std::left << std::setw(10) << row.problem << std::right;
    if (reducing) {
      std::ostringstream nets;
      nets << row.places_before << "p/" << row.transitions_before << "t->"
           << row.places_after << "p/" << row.transitions_after << "t";
      std::cout << std::setw(20) << nets.str();
    }
    std::cout << std::setw(10) << fmt_count(row.full)       //
              << std::setw(10) << fmt_count(row.por)        //
              << std::setw(9) << fmt_time(row.por)          //
              << std::setw(12) << fmt_count(row.smv)        //
              << std::setw(9) << fmt_time(row.smv)          //
              << std::setw(11) << fmt_count(row.gpo)        //
              << std::setw(9) << fmt_time(row.gpo)          //
              << std::setw(11) << row.gpo_delegated << "\n"
              << std::flush;
    csv << row.problem << ',' << row.full.value << ',' << row.full.seconds
        << ',' << row.por.value << ',' << row.por.seconds << ','
        << row.smv.value << ',' << row.smv.seconds << ',' << row.gpo.value
        << ',' << row.gpo.seconds << ',' << row.gpo_delegated;
    if (reducing)
      csv << ',' << row.places_before << ',' << row.places_after << ','
          << row.transitions_before << ',' << row.transitions_after << ','
          << row.reduce_seconds;
    csv << "\n";
    if (!report_path.empty()) {
      report.add_engine(
          engine_run("full", inst.label, row.full, row.full.value, reg,
                     "full."));
      report.add_engine(
          engine_run("por", inst.label, row.por, row.por.value, reg, "por."));
      report.add_engine(
          engine_run("bdd", inst.label, row.smv, row.smv_states, reg, "bdd."));
      report.add_engine(
          engine_run("gpo-bdd", inst.label, row.gpo, row.gpo.value, reg,
                     "gpo."));
    }
  }
  std::cout << "\nCSV written to " << csv_path << "\n";
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "cannot write " << report_path << "\n";
      return 1;
    }
    report.write(out, nullptr, nullptr);
    std::cout << "report written to " << report_path << "\n";
  }
  return 0;
}
