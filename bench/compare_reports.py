#!/usr/bin/env python3
"""Compare two run reports (or bench documents) and fail on regressions.

Usage: compare_reports.py BASELINE.json CURRENT.json
           [--max-wall-regress F] [--max-mem-regress F] [--min-wall-ms M]

The postmortem/regression half of the observability tooling: CI checks a
fresh report against a checked-in baseline and exits 1 when wall time or
peak memory regressed beyond the threshold factors. Two document shapes
are auto-detected from their content (both inputs must be the same
shape):

  * bench documents ("benchmark": "bench_gpo_intern"): rows are matched
    by model; the compared walls are interned_wall_ms and zdd_wall_ms,
    the compared memory is peak_rss_bytes. Thread-sweep documents
    ("benchmark": "bench_gpo_parallel") are matched by model@Nt and
    compared on wall_ms — the CI thread-sweep job uses this to gate the
    1-thread rows of a PR against the checked-in sequential baseline.
  * run reports (bench/report_schema.json): engines[] entries are
    matched by (engine, model) and compared on seconds; jobs[] entries
    are matched by model and compared on seconds; memory is
    memory.peak_rss_bytes.

A wall measurement counts as a regression iff
    current > baseline * (1 + max_wall_regress)  AND  current >= min_wall_ms
— the absolute floor keeps microsecond-scale timings (pure scheduler
noise) from tripping the ratio test. Memory has no floor; RSS is stable.
Rows present on only one side are reported but never fail the
comparison: baselines age as the model set grows, and a missing row is a
coverage question for the schema validator, not a perf regression.

Thresholds default generously (wall 3.0 = 4x, mem 0.5 = 1.5x) because CI
runners vary wildly; tighten with the flags for controlled hardware.
Exit status: 0 = no regressions, 1 = regression or bad input, 2 = usage.
"""
import json
import sys
from pathlib import Path


def is_bench(doc):
    return isinstance(doc, dict) and "benchmark" in doc and "models" in doc


def bench_rows(doc):
    """{model: {measure_name: value}} for a bench document.

    bench_gpo_intern rows are keyed by model; bench_gpo_parallel rows
    (they carry a "threads" field) by "model@Nt" with wall_ms as the
    measure, so a sweep can be compared against a sweep — or its 1-thread
    rows against a bench_gpo_intern baseline by renaming, which the CI
    thread-sweep job sidesteps by comparing sweep-to-sweep.
    """
    rows = {}
    for row in doc.get("models", []):
        model = row.get("model", "?")
        measures = {}
        if "threads" in row:
            model = f'{model}@{row["threads"]}t'
            v = row.get("wall_ms")
            if isinstance(v, (int, float)) and v > 0:
                measures["wall_ms"] = float(v)
        for key in ("interned_wall_ms", "zdd_wall_ms"):
            v = row.get(key)
            if isinstance(v, (int, float)) and v > 0:
                measures[key] = float(v)
        rss = row.get("peak_rss_bytes")
        if isinstance(rss, int) and rss > 0:
            measures["peak_rss_bytes"] = float(rss)
        rows[model] = measures
    return rows


def report_rows(doc):
    """{label: {measure_name: value}} for a run report.

    Engine runs are keyed "engine:model" (the same engine can run many
    models in one report), jobs by "job:model"; wall values are converted
    to ms so one --min-wall-ms floor covers both shapes.
    """
    rows = {}
    for er in doc.get("engines", []):
        if er.get("aborted") or er.get("cancelled"):
            continue  # an aborted run's wall is the limit, not a measurement
        label = f'{er.get("engine", "?")}:{er.get("model", "?")}'
        secs = er.get("seconds")
        if isinstance(secs, (int, float)) and secs > 0:
            rows[label] = {"wall_ms": secs * 1000.0}
    for job in doc.get("jobs", []):
        label = f'job:{job.get("model", "?")}'
        secs = job.get("seconds")
        if isinstance(secs, (int, float)) and secs > 0:
            rows[label] = {"wall_ms": secs * 1000.0}
    rss = doc.get("memory", {}).get("peak_rss_bytes")
    if isinstance(rss, int) and rss > 0:
        rows["process"] = {"peak_rss_bytes": float(rss)}
    return rows


def compare(base_rows, cur_rows, max_wall, max_mem, min_wall_ms):
    """Returns (regressions, notes): lists of printable strings."""
    regressions, notes = [], []
    for label in sorted(set(base_rows) | set(cur_rows)):
        if label not in cur_rows:
            notes.append(f"{label}: only in baseline (skipped)")
            continue
        if label not in base_rows:
            notes.append(f"{label}: only in current (skipped)")
            continue
        base, cur = base_rows[label], cur_rows[label]
        for measure in sorted(set(base) | set(cur)):
            if measure not in base or measure not in cur:
                continue
            b, c = base[measure], cur[measure]
            is_mem = measure == "peak_rss_bytes"
            threshold = max_mem if is_mem else max_wall
            limit = b * (1.0 + threshold)
            line = (f"{label} {measure}: baseline {b:.3f} -> current "
                    f"{c:.3f} ({c / b:.2f}x, limit {1.0 + threshold:.2f}x)")
            if c > limit and (is_mem or c >= min_wall_ms):
                regressions.append(line)
            else:
                notes.append(line + " ok")
    return regressions, notes


def main(argv):
    args = []
    max_wall, max_mem, min_wall_ms = 3.0, 0.5, 100.0
    it = iter(argv[1:])
    try:
        for a in it:
            if a == "--max-wall-regress":
                max_wall = float(next(it))
            elif a == "--max-mem-regress":
                max_mem = float(next(it))
            elif a == "--min-wall-ms":
                min_wall_ms = float(next(it))
            elif a.startswith("--"):
                raise ValueError(f"unknown flag {a}")
            else:
                args.append(a)
    except (StopIteration, ValueError) as e:
        print(f"error: {e}\n\n{__doc__.strip()}", file=sys.stderr)
        return 2
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        base = json.loads(Path(args[0]).read_text())
        cur = json.loads(Path(args[1]).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if is_bench(base) != is_bench(cur):
        print("error: baseline and current are different document shapes "
              "(bench vs run report)", file=sys.stderr)
        return 1
    extract = bench_rows if is_bench(base) else report_rows
    base_rows, cur_rows = extract(base), extract(cur)
    if not base_rows or not cur_rows:
        print("error: nothing to compare (no timed rows found)",
              file=sys.stderr)
        return 1
    regressions, notes = compare(base_rows, cur_rows, max_wall, max_mem,
                                 min_wall_ms)
    for n in notes:
        print(f"  {n}")
    if regressions:
        for r in regressions:
            print(f"REGRESSION {r}", file=sys.stderr)
        print(f"{len(regressions)} regression(s) vs {args[0]}",
              file=sys.stderr)
        return 1
    print(f"{args[1]}: no regressions vs {args[0]} "
          f"({len(base_rows)} rows, wall limit {1.0 + max_wall:.2f}x, "
          f"mem limit {1.0 + max_mem:.2f}x, floor {min_wall_ms:g} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
