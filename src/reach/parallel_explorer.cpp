// Parallel explicit reachability: the sharded sibling of the sequential BFS
// in explorer.cpp. State interning goes through a gpo::util::ShardedMarkingSet
// (N-way striped hash set, parent/via breadcrumbs in the shard entries);
// work distribution uses the shared gpo::util::WorkStealingQueues (one deque
// per worker with round-robin stealing); termination is detected through an
// atomic count of discovered-but-not-yet-expanded states. Every worker keeps
// private accumulators (edges, deadlocks, fireable transitions, steals) that
// are merged after join, so the reported counts are identical to the
// sequential engine's; only the choice of *which* deadlock becomes the
// counterexample is scheduling-dependent (it always replays). max_states /
// max_seconds are honored cooperatively: any worker that notices a limit
// raises the shared stop flag and everyone drains.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "reach/explorer.hpp"
#include "util/sharded_marking_set.hpp"
#include "util/stopwatch.hpp"
#include "util/work_stealing.hpp"

namespace gpo::reach {

namespace {

using petri::Marking;
using petri::TransitionId;
using util::ShardedMarkingSet;
using StateId = ShardedMarkingSet::StateId;

struct WorkItem {
  StateId id = 0;
  Marking marking;
};

// Counters each worker accumulates privately and merges once at join.
struct WorkerTally {
  std::size_t edge_count = 0;
  std::size_t deadlock_count = 0;
  std::size_t steal_count = 0;
  util::Bitset fireable;
  bool safeness_violation = false;
  Marking unsafe_source;
};

// State shared by all workers for one exploration.
struct SharedSearch {
  const petri::PetriNet& net;
  const ExplorerOptions& options;
  ShardedMarkingSet set;
  util::WorkStealingQueues<WorkItem> queues;
  util::Stopwatch timer;

  /// Discovered states not yet fully expanded; 0 with empty deques = done.
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> peak_in_flight{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> limit_hit{false};

  // Live-progress slots for the heartbeat (null when telemetry is off or the
  // hot counters were compiled out). Shared by all workers; relaxed atomics.
  obs::Counter* live_states = nullptr;
  obs::Gauge* live_frontier = nullptr;

  // Rarely touched "first witness" slots, hence one plain mutex.
  std::mutex first_mu;
  std::optional<StateId> first_deadlock_id;
  std::optional<Marking> first_bad_state;
  std::optional<Marking> first_unsafe_source;

  SharedSearch(const petri::PetriNet& n, const ExplorerOptions& o,
               std::size_t threads, std::size_t shards)
      : net(n), options(o), set(shards), queues(threads) {}

  void note_peak(std::uint64_t current) {
    std::uint64_t prev = peak_in_flight.load(std::memory_order_relaxed);
    while (prev < current && !peak_in_flight.compare_exchange_weak(
                                prev, current, std::memory_order_relaxed)) {
    }
  }

  /// Deadlock/bad-state bookkeeping for a freshly interned state. Runs
  /// exactly once per distinct marking (only the inserting worker calls it).
  void inspect_fresh(const Marking& m, StateId id, WorkerTally& tally) {
    if (net.is_deadlocked(m)) {
      ++tally.deadlock_count;
      {
        std::lock_guard<std::mutex> lock(first_mu);
        if (!first_deadlock_id) first_deadlock_id = id;
      }
      if (options.stop_at_first_deadlock)
        stop.store(true, std::memory_order_relaxed);
    }
    if (options.bad_state && options.bad_state(m)) {
      {
        std::lock_guard<std::mutex> lock(first_mu);
        if (!first_bad_state) first_bad_state = m;
      }
      if (options.stop_at_first_deadlock)
        stop.store(true, std::memory_order_relaxed);
    }
  }
};

void expand(SharedSearch& shared, std::size_t me, const WorkItem& item,
            WorkerTally& tally) {
  const petri::PetriNet& net = shared.net;
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    if (!net.enabled(t, item.marking)) continue;
    tally.fireable.set(t);
    bool unsafe = false;
    Marking next = net.fire(t, item.marking, &unsafe);
    if (unsafe && !tally.safeness_violation) {
      tally.safeness_violation = true;
      tally.unsafe_source = item.marking;
      std::lock_guard<std::mutex> lock(shared.first_mu);
      if (!shared.first_unsafe_source)
        shared.first_unsafe_source = item.marking;
    }
    ++tally.edge_count;
    auto [id, fresh] = shared.set.insert(next, item.id, t);
    if (fresh) {
      shared.inspect_fresh(next, id, tally);
      if (shared.set.size() > shared.options.max_states) {
        shared.limit_hit.store(true, std::memory_order_relaxed);
        shared.stop.store(true, std::memory_order_relaxed);
        return;
      }
      std::uint64_t now =
          shared.in_flight.fetch_add(1, std::memory_order_seq_cst) + 1;
      shared.note_peak(now);
      if (shared.live_states != nullptr) {
        shared.live_states->add();
        shared.live_frontier->set(static_cast<double>(now));
      }
      shared.queues.push(me, {id, std::move(next)});
    }
    if (shared.stop.load(std::memory_order_relaxed)) return;
  }
}

void worker(SharedSearch& shared, std::size_t me, WorkerTally& tally) {
  std::size_t expansions = 0;
  WorkItem item;
  while (!shared.stop.load(std::memory_order_relaxed)) {
    bool stolen = false;
    if (!shared.queues.acquire(me, item, stolen)) {
      if (shared.in_flight.load(std::memory_order_seq_cst) == 0) return;
      std::this_thread::yield();
      continue;
    }
    if (stolen) ++tally.steal_count;
    expand(shared, me, item, tally);
    shared.in_flight.fetch_sub(1, std::memory_order_seq_cst);
    if (util::cancel_requested(shared.options.cancel) ||
        ((++expansions & 0x3f) == 0 &&
         shared.timer.elapsed_seconds() > shared.options.max_seconds)) {
      shared.limit_hit.store(true, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_relaxed);
    }
  }
}

}  // namespace

ExplorerResult ExplicitExplorer::explore_parallel() const {
  const std::size_t threads = options_.num_threads;
  std::size_t shards = options_.shard_count;
  if (shards == 0) shards = std::max<std::size_t>(16, 4 * threads);

  SharedSearch shared(net_, options_, threads, shards);
  if (obs::kHotCountersEnabled && options_.metrics != nullptr) {
    shared.live_states = &options_.metrics->counter("progress.states");
    shared.live_frontier = &options_.metrics->gauge("progress.frontier");
  }
  std::vector<WorkerTally> tallies(threads);
  for (WorkerTally& t : tallies)
    t.fireable = util::Bitset(net_.transition_count());

  auto [root, fresh] = shared.set.insert(
      net_.initial_marking(), ShardedMarkingSet::kNoParent,
      petri::kInvalidTransition);
  (void)fresh;
  shared.inspect_fresh(net_.initial_marking(), root, tallies[0]);
  if (!shared.stop.load(std::memory_order_relaxed)) {
    shared.in_flight.store(1, std::memory_order_seq_cst);
    shared.note_peak(1);
    shared.queues.push(0, {root, net_.initial_marking()});
  }

  {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      pool.emplace_back(
          [&shared, &tallies, i] { worker(shared, i, tallies[i]); });
    for (std::thread& t : pool) t.join();
  }

  // All workers joined: the set and the witness slots are quiescent.
  ExplorerResult result;
  result.fireable_transitions = util::Bitset(net_.transition_count());
  for (const WorkerTally& t : tallies) {
    result.edge_count += t.edge_count;
    result.deadlock_count += t.deadlock_count;
    result.fireable_transitions |= t.fireable;
    result.stats.steal_count += t.steal_count;
    if (t.safeness_violation) result.safeness_violation = true;
  }
  result.state_count = shared.set.size();
  result.limit_hit = shared.limit_hit.load(std::memory_order_relaxed);
  result.unsafe_source = shared.first_unsafe_source;
  if (shared.first_bad_state) {
    result.bad_state_found = true;
    result.first_bad_state = shared.first_bad_state;
  }
  if (shared.first_deadlock_id) {
    result.deadlock_found = true;
    result.first_deadlock = shared.set.entry(*shared.first_deadlock_id).state;
    // Walk the parent breadcrumbs back to the root, exactly like the
    // sequential engine's reconstruct().
    std::vector<TransitionId> seq;
    for (StateId s = *shared.first_deadlock_id;
         shared.set.entry(s).meta.parent != ShardedMarkingSet::kNoParent;
         s = shared.set.entry(s).meta.parent)
      seq.push_back(shared.set.entry(s).meta.via);
    std::reverse(seq.begin(), seq.end());
    result.counterexample = std::move(seq);
  }

  result.seconds = shared.timer.elapsed_seconds();
  result.stats.threads = threads;
  result.stats.shard_count = shared.set.shard_count();
  result.stats.peak_frontier =
      static_cast<std::size_t>(shared.peak_in_flight.load());
  if (result.seconds > 0)
    result.stats.states_per_second = result.state_count / result.seconds;
  std::vector<std::size_t> occupancy = shared.set.shard_sizes();
  std::size_t min_s = occupancy.empty() ? 0 : occupancy.front();
  std::size_t max_s = min_s, sum = 0;
  for (std::size_t s : occupancy) {
    min_s = std::min(min_s, s);
    max_s = std::max(max_s, s);
    sum += s;
  }
  result.stats.min_shard_size = min_s;
  result.stats.max_shard_size = max_s;
  if (!occupancy.empty())
    result.stats.avg_shard_size = static_cast<double>(sum) / occupancy.size();
  if (result.limit_hit) result.interrupted_phase = "exploration";
  if (options_.metrics != nullptr)
    publish_explorer_stats(*options_.metrics, options_.metrics_prefix, result,
                           shared.set.memory_bytes());
  return result;
}

}  // namespace gpo::reach
