#include "reach/explorer.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/stopwatch.hpp"

namespace gpo::reach {

using petri::Marking;
using petri::TransitionId;

std::string marking_to_string(const petri::PetriNet& net, const Marking& m) {
  std::string s = "{";
  bool first = true;
  for (std::size_t p = m.find_first(); p < m.size(); p = m.find_next(p + 1)) {
    if (!first) s += ',';
    s += net.place(static_cast<petri::PlaceId>(p)).name;
    first = false;
  }
  return s + "}";
}

ExplorerResult ExplicitExplorer::explore() const {
  // bad_state predicates see input-net markings, so reduction is skipped
  // for them (see ExplorerOptions::reduce_level).
  if (options_.reduce_level != reduce::ReduceLevel::kOff &&
      !options_.bad_state) {
    reduce::ReduceOptions ro;
    ro.level = options_.reduce_level;
    ro.metrics = options_.metrics;
    ro.metrics_prefix = options_.metrics_prefix + "reduce.";
    reduce::ReductionResult red = reduce::reduce_net(net_, ro);
    ExplorerOptions inner = options_;
    inner.reduce_level = reduce::ReduceLevel::kOff;
    ExplorerResult result =
        ExplicitExplorer(red.net, std::move(inner)).explore();
    util::Bitset fireable(net_.transition_count());
    for (std::size_t t = result.fireable_transitions.find_first();
         t < result.fireable_transitions.size();
         t = result.fireable_transitions.find_next(t + 1))
      for (TransitionId o : red.certificate.map_to_original(
               {static_cast<TransitionId>(t)}))
        fireable.set(o);
    result.fireable_transitions = std::move(fireable);
    if (result.deadlock_found && !result.counterexample.empty()) {
      result.counterexample =
          red.certificate.map_to_original(result.counterexample);
      std::optional<Marking> end =
          reduce::replay_trace(net_, result.counterexample);
      if (end.has_value() && net_.is_deadlocked(*end))
        result.first_deadlock = std::move(*end);
      else
        result.first_deadlock.reset();  // replay failed: certificate bug
    } else if (result.deadlock_found) {
      result.first_deadlock.reset();  // reduced-net marking, not mappable
    }
    return result;
  }
  // build_graph needs globally ordered node ids, so it stays sequential.
  if (options_.num_threads > 1 && !options_.build_graph)
    return explore_parallel();
  return explore_sequential();
}

void publish_explorer_stats(obs::MetricsRegistry& reg, std::string_view prefix,
                            const ExplorerResult& result,
                            std::size_t visited_bytes) {
  std::string p(prefix);
  reg.counter(p + "states").store(result.state_count);
  reg.counter(p + "edges").store(result.edge_count);
  reg.counter(p + "deadlocks").store(result.deadlock_count);
  reg.gauge(p + "threads").set(static_cast<double>(result.stats.threads));
  reg.gauge(p + "states_per_second").set(result.stats.states_per_second);
  reg.gauge(p + "peak_frontier")
      .set(static_cast<double>(result.stats.peak_frontier));
  reg.timer(p + "seconds")
      .record_ns(static_cast<std::uint64_t>(result.seconds * 1e9));
  if (result.stats.threads > 1) {
    reg.counter(p + "steals").store(result.stats.steal_count);
    reg.gauge(p + "shards").set(static_cast<double>(result.stats.shard_count));
    reg.gauge(p + "min_shard_size")
        .set(static_cast<double>(result.stats.min_shard_size));
    reg.gauge(p + "max_shard_size")
        .set(static_cast<double>(result.stats.max_shard_size));
    reg.gauge(p + "avg_shard_size").set(result.stats.avg_shard_size);
  }
  reg.gauge("mem." + p + "visited_bytes")
      .set(static_cast<double>(visited_bytes));
}

ExplorerStats stats_from_registry(const obs::MetricsRegistry& reg,
                                  std::string_view prefix) {
  std::string p(prefix);
  auto get = [&](const std::string& name) {
    return reg.value(p + name).value_or(0.0);
  };
  ExplorerStats s;
  s.threads = static_cast<std::size_t>(get("threads"));
  s.states_per_second = get("states_per_second");
  s.peak_frontier = static_cast<std::size_t>(get("peak_frontier"));
  s.steal_count = static_cast<std::size_t>(get("steals"));
  s.shard_count = static_cast<std::size_t>(get("shards"));
  s.min_shard_size = static_cast<std::size_t>(get("min_shard_size"));
  s.max_shard_size = static_cast<std::size_t>(get("max_shard_size"));
  s.avg_shard_size = get("avg_shard_size");
  return s;
}

ExplorerResult ExplicitExplorer::explore_sequential() const {
  ExplorerResult result;
  result.fireable_transitions = util::Bitset(net_.transition_count());
  util::Stopwatch timer;

  // Live-progress slots for the heartbeat; resolved once so the hot path is
  // a null check plus a relaxed fetch_add.
  obs::Counter* live_states = nullptr;
  obs::Gauge* live_frontier = nullptr;
  if (obs::kHotCountersEnabled && options_.metrics != nullptr) {
    live_states = &options_.metrics->counter("progress.states");
    live_frontier = &options_.metrics->gauge("progress.frontier");
  }

  // Index of each stored marking, plus (parent, transition) breadcrumbs for
  // counterexample reconstruction.
  std::unordered_map<Marking, std::size_t> index;
  std::vector<Marking> states;
  struct Breadcrumb {
    std::size_t parent;
    TransitionId via;
  };
  std::vector<Breadcrumb> breadcrumbs;

  auto intern = [&](const Marking& m, std::size_t parent,
                    TransitionId via) -> std::pair<std::size_t, bool> {
    auto [it, inserted] = index.try_emplace(m, states.size());
    if (inserted) {
      states.push_back(m);
      breadcrumbs.push_back({parent, via});
      if (live_states != nullptr) live_states->add();
    }
    return {it->second, inserted};
  };

  auto reconstruct = [&](std::size_t s) {
    std::vector<TransitionId> seq;
    while (s != 0) {
      seq.push_back(breadcrumbs[s].via);
      s = breadcrumbs[s].parent;
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  };

  std::deque<std::size_t> frontier;
  intern(net_.initial_marking(), 0, petri::kInvalidTransition);
  frontier.push_back(0);

  auto inspect = [&](std::size_t s) -> bool {
    // Returns true when the search should stop.
    const Marking& m = states[s];
    if (net_.is_deadlocked(m)) {
      ++result.deadlock_count;
      if (!result.deadlock_found) {
        result.deadlock_found = true;
        result.first_deadlock = m;
        result.counterexample = reconstruct(s);
      }
      if (options_.stop_at_first_deadlock) return true;
    }
    if (options_.bad_state && options_.bad_state(m)) {
      if (!result.bad_state_found) {
        result.bad_state_found = true;
        result.first_bad_state = m;
      }
      if (options_.stop_at_first_deadlock) return true;
    }
    return false;
  };

  bool stopped = inspect(0);
  std::size_t peak_frontier = 1;
  std::vector<TransitionId> enabled;  // per-state scratch, capacity reused
  enabled.reserve(net_.transition_count());

  while (!frontier.empty() && !stopped) {
    peak_frontier = std::max(peak_frontier, frontier.size());
    if (live_frontier != nullptr)
      live_frontier->set(static_cast<double>(frontier.size()));
    if (states.size() > options_.max_states ||
        timer.elapsed_seconds() > options_.max_seconds ||
        util::cancel_requested(options_.cancel)) {
      result.limit_hit = true;
      result.interrupted_phase = "exploration";
      break;
    }
    std::size_t s = frontier.front();
    frontier.pop_front();
    const Marking m = states[s];  // copy: `states` may reallocate below

    net_.enabled_transitions(m, enabled);
    for (TransitionId t : enabled) {
      result.fireable_transitions.set(t);
      bool unsafe = false;
      Marking next = net_.fire(t, m, &unsafe);
      if (unsafe && !result.safeness_violation) {
        result.safeness_violation = true;
        result.unsafe_source = m;
      }
      ++result.edge_count;
      auto [idx, fresh] = intern(next, s, t);
      if (options_.build_graph)
        result.graph.edges.push_back({s, idx, net_.transition(t).name});
      if (fresh) {
        frontier.push_back(idx);
        if (inspect(idx)) {
          stopped = true;
          break;
        }
      }
    }
  }

  result.state_count = states.size();
  result.seconds = timer.elapsed_seconds();
  result.stats.threads = 1;
  result.stats.peak_frontier = peak_frontier;
  if (result.seconds > 0)
    result.stats.states_per_second = result.state_count / result.seconds;
  if (options_.metrics != nullptr) {
    // Marking payloads are uniform, so one sample prices the whole store.
    std::size_t per_marking =
        sizeof(Marking) +
        (states.empty() ? 0 : states.front().memory_bytes());
    std::size_t visited_bytes =
        states.size() * per_marking +
        index.bucket_count() * sizeof(void*) +
        breadcrumbs.size() * sizeof(Breadcrumb);
    publish_explorer_stats(*options_.metrics, options_.metrics_prefix, result,
                           visited_bytes);
  }
  if (options_.build_graph) {
    result.graph.initial = 0;
    result.graph.node_labels.reserve(states.size());
    for (const Marking& m : states)
      result.graph.node_labels.push_back(marking_to_string(net_, m));
  }
  return result;
}

}  // namespace gpo::reach
