// Conventional exhaustive reachability analysis (Section 2.2 of the paper):
// explicit enumeration of every reachable marking under interleaving
// semantics. This engine is the ground truth the reduced engines are
// validated against, and produces the "States" column of Table 1.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "petri/dot.hpp"
#include "petri/net.hpp"
#include "reduce/reduce.hpp"
#include "util/bitset.hpp"
#include "util/cancel_token.hpp"

namespace gpo::reach {

struct ExplorerOptions {
  /// Abort once this many distinct markings were stored.
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  /// Abort after this much wall-clock time.
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Optional cooperative cancellation (the portfolio scheduler's
  /// first-to-answer abort). Polled in the main loop next to the wall-clock
  /// budget; a fired token reports as limit_hit with the current phase.
  const util::CancelToken* cancel = nullptr;
  /// Stop the search at the first deadlock instead of exploring everything.
  bool stop_at_first_deadlock = false;
  /// Record the full reachability graph (states + labeled edges). Only
  /// sensible for small nets; used by tests and DOT dumps. Forces the
  /// sequential path regardless of num_threads.
  bool build_graph = false;
  /// Optional safety property: exploration reports (and, with
  /// stop_at_first_deadlock, stops at) markings where this returns true.
  /// With num_threads > 1 the predicate is invoked concurrently from worker
  /// threads and must be thread-safe.
  std::function<bool(const petri::Marking&)> bad_state;
  /// Worker threads. 1 (the default) keeps today's deterministic sequential
  /// BFS; N > 1 runs the sharded parallel engine, which reports identical
  /// counts but a nondeterministic (always replayable) counterexample.
  std::size_t num_threads = 1;
  /// Stripes of the concurrent marking set. 0 = auto (scales with
  /// num_threads). Ignored on the sequential path.
  std::size_t shard_count = 0;
  /// Optional telemetry sink. When set, the engine bumps the live
  /// "progress.states" / "progress.frontier" slots during the search (unless
  /// hot counters are compiled out) and publishes its final counters under
  /// `metrics_prefix` before returning. Results are bit-identical with or
  /// without a registry attached.
  obs::MetricsRegistry* metrics = nullptr;
  /// Name prefix of the published counters, e.g. "engine.full.".
  std::string metrics_prefix = "full.";
  /// Structural net reduction applied by explore() before the search: the
  /// exploration runs on the reduced net and the deadlock counterexample /
  /// witness are mapped back to the input net through the certificate
  /// (replay is the oracle). Honored only when `bad_state` is unset — that
  /// predicate sees input-net markings and must not be rewritten. Counts
  /// (states, edges, deadlock_count) are those of the reduced search.
  /// Callers that reduce once for several engines keep this kOff.
  reduce::ReduceLevel reduce_level = reduce::ReduceLevel::kOff;
};

/// Observability counters for one exploration, printed by `julie --stats`.
struct ExplorerStats {
  std::size_t threads = 1;
  /// States interned per wall-clock second.
  double states_per_second = 0;
  /// High-water mark of discovered-but-unexpanded states.
  std::size_t peak_frontier = 0;
  /// Work items taken from another worker's deque (0 when sequential).
  std::size_t steal_count = 0;
  /// Stripes of the sharded marking set (0 when sequential).
  std::size_t shard_count = 0;
  /// Occupancy spread across shards after the run (0 when sequential).
  std::size_t min_shard_size = 0;
  std::size_t max_shard_size = 0;
  double avg_shard_size = 0;
};

struct ExplorerResult {
  std::size_t state_count = 0;
  std::size_t edge_count = 0;
  std::size_t deadlock_count = 0;

  bool deadlock_found = false;
  std::optional<petri::Marking> first_deadlock;
  /// Firing sequence from the initial marking to first_deadlock.
  std::vector<petri::TransitionId> counterexample;

  bool bad_state_found = false;
  std::optional<petri::Marking> first_bad_state;

  /// The net fired a token into an already-marked place: not 1-safe.
  bool safeness_violation = false;
  std::optional<petri::Marking> unsafe_source;

  /// Transitions enabled in at least one explored marking. For the
  /// exhaustive engine after a complete run, the complement is exactly the
  /// set of dead (never fireable) transitions — the quasi-liveness check of
  /// Section 2.1. For the reduced engines (which reuse this result type)
  /// it is a sound lower bound only.
  util::Bitset fireable_transitions;

  /// True when max_states/max_seconds stopped the search early.
  bool limit_hit = false;
  /// Which phase the limit interrupted ("exploration" for this engine; the
  /// reduced engines report their own phase names). Empty when !limit_hit.
  std::string interrupted_phase;
  double seconds = 0.0;

  ExplorerStats stats;

  /// Populated when ExplorerOptions::build_graph is set. Node labels are
  /// marking renderings; edge labels transition names.
  petri::LabeledGraph graph;
};

/// Explores the reachable markings of a safe Petri net breadth-first.
/// The instance is single-use per call but stateless between calls.
/// With ExplorerOptions::num_threads > 1 (and build_graph off) the
/// exploration runs on the sharded parallel engine instead.
class ExplicitExplorer {
 public:
  explicit ExplicitExplorer(const petri::PetriNet& net,
                            ExplorerOptions options = {})
      : net_(net), options_(std::move(options)) {}

  [[nodiscard]] ExplorerResult explore() const;

 private:
  [[nodiscard]] ExplorerResult explore_sequential() const;
  [[nodiscard]] ExplorerResult explore_parallel() const;

  const petri::PetriNet& net_;
  ExplorerOptions options_;
};

/// Publishes the final counters of one exploration under `prefix`
/// ("<prefix>states", "<prefix>peak_frontier", ... plus the
/// "mem.<prefix>visited_bytes" gauge). Engines call this themselves when
/// ExplorerOptions::metrics is set; bench drivers may call it directly.
void publish_explorer_stats(obs::MetricsRegistry& reg, std::string_view prefix,
                            const ExplorerResult& result,
                            std::size_t visited_bytes);

/// Reconstructs the ExplorerStats view from counters previously published
/// under `prefix` — the registry is the source of truth, the struct a
/// convenience view (missing names read as zero).
[[nodiscard]] ExplorerStats stats_from_registry(const obs::MetricsRegistry& reg,
                                                std::string_view prefix);

/// Renders a marking as the set of marked place names, e.g. "{p0,p3}".
[[nodiscard]] std::string marking_to_string(const petri::PetriNet& net,
                                            const petri::Marking& m);

}  // namespace gpo::reach
