// Work-stealing parallel GPO exploration over the concurrent FamilyInterner.
//
// The sequential GpnAnalyzer explores the reduced GPN state graph with one
// BFS; this engine runs the same per-state expansion from N worker threads:
//   * frontier: gpo::util::WorkStealingQueues<WorkItem> (one deque per
//     worker, owner LIFO / thief FIFO, round-robin victims);
//   * visited set: gpo::util::ShardedStateSet<GpnState, Crumb> — each
//     distinct GPN state interned once, with its discovery breadcrumb
//     (parent id, firing mode, fired transitions) for counterexample replay;
//   * family algebra: the shared FamilyInterner (striped unique table,
//     per-thread op caches), so workers intern and operate on families
//     without a global lock.
//
// Determinism: per-state expansion (plan_expansion + s_update/m_update) is a
// pure function of the state, so the set of reachable GPN states — and with
// it state/edge counts, step counts, fireable transitions, the deadlock
// verdict and the guard/bail-out decisions — is independent of exploration
// order and thread count. Only *which* dead scenario becomes the reported
// counterexample is scheduling-dependent; it always replays to a classical
// firing sequence (the cross-check tests verify all of this against the
// sequential engine).
//
// The post-search phases (fragmentation bail-out, anti-ignoring guard,
// counterexample replay) run single-threaded after the workers join, through
// the helpers shared with GpnAnalyzer.
//
// Not supported here: GpoOptions::build_graph (node labels require stable
// discovery order); run_gpo falls back to the sequential engine for it.
#pragma once

#include "core/family_interner.hpp"
#include "core/gpn_analyzer.hpp"
#include "core/gpo_result.hpp"
#include "petri/net.hpp"

namespace gpo::core {

class ParallelGpnAnalyzer {
 public:
  using State = GpnState<InternedFamily>;

  /// `ctx` must wrap a concurrency-safe interner (FamilyInterner is); it is
  /// shared by every worker.
  ParallelGpnAnalyzer(const petri::PetriNet& net, InternedFamily::Context& ctx,
                      GpoOptions options = {});

  /// Runs the parallel reduced search with GpoOptions::num_threads workers
  /// and completes the verdict exactly like GpnAnalyzer::explore().
  [[nodiscard]] GpoResult explore() const;

 private:
  const petri::PetriNet& net_;
  InternedFamily::Context& ctx_;
  GpoOptions options_;
  GpnAnalyzer<InternedFamily> analyzer_;  // shared semantics + helpers
};

}  // namespace gpo::core
