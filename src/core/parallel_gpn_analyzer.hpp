// Fork-join parallel GPO exploration over the lock-free FamilyInterner.
//
// The sequential GpnAnalyzer explores the reduced GPN state graph with one
// BFS; this engine runs the same per-state expansion on a util::TaskPool of
// N workers, at two granularities simultaneously:
//   * states: every discovered GPN state is one fire-and-forget pool job
//     (work-stealing deques, owner LIFO / thief FIFO) — the PR 4 layer;
//   * intra-state: the expansion jobs hand the pool to the analyzer through
//     GpoOptions::task_pool, so the expensive interior of each expansion
//     (per-transition s_enabled/m_enabled terms, candidate-MCS trial checks,
//     the balanced union-tree levels) forks as fine-grained range tasks onto
//     the *same* workers. BENCH_gpo_parallel showed the paper's models have
//     2-18 states with peak frontier 2 — the state layer alone has nothing
//     to steal, and this layer is where the speedup actually comes from;
//   * visited set: gpo::util::ShardedStateSet<GpnState, Crumb> — each
//     distinct GPN state interned once, with its discovery breadcrumb
//     (parent id, firing mode, fired transitions) for counterexample replay;
//   * family algebra: the shared FamilyInterner (lock-free CAS-insert unique
//     table, per-thread op caches), so workers intern and operate on
//     families without any lock.
//
// Determinism: per-state expansion (plan_expansion + s_update/m_update) is a
// pure function of the state — including its forked interior, whose chunk
// boundaries and reduction-tree shape depend only on term counts and whose
// tasks write index-addressed slots merged in index order. The set of
// reachable GPN states — and with it state/edge counts, step counts,
// fireable transitions, the deadlock verdict and the guard/bail-out
// decisions — is therefore independent of scheduling and thread count. Only
// *which* dead scenario becomes the reported counterexample is
// scheduling-dependent; it always replays to a classical firing sequence
// (the cross-check tests verify all of this against the sequential engine).
//
// The post-search phases (fragmentation bail-out, anti-ignoring guard,
// counterexample replay) run single-threaded after the workers join, through
// the helpers shared with GpnAnalyzer.
//
// Not supported here: GpoOptions::build_graph (node labels require stable
// discovery order); run_gpo falls back to the sequential engine for it.
#pragma once

#include "core/family_interner.hpp"
#include "core/gpn_analyzer.hpp"
#include "core/gpo_result.hpp"
#include "petri/net.hpp"

namespace gpo::core {

class ParallelGpnAnalyzer {
 public:
  using State = GpnState<InternedFamily>;

  /// `ctx` must wrap a concurrency-safe interner (FamilyInterner is); it is
  /// shared by every worker.
  ParallelGpnAnalyzer(const petri::PetriNet& net, InternedFamily::Context& ctx,
                      GpoOptions options = {});

  /// Runs the parallel reduced search with GpoOptions::num_threads workers
  /// and completes the verdict exactly like GpnAnalyzer::explore().
  [[nodiscard]] GpoResult explore() const;

 private:
  const petri::PetriNet& net_;
  InternedFamily::Context& ctx_;
  GpoOptions options_;
  GpnAnalyzer<InternedFamily> analyzer_;  // shared semantics + helpers
};

}  // namespace gpo::core
