// Set families — the central datatype of Generalized Petri Nets.
//
// A GPN marking maps each place to a family F ⊆ 2^T of transition sets
// ("colored tokens" carrying the history of conflict choices), and each GPN
// state carries the family r of valid transition sets (Definition 3.1). Every
// GPN operation reduces to a handful of family operations: intersection,
// union, difference, "members containing transition t", emptiness, equality.
//
// Two interchangeable representations are provided (DESIGN.md, decision 2):
//   * ExplicitFamily — canonical sorted vector of transition bitsets. Simple,
//     exact, and linear in the number of member sets; mirrors what the
//     paper's JULIE prototype plausibly did.
//   * BddFamily — a Boolean function over |T| BDD variables (a set S ⊆ T is a
//     member iff its characteristic assignment satisfies the function).
//     Family operations become constant-to-polynomial BDD operations and the
//     initial family r0 (maximal conflict-free sets) has a polynomial-size
//     construction, while its explicit enumeration is exponential.
//
// Both classes satisfy the same compile-time interface; the GPO engine
// (gpn_analyzer.hpp) is templated over it. A property-based test drives both
// through random operation sequences and asserts identical contents.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "petri/conflict.hpp"
#include "petri/net.hpp"
#include "util/bitset.hpp"
#include "util/hash.hpp"

namespace gpo::core {

using TransitionSet = util::Bitset;  // over |T| transitions

// ---------------------------------------------------------------------------
// ExplicitFamily
// ---------------------------------------------------------------------------

class ExplicitFamily {
 public:
  /// Shared per-net state: just the universe size. Families from different
  /// contexts with the same universe are compatible.
  class Context {
   public:
    explicit Context(std::size_t num_transitions)
        : num_transitions_(num_transitions) {}

    [[nodiscard]] std::size_t num_transitions() const {
      return num_transitions_;
    }

    [[nodiscard]] ExplicitFamily empty() const {
      return ExplicitFamily(num_transitions_, {});
    }
    [[nodiscard]] ExplicitFamily single(const TransitionSet& set) const {
      if (set.size() != num_transitions_)
        throw std::invalid_argument("single: wrong universe size");
      return ExplicitFamily(num_transitions_, {set});
    }
    [[nodiscard]] ExplicitFamily from_sets(
        std::vector<TransitionSet> sets) const;
    /// r0: the maximal conflict-free subsets of T (explicit enumeration;
    /// throws std::length_error past ConflictInfo's cap).
    [[nodiscard]] ExplicitFamily initial_valid_sets(
        const petri::ConflictInfo& conflicts) const;

   private:
    std::size_t num_transitions_;
  };

  [[nodiscard]] ExplicitFamily intersect(const ExplicitFamily& o) const;
  [[nodiscard]] ExplicitFamily unite(const ExplicitFamily& o) const;
  [[nodiscard]] ExplicitFamily subtract(const ExplicitFamily& o) const;
  /// {v in F | t in v}.
  [[nodiscard]] ExplicitFamily containing(petri::TransitionId t) const;

  [[nodiscard]] bool is_empty() const { return sets_.empty(); }
  [[nodiscard]] bool contains(const TransitionSet& v) const;
  [[nodiscard]] double count() const {
    return static_cast<double>(sets_.size());
  }
  /// Up to `max` member sets, in canonical order.
  [[nodiscard]] std::vector<TransitionSet> members(
      std::size_t max = SIZE_MAX) const;

  [[nodiscard]] std::size_t hash() const;
  bool operator==(const ExplicitFamily& o) const { return sets_ == o.sets_; }

  [[nodiscard]] std::size_t universe() const { return num_transitions_; }
  /// Approximate heap footprint (member vector + bitset words); used by the
  /// FamilyInterner's arena accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Empty family over a zero universe; a placeholder for arena slots
  /// (FamilyInterner) awaiting their canonical value.
  ExplicitFamily() = default;

 private:
  ExplicitFamily(std::size_t num_transitions, std::vector<TransitionSet> sets)
      : num_transitions_(num_transitions), sets_(std::move(sets)) {}

  std::size_t num_transitions_ = 0;
  std::vector<TransitionSet> sets_;  // sorted ascending, unique (canonical)
};

// ---------------------------------------------------------------------------
// BddFamily
// ---------------------------------------------------------------------------

class BddFamily {
 public:
  /// Owns the BDD manager all families of one analysis share. Non-copyable;
  /// families hold a pointer back to it.
  class Context {
   public:
    explicit Context(std::size_t num_transitions,
                     std::size_t node_limit = std::size_t{1} << 23)
        : num_transitions_(num_transitions),
          manager_(std::make_unique<bdd::BddManager>(
              static_cast<bdd::Var>(num_transitions), node_limit)) {}

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] std::size_t num_transitions() const {
      return num_transitions_;
    }
    [[nodiscard]] bdd::BddManager& manager() const { return *manager_; }

    [[nodiscard]] BddFamily empty() const {
      return BddFamily(manager_.get(), num_transitions_, bdd::kFalse);
    }
    [[nodiscard]] BddFamily single(const TransitionSet& set) const;
    [[nodiscard]] BddFamily from_sets(
        const std::vector<TransitionSet>& sets) const;
    /// r0 built symbolically: independence clauses ¬(t ∧ u) for each
    /// conflicting pair plus maximality clauses (t ∨ ⋁ conflicting u) —
    /// polynomial in the net size, never enumerated.
    [[nodiscard]] BddFamily initial_valid_sets(
        const petri::ConflictInfo& conflicts) const;

   private:
    std::size_t num_transitions_;
    std::unique_ptr<bdd::BddManager> manager_;
  };

  [[nodiscard]] BddFamily intersect(const BddFamily& o) const {
    return with(mgr_->apply_and(ref_, o.ref_));
  }
  [[nodiscard]] BddFamily unite(const BddFamily& o) const {
    return with(mgr_->apply_or(ref_, o.ref_));
  }
  [[nodiscard]] BddFamily subtract(const BddFamily& o) const {
    return with(mgr_->apply_diff(ref_, o.ref_));
  }
  [[nodiscard]] BddFamily containing(petri::TransitionId t) const {
    return with(mgr_->apply_and(ref_, mgr_->var(static_cast<bdd::Var>(t))));
  }

  [[nodiscard]] bool is_empty() const { return ref_ == bdd::kFalse; }
  [[nodiscard]] bool contains(const TransitionSet& v) const;
  [[nodiscard]] double count() const;
  [[nodiscard]] std::vector<TransitionSet> members(
      std::size_t max = SIZE_MAX) const;

  /// Refs are hash-consed, so the node index is a perfect hash/equality.
  [[nodiscard]] std::size_t hash() const {
    return static_cast<std::size_t>(util::mix64(ref_));
  }
  bool operator==(const BddFamily& o) const { return ref_ == o.ref_; }

  [[nodiscard]] std::size_t universe() const { return num_transitions_; }
  [[nodiscard]] bdd::Ref ref() const { return ref_; }

 private:
  friend class Context;
  BddFamily(bdd::BddManager* mgr, std::size_t num_transitions, bdd::Ref ref)
      : mgr_(mgr), num_transitions_(num_transitions), ref_(ref) {}
  [[nodiscard]] BddFamily with(bdd::Ref r) const {
    return BddFamily(mgr_, num_transitions_, r);
  }

  bdd::BddManager* mgr_ = nullptr;
  std::size_t num_transitions_ = 0;
  bdd::Ref ref_ = bdd::kFalse;
};

}  // namespace gpo::core
