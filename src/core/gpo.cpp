#include "core/gpo.hpp"

namespace gpo::core {

GpoResult run_gpo(const petri::PetriNet& net, FamilyKind kind,
                  const GpoOptions& options) {
  if (kind == FamilyKind::kExplicit) {
    ExplicitFamily::Context ctx(net.transition_count());
    return GpnAnalyzer<ExplicitFamily>(net, ctx, options).explore();
  }
  if (kind == FamilyKind::kInterned) {
    InternedFamily::Context ctx(net.transition_count());
    return GpnAnalyzer<InternedFamily>(net, ctx, options).explore();
  }
  BddFamily::Context ctx(net.transition_count());
  return GpnAnalyzer<BddFamily>(net, ctx, options).explore();
}

}  // namespace gpo::core
