#include "core/gpo.hpp"

#include "core/parallel_gpn_analyzer.hpp"
#include "core/zdd_family.hpp"

namespace gpo::core {

void publish_gpo_stats(obs::MetricsRegistry& reg, std::string_view prefix,
                       const GpoResult& result) {
  std::string p(prefix);
  reg.counter(p + "states").store(result.state_count);
  reg.counter(p + "edges").store(result.edge_count);
  reg.counter(p + "multiple_steps").store(result.multiple_steps);
  reg.counter(p + "single_steps").store(result.single_steps);
  reg.counter(p + "ignoring_expansions").store(result.ignoring_expansions);
  reg.counter(p + "delegated_states").store(result.delegated_states);
  reg.gauge(p + "bailed_to_classical")
      .set(result.bailed_to_classical ? 1.0 : 0.0);
  reg.timer(p + "seconds")
      .record_ns(static_cast<std::uint64_t>(result.seconds * 1e9));
  const GpoParallelStats& ps = result.parallel;
  if (ps.threads > 0) {
    reg.counter(p + "parallel.threads").store(ps.threads);
    reg.counter(p + "parallel.steals").store(ps.steal_count);
    reg.counter(p + "parallel.fork_tasks").store(ps.fork_tasks);
    reg.counter(p + "parallel.peak_frontier").store(ps.peak_frontier);
    reg.counter(p + "parallel.shards").store(ps.shard_count);
    reg.gauge(p + "parallel.states_per_second").set(ps.states_per_second);
  }
  const GpoFamilyStats& fs = result.family_stats;
  if (fs.available) {
    reg.counter(p + "family_distinct").store(fs.distinct_families);
    reg.counter(p + "family_intern_calls").store(fs.intern_calls);
    reg.gauge(p + "family_dedup_ratio").set(fs.dedup_ratio);
    reg.counter(p + "family_op_cache_hits").store(fs.op_cache_hits);
    reg.counter(p + "family_op_cache_misses").store(fs.op_cache_misses);
    reg.gauge(p + "family_op_cache_hit_rate").set(fs.op_cache_hit_rate);
    reg.counter(p + "family_op_cache_evictions").store(fs.op_cache_evictions);
    reg.counter(p + "family_op_cache_occupied").store(fs.op_cache_occupied);
    reg.counter(p + "family_op_cache_capacity").store(fs.op_cache_capacity);
    reg.gauge(p + "family_op_cache_occupancy")
        .set(fs.op_cache_capacity == 0
                 ? 0.0
                 : static_cast<double>(fs.op_cache_occupied) /
                       static_cast<double>(fs.op_cache_capacity));
    reg.gauge("mem." + p + "families_bytes")
        .set(static_cast<double>(fs.families_bytes));
    if (fs.backend == "zdd") {
      reg.counter(p + "zdd.nodes").store(fs.zdd_nodes);
      reg.counter(p + "zdd.cache_hits").store(fs.op_cache_hits);
      reg.counter(p + "zdd.cache_misses").store(fs.op_cache_misses);
      reg.counter(p + "zdd.cache_evictions").store(fs.op_cache_evictions);
      for (const GpoFamilyStats::OpCacheCount& oc : fs.zdd_op_counts) {
        reg.counter(p + "zdd.cache." + oc.op + ".hits").store(oc.hits);
        reg.counter(p + "zdd.cache." + oc.op + ".misses").store(oc.misses);
      }
      reg.gauge("mem." + p + "zdd.bytes")
          .set(static_cast<double>(fs.families_bytes));
    }
  }
}

GpoFamilyStats family_stats_from_registry(const obs::MetricsRegistry& reg,
                                          std::string_view prefix) {
  std::string p(prefix);
  GpoFamilyStats fs;
  auto distinct = reg.value(p + "family_distinct");
  if (!distinct) return fs;
  auto get = [&](const std::string& name) {
    return reg.value(p + name).value_or(0.0);
  };
  fs.available = true;
  fs.distinct_families = static_cast<std::size_t>(*distinct);
  fs.intern_calls = static_cast<std::size_t>(get("family_intern_calls"));
  fs.dedup_ratio = get("family_dedup_ratio");
  fs.op_cache_hits = static_cast<std::size_t>(get("family_op_cache_hits"));
  fs.op_cache_misses =
      static_cast<std::size_t>(get("family_op_cache_misses"));
  fs.op_cache_hit_rate = get("family_op_cache_hit_rate");
  fs.op_cache_evictions =
      static_cast<std::size_t>(get("family_op_cache_evictions"));
  fs.op_cache_occupied =
      static_cast<std::size_t>(get("family_op_cache_occupied"));
  fs.op_cache_capacity =
      static_cast<std::size_t>(get("family_op_cache_capacity"));
  fs.families_bytes = static_cast<std::size_t>(
      reg.value("mem." + p + "families_bytes").value_or(0.0));
  if (auto zdd_nodes = reg.value(p + "zdd.nodes")) {
    fs.backend = "zdd";
    fs.zdd_nodes = static_cast<std::size_t>(*zdd_nodes);
    for (const char* op : zdd::ZddStats::kOpNames) {
      GpoFamilyStats::OpCacheCount oc;
      oc.op = op;
      oc.hits = static_cast<std::size_t>(
          get(std::string("zdd.cache.") + op + ".hits"));
      oc.misses = static_cast<std::size_t>(
          get(std::string("zdd.cache.") + op + ".misses"));
      fs.zdd_op_counts.push_back(std::move(oc));
    }
  } else {
    fs.backend = "interned";
  }
  return fs;
}

namespace {

/// Rewrites an engine result produced on a reduced net back into terms of
/// the original: the counterexample is expanded through the certificate and
/// replayed on `original` (the acceptance oracle; the replayed end marking
/// becomes the witness). A witness marking without a counterexample (a
/// delegated classical search found the deadlock) cannot be expressed in
/// original-net places and is dropped — the verdict stands on the
/// certificate's verdict-preservation argument alone.
void map_reduced_result(const petri::PetriNet& original,
                        const reduce::ReductionCertificate& cert,
                        GpoResult& result) {
  util::Bitset fireable(original.transition_count());
  for (std::size_t t = result.fireable_transitions.find_first();
       t < result.fireable_transitions.size();
       t = result.fireable_transitions.find_next(t + 1))
    for (petri::TransitionId o :
         cert.map_to_original({static_cast<petri::TransitionId>(t)}))
      fireable.set(o);
  result.fireable_transitions = std::move(fireable);
  if (!result.deadlock_found) return;
  if (result.counterexample.empty()) {
    result.deadlock_witness.reset();
    return;
  }
  result.counterexample = cert.map_to_original(result.counterexample);
  std::optional<petri::Marking> end =
      reduce::replay_trace(original, result.counterexample);
  result.witness_is_dead = end.has_value() && original.is_deadlocked(*end);
  if (result.witness_is_dead)
    result.deadlock_witness = std::move(*end);
  else
    result.deadlock_witness.reset();
}

}  // namespace

GpoResult run_gpo(const petri::PetriNet& net, FamilyKind kind,
                  const GpoOptions& options) {
  if (options.reduce_level != reduce::ReduceLevel::kOff &&
      !options.required_witness_place.has_value()) {
    reduce::ReduceOptions ro;
    ro.level = options.reduce_level;
    ro.metrics = options.metrics;
    ro.metrics_prefix = options.metrics_prefix + "reduce.";
    ro.tracer = options.tracer;
    reduce::ReductionResult red = reduce::reduce_net(net, ro);
    GpoOptions inner = options;
    inner.reduce_level = reduce::ReduceLevel::kOff;
    GpoResult result = run_gpo(red.net, kind, inner);
    map_reduced_result(net, red.certificate, result);
    return result;
  }
  // The ZDD store replaces the family storage of the explicit/interned
  // kinds (kBdd is its own representation and keeps it). The shared manager
  // is single-threaded, so this always takes the sequential engine — loudly,
  // because silently eating --threads cost users real benchmarking time.
  if (options.family_store == FamilyStore::kZdd && kind != FamilyKind::kBdd) {
    ZddFamily::Context ctx(net.transition_count());
    GpoResult result = GpnAnalyzer<ZddFamily>(net, ctx, options).explore();
    if (options.num_threads > 1)
      result.warnings.push_back(
          "--family-store zdd uses a single-threaded manager: --threads " +
          std::to_string(options.num_threads) +
          " was demoted to a sequential run");
    return result;
  }
  if (kind == FamilyKind::kExplicit) {
    ExplicitFamily::Context ctx(net.transition_count());
    return GpnAnalyzer<ExplicitFamily>(net, ctx, options).explore();
  }
  if (kind == FamilyKind::kInterned) {
    InternedFamily::Context ctx(net.transition_count());
    if (options.metrics != nullptr)
      ctx.interner().set_wait_histogram(&options.metrics->histogram(
          options.metrics_prefix + "intern_wait_ns"));
    // The fork-join engine covers every option except build_graph (node
    // labels require stable discovery order) — fall back for that.
    if (options.num_threads > 1 && !options.build_graph)
      return ParallelGpnAnalyzer(net, ctx, options).explore();
    GpoResult result = GpnAnalyzer<InternedFamily>(net, ctx, options).explore();
    if (options.num_threads > 1 && options.build_graph)
      result.warnings.push_back(
          "--graph needs stable discovery order: --threads " +
          std::to_string(options.num_threads) +
          " was demoted to a sequential run");
    return result;
  }
  BddFamily::Context ctx(net.transition_count());
  return GpnAnalyzer<BddFamily>(net, ctx, options).explore();
}

}  // namespace gpo::core
