// Generalized partial-order analysis (Section 3 of the paper).
//
// A Generalized Petri Net shares the structure of the underlying safe net but
// marks places with *families of transition sets* and carries the family r of
// valid transition sets. Each valid set v in r is one complete resolution of
// every structural conflict (a "scenario"); the GPN state <m, r> represents
// the set of classical markings  mapping(<m,r>) = { {p | v in m(p)} : v in r }
// simultaneously. Conflicting transitions can then fire *at the same time*
// (multiple firing semantics), each moving only the scenarios that chose it,
// which collapses the exponential branching over concurrently marked conflict
// places into a single successor state.
//
// The analyzer below implements the paper's Section 3.3 procedure:
//   1. deadlock check:  U_t s_enabled(t,s) != r  <=>  some scenario's
//      classical marking enables nothing;
//   2. candidate maximal conflicting sets — connected components of the
//      conflict graph restricted to the enabled transitions, all of whose
//      members are multiple-enabled and whose trial firing does not disable
//      any other candidate or any single-enabled transition outside it;
//      all candidates fire simultaneously (multiple-execute);
//   3. otherwise a fully single-enabled *static* maximal conflicting set, if
//      one exists, is expanded transition-by-transition (the classical
//      partial-order reduction), else every single-enabled transition is.
//
// The template parameter selects the family representation (ExplicitFamily,
// BddFamily or InternedFamily); see DESIGN.md decision 2. All semantic
// methods (s_enabled/m_update/plan_expansion/...) are const and — given a
// thread-safe family context, like the concurrent FamilyInterner — callable
// from multiple threads at once; the parallel engine
// (parallel_gpn_analyzer.hpp) relies on this, plus the shared helpers
// replay_scenario / run_delegated / apply_ignoring_guard below.
//
// Two evaluation-strategy levers live inside the semantic methods (see
// DESIGN.md "Intra-state parallelism"):
//   * The big unions over all transitions (r' in m_update, the enabled-union
//     of the deadlock check) are evaluated as balanced n-ary reduction trees
//     instead of left folds. Union is associative and commutative over
//     canonical families, so the result is value-identical; the balanced
//     shape keeps both operands of every node small and — under the interner
//     — turns the per-state accumulator chains (unique to each state, so
//     never a cache hit) into pairwise subtree unions that recur across
//     states. This is a measured single-thread win on the scenario-heavy
//     models before any threading.
//   * When GpoOptions::task_pool is set, per-transition term computation,
//     candidate-MCS trial checks and the large reduction-tree levels are
//     forked onto the pool as index-addressed range tasks. Chunk boundaries
//     and the tree shape are pure functions of the term count, every task
//     writes only its own slots, and the merge happens in index order — so
//     verdicts, state counts and counterexamples are bitwise independent of
//     scheduling.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/gpo_result.hpp"
#include "core/set_family.hpp"
#include "petri/conflict.hpp"
#include "petri/net.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"
#include "util/hash.hpp"
#include "util/stopwatch.hpp"
#include "util/task_pool.hpp"

namespace gpo::core {

/// A GPN state <m, r>: one family per place plus the valid-set family.
/// The content hash folds every place family, so it is memoized: computed at
/// most once per finished state (visited-set probes hash each successor
/// several times). Copying resets the memo — the engines copy-then-mutate
/// (s_update) — while moving keeps it; 0 doubles as the "unset" sentinel.
template <typename Family>
struct GpnState {
  std::vector<Family> marking;
  Family r;

  GpnState() = default;
  GpnState(std::vector<Family> m, Family valid)
      : marking(std::move(m)), r(std::move(valid)) {}

  GpnState(const GpnState& o) : marking(o.marking), r(o.r) {}
  GpnState(GpnState&& o) noexcept
      : marking(std::move(o.marking)),
        r(std::move(o.r)),
        memo_hash_(o.memo_hash_.load(std::memory_order_relaxed)) {}
  GpnState& operator=(const GpnState& o) {
    marking = o.marking;
    r = o.r;
    memo_hash_.store(0, std::memory_order_relaxed);
    return *this;
  }
  GpnState& operator=(GpnState&& o) noexcept {
    marking = std::move(o.marking);
    r = std::move(o.r);
    memo_hash_.store(o.memo_hash_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  bool operator==(const GpnState& o) const {
    return r == o.r && marking == o.marking;
  }

  [[nodiscard]] std::size_t hash() const {
    std::size_t h = memo_hash_.load(std::memory_order_relaxed);
    if (h != 0) return h;
    h = uncached_hash();
    if (h == 0) h = 1;  // 0 is the "unset" sentinel
    memo_hash_.store(h, std::memory_order_relaxed);
    return h;
  }

  /// The full fold, never memoized; hash() equals this (modulo the 1-in-2^64
  /// zero remap). The regression test compares the two.
  [[nodiscard]] std::size_t uncached_hash() const {
    std::size_t h = r.hash();
    for (const Family& f : marking) util::hash_combine(h, f.hash());
    return h;
  }

 private:
  // atomic so concurrent hash() calls on a shared finished state are clean:
  // racing writers store the identical value.
  mutable std::atomic<std::size_t> memo_hash_{0};
};

template <typename Family>
class GpnAnalyzer {
 public:
  using Context = typename Family::Context;
  using State = GpnState<Family>;

  GpnAnalyzer(const petri::PetriNet& net, Context& ctx, GpoOptions options = {})
      : net_(net),
        ctx_(ctx),
        conflicts_(net),
        options_(options),
        pool_(options.task_pool) {}

  // -- GPN semantics (exposed for unit tests and the examples) -------------

  /// <m0G, r0>: every initially marked place holds r0, the family of maximal
  /// conflict-free transition sets.
  [[nodiscard]] State initial_state() const {
    Family r0 = ctx_.initial_valid_sets(conflicts_);
    State s{std::vector<Family>(net_.place_count(), ctx_.empty()), r0};
    for (std::size_t p = net_.initial_marking().find_first();
         p < net_.place_count(); p = net_.initial_marking().find_next(p + 1))
      s.marking[p] = r0;
    return s;
  }

  /// Definition 3.2: s_enabled(t, <m,r>) = ( ⋂_{p in •t} m(p) ) ∩ r.
  [[nodiscard]] Family s_enabled(petri::TransitionId t, const State& s) const {
    Family acc = s.r;
    for (petri::PlaceId p : net_.transition(t).pre) {
      acc = acc.intersect(s.marking[p]);
      if (acc.is_empty()) break;
    }
    return acc;
  }

  /// Definition 3.5: m_enabled(t, s) = { v in ⋂_{p in •t} m(p) | t in v }.
  /// (m(p) ⊆ r is a state invariant, so the ∩r is implicit.)
  [[nodiscard]] Family m_enabled(petri::TransitionId t, const State& s) const {
    return s_enabled(t, s).containing(t);
  }

  /// Definition 3.3 (single firing rule): moves the common histories of t's
  /// input places to its output places; r is unchanged. The successor marking
  /// is built place-by-place (reserve + one push_back each) so untouched
  /// places cost one Family copy and touched ones none.
  [[nodiscard]] State s_update(const State& s, petri::TransitionId t) const {
    Family moved = s_enabled(t, s);
    const auto& tr = net_.transition(t);
    std::vector<Family> marking;
    marking.reserve(s.marking.size());
    for (petri::PlaceId p = 0; p < net_.place_count(); ++p) {
      const bool in_pre = tr.pre_bits.test(p);
      const bool in_post = tr.post_bits.test(p);
      if (in_pre && !in_post)
        marking.push_back(s.marking[p].subtract(moved));
      else if (in_post && !in_pre)
        marking.push_back(s.marking[p].unite(moved));
      else
        marking.push_back(s.marking[p]);
    }
    return State(std::move(marking), s.r);
  }

  /// Definition 3.6 (multiple firing rule): fires every transition of T'
  /// simultaneously; scenarios that chose t move through t, the rest stay.
  /// The new valid-set family r' drops scenarios that enable nothing —
  /// including the "extended conflicts" the paper illustrates in Fig. 7.
  [[nodiscard]] State m_update(const State& s,
                               const std::vector<petri::TransitionId>& fired)
      const {
    const std::size_t nt = net_.transition_count();
    util::Bitset in_fired(nt);
    for (petri::TransitionId t : fired) in_fired.set(t);

    // m_enabled per fired transition, indexed by transition id through a flat
    // side table — this sits in the hottest loop and a per-call hash map
    // would allocate buckets for every successor.
    std::vector<Family> me(fired.size(), ctx_.empty());
    std::vector<std::uint32_t> me_index(nt, UINT32_MAX);
    for (std::size_t i = 0; i < fired.size(); ++i)
      me_index[fired[i]] = static_cast<std::uint32_t>(i);
    for_range(fired.size(), kCheapGrain,
              [&](std::size_t i) { me[i] = m_enabled(fired[i], s); });

    // r' = U_{t not in T'} s_enabled(t,s)  ∪  U_{t in T'} m_enabled(t,s),
    // evaluated as a balanced reduction tree over the per-transition terms.
    std::vector<Family> terms(nt, ctx_.empty());
    for_range(nt, kCheapGrain, [&](std::size_t t) {
      terms[t] = in_fired.test(t)
                     ? me[me_index[t]]
                     : s_enabled(static_cast<petri::TransitionId>(t), s);
    });
    Family r_next = balanced_unite(terms);

    // The per-place updates are independent of each other: index-addressed
    // slots, forked as one range task per chunk of places.
    std::vector<Family> marking(net_.place_count(), ctx_.empty());
    for_range(net_.place_count(), kCheapGrain, [&](std::size_t pi) {
      const petri::PlaceId p = static_cast<petri::PlaceId>(pi);
      Family removed = ctx_.empty();
      Family added = ctx_.empty();
      bool consumed = false, produced = false;
      for (petri::TransitionId t : net_.place(p).post) {  // consumers of p
        if (in_fired.test(t)) {
          removed = removed.unite(me[me_index[t]]);
          consumed = true;
        }
      }
      for (petri::TransitionId t : net_.place(p).pre) {  // producers of p
        if (in_fired.test(t)) {
          added = added.unite(me[me_index[t]]);
          produced = true;
        }
      }
      if (!consumed && !produced) {
        marking[p] = s.marking[p].intersect(r_next);
      } else {
        Family m = consumed ? s.marking[p].subtract(removed)
                            : s.marking[p].unite(added);
        if (consumed && produced) m = m.unite(added);
        marking[p] = m.intersect(r_next);
      }
    });
    return State(std::move(marking), std::move(r_next));
  }

  /// mapping(<m,r>) (Definition 3.4): the classical markings represented by
  /// this GPN state, one per valid set (duplicates collapsed); capped.
  [[nodiscard]] std::vector<petri::Marking> mapping(const State& s,
                                                    std::size_t max = 4096)
      const {
    std::vector<petri::Marking> out;
    for (const TransitionSet& v : s.r.members(max)) {
      petri::Marking m(net_.place_count());
      for (petri::PlaceId p = 0; p < net_.place_count(); ++p)
        if (s.marking[p].contains(v)) m.set(p);
      if (std::find(out.begin(), out.end(), m) == out.end())
        out.push_back(std::move(m));
    }
    return out;
  }

  /// The paper's deadlock characterization: U_t s_enabled(t,s) != r. When a
  /// deadlock is possible, returns one dead scenario's classical marking.
  /// With `required_place`, only dead scenarios whose marking marks that
  /// place qualify (scenario v marks p iff v ∈ m(p), so the filter is one
  /// family intersection).
  [[nodiscard]] std::optional<TransitionSet> deadlock_scenario(
      const State& s,
      std::optional<petri::PlaceId> required_place = std::nullopt) const {
    std::vector<Family> terms(net_.transition_count(), ctx_.empty());
    for_range(terms.size(), kCheapGrain, [&](std::size_t t) {
      terms[t] = s_enabled(static_cast<petri::TransitionId>(t), s);
    });
    Family enabled_union = balanced_unite(terms);
    Family missing = s.r.subtract(enabled_union);
    if (required_place) missing = missing.intersect(s.marking[*required_place]);
    if (missing.is_empty()) return std::nullopt;
    return missing.members(1).front();
  }

  /// The classical marking of scenario v in state s: {p | v in m(p)}.
  [[nodiscard]] petri::Marking scenario_marking(const State& s,
                                                const TransitionSet& v) const {
    petri::Marking m(net_.place_count());
    for (petri::PlaceId p = 0; p < net_.place_count(); ++p)
      if (s.marking[p].contains(v)) m.set(p);
    return m;
  }

  [[nodiscard]] std::optional<petri::Marking> deadlock_witness(
      const State& s,
      std::optional<petri::PlaceId> required_place = std::nullopt) const {
    if (auto v = deadlock_scenario(s, required_place))
      return scenario_marking(s, *v);
    return std::nullopt;
  }

  // -- The analysis procedure ----------------------------------------------

  /// Per-state expansion decision (exposed for tests and diagnostics).
  struct Expansion {
    bool multiple = false;
    /// multiple: the union of all candidate MCSs, fired simultaneously.
    /// single: the transitions fired one-per-branch.
    std::vector<petri::TransitionId> transitions;
  };

  [[nodiscard]] Expansion plan_expansion(
      const State& s,
      const std::vector<petri::TransitionId>& single_enabled) const;

  [[nodiscard]] std::vector<petri::TransitionId> single_enabled_transitions(
      const State& s) const {
    std::vector<petri::TransitionId> out;
    single_enabled_transitions(s, out);
    return out;
  }

  /// Scratch-vector variant (out is cleared first): the main loops keep one
  /// vector alive across states so the per-state allocation disappears.
  /// With a pool, the per-transition enabledness checks fork as range tasks
  /// over an index-addressed flag array; the compaction into `out` happens
  /// in transition order either way.
  void single_enabled_transitions(const State& s,
                                  std::vector<petri::TransitionId>& out) const {
    out.clear();
    const std::size_t nt = net_.transition_count();
    if (pool_ == nullptr) {
      for (petri::TransitionId t = 0; t < nt; ++t)
        if (!s_enabled(t, s).is_empty()) out.push_back(t);
      return;
    }
    std::vector<std::uint8_t> enabled(nt, 0);
    for_range(nt, kCheapGrain, [&](std::size_t t) {
      enabled[t] =
          s_enabled(static_cast<petri::TransitionId>(t), s).is_empty() ? 0 : 1;
    });
    for (petri::TransitionId t = 0; t < nt; ++t)
      if (enabled[t] != 0) out.push_back(t);
  }

  // -- Shared machinery (used by explore() and the parallel engine) --------

  /// One discovery edge of the reduced graph, root side first.
  struct ReplayStep {
    const State* from = nullptr;
    bool multiple = false;
    std::vector<petri::TransitionId> fired;
  };

  /// Classical firing sequence leading scenario v along the discovery path
  /// `steps` (root..leaf): keep at every step the transitions whose moved
  /// family contained v, and order each step's batch by classical simulation
  /// (the batch members are pairwise independent under v). Returns the empty
  /// sequence if the batch ever wedges (bug guard).
  [[nodiscard]] std::vector<petri::TransitionId> replay_scenario(
      const std::vector<ReplayStep>& steps, const TransitionSet& v) const {
    std::vector<petri::TransitionId> trace;
    petri::Marking m = net_.initial_marking();
    for (const ReplayStep& step : steps) {
      std::vector<petri::TransitionId> batch;
      for (petri::TransitionId t : step.fired) {
        Family moved =
            step.multiple ? m_enabled(t, *step.from) : s_enabled(t, *step.from);
        if (moved.contains(v)) batch.push_back(t);
      }
      while (!batch.empty()) {
        bool progressed = false;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (!net_.enabled(batch[i], m)) continue;
          m = net_.fire(batch[i], m);
          trace.push_back(batch[i]);
          batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(i));
          progressed = true;
          break;
        }
        if (!progressed) return {};  // bug guard
      }
    }
    return trace;
  }

  /// Delegated classical stubborn-set deadlock search from `roots`, merging
  /// its verdict into `result`. Used for the fragmentation bail-out (roots =
  /// {m0}, merge_fireable = true) and the anti-ignoring guard (roots = the
  /// starving states' mapped markings).
  void run_delegated(const std::vector<petri::Marking>& roots,
                     double remaining_seconds, const char* phase,
                     bool merge_fireable, GpoResult& result) const {
    por::StubbornOptions sopt;
    sopt.max_states = options_.max_states;
    sopt.max_seconds = remaining_seconds;
    sopt.cancel = options_.cancel;
    sopt.stop_at_first_deadlock = true;
    sopt.metrics = options_.metrics;
    sopt.metrics_prefix = options_.metrics_prefix + "delegated.";
    if (options_.required_witness_place) {
      petri::PlaceId rp = *options_.required_witness_place;
      sopt.deadlock_filter = [rp](const petri::Marking& m) {
        return m.test(rp);
      };
    }
    auto delegated = por::StubbornExplorer(net_, sopt).explore_from(roots);
    result.delegated_states = delegated.state_count;
    result.limit_hit |= delegated.limit_hit;
    if (delegated.limit_hit) result.interrupted_phase = phase;
    if (merge_fireable)
      result.fireable_transitions |= delegated.fireable_transitions;
    if (delegated.deadlock_found && !result.deadlock_found) {
      result.deadlock_found = true;
      result.deadlock_witness = delegated.first_deadlock;
      result.witness_is_dead = true;
    }
  }

  /// One edge of the reduced graph, for the anti-ignoring guard.
  struct ReducedEdge {
    std::size_t from, to;
    util::Bitset fired;
  };

  /// Anti-ignoring guard (the check the paper's footnote elides): in every
  /// SCC that contains a cycle, a transition single-enabled at one of its
  /// states but fired on none of its internal edges may be postponed forever.
  /// The scenarios behind such a transition are beyond the one-choice-per-
  /// conflict expressiveness of a valid set (a *re-contested* conflict), so
  /// instead of fragmenting the GPN state space with single firings we
  /// delegate: run a classical stubborn-set deadlock search from the
  /// starving states' mapped markings. That search is bounded by the plain
  /// reachability graph and completes the deadlock verdict soundly.
  ///
  /// Inputs are dense arrays over the reduced graph's state indices; both
  /// engines build them after their search quiesces (the parallel engine via
  /// ShardedStateSet::for_each), so this runs single-threaded either way.
  void apply_ignoring_guard(const std::vector<const State*>& states,
                            const std::vector<ReducedEdge>& edges,
                            const std::vector<util::Bitset>& enabled_at,
                            const std::vector<bool>& fully_expanded,
                            double remaining_seconds, GpoResult& result) const {
    const std::size_t nt = net_.transition_count();
    // Tarjan over the reduced graph.
    std::vector<std::vector<std::size_t>> succs(states.size());
    for (std::size_t e = 0; e < edges.size(); ++e)
      succs[edges[e].from].push_back(e);

    std::vector<std::size_t> comp(states.size(), SIZE_MAX);
    std::vector<std::size_t> low(states.size()), num(states.size(), SIZE_MAX);
    std::vector<bool> on_stack(states.size(), false);
    std::vector<std::size_t> stack;
    std::size_t counter = 0, comp_count = 0;
    // Iterative Tarjan (explicit frames) to survive deep graphs.
    struct Frame {
      std::size_t v;
      std::size_t next_edge;
    };
    for (std::size_t root = 0; root < states.size(); ++root) {
      if (num[root] != SIZE_MAX) continue;
      std::vector<Frame> call{{root, 0}};
      num[root] = low[root] = counter++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!call.empty()) {
        Frame& f = call.back();
        if (f.next_edge < succs[f.v].size()) {
          std::size_t w = edges[succs[f.v][f.next_edge++]].to;
          if (num[w] == SIZE_MAX) {
            num[w] = low[w] = counter++;
            stack.push_back(w);
            on_stack[w] = true;
            call.push_back({w, 0});
          } else if (on_stack[w]) {
            low[f.v] = std::min(low[f.v], num[w]);
          }
        } else {
          if (low[f.v] == num[f.v]) {
            while (true) {
              std::size_t w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              comp[w] = comp_count;
              if (w == f.v) break;
            }
            ++comp_count;
          }
          std::size_t v = f.v;
          call.pop_back();
          if (!call.empty())
            low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
      }
    }

    // Fired transitions per SCC (internal edges only) + cyclicity.
    std::vector<util::Bitset> fired_in(comp_count, util::Bitset(nt));
    std::vector<bool> cyclic(comp_count, false);
    for (const ReducedEdge& e : edges)
      if (comp[e.from] == comp[e.to]) {
        fired_in[comp[e.from]] |= e.fired;
        cyclic[comp[e.from]] = true;  // internal edge => cycle (SCC property)
      }

    // Collect the classical markings of every starving state and hand them
    // to one shared stubborn-set search.
    std::vector<petri::Marking> roots;
    for (std::size_t v = 0; v < states.size(); ++v) {
      std::size_t c = comp[v];
      if (!cyclic[c] || fully_expanded[v]) continue;
      util::Bitset starving = enabled_at[v] - fired_in[c];
      if (starving.none()) continue;
      ++result.ignoring_expansions;
      for (petri::Marking& m : mapping(*states[v])) {
        if (std::find(roots.begin(), roots.end(), m) == roots.end())
          roots.push_back(std::move(m));
      }
    }
    if (!roots.empty())
      run_delegated(roots, remaining_seconds, "ignoring-guard",
                    /*merge_fireable=*/false, result);
  }

  [[nodiscard]] GpoResult explore() const;

 private:
  struct StateHash {
    std::size_t operator()(const State& s) const { return s.hash(); }
  };

  // Fork grains. Family ops run microseconds to milliseconds each, so even
  // small ranges are worth splitting; a slightly coarser grain for the
  // per-transition term loops keeps the fork count proportionate, while the
  // candidate trial checks (a full m_update each) split down to singletons.
  static constexpr std::size_t kCheapGrain = 4;
  static constexpr std::size_t kCheckGrain = 1;

  /// Runs f(i) for i in [0, n): serially without a pool, as deterministic
  /// range tasks on the pool otherwise. f must write only index-addressed
  /// state (slot i), never shared accumulators.
  template <typename F>
  void for_range(std::size_t n, std::size_t grain, const F& f) const {
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    pool_->parallel_for(n, grain, [&f](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) f(i);
    });
  }

  /// Union of all terms as a balanced pairing tree (terms is consumed).
  /// Round k unites src[2i] with src[2i+1] into dst[i] — the shape depends
  /// only on the term count, never on scheduling, so the canonical result
  /// (and with it every downstream id) is identical with and without a
  /// pool. Each round ping-pongs between two buffers: in-place pairing
  /// (slot i <- slots 2i,2i+1) is only safe in strict left-to-right order,
  /// because iteration i overwrites the slot iteration i/2 still has to
  /// read — a forked chunk starting at i would race an earlier chunk.
  /// Reading from src and writing to dst keeps every round's tasks
  /// write-disjoint from their reads.
  Family balanced_unite(std::vector<Family>& terms) const {
    if (terms.empty()) return ctx_.empty();
    std::vector<Family> scratch;
    std::vector<Family>* src = &terms;
    std::vector<Family>* dst = &scratch;
    std::size_t n = terms.size();
    while (n > 1) {
      const std::size_t half = n / 2;
      const std::size_t next_n = half + (n % 2);
      dst->assign(next_n, ctx_.empty());
      for_range(half, kCheapGrain, [src, dst](std::size_t i) {
        (*dst)[i] = (*src)[2 * i].unite((*src)[2 * i + 1]);
      });
      if (n % 2 == 1) (*dst)[half] = std::move((*src)[n - 1]);
      std::swap(src, dst);
      n = next_n;
    }
    return std::move((*src)[0]);
  }

  const petri::PetriNet& net_;
  Context& ctx_;
  petri::ConflictInfo conflicts_;
  GpoOptions options_;
  util::TaskPool* pool_ = nullptr;
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <typename Family>
auto GpnAnalyzer<Family>::plan_expansion(
    const State& s,
    const std::vector<petri::TransitionId>& single_enabled) const
    -> Expansion {
  const std::size_t nt = net_.transition_count();
  util::Bitset enabled_bits(nt);
  for (petri::TransitionId t : single_enabled) enabled_bits.set(t);

  // Dynamic maximal conflicting sets: connected components of the conflict
  // graph restricted to the *multiple-enabled* transitions. A transition
  // that is single- but not multiple-enabled (every common history committed
  // its tokens to a competitor) is postponed — its scenarios keep their
  // tokens in place, so nothing is lost by leaving it out. The per-transition
  // probes are independent: forked over an index-addressed flag array.
  std::vector<std::uint8_t> multi(single_enabled.size(), 0);
  for_range(single_enabled.size(), kCheapGrain, [&](std::size_t i) {
    multi[i] = m_enabled(single_enabled[i], s).is_empty() ? 0 : 1;
  });
  util::Bitset m_bits(nt);
  for (std::size_t i = 0; i < single_enabled.size(); ++i)
    if (multi[i] != 0) m_bits.set(single_enabled[i]);
  std::vector<std::vector<petri::TransitionId>> dyn_components;
  {
    util::Bitset seen(nt);
    for (std::size_t ts = m_bits.find_first(); ts < nt;
         ts = m_bits.find_next(ts + 1)) {
      petri::TransitionId t = static_cast<petri::TransitionId>(ts);
      if (seen.test(t)) continue;
      std::vector<petri::TransitionId> comp, stack{t};
      seen.set(t);
      while (!stack.empty()) {
        petri::TransitionId u = stack.back();
        stack.pop_back();
        comp.push_back(u);
        util::Bitset nb = conflicts_.neighbors(u) & m_bits;
        for (std::size_t w = nb.find_first(); w < nt; w = nb.find_next(w + 1))
          if (!seen.test(w)) {
            seen.set(w);
            stack.push_back(static_cast<petri::TransitionId>(w));
          }
      }
      std::sort(comp.begin(), comp.end());
      dyn_components.push_back(std::move(comp));
    }
  }

  // Candidate check (Section 3.3): trial-fire the component alone; every
  // *other* multiple-enabled component must stay multiple-enabled and every
  // single-enabled transition outside it must stay single-enabled. Each
  // check is a full m_update plus re-probes — the expensive heart of MCS
  // enumeration — and the checks are mutually independent, so they fork
  // one per task; the verdicts land in index-addressed flags and are
  // collected in component order.
  std::vector<std::uint8_t> cand_ok(dyn_components.size(), 0);
  for_range(dyn_components.size(), kCheckGrain, [&](std::size_t c) {
    State trial = m_update(s, dyn_components[c]);
    util::Bitset in_c(nt);
    for (petri::TransitionId t : dyn_components[c]) in_c.set(t);
    bool ok = true;
    for (std::size_t d = 0; d < dyn_components.size() && ok; ++d) {
      if (d == c) continue;
      for (petri::TransitionId t : dyn_components[d])
        if (m_enabled(t, trial).is_empty()) {
          ok = false;
          break;
        }
    }
    if (ok) {
      for (petri::TransitionId t : single_enabled)
        if (!in_c.test(t) && s_enabled(t, trial).is_empty()) {
          ok = false;
          break;
        }
    }
    cand_ok[c] = ok ? 1 : 0;
  });
  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < dyn_components.size(); ++c)
    if (cand_ok[c] != 0) candidates.push_back(c);

  Expansion plan;
  if (!candidates.empty()) {
    plan.multiple = true;
    for (std::size_t c : candidates)
      plan.transitions.insert(plan.transitions.end(),
                              dyn_components[c].begin(),
                              dyn_components[c].end());
    std::sort(plan.transitions.begin(), plan.transitions.end());
    return plan;
  }

  // Fallback 1: a *static* maximal conflicting set whose members are all
  // single-enabled — safe to expand alone (classical partial-order
  // reduction), because nothing outside it can ever steal its tokens.
  // Prefer the smallest such component (fewest branches).
  const std::vector<petri::TransitionId>* best = nullptr;
  for (const auto& comp : conflicts_.components()) {
    bool all = !comp.empty();
    for (petri::TransitionId t : comp)
      if (!enabled_bits.test(t)) {
        all = false;
        break;
      }
    if (all && (best == nullptr || comp.size() < best->size())) best = &comp;
  }
  plan.multiple = false;
  plan.transitions = best != nullptr ? *best : single_enabled;
  return plan;
}

template <typename Family>
GpoResult GpnAnalyzer<Family>::explore() const {
  GpoResult result;
  util::Stopwatch timer;
  const std::size_t nt = net_.transition_count();
  result.fireable_transitions = util::Bitset(nt);

  // Telemetry slots, resolved once. The MCS timer is always-on when a
  // registry is attached (one clock read per expanded state); the per-state
  // live-progress updates compile out with the hot-counter gate.
  obs::Counter* live_states = nullptr;
  obs::Gauge* live_frontier = nullptr;
  obs::Gauge* live_families = nullptr;
  obs::Timer* mcs_timer = nullptr;
  obs::Timer* family_ops_timer = nullptr;
  obs::Histogram* expand_hist = nullptr;
  if (options_.metrics != nullptr) {
    mcs_timer =
        &options_.metrics->timer(options_.metrics_prefix + "mcs_seconds");
    // Per-state phase split: mcs_seconds covers plan_expansion (candidate
    // enumeration incl. its trial m_updates), family_ops_seconds the
    // deadlock check and the successor emissions.
    family_ops_timer = &options_.metrics->timer(options_.metrics_prefix +
                                                "family_ops_seconds");
    if constexpr (obs::kHotCountersEnabled) {
      expand_hist = &options_.metrics->histogram(options_.metrics_prefix +
                                                 "expand_seconds");
      live_states = &options_.metrics->counter("progress.states");
      live_frontier = &options_.metrics->gauge("progress.frontier");
      if constexpr (requires(Context& c, GpoFamilyStats& st) {
                      c.fill_stats(st);
                    })
        live_families = &options_.metrics->gauge("interner.families");
    }
  }

  std::unordered_map<State, std::size_t, StateHash> index;
  std::vector<State> states;
  // Bookkeeping for the anti-ignoring fixpoint: the single-enabled set of
  // each state, the reduced graph's edges with the set of transitions each
  // fired, and whether a state has already been fully expanded.
  std::vector<util::Bitset> enabled_at;
  std::vector<bool> fully_expanded;
  std::vector<ReducedEdge> edges;
  // Discovery breadcrumbs for counterexample reconstruction.
  struct Breadcrumb {
    std::size_t parent = 0;
    bool multiple = false;
    std::vector<petri::TransitionId> fired;
  };
  std::vector<Breadcrumb> breadcrumbs;
  Breadcrumb pending_crumb;  // describes the edge currently being emitted

  auto intern = [&](State&& st) -> std::pair<std::size_t, bool> {
    auto [it, inserted] = index.try_emplace(std::move(st), states.size());
    if (inserted) {
      states.push_back(it->first);
      enabled_at.emplace_back(nt);
      fully_expanded.push_back(false);
      breadcrumbs.push_back(pending_crumb);
      if (live_states != nullptr) live_states->add();
    }
    return {it->second, inserted};
  };

  // Classical firing sequence leading scenario v into GPN state `leaf`:
  // flatten the discovery path and hand it to the shared replayer.
  auto reconstruct = [&](std::size_t leaf, const TransitionSet& v) {
    std::vector<std::size_t> path;  // state indices root..leaf
    for (std::size_t i = leaf; i != 0; i = breadcrumbs[i].parent)
      path.push_back(i);
    std::reverse(path.begin(), path.end());
    std::vector<ReplayStep> steps;
    steps.reserve(path.size());
    for (std::size_t child : path) {
      const Breadcrumb& bc = breadcrumbs[child];
      steps.push_back({&states[bc.parent], bc.multiple, bc.fired});
    }
    return replay_scenario(steps, v);
  };

  std::deque<std::size_t> frontier;
  intern(initial_state());
  frontier.push_back(0);

  bool stopped = false;
  // Per-state scratch, capacity reused across the whole search.
  std::vector<petri::TransitionId> single_enabled;
  single_enabled.reserve(net_.transition_count());

  // Expands states from `frontier` until it drains (or a limit/stop hits).
  auto run_bfs = [&]() {
    while (!frontier.empty() && !stopped) {
      if (live_frontier != nullptr) {
        live_frontier->set(static_cast<double>(frontier.size()));
        if (live_families != nullptr) {
          GpoFamilyStats fs;
          if constexpr (requires(Context& c, GpoFamilyStats& st) {
                          c.fill_stats(st);
                        })
            ctx_.fill_stats(fs);
          live_families->set(static_cast<double>(fs.distinct_families));
        }
      }
      if (states.size() > options_.max_states ||
          timer.elapsed_seconds() > options_.max_seconds ||
          util::cancel_requested(options_.cancel)) {
        result.limit_hit = true;
        result.interrupted_phase = "reduced-search";
        return;
      }
      if (states.size() > options_.delegate_after_states) {
        result.bailed_to_classical = true;
        return;
      }
      std::size_t si = frontier.front();
      frontier.pop_front();
      // Per-state expansion latency (deadlock check + MCS planning +
      // successor emission); covers every exit from this iteration.
      obs::ScopedHistogramTimer state_timer(expand_hist);
      const State s = states[si];  // copy: `states` may grow below

      // Deadlock check (before expansion, as in the paper's reach()).
      auto scenario = [&] {
        obs::ScopedTimer ft(family_ops_timer);
        return deadlock_scenario(s, options_.required_witness_place);
      }();
      if (scenario) {
        if (!result.deadlock_found) {
          result.deadlock_found = true;
          petri::Marking witness = scenario_marking(s, *scenario);
          result.witness_is_dead = net_.is_deadlocked(witness);
          result.deadlock_witness = std::move(witness);
          result.counterexample = reconstruct(si, *scenario);
        }
        if (options_.stop_at_first_deadlock) {
          stopped = true;
          return;
        }
      }

      single_enabled_transitions(s, single_enabled);
      for (petri::TransitionId t : single_enabled) enabled_at[si].set(t);
      result.fireable_transitions |= enabled_at[si];
      if (single_enabled.empty()) continue;  // fully dead GPN state

      Expansion plan = [&] {
        obs::ScopedTimer st(mcs_timer);
        return plan_expansion(s, single_enabled);
      }();

      auto emit = [&](State&& next, const util::Bitset& fired,
                      const std::string& label) {
        ++result.edge_count;
        auto [idx, fresh] = intern(std::move(next));
        edges.push_back({si, idx, fired});
        if (options_.build_graph)
          result.graph.edges.push_back({si, idx, label});
        if (fresh) frontier.push_back(idx);
      };

      if (plan.multiple) {
        ++result.multiple_steps;
        util::Bitset fired(nt);
        std::string label = "{";
        for (std::size_t i = 0; i < plan.transitions.size(); ++i) {
          if (i > 0) label += ',';
          label += net_.transition(plan.transitions[i]).name;
          fired.set(plan.transitions[i]);
        }
        label += "}";
        pending_crumb = {si, true, plan.transitions};
        State next = [&] {
          obs::ScopedTimer ft(family_ops_timer);
          return m_update(s, plan.transitions);
        }();
        emit(std::move(next), fired, label);
      } else {
        ++result.single_steps;
        if (plan.transitions.size() == single_enabled.size())
          fully_expanded[si] = true;
        for (petri::TransitionId t : plan.transitions) {
          util::Bitset fired(nt);
          fired.set(t);
          pending_crumb = {si, false, {t}};
          State next = [&] {
            obs::ScopedTimer ft(family_ops_timer);
            return s_update(s, t);
          }();
          emit(std::move(next), fired, net_.transition(t).name);
        }
      }
    }
  };

  {
    obs::Span span(options_.tracer, "reduced-search");
    run_bfs();
  }

  // Fragmentation bail-out: the reduced search grew past the configured
  // threshold, which on re-contested cyclic nets means the scenario
  // families fragment beyond the classical graph. Concede and finish the
  // verdict with one classical stubborn-set search from the initial
  // marking (complete for deadlock detection on its own).
  if (result.bailed_to_classical && !stopped) {
    obs::Span span(options_.tracer, "delegated-search");
    run_delegated({net_.initial_marking()},
                  options_.max_seconds - timer.elapsed_seconds(),
                  "delegated-search", /*merge_fireable=*/true, result);
  }

  if (options_.ignoring_guard && !stopped && !result.limit_hit &&
      !result.bailed_to_classical) {
    obs::Span span(options_.tracer, "ignoring-guard");
    std::vector<const State*> state_ptrs;
    state_ptrs.reserve(states.size());
    for (const State& st : states) state_ptrs.push_back(&st);
    apply_ignoring_guard(state_ptrs, edges, enabled_at, fully_expanded,
                         options_.max_seconds - timer.elapsed_seconds(),
                         result);
  }

  result.state_count = states.size();
  result.seconds = timer.elapsed_seconds();
  // Representations with shared backing stores (the family interner) report
  // dedup/cache counters; plain value representations leave the block empty.
  if constexpr (requires(Context& c, GpoFamilyStats& st) { c.fill_stats(st); })
    ctx_.fill_stats(result.family_stats);
  if (options_.metrics != nullptr) {
    publish_gpo_stats(*options_.metrics, options_.metrics_prefix, result);
    if (live_families != nullptr)
      live_families->set(
          static_cast<double>(result.family_stats.distinct_families));
  }
  if (options_.build_graph) {
    result.graph.initial = 0;
    result.graph.node_labels.reserve(states.size());
    for (const State& st : states) {
      std::string label;
      for (const auto& m : mapping(st, 16)) {
        if (!label.empty()) label += " ";
        label += reach::marking_to_string(net_, m);
      }
      result.graph.node_labels.push_back(label);
    }
  }
  return result;
}

}  // namespace gpo::core
