// Result structures for generalized partial-order analysis, shared by both
// family representations (and by the CLI/bench front-ends).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "petri/dot.hpp"
#include "petri/net.hpp"
#include "reduce/reduce.hpp"
#include "util/bitset.hpp"
#include "util/cancel_token.hpp"

namespace gpo::util {
class TaskPool;
}

namespace gpo::core {

/// Storage backend for the canonical families of the reduced search.
enum class FamilyStore {
  kExplicit,  // sorted bitset vectors (hash-consed when FamilyKind::kInterned)
  kZdd,       // one canonical zero-suppressed DD per family, shared nodes
};

struct GpoOptions {
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation; polled in the reduced search and forwarded to
  /// the delegated classical searches. A fired token reports as limit_hit
  /// with the phase it interrupted, like a timeout.
  const util::CancelToken* cancel = nullptr;
  bool stop_at_first_deadlock = false;
  /// Record the GPN state graph (labels summarize markings); small nets only.
  bool build_graph = false;
  /// Guard against the ignoring problem — the check the paper's algorithm
  /// elides in its footnote ("the firing of an enabled transition is not
  /// postponed forever"). After the reduced search, every cyclic SCC of the
  /// GPN graph is checked: a single-enabled transition of one of its states
  /// that never fires inside the SCC is starved, and the starving states are
  /// re-expanded with plain single firing until a fixpoint. Without the
  /// guard the analysis can follow one livelock loop forever and miss
  /// deadlocks reachable through the postponed transitions. Default on;
  /// turning it off reproduces the rawest reduction numbers.
  bool ignoring_guard = true;
  /// Fragmentation bail-out: scenario tracking pays off only while GPN
  /// states stay coarser than classical markings. On heavily re-contested
  /// cyclic nets (conflicts resolved differently on every revolution) the
  /// family dynamics can fragment far past the classical graph instead.
  /// When the GPN state count exceeds this threshold the engine concedes,
  /// abandons the reduced search and completes the verdict with one
  /// classical stubborn-set search from the initial marking — sound, and
  /// bounded by the plain reachability graph.
  std::size_t delegate_after_states = 100'000;
  /// When set, a deadlock is only reported if its witness marking marks this
  /// place (the safety-to-deadlock reduction's violation place). The filter
  /// is applied family-algebraically: dead scenarios are intersected with
  /// m(place).
  std::optional<petri::PlaceId> required_witness_place;
  /// Optional telemetry sink; when set the engine bumps the live progress
  /// slots during the search, times the MCS computation, and publishes its
  /// final counters under `metrics_prefix` before returning.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "gpo.";
  /// Optional phase tracer: the engine opens "reduced-search",
  /// "delegated-search" and "ignoring-guard" spans so the phase tree (and a
  /// timeout's interrupted-phase diagnostic) show where the time went.
  obs::Tracer* tracer = nullptr;
  /// Worker threads for the reduced search. Honored by the interned-family
  /// engine (Engine::kGpoInterned) when build_graph is off; >1 selects the
  /// work-stealing ParallelGpnAnalyzer. Verdicts and state/edge counts are
  /// identical to the sequential engine (see DESIGN.md); only which
  /// counterexample is reported may differ (it always replays).
  std::size_t num_threads = 1;
  /// Visited-set shards for the parallel engine; 0 = max(16, 4 * threads).
  std::size_t shard_count = 0;
  /// Family storage backend (ignored by FamilyKind::kBdd, which is its own
  /// representation). kZdd stores every canonical family as one
  /// zero-suppressed decision diagram over the transition universe: shared
  /// node structure typically cuts families_bytes by an order of magnitude
  /// on scenario-heavy nets, interning is pointer equality and the op cache
  /// a node-level computed table. The ZDD manager is single-threaded, so
  /// kZdd always runs the sequential engine (num_threads is ignored).
  FamilyStore family_store = FamilyStore::kExplicit;
  /// Structural net reduction applied by run_gpo() before the search: the
  /// engine runs on the reduced net, the counterexample is mapped back
  /// through the ReductionCertificate and re-validated by replay on the
  /// input net (state/edge counts stay those of the reduced search — that
  /// is the point). Ignored when required_witness_place is set: the
  /// safety-to-deadlock reduction's violation place must not be rewritten.
  /// Callers that reduce once for several engines (the CLI, the portfolio
  /// scheduler) keep this kOff and map counterexamples themselves.
  reduce::ReduceLevel reduce_level = reduce::ReduceLevel::kOff;
  /// Fork-join pool for intra-state parallelism. When set, the analyzer's
  /// semantic methods (m_update / deadlock_scenario / plan_expansion /
  /// single_enabled_transitions) fork their per-transition terms, candidate
  /// checks and reduction-tree levels onto it as fine-grained range tasks —
  /// with deterministic chunking and index-addressed writes, so all results
  /// stay bitwise identical to the sequential evaluation. Requires a
  /// thread-safe family context (the lock-free FamilyInterner); the engines
  /// set it, callers normally leave it null.
  util::TaskPool* task_pool = nullptr;
};

/// Counters specific to the parallel GPN engine (threads == 0 when the
/// sequential path ran).
struct GpoParallelStats {
  std::size_t threads = 0;
  std::size_t steal_count = 0;
  std::size_t peak_frontier = 0;
  std::size_t shard_count = 0;
  /// Fine-grained intra-state range tasks forked onto the pool (0 on the
  /// sequential path: the models' GPN graphs are tiny, so this — not
  /// peak_frontier — is where the parallelism lives).
  std::size_t fork_tasks = 0;
  double states_per_second = 0.0;
};

/// Counters of the canonical family store (FamilyKind::kInterned, or any
/// kind run with FamilyStore::kZdd; `available` stays false for the plain
/// explicit/BDD representations).
struct GpoFamilyStats {
  bool available = false;
  /// Which store produced the counters: "interned" (hash-consed explicit
  /// arena) or "zdd" (canonical zero-suppressed DD manager).
  std::string backend;
  /// Distinct canonical families in the interner arena (== peak: the arena
  /// only grows during an analysis). Zero for the zdd backend, whose
  /// families share nodes instead of occupying arena slots.
  std::size_t distinct_families = 0;
  /// Families presented for interning; dedup_ratio = intern_calls /
  /// distinct_families is how many deep constructions hash-consing saved.
  std::size_t intern_calls = 0;
  double dedup_ratio = 0.0;
  std::size_t op_cache_hits = 0;
  std::size_t op_cache_misses = 0;
  double op_cache_hit_rate = 0.0;
  /// Direct-mapped op-cache capacity misses (colliding overwrites) and
  /// occupancy, decomposing the miss stream into capacity vs. compulsory.
  std::size_t op_cache_evictions = 0;
  std::size_t op_cache_occupied = 0;
  /// Total computed-table slots (summed over per-thread caches).
  std::size_t op_cache_capacity = 0;
  /// Payload bytes of the canonical store (explicit arena: member vectors +
  /// bitset words; zdd: node arena + unique table + computed table).
  std::size_t families_bytes = 0;
  /// Peak live ZDD nodes (zdd backend only; the DD analogue of
  /// distinct_families).
  std::size_t zdd_nodes = 0;
  /// Per-op-kind computed-cache breakdown (zdd backend only): one entry per
  /// family-algebra op, published as zdd.cache.<op>.{hits,misses}.
  struct OpCacheCount {
    std::string op;
    std::size_t hits = 0;
    std::size_t misses = 0;
  };
  std::vector<OpCacheCount> zdd_op_counts;
};

struct GpoResult {
  std::size_t state_count = 0;
  std::size_t edge_count = 0;
  /// How many expansions used the multiple (simultaneous) firing rule vs the
  /// single-firing fallback.
  std::size_t multiple_steps = 0;
  std::size_t single_steps = 0;
  /// GPN states flagged by the anti-ignoring guard (see
  /// GpoOptions::ignoring_guard) and the number of classical markings the
  /// delegated stubborn-set search visited on their behalf.
  std::size_t ignoring_expansions = 0;
  std::size_t delegated_states = 0;
  /// The fragmentation bail-out fired (GpoOptions::delegate_after_states):
  /// the verdict was completed by a classical stubborn-set search.
  bool bailed_to_classical = false;

  bool deadlock_found = false;
  /// Classical dead marking extracted from a valid set with no enabled
  /// transition (the paper's deadlock characterization).
  std::optional<petri::Marking> deadlock_witness;
  /// A classical firing sequence from the initial marking into the witness,
  /// reconstructed by replaying the dead scenario along the GPN discovery
  /// path. Empty when the deadlock was found by a delegated classical
  /// search (whose roots are mapped markings, not the initial one).
  std::vector<petri::TransitionId> counterexample;
  /// The witness re-checked against the classical enabling rule — must always
  /// hold; kept as a self-diagnostic.
  bool witness_is_dead = false;

  /// Transitions single-enabled in at least one explored GPN state, i.e.
  /// enabled at some covered classical marking. A sound *lower bound* on the
  /// fireable transitions: membership certifies quasi-liveness, but the
  /// reduction may skip markings where further transitions were enabled, so
  /// the complement only suggests (not proves) dead transitions — use the
  /// exhaustive engine for exact dead-transition detection.
  util::Bitset fireable_transitions;

  bool limit_hit = false;
  /// Which phase the limit interrupted: "reduced-search",
  /// "delegated-search" or "ignoring-guard". Empty when !limit_hit.
  std::string interrupted_phase;
  double seconds = 0.0;

  /// Interner/op-cache counters (FamilyKind::kInterned runs only).
  GpoFamilyStats family_stats;

  /// Work-stealing counters (parallel runs only; threads == 0 otherwise).
  GpoParallelStats parallel;

  /// Human-readable diagnostics about ignored or demoted options (e.g. the
  /// zdd store forcing --threads back to the sequential engine). The CLI
  /// prints them to stderr; the portfolio scheduler copies them into
  /// jobs[].warnings in the batch report.
  std::vector<std::string> warnings;

  petri::LabeledGraph graph;  // populated when GpoOptions::build_graph
};

/// Publishes the final counters of one GPO analysis under `prefix`
/// (including the "family_*" interner block when available and the
/// "mem.<prefix>families_bytes" gauge). Invoked by the engine itself when
/// GpoOptions::metrics is set.
void publish_gpo_stats(obs::MetricsRegistry& reg, std::string_view prefix,
                       const GpoResult& result);

/// Reconstructs the GpoFamilyStats view from counters previously published
/// under `prefix` — the registry is the source of truth, the struct a
/// convenience view. `available` reflects whether "<prefix>family_distinct"
/// was ever published.
[[nodiscard]] GpoFamilyStats family_stats_from_registry(
    const obs::MetricsRegistry& reg, std::string_view prefix);

}  // namespace gpo::core
