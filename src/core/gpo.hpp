// Convenience front-end: runs generalized partial-order analysis with a
// runtime-selected set-family representation. This is the entry point the
// CLI, the examples and the benchmark harness use; library code that wants
// the full API instantiates GpnAnalyzer directly.
#pragma once

#include "core/family_interner.hpp"
#include "core/gpn_analyzer.hpp"
#include "core/gpo_result.hpp"
#include "petri/net.hpp"

namespace gpo::core {

enum class FamilyKind {
  kExplicit,  // canonical sorted vector of transition sets
  kBdd,       // Boolean function over |T| BDD variables
  kInterned,  // hash-consed explicit families behind 32-bit ids + op cache
};

/// A GPN state of the interned engine: per-place markings and r are 32-bit
/// FamilyIds into the shared interner, so visited-set hashing and equality
/// run over flat id vectors and successor construction copies ids, not sets.
using InternedGpnState = GpnState<InternedFamily>;

/// Runs the Section 3.3 analysis procedure on `net` and returns the result.
/// With FamilyKind::kExplicit or kInterned, nets whose explicit r0 would
/// exceed the enumeration cap throw std::length_error — switch to kBdd for
/// those. kInterned additionally reports GpoResult::family_stats.
[[nodiscard]] GpoResult run_gpo(const petri::PetriNet& net,
                                FamilyKind kind = FamilyKind::kExplicit,
                                const GpoOptions& options = {});

[[nodiscard]] inline const char* family_kind_name(FamilyKind k) {
  switch (k) {
    case FamilyKind::kExplicit:
      return "explicit";
    case FamilyKind::kBdd:
      return "bdd";
    case FamilyKind::kInterned:
      return "interned";
  }
  return "unknown";
}

}  // namespace gpo::core
