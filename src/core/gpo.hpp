// Convenience front-end: runs generalized partial-order analysis with a
// runtime-selected set-family representation. This is the entry point the
// CLI, the examples and the benchmark harness use; library code that wants
// the full API instantiates GpnAnalyzer directly.
#pragma once

#include "core/gpn_analyzer.hpp"
#include "core/gpo_result.hpp"
#include "petri/net.hpp"

namespace gpo::core {

enum class FamilyKind {
  kExplicit,  // canonical sorted vector of transition sets
  kBdd,       // Boolean function over |T| BDD variables
};

/// Runs the Section 3.3 analysis procedure on `net` and returns the result.
/// With FamilyKind::kExplicit, nets whose explicit r0 would exceed the
/// enumeration cap throw std::length_error — switch to kBdd for those.
[[nodiscard]] GpoResult run_gpo(const petri::PetriNet& net,
                                FamilyKind kind = FamilyKind::kExplicit,
                                const GpoOptions& options = {});

[[nodiscard]] inline const char* family_kind_name(FamilyKind k) {
  return k == FamilyKind::kExplicit ? "explicit" : "bdd";
}

}  // namespace gpo::core
