// Convenience front-end: runs generalized partial-order analysis with a
// runtime-selected set-family representation. This is the entry point the
// CLI, the examples and the benchmark harness use; library code that wants
// the full API instantiates GpnAnalyzer directly.
#pragma once

#include <optional>
#include <string_view>

#include "core/family_interner.hpp"
#include "core/gpn_analyzer.hpp"
#include "core/gpo_result.hpp"
#include "petri/net.hpp"

namespace gpo::core {

enum class FamilyKind {
  kExplicit,  // canonical sorted vector of transition sets
  kBdd,       // Boolean function over |T| BDD variables
  kInterned,  // hash-consed explicit families behind 32-bit ids + op cache
};

/// A GPN state of the interned engine: per-place markings and r are 32-bit
/// FamilyIds into the shared interner, so visited-set hashing and equality
/// run over flat id vectors and successor construction copies ids, not sets.
using InternedGpnState = GpnState<InternedFamily>;

/// Runs the Section 3.3 analysis procedure on `net` and returns the result.
/// With FamilyKind::kExplicit or kInterned, nets whose explicit r0 would
/// exceed the enumeration cap throw std::length_error — switch to kBdd, or
/// to GpoOptions::family_store == FamilyStore::kZdd (whose r0 is built
/// compositionally), for those. kInterned and kZdd runs additionally report
/// GpoResult::family_stats. FamilyStore::kZdd replaces the family storage of
/// kExplicit/kInterned with the canonical ZDD backend (sequential only);
/// kBdd ignores it.
[[nodiscard]] GpoResult run_gpo(const petri::PetriNet& net,
                                FamilyKind kind = FamilyKind::kExplicit,
                                const GpoOptions& options = {});

[[nodiscard]] inline const char* family_kind_name(FamilyKind k) {
  switch (k) {
    case FamilyKind::kExplicit:
      return "explicit";
    case FamilyKind::kBdd:
      return "bdd";
    case FamilyKind::kInterned:
      return "interned";
  }
  return "unknown";
}

[[nodiscard]] inline const char* family_store_name(FamilyStore s) {
  switch (s) {
    case FamilyStore::kExplicit:
      return "explicit";
    case FamilyStore::kZdd:
      return "zdd";
  }
  return "unknown";
}

/// Parses the --family-store / family-store= spellings; nullopt on anything
/// else (callers own the error message).
[[nodiscard]] inline std::optional<FamilyStore> parse_family_store(
    std::string_view name) {
  if (name == "explicit") return FamilyStore::kExplicit;
  if (name == "zdd") return FamilyStore::kZdd;
  return std::nullopt;
}

}  // namespace gpo::core
