// ZddFamily — the fourth interchangeable set-family representation (next to
// ExplicitFamily, BddFamily and InternedFamily): each family is one canonical
// zero-suppressed decision diagram over the transition universe
// (src/bdd/zdd.hpp), all families of one analysis sharing a single manager.
//
// Where the FamilyInterner stores every distinct family as a full sorted
// vector of bitsets (bytes linear in members × universe), the ZDD manager
// stores the *union of all families' structure* as shared nodes: families
// differing in a few scenarios share almost all of their representation, so
// the store grows with structural novelty, not with member counts. Interning
// is implicit — canonical Refs make equality a pointer comparison, exactly
// like InternedFamily's ids — and the interner's direct-mapped op cache
// becomes the manager's node-level computed table.
//
// The manager is single-threaded; GpnAnalyzer<ZddFamily> runs only on the
// sequential engine (core/gpo.cpp enforces this when dispatching
// FamilyStore::kZdd).
#pragma once

#include <memory>
#include <vector>

#include "bdd/zdd.hpp"
#include "core/gpo_result.hpp"
#include "petri/conflict.hpp"
#include "petri/net.hpp"
#include "util/bitset.hpp"
#include "util/hash.hpp"

namespace gpo::core {

using TransitionSet = util::Bitset;  // over |T| transitions

class ZddFamily {
 public:
  /// Owns the ZDD manager all families of one analysis share. Non-copyable;
  /// families hold a pointer back to it (mirrors BddFamily::Context).
  class Context {
   public:
    explicit Context(std::size_t num_transitions,
                     std::size_t node_limit = std::size_t{1} << 23,
                     std::size_t cache_entries = std::size_t{1} << 16)
        : num_transitions_(num_transitions),
          manager_(std::make_unique<zdd::ZddManager>(
              static_cast<zdd::Var>(num_transitions), node_limit,
              cache_entries)) {}

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] std::size_t num_transitions() const {
      return num_transitions_;
    }
    [[nodiscard]] zdd::ZddManager& manager() const { return *manager_; }

    [[nodiscard]] ZddFamily empty() const {
      return ZddFamily(manager_.get(), num_transitions_, zdd::kEmpty);
    }
    [[nodiscard]] ZddFamily single(const TransitionSet& set) const;
    [[nodiscard]] ZddFamily from_sets(
        const std::vector<TransitionSet>& sets) const;
    /// r0 built compositionally: per conflict component the (Bron–Kerbosch)
    /// maximal independent sets as a union of singletons, then the unordered
    /// ZDD product across components. Components have disjoint transition
    /// supports, so the product is exact and never enumerates the full
    /// family — polynomial where the explicit r0 is exponential.
    [[nodiscard]] ZddFamily initial_valid_sets(
        const petri::ConflictInfo& conflicts) const;

    /// GpoResult hook: GpnAnalyzer::explore() detects this method at compile
    /// time and surfaces the counters in GpoResult::family_stats.
    void fill_stats(GpoFamilyStats& out) const {
      zdd::ZddStats s = manager_->stats();
      out.available = true;
      out.backend = "zdd";
      out.op_cache_hits = s.cache_hits;
      out.op_cache_misses = s.cache_misses;
      std::size_t total = s.cache_hits + s.cache_misses;
      out.op_cache_hit_rate =
          total == 0 ? 0.0
                     : static_cast<double>(s.cache_hits) /
                           static_cast<double>(total);
      out.op_cache_evictions = s.cache_evictions;
      out.op_cache_occupied = s.cache_occupied;
      out.op_cache_capacity = s.cache_entries;
      out.families_bytes = s.memory_bytes;
      out.zdd_nodes = s.nodes;
      out.zdd_op_counts.clear();
      for (std::size_t op = 0; op < zdd::ZddStats::kOpCount; ++op)
        out.zdd_op_counts.push_back(
            {zdd::ZddStats::kOpNames[op], s.op_hits[op], s.op_misses[op]});
    }

   private:
    std::size_t num_transitions_;
    std::unique_ptr<zdd::ZddManager> manager_;
  };

  [[nodiscard]] ZddFamily intersect(const ZddFamily& o) const {
    return with(mgr_->intersect(ref_, o.ref_));
  }
  [[nodiscard]] ZddFamily unite(const ZddFamily& o) const {
    return with(mgr_->unite(ref_, o.ref_));
  }
  [[nodiscard]] ZddFamily subtract(const ZddFamily& o) const {
    return with(mgr_->subtract(ref_, o.ref_));
  }
  [[nodiscard]] ZddFamily containing(petri::TransitionId t) const {
    return with(mgr_->containing(ref_, static_cast<zdd::Var>(t)));
  }

  [[nodiscard]] bool is_empty() const { return ref_ == zdd::kEmpty; }
  [[nodiscard]] bool contains(const TransitionSet& v) const {
    return mgr_->contains(ref_, v);
  }
  [[nodiscard]] double count() const {
    return static_cast<double>(mgr_->count(ref_));
  }
  /// Up to `max` member sets, in the diagram's DFS order (a valid members()
  /// order, though different from ExplicitFamily's sorted order).
  [[nodiscard]] std::vector<TransitionSet> members(
      std::size_t max = SIZE_MAX) const;

  /// Refs are hash-consed, so the node index is a perfect hash/equality.
  [[nodiscard]] std::size_t hash() const {
    return static_cast<std::size_t>(util::mix64(ref_));
  }
  bool operator==(const ZddFamily& o) const { return ref_ == o.ref_; }

  [[nodiscard]] std::size_t universe() const { return num_transitions_; }
  [[nodiscard]] zdd::Ref ref() const { return ref_; }

 private:
  friend class Context;
  ZddFamily(zdd::ZddManager* mgr, std::size_t num_transitions, zdd::Ref ref)
      : mgr_(mgr), num_transitions_(num_transitions), ref_(ref) {}
  [[nodiscard]] ZddFamily with(zdd::Ref r) const {
    return ZddFamily(mgr_, num_transitions_, r);
  }

  zdd::ZddManager* mgr_ = nullptr;
  std::size_t num_transitions_ = 0;
  zdd::Ref ref_ = zdd::kEmpty;
};

}  // namespace gpo::core
