#include "core/set_family.hpp"

#include <algorithm>

namespace gpo::core {

// ---------------------------------------------------------------------------
// ExplicitFamily
// ---------------------------------------------------------------------------

ExplicitFamily ExplicitFamily::Context::from_sets(
    std::vector<TransitionSet> sets) const {
  for (const TransitionSet& s : sets)
    if (s.size() != num_transitions_)
      throw std::invalid_argument("from_sets: wrong universe size");
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  return ExplicitFamily(num_transitions_, std::move(sets));
}

ExplicitFamily ExplicitFamily::Context::initial_valid_sets(
    const petri::ConflictInfo& conflicts) const {
  return ExplicitFamily(num_transitions_,
                        conflicts.maximal_conflict_free_sets());
}

ExplicitFamily ExplicitFamily::intersect(const ExplicitFamily& o) const {
  std::vector<TransitionSet> out;
  out.reserve(std::min(sets_.size(), o.sets_.size()));
  std::set_intersection(sets_.begin(), sets_.end(), o.sets_.begin(),
                        o.sets_.end(), std::back_inserter(out));
  return ExplicitFamily(num_transitions_, std::move(out));
}

ExplicitFamily ExplicitFamily::unite(const ExplicitFamily& o) const {
  std::vector<TransitionSet> out;
  out.reserve(sets_.size() + o.sets_.size());
  std::set_union(sets_.begin(), sets_.end(), o.sets_.begin(), o.sets_.end(),
                 std::back_inserter(out));
  return ExplicitFamily(num_transitions_, std::move(out));
}

ExplicitFamily ExplicitFamily::subtract(const ExplicitFamily& o) const {
  std::vector<TransitionSet> out;
  out.reserve(sets_.size());
  std::set_difference(sets_.begin(), sets_.end(), o.sets_.begin(),
                      o.sets_.end(), std::back_inserter(out));
  return ExplicitFamily(num_transitions_, std::move(out));
}

ExplicitFamily ExplicitFamily::containing(petri::TransitionId t) const {
  // Hot path of m_enabled: probe one hoisted word+mask per member instead of
  // a bounds-checked test(t), and count first so families with no matching
  // member (the common early-exit in subsumption checks) allocate nothing
  // and every other result is built with one exactly-sized pass. The
  // filtered subsequence keeps the canonical sorted order.
  const std::size_t wi = t / util::Bitset::kWordBits;
  const util::Bitset::Word mask = util::Bitset::Word{1}
                                  << (t % util::Bitset::kWordBits);
  std::size_t matches = 0;
  for (const TransitionSet& s : sets_)
    if ((s.word(wi) & mask) != 0) ++matches;
  std::vector<TransitionSet> out;
  if (matches != 0) {
    out.reserve(matches);
    for (const TransitionSet& s : sets_)
      if ((s.word(wi) & mask) != 0) out.push_back(s);
  }
  return ExplicitFamily(num_transitions_, std::move(out));
}

bool ExplicitFamily::contains(const TransitionSet& v) const {
  return std::binary_search(sets_.begin(), sets_.end(), v);
}

std::vector<TransitionSet> ExplicitFamily::members(std::size_t max) const {
  if (sets_.size() <= max) return sets_;
  return {sets_.begin(), sets_.begin() + static_cast<std::ptrdiff_t>(max)};
}

std::size_t ExplicitFamily::hash() const {
  // One FNV chain across every member's words (Bitset::hash_value threads the
  // running hash through as the seed) instead of finalizing each member and
  // hash_combine-ing — half the mixing work on the hottest probe path.
  std::uint64_t h = 1469598103934665603ull ^ sets_.size();
  h *= 1099511628211ull;
  for (const TransitionSet& s : sets_) h = s.hash_value(h);
  return static_cast<std::size_t>(h);
}

std::size_t ExplicitFamily::memory_bytes() const {
  std::size_t bytes = sizeof(ExplicitFamily) +
                      sets_.capacity() * sizeof(TransitionSet);
  for (const TransitionSet& s : sets_)
    bytes += ((s.size() + util::Bitset::kWordBits - 1) /
              util::Bitset::kWordBits) *
             sizeof(util::Bitset::Word);
  return bytes;
}

// ---------------------------------------------------------------------------
// BddFamily
// ---------------------------------------------------------------------------

BddFamily BddFamily::Context::single(const TransitionSet& set) const {
  if (set.size() != num_transitions_)
    throw std::invalid_argument("single: wrong universe size");
  bdd::BddManager& mgr = *manager_;
  // Full assignment: exactly this characteristic vector satisfies.
  bdd::Ref f = bdd::kTrue;
  for (std::size_t t = num_transitions_; t-- > 0;) {
    bdd::Var v = static_cast<bdd::Var>(t);
    f = mgr.apply_and(set.test(t) ? mgr.var(v) : mgr.nvar(v), f);
  }
  return BddFamily(manager_.get(), num_transitions_, f);
}

BddFamily BddFamily::Context::from_sets(
    const std::vector<TransitionSet>& sets) const {
  bdd::BddManager& mgr = *manager_;
  bdd::Ref f = bdd::kFalse;
  for (const TransitionSet& s : sets) f = mgr.apply_or(f, single(s).ref());
  return BddFamily(manager_.get(), num_transitions_, f);
}

BddFamily BddFamily::Context::initial_valid_sets(
    const petri::ConflictInfo& conflicts) const {
  bdd::BddManager& mgr = *manager_;
  const std::size_t nt = num_transitions_;
  bdd::Ref f = bdd::kTrue;
  // Built from high variable indices down so each conjunction touches the
  // upper part of the order first — keeps intermediate results small.
  for (std::size_t t = nt; t-- > 0;) {
    const util::Bitset& nb = conflicts.neighbors(static_cast<std::uint32_t>(t));
    // Independence: no conflicting pair is jointly included.
    for (std::size_t u = nb.find_next(t + 1); u < nt; u = nb.find_next(u + 1)) {
      bdd::Ref pair_free = mgr.apply_not(
          mgr.apply_and(mgr.var(static_cast<bdd::Var>(t)),
                        mgr.var(static_cast<bdd::Var>(u))));
      f = mgr.apply_and(f, pair_free);
    }
    // Maximality: t excluded only if some conflicting neighbour is included.
    bdd::Ref clause = mgr.var(static_cast<bdd::Var>(t));
    for (std::size_t u = nb.find_first(); u < nt; u = nb.find_next(u + 1))
      clause = mgr.apply_or(clause, mgr.var(static_cast<bdd::Var>(u)));
    f = mgr.apply_and(f, clause);
  }
  return BddFamily(manager_.get(), num_transitions_, f);
}

bool BddFamily::contains(const TransitionSet& v) const {
  bdd::Ref cur = ref_;
  while (!mgr_->is_terminal(cur)) {
    bdd::Var var = mgr_->var_of(cur);
    cur = v.test(var) ? mgr_->high_of(cur) : mgr_->low_of(cur);
  }
  return cur == bdd::kTrue;
}

double BddFamily::count() const {
  std::vector<bdd::Var> all;
  all.reserve(num_transitions_);
  for (std::size_t t = 0; t < num_transitions_; ++t)
    all.push_back(static_cast<bdd::Var>(t));
  return mgr_->sat_count(ref_, all);
}

std::vector<TransitionSet> BddFamily::members(std::size_t max) const {
  std::vector<bdd::Var> all;
  all.reserve(num_transitions_);
  for (std::size_t t = 0; t < num_transitions_; ++t)
    all.push_back(static_cast<bdd::Var>(t));
  std::vector<TransitionSet> out;
  mgr_->enumerate_sats(ref_, all, max, [&](const util::Bitset& assignment) {
    out.push_back(assignment);
  });
  return out;
}

}  // namespace gpo::core
