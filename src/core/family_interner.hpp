// Hash-consed set-family interner with a memoized operation cache.
//
// The GPO engine's states hold one family per place plus the valid-set family
// r, and successor families are small edits of their parents: across a run the
// same canonical families recur massively (r0 alone appears in every initially
// marked place of every early state). Storing each distinct family once and
// referring to it by a 32-bit FamilyId turns
//   * deep per-place copies into id copies,
//   * family equality into id comparison, and
//   * visited-set hashing into a flat pass over ids (the content hash is
//     computed once, at intern time).
// On top of the unique table sits a BDD-style computed table: a bounded,
// direct-mapped cache mapping (op, FamilyId, FamilyId) -> FamilyId for
// intersect/unite/subtract/containing, the four operations that dominate the
// multiple-firing rule. Both ideas are lifted verbatim from OBDD packages
// (see src/bdd/bdd.cpp), where they are the difference between exponential
// and near-linear behaviour.
//
// Concurrency v2 (this PR — see DESIGN.md "Lock-free unique table"): the
// intra-state parallel engine turns every worker into a continuous intern
// stream, and the PR 4 64-stripe mutex table became the shared bottleneck.
// The unique table is now genuinely lock-free on its fast paths:
//   * One atomic 64-bit word per slot, packing [tag:32 | id_plus_1:32] where
//     the tag is 30 bits of the routed hash with the top bit forced set, so
//     0 unambiguously means "empty". Slots are write-once: empty -> claimed
//     (tag published, id still 0) -> published (id filled in, release
//     store). A claimant is the unique creator of its canonical family, so
//     ids stay dense and exactly one arena slot is ever allocated per value.
//   * Probes are acquire loads; an equal-tag claim that is not yet published
//     is spun on (the only wait on the insert path, timed into the optional
//     intern-wait histogram). The arena write happens before the publishing
//     release store, so a reader that acquires the published word may read
//     the family without further synchronization.
//   * Growth is cooperative: the thread that trips the load factor installs
//     a double-size successor table with one CAS, then every inserting
//     thread helps migrate — empty slots are frozen (CAS 0 -> FROZEN so no
//     late claim can land in the dying table), claimed slots are waited out,
//     published slots are re-probed into the successor. Tables are
//     insert-only, so migration never races a delete and retired tables are
//     kept until the interner dies (no reclamation protocol needed).
//   * The arena is an insert-only radix of geometrically growing segments
//     (64, 128, 256, ... slots) published with a release-CAS, so family(id)/
//     hash_of(id) stay lock-free loads, a FamilyId stays valid forever, and
//     a tiny model touches a few KB instead of the old fixed 4096-slot
//     chunk + 64K-pointer directory (the diamond:8 setup-cost fix).
//   * The computed table is per-thread (registered on first use, found via a
//     thread-local serial check) and now lazily sized: it starts at 1K slots
//     and doubles (dropping contents — it is a cache) as its occupancy
//     crosses 3/4, up to the configured bound. stats() aggregates every
//     thread's hit/miss counters; in the engine this happens at join time.
// Single-threaded runs see exactly the old behaviour: ids are assigned
// densely in intern order and the arena is byte-identical with the cache on
// or off (the property test relies on this).
//
// InternedFamily is the third interchangeable family representation (next to
// ExplicitFamily and BddFamily in set_family.hpp): a {interner, id} handle
// satisfying the same compile-time interface, so GpnAnalyzer<InternedFamily>
// runs on interned states — GpnState<InternedFamily> is effectively
// {vector<FamilyId> marking, FamilyId r} — with no engine changes.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/gpo_result.hpp"
#include "core/set_family.hpp"
#include "obs/histogram.hpp"
#include "util/hash.hpp"

namespace gpo::core {

/// Index of a canonical family inside a FamilyInterner's arena.
using FamilyId = std::uint32_t;

/// The empty family is interned first, so its id is fixed; emptiness tests
/// become an id comparison.
inline constexpr FamilyId kEmptyFamilyId = 0;
inline constexpr FamilyId kInvalidFamilyId = 0xFFFFFFFFu;

/// Counters the interner keeps while an analysis runs; surfaced through
/// GpoResult::family_stats and the bench_gpo_intern driver.
struct FamilyInternerStats {
  std::size_t distinct_families = 0;  ///< arena size (== peak, nothing is freed)
  std::size_t intern_calls = 0;       ///< families presented for interning
  std::size_t op_cache_hits = 0;
  std::size_t op_cache_misses = 0;
  /// Colliding overwrites of an occupied computed-table slot: the capacity
  /// component of the miss stream (misses - evictions ≈ compulsory misses).
  std::size_t op_cache_evictions = 0;
  /// Slots currently written, summed over per-thread caches.
  std::size_t op_cache_occupied = 0;
  /// Total slots across per-thread caches (current sizes summed).
  std::size_t op_cache_capacity = 0;
  std::size_t families_bytes = 0;  ///< payload bytes of the canonical arena
  /// Lock-free unique table: current slot count and completed growths.
  std::size_t unique_table_capacity = 0;
  std::size_t unique_table_growths = 0;

  /// Families that would have been constructed/stored without hash-consing,
  /// per family actually stored.
  [[nodiscard]] double dedup_ratio() const {
    return distinct_families == 0
               ? 0.0
               : static_cast<double>(intern_calls) /
                     static_cast<double>(distinct_families);
  }
  [[nodiscard]] double op_cache_hit_rate() const {
    std::size_t total = op_cache_hits + op_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(op_cache_hits) /
                            static_cast<double>(total);
  }
};

/// Arena-backed unique table of canonical ExplicitFamily values plus the
/// memoized family operations. Non-copyable and non-movable: ids and the
/// per-thread caches refer back into the arena.
///
/// Thread-safety contract:
///   * intern() and every operation (intersect/unite/subtract/containing,
///     single/from_sets/...) may be called concurrently; none of them takes
///     a lock on its fast path (the only mutexes guard the rare table-
///     registration events: a new growth table, a new thread cache).
///   * family(id)/hash_of(id) are lock-free; they are safe for an id the
///     calling thread produced itself, or one received through a
///     synchronizing channel from the producing thread (the parallel
///     engine's work queues, fork-join joins and thread join provide that
///     happens-before).
///   * size()/stats() are exact once the calling threads quiesce.
class FamilyInterner {
 public:
  explicit FamilyInterner(std::size_t num_transitions,
                          std::size_t op_cache_entries = std::size_t{1} << 16,
                          std::size_t initial_table_capacity = 256)
      : num_transitions_(num_transitions),
        base_(num_transitions),
        serial_(next_serial()) {
    // Round both sizes to powers of two for mask indexing.
    std::size_t entries = 1;
    while (entries < op_cache_entries) entries <<= 1;
    op_cache_entries_ = entries;
    std::size_t cap = 4;  // floor: claim + frozen headroom even in tests
    while (cap < initial_table_capacity) cap <<= 1;
    auto first = std::make_unique<Table>(cap);
    table_.store(first.get(), std::memory_order_relaxed);
    tables_.push_back(std::move(first));
    // Pin kEmptyFamilyId == 0: the empty family lives at arena slot 0 and
    // intern() short-circuits on emptiness, so it never hits the table.
    ExplicitFamily e = base_.empty();
    const std::size_t h = e.hash();
    (void)allocate(std::move(e), h);
    intern_calls_.store(1, std::memory_order_relaxed);
  }

  FamilyInterner(const FamilyInterner&) = delete;
  FamilyInterner& operator=(const FamilyInterner&) = delete;

  ~FamilyInterner() {
    for (std::size_t s = 0; s < kMaxSegments; ++s)
      delete[] dir_[s].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t num_transitions() const { return num_transitions_; }

  /// Canonicalizes `f`: returns the id of the arena family equal to it,
  /// storing it first if it is new. The content hash is computed once here
  /// and cached for the family's lifetime. Thread-safe and lock-free except
  /// for the publish-spin on a racing equal-tag claim and the cooperative
  /// migration when the table grows.
  FamilyId intern(ExplicitFamily f) {
    intern_calls_.fetch_add(1, std::memory_order_relaxed);
    if (f.is_empty()) return kEmptyFamilyId;
    const std::size_t h = f.hash();
    const std::uint64_t route = util::mix64(h);
    const std::uint64_t tag =
        kTagClaimBit | ((route >> 34) & kTagHashMask);  // != 0, != frozen tag

    while (true) {
      Table* t = table_.load(std::memory_order_acquire);
      if (t->next.load(std::memory_order_acquire) != nullptr) {
        help_migrate(*t);
        continue;  // reload table_, now (or soon) the successor
      }
      std::size_t i = route & t->mask;
      bool table_died = false;
      while (!table_died) {
        std::uint64_t e = t->slots[i].load(std::memory_order_acquire);
        if (e == kFrozenSlot) {
          table_died = true;  // migration beat us to this slot
          break;
        }
        if (e == 0) {
          if ((t->used.load(std::memory_order_relaxed) + 1) * 4 >
              (t->mask + 1) * 3) {
            grow(*t);
            table_died = true;
            break;
          }
          std::uint64_t expected = 0;
          if (t->slots[i].compare_exchange_strong(expected, tag << 32,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
            // We are the unique creator: allocate the next dense id, then
            // publish it. The arena writes in allocate() happen-before this
            // release store, so any thread that acquires the published word
            // may read the family lock-free.
            FamilyId id = allocate(std::move(f), h);
            t->slots[i].store((tag << 32) | (std::uint64_t{id} + 1),
                              std::memory_order_release);
            t->used.fetch_add(1, std::memory_order_relaxed);
            return id;
          }
          continue;  // lost the claim; re-examine the slot
        }
        if ((e >> 32) == tag) {
          e = wait_published(*t, i, e);
          const FamilyId id =
              static_cast<FamilyId>((e & 0xFFFFFFFFull) - 1);
          if (hash_of(id) == h && family(id) == f) return id;
        }
        i = (i + 1) & t->mask;
      }
      // Fell off a dying table: help finish its migration, then retry on
      // the successor (our family may have been inserted there meanwhile —
      // the retry probe will find it).
      help_migrate(*t);
    }
  }

  /// Lock-free arena read; see the thread-safety contract above.
  [[nodiscard]] const ExplicitFamily& family(FamilyId id) const {
    return slot_at(id).family;
  }
  /// The content hash cached at intern time.
  [[nodiscard]] std::size_t hash_of(FamilyId id) const {
    return slot_at(id).hash;
  }
  /// Families stored; exact once interning threads quiesce.
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(next_id_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool is_empty(FamilyId id) const {
    return id == kEmptyFamilyId;
  }

  // -- family constructors (canonicalized on entry) -------------------------

  FamilyId empty() { return kEmptyFamilyId; }
  FamilyId single(const TransitionSet& set) { return intern(base_.single(set)); }
  FamilyId from_sets(std::vector<TransitionSet> sets) {
    return intern(base_.from_sets(std::move(sets)));
  }
  FamilyId initial_valid_sets(const petri::ConflictInfo& conflicts) {
    return intern(base_.initial_valid_sets(conflicts));
  }

  // -- memoized operations --------------------------------------------------

  FamilyId intersect(FamilyId a, FamilyId b) {
    if (a == b) return a;
    if (a == kEmptyFamilyId || b == kEmptyFamilyId) return kEmptyFamilyId;
    if (a > b) std::swap(a, b);  // commutative: canonical operand order
    return cached_apply(kOpIntersect, a, b);
  }
  FamilyId unite(FamilyId a, FamilyId b) {
    if (a == b || b == kEmptyFamilyId) return a;
    if (a == kEmptyFamilyId) return b;
    if (a > b) std::swap(a, b);
    return cached_apply(kOpUnite, a, b);
  }
  FamilyId subtract(FamilyId a, FamilyId b) {
    if (b == kEmptyFamilyId) return a;
    if (a == kEmptyFamilyId || a == b) return kEmptyFamilyId;
    return cached_apply(kOpSubtract, a, b);
  }
  FamilyId containing(FamilyId a, petri::TransitionId t) {
    if (a == kEmptyFamilyId) return kEmptyFamilyId;
    return cached_apply(kOpContaining, a, static_cast<FamilyId>(t));
  }

  /// Disabling the computed table forces every operation through the plain
  /// ExplicitFamily algebra + intern(); because intern() canonicalizes, the
  /// resulting arena and id assignment are byte-identical either way — the
  /// property test relies on this.
  void set_op_cache_enabled(bool enabled) {
    op_cache_enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool op_cache_enabled() const {
    return op_cache_enabled_.load(std::memory_order_relaxed);
  }
  /// Upper bound one thread's computed table may grow to (slots start at
  /// 1K and double on occupancy, so tiny models never pay for this).
  [[nodiscard]] std::size_t op_cache_entries() const {
    return op_cache_entries_;
  }
  /// Computed tables currently registered (== threads that did memoized ops).
  [[nodiscard]] std::size_t op_cache_thread_count() const {
    std::lock_guard<std::mutex> lock(caches_mu_);
    return caches_.size();
  }

  /// Optional wait histogram: every genuine wait inside intern() — spinning
  /// on a racing claim's publish, or helping/awaiting a table migration —
  /// records its duration in nanoseconds. The uncontended fast path never
  /// reads a clock. Pass nullptr to detach.
  void set_wait_histogram(obs::Histogram* h) {
    wait_hist_.store(h, std::memory_order_relaxed);
  }

  /// Current unique-table slot count (exact once growers quiesce).
  [[nodiscard]] std::size_t unique_table_capacity() const {
    return table_.load(std::memory_order_acquire)->mask + 1;
  }
  [[nodiscard]] std::size_t unique_table_growths() const {
    return grow_count_.load(std::memory_order_relaxed);
  }

  /// Aggregated counters: arena totals plus every thread's cache hits and
  /// misses. Exact once the operating threads quiesce (engine join time).
  [[nodiscard]] FamilyInternerStats stats() const {
    FamilyInternerStats s;
    s.distinct_families = size();
    s.intern_calls = intern_calls_.load(std::memory_order_relaxed);
    s.families_bytes = families_bytes_.load(std::memory_order_relaxed);
    s.unique_table_capacity = unique_table_capacity();
    s.unique_table_growths = unique_table_growths();
    std::lock_guard<std::mutex> lock(caches_mu_);
    for (const ThreadCache& tc : caches_) {
      s.op_cache_hits += tc.cache->hits.load(std::memory_order_relaxed);
      s.op_cache_misses += tc.cache->misses.load(std::memory_order_relaxed);
      s.op_cache_evictions +=
          tc.cache->evictions.load(std::memory_order_relaxed);
      s.op_cache_occupied +=
          tc.cache->occupied.load(std::memory_order_relaxed);
      s.op_cache_capacity +=
          tc.cache->capacity.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  enum Op : std::uint8_t {
    kOpIntersect = 0,
    kOpUnite = 1,
    kOpSubtract = 2,
    kOpContaining = 3,
  };

  /// One computed-table slot. Direct-mapped: a colliding result simply
  /// overwrites the previous tenant (bounded memory, no eviction scans);
  /// a recomputation after overwrite re-interns to the same id.
  struct CacheEntry {
    FamilyId a = kInvalidFamilyId;  // kInvalidFamilyId marks an empty slot
    FamilyId b = 0;
    FamilyId result = 0;
    std::uint8_t op = 0;
  };

  /// Per-thread computed table. Slots are touched only by the owning thread
  /// (including the occupancy-triggered doubling, which drops the contents —
  /// it is a cache); the tallies are relaxed atomics so stats() may read
  /// them while the owner still runs.
  struct OpCache {
    explicit OpCache(std::size_t initial) : slots(initial) {
      capacity.store(initial, std::memory_order_relaxed);
    }
    std::vector<CacheEntry> slots;
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};
    std::atomic<std::size_t> evictions{0};
    std::atomic<std::size_t> occupied{0};
    std::atomic<std::size_t> capacity{0};
  };

  struct ThreadCache {
    std::thread::id tid;
    std::unique_ptr<OpCache> cache;
  };

  /// Times one wait episode into the optional histogram; reads the clock
  /// only when a wait actually happens.
  class WaitTimer {
   public:
    explicit WaitTimer(const std::atomic<obs::Histogram*>& slot)
        : h_(slot.load(std::memory_order_relaxed)),
          start_(h_ != nullptr ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{}) {}
    WaitTimer(const WaitTimer&) = delete;
    WaitTimer& operator=(const WaitTimer&) = delete;
    ~WaitTimer() {
      if (h_ == nullptr) return;
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      h_->record(static_cast<std::uint64_t>(ns));
    }

   private:
    obs::Histogram* h_;
    std::chrono::steady_clock::time_point start_;
  };

  // -- arena: radix of never-moving, geometrically growing segments ---------

  struct ArenaSlot {
    ExplicitFamily family;
    std::size_t hash = 0;
  };

  // Segment s holds 64 << s slots starting at id ((1 << s) - 1) * 64, so the
  // first segment is 64 families (a tiny model touches ~KBs, not the old
  // 4096-slot chunk) and 24 segments cover the full 2^28 id budget.
  static constexpr std::size_t kSeg0Bits = 6;
  static constexpr std::size_t kMaxSegments = 24;
  static constexpr std::size_t kMaxFamilies = std::size_t{1} << 28;

  [[nodiscard]] static std::size_t segment_of(FamilyId id) {
    return static_cast<std::size_t>(
               std::bit_width((std::uint64_t{id} >> kSeg0Bits) + 1)) -
           1;
  }
  [[nodiscard]] static FamilyId segment_start(std::size_t s) {
    return static_cast<FamilyId>(((std::size_t{1} << s) - 1) << kSeg0Bits);
  }
  [[nodiscard]] static std::size_t segment_size(std::size_t s) {
    return std::size_t{1} << (kSeg0Bits + s);
  }

  [[nodiscard]] const ArenaSlot& slot_at(FamilyId id) const {
    const std::size_t s = segment_of(id);
    const ArenaSlot* seg = dir_[s].load(std::memory_order_acquire);
    return seg[id - segment_start(s)];
  }

  [[nodiscard]] ArenaSlot* segment_for(std::size_t s) {
    ArenaSlot* seg = dir_[s].load(std::memory_order_acquire);
    if (seg != nullptr) return seg;
    ArenaSlot* fresh = new ArenaSlot[segment_size(s)];
    ArenaSlot* expected = nullptr;
    if (dir_[s].compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
      return fresh;
    delete[] fresh;  // another thread published first
    return expected;
  }

  /// Stores `f` at the next dense id. Caller must guarantee uniqueness (the
  /// unique table's claim protocol does, for everything but the pinned
  /// empty family).
  FamilyId allocate(ExplicitFamily f, std::size_t h) {
    const std::uint64_t raw = next_id_.load(std::memory_order_relaxed);
    if (raw >= kMaxFamilies || raw >= kInvalidFamilyId)
      throw std::length_error("FamilyInterner: id space exhausted");
    const FamilyId id = static_cast<FamilyId>(
        next_id_alloc_.fetch_add(1, std::memory_order_relaxed));
    families_bytes_.fetch_add(f.memory_bytes(), std::memory_order_relaxed);
    const std::size_t s = segment_of(id);
    ArenaSlot& slot = segment_for(s)[id - segment_start(s)];
    slot.family = std::move(f);
    slot.hash = h;
    // size() counts only fully published families: bump the visible bound
    // once our predecessor ids are all published.
    std::uint64_t expected = id;
    while (!next_id_.compare_exchange_weak(expected, id + 1,
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
      expected = id;
    return id;
  }

  // -- lock-free unique table -----------------------------------------------
  //
  // Slot word: 0 = empty; kFrozenSlot = migrated-away (growth only);
  // otherwise [tag:32 | id_plus_1:32] with id_plus_1 == 0 while the claimant
  // is still allocating. Tags carry kTagClaimBit and 30 hash bits, so they
  // can collide with neither 0 nor the frozen sentinel's 0xFFFFFFFF.

  static constexpr std::uint64_t kTagClaimBit = 0x80000000ull;
  static constexpr std::uint64_t kTagHashMask = 0x3FFFFFFFull;
  static constexpr std::uint64_t kFrozenSlot = 0xFFFFFFFF00000000ull;

  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1),
          slots(std::make_unique<std::atomic<std::uint64_t>[]>(capacity)) {}
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;  // value-init: empty
    std::atomic<std::size_t> used{0};
    std::atomic<Table*> next{nullptr};     // successor once growth starts
    std::atomic<std::size_t> migrate_pos{0};  // cooperative migration cursor
    std::atomic<std::size_t> migrated{0};     // slots fully dealt with
  };

  /// Spins until the claimed slot publishes its id (the claimant is in
  /// allocate(); claimed slots are never frozen, so this terminates with a
  /// published word).
  std::uint64_t wait_published(Table& t, std::size_t i, std::uint64_t e) {
    if ((e & 0xFFFFFFFFull) != 0) return e;
    WaitTimer wait(wait_hist_);
    while ((e & 0xFFFFFFFFull) == 0) {
      std::this_thread::yield();
      e = t.slots[i].load(std::memory_order_acquire);
    }
    return e;
  }

  /// Installs a double-size successor (first CAS wins) and helps migrate.
  void grow(Table& t) {
    if (t.next.load(std::memory_order_acquire) == nullptr) {
      auto fresh = std::make_unique<Table>((t.mask + 1) * 2);
      Table* expected = nullptr;
      if (t.next.compare_exchange_strong(expected, fresh.get(),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        grow_count_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(tables_mu_);
        tables_.push_back(std::move(fresh));
      }
      // else: lost the race; fresh is freed here, the winner's table stands.
    }
    help_migrate(t);
  }

  /// Cooperative migration: claim 64-slot chunks of the dying table, freeze
  /// empties (so no claim can land behind the sweep), wait out in-flight
  /// claims, re-probe published entries into the successor. Blocks until
  /// every chunk (including other helpers') is done, then swings table_.
  void help_migrate(Table& t) {
    Table* next = t.next.load(std::memory_order_acquire);
    if (next == nullptr) return;
    const std::size_t cap = t.mask + 1;
    constexpr std::size_t kChunk = 64;
    while (true) {
      const std::size_t start =
          t.migrate_pos.fetch_add(kChunk, std::memory_order_relaxed);
      if (start >= cap) break;
      const std::size_t end = std::min(start + kChunk, cap);
      for (std::size_t i = start; i < end; ++i) {
        std::uint64_t e = t.slots[i].load(std::memory_order_acquire);
        while (true) {
          if (e == kFrozenSlot) break;
          if (e == 0) {
            if (t.slots[i].compare_exchange_weak(e, kFrozenSlot,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire))
              break;
            continue;  // e reloaded by the failed CAS
          }
          if ((e & 0xFFFFFFFFull) == 0) {  // in-flight claim: wait it out
            std::this_thread::yield();
            e = t.slots[i].load(std::memory_order_acquire);
            continue;
          }
          reinsert(*next, e);
          break;
        }
      }
      t.migrated.fetch_add(end - start, std::memory_order_acq_rel);
    }
    if (t.migrated.load(std::memory_order_acquire) < cap) {
      WaitTimer wait(wait_hist_);
      while (t.migrated.load(std::memory_order_acquire) < cap)
        std::this_thread::yield();
    }
    Table* cur = &t;
    table_.compare_exchange_strong(cur, next, std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  }

  /// Moves one published word into the successor. Every old slot is owned by
  /// exactly one migrator and distinct slots hold distinct families, so a
  /// plain claim-first-empty probe cannot create duplicates.
  void reinsert(Table& next, std::uint64_t e) {
    const FamilyId id = static_cast<FamilyId>((e & 0xFFFFFFFFull) - 1);
    const std::uint64_t route = util::mix64(hash_of(id));
    std::size_t i = route & next.mask;
    std::uint64_t expected = 0;
    while (!next.slots[i].compare_exchange_strong(expected, e,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
      expected = 0;
      i = (i + 1) & next.mask;
    }
    next.used.fetch_add(1, std::memory_order_relaxed);
  }

  // -- per-thread computed tables -------------------------------------------

  static std::uint64_t next_serial() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// The calling thread's computed table for *this* interner. A single
  /// thread-local slot caches the last (interner serial -> table) pairing,
  /// so the steady state — one interner per analysis — costs one integer
  /// compare; switching interners re-resolves through the registry mutex.
  OpCache& local_cache() {
    struct Tls {
      std::uint64_t serial = 0;
      OpCache* cache = nullptr;
    };
    static thread_local Tls tls;
    if (tls.serial != serial_) {
      tls.cache = register_thread_cache();
      tls.serial = serial_;
    }
    return *tls.cache;
  }

  OpCache* register_thread_cache() {
    const std::thread::id me = std::this_thread::get_id();
    std::lock_guard<std::mutex> lock(caches_mu_);
    for (const ThreadCache& tc : caches_)
      if (tc.tid == me) return tc.cache.get();
    caches_.push_back(
        {me, std::make_unique<OpCache>(
                 std::min<std::size_t>(op_cache_entries_, 1024))});
    return caches_.back().cache.get();
  }

  static std::size_t cache_slot(Op op, FamilyId a, FamilyId b,
                                std::size_t size) {
    return static_cast<std::size_t>(
               util::mix64((std::uint64_t{a} << 34) ^
                           (std::uint64_t{op} << 32) ^ std::uint64_t{b})) &
           (size - 1);
  }

  /// Doubles the computed table, rehashing the live entries. Collision-free:
  /// an old slot holds one entry and distinct old slots differ in their low
  /// index bits, so no two entries land on the same doubled slot. Occupancy
  /// and hit history are preserved exactly — growth is invisible except in
  /// the capacity counter.
  static void grow_cache(OpCache& c) {
    std::vector<CacheEntry> next(c.slots.size() * 2);
    for (const CacheEntry& e : c.slots)
      if (e.a != kInvalidFamilyId)
        next[cache_slot(static_cast<Op>(e.op), e.a, e.b, next.size())] = e;
    c.slots = std::move(next);
    c.capacity.store(c.slots.size(), std::memory_order_relaxed);
  }

  FamilyId cached_apply(Op op, FamilyId a, FamilyId b) {
    OpCache* cache = op_cache_enabled() ? &local_cache() : nullptr;
    std::size_t slot = 0;
    if (cache != nullptr) {
      slot = cache_slot(op, a, b, cache->slots.size());
      const CacheEntry& e = cache->slots[slot];
      if (e.a == a && e.b == b && e.op == op) {
        cache->hits.fetch_add(1, std::memory_order_relaxed);
        return e.result;
      }
      cache->misses.fetch_add(1, std::memory_order_relaxed);
    }
    const ExplicitFamily& fa = family(a);
    ExplicitFamily r = op == kOpIntersect ? fa.intersect(family(b))
                       : op == kOpUnite   ? fa.unite(family(b))
                       : op == kOpSubtract
                           ? fa.subtract(family(b))
                           : fa.containing(static_cast<petri::TransitionId>(b));
    FamilyId id = intern(std::move(r));
    if (cache != nullptr) {
      // Lazy sizing: below the configured bound the table doubles (rehashing
      // its contents) instead of evicting, on either 3/4 occupancy or a
      // colliding overwrite. Tiny models therefore never touch megabytes,
      // and a nonzero eviction count genuinely means the configured bound
      // is too small.
      while (cache->slots.size() < op_cache_entries_) {
        const CacheEntry& tenant = cache->slots[slot];
        const bool collides =
            tenant.a != kInvalidFamilyId &&
            (tenant.a != a || tenant.b != b || tenant.op != op);
        const bool crowded =
            (cache->occupied.load(std::memory_order_relaxed) + 1) * 4 >
            cache->slots.size() * 3;
        if (!collides && !crowded) break;
        grow_cache(*cache);
        slot = cache_slot(op, a, b, cache->slots.size());
      }
      CacheEntry& e = cache->slots[slot];
      if (e.a == kInvalidFamilyId)
        cache->occupied.fetch_add(1, std::memory_order_relaxed);
      else if (e.a != a || e.b != b || e.op != op)
        cache->evictions.fetch_add(1, std::memory_order_relaxed);
      e = {a, b, id, op};
    }
    return id;
  }

  std::size_t num_transitions_;
  ExplicitFamily::Context base_;
  std::uint64_t serial_;  // unique per interner instance, for the TLS lookup
  std::size_t op_cache_entries_ = 0;

  std::atomic<Table*> table_{nullptr};
  mutable std::mutex tables_mu_;
  std::vector<std::unique_ptr<Table>> tables_;  // all generations, owned
  std::atomic<std::size_t> grow_count_{0};

  std::atomic<ArenaSlot*> dir_[kMaxSegments] = {};
  std::atomic<std::uint64_t> next_id_alloc_{0};  // ids handed out
  std::atomic<std::uint64_t> next_id_{0};        // ids fully published

  std::atomic<obs::Histogram*> wait_hist_{nullptr};

  mutable std::mutex caches_mu_;
  std::vector<ThreadCache> caches_;
  std::atomic<bool> op_cache_enabled_{true};
  std::atomic<std::size_t> intern_calls_{0};
  std::atomic<std::size_t> families_bytes_{0};
};

// ---------------------------------------------------------------------------
// InternedFamily — the Family-interface handle over a FamilyInterner
// ---------------------------------------------------------------------------

class InternedFamily {
 public:
  /// Owns the interner all families of one analysis share. Non-copyable;
  /// families hold a pointer back to it (mirrors BddFamily::Context).
  class Context {
   public:
    explicit Context(std::size_t num_transitions,
                     std::size_t op_cache_entries = std::size_t{1} << 16)
        : interner_(std::make_unique<FamilyInterner>(num_transitions,
                                                     op_cache_entries)) {}

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] std::size_t num_transitions() const {
      return interner_->num_transitions();
    }
    [[nodiscard]] FamilyInterner& interner() const { return *interner_; }

    [[nodiscard]] InternedFamily empty() const {
      return InternedFamily(interner_.get(), kEmptyFamilyId);
    }
    [[nodiscard]] InternedFamily single(const TransitionSet& set) const {
      return InternedFamily(interner_.get(), interner_->single(set));
    }
    [[nodiscard]] InternedFamily from_sets(
        std::vector<TransitionSet> sets) const {
      return InternedFamily(interner_.get(),
                            interner_->from_sets(std::move(sets)));
    }
    [[nodiscard]] InternedFamily initial_valid_sets(
        const petri::ConflictInfo& conflicts) const {
      return InternedFamily(interner_.get(),
                            interner_->initial_valid_sets(conflicts));
    }

    /// GpoResult hook: GpnAnalyzer::explore() detects this method at compile
    /// time and surfaces the counters in GpoResult::family_stats.
    void fill_stats(GpoFamilyStats& out) const {
      FamilyInternerStats s = interner_->stats();
      out.available = true;
      out.backend = "interned";
      out.distinct_families = s.distinct_families;
      out.intern_calls = s.intern_calls;
      out.dedup_ratio = s.dedup_ratio();
      out.op_cache_hits = s.op_cache_hits;
      out.op_cache_misses = s.op_cache_misses;
      out.op_cache_hit_rate = s.op_cache_hit_rate();
      out.op_cache_evictions = s.op_cache_evictions;
      out.op_cache_occupied = s.op_cache_occupied;
      out.op_cache_capacity = s.op_cache_capacity;
      out.families_bytes = s.families_bytes;
    }

   private:
    std::unique_ptr<FamilyInterner> interner_;
  };

  /// Detached handle (no interner): only valid as a placeholder, e.g. in
  /// default-constructed GpnStates inside arena chunks.
  InternedFamily() = default;

  [[nodiscard]] InternedFamily intersect(const InternedFamily& o) const {
    return with(interner_->intersect(id_, o.id_));
  }
  [[nodiscard]] InternedFamily unite(const InternedFamily& o) const {
    return with(interner_->unite(id_, o.id_));
  }
  [[nodiscard]] InternedFamily subtract(const InternedFamily& o) const {
    return with(interner_->subtract(id_, o.id_));
  }
  [[nodiscard]] InternedFamily containing(petri::TransitionId t) const {
    return with(interner_->containing(id_, t));
  }

  [[nodiscard]] bool is_empty() const { return id_ == kEmptyFamilyId; }
  [[nodiscard]] bool contains(const TransitionSet& v) const {
    return interner_->family(id_).contains(v);
  }
  [[nodiscard]] double count() const { return interner_->family(id_).count(); }
  [[nodiscard]] std::vector<TransitionSet> members(
      std::size_t max = SIZE_MAX) const {
    return interner_->family(id_).members(max);
  }

  /// Ids are hash-consed, so mixing the id is a perfect hash; equality is id
  /// comparison (families of one analysis share one interner, as with the
  /// BDD manager).
  [[nodiscard]] std::size_t hash() const {
    return static_cast<std::size_t>(util::mix64(id_));
  }
  bool operator==(const InternedFamily& o) const { return id_ == o.id_; }

  [[nodiscard]] std::size_t universe() const {
    return interner_->num_transitions();
  }
  [[nodiscard]] FamilyId id() const { return id_; }

 private:
  friend class Context;
  InternedFamily(FamilyInterner* interner, FamilyId id)
      : interner_(interner), id_(id) {}
  [[nodiscard]] InternedFamily with(FamilyId id) const {
    return InternedFamily(interner_, id);
  }

  FamilyInterner* interner_ = nullptr;
  FamilyId id_ = kEmptyFamilyId;
};

}  // namespace gpo::core
