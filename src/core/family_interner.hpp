// Hash-consed set-family interner with a memoized operation cache.
//
// The GPO engine's states hold one family per place plus the valid-set family
// r, and successor families are small edits of their parents: across a run the
// same canonical families recur massively (r0 alone appears in every initially
// marked place of every early state). Storing each distinct family once and
// referring to it by a 32-bit FamilyId turns
//   * deep per-place copies into id copies,
//   * family equality into id comparison, and
//   * visited-set hashing into a flat pass over ids (the content hash is
//     computed once, at intern time).
// On top of the unique table sits a BDD-style computed table: a bounded,
// direct-mapped cache mapping (op, FamilyId, FamilyId) -> FamilyId for
// intersect/unite/subtract/containing, the four operations that dominate the
// multiple-firing rule. Both ideas are lifted verbatim from OBDD packages
// (see src/bdd/bdd.cpp), where they are the difference between exponential
// and near-linear behaviour.
//
// Concurrency (PR 5): the interner is safe to share across the parallel GPN
// engine's worker threads. The design keeps the sequential fast path intact:
//   * The arena is insert-only and never moves an entry: a two-level radix of
//     fixed-size chunks published with a release-CAS, so family(id)/hash_of(id)
//     are lock-free loads and a FamilyId stays valid forever.
//   * The unique table is striped: interning locks only the stripe the content
//     hash routes to, so distinct families intern in parallel while equal
//     families serialize (guaranteeing one id per canonical value).
//   * The computed table is per-thread (registered on first use, found via a
//     thread-local serial check), so the hot memoization path takes no lock
//     and shares no cache lines between workers. stats() aggregates every
//     thread's hit/miss counters; in the engine this happens at join time.
// Single-threaded runs see exactly the old behaviour: ids are assigned densely
// in intern order and the arena is byte-identical with the cache on or off
// (the property test relies on this).
//
// InternedFamily is the third interchangeable family representation (next to
// ExplicitFamily and BddFamily in set_family.hpp): a {interner, id} handle
// satisfying the same compile-time interface, so GpnAnalyzer<InternedFamily>
// runs on interned states — GpnState<InternedFamily> is effectively
// {vector<FamilyId> marking, FamilyId r} — with no engine changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/gpo_result.hpp"
#include "core/set_family.hpp"
#include "util/hash.hpp"

namespace gpo::core {

/// Index of a canonical family inside a FamilyInterner's arena.
using FamilyId = std::uint32_t;

/// The empty family is interned first, so its id is fixed; emptiness tests
/// become an id comparison.
inline constexpr FamilyId kEmptyFamilyId = 0;
inline constexpr FamilyId kInvalidFamilyId = 0xFFFFFFFFu;

/// Counters the interner keeps while an analysis runs; surfaced through
/// GpoResult::family_stats and the bench_gpo_intern driver.
struct FamilyInternerStats {
  std::size_t distinct_families = 0;  ///< arena size (== peak, nothing is freed)
  std::size_t intern_calls = 0;       ///< families presented for interning
  std::size_t op_cache_hits = 0;
  std::size_t op_cache_misses = 0;
  /// Colliding overwrites of an occupied computed-table slot: the capacity
  /// component of the miss stream (misses - evictions ≈ compulsory misses).
  std::size_t op_cache_evictions = 0;
  /// Slots ever written, summed over per-thread caches.
  std::size_t op_cache_occupied = 0;
  /// Total slots across per-thread caches (entries × registered threads).
  std::size_t op_cache_capacity = 0;
  std::size_t families_bytes = 0;  ///< payload bytes of the canonical arena

  /// Families that would have been constructed/stored without hash-consing,
  /// per family actually stored.
  [[nodiscard]] double dedup_ratio() const {
    return distinct_families == 0
               ? 0.0
               : static_cast<double>(intern_calls) /
                     static_cast<double>(distinct_families);
  }
  [[nodiscard]] double op_cache_hit_rate() const {
    std::size_t total = op_cache_hits + op_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(op_cache_hits) /
                            static_cast<double>(total);
  }
};

/// Arena-backed unique table of canonical ExplicitFamily values plus the
/// memoized family operations. Non-copyable and non-movable: ids and the
/// per-thread caches refer back into the arena.
///
/// Thread-safety contract:
///   * intern() and every operation (intersect/unite/subtract/containing,
///     single/from_sets/...) may be called concurrently.
///   * family(id)/hash_of(id) are lock-free; they are safe for an id the
///     calling thread produced itself, or one received through a
///     synchronizing channel from the producing thread (the parallel
///     engine's work queues and thread join provide that happens-before).
///   * size()/stats() are exact once the calling threads quiesce.
class FamilyInterner {
 public:
  explicit FamilyInterner(std::size_t num_transitions,
                          std::size_t op_cache_entries = std::size_t{1} << 16)
      : num_transitions_(num_transitions),
        base_(num_transitions),
        serial_(next_serial()),
        stripes_(kStripeCount),
        dir_(std::make_unique<std::atomic<ArenaSlot*>[]>(kDirSize)) {
    // Round the computed-table size to a power of two for mask indexing.
    std::size_t entries = 1;
    while (entries < op_cache_entries) entries <<= 1;
    op_cache_entries_ = entries;
    // Pin kEmptyFamilyId == 0: the empty family lives at arena slot 0 and
    // intern() short-circuits on emptiness, so it never hits the table.
    ExplicitFamily e = base_.empty();
    const std::size_t h = e.hash();
    (void)allocate(std::move(e), h);
    intern_calls_.store(1, std::memory_order_relaxed);
  }

  FamilyInterner(const FamilyInterner&) = delete;
  FamilyInterner& operator=(const FamilyInterner&) = delete;

  ~FamilyInterner() {
    for (std::size_t c = 0; c < kDirSize; ++c)
      delete[] dir_[c].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t num_transitions() const { return num_transitions_; }

  /// Canonicalizes `f`: returns the id of the arena family equal to it,
  /// storing it first if it is new. The content hash is computed once here
  /// and cached for the family's lifetime. Thread-safe: equal families route
  /// to the same stripe, whose mutex serializes the lookup-or-insert.
  FamilyId intern(ExplicitFamily f) {
    intern_calls_.fetch_add(1, std::memory_order_relaxed);
    if (f.is_empty()) return kEmptyFamilyId;
    const std::size_t h = f.hash();
    const std::uint64_t route = util::mix64(h);
    Stripe& stripe = stripes_[route & (kStripeCount - 1)];
    std::lock_guard<std::mutex> lock(stripe.mu);
    if ((stripe.count + 1) * 4 > stripe.slots.size() * 3) stripe.grow();
    const std::size_t mask = stripe.slots.size() - 1;
    std::size_t i = (route >> kStripeBits) & mask;
    while (true) {
      TableSlot& slot = stripe.slots[i];
      if (slot.id_plus_1 == 0) {
        // New canonical family: allocate the next dense id, publish the
        // payload into the arena *before* the table slot (both writes are
        // ordered by this stripe's mutex for later equal-family lookups, and
        // by the chunk's release-CAS + the caller's own synchronization for
        // lock-free family(id) readers).
        FamilyId id = allocate(std::move(f), h);
        slot.hash = h;
        slot.id_plus_1 = id + 1;
        ++stripe.count;
        return id;
      }
      if (slot.hash == h && family(slot.id_plus_1 - 1) == f)
        return slot.id_plus_1 - 1;
      i = (i + 1) & mask;
    }
  }

  /// Lock-free arena read; see the thread-safety contract above.
  [[nodiscard]] const ExplicitFamily& family(FamilyId id) const {
    return slot_at(id).family;
  }
  /// The content hash cached at intern time.
  [[nodiscard]] std::size_t hash_of(FamilyId id) const {
    return slot_at(id).hash;
  }
  /// Families stored; exact once interning threads quiesce.
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(next_id_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool is_empty(FamilyId id) const {
    return id == kEmptyFamilyId;
  }

  // -- family constructors (canonicalized on entry) -------------------------

  FamilyId empty() { return kEmptyFamilyId; }
  FamilyId single(const TransitionSet& set) { return intern(base_.single(set)); }
  FamilyId from_sets(std::vector<TransitionSet> sets) {
    return intern(base_.from_sets(std::move(sets)));
  }
  FamilyId initial_valid_sets(const petri::ConflictInfo& conflicts) {
    return intern(base_.initial_valid_sets(conflicts));
  }

  // -- memoized operations --------------------------------------------------

  FamilyId intersect(FamilyId a, FamilyId b) {
    if (a == b) return a;
    if (a == kEmptyFamilyId || b == kEmptyFamilyId) return kEmptyFamilyId;
    if (a > b) std::swap(a, b);  // commutative: canonical operand order
    return cached_apply(kOpIntersect, a, b);
  }
  FamilyId unite(FamilyId a, FamilyId b) {
    if (a == b || b == kEmptyFamilyId) return a;
    if (a == kEmptyFamilyId) return b;
    if (a > b) std::swap(a, b);
    return cached_apply(kOpUnite, a, b);
  }
  FamilyId subtract(FamilyId a, FamilyId b) {
    if (b == kEmptyFamilyId) return a;
    if (a == kEmptyFamilyId || a == b) return kEmptyFamilyId;
    return cached_apply(kOpSubtract, a, b);
  }
  FamilyId containing(FamilyId a, petri::TransitionId t) {
    if (a == kEmptyFamilyId) return kEmptyFamilyId;
    return cached_apply(kOpContaining, a, static_cast<FamilyId>(t));
  }

  /// Disabling the computed table forces every operation through the plain
  /// ExplicitFamily algebra + intern(); because intern() canonicalizes, the
  /// resulting arena and id assignment are byte-identical either way — the
  /// property test relies on this.
  void set_op_cache_enabled(bool enabled) {
    op_cache_enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool op_cache_enabled() const {
    return op_cache_enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t op_cache_entries() const {
    return op_cache_entries_;
  }
  /// Computed tables currently registered (== threads that did memoized ops).
  [[nodiscard]] std::size_t op_cache_thread_count() const {
    std::lock_guard<std::mutex> lock(caches_mu_);
    return caches_.size();
  }

  /// Aggregated counters: arena totals plus every thread's cache hits and
  /// misses. Exact once the operating threads quiesce (engine join time).
  [[nodiscard]] FamilyInternerStats stats() const {
    FamilyInternerStats s;
    s.distinct_families = size();
    s.intern_calls = intern_calls_.load(std::memory_order_relaxed);
    s.families_bytes = families_bytes_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(caches_mu_);
    for (const ThreadCache& tc : caches_) {
      s.op_cache_hits += tc.cache->hits.load(std::memory_order_relaxed);
      s.op_cache_misses += tc.cache->misses.load(std::memory_order_relaxed);
      s.op_cache_evictions +=
          tc.cache->evictions.load(std::memory_order_relaxed);
      s.op_cache_occupied +=
          tc.cache->occupied.load(std::memory_order_relaxed);
      s.op_cache_capacity += op_cache_entries_;
    }
    return s;
  }

 private:
  enum Op : std::uint8_t {
    kOpIntersect = 0,
    kOpUnite = 1,
    kOpSubtract = 2,
    kOpContaining = 3,
  };

  /// One computed-table slot. Direct-mapped: a colliding result simply
  /// overwrites the previous tenant (bounded memory, no eviction scans);
  /// a recomputation after overwrite re-interns to the same id.
  struct CacheEntry {
    FamilyId a = kInvalidFamilyId;  // kInvalidFamilyId marks an empty slot
    FamilyId b = 0;
    FamilyId result = 0;
    std::uint8_t op = 0;
  };

  /// Per-thread computed table. Slots are touched only by the owning thread;
  /// the hit/miss tallies are relaxed atomics so stats() may read them while
  /// the owner still runs.
  struct OpCache {
    explicit OpCache(std::size_t entries) : slots(entries) {}
    std::vector<CacheEntry> slots;
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};
    std::atomic<std::size_t> evictions{0};
    std::atomic<std::size_t> occupied{0};
  };

  struct ThreadCache {
    std::thread::id tid;
    std::unique_ptr<OpCache> cache;
  };

  // -- arena: two-level radix of never-moving chunks ------------------------

  struct ArenaSlot {
    ExplicitFamily family;
    std::size_t hash = 0;
  };

  static constexpr std::size_t kChunkBits = 12;  // 4096 families per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kDirSize = std::size_t{1} << 16;
  // kDirSize * kChunkSize = 2^28 ids — far above kInvalidFamilyId concerns
  // for real nets; exceeding it throws below.

  [[nodiscard]] const ArenaSlot& slot_at(FamilyId id) const {
    const ArenaSlot* chunk =
        dir_[id >> kChunkBits].load(std::memory_order_acquire);
    return chunk[id & (kChunkSize - 1)];
  }

  [[nodiscard]] ArenaSlot* chunk_for(std::size_t c) {
    ArenaSlot* chunk = dir_[c].load(std::memory_order_acquire);
    if (chunk != nullptr) return chunk;
    ArenaSlot* fresh = new ArenaSlot[kChunkSize];
    ArenaSlot* expected = nullptr;
    if (dir_[c].compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
      return fresh;
    delete[] fresh;  // another thread published first
    return expected;
  }

  /// Stores `f` at the next dense id. Caller must guarantee uniqueness
  /// (the stripe lock does, for everything but the pinned empty family).
  FamilyId allocate(ExplicitFamily f, std::size_t h) {
    const std::uint64_t raw = next_id_.load(std::memory_order_relaxed);
    if (raw >= kDirSize * kChunkSize || raw >= kInvalidFamilyId)
      throw std::length_error("FamilyInterner: id space exhausted");
    const FamilyId id = static_cast<FamilyId>(
        next_id_alloc_.fetch_add(1, std::memory_order_relaxed));
    families_bytes_.fetch_add(f.memory_bytes(), std::memory_order_relaxed);
    ArenaSlot* chunk = chunk_for(id >> kChunkBits);
    ArenaSlot& slot = chunk[id & (kChunkSize - 1)];
    slot.family = std::move(f);
    slot.hash = h;
    // size() counts only fully published families: bump the visible bound
    // once our predecessor ids are all published.
    std::uint64_t expected = id;
    while (!next_id_.compare_exchange_weak(expected, id + 1,
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
      expected = id;
    return id;
  }

  // -- striped unique table -------------------------------------------------

  static constexpr std::size_t kStripeCount = 64;  // power of two
  static constexpr unsigned kStripeBits = 6;

  struct TableSlot {
    std::size_t hash = 0;
    std::uint64_t id_plus_1 = 0;  // 0 = empty
  };

  struct Stripe {
    std::mutex mu;
    std::vector<TableSlot> slots = std::vector<TableSlot>(64);
    std::size_t count = 0;

    void grow() {
      std::vector<TableSlot> bigger(slots.size() * 2);
      const std::size_t mask = bigger.size() - 1;
      for (const TableSlot& s : slots) {
        if (s.id_plus_1 == 0) continue;
        std::size_t i = (util::mix64(s.hash) >> kStripeBits) & mask;
        while (bigger[i].id_plus_1 != 0) i = (i + 1) & mask;
        bigger[i] = s;
      }
      slots = std::move(bigger);
    }
  };

  // -- per-thread computed tables -------------------------------------------

  static std::uint64_t next_serial() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// The calling thread's computed table for *this* interner. A single
  /// thread-local slot caches the last (interner serial -> table) pairing,
  /// so the steady state — one interner per analysis — costs one integer
  /// compare; switching interners re-resolves through the registry mutex.
  OpCache& local_cache() {
    struct Tls {
      std::uint64_t serial = 0;
      OpCache* cache = nullptr;
    };
    static thread_local Tls tls;
    if (tls.serial != serial_) {
      tls.cache = register_thread_cache();
      tls.serial = serial_;
    }
    return *tls.cache;
  }

  OpCache* register_thread_cache() {
    const std::thread::id me = std::this_thread::get_id();
    std::lock_guard<std::mutex> lock(caches_mu_);
    for (const ThreadCache& tc : caches_)
      if (tc.tid == me) return tc.cache.get();
    caches_.push_back({me, std::make_unique<OpCache>(op_cache_entries_)});
    return caches_.back().cache.get();
  }

  FamilyId cached_apply(Op op, FamilyId a, FamilyId b) {
    OpCache* cache = op_cache_enabled() ? &local_cache() : nullptr;
    std::size_t slot = 0;
    if (cache != nullptr) {
      slot = static_cast<std::size_t>(
                 util::mix64((std::uint64_t{a} << 34) ^
                             (std::uint64_t{op} << 32) ^ std::uint64_t{b})) &
             (op_cache_entries_ - 1);
      const CacheEntry& e = cache->slots[slot];
      if (e.a == a && e.b == b && e.op == op) {
        cache->hits.fetch_add(1, std::memory_order_relaxed);
        return e.result;
      }
      cache->misses.fetch_add(1, std::memory_order_relaxed);
    }
    const ExplicitFamily& fa = family(a);
    ExplicitFamily r = op == kOpIntersect ? fa.intersect(family(b))
                       : op == kOpUnite   ? fa.unite(family(b))
                       : op == kOpSubtract
                           ? fa.subtract(family(b))
                           : fa.containing(static_cast<petri::TransitionId>(b));
    FamilyId id = intern(std::move(r));
    if (cache != nullptr) {
      CacheEntry& e = cache->slots[slot];
      if (e.a == kInvalidFamilyId)
        cache->occupied.fetch_add(1, std::memory_order_relaxed);
      else if (e.a != a || e.b != b || e.op != op)
        cache->evictions.fetch_add(1, std::memory_order_relaxed);
      e = {a, b, id, op};
    }
    return id;
  }

  std::size_t num_transitions_;
  ExplicitFamily::Context base_;
  std::uint64_t serial_;  // unique per interner instance, for the TLS lookup
  std::size_t op_cache_entries_ = 0;

  std::vector<Stripe> stripes_;
  std::unique_ptr<std::atomic<ArenaSlot*>[]> dir_;
  std::atomic<std::uint64_t> next_id_alloc_{0};  // ids handed out
  std::atomic<std::uint64_t> next_id_{0};        // ids fully published

  mutable std::mutex caches_mu_;
  std::vector<ThreadCache> caches_;
  std::atomic<bool> op_cache_enabled_{true};
  std::atomic<std::size_t> intern_calls_{0};
  std::atomic<std::size_t> families_bytes_{0};
};

// ---------------------------------------------------------------------------
// InternedFamily — the Family-interface handle over a FamilyInterner
// ---------------------------------------------------------------------------

class InternedFamily {
 public:
  /// Owns the interner all families of one analysis share. Non-copyable;
  /// families hold a pointer back to it (mirrors BddFamily::Context).
  class Context {
   public:
    explicit Context(std::size_t num_transitions,
                     std::size_t op_cache_entries = std::size_t{1} << 16)
        : interner_(std::make_unique<FamilyInterner>(num_transitions,
                                                     op_cache_entries)) {}

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] std::size_t num_transitions() const {
      return interner_->num_transitions();
    }
    [[nodiscard]] FamilyInterner& interner() const { return *interner_; }

    [[nodiscard]] InternedFamily empty() const {
      return InternedFamily(interner_.get(), kEmptyFamilyId);
    }
    [[nodiscard]] InternedFamily single(const TransitionSet& set) const {
      return InternedFamily(interner_.get(), interner_->single(set));
    }
    [[nodiscard]] InternedFamily from_sets(
        std::vector<TransitionSet> sets) const {
      return InternedFamily(interner_.get(),
                            interner_->from_sets(std::move(sets)));
    }
    [[nodiscard]] InternedFamily initial_valid_sets(
        const petri::ConflictInfo& conflicts) const {
      return InternedFamily(interner_.get(),
                            interner_->initial_valid_sets(conflicts));
    }

    /// GpoResult hook: GpnAnalyzer::explore() detects this method at compile
    /// time and surfaces the counters in GpoResult::family_stats.
    void fill_stats(GpoFamilyStats& out) const {
      FamilyInternerStats s = interner_->stats();
      out.available = true;
      out.backend = "interned";
      out.distinct_families = s.distinct_families;
      out.intern_calls = s.intern_calls;
      out.dedup_ratio = s.dedup_ratio();
      out.op_cache_hits = s.op_cache_hits;
      out.op_cache_misses = s.op_cache_misses;
      out.op_cache_hit_rate = s.op_cache_hit_rate();
      out.op_cache_evictions = s.op_cache_evictions;
      out.op_cache_occupied = s.op_cache_occupied;
      out.op_cache_capacity = s.op_cache_capacity;
      out.families_bytes = s.families_bytes;
    }

   private:
    std::unique_ptr<FamilyInterner> interner_;
  };

  /// Detached handle (no interner): only valid as a placeholder, e.g. in
  /// default-constructed GpnStates inside arena chunks.
  InternedFamily() = default;

  [[nodiscard]] InternedFamily intersect(const InternedFamily& o) const {
    return with(interner_->intersect(id_, o.id_));
  }
  [[nodiscard]] InternedFamily unite(const InternedFamily& o) const {
    return with(interner_->unite(id_, o.id_));
  }
  [[nodiscard]] InternedFamily subtract(const InternedFamily& o) const {
    return with(interner_->subtract(id_, o.id_));
  }
  [[nodiscard]] InternedFamily containing(petri::TransitionId t) const {
    return with(interner_->containing(id_, t));
  }

  [[nodiscard]] bool is_empty() const { return id_ == kEmptyFamilyId; }
  [[nodiscard]] bool contains(const TransitionSet& v) const {
    return interner_->family(id_).contains(v);
  }
  [[nodiscard]] double count() const { return interner_->family(id_).count(); }
  [[nodiscard]] std::vector<TransitionSet> members(
      std::size_t max = SIZE_MAX) const {
    return interner_->family(id_).members(max);
  }

  /// Ids are hash-consed, so mixing the id is a perfect hash; equality is id
  /// comparison (families of one analysis share one interner, as with the
  /// BDD manager).
  [[nodiscard]] std::size_t hash() const {
    return static_cast<std::size_t>(util::mix64(id_));
  }
  bool operator==(const InternedFamily& o) const { return id_ == o.id_; }

  [[nodiscard]] std::size_t universe() const {
    return interner_->num_transitions();
  }
  [[nodiscard]] FamilyId id() const { return id_; }

 private:
  friend class Context;
  InternedFamily(FamilyInterner* interner, FamilyId id)
      : interner_(interner), id_(id) {}
  [[nodiscard]] InternedFamily with(FamilyId id) const {
    return InternedFamily(interner_, id);
  }

  FamilyInterner* interner_ = nullptr;
  FamilyId id_ = kEmptyFamilyId;
};

}  // namespace gpo::core
