// Hash-consed set-family interner with a memoized operation cache.
//
// The GPO engine's states hold one family per place plus the valid-set family
// r, and successor families are small edits of their parents: across a run the
// same canonical families recur massively (r0 alone appears in every initially
// marked place of every early state). Storing each distinct family once and
// referring to it by a 32-bit FamilyId turns
//   * deep per-place copies into id copies,
//   * family equality into id comparison, and
//   * visited-set hashing into a flat pass over ids (the content hash is
//     computed once, at intern time).
// On top of the unique table sits a BDD-style computed table: a bounded,
// direct-mapped cache mapping (op, FamilyId, FamilyId) -> FamilyId for
// intersect/unite/subtract/containing, the four operations that dominate the
// multiple-firing rule. Both ideas are lifted verbatim from OBDD packages
// (see src/bdd/bdd.cpp), where they are the difference between exponential
// and near-linear behaviour.
//
// InternedFamily is the third interchangeable family representation (next to
// ExplicitFamily and BddFamily in set_family.hpp): a {interner, id} handle
// satisfying the same compile-time interface, so GpnAnalyzer<InternedFamily>
// runs on interned states — GpnState<InternedFamily> is effectively
// {vector<FamilyId> marking, FamilyId r} — with no engine changes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/gpo_result.hpp"
#include "core/set_family.hpp"
#include "util/hash.hpp"

namespace gpo::core {

/// Index of a canonical family inside a FamilyInterner's arena.
using FamilyId = std::uint32_t;

/// The empty family is interned first, so its id is fixed; emptiness tests
/// become an id comparison.
inline constexpr FamilyId kEmptyFamilyId = 0;
inline constexpr FamilyId kInvalidFamilyId = 0xFFFFFFFFu;

/// Counters the interner keeps while an analysis runs; surfaced through
/// GpoResult::family_stats and the bench_gpo_intern driver.
struct FamilyInternerStats {
  std::size_t distinct_families = 0;  ///< arena size (== peak, nothing is freed)
  std::size_t intern_calls = 0;       ///< families presented for interning
  std::size_t op_cache_hits = 0;
  std::size_t op_cache_misses = 0;
  std::size_t families_bytes = 0;  ///< payload bytes of the canonical arena

  /// Families that would have been constructed/stored without hash-consing,
  /// per family actually stored.
  [[nodiscard]] double dedup_ratio() const {
    return distinct_families == 0
               ? 0.0
               : static_cast<double>(intern_calls) /
                     static_cast<double>(distinct_families);
  }
  [[nodiscard]] double op_cache_hit_rate() const {
    std::size_t total = op_cache_hits + op_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(op_cache_hits) /
                            static_cast<double>(total);
  }
};

/// Arena-backed unique table of canonical ExplicitFamily values plus the
/// memoized family operations. Non-copyable and non-movable: ids and the
/// unique table's hasher refer back into the arena.
class FamilyInterner {
 public:
  explicit FamilyInterner(std::size_t num_transitions,
                          std::size_t op_cache_entries = std::size_t{1} << 16)
      : num_transitions_(num_transitions),
        base_(num_transitions),
        table_(16, IdHash{this}, IdEq{this}) {
    // Round the computed-table size to a power of two for mask indexing.
    std::size_t entries = 1;
    while (entries < op_cache_entries) entries <<= 1;
    op_cache_.resize(entries);
    op_cache_mask_ = entries - 1;
    (void)intern(base_.empty());  // pin kEmptyFamilyId == 0
  }

  FamilyInterner(const FamilyInterner&) = delete;
  FamilyInterner& operator=(const FamilyInterner&) = delete;

  [[nodiscard]] std::size_t num_transitions() const { return num_transitions_; }

  /// Canonicalizes `f`: returns the id of the arena family equal to it,
  /// storing it first if it is new. The content hash is computed once here
  /// and cached for the family's lifetime.
  FamilyId intern(ExplicitFamily f) {
    ++stats_.intern_calls;
    if (families_.size() > static_cast<std::size_t>(kInvalidFamilyId) - 1)
      throw std::length_error("FamilyInterner: id space exhausted");
    FamilyId cand = static_cast<FamilyId>(families_.size());
    hashes_.push_back(f.hash());
    families_.push_back(std::move(f));
    auto [it, inserted] = table_.insert(cand);
    if (!inserted) {  // already canonical: drop the duplicate
      families_.pop_back();
      hashes_.pop_back();
      return *it;
    }
    stats_.families_bytes += families_.back().memory_bytes();
    return cand;
  }

  [[nodiscard]] const ExplicitFamily& family(FamilyId id) const {
    return families_[id];
  }
  /// The content hash cached at intern time.
  [[nodiscard]] std::size_t hash_of(FamilyId id) const { return hashes_[id]; }
  [[nodiscard]] std::size_t size() const { return families_.size(); }
  [[nodiscard]] bool is_empty(FamilyId id) const {
    return id == kEmptyFamilyId;
  }

  // -- family constructors (canonicalized on entry) -------------------------

  FamilyId empty() { return kEmptyFamilyId; }
  FamilyId single(const TransitionSet& set) { return intern(base_.single(set)); }
  FamilyId from_sets(std::vector<TransitionSet> sets) {
    return intern(base_.from_sets(std::move(sets)));
  }
  FamilyId initial_valid_sets(const petri::ConflictInfo& conflicts) {
    return intern(base_.initial_valid_sets(conflicts));
  }

  // -- memoized operations --------------------------------------------------

  FamilyId intersect(FamilyId a, FamilyId b) {
    if (a == b) return a;
    if (a == kEmptyFamilyId || b == kEmptyFamilyId) return kEmptyFamilyId;
    if (a > b) std::swap(a, b);  // commutative: canonical operand order
    return cached_apply(kOpIntersect, a, b);
  }
  FamilyId unite(FamilyId a, FamilyId b) {
    if (a == b || b == kEmptyFamilyId) return a;
    if (a == kEmptyFamilyId) return b;
    if (a > b) std::swap(a, b);
    return cached_apply(kOpUnite, a, b);
  }
  FamilyId subtract(FamilyId a, FamilyId b) {
    if (b == kEmptyFamilyId) return a;
    if (a == kEmptyFamilyId || a == b) return kEmptyFamilyId;
    return cached_apply(kOpSubtract, a, b);
  }
  FamilyId containing(FamilyId a, petri::TransitionId t) {
    if (a == kEmptyFamilyId) return kEmptyFamilyId;
    return cached_apply(kOpContaining, a, static_cast<FamilyId>(t));
  }

  /// Disabling the computed table forces every operation through the plain
  /// ExplicitFamily algebra + intern(); because intern() canonicalizes, the
  /// resulting arena and id assignment are byte-identical either way — the
  /// property test relies on this.
  void set_op_cache_enabled(bool enabled) { op_cache_enabled_ = enabled; }
  [[nodiscard]] bool op_cache_enabled() const { return op_cache_enabled_; }
  [[nodiscard]] std::size_t op_cache_entries() const {
    return op_cache_.size();
  }

  [[nodiscard]] FamilyInternerStats stats() const {
    FamilyInternerStats s = stats_;
    s.distinct_families = families_.size();
    return s;
  }

 private:
  enum Op : std::uint8_t {
    kOpIntersect = 0,
    kOpUnite = 1,
    kOpSubtract = 2,
    kOpContaining = 3,
  };

  /// One computed-table slot. Direct-mapped: a colliding result simply
  /// overwrites the previous tenant (bounded memory, no eviction scans);
  /// a recomputation after overwrite re-interns to the same id.
  struct CacheEntry {
    FamilyId a = kInvalidFamilyId;  // kInvalidFamilyId marks an empty slot
    FamilyId b = 0;
    FamilyId result = 0;
    std::uint8_t op = 0;
  };

  FamilyId cached_apply(Op op, FamilyId a, FamilyId b) {
    std::size_t slot = 0;
    if (op_cache_enabled_) {
      slot = static_cast<std::size_t>(
                 util::mix64((std::uint64_t{a} << 34) ^
                             (std::uint64_t{op} << 32) ^ std::uint64_t{b})) &
             op_cache_mask_;
      const CacheEntry& e = op_cache_[slot];
      if (e.a == a && e.b == b && e.op == op) {
        ++stats_.op_cache_hits;
        return e.result;
      }
      ++stats_.op_cache_misses;
    }
    const ExplicitFamily& fa = families_[a];
    ExplicitFamily r = op == kOpIntersect ? fa.intersect(families_[b])
                       : op == kOpUnite   ? fa.unite(families_[b])
                       : op == kOpSubtract
                           ? fa.subtract(families_[b])
                           : fa.containing(static_cast<petri::TransitionId>(b));
    FamilyId id = intern(std::move(r));
    if (op_cache_enabled_) op_cache_[slot] = {a, b, id, op};
    return id;
  }

  /// Unique-table hash/equality look through the id into the arena; the
  /// hash is the one cached at intern time, never recomputed.
  struct IdHash {
    const FamilyInterner* self;
    std::size_t operator()(FamilyId id) const { return self->hashes_[id]; }
  };
  struct IdEq {
    const FamilyInterner* self;
    bool operator()(FamilyId x, FamilyId y) const {
      return self->families_[x] == self->families_[y];
    }
  };

  std::size_t num_transitions_;
  ExplicitFamily::Context base_;
  std::vector<ExplicitFamily> families_;  // arena; FamilyId indexes it
  std::vector<std::size_t> hashes_;       // content hash per arena family
  std::unordered_set<FamilyId, IdHash, IdEq> table_;
  std::vector<CacheEntry> op_cache_;
  std::size_t op_cache_mask_ = 0;
  bool op_cache_enabled_ = true;
  FamilyInternerStats stats_;
};

// ---------------------------------------------------------------------------
// InternedFamily — the Family-interface handle over a FamilyInterner
// ---------------------------------------------------------------------------

class InternedFamily {
 public:
  /// Owns the interner all families of one analysis share. Non-copyable;
  /// families hold a pointer back to it (mirrors BddFamily::Context).
  class Context {
   public:
    explicit Context(std::size_t num_transitions,
                     std::size_t op_cache_entries = std::size_t{1} << 16)
        : interner_(std::make_unique<FamilyInterner>(num_transitions,
                                                     op_cache_entries)) {}

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] std::size_t num_transitions() const {
      return interner_->num_transitions();
    }
    [[nodiscard]] FamilyInterner& interner() const { return *interner_; }

    [[nodiscard]] InternedFamily empty() const {
      return InternedFamily(interner_.get(), kEmptyFamilyId);
    }
    [[nodiscard]] InternedFamily single(const TransitionSet& set) const {
      return InternedFamily(interner_.get(), interner_->single(set));
    }
    [[nodiscard]] InternedFamily from_sets(
        std::vector<TransitionSet> sets) const {
      return InternedFamily(interner_.get(),
                            interner_->from_sets(std::move(sets)));
    }
    [[nodiscard]] InternedFamily initial_valid_sets(
        const petri::ConflictInfo& conflicts) const {
      return InternedFamily(interner_.get(),
                            interner_->initial_valid_sets(conflicts));
    }

    /// GpoResult hook: GpnAnalyzer::explore() detects this method at compile
    /// time and surfaces the counters in GpoResult::family_stats.
    void fill_stats(GpoFamilyStats& out) const {
      FamilyInternerStats s = interner_->stats();
      out.available = true;
      out.distinct_families = s.distinct_families;
      out.intern_calls = s.intern_calls;
      out.dedup_ratio = s.dedup_ratio();
      out.op_cache_hits = s.op_cache_hits;
      out.op_cache_misses = s.op_cache_misses;
      out.op_cache_hit_rate = s.op_cache_hit_rate();
      out.families_bytes = s.families_bytes;
    }

   private:
    std::unique_ptr<FamilyInterner> interner_;
  };

  [[nodiscard]] InternedFamily intersect(const InternedFamily& o) const {
    return with(interner_->intersect(id_, o.id_));
  }
  [[nodiscard]] InternedFamily unite(const InternedFamily& o) const {
    return with(interner_->unite(id_, o.id_));
  }
  [[nodiscard]] InternedFamily subtract(const InternedFamily& o) const {
    return with(interner_->subtract(id_, o.id_));
  }
  [[nodiscard]] InternedFamily containing(petri::TransitionId t) const {
    return with(interner_->containing(id_, t));
  }

  [[nodiscard]] bool is_empty() const { return id_ == kEmptyFamilyId; }
  [[nodiscard]] bool contains(const TransitionSet& v) const {
    return interner_->family(id_).contains(v);
  }
  [[nodiscard]] double count() const { return interner_->family(id_).count(); }
  [[nodiscard]] std::vector<TransitionSet> members(
      std::size_t max = SIZE_MAX) const {
    return interner_->family(id_).members(max);
  }

  /// Ids are hash-consed, so mixing the id is a perfect hash; equality is id
  /// comparison (families of one analysis share one interner, as with the
  /// BDD manager).
  [[nodiscard]] std::size_t hash() const {
    return static_cast<std::size_t>(util::mix64(id_));
  }
  bool operator==(const InternedFamily& o) const { return id_ == o.id_; }

  [[nodiscard]] std::size_t universe() const {
    return interner_->num_transitions();
  }
  [[nodiscard]] FamilyId id() const { return id_; }

 private:
  friend class Context;
  InternedFamily(FamilyInterner* interner, FamilyId id)
      : interner_(interner), id_(id) {}
  [[nodiscard]] InternedFamily with(FamilyId id) const {
    return InternedFamily(interner_, id);
  }

  FamilyInterner* interner_ = nullptr;
  FamilyId id_ = kEmptyFamilyId;
};

}  // namespace gpo::core
