#include "core/zdd_family.hpp"

#include <stdexcept>

namespace gpo::core {

ZddFamily ZddFamily::Context::single(const TransitionSet& set) const {
  if (set.size() != num_transitions_)
    throw std::invalid_argument("single: wrong universe size");
  return ZddFamily(manager_.get(), num_transitions_, manager_->single(set));
}

ZddFamily ZddFamily::Context::from_sets(
    const std::vector<TransitionSet>& sets) const {
  for (const TransitionSet& s : sets)
    if (s.size() != num_transitions_)
      throw std::invalid_argument("from_sets: wrong universe size");
  return ZddFamily(manager_.get(), num_transitions_,
                   manager_->from_sets(sets));
}

ZddFamily ZddFamily::Context::initial_valid_sets(
    const petri::ConflictInfo& conflicts) const {
  zdd::ZddManager& mgr = *manager_;
  // Start from {∅}: the product identity, and the correct r0 for a net with
  // no transitions at all.
  zdd::Ref r = zdd::kUnit;
  const auto& components = conflicts.components();
  for (std::size_t c = 0; c < components.size(); ++c) {
    zdd::Ref factor = zdd::kEmpty;
    for (const util::Bitset& mis : conflicts.maximal_independent_sets(c))
      factor = mgr.unite(factor, mgr.single(mis));
    r = mgr.product(r, factor);
  }
  return ZddFamily(manager_.get(), num_transitions_, r);
}

std::vector<TransitionSet> ZddFamily::members(std::size_t max) const {
  std::vector<TransitionSet> out;
  mgr_->enumerate(ref_, max,
                  [&](const util::Bitset& set) { out.push_back(set); });
  return out;
}

}  // namespace gpo::core
