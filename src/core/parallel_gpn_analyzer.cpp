#include "core/parallel_gpn_analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/sharded_state_set.hpp"
#include "util/stopwatch.hpp"
#include "util/task_pool.hpp"

namespace gpo::core {

namespace {

using State = ParallelGpnAnalyzer::State;
using Analyzer = GpnAnalyzer<InternedFamily>;

/// Discovery breadcrumb stored with each interned GPN state (first writer
/// wins, like the sequential engine's per-state Breadcrumb).
struct Crumb {
  std::uint64_t parent = ~std::uint64_t{0};
  bool multiple = false;
  std::vector<petri::TransitionId> fired;
};

using StateSet = util::ShardedStateSet<State, Crumb>;
using StateId = StateSet::StateId;

struct WorkItem {
  StateId id = 0;
  State state;
};

/// Per-state facts recorded at expansion time and merged into dense arrays
/// after join. Each state is expanded by exactly one job, so the
/// per-worker lists are disjoint.
struct ExpansionRecord {
  StateId id = 0;
  util::Bitset enabled;
  bool fully_expanded = false;
};

struct EdgeRecord {
  StateId from = 0, to = 0;
  util::Bitset fired;
};

// Counters and facts each worker accumulates privately, merged once at join.
// A state-expansion job runs start-to-finish on one worker (only parallel_for
// range tasks migrate), so tallies[pool.current_worker()] is never shared.
struct WorkerTally {
  std::size_t edge_count = 0;
  std::size_t multiple_steps = 0;
  std::size_t single_steps = 0;
  std::size_t expansions = 0;
  util::Bitset fireable;
  std::vector<ExpansionRecord> expanded;
  std::vector<EdgeRecord> edges;
  /// Per-state scratch for single_enabled_transitions (capacity reused).
  std::vector<petri::TransitionId> enabled_scratch;
};

// State shared by all workers for one exploration.
struct SharedSearch {
  const Analyzer& analyzer;  // pool-attached: its semantic methods fork
  const GpoOptions& options;
  util::TaskPool& pool;
  std::vector<WorkerTally>& tallies;
  StateSet set;
  util::Stopwatch timer;

  /// Discovered states not yet fully expanded (the live frontier).
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> peak_in_flight{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> limit_hit{false};
  std::atomic<bool> bailed{false};
  std::atomic<bool> dead_stop{false};  // stop_at_first_deadlock fired

  // Live-progress slots (null when telemetry is off or the hot counters were
  // compiled out) and the always-on phase timers. All relaxed atomics.
  obs::Counter* live_states = nullptr;
  obs::Gauge* live_frontier = nullptr;
  obs::Gauge* live_families = nullptr;
  obs::Timer* mcs_timer = nullptr;
  obs::Timer* family_ops_timer = nullptr;
  FamilyInterner* interner = nullptr;

  // Rarely touched "first witness" slot, hence one plain mutex.
  std::mutex first_mu;
  std::optional<std::pair<StateId, TransitionSet>> first_dead;

  SharedSearch(const Analyzer& a, const GpoOptions& o, util::TaskPool& p,
               std::vector<WorkerTally>& t, std::size_t shards)
      : analyzer(a), options(o), pool(p), tallies(t), set(shards) {}

  void note_peak(std::uint64_t current) {
    std::uint64_t prev = peak_in_flight.load(std::memory_order_relaxed);
    while (prev < current && !peak_in_flight.compare_exchange_weak(
                                prev, current, std::memory_order_relaxed)) {
    }
  }
};

void submit_state(SharedSearch& shared, WorkItem item);

/// One state expansion, run as a pool job. The intra-state parallelism lives
/// *inside* the analyzer calls below (deadlock_scenario / plan_expansion /
/// m_update fork their term and candidate loops back onto the same pool), so
/// even a 2-state graph keeps every worker busy.
void expand(SharedSearch& shared, const WorkItem& item, WorkerTally& tally) {
  const Analyzer& an = shared.analyzer;
  const State& s = item.state;

  // Deadlock check (before expansion, as in the sequential engine).
  auto scenario = [&] {
    obs::ScopedTimer ft(shared.family_ops_timer);
    return an.deadlock_scenario(s, shared.options.required_witness_place);
  }();
  if (scenario) {
    {
      std::lock_guard<std::mutex> lock(shared.first_mu);
      if (!shared.first_dead) shared.first_dead = {item.id, *scenario};
    }
    if (shared.options.stop_at_first_deadlock) {
      shared.dead_stop.store(true, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_relaxed);
      return;
    }
  }

  std::vector<petri::TransitionId>& single_enabled = tally.enabled_scratch;
  an.single_enabled_transitions(s, single_enabled);
  ExpansionRecord rec;
  rec.id = item.id;
  rec.enabled = util::Bitset(tally.fireable.size());
  for (petri::TransitionId t : single_enabled) rec.enabled.set(t);
  tally.fireable |= rec.enabled;
  if (single_enabled.empty()) {  // fully dead GPN state
    tally.expanded.push_back(std::move(rec));
    return;
  }

  Analyzer::Expansion plan = [&] {
    obs::ScopedTimer st(shared.mcs_timer);
    return an.plan_expansion(s, single_enabled);
  }();

  auto emit = [&](State&& next, util::Bitset&& fired, bool multiple,
                  const std::vector<petri::TransitionId>& batch) {
    ++tally.edge_count;
    auto [nid, fresh] =
        shared.set.insert(next, Crumb{item.id, multiple, batch});
    tally.edges.push_back({item.id, nid, std::move(fired)});
    if (!fresh) return;
    if (shared.set.size() > shared.options.max_states) {
      shared.limit_hit.store(true, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_relaxed);
      return;
    }
    if (shared.set.size() > shared.options.delegate_after_states) {
      shared.bailed.store(true, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_relaxed);
      return;
    }
    if (shared.live_states != nullptr) {
      shared.live_states->add();
      if (shared.live_families != nullptr)
        shared.live_families->set(
            static_cast<double>(shared.interner->size()));
    }
    submit_state(shared, {nid, std::move(next)});
  };

  if (plan.multiple) {
    ++tally.multiple_steps;
    util::Bitset fired(tally.fireable.size());
    for (petri::TransitionId t : plan.transitions) fired.set(t);
    State next = [&] {
      obs::ScopedTimer ft(shared.family_ops_timer);
      return an.m_update(s, plan.transitions);
    }();
    emit(std::move(next), std::move(fired), true, plan.transitions);
  } else {
    ++tally.single_steps;
    if (plan.transitions.size() == single_enabled.size())
      rec.fully_expanded = true;
    for (petri::TransitionId t : plan.transitions) {
      util::Bitset fired(tally.fireable.size());
      fired.set(t);
      State next = [&] {
        obs::ScopedTimer ft(shared.family_ops_timer);
        return an.s_update(s, t);
      }();
      emit(std::move(next), std::move(fired), false, {t});
      if (shared.stop.load(std::memory_order_relaxed)) break;
    }
  }
  tally.expanded.push_back(std::move(rec));
}

/// Enqueues one discovered state as a fire-and-forget job. The frontier
/// counter is bumped before the submit so peak_in_flight never misses a
/// live state; the job decrements it on every exit path.
void submit_state(SharedSearch& shared, WorkItem item) {
  const std::uint64_t now =
      shared.in_flight.fetch_add(1, std::memory_order_seq_cst) + 1;
  shared.note_peak(now);
  if (shared.live_frontier != nullptr)
    shared.live_frontier->set(static_cast<double>(now));
  shared.pool.submit([&shared, item = std::move(item)] {
    if (!shared.stop.load(std::memory_order_relaxed)) {
      WorkerTally& tally = shared.tallies[shared.pool.current_worker()];
      expand(shared, item, tally);
      if (util::cancel_requested(shared.options.cancel) ||
          ((++tally.expansions & 0x3f) == 0 &&
           shared.timer.elapsed_seconds() > shared.options.max_seconds)) {
        shared.limit_hit.store(true, std::memory_order_relaxed);
        shared.stop.store(true, std::memory_order_relaxed);
      }
    }
    shared.in_flight.fetch_sub(1, std::memory_order_seq_cst);
  });
}

}  // namespace

ParallelGpnAnalyzer::ParallelGpnAnalyzer(const petri::PetriNet& net,
                                         InternedFamily::Context& ctx,
                                         GpoOptions options)
    : net_(net),
      ctx_(ctx),
      options_(std::move(options)),
      analyzer_(net, ctx, options_) {}

GpoResult ParallelGpnAnalyzer::explore() const {
  const std::size_t threads = std::max<std::size_t>(1, options_.num_threads);
  std::size_t shards = options_.shard_count;
  if (shards == 0) shards = std::max<std::size_t>(16, 4 * threads);
  const std::size_t nt = net_.transition_count();

  GpoResult result;
  result.fireable_transitions = util::Bitset(nt);

  // One fork-join pool carries both granularities: every discovered state is
  // a fire-and-forget job, and the analyzer (handed the pool through
  // GpoOptions::task_pool) forks its per-transition terms, candidate checks
  // and reduction-tree levels as range tasks onto the same workers. Workers
  // prefer range tasks, so a lone expensive state still saturates the pool.
  util::TaskPool pool(threads);
  GpoOptions pooled_options = options_;
  pooled_options.task_pool = &pool;
  Analyzer pooled_analyzer(net_, ctx_, pooled_options);

  std::vector<WorkerTally> tallies(threads);
  for (WorkerTally& t : tallies) t.fireable = util::Bitset(nt);

  SharedSearch shared(pooled_analyzer, options_, pool, tallies, shards);
  shared.interner = &ctx_.interner();
  if (options_.metrics != nullptr) {
    shared.mcs_timer =
        &options_.metrics->timer(options_.metrics_prefix + "mcs_seconds");
    shared.family_ops_timer = &options_.metrics->timer(
        options_.metrics_prefix + "family_ops_seconds");
    if constexpr (obs::kHotCountersEnabled) {
      shared.live_states = &options_.metrics->counter("progress.states");
      shared.live_frontier = &options_.metrics->gauge("progress.frontier");
      shared.live_families = &options_.metrics->gauge("interner.families");
    }
  }

  {
    obs::Span span(options_.tracer, "reduced-search");
    State root = analyzer_.initial_state();
    auto [rid, fresh] = shared.set.insert(root, Crumb{});
    (void)fresh;
    if (shared.live_states != nullptr) shared.live_states->add();
    submit_state(shared, {rid, std::move(root)});
    pool.wait_all_jobs();
  }

  // All jobs drained: the set, the tallies and the witness slot are
  // quiescent; entry references are stable from here on. (The workers still
  // run — the post phases below don't use them — and the pool joins them at
  // scope exit.)
  for (std::size_t i = 0; i < tallies.size(); ++i) {
    const WorkerTally& t = tallies[i];
    result.edge_count += t.edge_count;
    result.multiple_steps += t.multiple_steps;
    result.single_steps += t.single_steps;
    result.fireable_transitions |= t.fireable;
    result.parallel.steal_count += pool.steal_count(i);
  }
  result.parallel.fork_tasks = pool.total_forks();
  result.state_count = shared.set.size();
  result.limit_hit = shared.limit_hit.load(std::memory_order_relaxed);
  if (result.limit_hit) result.interrupted_phase = "reduced-search";
  result.bailed_to_classical = shared.bailed.load(std::memory_order_relaxed);
  const bool stopped = shared.dead_stop.load(std::memory_order_relaxed);

  // Counterexample: replay the recorded dead scenario along its discovery
  // breadcrumbs, exactly like the sequential reconstruct().
  if (shared.first_dead) {
    const auto& [leaf, scenario] = *shared.first_dead;
    result.deadlock_found = true;
    const State& dead_state = shared.set.entry(leaf).state;
    petri::Marking witness = analyzer_.scenario_marking(dead_state, scenario);
    result.witness_is_dead = net_.is_deadlocked(witness);
    result.deadlock_witness = std::move(witness);

    std::vector<StateId> path;  // leaf..root(exclusive), then reversed
    for (StateId s = leaf;
         shared.set.entry(s).meta.parent != StateSet::kNoId;
         s = shared.set.entry(s).meta.parent)
      path.push_back(s);
    std::reverse(path.begin(), path.end());
    std::vector<Analyzer::ReplayStep> steps;
    steps.reserve(path.size());
    for (StateId child : path) {
      const auto& crumb = shared.set.entry(child).meta;
      steps.push_back({&shared.set.entry(crumb.parent).state, crumb.multiple,
                       crumb.fired});
    }
    result.counterexample = analyzer_.replay_scenario(steps, scenario);
  }

  if (result.bailed_to_classical && !stopped) {
    obs::Span span(options_.tracer, "delegated-search");
    analyzer_.run_delegated(
        {net_.initial_marking()},
        options_.max_seconds - shared.timer.elapsed_seconds(),
        "delegated-search", /*merge_fireable=*/true, result);
  }

  if (options_.ignoring_guard && !stopped && !result.limit_hit &&
      !result.bailed_to_classical) {
    obs::Span span(options_.tracer, "ignoring-guard");
    // Densify the sharded graph: StateId -> contiguous index, then convert
    // the per-worker expansion/edge records.
    std::unordered_map<StateId, std::size_t> dense;
    std::vector<const State*> states;
    dense.reserve(shared.set.size());
    states.reserve(shared.set.size());
    shared.set.for_each([&](StateId id, const StateSet::Entry& e) {
      dense.emplace(id, states.size());
      states.push_back(&e.state);
    });
    std::vector<util::Bitset> enabled_at(states.size(), util::Bitset(nt));
    std::vector<bool> fully_expanded(states.size(), false);
    std::vector<Analyzer::ReducedEdge> edges;
    for (const WorkerTally& t : tallies) {
      for (const ExpansionRecord& r : t.expanded) {
        std::size_t v = dense.at(r.id);
        enabled_at[v] = r.enabled;
        fully_expanded[v] = r.fully_expanded;
      }
      for (const EdgeRecord& e : t.edges)
        edges.push_back({dense.at(e.from), dense.at(e.to), e.fired});
    }
    analyzer_.apply_ignoring_guard(
        states, edges, enabled_at, fully_expanded,
        options_.max_seconds - shared.timer.elapsed_seconds(), result);
  }

  result.seconds = shared.timer.elapsed_seconds();
  ctx_.fill_stats(result.family_stats);

  result.parallel.threads = threads;
  result.parallel.shard_count = shared.set.shard_count();
  result.parallel.peak_frontier =
      static_cast<std::size_t>(shared.peak_in_flight.load());
  if (result.seconds > 0)
    result.parallel.states_per_second =
        static_cast<double>(result.state_count) / result.seconds;

  if (options_.metrics != nullptr) {
    publish_gpo_stats(*options_.metrics, options_.metrics_prefix, result);
    obs::MetricsRegistry& reg = *options_.metrics;
    const std::string p = options_.metrics_prefix;
    for (std::size_t i = 0; i < tallies.size(); ++i) {
      const std::string w = p + "worker." + std::to_string(i) + ".";
      reg.counter(w + "expansions").store(tallies[i].expansions);
      reg.counter(w + "steals").store(pool.steal_count(i));
      reg.counter(w + "edges").store(tallies[i].edge_count);
    }
    if (shared.live_families != nullptr)
      shared.live_families->set(
          static_cast<double>(result.family_stats.distinct_families));
  }
  return result;
}

}  // namespace gpo::core
