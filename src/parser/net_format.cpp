#include "parser/net_format.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "petri/builder.hpp"

namespace gpo::parser {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '[' || c == ']' || c == '-';
}

/// Splits one logical line into whitespace-separated tokens, with "->"
/// recognized as its own token; strips comments.
std::vector<std::string> tokenize(std::string_view line, std::size_t lineno) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '#' || c == ';') {
      break;
    } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
      tokens.emplace_back("->");
      i += 2;
    } else if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < line.size() && is_ident_char(line[j])) {
        // Stop before an arrow so "a->b" tokenizes as three tokens.
        if (line[j] == '-' && j + 1 < line.size() && line[j + 1] == '>') break;
        ++j;
      }
      tokens.emplace_back(line.substr(i, j - i));
      i = j;
    } else {
      throw ParseError(lineno,
                       std::string("unexpected character '") + c + "'");
    }
  }
  return tokens;
}

}  // namespace

petri::PetriNet parse_net(std::string_view text) {
  petri::NetBuilder builder;
  bool named = false;

  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;

    std::vector<std::string> tok = tokenize(line, lineno);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];

    if (kw == "net") {
      if (tok.size() != 2) throw ParseError(lineno, "expected: net <name>");
      if (named) throw ParseError(lineno, "duplicate 'net' declaration");
      builder = petri::NetBuilder(tok[1]);
      named = true;
    } else if (kw == "place") {
      if (tok.size() != 2 && !(tok.size() == 3 && tok[2] == "marked"))
        throw ParseError(lineno, "expected: place <name> [marked]");
      builder.add_place(tok[1], tok.size() == 3);
    } else if (kw == "trans") {
      if (tok.size() != 2) throw ParseError(lineno, "expected: trans <name>");
      builder.add_transition(tok[1]);
    } else if (kw == "arc") {
      if (tok.size() != 4 || tok[2] != "->")
        throw ParseError(lineno, "expected: arc <from> -> <to>");
      const std::string& from = tok[1];
      const std::string& to = tok[3];
      bool from_place = builder.has_place(from);
      bool from_trans = builder.has_transition(from);
      bool to_place = builder.has_place(to);
      bool to_trans = builder.has_transition(to);
      if (from_place && to_trans) {
        builder.add_input_arc(builder.place_id(from),
                              builder.transition_id(to));
      } else if (from_trans && to_place) {
        builder.add_output_arc(builder.transition_id(from),
                               builder.place_id(to));
      } else if (!from_place && !from_trans) {
        throw ParseError(lineno, "undeclared arc source '" + from + "'");
      } else if (!to_place && !to_trans) {
        throw ParseError(lineno, "undeclared arc target '" + to + "'");
      } else {
        throw ParseError(lineno,
                         "arc must connect a place and a transition: '" +
                             from + " -> " + to + "'");
      }
    } else {
      throw ParseError(lineno, "unknown keyword '" + kw + "'");
    }
  }
  return builder.build();
}

petri::PetriNet parse_net_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open net file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_net(ss.str());
}

void write_net(std::ostream& os, const petri::PetriNet& net) {
  os << "net " << net.name() << "\n";
  for (petri::PlaceId p = 0; p < net.place_count(); ++p) {
    os << "place " << net.place(p).name;
    if (net.initial_marking().test(p)) os << " marked";
    os << "\n";
  }
  for (petri::TransitionId t = 0; t < net.transition_count(); ++t)
    os << "trans " << net.transition(t).name << "\n";
  for (petri::TransitionId t = 0; t < net.transition_count(); ++t) {
    const auto& tr = net.transition(t);
    for (petri::PlaceId p : tr.pre)
      os << "arc " << net.place(p).name << " -> " << tr.name << "\n";
    for (petri::PlaceId p : tr.post)
      os << "arc " << tr.name << " -> " << net.place(p).name << "\n";
  }
}

std::string net_to_string(const petri::PetriNet& net) {
  std::ostringstream ss;
  write_net(ss, net);
  return ss.str();
}

}  // namespace gpo::parser
