// Reader/writer for a practical subset of PNML (the ISO/IEC 15909-2 Petri
// Net Markup Language) covering place/transition nets: <place> with
// <initialMarking>, <transition>, <arc>, nested <page> elements, and
// <name><text> labels. This is the interchange format of mainstream Petri
// net tools (TINA, LoLA, WoPeD, PIPE), so nets can move between them and
// this library. The XML reader underneath is deliberately minimal —
// elements, attributes, text and comments; no DTD/entities beyond the five
// predefined ones.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "parser/net_format.hpp"  // ParseError
#include "petri/net.hpp"

namespace gpo::parser {

/// Parses the first <net> of a PNML document. Arc multiplicities other than
/// one and marking counts above one are rejected (safe nets only). Throws
/// ParseError on malformed XML or unsupported constructs.
[[nodiscard]] petri::PetriNet parse_pnml(std::string_view text);

[[nodiscard]] petri::PetriNet parse_pnml_file(const std::string& path);

/// Serializes `net` as a single-page PNML place/transition net.
void write_pnml(std::ostream& os, const petri::PetriNet& net);

[[nodiscard]] std::string pnml_to_string(const petri::PetriNet& net);

}  // namespace gpo::parser
