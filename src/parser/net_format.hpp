// Reader/writer for a small line-oriented Petri net description language.
//
//   # comment (also ';' comments)
//   net  <name>
//   place <name> [marked]
//   trans <name>
//   arc  <from> -> <to>        one endpoint a place, the other a transition
//
// Identifiers match [A-Za-z_][A-Za-z0-9_.\[\]-]*. Declarations may appear in
// any order as long as an arc's endpoints are already declared. The writer
// produces text that parses back to a structurally identical net
// (round-trip property is unit-tested).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "petri/net.hpp"

namespace gpo::parser {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a net from text. Throws ParseError on malformed input and
/// petri::NetError on structurally invalid nets.
[[nodiscard]] petri::PetriNet parse_net(std::string_view text);

/// Parses a net from a file; throws std::runtime_error if unreadable.
[[nodiscard]] petri::PetriNet parse_net_file(const std::string& path);

/// Serializes `net` in the format above.
void write_net(std::ostream& os, const petri::PetriNet& net);

[[nodiscard]] std::string net_to_string(const petri::PetriNet& net);

}  // namespace gpo::parser
