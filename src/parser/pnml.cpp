#include "parser/pnml.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "petri/builder.hpp"

namespace gpo::parser {

namespace {

// ---------------------------------------------------------------------------
// Minimal XML reader: elements, attributes, text, comments, declarations.
// ---------------------------------------------------------------------------

struct XmlNode {
  std::string name;  // local name, namespace prefix stripped
  std::size_t line = 0;  // 1-based input line of the opening '<'
  std::map<std::string, std::string> attrs;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  // concatenated character data
};

class XmlReader {
 public:
  explicit XmlReader(std::string_view text) : text_(text) {}

  std::unique_ptr<XmlNode> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    throw ParseError(line, "PNML/XML: " + message);
  }

  bool starts_with(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (starts_with("<?")) {
        std::size_t end = text_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated declaration");
        pos_ = end + 2;
      } else if (starts_with("<!--")) {
        std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (starts_with("<!")) {  // DOCTYPE etc.
        std::size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) fail("unterminated <!...>");
        pos_ = end + 1;
      } else {
        break;
      }
    }
  }

  std::string read_name() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == ':'))
      ++pos_;
    if (pos_ == start) fail("expected a name");
    std::string name(text_.substr(start, pos_ - start));
    // Strip any namespace prefix.
    if (auto colon = name.rfind(':'); colon != std::string::npos)
      name = name.substr(colon + 1);
    return name;
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "amp") out += '&';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else fail("unsupported entity &" + std::string(entity) + ";");
      i = semi + 1;
    }
    return out;
  }

  std::unique_ptr<XmlNode> parse_element() {
    if (!starts_with("<")) fail("expected an element");
    auto node = std::make_unique<XmlNode>();
    node->line = line_at(pos_);
    ++pos_;
    node->name = read_name();
    // Attributes.
    while (true) {
      skip_ws();
      if (starts_with("/>")) {
        pos_ += 2;
        return node;
      }
      if (starts_with(">")) {
        ++pos_;
        break;
      }
      std::string attr = read_name();
      skip_ws();
      if (!starts_with("=")) fail("expected '=' after attribute name");
      ++pos_;
      skip_ws();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\''))
        fail("expected quoted attribute value");
      char quote = text_[pos_++];
      std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) fail("unterminated attribute value");
      node->attrs[attr] = decode_entities(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // Content until the matching close tag.
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated element <" + node->name + ">");
      if (starts_with("</")) {
        pos_ += 2;
        std::string close = read_name();
        if (close != node->name)
          fail("mismatched close tag </" + close + "> for <" + node->name +
               ">");
        skip_ws();
        if (!starts_with(">")) fail("malformed close tag");
        ++pos_;
        return node;
      }
      if (starts_with("<!--")) {
        std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (starts_with("<")) {
        node->children.push_back(parse_element());
      } else {
        std::size_t end = text_.find('<', pos_);
        if (end == std::string_view::npos) end = text_.size();
        node->text += decode_entities(text_.substr(pos_, end - pos_));
        pos_ = end;
      }
    }
  }

  /// Line of `pos`, tracked incrementally: element starts are visited in
  /// increasing position order, so one forward cursor suffices (fail() still
  /// scans from the front — it runs once, on the way out).
  std::size_t line_at(std::size_t pos) {
    for (; line_cursor_ < pos && line_cursor_ < text_.size(); ++line_cursor_)
      if (text_[line_cursor_] == '\n') ++line_;
    return line_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_cursor_ = 0;
};

// ---------------------------------------------------------------------------
// PNML interpretation
// ---------------------------------------------------------------------------

const XmlNode* find_child(const XmlNode& node, std::string_view name) {
  for (const auto& c : node.children)
    if (c->name == name) return c.get();
  return nullptr;
}

std::string trimmed(std::string s) {
  auto issp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && issp(s.front())) s.erase(s.begin());
  while (!s.empty() && issp(s.back())) s.pop_back();
  return s;
}

/// <name><text>label</text></name> -> label, else fallback.
std::string label_of(const XmlNode& node, const std::string& fallback) {
  if (const XmlNode* name = find_child(node, "name"))
    if (const XmlNode* text = find_child(*name, "text")) {
      std::string t = trimmed(text->text);
      if (!t.empty()) return t;
    }
  return fallback;
}

/// Strict decimal integer (optional sign, digits, nothing else). stoi alone
/// would accept "1x" by prefix and let "abc" escape as std::invalid_argument
/// instead of a diagnosable ParseError.
int parse_int_strict(const std::string& t, std::size_t line,
                     const std::string& what) {
  std::size_t first = (t[0] == '-' || t[0] == '+') ? 1 : 0;
  bool digits = first < t.size();
  for (std::size_t i = first; i < t.size(); ++i)
    digits = digits && std::isdigit(static_cast<unsigned char>(t[i])) != 0;
  if (!digits)
    throw ParseError(line, "PNML: malformed " + what + " '" + t +
                               "' (expected an integer)");
  try {
    return std::stoi(t);
  } catch (const std::exception&) {
    throw ParseError(line, "PNML: " + what + " '" + t + "' out of range");
  }
}

int int_label(const XmlNode& node, std::string_view child, int fallback,
              const std::string& what) {
  const XmlNode* c = find_child(node, child);
  if (c == nullptr) return fallback;
  std::string t;
  if (const XmlNode* text = find_child(*c, "text"))
    t = trimmed(text->text);
  else
    t = trimmed(c->text);
  if (t.empty()) return fallback;
  return parse_int_strict(t, c->line, what);
}

struct PnmlArc {
  std::string source;
  std::string target;
  int weight;
  std::size_t line;  // of the <arc> element, for diagnostics
};

void collect(const XmlNode& scope, std::vector<const XmlNode*>& places,
             std::vector<const XmlNode*>& transitions,
             std::vector<PnmlArc>& arcs) {
  for (const auto& c : scope.children) {
    if (c->name == "page") {
      collect(*c, places, transitions, arcs);
    } else if (c->name == "place") {
      places.push_back(c.get());
    } else if (c->name == "transition") {
      transitions.push_back(c.get());
    } else if (c->name == "arc") {
      auto src = c->attrs.find("source");
      auto dst = c->attrs.find("target");
      if (src == c->attrs.end() || dst == c->attrs.end())
        throw ParseError(c->line, "PNML: arc without source/target");
      arcs.push_back({src->second, dst->second,
                      int_label(*c, "inscription", 1,
                                "arc weight (inscription)"),
                      c->line});
    }
  }
}

}  // namespace

petri::PetriNet parse_pnml(std::string_view text) {
  XmlReader reader(text);
  auto root = reader.parse_document();
  const XmlNode* pnml = root->name == "pnml" ? root.get() : nullptr;
  if (pnml == nullptr) throw ParseError(1, "PNML: root element is not <pnml>");
  const XmlNode* net_node = find_child(*pnml, "net");
  if (net_node == nullptr) throw ParseError(1, "PNML: no <net> element");

  std::vector<const XmlNode*> places, transitions;
  std::vector<PnmlArc> arcs;
  collect(*net_node, places, transitions, arcs);

  std::string net_name = "pnml_net";
  if (auto it = net_node->attrs.find("id"); it != net_node->attrs.end())
    net_name = it->second;
  petri::NetBuilder builder(label_of(*net_node, net_name));

  std::map<std::string, petri::PlaceId> place_by_id;
  std::map<std::string, petri::TransitionId> transition_by_id;
  for (const XmlNode* p : places) {
    auto it = p->attrs.find("id");
    if (it == p->attrs.end())
      throw ParseError(p->line, "PNML: place without id");
    int marking = int_label(*p, "initialMarking", 0, "initial marking");
    if (marking < 0 || marking > 1)
      throw ParseError(p->line, "PNML: non-safe initial marking " +
                                    std::to_string(marking) + " on " +
                                    it->second);
    place_by_id[it->second] =
        builder.add_place(label_of(*p, it->second), marking == 1);
  }
  for (const XmlNode* t : transitions) {
    auto it = t->attrs.find("id");
    if (it == t->attrs.end())
      throw ParseError(t->line, "PNML: transition without id");
    transition_by_id[it->second] =
        builder.add_transition(label_of(*t, it->second));
  }
  for (const PnmlArc& a : arcs) {
    if (a.weight != 1)
      throw ParseError(a.line, "PNML: arc weight " +
                                   std::to_string(a.weight) + " on " +
                                   a.source + " -> " + a.target +
                                   " (only weight-1 arcs are supported on "
                                   "1-safe nets)");
    bool src_place = place_by_id.contains(a.source);
    bool dst_place = place_by_id.contains(a.target);
    if (src_place && transition_by_id.contains(a.target)) {
      builder.add_input_arc(place_by_id[a.source],
                            transition_by_id[a.target]);
    } else if (transition_by_id.contains(a.source) && dst_place) {
      builder.add_output_arc(transition_by_id[a.source],
                             place_by_id[a.target]);
    } else {
      throw ParseError(a.line,
                       "PNML: arc between unknown or same-kind nodes: " +
                           a.source + " -> " + a.target);
    }
  }
  return builder.build();
}

petri::PetriNet parse_pnml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open PNML file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_pnml(ss.str());
}

namespace {
std::string xml_escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}
}  // namespace

void write_pnml(std::ostream& os, const petri::PetriNet& net) {
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<pnml xmlns=\"http://www.pnml.org/version-2009/grammar/pnml\">\n"
     << "  <net id=\"" << xml_escape(net.name())
     << "\" type=\"http://www.pnml.org/version-2009/grammar/ptnet\">\n"
     << "    <name><text>" << xml_escape(net.name()) << "</text></name>\n"
     << "    <page id=\"page0\">\n";
  for (petri::PlaceId p = 0; p < net.place_count(); ++p) {
    os << "      <place id=\"p" << p << "\">\n"
       << "        <name><text>" << xml_escape(net.place(p).name)
       << "</text></name>\n";
    if (net.initial_marking().test(p))
      os << "        <initialMarking><text>1</text></initialMarking>\n";
    os << "      </place>\n";
  }
  for (petri::TransitionId t = 0; t < net.transition_count(); ++t) {
    os << "      <transition id=\"t" << t << "\">\n"
       << "        <name><text>" << xml_escape(net.transition(t).name)
       << "</text></name>\n"
       << "      </transition>\n";
  }
  std::size_t arc = 0;
  for (petri::TransitionId t = 0; t < net.transition_count(); ++t) {
    for (petri::PlaceId p : net.transition(t).pre)
      os << "      <arc id=\"a" << arc++ << "\" source=\"p" << p
         << "\" target=\"t" << t << "\"/>\n";
    for (petri::PlaceId p : net.transition(t).post)
      os << "      <arc id=\"a" << arc++ << "\" source=\"t" << t
         << "\" target=\"p" << p << "\"/>\n";
  }
  os << "    </page>\n  </net>\n</pnml>\n";
}

std::string pnml_to_string(const petri::PetriNet& net) {
  std::ostringstream ss;
  write_pnml(ss, net);
  return ss.str();
}

}  // namespace gpo::parser
