#include "reduce/reduce.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <map>
#include <tuple>
#include <utility>

#include "petri/builder.hpp"

namespace gpo::reduce {

namespace {

using petri::NetBuilder;
using petri::PetriNet;
using petri::PlaceId;
using petri::TransitionId;

/// A place that is unmarked and whose every producer needs it marked to fire
/// (a singleton siphon): no token can ever appear in it.
bool unmarkable(const PetriNet& net, PlaceId p) {
  if (net.initial_marking().test(p)) return false;
  for (TransitionId t : net.place(p).pre)
    if (!net.transition(t).pre_bits.test(p)) return false;
  return true;
}

struct PassOutcome {
  PetriNet net;
  RewriteRecord record;
  std::size_t applications = 0;
};

/// Rebuilds `net` keeping the places with keep_place[p] and the transitions
/// with keep_transition[t] (arcs to dropped places are dropped with them).
/// Surviving transitions expand to themselves.
PassOutcome rebuild(const PetriNet& net, const std::string& pass,
                    const std::vector<bool>& keep_place,
                    const std::vector<bool>& keep_transition,
                    std::size_t applications) {
  NetBuilder b(std::string(net.name()));
  std::vector<PlaceId> place_map(net.place_count(), petri::kInvalidPlace);
  for (PlaceId p = 0; p < net.place_count(); ++p)
    if (keep_place[p])
      place_map[p] =
          b.add_place(net.place(p).name, net.initial_marking().test(p));
  RewriteRecord record;
  record.pass = pass;
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    if (!keep_transition[t]) continue;
    TransitionId nt = b.add_transition(net.transition(t).name);
    for (PlaceId p : net.transition(t).pre)
      if (keep_place[p]) b.add_input_arc(place_map[p], nt);
    for (PlaceId p : net.transition(t).post)
      if (keep_place[p]) b.add_output_arc(nt, place_map[p]);
    record.transition_expansion.push_back({t});
  }
  // Earlier passes may already have emptied a preset (constant-place
  // removal); the original net was validated on entry.
  return {b.build(/*allow_empty_presets=*/true), std::move(record),
          applications};
}

/// Dead-transition removal: a transition with an unmarkable input place never
/// fires; removing it leaves the reachability graph untouched.
std::optional<PassOutcome> pass_dead_transitions(const PetriNet& net) {
  std::vector<bool> dead_place(net.place_count());
  for (PlaceId p = 0; p < net.place_count(); ++p)
    dead_place[p] = unmarkable(net, p);
  std::vector<bool> keep_t(net.transition_count(), true);
  std::size_t removed = 0;
  for (TransitionId t = 0; t < net.transition_count(); ++t)
    for (PlaceId p : net.transition(t).pre)
      if (dead_place[p]) {
        keep_t[t] = false;
        ++removed;
        break;
      }
  if (removed == 0) return std::nullopt;
  std::vector<bool> keep_p(net.place_count(), true);
  return rebuild(net, "dead-transitions", keep_p, keep_t, removed);
}

/// Dead-place removal: a place nothing consumes (a sink) never constrains
/// enabling; projecting it away preserves deadlocks exactly.
std::optional<PassOutcome> pass_dead_places(const PetriNet& net) {
  std::vector<bool> keep_p(net.place_count(), true);
  std::size_t removed = 0;
  for (PlaceId p = 0; p < net.place_count(); ++p)
    if (net.place(p).post.empty()) {
      keep_p[p] = false;
      ++removed;
    }
  if (removed == 0) return std::nullopt;
  std::vector<bool> keep_t(net.transition_count(), true);
  return rebuild(net, "dead-places", keep_p, keep_t, removed);
}

/// Constant-place removal: a marked place whose every adjacent transition is
/// a pure self-loop on it stays marked forever and never blocks anything.
std::optional<PassOutcome> pass_constant_places(const PetriNet& net) {
  std::vector<bool> keep_p(net.place_count(), true);
  std::size_t removed = 0;
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    if (!net.initial_marking().test(p)) continue;
    const petri::Place& place = net.place(p);
    if (place.pre.empty() && place.post.empty()) continue;  // dead-places pass
    bool constant = true;
    for (TransitionId t : place.pre)
      if (!net.transition(t).pre_bits.test(p)) constant = false;
    for (TransitionId t : place.post)
      if (!net.transition(t).post_bits.test(p)) constant = false;
    if (constant) {
      keep_p[p] = false;
      ++removed;
    }
  }
  if (removed == 0) return std::nullopt;
  std::vector<bool> keep_t(net.transition_count(), true);
  return rebuild(net, "constant-places", keep_p, keep_t, removed);
}

/// Duplicate-transition fusion: identical preset + postset means identical
/// enabling and identical successor markings; keep the first.
std::optional<PassOutcome> pass_dup_transitions(const PetriNet& net) {
  std::map<std::pair<std::vector<PlaceId>, std::vector<PlaceId>>, TransitionId>
      seen;
  std::vector<bool> keep_t(net.transition_count(), true);
  std::size_t removed = 0;
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    auto key = std::make_pair(net.transition(t).pre, net.transition(t).post);
    if (!seen.emplace(std::move(key), t).second) {
      keep_t[t] = false;
      ++removed;
    }
  }
  if (removed == 0) return std::nullopt;
  std::vector<bool> keep_p(net.place_count(), true);
  return rebuild(net, "dup-transitions", keep_p, keep_t, removed);
}

/// Duplicate-place fusion: identical producer set, consumer set and initial
/// marking keep two places' contents equal forever; one carries the
/// constraint.
std::optional<PassOutcome> pass_dup_places(const PetriNet& net) {
  std::map<std::tuple<bool, std::vector<TransitionId>,
                      std::vector<TransitionId>>,
           PlaceId>
      seen;
  std::vector<bool> keep_p(net.place_count(), true);
  std::size_t removed = 0;
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    auto key = std::make_tuple(net.initial_marking().test(p), net.place(p).pre,
                               net.place(p).post);
    if (!seen.emplace(std::move(key), p).second) {
      keep_p[p] = false;
      ++removed;
    }
  }
  if (removed == 0) return std::nullopt;
  std::vector<bool> keep_t(net.transition_count(), true);
  return rebuild(net, "dup-places", keep_p, keep_t, removed);
}

/// Agglomeration (sequence collapse). Side conditions, all on the current
/// net (see reduce.hpp for the soundness argument):
///   p unmarked; producers F and consumers H nonempty and disjoint;
///   every f in F has post(f) = {p}; every h in H has pre(h) = {p};
///   every output place of every h has h as its only producer;
///   |F|*|H| <= |F|+|H| (no transition blowup).
/// Disjoint candidates (by the transitions they touch) are applied in one
/// sweep; each fused transition (f, h) expands to the sequence [f, h].
std::optional<PassOutcome> pass_agglomeration(const PetriNet& net) {
  std::vector<bool> claimed(net.transition_count());
  std::vector<PlaceId> chosen;
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    if (net.initial_marking().test(p)) continue;
    const std::vector<TransitionId>& producers = net.place(p).pre;
    const std::vector<TransitionId>& consumers = net.place(p).post;
    if (producers.empty() || consumers.empty()) continue;
    if (producers.size() * consumers.size() >
        producers.size() + consumers.size())
      continue;
    // Both vectors are sorted; any shared transition is a self-loop on p.
    std::vector<TransitionId> overlap;
    std::set_intersection(producers.begin(), producers.end(),
                          consumers.begin(), consumers.end(),
                          std::back_inserter(overlap));
    if (!overlap.empty()) continue;
    bool ok = true;
    for (TransitionId f : producers) {
      if (claimed[f] || net.transition(f).post != std::vector<PlaceId>{p})
        ok = false;
    }
    for (TransitionId h : consumers) {
      if (claimed[h] || net.transition(h).pre != std::vector<PlaceId>{p}) {
        ok = false;
        continue;
      }
      for (PlaceId q : net.transition(h).post)
        if (net.place(q).pre != std::vector<TransitionId>{h}) ok = false;
    }
    if (!ok) continue;
    for (TransitionId f : producers) claimed[f] = true;
    for (TransitionId h : consumers) claimed[h] = true;
    chosen.push_back(p);
  }
  if (chosen.empty()) return std::nullopt;

  std::vector<bool> drop_place(net.place_count());
  for (PlaceId p : chosen) drop_place[p] = true;
  NetBuilder b(std::string(net.name()));
  std::vector<PlaceId> place_map(net.place_count(), petri::kInvalidPlace);
  for (PlaceId p = 0; p < net.place_count(); ++p)
    if (!drop_place[p])
      place_map[p] =
          b.add_place(net.place(p).name, net.initial_marking().test(p));
  RewriteRecord record;
  record.pass = "agglomeration";
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    if (claimed[t]) continue;
    TransitionId nt = b.add_transition(net.transition(t).name);
    for (PlaceId p : net.transition(t).pre)
      b.add_input_arc(place_map[p], nt);
    for (PlaceId p : net.transition(t).post)
      b.add_output_arc(nt, place_map[p]);
    record.transition_expansion.push_back({t});
  }
  for (PlaceId p : chosen) {
    for (TransitionId f : net.place(p).pre) {
      for (TransitionId h : net.place(p).post) {
        std::string name =
            net.transition(f).name + "." + net.transition(h).name;
        while (b.has_transition(name)) name += "'";
        TransitionId nt = b.add_transition(name);
        for (PlaceId q : net.transition(f).pre)
          b.add_input_arc(place_map[q], nt);
        for (PlaceId q : net.transition(h).post)
          b.add_output_arc(nt, place_map[q]);
        record.transition_expansion.push_back({f, h});
      }
    }
  }
  return PassOutcome{b.build(/*allow_empty_presets=*/true), std::move(record),
                     chosen.size()};
}

struct Pass {
  const char* name;
  std::optional<PassOutcome> (*fn)(const PetriNet&);
  ReduceLevel min_level;
};

constexpr Pass kPasses[] = {
    {"dead-transitions", pass_dead_transitions, ReduceLevel::kSafe},
    {"dead-places", pass_dead_places, ReduceLevel::kSafe},
    {"constant-places", pass_constant_places, ReduceLevel::kSafe},
    {"dup-transitions", pass_dup_transitions, ReduceLevel::kSafe},
    {"dup-places", pass_dup_places, ReduceLevel::kSafe},
    {"agglomeration", pass_agglomeration, ReduceLevel::kAggressive},
};

}  // namespace

const char* reduce_level_name(ReduceLevel level) {
  switch (level) {
    case ReduceLevel::kOff:
      return "off";
    case ReduceLevel::kSafe:
      return "safe";
    case ReduceLevel::kAggressive:
      return "aggressive";
  }
  return "off";
}

std::optional<ReduceLevel> parse_reduce_level(std::string_view name) {
  if (name == "off") return ReduceLevel::kOff;
  if (name == "safe") return ReduceLevel::kSafe;
  if (name == "aggressive") return ReduceLevel::kAggressive;
  return std::nullopt;
}

std::vector<petri::TransitionId> ReductionCertificate::map_to_original(
    const std::vector<petri::TransitionId>& trace) const {
  std::vector<petri::TransitionId> current = trace;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    std::vector<petri::TransitionId> parent;
    parent.reserve(current.size());
    for (petri::TransitionId t : current) {
      const std::vector<petri::TransitionId>& exp =
          it->transition_expansion.at(t);
      parent.insert(parent.end(), exp.begin(), exp.end());
    }
    current = std::move(parent);
  }
  return current;
}

std::optional<petri::Marking> replay_trace(
    const petri::PetriNet& net,
    const std::vector<petri::TransitionId>& trace) {
  petri::Marking m = net.initial_marking();
  for (petri::TransitionId t : trace) {
    if (t >= net.transition_count() || !net.enabled(t, m))
      return std::nullopt;
    bool unsafe = false;
    m = net.fire(t, m, &unsafe);
    if (unsafe) return std::nullopt;
  }
  return m;
}

obs::RunReport::ReductionRun to_report_run(const ReductionStats& stats) {
  obs::RunReport::ReductionRun run;
  run.level = reduce_level_name(stats.level);
  run.places_before = static_cast<long long>(stats.places_before);
  run.places_after = static_cast<long long>(stats.places_after);
  run.transitions_before = static_cast<long long>(stats.transitions_before);
  run.transitions_after = static_cast<long long>(stats.transitions_after);
  run.seconds = stats.seconds;
  for (const PassCount& pc : stats.pass_counts)
    run.passes.emplace_back(pc.pass,
                            static_cast<long long>(pc.applications));
  return run;
}

ReductionResult reduce_net(const petri::PetriNet& net,
                           const ReduceOptions& options) {
  auto start = std::chrono::steady_clock::now();
  ReductionResult out{net, {}, {}};
  out.stats.level = options.level;
  out.stats.places_before = net.place_count();
  out.stats.transitions_before = net.transition_count();

  std::vector<std::size_t> applications(std::size(kPasses), 0);
  if (options.level != ReduceLevel::kOff) {
    for (std::size_t sweep = 0; sweep < options.max_iterations; ++sweep) {
      bool any = false;
      for (std::size_t i = 0; i < std::size(kPasses); ++i) {
        const Pass& pass = kPasses[i];
        if (pass.min_level == ReduceLevel::kAggressive &&
            options.level != ReduceLevel::kAggressive)
          continue;
        obs::Span span(options.tracer,
                       std::string("reduce.") + pass.name);
        std::optional<PassOutcome> outcome = pass.fn(out.net);
        if (!outcome) continue;
        out.net = std::move(outcome->net);
        out.certificate.append(std::move(outcome->record));
        applications[i] += outcome->applications;
        any = true;
      }
      ++out.stats.iterations;
      if (!any) break;
    }
  }

  out.stats.places_after = out.net.place_count();
  out.stats.transitions_after = out.net.transition_count();
  for (std::size_t i = 0; i < std::size(kPasses); ++i)
    if (applications[i] > 0)
      out.stats.pass_counts.push_back({kPasses[i].name, applications[i]});
  out.stats.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    const std::string& p = options.metrics_prefix;
    reg.counter(p + "places_before").store(out.stats.places_before);
    reg.counter(p + "places_after").store(out.stats.places_after);
    reg.counter(p + "transitions_before").store(out.stats.transitions_before);
    reg.counter(p + "transitions_after").store(out.stats.transitions_after);
    reg.counter(p + "iterations").store(out.stats.iterations);
    for (const PassCount& pc : out.stats.pass_counts)
      reg.counter(p + "pass." + pc.pass + ".applications")
          .store(pc.applications);
    reg.timer(p + "seconds")
        .record_ns(static_cast<std::uint64_t>(out.stats.seconds * 1e9));
  }
  return out;
}

}  // namespace gpo::reduce
