// Structural net-reduction preprocessing: shrink a safe Petri net before any
// engine runs on it, preserving the deadlock verdict and keeping enough
// information to map counterexamples back to the original net.
//
// The pipeline (the polyhedral-reduction line of Amat et al., restricted to
// the side conditions that are sound for 1-safe deadlock checking):
//
//   * dead-transition removal   — a transition with an unmarkable input place
//     (unmarked, and every producer needs the place marked to fire: the
//     singleton-siphon argument) can never fire; dropping it leaves the
//     reachability graph untouched.
//   * dead-place removal        — a place no transition consumes (a sink)
//     never constrains enabling; projecting it away is a bisimulation with
//     respect to the enabling relation, so deadlocks are preserved exactly.
//   * constant-place removal    — a marked place where every adjacent
//     transition is a pure self-loop (consumes and reproduces it) is
//     invariantly marked and never blocks anything.
//   * duplicate-transition fusion — transitions with identical presets and
//     postsets are enabled together and fire to the same marking; one
//     representative suffices.
//   * duplicate-place fusion    — places with identical producer sets,
//     consumer sets and initial marking hold equal markings forever; one
//     representative carries the constraint.
//   * agglomeration (aggressive only) — a 1-safe sequence collapse: an
//     unmarked place p whose producers have p as their sole output, whose
//     consumers have p as their sole input, and whose consumers' outputs
//     have no other producer, forces a strict f;h sequencing. Each (f, h)
//     pair fuses into one transition (pre(f) -> post(h)). Any reachable
//     marking with p marked has its consumer enabled (pre = {p}), so no
//     deadlock is lost; a firing of the fused transition expands to [f, h]
//     on the parent net.
//
// Every applied pass appends an invertible RewriteRecord to a
// ReductionCertificate: a verdict on the reduced net is a verdict on the
// original, and a counterexample firing sequence on the reduced net maps
// step-by-step (agglomerated transitions expand to their constituent
// sequences) to a firing sequence that replays on the ORIGINAL net — replay
// is the acceptance oracle, same as the engines' own witnesses.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "petri/net.hpp"

namespace gpo::reduce {

/// How hard to reduce. `kSafe` runs only the passes whose soundness needs no
/// sequencing argument (removal/fusion of redundant structure); `kAggressive`
/// adds agglomeration, which collapses sequential transition chains.
enum class ReduceLevel {
  kOff,
  kSafe,
  kAggressive,
};

[[nodiscard]] const char* reduce_level_name(ReduceLevel level);

/// Parses "off" | "safe" | "aggressive"; nullopt on anything else.
[[nodiscard]] std::optional<ReduceLevel> parse_reduce_level(
    std::string_view name);

/// One pass application, recorded in net-rewrite order. For every transition
/// id of the post-pass net, `transition_expansion[t]` is the firing sequence
/// of the PRE-pass net that one firing of t corresponds to (a singleton for
/// surviving transitions, [f, h] for an agglomerated pair).
struct RewriteRecord {
  std::string pass;
  std::vector<std::vector<petri::TransitionId>> transition_expansion;
};

/// The invertible rewrite trail of one reduction. Mapping a reduced-net
/// firing sequence through the records in reverse yields a firing sequence
/// of the original net.
class ReductionCertificate {
 public:
  void append(RewriteRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<RewriteRecord>& records() const {
    return records_;
  }

  /// Expands a firing sequence of the reduced net into one of the original
  /// net by unwinding every rewrite record, newest first.
  [[nodiscard]] std::vector<petri::TransitionId> map_to_original(
      const std::vector<petri::TransitionId>& trace) const;

 private:
  std::vector<RewriteRecord> records_;
};

/// Fires `trace` from the initial marking of `net`. Returns the final
/// marking, or nullopt if some step is disabled (or violates 1-safeness) —
/// the certificate acceptance oracle: a mapped deadlock counterexample must
/// replay and end in a marking where net.is_deadlocked() holds.
[[nodiscard]] std::optional<petri::Marking> replay_trace(
    const petri::PetriNet& net,
    const std::vector<petri::TransitionId>& trace);

struct PassCount {
  std::string pass;
  std::size_t applications = 0;
};

struct ReductionStats {
  ReduceLevel level = ReduceLevel::kOff;
  std::size_t places_before = 0;
  std::size_t places_after = 0;
  std::size_t transitions_before = 0;
  std::size_t transitions_after = 0;
  /// Full sweeps of the pass pipeline until the fixpoint (>= 1).
  std::size_t iterations = 0;
  double seconds = 0.0;
  /// Per-pass application counts over all sweeps, pipeline order; passes
  /// that never applied are omitted.
  std::vector<PassCount> pass_counts;
};

/// The stats as the run report's "reduction" object payload
/// (RunReport::set_reduction for single runs, JobRun::reduction per portfolio
/// job). Call only for an applied reduction (level != kOff).
[[nodiscard]] obs::RunReport::ReductionRun to_report_run(
    const ReductionStats& stats);

struct ReduceOptions {
  ReduceLevel level = ReduceLevel::kSafe;
  /// Fixpoint sweep cap — a backstop, never reached on sane nets.
  std::size_t max_iterations = 64;
  /// Optional telemetry: final counts are published under
  /// "<metrics_prefix>..." (places/transitions before/after, iterations, a
  /// seconds timer, and pass.<name>.applications per applied pass).
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "reduce.";
  /// Optional phase tracer: one span per pass application sweep entry, so
  /// the phase tree shows where reduction time went.
  obs::Tracer* tracer = nullptr;
};

struct ReductionResult {
  petri::PetriNet net;
  ReductionCertificate certificate;
  ReductionStats stats;
};

/// Runs the reduction pipeline to a fixpoint. `ReduceLevel::kOff` returns a
/// structural copy of `net` with an empty certificate.
[[nodiscard]] ReductionResult reduce_net(const petri::PetriNet& net,
                                         const ReduceOptions& options = {});

}  // namespace gpo::reduce
