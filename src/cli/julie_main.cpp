// julie — command-line front-end to the verification engines, named after the
// prototype tool of the paper. Loads a net from a .net/.pnml file or one of
// the built-in parameterized models and runs the selected analyses.
//
//   julie --model nsdp:8 --engine gpo
//   julie --engine full --dot rg.dot examples/nets/fig7.net
//   julie --model rw:12 --engine all
//   julie --model asat:4 --safety crit_4,crit_5
//   julie --model nsdp:4 --structure --liveness
//   julie --model over:3 --write-pnml over3.pnml
//
// Subcommands (portfolio verification service, src/service/):
//   julie batch bench/portfolio.manifest --report out.json
//   julie serve --pool-threads 4
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/symbolic_reach.hpp"
#include "core/gpo.hpp"
#include "mc/ctl.hpp"
#include "models/models.hpp"
#include "obs/diag.hpp"
#include "obs/event_log.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "parser/net_format.hpp"
#include "parser/pnml.hpp"
#include "petri/dot.hpp"
#include "petri/structure.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"
#include "reduce/reduce.hpp"
#include "safety/safety.hpp"
#include "service/service_cli.hpp"
#include "unfold/unfolding.hpp"
#include "util/stopwatch.hpp"

namespace {

using gpo::petri::PetriNet;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] [net-file(.net|.pnml)]\n"
      << "       " << argv0 << " batch <manifest> [--report FILE]\n"
      << "                     run a portfolio batch (engines racing with\n"
      << "                     first-to-answer cancellation); see\n"
      << "                     `" << argv0 << " batch --help`\n"
      << "       " << argv0 << " serve [--pool-threads N]\n"
      << "                     line-protocol verification server on\n"
      << "                     stdin/stdout (CHECK/VERDICT)\n"
      << "  --model NAME:N     built-in model instead of a net file; NAME in\n"
      << "                     {nsdp, asat, over, rw, diamond, chain,\n"
      << "                      fig3, fig5, fig7}\n"
      << "  --engine E         full | por | bdd | gpo | gpo-intern |\n"
      << "                     gpo-bdd | unfold | all\n"
      << "                     (default: gpo)\n"
      << "  --family-store S   explicit | zdd — family storage backend for\n"
      << "                     the gpo/gpo-intern engines (default explicit;\n"
      << "                     zdd stores canonical set families as shared\n"
      << "                     zero-suppressed DDs: ~10x less family memory\n"
      << "                     on scenario-heavy nets, sequential only)\n"
      << "  --reduce L         off | safe | aggressive — structural net\n"
      << "                     reduction before the deadlock engines run\n"
      << "                     (default off). The engines analyze the\n"
      << "                     reduced net; the verdict transfers through\n"
      << "                     the reduction certificate and deadlock\n"
      << "                     counterexamples are replayed on the original\n"
      << "                     net as an acceptance check. Not applied to\n"
      << "                     --safety/--ctl/--liveness/--structure, which\n"
      << "                     inspect original-net markings\n"
      << "  --safety P1,P2,..  check 'P1..Pk never simultaneously marked'\n"
      << "                     via the deadlock reduction (uses --engine)\n"
      << "  --liveness         report transitions that can never fire\n"
      << "  --structure        siphon/trap and invariant analysis\n"
      << "  --max-states N     state cap for explicit engines\n"
      << "  --max-seconds S    wall-clock cap per engine\n"
      << "  --threads N        worker threads; honored by the exhaustive\n"
      << "                     engine (full) and the interned GPO engine\n"
      << "                     (gpo-intern); verdicts and state counts do\n"
      << "                     not depend on N (default 1 = sequential)\n"
      << "  --stats            print per-engine telemetry counters on stderr\n"
      << "                     (states/sec, peak frontier, steals, shard\n"
      << "                     occupancy, interner dedup, op-cache hit rate)\n"
      << "  --progress [SECS]  heartbeat on stderr every SECS seconds\n"
      << "                     (default 1): states/sec, frontier, peak RSS,\n"
      << "                     interner occupancy, current phase\n"
      << "  --report FILE      write a machine-readable JSON run report\n"
      << "                     (schema: bench/report_schema.json)\n"
      << "  --events FILE      write a JSONL event log (span open/close\n"
      << "                     records with monotonic timestamps; validate\n"
      << "                     with bench/validate_report.py --events)\n"
      << "  --trace FILE       write the phase tree as chrome://tracing JSON\n"
      << "  --dot FILE         write the net structure as Graphviz DOT\n"
      << "  --write-net FILE   serialize the net in .net format\n"
      << "  --write-pnml FILE  serialize the net as PNML\n"
      << "  --quiet            one summary line per engine only (stdout);\n"
      << "                     diagnostics stay on stderr\n";
  return 2;
}

struct Row {
  std::string engine;
  double states = -1;  // -1: not applicable
  std::size_t peak_bdd = 0;
  bool deadlock = false;
  bool aborted = false;
  std::string aborted_phase;  // which phase the limit interrupted
  double seconds = 0;
};

void print_row(const Row& r) {
  std::cout << "  " << r.engine << ": ";
  if (r.aborted) {
    std::cout << "ABORTED (limit hit";
    if (!r.aborted_phase.empty()) std::cout << " in " << r.aborted_phase;
    std::cout << ")";
  } else {
    if (r.states >= 0) std::cout << "states=" << r.states << " ";
    if (r.peak_bdd > 0) std::cout << "peak-bdd=" << r.peak_bdd << " ";
    std::cout << (r.deadlock ? "DEADLOCK" : "no deadlock");
  }
  std::cout << "  (" << r.seconds << "s)\n";
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void run_structure(const PetriNet& net) {
  using namespace gpo::petri;
  std::cout << "structural analysis:\n"
            << "  free choice: " << (is_free_choice(net) ? "yes" : "no")
            << "\n";
  auto stp = siphon_trap_property(net);
  std::cout << "  siphon-trap property: " << (stp.holds ? "holds" : "FAILS")
            << (stp.exhaustive ? "" : " (non-exhaustive)") << "\n";
  if (stp.counterexample_siphon) {
    std::cout << "    unprotected siphon: {";
    bool first = true;
    for (std::size_t p = stp.counterexample_siphon->find_first();
         p < stp.counterexample_siphon->size();
         p = stp.counterexample_siphon->find_next(p + 1)) {
      if (!first) std::cout << ",";
      std::cout << net.place(static_cast<PlaceId>(p)).name;
      first = false;
    }
    std::cout << "}\n";
  }
  bool complete = true;
  auto flows = place_semiflows(net, 1024, &complete);
  auto certified = safeness_certified_places(net, flows);
  std::cout << "  place semiflows: " << flows.size()
            << (complete ? "" : "+ (capped)") << "\n"
            << "  1-safeness certified structurally for " << certified.count()
            << "/" << net.place_count() << " places\n";
}

/// The one registry-driven stats formatter (replaces the former per-engine
/// hand-rolled printers): snapshots every counter the engine published under
/// its prefix and prints them in registration order — the same names, in the
/// same order, that `--report` serializes. Diagnostics go to stderr so
/// stdout stays one line per engine.
void print_engine_stats(const gpo::obs::MetricsRegistry& reg,
                        const std::string& engine,
                        const std::string& prefix) {
  auto snaps = reg.snapshot(prefix);
  if (snaps.empty()) return;
  std::ostringstream line;
  line << "  stats[" << engine << "]:";
  for (const auto& s : snaps) {
    line << ' ' << s.name.substr(prefix.size()) << '=';
    switch (s.kind) {
      case gpo::obs::MetricKind::kCounter:
        line << s.count;
        break;
      case gpo::obs::MetricKind::kGauge:
        line << s.value;
        break;
      case gpo::obs::MetricKind::kTimer:
        line << s.value << 's';
        break;
      case gpo::obs::MetricKind::kHistogram:
        line << "{n=" << s.count << " p50=" << s.p50 << "s p90=" << s.p90
             << "s p99=" << s.p99 << "s max=" << s.max << "s}";
        break;
    }
  }
  gpo::obs::diag_line(line.str());
}

void run_liveness(const PetriNet& net, std::size_t max_states,
                  double max_seconds, std::size_t num_threads) {
  gpo::reach::ExplorerOptions opt;
  opt.max_states = max_states;
  opt.max_seconds = max_seconds;
  opt.num_threads = num_threads;
  auto r = gpo::reach::ExplicitExplorer(net, opt).explore();
  if (r.limit_hit) {
    std::cout << "liveness: exploration hit its limit; results partial\n";
  }
  std::size_t dead = net.transition_count() - r.fireable_transitions.count();
  std::cout << "liveness: " << r.fireable_transitions.count() << "/"
            << net.transition_count() << " transitions fireable";
  if (dead > 0 && !r.limit_hit) {
    std::cout << "; dead:";
    for (gpo::petri::TransitionId t = 0; t < net.transition_count(); ++t)
      if (!r.fireable_transitions.test(t))
        std::cout << " " << net.transition(t).name;
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch: `julie batch ...` / `julie serve ...` hand the rest
  // of argv to the service layer; everything else is the classic one-net CLI.
  if (argc > 1 && std::strcmp(argv[1], "batch") == 0)
    return gpo::service::batch_main(argc - 2, argv + 2);
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
    return gpo::service::serve_main(argc - 2, argv + 2);

  std::string engine = "gpo";
  gpo::core::FamilyStore family_store = gpo::core::FamilyStore::kExplicit;
  gpo::reduce::ReduceLevel reduce_level = gpo::reduce::ReduceLevel::kOff;
  std::string model_spec;
  std::string net_file;
  std::string dot_file, write_net_file, write_pnml_file;
  std::string safety_spec;
  std::string ctl_spec;
  bool want_liveness = false, want_structure = false;
  std::size_t max_states = SIZE_MAX;
  double max_seconds = 300.0;
  std::size_t num_threads = 1;
  bool want_stats = false;
  bool quiet = false;
  double progress_secs = 0;  // 0 = no heartbeat
  std::string report_file, trace_file, events_file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      model_spec = next();
    } else if (arg == "--engine") {
      engine = next();
    } else if (arg == "--family-store") {
      std::string store = next();
      auto parsed = gpo::core::parse_family_store(store);
      if (!parsed) {
        std::cerr << "--family-store must be 'explicit' or 'zdd', got '"
                  << store << "'\n";
        return 2;
      }
      family_store = *parsed;
    } else if (arg == "--reduce") {
      std::string level = next();
      auto parsed = gpo::reduce::parse_reduce_level(level);
      if (!parsed) {
        std::cerr << "--reduce must be 'off', 'safe' or 'aggressive', got '"
                  << level << "'\n";
        return 2;
      }
      reduce_level = *parsed;
    } else if (arg == "--safety") {
      safety_spec = next();
    } else if (arg == "--ctl") {
      ctl_spec = next();
    } else if (arg == "--liveness") {
      want_liveness = true;
    } else if (arg == "--structure") {
      want_structure = true;
    } else if (arg == "--max-states") {
      max_states = std::stoul(next());
    } else if (arg == "--max-seconds") {
      max_seconds = std::stod(next());
    } else if (arg == "--threads") {
      num_threads = std::stoul(next());
      if (num_threads == 0) num_threads = 1;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--progress") {
      progress_secs = 1.0;
      if (i + 1 < argc) {  // the SECS argument is optional
        char* end = nullptr;
        double v = std::strtod(argv[i + 1], &end);
        if (end != argv[i + 1] && *end == '\0' && v > 0) {
          progress_secs = v;
          ++i;
        }
      }
    } else if (arg == "--report") {
      report_file = next();
    } else if (arg == "--events") {
      events_file = next();
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--dot") {
      dot_file = next();
    } else if (arg == "--write-net") {
      write_net_file = next();
    } else if (arg == "--write-pnml") {
      write_pnml_file = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0]);
    } else {
      net_file = arg;
    }
  }

  // One registry + tracer for the whole run. Engines only pay for the live
  // counters when some telemetry sink (--stats/--progress/--report/--trace)
  // asked for them — otherwise they see null pointers.
  gpo::obs::MetricsRegistry registry;
  gpo::obs::Tracer tracer;
  const bool telemetry = want_stats || progress_secs > 0 ||
                         !report_file.empty() || !trace_file.empty() ||
                         !events_file.empty();
  gpo::obs::MetricsRegistry* reg = telemetry ? &registry : nullptr;
  gpo::obs::Tracer* tr = telemetry ? &tracer : nullptr;

  // Crash forensics: on a fatal signal or std::terminate, dump the live
  // span stack and watched metrics to stderr (async-signal-safe raw path;
  // see obs/postmortem.hpp). Installed unconditionally — it costs nothing
  // until something dies.
  gpo::obs::Postmortem::install();
  gpo::obs::Postmortem::set_context(tr, reg);

  // Structured JSONL event log: span open/close records flow through the
  // tracer's event sink. Opened before any Span is created so the log sees
  // the whole run.
  std::unique_ptr<gpo::obs::EventLog> events;
  if (!events_file.empty()) {
    try {
      events = std::make_unique<gpo::obs::EventLog>(events_file);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    tracer.set_event_sink(events.get());
  }

  gpo::obs::RunReport report("julie");
  {
    std::string cmd;
    for (int a = 0; a < argc; ++a) {
      if (a > 0) cmd += ' ';
      cmd += argv[a];
    }
    report.set_command(cmd);
  }
  if (!events_file.empty()) report.set_events_path(events_file);

  std::optional<gpo::obs::Heartbeat> heartbeat;
  if (progress_secs > 0) {
    heartbeat.emplace(registry, tr, progress_secs, std::cerr);
    heartbeat->start();
  }
  // Every exit path below goes through here, so the report/trace files get
  // written (and the heartbeat prints its final line) no matter which
  // analysis ran.
  auto finish = [&](int rc) {
    if (heartbeat) heartbeat->stop();
    if (events != nullptr) {
      tracer.set_event_sink(nullptr);  // no span may outlive the closed log
      events->close();
      if (!quiet) std::cout << "wrote " << events_file << "\n";
    }
    if (!report_file.empty()) {
      std::ofstream out(report_file);
      if (!out) {
        std::cerr << "cannot write " << report_file << "\n";
        if (rc == 0) rc = 1;
      } else {
        report.write(out, &tracer, &registry);
        if (!quiet) std::cout << "wrote " << report_file << "\n";
      }
    }
    if (!trace_file.empty()) {
      std::ofstream out(trace_file);
      if (!out) {
        std::cerr << "cannot write " << trace_file << "\n";
        if (rc == 0) rc = 1;
      } else {
        gpo::obs::write_chrome_trace(out, tracer.records());
        if (!quiet) std::cout << "wrote " << trace_file << "\n";
      }
    }
    return rc;
  };

  std::optional<PetriNet> net;
  try {
    gpo::obs::Span parse_span(tr, "parse");
    if (!model_spec.empty()) {
      net = gpo::models::make_by_spec(model_spec);
      if (!net) {
        std::cerr << "unknown model '" << model_spec << "'\n";
        return finish(2);
      }
    } else if (!net_file.empty()) {
      bool is_pnml = net_file.size() >= 5 &&
                     net_file.substr(net_file.size() - 5) == ".pnml";
      net = is_pnml ? gpo::parser::parse_pnml_file(net_file)
                    : gpo::parser::parse_net_file(net_file);
    } else {
      return finish(usage(argv[0]));
    }
  } catch (const std::exception& e) {
    std::cerr << "error loading net: " << e.what() << "\n";
    return finish(1);
  }
  report.set_net(std::string(net->name()), net->place_count(),
                 net->transition_count());

  if (!quiet)
    std::cout << "net '" << net->name() << "': " << net->place_count()
              << " places, " << net->transition_count() << " transitions\n";

  auto write_file = [&](const std::string& path, auto writer) {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    writer(out);
    if (!quiet) std::cout << "wrote " << path << "\n";
    return true;
  };
  if (!write_file(dot_file,
                  [&](std::ostream& o) { gpo::petri::write_net_dot(o, *net); }))
    return finish(1);
  if (!write_file(write_net_file,
                  [&](std::ostream& o) { gpo::parser::write_net(o, *net); }))
    return finish(1);
  if (!write_file(write_pnml_file,
                  [&](std::ostream& o) { gpo::parser::write_pnml(o, *net); }))
    return finish(1);

  if (want_structure) {
    gpo::obs::Span span(tr, "structure");
    run_structure(*net);
  }
  if (want_liveness) {
    gpo::obs::Span span(tr, "liveness");
    run_liveness(*net, max_states, max_seconds, num_threads);
  }

  if (!ctl_spec.empty()) {
    try {
      gpo::obs::Span span(tr, "ctl");
      gpo::mc::CtlOptions opt;
      opt.max_states = max_states == SIZE_MAX ? 5'000'000 : max_states;
      auto r = gpo::mc::check_ctl(*net, ctl_spec, opt);
      std::cout << "CTL '" << ctl_spec << "': "
                << (r.holds ? "holds" : "FAILS") << " ("
                << r.satisfying_states << "/" << r.state_count
                << " states satisfy it"
                << (r.limit_hit ? ", state limit hit" : "") << ")\n";
      if (!r.holds && !r.counterexample.empty()) {
        std::cout << "  counterexample:";
        for (auto t : r.counterexample)
          std::cout << " " << net->transition(t).name;
        std::cout << "\n";
      }
      return finish(r.holds ? 0 : 10);
    } catch (const std::exception& e) {
      std::cerr << "CTL error: " << e.what() << "\n";
      return finish(2);
    }
  }

  if (!safety_spec.empty()) {
    gpo::safety::SafetyProperty prop;
    for (const std::string& name : split_csv(safety_spec)) {
      auto p = net->find_place(name);
      if (p == gpo::petri::kInvalidPlace) {
        std::cerr << "unknown place '" << name << "' in --safety\n";
        return 2;
      }
      prop.never_all_marked.push_back(p);
    }
    gpo::safety::SafetyOptions opt;
    opt.max_states = max_states;
    opt.max_seconds = max_seconds;
    opt.metrics = reg;
    opt.tracer = tr;
    opt.engine = engine == "full"  ? gpo::safety::Engine::kExplicit
                 : engine == "por" ? gpo::safety::Engine::kStubborn
                 : engine == "bdd" ? gpo::safety::Engine::kSymbolic
                 : engine == "gpo" ? gpo::safety::Engine::kGpo
                 : engine == "gpo-intern"
                     ? gpo::safety::Engine::kGpoInterned
                     : gpo::safety::Engine::kGpoBdd;
    auto r = gpo::safety::check_safety(*net, prop, opt);
    std::cout << "safety '" << safety_spec << "': "
              << (r.violated ? "VIOLATED" : (r.limit_hit ? "UNDECIDED (limit)"
                                                         : "holds"))
              << " (" << r.states_explored << " states, " << r.seconds
              << "s)\n";
    if (r.witness)
      std::cout << "  witness: "
                << gpo::reach::marking_to_string(*net, *r.witness) << "\n";
    if (want_stats) print_engine_stats(registry, engine, "safety.");
    gpo::obs::RunReport::EngineRun er;
    er.engine = engine;
    er.model = model_spec.empty() ? net_file : model_spec;
    er.verdict =
        r.violated ? "violated" : (r.limit_hit ? "undecided" : "holds");
    er.states = static_cast<double>(r.states_explored);
    er.seconds = r.seconds;
    er.aborted = r.limit_hit;
    er.aborted_phase = r.interrupted_phase;
    er.counters = gpo::obs::registry_to_json(registry, "safety.");
    report.add_engine(std::move(er));
    return finish(r.violated ? 10 : 0);
  }

  // Structural reduction, applied ONCE here so every racing engine sees the
  // same (smaller) net; the engines themselves keep their reduce options off.
  // The verdict transfers through the certificate; counterexamples are mapped
  // back and replayed on the original net below (replay is the acceptance
  // oracle). Property analyses above run on the original net.
  std::optional<PetriNet> reduced;
  std::optional<gpo::reduce::ReductionCertificate> certificate;
  const PetriNet* analysis_net = &*net;
  if (reduce_level != gpo::reduce::ReduceLevel::kOff) {
    gpo::obs::Span span(tr, "reduce");
    gpo::reduce::ReduceOptions ro;
    ro.level = reduce_level;
    ro.metrics = reg;
    ro.tracer = tr;
    auto red = gpo::reduce::reduce_net(*net, ro);
    if (!quiet)
      std::cout << "reduce(" << gpo::reduce::reduce_level_name(reduce_level)
                << "): " << red.stats.places_before << "p/"
                << red.stats.transitions_before << "t -> "
                << red.stats.places_after << "p/"
                << red.stats.transitions_after << "t in "
                << red.stats.iterations << " sweeps ("
                << red.stats.seconds << "s)\n";
    if (want_stats) print_engine_stats(registry, "reduce", "reduce.");
    report.set_reduction(gpo::reduce::to_report_run(red.stats));
    reduced = std::move(red.net);
    certificate = std::move(red.certificate);
    analysis_net = &*reduced;
  }

  // Certificate acceptance: map a reduced-net deadlock counterexample back
  // and replay it on the original net. A failure here is a reduction bug, not
  // a property of the net — surface it loudly and fail the run.
  bool certificate_violation = false;
  auto accept_counterexample =
      [&](const std::string& e,
          const std::vector<gpo::petri::TransitionId>& trace) {
        if (!certificate || trace.empty()) return;
        std::vector<gpo::petri::TransitionId> mapped =
            certificate->map_to_original(trace);
        std::optional<gpo::petri::Marking> end =
            gpo::reduce::replay_trace(*net, mapped);
        if (!end.has_value() || !net->is_deadlocked(*end)) {
          std::cerr << "ERROR: " << e << " counterexample does not replay to "
                    << "a deadlock on the original net (reduction "
                    << "certificate violation)\n";
          certificate_violation = true;
        }
      };

  bool any_deadlock = false;
  auto run_one = [&](const std::string& e) {
    Row row;
    row.engine = e;
    const std::string prefix = "engine." + e + ".";
    if (reg != nullptr) {
      // The live-progress slots are shared between engines; reset them so
      // the heartbeat shows per-engine progress under --engine all.
      reg->counter("progress.states").store(0);
      reg->gauge("progress.frontier").set(0);
    }
    gpo::obs::Span span(tr, "engine/" + e);
    try {
      if (e == "full") {
        gpo::reach::ExplorerOptions opt;
        opt.max_states = max_states;
        opt.max_seconds = max_seconds;
        opt.num_threads = num_threads;
        opt.metrics = reg;
        opt.metrics_prefix = prefix;
        auto r = gpo::reach::ExplicitExplorer(*analysis_net, opt).explore();
        row = {e, static_cast<double>(r.state_count), 0, r.deadlock_found,
               r.limit_hit, r.interrupted_phase, r.seconds};
        if (r.deadlock_found) accept_counterexample(e, r.counterexample);
        if (r.safeness_violation)
          gpo::obs::diag_line("  WARNING: net is not 1-safe");
      } else if (e == "por") {
        gpo::por::StubbornOptions opt;
        opt.max_states = max_states;
        opt.max_seconds = max_seconds;
        opt.metrics = reg;
        opt.metrics_prefix = prefix;
        auto r = gpo::por::StubbornExplorer(*analysis_net, opt).explore();
        row = {e, static_cast<double>(r.state_count), 0, r.deadlock_found,
               r.limit_hit, r.interrupted_phase, r.seconds};
        if (r.deadlock_found) accept_counterexample(e, r.counterexample);
      } else if (e == "bdd") {
        gpo::bdd::SymbolicOptions opt;
        opt.max_seconds = max_seconds;
        opt.metrics = reg;
        opt.metrics_prefix = prefix;
        auto r = gpo::bdd::SymbolicReachability(*analysis_net, opt).analyze();
        row = {e,        r.state_count,
               r.peak_nodes, r.deadlock_found,
               r.blowup, r.blowup ? "symbolic-fixpoint" : "",
               r.seconds};
      } else if (e == "unfold") {
        gpo::unfold::UnfoldOptions opt;
        opt.metrics = reg;
        opt.metrics_prefix = prefix;
        gpo::util::Stopwatch watch;
        auto p = gpo::unfold::unfold(*analysis_net, opt);
        row.seconds = watch.elapsed_seconds();
        row.aborted = p.limit_hit;
        std::cout << "  unfold: events=" << p.events.size()
                  << " conditions=" << p.conditions.size()
                  << " cutoffs=" << p.cutoff_count
                  << (p.limit_hit ? " (limit hit)" : "") << "\n";
      } else if (e == "gpo" || e == "gpo-bdd" || e == "gpo-intern") {
        gpo::core::GpoOptions opt;
        opt.max_states = max_states;
        opt.max_seconds = max_seconds;
        opt.metrics = reg;
        opt.metrics_prefix = prefix;
        opt.tracer = tr;
        opt.num_threads = num_threads;  // parallel path: gpo-intern only
        opt.family_store = family_store;  // zdd forces the sequential engine
        auto kind = e == "gpo"       ? gpo::core::FamilyKind::kExplicit
                    : e == "gpo-bdd" ? gpo::core::FamilyKind::kBdd
                                     : gpo::core::FamilyKind::kInterned;
        auto r = gpo::core::run_gpo(*analysis_net, kind, opt);
        for (const std::string& w : r.warnings)
          std::cerr << "warning: " << e << ": " << w << "\n";
        row = {e, static_cast<double>(r.state_count), 0, r.deadlock_found,
               r.limit_hit, r.interrupted_phase, r.seconds};
        if (r.deadlock_found) accept_counterexample(e, r.counterexample);
      } else {
        std::cerr << "unknown engine '" << e << "'\n";
        exit(2);
      }
    } catch (const std::exception& ex) {
      std::cout << "  " << e << ": failed: " << ex.what() << "\n";
      gpo::obs::RunReport::EngineRun er;
      er.engine = e;
      er.model = model_spec.empty() ? net_file : model_spec;
      er.verdict = "failed";
      er.aborted = true;
      report.add_engine(std::move(er));
      return;
    }
    if (e != "unfold") {
      any_deadlock |= row.deadlock && !row.aborted;
      print_row(row);
    }
    // A limit abort is the "soft crash" case: leave the same forensic
    // breadcrumbs (phase, metrics) the fatal-signal handler would.
    if (row.aborted && telemetry) {
      std::string reason = "limit hit";
      if (!row.aborted_phase.empty()) reason += " in " + row.aborted_phase;
      gpo::obs::Postmortem::dump(reason);
    }
    if (want_stats) print_engine_stats(registry, e, prefix);
    gpo::obs::RunReport::EngineRun er;
    er.engine = e;
    er.model = model_spec.empty() ? net_file : model_spec;
    er.verdict = e == "unfold"  ? "unfolded"
                 : row.aborted  ? "aborted"
                 : row.deadlock ? "deadlock"
                                : "no-deadlock";
    er.states = e == "unfold" ? -1 : row.states;
    er.seconds = row.seconds;
    er.aborted = row.aborted;
    er.aborted_phase = row.aborted_phase;
    er.counters = gpo::obs::registry_to_json(registry, prefix);
    report.add_engine(std::move(er));
  };

  if (engine == "all") {
    for (const char* e :
         {"full", "por", "bdd", "gpo", "gpo-intern", "gpo-bdd", "unfold"})
      run_one(e);
  } else {
    run_one(engine);
  }
  if (certificate_violation) return finish(1);
  return finish(any_deadlock ? 10 : 0);
}
