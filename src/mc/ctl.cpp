#include "mc/ctl.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <unordered_map>

namespace gpo::mc {

using petri::Marking;
using petri::PetriNet;
using petri::TransitionId;
using util::Bitset;

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Token {
  enum Kind {
    kIdent,
    kNot,
    kAnd,
    kOr,
    kImplies,
    kLParen,
    kRParen,
    kLBracket,
    kRBracket,
    kU,
    kEnd,
  } kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ >= text_.size()) {
      current_ = {Token::kEnd, ""};
      return;
    }
    char c = text_[pos_];
    auto two = text_.substr(pos_, 2);
    if (c == '!') {
      ++pos_;
      current_ = {Token::kNot, "!"};
    } else if (two == "&&") {
      pos_ += 2;
      current_ = {Token::kAnd, "&&"};
    } else if (two == "||") {
      pos_ += 2;
      current_ = {Token::kOr, "||"};
    } else if (two == "->") {
      pos_ += 2;
      current_ = {Token::kImplies, "->"};
    } else if (c == '(') {
      ++pos_;
      current_ = {Token::kLParen, "("};
    } else if (c == ')') {
      ++pos_;
      current_ = {Token::kRParen, ")"};
    } else if (c == '[') {
      ++pos_;
      current_ = {Token::kLBracket, "["};
    } else if (c == ']') {
      ++pos_;
      current_ = {Token::kRBracket, "]"};
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.'))
        ++pos_;
      std::string ident(text_.substr(start, pos_ - start));
      current_ = {ident == "U" ? Token::kU : Token::kIdent, ident};
    } else {
      throw parser::ParseError(1, std::string("CTL: unexpected character '") +
                                      c + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_{Token::kEnd, ""};
};

std::unique_ptr<CtlFormula> make_node(CtlOp op,
                                      std::unique_ptr<CtlFormula> lhs = {},
                                      std::unique_ptr<CtlFormula> rhs = {}) {
  auto f = std::make_unique<CtlFormula>();
  f->op = op;
  f->lhs = std::move(lhs);
  f->rhs = std::move(rhs);
  return f;
}

class Parser {
 public:
  Parser(std::string_view text, const PetriNet& net)
      : lexer_(text), net_(net) {}

  std::unique_ptr<CtlFormula> parse() {
    auto f = parse_implies();
    if (lexer_.peek().kind != Token::kEnd)
      throw parser::ParseError(1, "CTL: trailing input after formula");
    return f;
  }

 private:
  std::unique_ptr<CtlFormula> parse_implies() {
    auto lhs = parse_or();
    if (lexer_.peek().kind == Token::kImplies) {
      lexer_.take();
      // Right associative.
      return make_node(CtlOp::kImplies, std::move(lhs), parse_implies());
    }
    return lhs;
  }

  std::unique_ptr<CtlFormula> parse_or() {
    auto lhs = parse_and();
    while (lexer_.peek().kind == Token::kOr) {
      lexer_.take();
      lhs = make_node(CtlOp::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  std::unique_ptr<CtlFormula> parse_and() {
    auto lhs = parse_unary();
    while (lexer_.peek().kind == Token::kAnd) {
      lexer_.take();
      lhs = make_node(CtlOp::kAnd, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  std::unique_ptr<CtlFormula> parse_until(CtlOp op) {
    if (lexer_.take().kind != Token::kLBracket)
      throw parser::ParseError(1, "CTL: expected '[' after path quantifier");
    auto lhs = parse_implies();
    if (lexer_.take().kind != Token::kU)
      throw parser::ParseError(1, "CTL: expected 'U' in until formula");
    auto rhs = parse_implies();
    if (lexer_.take().kind != Token::kRBracket)
      throw parser::ParseError(1, "CTL: expected ']' closing until formula");
    return make_node(op, std::move(lhs), std::move(rhs));
  }

  std::unique_ptr<CtlFormula> parse_unary() {
    const Token& t = lexer_.peek();
    switch (t.kind) {
      case Token::kNot:
        lexer_.take();
        return make_node(CtlOp::kNot, parse_unary());
      case Token::kLParen: {
        lexer_.take();
        auto f = parse_implies();
        if (lexer_.take().kind != Token::kRParen)
          throw parser::ParseError(1, "CTL: missing ')'");
        return f;
      }
      case Token::kIdent: {
        std::string ident = lexer_.take().text;
        if (ident == "true") return make_node(CtlOp::kTrue);
        if (ident == "false") return make_node(CtlOp::kFalse);
        if (ident == "deadlock") return make_node(CtlOp::kDeadlockAtom);
        if (ident == "EX") return make_node(CtlOp::kEX, parse_unary());
        if (ident == "AX") return make_node(CtlOp::kAX, parse_unary());
        if (ident == "EF") return make_node(CtlOp::kEF, parse_unary());
        if (ident == "AF") return make_node(CtlOp::kAF, parse_unary());
        if (ident == "EG") return make_node(CtlOp::kEG, parse_unary());
        if (ident == "AG") return make_node(CtlOp::kAG, parse_unary());
        if (ident == "E") return parse_until(CtlOp::kEU);
        if (ident == "A") return parse_until(CtlOp::kAU);
        auto p = net_.find_place(ident);
        if (p == petri::kInvalidPlace)
          throw parser::ParseError(1, "CTL: unknown place '" + ident + "'");
        auto f = make_node(CtlOp::kAtom);
        f->place = p;
        return f;
      }
      default:
        throw parser::ParseError(1, "CTL: unexpected token '" + t.text + "'");
    }
  }

  Lexer lexer_;
  const PetriNet& net_;
};

}  // namespace

CtlFormula parse_ctl(std::string_view text, const PetriNet& net) {
  return std::move(*Parser(text, net).parse());
}

std::string CtlFormula::to_string(const PetriNet& net) const {
  switch (op) {
    case CtlOp::kAtom: return net.place(place).name;
    case CtlOp::kDeadlockAtom: return "deadlock";
    case CtlOp::kTrue: return "true";
    case CtlOp::kFalse: return "false";
    case CtlOp::kNot: return "!" + lhs->to_string(net);
    case CtlOp::kAnd:
      return "(" + lhs->to_string(net) + " && " + rhs->to_string(net) + ")";
    case CtlOp::kOr:
      return "(" + lhs->to_string(net) + " || " + rhs->to_string(net) + ")";
    case CtlOp::kImplies:
      return "(" + lhs->to_string(net) + " -> " + rhs->to_string(net) + ")";
    case CtlOp::kEX: return "EX " + lhs->to_string(net);
    case CtlOp::kAX: return "AX " + lhs->to_string(net);
    case CtlOp::kEF: return "EF " + lhs->to_string(net);
    case CtlOp::kAF: return "AF " + lhs->to_string(net);
    case CtlOp::kEG: return "EG " + lhs->to_string(net);
    case CtlOp::kAG: return "AG " + lhs->to_string(net);
    case CtlOp::kEU:
      return "E [" + lhs->to_string(net) + " U " + rhs->to_string(net) + "]";
    case CtlOp::kAU:
      return "A [" + lhs->to_string(net) + " U " + rhs->to_string(net) + "]";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

/// The reachability graph in adjacency form; deadlock states get an
/// implicit self-loop to keep the relation total.
struct Graph {
  std::vector<Marking> states;
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::vector<std::size_t>> preds;
  std::vector<std::pair<std::size_t, TransitionId>> breadcrumbs;
  Bitset deadlocks{0};
  bool limit_hit = false;
};

Graph build_graph(const PetriNet& net, std::size_t max_states) {
  Graph g;
  std::unordered_map<Marking, std::size_t> index;
  std::deque<std::size_t> frontier;
  auto intern = [&](const Marking& m, std::size_t parent, TransitionId via) {
    auto [it, inserted] = index.try_emplace(m, g.states.size());
    if (inserted) {
      g.states.push_back(m);
      g.succs.emplace_back();
      g.preds.emplace_back();
      g.breadcrumbs.emplace_back(parent, via);
      frontier.push_back(it->second);
    }
    return it->second;
  };
  intern(net.initial_marking(), 0, petri::kInvalidTransition);
  while (!frontier.empty()) {
    if (g.states.size() > max_states) {
      g.limit_hit = true;
      break;
    }
    std::size_t s = frontier.front();
    frontier.pop_front();
    const Marking m = g.states[s];
    for (TransitionId t = 0; t < net.transition_count(); ++t) {
      if (!net.enabled(t, m)) continue;
      std::size_t next = intern(net.fire(t, m), s, t);
      g.succs[s].push_back(next);
      g.preds[next].push_back(s);
    }
  }
  g.deadlocks = Bitset(g.states.size());
  for (std::size_t s = 0; s < g.states.size(); ++s) {
    if (g.succs[s].empty()) {
      g.deadlocks.set(s);
      g.succs[s].push_back(s);  // totalize
      g.preds[s].push_back(s);
    }
  }
  return g;
}

Bitset eval(const CtlFormula& f, const Graph& g) {
  const std::size_t n = g.states.size();
  Bitset out(n);
  switch (f.op) {
    case CtlOp::kAtom:
      for (std::size_t s = 0; s < n; ++s)
        if (g.states[s].test(f.place)) out.set(s);
      return out;
    case CtlOp::kDeadlockAtom:
      return g.deadlocks;
    case CtlOp::kTrue:
      for (std::size_t s = 0; s < n; ++s) out.set(s);
      return out;
    case CtlOp::kFalse:
      return out;
    case CtlOp::kNot: {
      Bitset a = eval(*f.lhs, g);
      for (std::size_t s = 0; s < n; ++s)
        if (!a.test(s)) out.set(s);
      return out;
    }
    case CtlOp::kAnd:
      return eval(*f.lhs, g) & eval(*f.rhs, g);
    case CtlOp::kOr:
      return eval(*f.lhs, g) | eval(*f.rhs, g);
    case CtlOp::kImplies: {
      Bitset a = eval(*f.lhs, g);
      Bitset b = eval(*f.rhs, g);
      for (std::size_t s = 0; s < n; ++s)
        if (!a.test(s) || b.test(s)) out.set(s);
      return out;
    }
    case CtlOp::kEX: {
      Bitset a = eval(*f.lhs, g);
      for (std::size_t s = 0; s < n; ++s)
        for (std::size_t succ : g.succs[s])
          if (a.test(succ)) {
            out.set(s);
            break;
          }
      return out;
    }
    case CtlOp::kAX: {
      Bitset a = eval(*f.lhs, g);
      for (std::size_t s = 0; s < n; ++s) {
        bool all = true;
        for (std::size_t succ : g.succs[s])
          if (!a.test(succ)) {
            all = false;
            break;
          }
        if (all) out.set(s);
      }
      return out;
    }
    case CtlOp::kEF: {
      // EF a = E [ true U a ]: backward reachability from a.
      Bitset a = eval(*f.lhs, g);
      std::deque<std::size_t> work;
      for (std::size_t s = a.find_first(); s < n; s = a.find_next(s + 1)) {
        out.set(s);
        work.push_back(s);
      }
      while (!work.empty()) {
        std::size_t s = work.front();
        work.pop_front();
        for (std::size_t p : g.preds[s])
          if (!out.test(p)) {
            out.set(p);
            work.push_back(p);
          }
      }
      return out;
    }
    case CtlOp::kAG: {
      // AG a = !EF !a, computed set-wise.
      Bitset a = eval(*f.lhs, g);
      Bitset bad(n);
      std::deque<std::size_t> work;
      for (std::size_t s = 0; s < n; ++s)
        if (!a.test(s)) {
          bad.set(s);
          work.push_back(s);
        }
      while (!work.empty()) {
        std::size_t s = work.front();
        work.pop_front();
        for (std::size_t p : g.preds[s])
          if (!bad.test(p)) {
            bad.set(p);
            work.push_back(p);
          }
      }
      for (std::size_t s = 0; s < n; ++s)
        if (!bad.test(s)) out.set(s);
      return out;
    }
    case CtlOp::kEU: {
      Bitset a = eval(*f.lhs, g);
      Bitset b = eval(*f.rhs, g);
      std::deque<std::size_t> work;
      for (std::size_t s = b.find_first(); s < n; s = b.find_next(s + 1)) {
        out.set(s);
        work.push_back(s);
      }
      while (!work.empty()) {
        std::size_t s = work.front();
        work.pop_front();
        for (std::size_t p : g.preds[s])
          if (!out.test(p) && a.test(p)) {
            out.set(p);
            work.push_back(p);
          }
      }
      return out;
    }
    case CtlOp::kEG: {
      // Greatest fixpoint: start from states satisfying a, repeatedly drop
      // those with no successor inside the set.
      Bitset a = eval(*f.lhs, g);
      Bitset in = a;
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t s = in.find_first(); s < n;
             s = in.find_next(s + 1)) {
          bool has = false;
          for (std::size_t succ : g.succs[s])
            if (in.test(succ)) {
              has = true;
              break;
            }
          if (!has) {
            in.reset(s);
            changed = true;
          }
        }
      }
      return in;
    }
    case CtlOp::kAF: {
      // AF a = !EG !a.
      Bitset a = eval(*f.lhs, g);
      Bitset in(n);
      for (std::size_t s = 0; s < n; ++s)
        if (!a.test(s)) in.set(s);
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t s = in.find_first(); s < n;
             s = in.find_next(s + 1)) {
          bool has = false;
          for (std::size_t succ : g.succs[s])
            if (in.test(succ)) {
              has = true;
              break;
            }
          if (!has) {
            in.reset(s);
            changed = true;
          }
        }
      }
      for (std::size_t s = 0; s < n; ++s)
        if (!in.test(s)) out.set(s);
      return out;
    }
    case CtlOp::kAU: {
      // A[a U b] = !( E[!b U (!a && !b)] || EG !b ).
      Bitset a = eval(*f.lhs, g);
      Bitset b = eval(*f.rhs, g);
      // EG !b part.
      Bitset eg(n);
      for (std::size_t s = 0; s < n; ++s)
        if (!b.test(s)) eg.set(s);
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t s = eg.find_first(); s < n;
             s = eg.find_next(s + 1)) {
          bool has = false;
          for (std::size_t succ : g.succs[s])
            if (eg.test(succ)) {
              has = true;
              break;
            }
          if (!has) {
            eg.reset(s);
            changed = true;
          }
        }
      }
      // E[!b U (!a && !b)] part.
      Bitset eu(n);
      std::deque<std::size_t> work;
      for (std::size_t s = 0; s < n; ++s)
        if (!a.test(s) && !b.test(s)) {
          eu.set(s);
          work.push_back(s);
        }
      while (!work.empty()) {
        std::size_t s = work.front();
        work.pop_front();
        for (std::size_t p : g.preds[s])
          if (!eu.test(p) && !b.test(p)) {
            eu.set(p);
            work.push_back(p);
          }
      }
      for (std::size_t s = 0; s < n; ++s)
        if (!eu.test(s) && !eg.test(s)) out.set(s);
      return out;
    }
  }
  return out;
}

}  // namespace

CtlResult check_ctl(const PetriNet& net, const CtlFormula& f,
                    const CtlOptions& options) {
  Graph g = build_graph(net, options.max_states);
  CtlResult result;
  result.state_count = g.states.size();
  result.limit_hit = g.limit_hit;
  Bitset sat = eval(f, g);
  result.satisfying_states = sat.count();
  result.holds = sat.test(0);

  // AG counterexample: shortest path (over the discovery tree) to a state
  // violating the operand.
  if (!result.holds && f.op == CtlOp::kAG) {
    Bitset operand = eval(*f.lhs, g);
    // BFS over the graph to the nearest violating state.
    std::vector<std::ptrdiff_t> parent(g.states.size(), -1);
    std::vector<TransitionId> via(g.states.size(), petri::kInvalidTransition);
    std::deque<std::size_t> work{0};
    std::vector<bool> seen(g.states.size(), false);
    seen[0] = true;
    std::ptrdiff_t target = operand.test(0) ? -1 : 0;
    while (!work.empty() && target < 0) {
      std::size_t s = work.front();
      work.pop_front();
      const Marking& m = g.states[s];
      for (TransitionId t = 0; t < net.transition_count(); ++t) {
        if (!net.enabled(t, m)) continue;
        // Successor index lookup through the graph structure.
        Marking nm = net.fire(t, m);
        for (std::size_t succ : g.succs[s]) {
          if (!(g.states[succ] == nm) || seen[succ]) continue;
          seen[succ] = true;
          parent[succ] = static_cast<std::ptrdiff_t>(s);
          via[succ] = t;
          if (!operand.test(succ)) {
            target = static_cast<std::ptrdiff_t>(succ);
            break;
          }
          work.push_back(succ);
        }
        if (target >= 0) break;
      }
    }
    if (target >= 0) {
      for (std::ptrdiff_t s = target; parent[s] >= 0; s = parent[s])
        result.counterexample.push_back(via[s]);
      std::reverse(result.counterexample.begin(),
                   result.counterexample.end());
    }
  }
  return result;
}

CtlResult check_ctl(const PetriNet& net, std::string_view formula,
                    const CtlOptions& options) {
  CtlFormula f = parse_ctl(formula, net);
  return check_ctl(net, f, options);
}

}  // namespace gpo::mc
