// CTL model checking over the explicit reachability graph.
//
// The paper notes that partial-order methods are "even partially applicable
// to model checking" [Godefroid-Wolper]; this module provides the classical
// global CTL evaluator the reduced engines would plug into: atomic
// propositions are place markings (plus the distinguished `deadlock` atom),
// and the temporal operators are computed with the standard fixpoint
// characterizations over the full graph. Deadlock states are given an
// implicit self-loop so the transition relation is total (the usual tool
// convention; `deadlock` still identifies them exactly).
//
// Formula syntax (parse_ctl):
//   f ::= place-name | deadlock | true | false | ( f )
//       | ! f | f && f | f || f | f -> f
//       | EX f | AX f | EF f | AF f | EG f | AG f
//       | E [ f U f ] | A [ f U f ]
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "parser/net_format.hpp"  // ParseError
#include "petri/net.hpp"
#include "util/bitset.hpp"

namespace gpo::mc {

enum class CtlOp {
  kAtom,   // place marked (place field)
  kDeadlockAtom,
  kTrue,
  kFalse,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kEX,
  kAX,
  kEF,
  kAF,
  kEG,
  kAG,
  kEU,  // E [ lhs U rhs ]
  kAU,  // A [ lhs U rhs ]
};

struct CtlFormula {
  CtlOp op;
  petri::PlaceId place = petri::kInvalidPlace;  // kAtom
  std::unique_ptr<CtlFormula> lhs;              // unary/binary operand
  std::unique_ptr<CtlFormula> rhs;              // binary operand

  /// Formula rendering (canonical, fully parenthesized).
  [[nodiscard]] std::string to_string(const petri::PetriNet& net) const;
};

/// Parses the syntax above; place names are resolved against `net`.
[[nodiscard]] CtlFormula parse_ctl(std::string_view text,
                                   const petri::PetriNet& net);

struct CtlOptions {
  std::size_t max_states = 5'000'000;
};

struct CtlResult {
  /// Does the initial marking satisfy the formula?
  bool holds = false;
  /// Number of reachable states satisfying it.
  std::size_t satisfying_states = 0;
  std::size_t state_count = 0;
  /// For a violated AG/invariant-style query: a firing sequence from the
  /// initial marking to a state violating the operand (filled when the top
  /// operator is AG and the result is false).
  std::vector<petri::TransitionId> counterexample;
  bool limit_hit = false;
};

/// Builds the reachability graph of `net` and evaluates `f` globally.
[[nodiscard]] CtlResult check_ctl(const petri::PetriNet& net,
                                  const CtlFormula& f,
                                  const CtlOptions& options = {});

/// Convenience: parse then check.
[[nodiscard]] CtlResult check_ctl(const petri::PetriNet& net,
                                  std::string_view formula,
                                  const CtlOptions& options = {});

}  // namespace gpo::mc
