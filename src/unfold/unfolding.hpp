// Net unfoldings: McMillan's finite complete prefix construction
// [McMillan CAV'92, Esparza-Römer-Vogler], the partial-order verification
// technique behind the paper's reference [13] (Semenov/Yakovlev, time Petri
// net unfolding). Where generalized partial-order analysis collapses the
// *conflict* dimension with valid-set scenarios, unfoldings unroll the net
// into an acyclic occurrence net whose *concurrency* is kept implicit —
// the two approaches are natural comparison points.
//
// The prefix is a branching process: conditions are instances of places,
// events instances of transitions. An event's local configuration [e] is
// the set of its causal predecessors; construction proceeds in order of
// |[e]| and stops at *cut-off events* whose final marking Mark([e]) was
// already produced by a smaller configuration. For safe nets the prefix is
// finite and complete: every reachable marking is the cut of one of its
// configurations (tested literally in tests/unfold by replaying the prefix
// as a Petri net and comparing reachable-marking sets).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "petri/net.hpp"
#include "util/cancel_token.hpp"

namespace gpo::unfold {

struct Condition {
  petri::PlaceId place;
  /// Producing event, or kNoEvent for the initial-marking conditions.
  std::size_t producer;
};

inline constexpr std::size_t kNoEvent = SIZE_MAX;

struct Event {
  petri::TransitionId transition;
  std::vector<std::size_t> preset;   // condition indices, sorted
  std::vector<std::size_t> postset;  // condition indices, sorted
  /// |[e]|: size of the local configuration (this event + causal
  /// predecessors).
  std::size_t local_size = 0;
  /// Mark([e]): the marking reached by firing exactly [e].
  petri::Marking mark;
  bool cutoff = false;
};

struct UnfoldOptions {
  std::size_t max_events = 100'000;
  std::size_t max_conditions = 1'000'000;
  /// Abort the construction after this much wall-clock time (limit_hit=true;
  /// the prefix is then not complete).
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation; a fired token stops the construction with
  /// limit_hit=true (the prefix is then not complete).
  const util::CancelToken* cancel = nullptr;
  /// Optional telemetry sink: each appended event bumps "progress.states"
  /// (events are the unfolder's unit of work) and the final
  /// events/conditions/cutoff counters are published under `metrics_prefix`.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "unfold.";
};

struct Prefix {
  std::vector<Condition> conditions;
  std::vector<Event> events;
  std::size_t cutoff_count = 0;
  /// Construction stopped at the caps; the prefix is then not complete.
  bool limit_hit = false;

  [[nodiscard]] std::size_t event_count() const { return events.size(); }
};

/// Builds the McMillan finite complete prefix of a safe net.
[[nodiscard]] Prefix unfold(const petri::PetriNet& net,
                            const UnfoldOptions& options = {});

/// Interprets the prefix itself as a (safe, acyclic) Petri net: conditions
/// become places (the initial ones marked), events become transitions. The
/// reachable markings of this net are exactly the cuts of the prefix's
/// configurations, which is how completeness is tested.
[[nodiscard]] petri::PetriNet prefix_as_net(const petri::PetriNet& net,
                                            const Prefix& prefix);

/// Maps a marking of prefix_as_net (a cut) back to a marking of the
/// original net.
[[nodiscard]] petri::Marking cut_to_marking(const petri::PetriNet& net,
                                            const Prefix& prefix,
                                            const petri::Marking& cut);

struct PrefixDeadlockResult {
  bool deadlock_found = false;
  std::optional<petri::Marking> witness;  // marking of the original net
  std::size_t cuts_explored = 0;
  bool limit_hit = false;
};

/// Deadlock detection through the complete prefix: the original net has a
/// reachable deadlock iff some reachable cut of the prefix maps to a dead
/// marking (completeness of the McMillan prefix). `prefix` must have been
/// built without hitting its caps.
[[nodiscard]] PrefixDeadlockResult deadlock_via_prefix(
    const petri::PetriNet& net, const Prefix& prefix,
    std::size_t max_cuts = 10'000'000,
    const util::CancelToken* cancel = nullptr);

}  // namespace gpo::unfold
