#include "unfold/unfolding.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

#include "petri/builder.hpp"
#include "reach/explorer.hpp"
#include "util/stopwatch.hpp"

namespace gpo::unfold {

using petri::Marking;
using petri::PetriNet;
using petri::PlaceId;
using petri::TransitionId;

namespace {

/// Sorted-vector intersection.
std::vector<std::size_t> intersect(const std::vector<std::size_t>& a,
                                   const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

struct Candidate {
  std::size_t local_size;  // |[e]| (for the McMillan order)
  TransitionId transition;
  std::vector<std::size_t> preset;  // sorted condition ids

  bool operator>(const Candidate& o) const {
    if (local_size != o.local_size) return local_size > o.local_size;
    if (transition != o.transition) return transition > o.transition;
    return preset > o.preset;
  }
};

class Unfolder {
 public:
  Unfolder(const PetriNet& net, const UnfoldOptions& options)
      : net_(net), options_(options) {
    if (obs::kHotCountersEnabled && options_.metrics != nullptr) {
      live_events_ = &options_.metrics->counter("progress.states");
      live_queue_ = &options_.metrics->gauge("progress.frontier");
    }
  }

  Prefix run() {
    // Initial conditions: one per initially marked place, pairwise co.
    for (std::size_t p = net_.initial_marking().find_first();
         p < net_.place_count(); p = net_.initial_marking().find_next(p + 1))
      prefix_.conditions.push_back(
          {static_cast<PlaceId>(p), kNoEvent});
    const std::size_t k = prefix_.conditions.size();
    co_.assign(k, {});
    extendable_.assign(k, true);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < k; ++j)
        if (i != j) co_[i].push_back(j);

    seen_marks_.emplace(net_.initial_marking(), 0);
    for (std::size_t c = 0; c < k; ++c) find_extensions(c);

    while (!queue_.empty()) {
      if (prefix_.events.size() >= options_.max_events ||
          prefix_.conditions.size() >= options_.max_conditions ||
          timer_.elapsed_seconds() > options_.max_seconds ||
          util::cancel_requested(options_.cancel)) {
        prefix_.limit_hit = true;
        break;
      }
      Candidate cand = queue_.top();
      queue_.pop();
      insert_event(cand);
      if (live_queue_ != nullptr)
        live_queue_->set(static_cast<double>(queue_.size()));
    }
    if (options_.metrics != nullptr) {
      obs::MetricsRegistry& reg = *options_.metrics;
      const std::string p = options_.metrics_prefix;
      reg.counter(p + "events").store(prefix_.events.size());
      reg.counter(p + "conditions").store(prefix_.conditions.size());
      reg.counter(p + "cutoffs").store(prefix_.cutoff_count);
      std::size_t prefix_bytes = 0;
      for (const Event& e : prefix_.events)
        prefix_bytes += sizeof(Event) + e.mark.memory_bytes() +
                        (e.preset.capacity() + e.postset.capacity()) *
                            sizeof(std::size_t);
      prefix_bytes += prefix_.conditions.size() * sizeof(Condition);
      reg.gauge("mem." + p + "prefix_bytes")
          .set(static_cast<double>(prefix_bytes));
    }
    return std::move(prefix_);
  }

 private:
  /// Local configuration of a would-be event with the given preset: union of
  /// the producers' local configurations (event indices, sorted).
  std::vector<std::size_t> config_of(const std::vector<std::size_t>& preset)
      const {
    std::vector<std::size_t> config;
    for (std::size_t c : preset) {
      std::size_t producer = prefix_.conditions[c].producer;
      if (producer == kNoEvent) continue;
      std::vector<std::size_t> merged;
      std::set_union(config.begin(), config.end(),
                     configs_[producer].begin(), configs_[producer].end(),
                     std::back_inserter(merged));
      config = std::move(merged);
    }
    return config;
  }

  /// Mark(C ∪ {e}) where the event itself consumes `preset` and produces
  /// into `post_places`.
  Marking mark_of(const std::vector<std::size_t>& config,
                  const std::vector<std::size_t>& preset,
                  const petri::Transition& tr) const {
    std::vector<bool> present(prefix_.conditions.size(), false);
    for (std::size_t c = 0; c < prefix_.conditions.size(); ++c)
      if (prefix_.conditions[c].producer == kNoEvent) present[c] = true;
    for (std::size_t e : config) {
      for (std::size_t c : prefix_.events[e].preset) present[c] = false;
      for (std::size_t c : prefix_.events[e].postset) present[c] = true;
    }
    for (std::size_t c : preset) present[c] = false;
    Marking m(net_.place_count());
    for (std::size_t c = 0; c < prefix_.conditions.size(); ++c)
      if (present[c]) m.set(prefix_.conditions[c].place);
    m |= tr.post_bits;
    return m;
  }

  void insert_event(const Candidate& cand) {
    const petri::Transition& tr = net_.transition(cand.transition);
    std::vector<std::size_t> config = config_of(cand.preset);
    Event ev;
    ev.transition = cand.transition;
    ev.preset = cand.preset;
    ev.local_size = config.size() + 1;
    ev.mark = mark_of(config, cand.preset, tr);

    // McMillan cut-off: a smaller configuration already produced this mark.
    auto it = seen_marks_.find(ev.mark);
    ev.cutoff = it != seen_marks_.end() && it->second < ev.local_size;
    if (it == seen_marks_.end()) seen_marks_.emplace(ev.mark, ev.local_size);

    std::size_t eid = prefix_.events.size();
    config.push_back(eid);  // [e] = predecessors + e (eid is the maximum)
    configs_.push_back(std::move(config));

    // Output conditions.
    std::vector<std::size_t> common;
    bool first = true;
    for (std::size_t b : cand.preset) {
      common = first ? co_[b] : intersect(common, co_[b]);
      first = false;
    }
    std::vector<std::size_t> outputs;
    for (PlaceId p : tr.post) {
      std::size_t cid = prefix_.conditions.size();
      prefix_.conditions.push_back({p, eid});
      co_.emplace_back();
      extendable_.push_back(!ev.cutoff);
      outputs.push_back(cid);
    }
    for (std::size_t o : outputs) {
      for (std::size_t sibling : outputs)
        if (sibling != o) co_[o].push_back(sibling);
      for (std::size_t c : common) {
        co_[o].push_back(c);
        co_[c].push_back(o);  // o has the max index: stays sorted
      }
      std::sort(co_[o].begin(), co_[o].end());
    }

    ev.postset = outputs;
    bool cutoff = ev.cutoff;
    prefix_.events.push_back(std::move(ev));
    if (live_events_ != nullptr) live_events_->add();
    if (cutoff) {
      ++prefix_.cutoff_count;
      return;
    }
    for (std::size_t o : outputs) find_extensions(o);
  }

  /// Enqueues every possible extension whose preset contains condition c.
  void find_extensions(std::size_t c) {
    PlaceId cp = prefix_.conditions[c].place;
    for (TransitionId t : net_.place(cp).post) {
      const petri::Transition& tr = net_.transition(t);
      // Anchor c on its place; choose co conditions for the other inputs.
      std::vector<PlaceId> rest;
      for (PlaceId p : tr.pre)
        if (p != cp) rest.push_back(p);
      std::vector<std::size_t> chosen{c};
      search_presets(t, rest, 0, chosen, co_[c]);
    }
  }

  void search_presets(TransitionId t, const std::vector<PlaceId>& rest,
                      std::size_t idx, std::vector<std::size_t>& chosen,
                      const std::vector<std::size_t>& allowed) {
    if (idx == rest.size()) {
      Candidate cand;
      cand.transition = t;
      cand.preset = chosen;
      std::sort(cand.preset.begin(), cand.preset.end());
      if (!known_.insert({t, cand.preset}).second) return;
      cand.local_size = config_of(cand.preset).size() + 1;
      queue_.push(std::move(cand));
      return;
    }
    for (std::size_t d : allowed) {
      if (prefix_.conditions[d].place != rest[idx] || !extendable_[d])
        continue;
      chosen.push_back(d);
      search_presets(t, rest, idx + 1, chosen, intersect(allowed, co_[d]));
      chosen.pop_back();
    }
  }

  const PetriNet& net_;
  UnfoldOptions options_;
  util::Stopwatch timer_;
  Prefix prefix_;
  std::vector<std::vector<std::size_t>> co_;       // per condition, sorted
  std::vector<bool> extendable_;                   // false past cut-offs
  std::vector<std::vector<std::size_t>> configs_;  // per event, sorted
  std::unordered_map<Marking, std::size_t> seen_marks_;
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      queue_;
  obs::Counter* live_events_ = nullptr;  // "progress.states"
  obs::Gauge* live_queue_ = nullptr;     // "progress.frontier"
  std::set<std::pair<TransitionId, std::vector<std::size_t>>> known_;
};

}  // namespace

Prefix unfold(const PetriNet& net, const UnfoldOptions& options) {
  return Unfolder(net, options).run();
}

PetriNet prefix_as_net(const PetriNet& net, const Prefix& prefix) {
  petri::NetBuilder b(std::string(net.name()) + "_prefix");
  // Names built with += (not operator+ chains): GCC 12's -Wrestrict fires a
  // bogus overlap warning on `const char* + std::string&&` at -O3.
  for (std::size_t c = 0; c < prefix.conditions.size(); ++c) {
    std::string cname = "c";
    cname += std::to_string(c);
    cname += '_';
    cname += net.place(prefix.conditions[c].place).name;
    b.add_place(cname, prefix.conditions[c].producer == kNoEvent);
  }
  for (std::size_t e = 0; e < prefix.events.size(); ++e) {
    std::string ename = "e";
    ename += std::to_string(e);
    ename += '_';
    ename += net.transition(prefix.events[e].transition).name;
    TransitionId t = b.add_transition(ename);
    for (std::size_t c : prefix.events[e].preset)
      b.add_input_arc(static_cast<PlaceId>(c), t);
    for (std::size_t c : prefix.events[e].postset)
      b.add_output_arc(t, static_cast<PlaceId>(c));
  }
  return b.build();
}

Marking cut_to_marking(const PetriNet& net, const Prefix& prefix,
                       const Marking& cut) {
  Marking m(net.place_count());
  for (std::size_t c = cut.find_first(); c < cut.size();
       c = cut.find_next(c + 1))
    m.set(prefix.conditions[c].place);
  return m;
}

}  // namespace gpo::unfold

namespace gpo::unfold {

PrefixDeadlockResult deadlock_via_prefix(const PetriNet& net,
                                         const Prefix& prefix,
                                         std::size_t max_cuts,
                                         const util::CancelToken* cancel) {
  PrefixDeadlockResult result;
  PetriNet occurrence = prefix_as_net(net, prefix);
  reach::ExplorerOptions opt;
  opt.max_states = max_cuts;
  opt.cancel = cancel;
  // Note: no stop_at_first_deadlock — a deadlock of the *occurrence net*
  // (a cut-off frontier) is not a deadlock of the original net; only the
  // predicate below decides.
  opt.bad_state = [&](const Marking& cut) {
    Marking m = cut_to_marking(net, prefix, cut);
    if (!net.is_deadlocked(m)) return false;
    if (!result.deadlock_found) {
      result.deadlock_found = true;
      result.witness = std::move(m);
    }
    return true;
  };
  auto r = reach::ExplicitExplorer(occurrence, opt).explore();
  result.cuts_explored = r.state_count;
  result.limit_hit = r.limit_hit;
  return result;
}

}  // namespace gpo::unfold
