#include "timed/parse.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "parser/net_format.hpp"

namespace gpo::timed {

namespace {

struct TimeLine {
  std::size_t lineno;
  std::string transition;
  TimeInterval interval;
};

/// Splits the document into base .net text and timing annotations.
std::pair<std::string, std::vector<TimeLine>> split_time_lines(
    std::string_view text) {
  std::string base;
  std::vector<TimeLine> times;
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;

    std::istringstream ss{std::string(line)};
    std::string kw;
    ss >> kw;
    if (kw != "time") {
      base += line;
      base += '\n';
      continue;
    }
    std::string name, eft_s, lft_s;
    if (!(ss >> name >> eft_s >> lft_s))
      throw parser::ParseError(lineno,
                               "expected: time <transition> <eft> <lft|inf>");
    std::string rest;
    if (ss >> rest && rest[0] != '#' && rest[0] != ';')
      throw parser::ParseError(lineno, "trailing tokens after time line");
    TimeLine tl;
    tl.lineno = lineno;
    tl.transition = name;
    try {
      tl.interval.eft = std::stoll(eft_s);
      tl.interval.lft =
          lft_s == "inf" ? Bound::inf() : Bound{std::stoll(lft_s), false};
    } catch (const std::exception&) {
      throw parser::ParseError(lineno, "malformed time bound");
    }
    times.push_back(std::move(tl));
  }
  return {std::move(base), std::move(times)};
}

}  // namespace

TimedNet parse_timed_net(std::string_view text) {
  auto [base, times] = split_time_lines(text);
  petri::PetriNet net = parser::parse_net(base);
  std::vector<TimeInterval> intervals(net.transition_count());
  std::vector<bool> annotated(net.transition_count(), false);
  for (const TimeLine& tl : times) {
    petri::TransitionId t = net.find_transition(tl.transition);
    if (t == petri::kInvalidTransition)
      throw parser::ParseError(tl.lineno,
                               "time line names unknown transition '" +
                                   tl.transition + "'");
    if (annotated[t])
      throw parser::ParseError(tl.lineno, "duplicate time line for '" +
                                              tl.transition + "'");
    annotated[t] = true;
    intervals[t] = tl.interval;
  }
  return TimedNet(std::move(net), std::move(intervals));
}

TimedNet parse_timed_net_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open timed net file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_timed_net(ss.str());
}

std::string timed_net_to_string(const TimedNet& tnet) {
  std::string out = parser::net_to_string(tnet.net());
  for (petri::TransitionId t = 0; t < tnet.net().transition_count(); ++t) {
    const TimeInterval& iv = tnet.interval(t);
    if (iv.eft == 0 && iv.lft.infinite) continue;  // default
    out += "time " + tnet.net().transition(t).name + " " +
           std::to_string(iv.eft) + " " +
           (iv.lft.infinite ? std::string("inf")
                            : std::to_string(iv.lft.value)) +
           "\n";
  }
  return out;
}

}  // namespace gpo::timed
