// Time Petri nets — the extension the paper names as future work in its
// conclusions ("efficient timing verification of concurrent systems, modeled
// as Timed Petri nets", citing Verlind/de Jong/Lin DAC'96 and
// Semenov/Yakovlev DAC'96).
//
// The model is Merlin–Farber: every transition carries a static firing
// interval [eft, lft] — once continuously enabled for eft time units it may
// fire, and it must fire (or be disabled) before lft elapses. Analysis uses
// the Berthomieu–Diaz *state class graph*: a state class is a marking plus a
// firing domain (a difference-bound constraint system over the remaining
// firing delays of the enabled transitions), canonicalized by
// all-pairs-shortest-path closure so that equal classes are detected
// syntactically. Timing both prunes behaviour (a slow conflict competitor
// can become unfirable) and can introduce timed deadlocks.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "petri/net.hpp"

namespace gpo::timed {

/// An integer time bound, possibly +infinity (for lft only).
struct Bound {
  std::int64_t value = 0;
  bool infinite = false;

  static Bound inf() { return Bound{0, true}; }
  friend bool operator==(const Bound&, const Bound&) = default;
};

/// Static firing interval of one transition: eft <= delay <= lft.
struct TimeInterval {
  std::int64_t eft = 0;
  Bound lft = Bound::inf();
};

/// A safe Petri net with one static interval per transition.
class TimedNet {
 public:
  TimedNet(petri::PetriNet net, std::vector<TimeInterval> intervals);

  [[nodiscard]] const petri::PetriNet& net() const { return net_; }
  [[nodiscard]] const TimeInterval& interval(petri::TransitionId t) const {
    return intervals_[t];
  }

 private:
  petri::PetriNet net_;
  std::vector<TimeInterval> intervals_;
};

/// A state class: a marking plus the canonical firing domain over the
/// enabled transitions. `dbm` is indexed over `enabled` plus a 0 reference
/// row/column: dbm[i][j] bounds theta_i - theta_j (theta_0 = 0), with
/// kDbmInf as +infinity. Canonical (shortest-path closed) so equality is
/// structural.
struct StateClass {
  petri::Marking marking;
  std::vector<petri::TransitionId> enabled;  // ascending
  std::vector<std::int64_t> dbm;             // (k+1)x(k+1), row-major

  bool operator==(const StateClass& o) const {
    return marking == o.marking && enabled == o.enabled && dbm == o.dbm;
  }
  [[nodiscard]] std::size_t hash() const;
};

inline constexpr std::int64_t kDbmInf =
    std::numeric_limits<std::int64_t>::max() / 4;

struct TimedOptions {
  std::size_t max_classes = std::numeric_limits<std::size_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  bool build_graph = false;
};

struct TimedResult {
  std::size_t class_count = 0;
  std::size_t edge_count = 0;
  bool deadlock_found = false;
  /// Marking of the first deadlocked class (no transition firable).
  std::optional<petri::Marking> deadlock_marking;
  /// Sequence of transitions leading into the deadlocked class.
  std::vector<petri::TransitionId> counterexample;
  /// Distinct markings seen across all classes (== untimed reachable set
  /// when all intervals are [0, inf); a subset when timing prunes paths).
  std::size_t distinct_markings = 0;
  bool limit_hit = false;
  double seconds = 0.0;
};

/// Berthomieu–Diaz state-class-graph construction with deadlock detection.
class StateClassExplorer {
 public:
  explicit StateClassExplorer(const TimedNet& tnet, TimedOptions options = {});

  [[nodiscard]] TimedResult explore() const;

  /// The initial state class (exposed for tests).
  [[nodiscard]] StateClass initial_class() const;

  /// Transitions firable from the class (minimal-delay semantics): t is
  /// firable iff the domain restricted with theta_t <= theta_j for every
  /// enabled j stays consistent.
  [[nodiscard]] std::vector<petri::TransitionId> firable(
      const StateClass& c) const;

  /// Successor class after firing `t` (must be firable).
  [[nodiscard]] StateClass fire(const StateClass& c,
                                petri::TransitionId t) const;

 private:
  const TimedNet& tnet_;
  TimedOptions options_;
};

}  // namespace gpo::timed
