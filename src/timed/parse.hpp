// Textual format for Time Petri nets: the plain .net language
// (parser/net_format.hpp) extended with timing annotation lines
//
//   time <transition> <eft> <lft|inf>
//
// which may appear anywhere after the base declarations. Unannotated
// transitions default to [0, inf) — i.e. untimed behaviour.
#pragma once

#include <string>
#include <string_view>

#include "parser/net_format.hpp"  // ParseError
#include "timed/timed_net.hpp"

namespace gpo::timed {

/// Parses a .net document with optional `time` lines. Throws
/// parser::ParseError / petri::NetError like the base parser, and
/// std::invalid_argument for inconsistent intervals.
[[nodiscard]] TimedNet parse_timed_net(std::string_view text);

[[nodiscard]] TimedNet parse_timed_net_file(const std::string& path);

/// Serializes net + intervals in the format above (omitting [0, inf)
/// defaults).
[[nodiscard]] std::string timed_net_to_string(const TimedNet& tnet);

}  // namespace gpo::timed
