#include "timed/timed_net.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "util/hash.hpp"
#include "util/stopwatch.hpp"

namespace gpo::timed {

using petri::Marking;
using petri::TransitionId;

TimedNet::TimedNet(petri::PetriNet net, std::vector<TimeInterval> intervals)
    : net_(std::move(net)), intervals_(std::move(intervals)) {
  if (intervals_.size() != net_.transition_count())
    throw std::invalid_argument(
        "TimedNet: one interval per transition required");
  for (const TimeInterval& iv : intervals_) {
    if (iv.eft < 0)
      throw std::invalid_argument("TimedNet: negative earliest firing time");
    if (!iv.lft.infinite && iv.lft.value < iv.eft)
      throw std::invalid_argument("TimedNet: lft < eft");
  }
}

std::size_t StateClass::hash() const {
  std::size_t h = marking.hash();
  for (TransitionId t : enabled) util::hash_combine(h, t);
  for (std::int64_t v : dbm)
    util::hash_combine(h, static_cast<std::size_t>(util::mix64(
                              static_cast<std::uint64_t>(v))));
  return h;
}

namespace {

/// Square DBM view over a flat vector; n includes the reference variable 0.
class Dbm {
 public:
  Dbm(std::vector<std::int64_t>& data, std::size_t n) : d_(data), n_(n) {}

  std::int64_t& at(std::size_t i, std::size_t j) { return d_[i * n_ + j]; }
  [[nodiscard]] std::int64_t at(std::size_t i, std::size_t j) const {
    return d_[i * n_ + j];
  }

  static std::int64_t add(std::int64_t a, std::int64_t b) {
    if (a >= kDbmInf || b >= kDbmInf) return kDbmInf;
    return a + b;
  }

  /// Floyd–Warshall closure; returns false when inconsistent (negative
  /// cycle).
  bool close() {
    for (std::size_t k = 0; k < n_; ++k)
      for (std::size_t i = 0; i < n_; ++i) {
        if (at(i, k) >= kDbmInf) continue;
        for (std::size_t j = 0; j < n_; ++j) {
          std::int64_t via = add(at(i, k), at(k, j));
          if (via < at(i, j)) at(i, j) = via;
        }
      }
    for (std::size_t i = 0; i < n_; ++i)
      if (at(i, i) < 0) return false;
    return true;
  }

 private:
  std::vector<std::int64_t>& d_;
  std::size_t n_;
};

}  // namespace

StateClassExplorer::StateClassExplorer(const TimedNet& tnet,
                                       TimedOptions options)
    : tnet_(tnet), options_(options) {}

StateClass StateClassExplorer::initial_class() const {
  const petri::PetriNet& net = tnet_.net();
  StateClass c;
  c.marking = net.initial_marking();
  c.enabled = net.enabled_transitions(c.marking);
  const std::size_t n = c.enabled.size() + 1;
  c.dbm.assign(n * n, kDbmInf);
  Dbm d(c.dbm, n);
  for (std::size_t i = 0; i < n; ++i) d.at(i, i) = 0;
  for (std::size_t i = 0; i < c.enabled.size(); ++i) {
    const TimeInterval& iv = tnet_.interval(c.enabled[i]);
    d.at(i + 1, 0) = iv.lft.infinite ? kDbmInf : iv.lft.value;
    d.at(0, i + 1) = -iv.eft;
  }
  d.close();
  return c;
}

std::vector<TransitionId> StateClassExplorer::firable(
    const StateClass& c) const {
  std::vector<TransitionId> out;
  const std::size_t k = c.enabled.size();
  const std::size_t n = k + 1;
  for (std::size_t f = 0; f < k; ++f) {
    // Restrict with theta_f <= theta_j for every other enabled j and test
    // consistency.
    std::vector<std::int64_t> copy = c.dbm;
    Dbm d(copy, n);
    for (std::size_t j = 0; j < k; ++j)
      if (j != f) d.at(f + 1, j + 1) = std::min(d.at(f + 1, j + 1),
                                                std::int64_t{0});
    if (d.close()) out.push_back(c.enabled[f]);
  }
  return out;
}

StateClass StateClassExplorer::fire(const StateClass& c,
                                    TransitionId t) const {
  const petri::PetriNet& net = tnet_.net();
  const std::size_t k = c.enabled.size();
  const std::size_t n = k + 1;
  auto it = std::find(c.enabled.begin(), c.enabled.end(), t);
  if (it == c.enabled.end())
    throw std::invalid_argument("fire: transition not enabled in class");
  const std::size_t f = static_cast<std::size_t>(it - c.enabled.begin());

  // Constrained domain: t fires first.
  std::vector<std::int64_t> constrained = c.dbm;
  {
    Dbm d(constrained, n);
    for (std::size_t j = 0; j < k; ++j)
      if (j != f) d.at(f + 1, j + 1) = std::min(d.at(f + 1, j + 1),
                                                std::int64_t{0});
    if (!d.close())
      throw std::invalid_argument("fire: transition not firable in class");
  }
  Dbm dc(constrained, n);

  // Successor marking, and the intermediate marking m - •t that decides
  // which transitions count as newly enabled.
  StateClass next;
  next.marking = net.fire(t, c.marking);
  Marking intermediate = c.marking;
  intermediate -= net.transition(t).pre_bits;

  next.enabled = net.enabled_transitions(next.marking);
  const std::size_t k2 = next.enabled.size();
  const std::size_t n2 = k2 + 1;
  next.dbm.assign(n2 * n2, kDbmInf);
  Dbm dn(next.dbm, n2);
  for (std::size_t i = 0; i < n2; ++i) dn.at(i, i) = 0;

  // Position of each persistent transition in the old class.
  std::vector<std::ptrdiff_t> old_pos(k2, -1);
  for (std::size_t i = 0; i < k2; ++i) {
    TransitionId u = next.enabled[i];
    bool newly = (u == t) || !net.enabled(u, intermediate);
    if (newly) continue;
    auto pos = std::find(c.enabled.begin(), c.enabled.end(), u);
    if (pos != c.enabled.end()) old_pos[i] = pos - c.enabled.begin();
  }

  for (std::size_t i = 0; i < k2; ++i) {
    if (old_pos[i] < 0) {
      // Newly enabled: fresh static interval.
      const TimeInterval& iv = tnet_.interval(next.enabled[i]);
      dn.at(i + 1, 0) = iv.lft.infinite ? kDbmInf : iv.lft.value;
      dn.at(0, i + 1) = -iv.eft;
      continue;
    }
    // Persistent: theta' = theta - theta_f; bounds come from the
    // constrained domain relative to the fired transition.
    std::size_t oi = static_cast<std::size_t>(old_pos[i]) + 1;
    dn.at(i + 1, 0) = dc.at(oi, f + 1);
    dn.at(0, i + 1) = dc.at(f + 1, oi);
    for (std::size_t j = 0; j < k2; ++j) {
      if (j == i || old_pos[j] < 0) continue;
      std::size_t oj = static_cast<std::size_t>(old_pos[j]) + 1;
      dn.at(i + 1, j + 1) = dc.at(oi, oj);  // differences are shift-invariant
    }
  }
  dn.close();
  return next;
}

TimedResult StateClassExplorer::explore() const {
  TimedResult result;
  util::Stopwatch timer;

  struct ClassHash {
    std::size_t operator()(const StateClass& c) const { return c.hash(); }
  };
  std::unordered_map<StateClass, std::size_t, ClassHash> index;
  std::vector<StateClass> classes;
  struct Breadcrumb {
    std::size_t parent;
    TransitionId via;
  };
  std::vector<Breadcrumb> breadcrumbs;
  std::unordered_map<Marking, bool> markings_seen;

  auto intern = [&](StateClass&& c, std::size_t parent, TransitionId via) {
    auto [it, inserted] = index.try_emplace(std::move(c), classes.size());
    if (inserted) {
      classes.push_back(it->first);
      breadcrumbs.push_back({parent, via});
      markings_seen.emplace(it->first.marking, true);
    }
    return std::pair<std::size_t, bool>{it->second, inserted};
  };

  auto reconstruct = [&](std::size_t s) {
    std::vector<TransitionId> seq;
    while (s != 0) {
      seq.push_back(breadcrumbs[s].via);
      s = breadcrumbs[s].parent;
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  };

  std::deque<std::size_t> frontier;
  intern(initial_class(), 0, petri::kInvalidTransition);
  frontier.push_back(0);

  while (!frontier.empty()) {
    if (classes.size() > options_.max_classes ||
        timer.elapsed_seconds() > options_.max_seconds) {
      result.limit_hit = true;
      break;
    }
    std::size_t ci = frontier.front();
    frontier.pop_front();
    const StateClass c = classes[ci];  // copy: `classes` may grow below

    std::vector<TransitionId> fire_set = firable(c);
    if (fire_set.empty()) {
      if (!result.deadlock_found) {
        result.deadlock_found = true;
        result.deadlock_marking = c.marking;
        result.counterexample = reconstruct(ci);
      }
      continue;
    }
    for (TransitionId t : fire_set) {
      ++result.edge_count;
      auto [idx, fresh] = intern(fire(c, t), ci, t);
      if (fresh) frontier.push_back(idx);
    }
  }

  result.class_count = classes.size();
  result.distinct_markings = markings_seen.size();
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace gpo::timed
