#include "petri/conflict.hpp"

#include <algorithm>
#include <stdexcept>

namespace gpo::petri {

ConflictInfo::ConflictInfo(const PetriNet& net,
                           ConflictDefinition definition) {
  const std::size_t nt = net.transition_count();
  neighbors_.assign(nt, util::Bitset(nt));

  // Transitions sharing an input place are pairwise in conflict — unless the
  // refinement is active and the shared place is a self-loop for both
  // (neither firing can disable the other through it).
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    const auto& consumers = net.place(p).post;
    for (std::size_t i = 0; i < consumers.size(); ++i)
      for (std::size_t j = i + 1; j < consumers.size(); ++j) {
        TransitionId t = consumers[i], u = consumers[j];
        if (definition == ConflictDefinition::kIgnoreMutualSelfLoops &&
            net.transition(t).post_bits.test(p) &&
            net.transition(u).post_bits.test(p))
          continue;
        neighbors_[t].set(u);
        neighbors_[u].set(t);
      }
  }

  // Connected components of the conflict graph = maximal conflicting sets.
  component_of_.assign(nt, SIZE_MAX);
  for (TransitionId t = 0; t < nt; ++t) {
    if (component_of_[t] != SIZE_MAX) continue;
    std::size_t cid = components_.size();
    components_.emplace_back();
    std::vector<TransitionId> stack{t};
    component_of_[t] = cid;
    while (!stack.empty()) {
      TransitionId u = stack.back();
      stack.pop_back();
      components_[cid].push_back(u);
      const util::Bitset& nb = neighbors_[u];
      for (std::size_t v = nb.find_first(); v < nt; v = nb.find_next(v + 1)) {
        if (component_of_[v] == SIZE_MAX) {
          component_of_[v] = cid;
          stack.push_back(static_cast<TransitionId>(v));
        }
      }
    }
    std::sort(components_[cid].begin(), components_[cid].end());
  }
}

std::size_t ConflictInfo::choice_component_count() const {
  std::size_t n = 0;
  for (const auto& c : components_)
    if (c.size() > 1) ++n;
  return n;
}

namespace {

// Bron–Kerbosch with pivoting over the *complement* of the conflict graph
// restricted to `members`: maximal cliques of the complement are maximal
// independent sets of the conflict graph.
void bron_kerbosch(const std::vector<util::Bitset>& conflict_nb,
                   std::vector<TransitionId>& current,
                   std::vector<TransitionId> candidates,
                   std::vector<TransitionId> excluded, std::size_t universe,
                   std::vector<util::Bitset>& out) {
  if (candidates.empty() && excluded.empty()) {
    util::Bitset s(universe);
    for (TransitionId t : current) s.set(t);
    out.push_back(std::move(s));
    return;
  }
  // Pivot: a vertex from candidates ∪ excluded with the most complement
  // neighbours among candidates (fewest conflict edges), shrinking recursion.
  auto complement_degree = [&](TransitionId v) {
    std::size_t d = 0;
    for (TransitionId c : candidates)
      if (c != v && !conflict_nb[v].test(c)) ++d;
    return d;
  };
  TransitionId pivot = !candidates.empty() ? candidates.front()
                                           : excluded.front();
  std::size_t best = complement_degree(pivot);
  for (TransitionId v : candidates)
    if (auto d = complement_degree(v); d > best) best = d, pivot = v;
  for (TransitionId v : excluded)
    if (auto d = complement_degree(v); d > best) best = d, pivot = v;

  std::vector<TransitionId> order;
  for (TransitionId v : candidates)
    if (v == pivot || conflict_nb[pivot].test(v)) order.push_back(v);

  for (TransitionId v : order) {
    std::vector<TransitionId> next_cand, next_excl;
    for (TransitionId c : candidates)
      if (c != v && !conflict_nb[v].test(c)) next_cand.push_back(c);
    for (TransitionId c : excluded)
      if (c != v && !conflict_nb[v].test(c)) next_excl.push_back(c);
    current.push_back(v);
    bron_kerbosch(conflict_nb, current, std::move(next_cand),
                  std::move(next_excl), universe, out);
    current.pop_back();
    candidates.erase(std::find(candidates.begin(), candidates.end(), v));
    excluded.push_back(v);
  }
}

}  // namespace

std::vector<util::Bitset> ConflictInfo::maximal_independent_sets(
    std::size_t component) const {
  const auto& members = components_[component];
  std::vector<util::Bitset> out;
  if (members.size() == 1) {
    util::Bitset s(transition_count());
    s.set(members[0]);
    out.push_back(std::move(s));
    return out;
  }
  std::vector<TransitionId> current;
  bron_kerbosch(neighbors_, current, members, {}, transition_count(), out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<util::Bitset> ConflictInfo::maximal_conflict_free_sets(
    std::size_t cap) const {
  std::vector<util::Bitset> family{util::Bitset(transition_count())};
  for (std::size_t c = 0; c < components_.size(); ++c) {
    std::vector<util::Bitset> mis = maximal_independent_sets(c);
    if (family.size() * mis.size() > cap)
      throw std::length_error(
          "explicit r0 would exceed cap; use the BDD set-family "
          "representation for this net");
    std::vector<util::Bitset> next;
    next.reserve(family.size() * mis.size());
    for (const auto& f : family)
      for (const auto& m : mis) next.push_back(f | m);
    family = std::move(next);
  }
  std::sort(family.begin(), family.end());
  return family;
}

}  // namespace gpo::petri
