#include "petri/builder.hpp"

#include <algorithm>
#include <set>

namespace gpo::petri {

PlaceId NetBuilder::add_place(const std::string& name, bool marked) {
  if (place_index_.contains(name))
    throw NetError("duplicate place name: " + name);
  PlaceId id = static_cast<PlaceId>(place_names_.size());
  place_names_.push_back(name);
  marked_.push_back(marked);
  place_index_.emplace(name, id);
  return id;
}

TransitionId NetBuilder::add_transition(const std::string& name) {
  if (transition_index_.contains(name))
    throw NetError("duplicate transition name: " + name);
  TransitionId id = static_cast<TransitionId>(transition_names_.size());
  transition_names_.push_back(name);
  transition_index_.emplace(name, id);
  return id;
}

void NetBuilder::add_input_arc(PlaceId p, TransitionId t) {
  if (p >= place_names_.size()) throw NetError("input arc: unknown place id");
  if (t >= transition_names_.size())
    throw NetError("input arc: unknown transition id");
  input_arcs_.push_back({p, t});
}

void NetBuilder::add_output_arc(TransitionId t, PlaceId p) {
  if (p >= place_names_.size()) throw NetError("output arc: unknown place id");
  if (t >= transition_names_.size())
    throw NetError("output arc: unknown transition id");
  output_arcs_.push_back({p, t});
}

void NetBuilder::connect(TransitionId t, const std::vector<PlaceId>& pre,
                         const std::vector<PlaceId>& post) {
  for (PlaceId p : pre) add_input_arc(p, t);
  for (PlaceId p : post) add_output_arc(t, p);
}

PlaceId NetBuilder::place_id(const std::string& name) const {
  auto it = place_index_.find(name);
  if (it == place_index_.end()) throw NetError("unknown place: " + name);
  return it->second;
}

TransitionId NetBuilder::transition_id(const std::string& name) const {
  auto it = transition_index_.find(name);
  if (it == transition_index_.end())
    throw NetError("unknown transition: " + name);
  return it->second;
}

PetriNet NetBuilder::build(bool allow_empty_presets) const {
  PetriNet net;
  net.name_ = name_;

  net.places_.resize(place_names_.size());
  for (PlaceId p = 0; p < place_names_.size(); ++p)
    net.places_[p].name = place_names_[p];

  net.transitions_.resize(transition_names_.size());
  for (TransitionId t = 0; t < transition_names_.size(); ++t) {
    net.transitions_[t].name = transition_names_[t];
    net.transitions_[t].pre_bits = Marking(place_names_.size());
    net.transitions_[t].post_bits = Marking(place_names_.size());
  }

  std::set<std::pair<PlaceId, TransitionId>> seen_in;
  for (const Arc& a : input_arcs_) {
    if (!seen_in.insert({a.place, a.transition}).second)
      throw NetError("duplicate input arc " + place_names_[a.place] + " -> " +
                     transition_names_[a.transition]);
    net.transitions_[a.transition].pre.push_back(a.place);
    net.transitions_[a.transition].pre_bits.set(a.place);
    net.places_[a.place].post.push_back(a.transition);
  }
  std::set<std::pair<PlaceId, TransitionId>> seen_out;
  for (const Arc& a : output_arcs_) {
    if (!seen_out.insert({a.place, a.transition}).second)
      throw NetError("duplicate output arc " +
                     transition_names_[a.transition] + " -> " +
                     place_names_[a.place]);
    net.transitions_[a.transition].post.push_back(a.place);
    net.transitions_[a.transition].post_bits.set(a.place);
    net.places_[a.place].pre.push_back(a.transition);
  }

  for (auto& pl : net.places_) {
    std::sort(pl.pre.begin(), pl.pre.end());
    std::sort(pl.post.begin(), pl.post.end());
  }
  for (TransitionId t = 0; t < net.transitions_.size(); ++t) {
    auto& tr = net.transitions_[t];
    std::sort(tr.pre.begin(), tr.pre.end());
    std::sort(tr.post.begin(), tr.post.end());
    if (tr.pre.empty() && !allow_empty_presets)
      throw NetError("transition " + tr.name +
                     " has no input places (source transitions are not "
                     "allowed in safe nets)");
  }

  net.initial_ = Marking(place_names_.size());
  for (PlaceId p = 0; p < marked_.size(); ++p)
    if (marked_[p]) net.initial_.set(p);

  return net;
}

}  // namespace gpo::petri
