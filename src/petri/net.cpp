#include "petri/net.hpp"

namespace gpo::petri {

PlaceId PetriNet::find_place(std::string_view name) const {
  for (PlaceId p = 0; p < places_.size(); ++p)
    if (places_[p].name == name) return p;
  return kInvalidPlace;
}

TransitionId PetriNet::find_transition(std::string_view name) const {
  for (TransitionId t = 0; t < transitions_.size(); ++t)
    if (transitions_[t].name == name) return t;
  return kInvalidTransition;
}

Marking PetriNet::fire(TransitionId t, const Marking& m, bool* unsafe) const {
  const Transition& tr = transitions_[t];
  Marking next = m;
  next -= tr.pre_bits;
  if (unsafe != nullptr && next.intersects(tr.post_bits)) {
    // A token is already present in an output place that is not also being
    // consumed: the classical firing rule would create a second token.
    *unsafe = true;
  }
  next |= tr.post_bits;
  return next;
}

std::vector<TransitionId> PetriNet::enabled_transitions(
    const Marking& m) const {
  std::vector<TransitionId> out;
  enabled_transitions(m, out);
  return out;
}

void PetriNet::enabled_transitions(const Marking& m,
                                   std::vector<TransitionId>& out) const {
  out.clear();
  for (TransitionId t = 0; t < transitions_.size(); ++t)
    if (enabled(t, m)) out.push_back(t);
}

bool PetriNet::is_deadlocked(const Marking& m) const {
  for (TransitionId t = 0; t < transitions_.size(); ++t)
    if (enabled(t, m)) return false;
  return true;
}

}  // namespace gpo::petri
