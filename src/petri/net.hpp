// Immutable safe-Petri-net structure (Definition 2.1 of the paper): places,
// transitions, flow relation and initial marking. Nets are constructed through
// NetBuilder (builder.hpp) which validates the structure once; afterwards the
// net is read-only and safe to share across analysis engines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitset.hpp"

namespace gpo::petri {

using PlaceId = std::uint32_t;
using TransitionId = std::uint32_t;

inline constexpr PlaceId kInvalidPlace = UINT32_MAX;
inline constexpr TransitionId kInvalidTransition = UINT32_MAX;

/// A marking of a safe net: one bit per place ("does the place hold a token").
using Marking = util::Bitset;

struct Place {
  std::string name;
  /// Input transitions •p (transitions that deposit a token here), sorted.
  std::vector<TransitionId> pre;
  /// Output transitions p• (transitions that consume a token from here), sorted.
  std::vector<TransitionId> post;
};

struct Transition {
  std::string name;
  /// Input places •t, sorted.
  std::vector<PlaceId> pre;
  /// Output places t•, sorted.
  std::vector<PlaceId> post;
  /// Same sets as bitsets over places, for O(words) enabling tests.
  Marking pre_bits;
  Marking post_bits;
};

class NetBuilder;

/// Immutable Petri net. |P| = place_count(), |T| = transition_count().
class PetriNet {
 public:
  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] std::size_t place_count() const { return places_.size(); }
  [[nodiscard]] std::size_t transition_count() const {
    return transitions_.size();
  }

  [[nodiscard]] const Place& place(PlaceId p) const { return places_[p]; }
  [[nodiscard]] const Transition& transition(TransitionId t) const {
    return transitions_[t];
  }
  [[nodiscard]] const std::vector<Place>& places() const { return places_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

  [[nodiscard]] const Marking& initial_marking() const { return initial_; }

  /// Looks a place up by name; returns kInvalidPlace if absent.
  [[nodiscard]] PlaceId find_place(std::string_view name) const;
  /// Looks a transition up by name; returns kInvalidTransition if absent.
  [[nodiscard]] TransitionId find_transition(std::string_view name) const;

  /// Enabling rule (Definition 2.3): every input place of t is marked.
  [[nodiscard]] bool enabled(TransitionId t, const Marking& m) const {
    return transitions_[t].pre_bits.is_subset_of(m);
  }

  /// Firing rule (Definition 2.4) for safe nets. Precondition: enabled(t, m).
  /// Returns the successor marking. If firing would place a second token in
  /// some place (a 1-safeness violation), sets *unsafe to true when provided.
  [[nodiscard]] Marking fire(TransitionId t, const Marking& m,
                             bool* unsafe = nullptr) const;

  /// All transitions enabled in m, ascending.
  [[nodiscard]] std::vector<TransitionId> enabled_transitions(
      const Marking& m) const;

  /// Same, into a caller-provided scratch vector (cleared first). The
  /// allocation-free variant for per-state hot loops: callers keep one
  /// vector alive across states and its capacity is reused.
  void enabled_transitions(const Marking& m,
                           std::vector<TransitionId>& out) const;

  /// True if no transition is enabled in m (a classical deadlock).
  [[nodiscard]] bool is_deadlocked(const Marking& m) const;

 private:
  friend class NetBuilder;
  PetriNet() = default;

  std::string name_;
  std::vector<Place> places_;
  std::vector<Transition> transitions_;
  Marking initial_;
};

}  // namespace gpo::petri
