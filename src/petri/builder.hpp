// Mutable construction interface for PetriNet. All model generators, the
// parser and the tests build nets through this class; build() performs the
// single validation pass (unique names, arc sanity, no duplicate arcs,
// non-empty presets) so the analysis engines can assume a well-formed net.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "petri/net.hpp"

namespace gpo::petri {

/// Thrown by NetBuilder on structurally invalid nets (duplicate names,
/// unknown arc endpoints, duplicate arcs, transitions without input places).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class NetBuilder {
 public:
  explicit NetBuilder(std::string name = "net") : name_(std::move(name)) {}

  /// Adds a place; `marked` puts a token in it in the initial marking.
  PlaceId add_place(const std::string& name, bool marked = false);

  TransitionId add_transition(const std::string& name);

  /// Arc place -> transition (p becomes an input place of t).
  void add_input_arc(PlaceId p, TransitionId t);
  /// Arc transition -> place (p becomes an output place of t).
  void add_output_arc(TransitionId t, PlaceId p);

  /// Convenience: declares •t and t• wholesale.
  void connect(TransitionId t, const std::vector<PlaceId>& pre,
               const std::vector<PlaceId>& post);

  [[nodiscard]] PlaceId place_id(const std::string& name) const;
  [[nodiscard]] TransitionId transition_id(const std::string& name) const;
  [[nodiscard]] bool has_place(const std::string& name) const {
    return place_index_.contains(name);
  }
  [[nodiscard]] bool has_transition(const std::string& name) const {
    return transition_index_.contains(name);
  }
  [[nodiscard]] std::size_t place_count() const { return place_names_.size(); }
  [[nodiscard]] std::size_t transition_count() const {
    return transition_names_.size();
  }

  void set_marked(PlaceId p, bool marked = true) { marked_.at(p) = marked; }

  /// Validates and produces the immutable net. The builder may be reused
  /// afterwards (build() does not consume it).
  ///
  /// `allow_empty_presets`: source transitions (•t = ∅) are always enabled
  /// and break safeness immediately; they are rejected by default.
  [[nodiscard]] PetriNet build(bool allow_empty_presets = false) const;

 private:
  struct Arc {
    PlaceId place;
    TransitionId transition;
  };

  std::string name_;
  std::vector<std::string> place_names_;
  std::vector<std::string> transition_names_;
  std::vector<bool> marked_;
  std::vector<Arc> input_arcs_;   // place -> transition
  std::vector<Arc> output_arcs_;  // transition -> place
  std::unordered_map<std::string, PlaceId> place_index_;
  std::unordered_map<std::string, TransitionId> transition_index_;
};

}  // namespace gpo::petri
