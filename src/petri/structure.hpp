// Structural (state-space-free) analysis of safe Petri nets: siphons, traps
// and place invariants. These are the classical complements to reachability
// analysis — cheap certificates that hold for *every* reachable marking:
//
//  * a siphon (•S ⊆ S•) that is empty stays empty forever — an unmarked
//    siphon permanently disables all its output transitions, and every dead
//    marking's unmarked-place set contains the preset of each transition;
//  * a trap (S• ⊆ •S) that is marked stays marked forever;
//  * the siphon–trap property ("every siphon contains an initially marked
//    trap") gives a structural deadlock-freedom certificate for free-choice
//    nets (Commoner's theorem) and a useful heuristic beyond them;
//  * a place invariant y (an integer vector with y·C = 0 for the incidence
//    matrix C) satisfies y·m = y·m0 for every reachable m; nonnegative
//    invariants (P-semiflows, computed with the Farkas algorithm) with
//    y·m0 = 1 certify 1-safeness of their support.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "petri/net.hpp"
#include "util/bitset.hpp"

namespace gpo::petri {

/// Set-of-places predicate: •S ⊆ S• — every transition producing into S also
/// consumes from S. The empty set is a siphon by convention.
[[nodiscard]] bool is_siphon(const PetriNet& net, const util::Bitset& places);

/// Set-of-places predicate: S• ⊆ •S — every transition consuming from S also
/// produces into S.
[[nodiscard]] bool is_trap(const PetriNet& net, const util::Bitset& places);

/// The unique maximal siphon contained in `candidate` (greatest fixpoint:
/// repeatedly drop places some producer of which does not consume from the
/// set). May be empty.
[[nodiscard]] util::Bitset maximal_siphon_within(const PetriNet& net,
                                                 const util::Bitset& candidate);

/// The unique maximal trap contained in `candidate`.
[[nodiscard]] util::Bitset maximal_trap_within(const PetriNet& net,
                                               const util::Bitset& candidate);

/// Enumerates minimal (inclusion-wise) nonempty siphons, up to `max_count`
/// of them. Exponential worst case — intended for the moderate nets of this
/// repository; returns what it found and sets *complete accordingly.
[[nodiscard]] std::vector<util::Bitset> minimal_siphons(
    const PetriNet& net, std::size_t max_count = 4096,
    bool* complete = nullptr);

/// True when every transition's conflict cluster is free-choice: whenever
/// •t ∩ •u != ∅ then •t = •u. Precondition for Commoner's theorem.
[[nodiscard]] bool is_free_choice(const PetriNet& net);

struct SiphonTrapResult {
  /// Every minimal siphon contains a trap marked at m0.
  bool holds = false;
  /// A siphon violating the property (no marked trap inside), if any.
  std::optional<util::Bitset> counterexample_siphon;
  /// Whether the minimal-siphon enumeration was exhaustive; if not, holds
  /// refers only to the enumerated ones.
  bool exhaustive = true;
};

/// The siphon–trap check. For free-choice nets (is_free_choice), holds ==
/// true implies deadlock freedom (Commoner); for general nets it remains a
/// sufficient condition for every siphon staying marked.
[[nodiscard]] SiphonTrapResult siphon_trap_property(const PetriNet& net,
                                                    std::size_t max_siphons =
                                                        4096);

/// An integer place vector with y·C = 0: y·m is constant over reachability.
struct PlaceInvariant {
  std::vector<std::int64_t> weights;  // indexed by place
  /// y·m0 — the conserved quantity.
  std::int64_t initial_value = 0;
};

/// A basis of the left integer null space of the incidence matrix
/// (fraction-free Gaussian elimination). Entries may be negative.
[[nodiscard]] std::vector<PlaceInvariant> place_invariant_basis(
    const PetriNet& net);

/// Minimal-support nonnegative invariants (P-semiflows) via the Farkas
/// algorithm, capped at `max_count` rows to bound the classic intermediate
/// blowup; sets *complete accordingly.
[[nodiscard]] std::vector<PlaceInvariant> place_semiflows(
    const PetriNet& net, std::size_t max_count = 4096,
    bool* complete = nullptr);

/// Evaluates y·m.
[[nodiscard]] std::int64_t invariant_value(const PlaceInvariant& inv,
                                           const Marking& m);

/// Places certified 1-safe by some semiflow with weight(p) >= 1 and
/// y·m0 == 1 (every reachable marking then puts at most one token there).
[[nodiscard]] util::Bitset safeness_certified_places(
    const PetriNet& net, const std::vector<PlaceInvariant>& semiflows);

}  // namespace gpo::petri
