#include "petri/structure.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace gpo::petri {

using util::Bitset;

bool is_siphon(const PetriNet& net, const Bitset& places) {
  for (std::size_t p = places.find_first(); p < places.size();
       p = places.find_next(p + 1)) {
    for (TransitionId t : net.place(p).pre) {  // producers into S
      if (!net.transition(t).pre_bits.intersects(places)) return false;
    }
  }
  return true;
}

bool is_trap(const PetriNet& net, const Bitset& places) {
  for (std::size_t p = places.find_first(); p < places.size();
       p = places.find_next(p + 1)) {
    for (TransitionId t : net.place(p).post) {  // consumers from S
      if (!net.transition(t).post_bits.intersects(places)) return false;
    }
  }
  return true;
}

Bitset maximal_siphon_within(const PetriNet& net, const Bitset& candidate) {
  Bitset s = candidate;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = s.find_first(); p < s.size();
         p = s.find_next(p + 1)) {
      for (TransitionId t : net.place(p).pre) {
        if (!net.transition(t).pre_bits.intersects(s)) {
          s.reset(p);
          changed = true;
          break;
        }
      }
    }
  }
  return s;
}

Bitset maximal_trap_within(const PetriNet& net, const Bitset& candidate) {
  Bitset s = candidate;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = s.find_first(); p < s.size();
         p = s.find_next(p + 1)) {
      for (TransitionId t : net.place(p).post) {
        if (!net.transition(t).post_bits.intersects(s)) {
          s.reset(p);
          changed = true;
          break;
        }
      }
    }
  }
  return s;
}

namespace {

// Recursive completion: a siphon containing `s` must, for every member place
// with a producer t not yet consuming from s, also contain some input place
// of t. Branching over that choice enumerates every siphon containing the
// seed; minimality is filtered afterwards.
void complete_siphon(const PetriNet& net, Bitset& s,
                     std::set<Bitset>& found, std::size_t max_nodes,
                     std::size_t& nodes, bool& complete) {
  if (++nodes > max_nodes) {
    complete = false;
    return;
  }
  // Find an unsatisfied (place, producer) obligation.
  for (std::size_t p = s.find_first(); p < s.size();
       p = s.find_next(p + 1)) {
    for (TransitionId t : net.place(p).pre) {
      const Bitset& pre = net.transition(t).pre_bits;
      if (pre.intersects(s)) continue;
      // Branch: add one input place of t.
      for (std::size_t q = pre.find_first(); q < pre.size();
           q = pre.find_next(q + 1)) {
        s.set(q);
        complete_siphon(net, s, found, max_nodes, nodes, complete);
        s.reset(q);
        if (!complete) return;
      }
      return;  // all extensions of this obligation explored
    }
  }
  found.insert(s);  // no obligations left: s is a siphon
}

}  // namespace

std::vector<Bitset> minimal_siphons(const PetriNet& net,
                                    std::size_t max_count, bool* complete) {
  bool all = true;
  std::set<Bitset> found;
  std::size_t nodes = 0;
  const std::size_t max_nodes = max_count * 64;
  for (PlaceId seed = 0; seed < net.place_count() && all; ++seed) {
    Bitset s(net.place_count());
    s.set(seed);
    complete_siphon(net, s, found, max_nodes, nodes, all);
    if (found.size() > max_count) {
      all = false;
      break;
    }
  }
  // Keep only inclusion-minimal ones.
  std::vector<Bitset> sorted(found.begin(), found.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Bitset& a, const Bitset& b) {
              return a.count() < b.count();
            });
  std::vector<Bitset> minimal;
  for (const Bitset& s : sorted) {
    bool dominated = false;
    for (const Bitset& m : minimal)
      if (m.is_subset_of(s)) {
        dominated = true;
        break;
      }
    if (!dominated) minimal.push_back(s);
  }
  if (complete != nullptr) *complete = all;
  return minimal;
}

bool is_free_choice(const PetriNet& net) {
  // Extended free choice: transitions sharing an input place have equal
  // presets.
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    const auto& consumers = net.place(p).post;
    for (std::size_t i = 1; i < consumers.size(); ++i)
      if (net.transition(consumers[i]).pre_bits !=
          net.transition(consumers[0]).pre_bits)
        return false;
  }
  return true;
}

SiphonTrapResult siphon_trap_property(const PetriNet& net,
                                      std::size_t max_siphons) {
  SiphonTrapResult result;
  result.holds = true;
  auto siphons = minimal_siphons(net, max_siphons, &result.exhaustive);
  for (const Bitset& s : siphons) {
    Bitset trap = maximal_trap_within(net, s);
    if (!trap.intersects(net.initial_marking())) {
      result.holds = false;
      result.counterexample_siphon = s;
      return result;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

namespace {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  return std::gcd(a < 0 ? -a : a, b < 0 ? -b : b);
}

void normalize_row(std::vector<std::int64_t>& row) {
  std::int64_t g = 0;
  for (std::int64_t v : row) g = gcd64(g, v);
  if (g > 1)
    for (std::int64_t& v : row) v /= g;
}

/// Incidence column view: effect of transition t on place p.
std::int64_t incidence(const PetriNet& net, PlaceId p, TransitionId t) {
  std::int64_t v = 0;
  if (net.transition(t).post_bits.test(p)) ++v;  // produces
  if (net.transition(t).pre_bits.test(p)) --v;   // consumes
  return v;
}

}  // namespace

std::vector<PlaceInvariant> place_invariant_basis(const PetriNet& net) {
  const std::size_t np = net.place_count();
  const std::size_t nt = net.transition_count();

  // Equations: for every transition t, sum_p y_p * C[p][t] = 0.
  // Matrix A: nt rows x np columns.
  std::vector<std::vector<std::int64_t>> a(
      nt, std::vector<std::int64_t>(np, 0));
  for (TransitionId t = 0; t < nt; ++t)
    for (PlaceId p = 0; p < np; ++p) a[t][p] = incidence(net, p, t);

  // Integer Gaussian elimination to row echelon form.
  std::vector<std::size_t> pivot_col_of_row;
  std::size_t row = 0;
  std::vector<bool> is_pivot_col(np, false);
  for (std::size_t col = 0; col < np && row < nt; ++col) {
    std::size_t pr = row;
    while (pr < nt && a[pr][col] == 0) ++pr;
    if (pr == nt) continue;
    std::swap(a[row], a[pr]);
    for (std::size_t r = 0; r < nt; ++r) {
      if (r == row || a[r][col] == 0) continue;
      std::int64_t g = gcd64(a[r][col], a[row][col]);
      std::int64_t f1 = a[row][col] / g;
      std::int64_t f2 = a[r][col] / g;
      for (std::size_t c = 0; c < np; ++c)
        a[r][c] = a[r][c] * f1 - a[row][c] * f2;
      normalize_row(a[r]);
    }
    pivot_col_of_row.push_back(col);
    is_pivot_col[col] = true;
    ++row;
  }

  // One basis vector per free column.
  std::vector<PlaceInvariant> basis;
  for (std::size_t fc = 0; fc < np; ++fc) {
    if (is_pivot_col[fc]) continue;
    // Solve with x[fc] = 1 and the other free columns 0, back-substituting
    // through the pivot rows and rescaling on the fly to stay integral.
    std::vector<std::int64_t> x(np, 0);
    x[fc] = 1;
    for (std::size_t r = pivot_col_of_row.size(); r-- > 0;) {
      std::size_t pc = pivot_col_of_row[r];
      std::int64_t sum = 0;
      for (std::size_t c = 0; c < np; ++c)
        if (c != pc) sum += a[r][c] * x[c];
      std::int64_t piv = a[r][pc];
      if (sum % piv != 0) {
        // Rescale the whole solution so the division is exact.
        std::int64_t g = gcd64(sum, piv);
        std::int64_t mult = (piv < 0 ? -piv : piv) / g;
        for (std::int64_t& v : x) v *= mult;
        sum *= mult;
      }
      x[pc] = -sum / piv;
    }
    normalize_row(x);
    PlaceInvariant inv;
    inv.weights = std::move(x);
    std::int64_t value = 0;
    for (PlaceId p = 0; p < np; ++p)
      if (net.initial_marking().test(p)) value += inv.weights[p];
    inv.initial_value = value;
    basis.push_back(std::move(inv));
  }
  return basis;
}

std::vector<PlaceInvariant> place_semiflows(const PetriNet& net,
                                            std::size_t max_count,
                                            bool* complete) {
  const std::size_t np = net.place_count();
  const std::size_t nt = net.transition_count();
  bool all = true;

  // Farkas: rows are [C-part | identity-part]; eliminate one transition
  // column at a time keeping only nonnegative combinations.
  struct FRow {
    std::vector<std::int64_t> c;   // remaining transition columns
    std::vector<std::int64_t> id;  // place weights
  };
  std::vector<FRow> rows;
  rows.reserve(np);
  for (PlaceId p = 0; p < np; ++p) {
    FRow r;
    r.c.resize(nt);
    for (TransitionId t = 0; t < nt; ++t) r.c[t] = incidence(net, p, t);
    r.id.assign(np, 0);
    r.id[p] = 1;
    rows.push_back(std::move(r));
  }

  auto normalize = [](FRow& r) {
    std::int64_t g = 0;
    for (std::int64_t v : r.c) g = gcd64(g, v);
    for (std::int64_t v : r.id) g = gcd64(g, v);
    if (g > 1) {
      for (std::int64_t& v : r.c) v /= g;
      for (std::int64_t& v : r.id) v /= g;
    }
  };

  for (TransitionId t = 0; t < nt; ++t) {
    std::vector<FRow> next;
    std::vector<std::size_t> pos, neg;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].c[t] == 0)
        next.push_back(rows[i]);
      else if (rows[i].c[t] > 0)
        pos.push_back(i);
      else
        neg.push_back(i);
    }
    for (std::size_t i : pos) {
      for (std::size_t j : neg) {
        if (next.size() > max_count * 4) {
          all = false;
          break;
        }
        std::int64_t a = rows[i].c[t];
        std::int64_t b = -rows[j].c[t];
        std::int64_t g = gcd64(a, b);
        std::int64_t fi = b / g, fj = a / g;
        FRow combo;
        combo.c.resize(nt);
        combo.id.resize(np);
        for (TransitionId k = 0; k < nt; ++k)
          combo.c[k] = fi * rows[i].c[k] + fj * rows[j].c[k];
        for (PlaceId p = 0; p < np; ++p)
          combo.id[p] = fi * rows[i].id[p] + fj * rows[j].id[p];
        normalize(combo);
        next.push_back(std::move(combo));
      }
      if (!all) break;
    }
    rows = std::move(next);
    if (!all) break;
  }

  // Surviving rows have zero C-part: their identity parts are semiflows.
  // Keep minimal-support unique ones.
  std::vector<PlaceInvariant> out;
  std::set<std::vector<std::int64_t>> seen;
  for (const FRow& r : rows) {
    bool zero = std::all_of(r.id.begin(), r.id.end(),
                            [](std::int64_t v) { return v == 0; });
    if (zero || !seen.insert(r.id).second) continue;
    PlaceInvariant inv;
    inv.weights = r.id;
    for (PlaceId p = 0; p < np; ++p)
      if (net.initial_marking().test(p)) inv.initial_value += inv.weights[p];
    out.push_back(std::move(inv));
  }
  // Minimal support filter.
  auto support = [](const PlaceInvariant& inv) {
    Bitset s(inv.weights.size());
    for (std::size_t p = 0; p < inv.weights.size(); ++p)
      if (inv.weights[p] != 0) s.set(p);
    return s;
  };
  std::sort(out.begin(), out.end(),
            [&](const PlaceInvariant& x, const PlaceInvariant& y) {
              return support(x).count() < support(y).count();
            });
  std::vector<PlaceInvariant> minimal;
  for (PlaceInvariant& inv : out) {
    Bitset s = support(inv);
    bool dominated = false;
    for (const PlaceInvariant& m : minimal)
      if (support(m).is_subset_of(s) && !(support(m) == s)) {
        dominated = true;
        break;
      }
    if (!dominated && minimal.size() < max_count)
      minimal.push_back(std::move(inv));
  }
  if (complete != nullptr) *complete = all;
  return minimal;
}

std::int64_t invariant_value(const PlaceInvariant& inv, const Marking& m) {
  std::int64_t v = 0;
  for (std::size_t p = m.find_first(); p < m.size(); p = m.find_next(p + 1))
    v += inv.weights[p];
  return v;
}

util::Bitset safeness_certified_places(
    const PetriNet& net, const std::vector<PlaceInvariant>& semiflows) {
  Bitset certified(net.place_count());
  for (const PlaceInvariant& inv : semiflows) {
    if (inv.initial_value != 1) continue;
    bool nonneg = std::all_of(inv.weights.begin(), inv.weights.end(),
                              [](std::int64_t w) { return w >= 0; });
    if (!nonneg) continue;
    for (PlaceId p = 0; p < net.place_count(); ++p)
      if (inv.weights[p] >= 1) certified.set(p);
  }
  return certified;
}

}  // namespace gpo::petri
