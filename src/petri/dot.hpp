// Graphviz DOT rendering for nets and (small) reachability graphs; used by
// the CLI (`julie --dot`) and handy when debugging models.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "petri/net.hpp"

namespace gpo::petri {

/// Writes the net structure: places as circles (filled when initially
/// marked), transitions as boxes, the flow relation as edges.
void write_net_dot(std::ostream& os, const PetriNet& net);

/// A generic labeled graph, used for reachability-graph dumps.
struct LabeledGraph {
  struct Edge {
    std::size_t from;
    std::size_t to;
    std::string label;
  };
  std::vector<std::string> node_labels;
  std::vector<Edge> edges;
  std::size_t initial = 0;
};

void write_graph_dot(std::ostream& os, const LabeledGraph& g,
                     const std::string& name = "rg");

}  // namespace gpo::petri
