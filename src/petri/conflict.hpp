// Structural conflict analysis (Definition 2.2 of the paper).
//
// Two transitions conflict when they share an input place. The *maximal
// conflicting sets* (MCSs) are the sets closed under the conflict relation,
// i.e. the connected components of the conflict graph; a component of size 1
// is a conflict-free transition. The GPO engine and the anticipation-based
// partial-order explorer both operate on MCSs, and the initial valid-set
// family r0 of a Generalized Petri Net is the family of maximal independent
// sets of the conflict graph (see DESIGN.md, decision 1).
#pragma once

#include <cstddef>
#include <vector>

#include "petri/net.hpp"
#include "util/bitset.hpp"

namespace gpo::petri {

enum class ConflictDefinition {
  /// Definition 2.2 verbatim: conflict(t,u) <=> •t ∩ •u != ∅.
  kSharedInput,
  /// Refinement: a place in •t ∩ •u that both transitions also produce
  /// (a mutual self-loop, e.g. the global run place of the safety-to-
  /// deadlock reduction) cannot cause either to disable the other, so it is
  /// not counted. Sound for stubborn sets and GPN scenarios; strictly finer
  /// components. This is the default.
  kIgnoreMutualSelfLoops,
};

class ConflictInfo {
 public:
  explicit ConflictInfo(
      const PetriNet& net,
      ConflictDefinition definition = ConflictDefinition::kIgnoreMutualSelfLoops);

  /// conflict(t, u) — do t and u share an input place? (t conflicts with
  /// itself by the definition; callers usually want t != u.)
  [[nodiscard]] bool in_conflict(TransitionId t, TransitionId u) const {
    return neighbors_[t].test(u) || t == u;
  }

  /// Transitions in conflict with t, excluding t itself, as a bitset over T.
  [[nodiscard]] const util::Bitset& neighbors(TransitionId t) const {
    return neighbors_[t];
  }

  /// Id of the maximal conflicting set (conflict-graph component) of t.
  [[nodiscard]] std::size_t component_of(TransitionId t) const {
    return component_of_[t];
  }

  /// All maximal conflicting sets; singleton components are conflict-free
  /// transitions. Sorted ascending within each component.
  [[nodiscard]] const std::vector<std::vector<TransitionId>>& components()
      const {
    return components_;
  }

  /// True if t belongs to a component with at least two transitions.
  [[nodiscard]] bool has_choice(TransitionId t) const {
    return components_[component_of_[t]].size() > 1;
  }

  /// Number of components with >= 2 transitions ("choice points").
  [[nodiscard]] std::size_t choice_component_count() const;

  /// Enumerates the maximal independent sets of the conflict graph restricted
  /// to one component (Bron–Kerbosch on the complement graph). For a clique
  /// component this is one singleton per transition.
  [[nodiscard]] std::vector<util::Bitset> maximal_independent_sets(
      std::size_t component) const;

  /// Product over all components of maximal_independent_sets(): the family of
  /// maximal conflict-free subsets of T, i.e. the explicit r0. Throws
  /// std::length_error if the family would exceed `cap` sets.
  [[nodiscard]] std::vector<util::Bitset> maximal_conflict_free_sets(
      std::size_t cap = 1u << 22) const;

  [[nodiscard]] std::size_t transition_count() const {
    return neighbors_.size();
  }

 private:
  std::vector<util::Bitset> neighbors_;          // over T, excludes self
  std::vector<std::size_t> component_of_;        // T -> component id
  std::vector<std::vector<TransitionId>> components_;
};

}  // namespace gpo::petri
