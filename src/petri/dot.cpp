#include "petri/dot.hpp"

namespace gpo::petri {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

void write_net_dot(std::ostream& os, const PetriNet& net) {
  os << "digraph \"" << escape(std::string(net.name())) << "\" {\n"
     << "  rankdir=TB;\n";
  for (PlaceId p = 0; p < net.place_count(); ++p) {
    os << "  p" << p << " [shape=circle,label=\""
       << escape(net.place(p).name) << "\"";
    if (net.initial_marking().test(p)) os << ",style=filled,fillcolor=gray80";
    os << "];\n";
  }
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    os << "  t" << t << " [shape=box,height=0.2,label=\""
       << escape(net.transition(t).name) << "\"];\n";
  }
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    for (PlaceId p : net.transition(t).pre)
      os << "  p" << p << " -> t" << t << ";\n";
    for (PlaceId p : net.transition(t).post)
      os << "  t" << t << " -> p" << p << ";\n";
  }
  os << "}\n";
}

void write_graph_dot(std::ostream& os, const LabeledGraph& g,
                     const std::string& name) {
  os << "digraph \"" << escape(name) << "\" {\n";
  for (std::size_t i = 0; i < g.node_labels.size(); ++i) {
    os << "  s" << i << " [label=\"" << escape(g.node_labels[i]) << "\"";
    if (i == g.initial) os << ",peripheries=2";
    os << "];\n";
  }
  for (const auto& e : g.edges)
    os << "  s" << e.from << " -> s" << e.to << " [label=\""
       << escape(e.label) << "\"];\n";
  os << "}\n";
}

}  // namespace gpo::petri
