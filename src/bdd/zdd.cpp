#include "bdd/zdd.hpp"

#include <unordered_map>
#include <utility>

namespace gpo::zdd {

// Every recursion below copies a Node before recursing where a recursive call
// (or make_node) may grow the arena and invalidate table references — the
// same discipline as bdd.cpp. Terminals carry the num_vars sentinel as their
// var, so the generic var-comparison branches handle them without special
// cases beyond the identities at each entry.

Ref ZddManager::single(const util::Bitset& set) {
  // Built bottom-up (highest element first) so each node's children are
  // strictly deeper; high edges are never kEmpty, so nothing suppresses.
  Ref r = kUnit;
  std::vector<std::size_t> idx = set.to_indices();
  for (auto it = idx.rbegin(); it != idx.rend(); ++it)
    r = make_node(static_cast<Var>(*it), kEmpty, r);
  return r;
}

Ref ZddManager::from_sets(const std::vector<util::Bitset>& sets) {
  Ref r = kEmpty;
  for (const util::Bitset& s : sets) r = unite(r, single(s));
  return r;
}

Ref ZddManager::unite(Ref f, Ref g) { return unite_rec(f, g); }
Ref ZddManager::intersect(Ref f, Ref g) { return intersect_rec(f, g); }
Ref ZddManager::subtract(Ref f, Ref g) { return subtract_rec(f, g); }
Ref ZddManager::containing(Ref f, Var t) { return containing_rec(f, t); }
Ref ZddManager::product(Ref f, Ref g) { return product_rec(f, g); }

Ref ZddManager::unite_rec(Ref f, Ref g) {
  if (f == g || g == kEmpty) return f;
  if (f == kEmpty) return g;
  if (f > g) std::swap(f, g);  // commutative: canonical operand order

  Ref out;
  if (cache_.lookup(kOpUnite, f, g, out)) return out;

  const Var vf = node(f).var;
  const Var vg = node(g).var;
  Ref result;
  if (vf < vg) {
    const dd::Node nf = node(f);
    Ref lo = unite_rec(nf.low, g);
    result = make_node(vf, lo, nf.high);
  } else if (vg < vf) {
    const dd::Node ng = node(g);
    Ref lo = unite_rec(f, ng.low);
    result = make_node(vg, lo, ng.high);
  } else {
    const dd::Node nf = node(f);
    const dd::Node ng = node(g);
    Ref lo = unite_rec(nf.low, ng.low);
    Ref hi = unite_rec(nf.high, ng.high);
    result = make_node(vf, lo, hi);
  }
  cache_.store(kOpUnite, f, g, result);
  return result;
}

Ref ZddManager::intersect_rec(Ref f, Ref g) {
  if (f == g) return f;
  if (f == kEmpty || g == kEmpty) return kEmpty;
  if (f > g) std::swap(f, g);

  Ref out;
  if (cache_.lookup(kOpIntersect, f, g, out)) return out;

  const Var vf = node(f).var;
  const Var vg = node(g).var;
  Ref result;
  if (vf < vg) {
    // Members of f containing vf cannot be in g (g never mentions vf).
    result = intersect_rec(node(f).low, g);
  } else if (vg < vf) {
    result = intersect_rec(f, node(g).low);
  } else {
    const dd::Node nf = node(f);
    const dd::Node ng = node(g);
    Ref lo = intersect_rec(nf.low, ng.low);
    Ref hi = intersect_rec(nf.high, ng.high);
    result = make_node(vf, lo, hi);
  }
  cache_.store(kOpIntersect, f, g, result);
  return result;
}

Ref ZddManager::subtract_rec(Ref f, Ref g) {
  if (f == kEmpty || f == g) return kEmpty;
  if (g == kEmpty) return f;

  Ref out;
  if (cache_.lookup(kOpSubtract, f, g, out)) return out;

  const Var vf = node(f).var;
  const Var vg = node(g).var;
  Ref result;
  if (vf < vg) {
    // g never mentions vf, so f's vf-containing members all survive.
    const dd::Node nf = node(f);
    Ref lo = subtract_rec(nf.low, g);
    result = make_node(vf, lo, nf.high);
  } else if (vg < vf) {
    result = subtract_rec(f, node(g).low);
  } else {
    const dd::Node nf = node(f);
    const dd::Node ng = node(g);
    Ref lo = subtract_rec(nf.low, ng.low);
    Ref hi = subtract_rec(nf.high, ng.high);
    result = make_node(vf, lo, hi);
  }
  cache_.store(kOpSubtract, f, g, result);
  return result;
}

Ref ZddManager::containing_rec(Ref f, Var t) {
  if (is_terminal(f)) return kEmpty;  // no member of ∅ or {∅} contains t
  const Var vf = node(f).var;
  if (vf > t) return kEmpty;  // t can no longer appear below this level

  Ref out;
  if (cache_.lookup(kOpContaining, f, static_cast<Ref>(t), out)) return out;

  Ref result;
  if (vf == t) {
    // Exactly the high branch's members, each re-tagged with t.
    result = make_node(t, kEmpty, node(f).high);
  } else {
    const dd::Node nf = node(f);
    Ref lo = containing_rec(nf.low, t);
    Ref hi = containing_rec(nf.high, t);
    result = make_node(vf, lo, hi);
  }
  cache_.store(kOpContaining, f, static_cast<Ref>(t), result);
  return result;
}

Ref ZddManager::product_rec(Ref f, Ref g) {
  if (f == kEmpty || g == kEmpty) return kEmpty;
  if (f == kUnit) return g;
  if (g == kUnit) return f;
  if (f > g) std::swap(f, g);  // {S ∪ T} is commutative

  Ref out;
  if (cache_.lookup(kOpProduct, f, g, out)) return out;

  const Var vf = node(f).var;
  const Var vg = node(g).var;
  Ref result;
  if (vf < vg) {
    const dd::Node nf = node(f);
    Ref lo = product_rec(nf.low, g);
    Ref hi = product_rec(nf.high, g);
    result = make_node(vf, lo, hi);
  } else if (vg < vf) {
    const dd::Node ng = node(g);
    Ref lo = product_rec(ng.low, f);
    Ref hi = product_rec(ng.high, f);
    result = make_node(vg, lo, hi);
  } else {
    // Shared top element v: a union contains v iff either side does.
    const dd::Node nf = node(f);
    const dd::Node ng = node(g);
    Ref hi = unite_rec(product_rec(nf.high, ng.high),
                       unite_rec(product_rec(nf.high, ng.low),
                                 product_rec(nf.low, ng.high)));
    Ref lo = product_rec(nf.low, ng.low);
    result = make_node(vf, lo, hi);
  }
  cache_.store(kOpProduct, f, g, result);
  return result;
}

bool ZddManager::contains(Ref f, const util::Bitset& set) const {
  std::size_t pending = set.find_first();
  Ref cur = f;
  while (true) {
    if (cur == kEmpty) return false;
    if (cur == kUnit) return pending >= set.size();
    const dd::Node& n = node(cur);
    if (pending < set.size() && n.var > pending)
      return false;  // element `pending` cannot appear below this level
    if (pending < set.size() && n.var == pending) {
      cur = n.high;
      pending = set.find_next(pending + 1);
    } else {
      cur = n.low;  // n.var is not in the set: it must be absent
    }
  }
}

std::size_t ZddManager::count(Ref f) const {
  std::unordered_map<Ref, std::size_t> memo;
  std::function<std::size_t(Ref)> rec = [&](Ref x) -> std::size_t {
    if (x == kEmpty) return 0;
    if (x == kUnit) return 1;
    if (auto it = memo.find(x); it != memo.end()) return it->second;
    const dd::Node& n = node(x);
    std::size_t lo = rec(n.low);
    std::size_t hi = rec(n.high);
    std::size_t sum = lo > SIZE_MAX - hi ? SIZE_MAX : lo + hi;  // saturate
    memo.emplace(x, sum);
    return sum;
  };
  return rec(f);
}

bool ZddManager::enumerate(
    Ref f, std::size_t max_count,
    const std::function<void(const util::Bitset&)>& visit) const {
  std::size_t emitted = 0;
  util::Bitset current(num_vars());
  std::function<bool(Ref)> rec = [&](Ref x) -> bool {
    if (x == kEmpty) return true;
    if (x == kUnit) {
      if (emitted++ >= max_count) return false;
      visit(current);
      return true;
    }
    const dd::Node& n = node(x);  // const walk: the arena cannot grow
    if (!rec(n.low)) return false;
    current.set(n.var);
    bool ok = rec(n.high);
    current.reset(n.var);
    return ok;
  };
  return rec(f);
}

std::size_t ZddManager::node_count(Ref f) const {
  std::vector<bool> seen(table_.size(), false);
  std::vector<Ref> stack{f};
  std::size_t count = 0;
  bool saw_empty = false, saw_unit = false;
  while (!stack.empty()) {
    Ref x = stack.back();
    stack.pop_back();
    if (x == kEmpty) {
      saw_empty = true;
      continue;
    }
    if (x == kUnit) {
      saw_unit = true;
      continue;
    }
    if (seen[x]) continue;
    seen[x] = true;
    ++count;
    stack.push_back(node(x).low);
    stack.push_back(node(x).high);
  }
  return count + (saw_empty ? 1 : 0) + (saw_unit ? 1 : 0);
}

}  // namespace gpo::zdd
