// A from-scratch reduced ordered binary decision diagram (ROBDD) package
// [Bryant 1986], built as the substrate for the symbolic-model-checking
// baseline (the paper compares against SMV) and as the second representation
// of GPN set families (src/core/set_family.hpp).
//
// Design notes:
//  * Nodes live in one arena and are hash-consed through a unique table
//    (dd::NodeTable, the kernel shared with the zero-suppressed package in
//    zdd.hpp), so two equivalent functions always have the same Ref —
//    equality is O(1). The BDD-specific reduction rule (redundant-test
//    elimination: low == high ⇒ low) is applied here in make_node; the
//    shared table is a pure structural interner.
//  * No complement edges: negation is a cached O(|f|) traversal. This keeps
//    the invariants simple; the verification workloads here are bounded by
//    variable ordering, not by the constant factor complement edges buy.
//  * No garbage collection: nodes are never freed, and total_nodes() is by
//    construction the peak live size — exactly the "Peak BDD-size" statistic
//    Table 1 reports for SMV. A configurable node limit turns pathological
//    orderings into a clean BddLimitExceeded instead of memory exhaustion.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/dd_kernel.hpp"
#include "util/bitset.hpp"
#include "util/hash.hpp"

namespace gpo::bdd {

using Var = dd::Var;
/// Index of a node in the manager arena. Refs are stable for the lifetime of
/// the manager and canonical: equal Refs <=> equal Boolean functions.
using Ref = dd::Ref;

inline constexpr Ref kFalse = dd::kTerminal0;
inline constexpr Ref kTrue = dd::kTerminal1;

/// Thrown when an operation would grow the arena past the node limit.
using BddLimitExceeded = dd::DdLimitExceeded;

class BddManager {
 public:
  /// `num_vars` fixes the variable universe 0..num_vars-1 (variable index ==
  /// level: smaller index is closer to the root). `node_limit` bounds the
  /// arena size.
  explicit BddManager(Var num_vars, std::size_t node_limit = std::size_t{1}
                                                             << 23);

  [[nodiscard]] Var num_vars() const { return table_.num_vars(); }

  /// The function "variable v".
  [[nodiscard]] Ref var(Var v);
  /// The function "not variable v".
  [[nodiscard]] Ref nvar(Var v);

  [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);
  [[nodiscard]] Ref apply_not(Ref f) { return ite(f, kFalse, kTrue); }
  [[nodiscard]] Ref apply_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  [[nodiscard]] Ref apply_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  [[nodiscard]] Ref apply_xor(Ref f, Ref g) {
    return ite(f, apply_not(g), g);
  }
  /// f ∧ ¬g — set difference when functions encode families of sets.
  [[nodiscard]] Ref apply_diff(Ref f, Ref g) {
    return ite(g, kFalse, f);
  }
  [[nodiscard]] Ref apply_imp(Ref f, Ref g) { return ite(f, g, kTrue); }
  [[nodiscard]] Ref apply_iff(Ref f, Ref g) { return ite(f, g, apply_not(g)); }

  /// Conjunction of the listed (positive) variables; the canonical cube
  /// representation used by the quantifiers below.
  [[nodiscard]] Ref cube(const std::vector<Var>& vars);

  /// ∃ vars(cube) . f
  [[nodiscard]] Ref exists(Ref f, Ref cube);
  /// ∀ vars(cube) . f
  [[nodiscard]] Ref forall(Ref f, Ref cube);
  /// ∃ vars(cube) . (f ∧ g) — the relational-product workhorse of image
  /// computation, without building f ∧ g in full.
  [[nodiscard]] Ref and_exists(Ref f, Ref g, Ref cube);

  /// Renames variables: node with var v becomes var map[v]. The map must be
  /// strictly monotone on the support of f (checked), which keeps the result
  /// ordered without re-normalization.
  [[nodiscard]] Ref rename(Ref f, const std::vector<Var>& map);

  /// Cofactor: f with variable v fixed to `value`.
  [[nodiscard]] Ref restrict_var(Ref f, Var v, bool value);

  /// Number of assignments to `counted_vars` satisfying f. Requires
  /// support(f) ⊆ counted_vars (checked). Exact while the count fits a
  /// double's 53-bit mantissa; beyond that it is a faithful rounding.
  [[nodiscard]] double sat_count(Ref f, const std::vector<Var>& counted_vars);

  /// One satisfying assignment as a bitset over all variables (don't-care
  /// variables are reported as 0). Precondition: f != kFalse.
  [[nodiscard]] util::Bitset pick_one_sat(Ref f);

  /// Enumerates satisfying assignments over `universe_vars` (don't-cares
  /// expanded), invoking `visit` for each; stops early after `max_count`.
  /// Returns false if truncated. Requires support(f) ⊆ universe_vars.
  bool enumerate_sats(Ref f, const std::vector<Var>& universe_vars,
                      std::size_t max_count,
                      const std::function<void(const util::Bitset&)>& visit);

  /// Variables f depends on.
  [[nodiscard]] std::vector<Var> support(Ref f) const;

  /// Number of distinct nodes in f (including terminals).
  [[nodiscard]] std::size_t node_count(Ref f) const;

  /// Arena size == peak live nodes (no GC), the Table-1 "peak BDD" metric.
  [[nodiscard]] std::size_t total_nodes() const { return table_.size(); }

  [[nodiscard]] Var var_of(Ref f) const { return table_.node(f).var; }
  [[nodiscard]] Ref low_of(Ref f) const { return table_.node(f).low; }
  [[nodiscard]] Ref high_of(Ref f) const { return table_.node(f).high; }
  [[nodiscard]] bool is_terminal(Ref f) const { return f <= kTrue; }

 private:
  struct TripleKey {
    Ref a, b, c;
    bool operator==(const TripleKey&) const = default;
  };
  struct TripleKeyHash {
    std::size_t operator()(const TripleKey& k) const {
      return static_cast<std::size_t>(util::mix64(
          (std::uint64_t{k.a} << 42) ^ (std::uint64_t{k.b} << 21) ^ k.c));
    }
  };

  [[nodiscard]] const dd::Node& node(Ref r) const { return table_.node(r); }

  Ref make_node(Var var, Ref low, Ref high);

  Ref ite_rec(Ref f, Ref g, Ref h);
  Ref exists_rec(Ref f, Ref cube,
                 std::unordered_map<TripleKey, Ref, TripleKeyHash>& cache,
                 bool universal);
  Ref and_exists_rec(Ref f, Ref g, Ref cube);
  Ref rename_rec(Ref f, const std::vector<Var>& map,
                 std::unordered_map<Ref, Ref>& cache);

  dd::NodeTable table_;
  std::unordered_map<TripleKey, Ref, TripleKeyHash> ite_cache_;
  std::unordered_map<TripleKey, Ref, TripleKeyHash> and_exists_cache_;
  /// and_exists keys its cache on (f, g, cube); the marker lets us clear the
  /// cache when callers switch cubes so it cannot grow without bound.
  Ref and_exists_cube_marker_ = kFalse;
};

}  // namespace gpo::bdd
