// Symbolic (OBDD-based) reachability analysis of safe Petri nets
// (Section 2.4 of the paper) — the stand-in for the SMV baseline of Table 1.
//
// Encoding: one Boolean current-state variable and one next-state variable
// per place, interleaved (cur(p)=2k, nxt(p)=2k+1 with k the place's position
// in the chosen ordering). The transition relation is disjunctively
// partitioned: each Petri net transition contributes a small relation over
// the places it touches, and the image is the union of per-transition
// relational products — unchanged places pass through without frame
// conditions.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "obs/metrics.hpp"
#include "petri/net.hpp"
#include "util/cancel_token.hpp"

namespace gpo::bdd {

enum class VariableOrder {
  /// Places in declaration order — what a naive encoding would do.
  kDeclaration,
  /// Breadth-first traversal of the place/transition graph from the
  /// initially marked places; keeps structurally related places adjacent,
  /// which is what makes or breaks BDD sizes on these nets.
  kBfs,
};

struct SymbolicOptions {
  VariableOrder order = VariableOrder::kBfs;
  /// Arena cap; exceeding it aborts the analysis with blowup=true (the
  /// "> 24 hours" rows of Table 1).
  std::size_t node_limit = std::size_t{1} << 23;
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation; a fired token aborts the fixpoint with
  /// blowup=true, blowup_reason="cancelled".
  const util::CancelToken* cancel = nullptr;
  /// When set, only deadlocks marking this place count (safety-to-deadlock
  /// reduction); implemented as one extra conjunction on the dead-state set.
  std::optional<petri::PlaceId> required_deadlock_place;
  /// Optional telemetry sink; publishes "<metrics_prefix>iterations",
  /// "<metrics_prefix>peak_nodes", the unique-table load factor and the
  /// fixpoint time when set.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "bdd.";
};

struct SymbolicResult {
  /// Number of reachable markings (exact while it fits 53 bits).
  double state_count = 0;
  std::size_t iterations = 0;
  /// Peak BDD arena size — the "Peak BDD-size" column of Table 1.
  std::size_t peak_nodes = 0;
  bool deadlock_found = false;
  std::optional<petri::Marking> deadlock_witness;
  /// Node limit or time limit hit before the fixpoint.
  bool blowup = false;
  std::string blowup_reason;
  double seconds = 0.0;
};

class SymbolicReachability {
 public:
  explicit SymbolicReachability(const petri::PetriNet& net,
                                SymbolicOptions options = {});

  /// Runs the reachability fixpoint and the deadlock check.
  [[nodiscard]] SymbolicResult analyze();

  /// The place ordering actually used (position -> place id); for tests.
  [[nodiscard]] const std::vector<petri::PlaceId>& place_order() const {
    return order_;
  }

 private:
  [[nodiscard]] Var cur_var(petri::PlaceId p) const {
    return 2 * position_[p];
  }
  [[nodiscard]] Var nxt_var(petri::PlaceId p) const {
    return 2 * position_[p] + 1;
  }

  const petri::PetriNet& net_;
  SymbolicOptions options_;
  std::vector<petri::PlaceId> order_;      // position -> place
  std::vector<std::uint32_t> position_;    // place -> position
  std::optional<BddManager> manager_;
};

/// Computes the place ordering for the given heuristic (exposed for tests
/// and the ordering-ablation bench).
[[nodiscard]] std::vector<petri::PlaceId> compute_place_order(
    const petri::PetriNet& net, VariableOrder order);

}  // namespace gpo::bdd
