// Zero-suppressed decision diagrams [Minato 1993] over a fixed variable
// universe, built on the shared kernel in dd_kernel.hpp.
//
// A ZDD node (v, low, high) denotes the family  low ∪ {S ∪ {v} | S ∈ high};
// the two terminals denote ∅ (kEmpty: no sets) and {∅} (kUnit: the family
// holding only the empty set). The zero-suppression rule — a node whose high
// edge is kEmpty is identified with its low child — together with
// hash-consing makes the representation canonical: two families are equal
// iff their Refs are equal. Unlike the BDD reduction rule, zero-suppression
// favors *sparse* sets: a variable absent from every member set costs no
// node at all, which is exactly the shape of GPN transition-set families
// (few transitions of the universe appear in any one scenario).
//
// The manager provides the family algebra the GPO engine needs — unite,
// intersect, subtract, containing(t) (the subset of members that include t)
// and the unordered product {S ∪ T} — as computed-table-memoized recursions
// over canonical Refs. Like the BDD package there is no garbage collection:
// total_nodes() is the peak live size, and the node limit turns blowups
// into a clean DdLimitExceeded.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "bdd/dd_kernel.hpp"
#include "util/bitset.hpp"

namespace gpo::zdd {

using Var = dd::Var;
/// Canonical family handle: equal Refs <=> equal families of sets.
using Ref = dd::Ref;

/// The empty family (no sets at all).
inline constexpr Ref kEmpty = dd::kTerminal0;
/// The family containing exactly the empty set.
inline constexpr Ref kUnit = dd::kTerminal1;

/// Thrown when an operation would grow the arena past the node limit.
using ZddLimitExceeded = dd::DdLimitExceeded;

/// Counters for the telemetry layer (zdd.* gauges of the run report).
struct ZddStats {
  /// Op kinds in the per-op cache breakdown (index == ZddManager's Op enum).
  static constexpr std::size_t kOpCount = 5;
  /// Registry-friendly op names, parallel to the per-op arrays.
  static constexpr const char* kOpNames[kOpCount] = {
      "unite", "intersect", "subtract", "containing", "product"};

  std::size_t nodes = 0;  ///< arena size == peak live nodes (no GC)
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  std::size_t cache_occupied = 0;
  std::size_t cache_entries = 0;
  std::size_t memory_bytes = 0;  ///< arena + unique table + computed table
  /// Per-op decomposition of the hit/miss streams; sums to
  /// cache_hits/cache_misses.
  std::array<std::size_t, kOpCount> op_hits{};
  std::array<std::size_t, kOpCount> op_misses{};
};

class ZddManager {
 public:
  /// `num_vars` fixes the element universe 0..num_vars-1 (variable index ==
  /// level: smaller index closer to the root, matching the BDD convention).
  /// `cache_entries` sizes the direct-mapped computed table (rounded up to a
  /// power of two).
  explicit ZddManager(Var num_vars,
                      std::size_t node_limit = std::size_t{1} << 23,
                      std::size_t cache_entries = std::size_t{1} << 16)
      : table_(num_vars, node_limit, "ZDD"), cache_(cache_entries) {}

  [[nodiscard]] Var num_vars() const { return table_.num_vars(); }

  /// The canonical node for (v, low, high), applying zero-suppression
  /// (high == kEmpty ⇒ low). Precondition: every variable in low/high is
  /// strictly greater than v (callers maintain the order invariant).
  [[nodiscard]] Ref make_node(Var v, Ref low, Ref high) {
    if (high == kEmpty) return low;  // zero-suppression
    return table_.insert(v, low, high);
  }

  /// The family {set}.
  [[nodiscard]] Ref single(const util::Bitset& set);
  /// The family holding exactly the listed sets (duplicates collapse).
  [[nodiscard]] Ref from_sets(const std::vector<util::Bitset>& sets);

  /// f ∪ g.
  [[nodiscard]] Ref unite(Ref f, Ref g);
  /// f ∩ g.
  [[nodiscard]] Ref intersect(Ref f, Ref g);
  /// f \ g.
  [[nodiscard]] Ref subtract(Ref f, Ref g);
  /// {S ∈ f | t ∈ S} — the subsumption walk behind m_enabled.
  [[nodiscard]] Ref containing(Ref f, Var t);
  /// {S ∪ T | S ∈ f, T ∈ g} — the unordered product, used to compose the
  /// per-conflict-component factors of the initial valid-set family.
  [[nodiscard]] Ref product(Ref f, Ref g);

  /// Membership test for one explicit set; an O(|set| + depth) walk.
  [[nodiscard]] bool contains(Ref f, const util::Bitset& set) const;

  /// Number of member sets (memoized per call; saturates at SIZE_MAX).
  [[nodiscard]] std::size_t count(Ref f) const;

  /// Enumerates member sets as bitsets over the universe, invoking `visit`
  /// for each; stops after `max_count`. Returns false if truncated. The
  /// order is the diagram's DFS order (not ExplicitFamily's sorted order).
  bool enumerate(Ref f, std::size_t max_count,
                 const std::function<void(const util::Bitset&)>& visit) const;

  /// Number of distinct nodes in f (including terminals).
  [[nodiscard]] std::size_t node_count(Ref f) const;

  /// Arena size == peak live nodes (no GC).
  [[nodiscard]] std::size_t total_nodes() const { return table_.size(); }

  [[nodiscard]] ZddStats stats() const {
    ZddStats s;
    s.nodes = table_.size();
    s.cache_hits = cache_.hits();
    s.cache_misses = cache_.misses();
    s.cache_evictions = cache_.evictions();
    s.cache_occupied = cache_.occupied();
    s.cache_entries = cache_.entries();
    s.memory_bytes = table_.memory_bytes() + cache_.memory_bytes();
    for (std::size_t op = 0; op < ZddStats::kOpCount; ++op) {
      s.op_hits[op] = cache_.op_hits(static_cast<std::uint8_t>(op));
      s.op_misses[op] = cache_.op_misses(static_cast<std::uint8_t>(op));
    }
    return s;
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return table_.memory_bytes() + cache_.memory_bytes();
  }

  [[nodiscard]] Var var_of(Ref f) const { return table_.node(f).var; }
  [[nodiscard]] Ref low_of(Ref f) const { return table_.node(f).low; }
  [[nodiscard]] Ref high_of(Ref f) const { return table_.node(f).high; }
  [[nodiscard]] bool is_terminal(Ref f) const { return f <= kUnit; }

 private:
  enum Op : std::uint8_t {
    kOpUnite = 0,
    kOpIntersect = 1,
    kOpSubtract = 2,
    kOpContaining = 3,
    kOpProduct = 4,
  };

  [[nodiscard]] const dd::Node& node(Ref r) const { return table_.node(r); }

  Ref unite_rec(Ref f, Ref g);
  Ref intersect_rec(Ref f, Ref g);
  Ref subtract_rec(Ref f, Ref g);
  Ref containing_rec(Ref f, Var t);
  Ref product_rec(Ref f, Ref g);

  dd::NodeTable table_;
  mutable dd::ComputedCache cache_;
};

}  // namespace gpo::zdd
