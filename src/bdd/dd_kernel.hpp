// Shared decision-diagram kernel: the representation-independent substrate
// under both the ROBDD package (bdd.hpp) and the zero-suppressed package
// (zdd.hpp).
//
// What is shared and what is not:
//   * NodeTable — the arena + unique table ("hash consing"). Both diagram
//     kinds store (var, low, high) triples, never free nodes, and rely on
//     insert() returning one canonical Ref per structurally distinct triple.
//     The *reduction rule* is deliberately NOT here: BDDs drop redundant
//     tests (low == high ⇒ low), ZDDs drop positive-empty edges
//     (high == ∅ ⇒ low). Each manager applies its own rule in make_node
//     before asking the table for a Ref, so the table stays a pure
//     structural interner and canonicity remains the manager's invariant.
//   * ComputedCache — a bounded direct-mapped memo table for binary node
//     operations, the classical "computed table" of OBDD packages. A
//     colliding entry is overwritten (counted as an eviction), so memory is
//     bounded without eviction scans; recomputation after overwrite is
//     sound because ops are deterministic functions of canonical Refs.
//   * DdLimitExceeded — the clean out-of-budget escape both managers throw
//     instead of exhausting memory on a pathological variable order.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/hash.hpp"

namespace gpo::dd {

using Var = std::uint32_t;
/// Index of a node in a NodeTable arena. Refs are stable for the lifetime of
/// the table and canonical under the owning manager's reduction rule:
/// equal Refs <=> equal functions/families.
using Ref = std::uint32_t;

/// The two terminal nodes every diagram kind seeds at fixed indices. Their
/// meaning is per-manager (BDD: false/true; ZDD: ∅ / {∅}).
inline constexpr Ref kTerminal0 = 0;
inline constexpr Ref kTerminal1 = 1;

inline constexpr Ref kInvalidRef = 0xFFFFFFFFu;

/// Thrown when an operation would grow a node arena past its limit.
class DdLimitExceeded : public std::runtime_error {
 public:
  DdLimitExceeded(const char* kind, std::size_t limit)
      : std::runtime_error(std::string(kind) + " node limit exceeded (" +
                           std::to_string(limit) + " nodes)"),
        limit_(limit) {}

  [[nodiscard]] std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_;
};

struct Node {
  Var var;  // == num_vars for the two terminals (below every real level)
  Ref low;
  Ref high;
};

/// Arena-allocated, hash-consed node store. Insert-only: nodes are never
/// freed, so size() is by construction the peak live size — the "peak
/// DD-size" statistic the benchmarks report — and a Ref stays valid forever.
class NodeTable {
 public:
  /// `kind` labels DdLimitExceeded messages ("BDD"/"ZDD"); it must outlive
  /// the table (string literals do).
  NodeTable(Var num_vars, std::size_t node_limit, const char* kind)
      : num_vars_(num_vars), node_limit_(node_limit), kind_(kind) {
    nodes_.push_back({num_vars_, kTerminal0, kTerminal0});
    nodes_.push_back({num_vars_, kTerminal1, kTerminal1});
  }

  /// The Ref of the unique node (var, low, high), allocating it on first
  /// sight. Pure structural interning: callers apply their reduction rule
  /// *before* calling (the table never inspects low/high semantics).
  Ref insert(Var var, Ref low, Ref high) {
    Key key{var, low, high};
    auto it = unique_.find(key);
    if (it != unique_.end()) return it->second;
    if (nodes_.size() >= node_limit_) throw DdLimitExceeded(kind_, node_limit_);
    Ref ref = static_cast<Ref>(nodes_.size());
    nodes_.push_back({var, low, high});
    unique_.emplace(key, ref);
    return ref;
  }

  /// The reference is invalidated by the next insert() (vector growth); copy
  /// the Node before recursing, as every manager's recursion does.
  [[nodiscard]] const Node& node(Ref r) const { return nodes_[r]; }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Var num_vars() const { return num_vars_; }
  [[nodiscard]] std::size_t node_limit() const { return node_limit_; }

  /// Heap bytes of the arena + unique table (unordered_map nodes estimated
  /// at key+value+two pointers each), the backing of the "mem.*" gauges.
  [[nodiscard]] std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(Node) +
           unique_.size() * (sizeof(Key) + sizeof(Ref) + 2 * sizeof(void*)) +
           unique_.bucket_count() * sizeof(void*);
  }

 private:
  struct Key {
    Var var;
    Ref low;
    Ref high;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(util::mix64(
          (std::uint64_t{k.var} << 40) ^ (std::uint64_t{k.low} << 20) ^
          k.high));
    }
  };

  Var num_vars_;
  std::size_t node_limit_;
  const char* kind_;
  std::vector<Node> nodes_;
  std::unordered_map<Key, Ref, KeyHash> unique_;
};

/// Bounded direct-mapped computed table for (op, f, g) -> result memoization.
/// The counters decompose the miss stream: `evictions` counts colliding
/// overwrites (capacity misses), so hit rate shortfalls can be attributed to
/// cache size vs. compulsory first-sight misses.
class ComputedCache {
 public:
  explicit ComputedCache(std::size_t entries) {
    std::size_t rounded = 1;
    while (rounded < entries) rounded <<= 1;
    slots_.resize(rounded);
  }

  [[nodiscard]] bool lookup(std::uint8_t op, Ref a, Ref b, Ref& out) {
    const Entry& e = slots_[index(op, a, b)];
    if (e.a == a && e.b == b && e.op == op) {
      ++hits_;
      ++op_hits_[op & (kOpKinds - 1)];
      out = e.result;
      return true;
    }
    ++misses_;
    ++op_misses_[op & (kOpKinds - 1)];
    return false;
  }

  void store(std::uint8_t op, Ref a, Ref b, Ref result) {
    Entry& e = slots_[index(op, a, b)];
    if (e.a == kInvalidRef)
      ++occupied_;
    else if (e.a != a || e.b != b || e.op != op)
      ++evictions_;
    e = {a, b, result, op};
  }

  /// Distinct op kinds the per-op breakdown tracks; op codes are folded
  /// into this range (managers use small contiguous enums, so in practice
  /// the mapping is the identity).
  static constexpr std::size_t kOpKinds = 8;

  [[nodiscard]] std::size_t entries() const { return slots_.size(); }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  /// Per-op-kind decomposition of the hit/miss streams (op folded mod
  /// kOpKinds); sums to hits()/misses().
  [[nodiscard]] std::size_t op_hits(std::uint8_t op) const {
    return op_hits_[op & (kOpKinds - 1)];
  }
  [[nodiscard]] std::size_t op_misses(std::uint8_t op) const {
    return op_misses_[op & (kOpKinds - 1)];
  }
  [[nodiscard]] std::size_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t occupied() const { return occupied_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return slots_.capacity() * sizeof(Entry);
  }

 private:
  struct Entry {
    Ref a = kInvalidRef;  // kInvalidRef marks a never-written slot
    Ref b = 0;
    Ref result = 0;
    std::uint8_t op = 0;
  };

  [[nodiscard]] std::size_t index(std::uint8_t op, Ref a, Ref b) const {
    return static_cast<std::size_t>(
               util::mix64((std::uint64_t{a} << 34) ^
                           (std::uint64_t{op} << 32) ^ std::uint64_t{b})) &
           (slots_.size() - 1);
  }

  std::vector<Entry> slots_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t occupied_ = 0;
  std::array<std::size_t, kOpKinds> op_hits_{};
  std::array<std::size_t, kOpKinds> op_misses_{};
};

}  // namespace gpo::dd
