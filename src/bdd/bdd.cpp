#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

namespace gpo::bdd {

BddManager::BddManager(Var num_vars, std::size_t node_limit)
    : table_(num_vars, node_limit, "BDD") {}

Ref BddManager::make_node(Var var, Ref low, Ref high) {
  if (low == high) return low;  // redundant-test elimination
  return table_.insert(var, low, high);
}

Ref BddManager::var(Var v) { return make_node(v, kFalse, kTrue); }
Ref BddManager::nvar(Var v) { return make_node(v, kTrue, kFalse); }

Ref BddManager::ite(Ref f, Ref g, Ref h) { return ite_rec(f, g, h); }

Ref BddManager::ite_rec(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  TripleKey key{f, g, h};
  if (auto it = ite_cache_.find(key); it != ite_cache_.end())
    return it->second;

  Var top = node(f).var;
  top = std::min(top, node(g).var);
  top = std::min(top, node(h).var);

  auto cof = [&](Ref x, bool hi) -> Ref {
    if (node(x).var != top) return x;
    return hi ? node(x).high : node(x).low;
  };

  Ref lo = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  Ref hi = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  Ref result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

Ref BddManager::cube(const std::vector<Var>& vars) {
  std::vector<Var> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  Ref c = kTrue;
  for (Var v : sorted) c = make_node(v, kFalse, c);
  return c;
}

Ref BddManager::exists(Ref f, Ref cube) {
  std::unordered_map<TripleKey, Ref, TripleKeyHash> cache;
  return exists_rec(f, cube, cache, /*universal=*/false);
}

Ref BddManager::forall(Ref f, Ref cube) {
  std::unordered_map<TripleKey, Ref, TripleKeyHash> cache;
  return exists_rec(f, cube, cache, /*universal=*/true);
}

Ref BddManager::exists_rec(
    Ref f, Ref cube, std::unordered_map<TripleKey, Ref, TripleKeyHash>& cache,
    bool universal) {
  if (is_terminal(f)) return f;
  // Skip quantified variables above f's top level: they don't constrain f.
  while (!is_terminal(cube) && node(cube).var < node(f).var)
    cube = node(cube).high;
  if (cube == kTrue) return f;

  TripleKey key{f, cube, universal ? Ref{1} : Ref{0}};
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  // Copy: recursion below may grow the node arena and invalidate references.
  const dd::Node n = node(f);
  Ref result;
  if (n.var == node(cube).var) {
    Ref lo = exists_rec(n.low, node(cube).high, cache, universal);
    Ref hi = exists_rec(n.high, node(cube).high, cache, universal);
    result = universal ? apply_and(lo, hi) : apply_or(lo, hi);
  } else {
    Ref lo = exists_rec(n.low, cube, cache, universal);
    Ref hi = exists_rec(n.high, cube, cache, universal);
    result = make_node(n.var, lo, hi);
  }
  cache.emplace(key, result);
  return result;
}

Ref BddManager::and_exists(Ref f, Ref g, Ref cube) {
  // The persistent cache is keyed on (f, g, inner cube); clearing it when the
  // caller switches to a different top-level cube keeps it from growing
  // without bound across unrelated image computations.
  if (cube != and_exists_cube_marker_) {
    and_exists_cache_.clear();
    and_exists_cube_marker_ = cube;
  }
  return and_exists_rec(f, g, cube);
}

Ref BddManager::and_exists_rec(Ref f, Ref g, Ref cube) {
  if (f == kFalse || g == kFalse) return kFalse;
  if (cube == kTrue) return apply_and(f, g);
  if (f == kTrue && g == kTrue) return kTrue;

  TripleKey key{f, g, cube};
  if (auto it = and_exists_cache_.find(key); it != and_exists_cache_.end())
    return it->second;

  Var top = std::min(node(f).var, node(g).var);
  // Quantified variables above both supports contribute nothing.
  while (!is_terminal(cube) && node(cube).var < top)
    cube = node(cube).high;
  if (cube == kTrue) {
    Ref r = apply_and(f, g);
    and_exists_cache_.emplace(key, r);
    return r;
  }

  auto cof = [&](Ref x, bool hi) -> Ref {
    if (node(x).var != top) return x;
    return hi ? node(x).high : node(x).low;
  };

  Ref result;
  if (node(cube).var == top) {
    Ref inner = node(cube).high;
    Ref lo = and_exists_rec(cof(f, false), cof(g, false), inner);
    if (lo == kTrue) {
      result = kTrue;  // short-circuit: ∨ with anything is true
    } else {
      Ref hi = and_exists_rec(cof(f, true), cof(g, true), inner);
      result = apply_or(lo, hi);
    }
  } else {
    Ref lo = and_exists_rec(cof(f, false), cof(g, false), cube);
    Ref hi = and_exists_rec(cof(f, true), cof(g, true), cube);
    result = make_node(top, lo, hi);
  }
  and_exists_cache_.emplace(key, result);
  return result;
}

Ref BddManager::rename(Ref f, const std::vector<Var>& map) {
  // Monotonicity check over the support keeps the recursion order-safe.
  std::vector<Var> sup = support(f);
  for (std::size_t i = 1; i < sup.size(); ++i) {
    if (map[sup[i - 1]] >= map[sup[i]])
      throw std::invalid_argument(
          "BddManager::rename: map is not strictly monotone on support");
  }
  std::unordered_map<Ref, Ref> cache;
  return rename_rec(f, map, cache);
}

Ref BddManager::rename_rec(Ref f, const std::vector<Var>& map,
                           std::unordered_map<Ref, Ref>& cache) {
  if (is_terminal(f)) return f;
  if (auto it = cache.find(f); it != cache.end()) return it->second;
  // Copy: recursion below may grow the node arena and invalidate references.
  const dd::Node n = node(f);
  Ref lo = rename_rec(n.low, map, cache);
  Ref hi = rename_rec(n.high, map, cache);
  Ref result = make_node(map[n.var], lo, hi);
  cache.emplace(f, result);
  return result;
}

Ref BddManager::restrict_var(Ref f, Var v, bool value) {
  if (is_terminal(f) || node(f).var > v) return f;
  if (node(f).var == v) return value ? node(f).high : node(f).low;
  // f's top var is above v: rebuild.
  std::unordered_map<Ref, Ref> cache;
  std::function<Ref(Ref)> rec = [&](Ref x) -> Ref {
    if (is_terminal(x) || node(x).var > v) return x;
    if (node(x).var == v) return value ? node(x).high : node(x).low;
    if (auto it = cache.find(x); it != cache.end()) return it->second;
    // Copy: the recursive calls below may grow the arena.
    const dd::Node n = node(x);
    Ref r = make_node(n.var, rec(n.low), rec(n.high));
    cache.emplace(x, r);
    return r;
  };
  return rec(f);
}

double BddManager::sat_count(Ref f, const std::vector<Var>& counted_vars) {
  std::vector<Var> sorted = counted_vars;
  std::sort(sorted.begin(), sorted.end());
  const Var nv = num_vars();
  // position[v] = index of v in the counted list; num_vars sentinel if absent.
  std::vector<std::uint32_t> position(nv + 1, static_cast<std::uint32_t>(-1));
  for (std::size_t i = 0; i < sorted.size(); ++i) position[sorted[i]] = i;
  position[nv] = static_cast<std::uint32_t>(sorted.size());

  for (Var v : support(f))
    if (position[v] == static_cast<std::uint32_t>(-1))
      throw std::invalid_argument(
          "sat_count: support not contained in counted variables");

  std::unordered_map<Ref, double> cache;
  std::function<double(Ref)> rec = [&](Ref x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    if (auto it = cache.find(x); it != cache.end()) return it->second;
    const dd::Node& n = node(x);
    auto weight = [&](Ref child) {
      // Levels skipped between x and child double the count each.
      std::uint32_t from = position[n.var] + 1;
      std::uint32_t to = position[node(child).var];
      return rec(child) * std::pow(2.0, static_cast<double>(to - from));
    };
    double r = weight(n.low) + weight(n.high);
    cache.emplace(x, r);
    return r;
  };
  double top_skip = static_cast<double>(position[node(f).var]);
  return rec(f) * std::pow(2.0, top_skip);
}

util::Bitset BddManager::pick_one_sat(Ref f) {
  if (f == kFalse)
    throw std::invalid_argument("pick_one_sat: function is false");
  util::Bitset assignment(num_vars());
  Ref cur = f;
  while (!is_terminal(cur)) {
    const dd::Node& n = node(cur);
    if (n.low != kFalse) {
      cur = n.low;
    } else {
      assignment.set(n.var);
      cur = n.high;
    }
  }
  return assignment;
}

bool BddManager::enumerate_sats(
    Ref f, const std::vector<Var>& universe_vars, std::size_t max_count,
    const std::function<void(const util::Bitset&)>& visit) {
  std::vector<Var> sorted = universe_vars;
  std::sort(sorted.begin(), sorted.end());
  for (Var v : support(f))
    if (!std::binary_search(sorted.begin(), sorted.end(), v))
      throw std::invalid_argument(
          "enumerate_sats: support not contained in universe");

  std::size_t emitted = 0;
  util::Bitset assignment(num_vars());
  // Depth-first over the universe variables, expanding don't-cares.
  std::function<bool(Ref, std::size_t)> rec = [&](Ref x,
                                                  std::size_t depth) -> bool {
    if (x == kFalse) return true;
    if (depth == sorted.size()) {
      if (emitted++ >= max_count) return false;
      visit(assignment);
      return true;
    }
    Var v = sorted[depth];
    Ref lo = x, hi = x;
    if (!is_terminal(x) && node(x).var == v) {
      lo = node(x).low;
      hi = node(x).high;
    }
    assignment.reset(v);
    if (!rec(lo, depth + 1)) return false;
    assignment.set(v);
    if (!rec(hi, depth + 1)) return false;
    assignment.reset(v);
    return true;
  };
  return rec(f, 0);
}

std::vector<Var> BddManager::support(Ref f) const {
  std::vector<bool> seen(table_.size(), false);
  std::vector<bool> in_support(num_vars(), false);
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    Ref x = stack.back();
    stack.pop_back();
    if (is_terminal(x) || seen[x]) continue;
    seen[x] = true;
    in_support[node(x).var] = true;
    stack.push_back(node(x).low);
    stack.push_back(node(x).high);
  }
  std::vector<Var> out;
  for (Var v = 0; v < num_vars(); ++v)
    if (in_support[v]) out.push_back(v);
  return out;
}

std::size_t BddManager::node_count(Ref f) const {
  std::vector<bool> seen(table_.size(), false);
  std::vector<Ref> stack{f};
  std::size_t count = 0;
  bool saw_false = false, saw_true = false;
  while (!stack.empty()) {
    Ref x = stack.back();
    stack.pop_back();
    if (x == kFalse) {
      saw_false = true;
      continue;
    }
    if (x == kTrue) {
      saw_true = true;
      continue;
    }
    if (seen[x]) continue;
    seen[x] = true;
    ++count;
    stack.push_back(node(x).low);
    stack.push_back(node(x).high);
  }
  return count + (saw_false ? 1 : 0) + (saw_true ? 1 : 0);
}

}  // namespace gpo::bdd
