#include "bdd/symbolic_reach.hpp"

#include <deque>

#include "util/stopwatch.hpp"

namespace gpo::bdd {

using petri::PlaceId;
using petri::TransitionId;

std::vector<PlaceId> compute_place_order(const petri::PetriNet& net,
                                         VariableOrder order) {
  const std::size_t np = net.place_count();
  std::vector<PlaceId> out;
  out.reserve(np);
  if (order == VariableOrder::kDeclaration) {
    for (PlaceId p = 0; p < np; ++p) out.push_back(p);
    return out;
  }

  // BFS over places: p is adjacent to q when some transition connects them.
  std::vector<bool> visited(np, false);
  std::deque<PlaceId> queue;
  auto push = [&](PlaceId p) {
    if (!visited[p]) {
      visited[p] = true;
      queue.push_back(p);
    }
  };
  for (std::size_t p = net.initial_marking().find_first(); p < np;
       p = net.initial_marking().find_next(p + 1))
    push(static_cast<PlaceId>(p));
  for (PlaceId p = 0; p < np; ++p) push(p);  // cover disconnected parts

  while (!queue.empty()) {
    PlaceId p = queue.front();
    queue.pop_front();
    out.push_back(p);
    for (TransitionId t : net.place(p).post)
      for (PlaceId q : net.transition(t).post) push(q);
    for (TransitionId t : net.place(p).pre)
      for (PlaceId q : net.transition(t).pre) push(q);
  }
  return out;
}

SymbolicReachability::SymbolicReachability(const petri::PetriNet& net,
                                           SymbolicOptions options)
    : net_(net), options_(options) {
  order_ = compute_place_order(net, options_.order);
  position_.assign(net.place_count(), 0);
  for (std::uint32_t i = 0; i < order_.size(); ++i) position_[order_[i]] = i;
  manager_.emplace(static_cast<Var>(2 * net.place_count()),
                   options_.node_limit);
}

SymbolicResult SymbolicReachability::analyze() {
  SymbolicResult result;
  util::Stopwatch timer;
  BddManager& mgr = *manager_;
  const std::size_t np = net_.place_count();
  const std::size_t nt = net_.transition_count();

  try {
    // Initial state: full assignment over current-state variables.
    Ref init = kTrue;
    for (PlaceId p = 0; p < np; ++p) {
      Ref lit = net_.initial_marking().test(p) ? mgr.var(cur_var(p))
                                               : mgr.nvar(cur_var(p));
      init = mgr.apply_and(init, lit);
    }

    // Per-transition pieces: enabling condition over current vars, update
    // over next vars of touched places, quantification cube, rename map.
    std::vector<Ref> enabling(nt), relation(nt), quant_cube(nt);
    std::vector<std::vector<Var>> rename_map(nt);
    for (TransitionId t = 0; t < nt; ++t) {
      const auto& tr = net_.transition(t);
      Ref en = kTrue;
      for (PlaceId p : tr.pre) en = mgr.apply_and(en, mgr.var(cur_var(p)));
      enabling[t] = en;

      Ref rel = en;
      std::vector<Var> touched_cur;
      // Touched places: •t ∪ t•. Post places end marked; pre-only end empty.
      for (PlaceId p : tr.post)
        rel = mgr.apply_and(rel, mgr.var(nxt_var(p)));
      for (PlaceId p : tr.pre) {
        touched_cur.push_back(cur_var(p));
        if (!tr.post_bits.test(p))
          rel = mgr.apply_and(rel, mgr.nvar(nxt_var(p)));
      }
      for (PlaceId p : tr.post)
        if (!tr.pre_bits.test(p)) touched_cur.push_back(cur_var(p));
      relation[t] = rel;
      quant_cube[t] = mgr.cube(touched_cur);

      // After quantifying the touched current vars, rename the touched next
      // vars down to their current counterparts (monotone: 2k+1 -> 2k).
      std::vector<Var> map(mgr.num_vars());
      for (Var v = 0; v < mgr.num_vars(); ++v) map[v] = v;
      for (PlaceId p : tr.pre) map[nxt_var(p)] = cur_var(p);
      for (PlaceId p : tr.post) map[nxt_var(p)] = cur_var(p);
      rename_map[t] = std::move(map);
    }

    Ref reached = init;
    Ref frontier = init;
    while (frontier != kFalse) {
      if (timer.elapsed_seconds() > options_.max_seconds) {
        result.blowup = true;
        result.blowup_reason = "time limit";
        break;
      }
      if (util::cancel_requested(options_.cancel)) {
        result.blowup = true;
        result.blowup_reason = "cancelled";
        break;
      }
      ++result.iterations;
      Ref next_frontier = kFalse;
      for (TransitionId t = 0; t < nt; ++t) {
        Ref img = mgr.and_exists(frontier, relation[t], quant_cube[t]);
        img = mgr.rename(img, rename_map[t]);
        next_frontier = mgr.apply_or(next_frontier, img);
      }
      frontier = mgr.apply_diff(next_frontier, reached);
      reached = mgr.apply_or(reached, frontier);
    }
    result.peak_nodes = mgr.total_nodes();
    if (result.blowup) {
      result.seconds = timer.elapsed_seconds();
      return result;
    }

    // State count over the current-state variables.
    std::vector<Var> cur_vars;
    cur_vars.reserve(np);
    for (PlaceId p = 0; p < np; ++p) cur_vars.push_back(cur_var(p));
    result.state_count = mgr.sat_count(reached, cur_vars);

    // Deadlock: a reachable state where no transition is enabled.
    Ref some_enabled = kFalse;
    for (TransitionId t = 0; t < nt; ++t)
      some_enabled = mgr.apply_or(some_enabled, enabling[t]);
    Ref dead = mgr.apply_diff(reached, some_enabled);
    if (options_.required_deadlock_place)
      dead = mgr.apply_and(
          dead, mgr.var(cur_var(*options_.required_deadlock_place)));
    result.peak_nodes = mgr.total_nodes();
    if (dead != kFalse) {
      result.deadlock_found = true;
      util::Bitset assignment = mgr.pick_one_sat(dead);
      petri::Marking witness(np);
      for (PlaceId p = 0; p < np; ++p)
        if (assignment.test(cur_var(p))) witness.set(p);
      result.deadlock_witness = witness;
    }
  } catch (const BddLimitExceeded& e) {
    result.blowup = true;
    result.blowup_reason = e.what();
    result.peak_nodes = mgr.total_nodes();
  }
  result.seconds = timer.elapsed_seconds();
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    const std::string p = options_.metrics_prefix;
    reg.counter(p + "iterations").store(result.iterations);
    reg.counter(p + "states")
        .store(static_cast<std::uint64_t>(result.state_count));
    reg.gauge(p + "peak_nodes").set(static_cast<double>(result.peak_nodes));
    reg.gauge(p + "unique_table_load")
        .set(options_.node_limit > 0
                 ? static_cast<double>(result.peak_nodes) /
                       static_cast<double>(options_.node_limit)
                 : 0.0);
    reg.timer(p + "seconds")
        .record_ns(static_cast<std::uint64_t>(result.seconds * 1e9));
    // Node record (var, low, high = 12B) plus a unique-table entry of the
    // same key + index: ~24B per live node in this manager.
    reg.gauge("mem." + p + "node_bytes")
        .set(static_cast<double>(result.peak_nodes) * 24.0);
  }
  return result;
}

}  // namespace gpo::bdd
