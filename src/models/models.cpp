#include "models/models.hpp"

#include <optional>
#include <random>
#include <stdexcept>
#include <string>

#include "petri/builder.hpp"

namespace gpo::models {

using petri::NetBuilder;
using petri::PetriNet;
using petri::PlaceId;
using petri::TransitionId;

namespace {
std::string idx(const std::string& base, std::size_t i) {
  return base + "_" + std::to_string(i);
}
}  // namespace

PetriNet make_diamond(std::size_t n) {
  NetBuilder b("diamond" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) {
    PlaceId src = b.add_place(idx("src", i), /*marked=*/true);
    PlaceId dst = b.add_place(idx("dst", i));
    TransitionId t = b.add_transition(idx("t", i));
    b.connect(t, {src}, {dst});
  }
  return b.build();
}

PetriNet make_conflict_chain(std::size_t n) {
  NetBuilder b("conflict_chain" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) {
    PlaceId p = b.add_place(idx("p", i), /*marked=*/true);
    PlaceId qa = b.add_place(idx("qa", i));
    PlaceId qb = b.add_place(idx("qb", i));
    TransitionId a = b.add_transition(idx("A", i));
    TransitionId t = b.add_transition(idx("B", i));
    b.connect(a, {p}, {qa});
    b.connect(t, {p}, {qb});
  }
  return b.build();
}

PetriNet make_nsdp(std::size_t n) {
  if (n < 2) throw std::invalid_argument("NSDP needs at least 2 philosophers");
  NetBuilder b("nsdp" + std::to_string(n));
  std::vector<PlaceId> think(n), has_l(n), has_r(n), eat(n), fork(n);
  for (std::size_t i = 0; i < n; ++i) {
    think[i] = b.add_place(idx("think", i), /*marked=*/true);
    has_l[i] = b.add_place(idx("hasL", i));
    has_r[i] = b.add_place(idx("hasR", i));
    eat[i] = b.add_place(idx("eat", i));
    fork[i] = b.add_place(idx("fork", i), /*marked=*/true);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t right = (i + 1) % n;  // philosopher i uses fork[i], fork[i+1]
    TransitionId take_l = b.add_transition(idx("takeL", i));
    b.connect(take_l, {think[i], fork[i]}, {has_l[i]});
    TransitionId take_r = b.add_transition(idx("takeR", i));
    b.connect(take_r, {think[i], fork[right]}, {has_r[i]});
    TransitionId grab_r = b.add_transition(idx("grabR", i));
    b.connect(grab_r, {has_l[i], fork[right]}, {eat[i]});
    TransitionId grab_l = b.add_transition(idx("grabL", i));
    b.connect(grab_l, {has_r[i], fork[i]}, {eat[i]});
    TransitionId release = b.add_transition(idx("release", i));
    b.connect(release, {eat[i]}, {think[i], fork[i], fork[right]});
  }
  return b.build();
}

PetriNet make_arbiter_tree(std::size_t n) {
  if (n < 2 || (n & (n - 1)) != 0)
    throw std::invalid_argument("ASAT needs a power-of-two client count >= 2");
  NetBuilder b("asat" + std::to_string(n));

  // Each tree node k (1-based heap indexing, leaves carry clients) exposes
  // three places towards its parent: req_k, grant_k, done_k.
  std::size_t total = 2 * n - 1;  // internal cells: 1..n-1, leaves: n..2n-1
  std::vector<PlaceId> req(total + 1), grant(total + 1), done(total + 1);
  for (std::size_t k = 1; k <= total; ++k) {
    req[k] = b.add_place(idx("req", k));
    grant[k] = b.add_place(idx("grant", k));
    done[k] = b.add_place(idx("done", k));
  }

  // Clients at the leaves.
  for (std::size_t k = n; k <= total; ++k) {
    PlaceId cl_idle = b.add_place(idx("idle", k), /*marked=*/true);
    PlaceId cl_wait = b.add_place(idx("wait", k));
    PlaceId cl_crit = b.add_place(idx("crit", k));
    TransitionId request = b.add_transition(idx("request", k));
    b.connect(request, {cl_idle}, {cl_wait, req[k]});
    TransitionId enter = b.add_transition(idx("enter", k));
    b.connect(enter, {cl_wait, grant[k]}, {cl_crit});
    TransitionId leave = b.add_transition(idx("leave", k));
    b.connect(leave, {cl_crit}, {cl_idle, done[k]});
  }

  // Internal arbiter cells: forward one child request at a time, remember
  // which child is being served, pass the grant down and the release up.
  for (std::size_t k = 1; k < n; ++k) {
    std::size_t left = 2 * k, right = 2 * k + 1;
    PlaceId cell_idle = b.add_place(idx("cellidle", k), /*marked=*/true);
    PlaceId serv_l = b.add_place(idx("servL", k));
    PlaceId serv_r = b.add_place(idx("servR", k));
    PlaceId hold_l = b.add_place(idx("holdL", k));
    PlaceId hold_r = b.add_place(idx("holdR", k));
    TransitionId fwd_l = b.add_transition(idx("fwdL", k));
    b.connect(fwd_l, {req[left], cell_idle}, {req[k], serv_l});
    TransitionId fwd_r = b.add_transition(idx("fwdR", k));
    b.connect(fwd_r, {req[right], cell_idle}, {req[k], serv_r});
    TransitionId gr_l = b.add_transition(idx("grantL", k));
    b.connect(gr_l, {grant[k], serv_l}, {grant[left], hold_l});
    TransitionId gr_r = b.add_transition(idx("grantR", k));
    b.connect(gr_r, {grant[k], serv_r}, {grant[right], hold_r});
    TransitionId rel_l = b.add_transition(idx("relL", k));
    b.connect(rel_l, {done[left], hold_l}, {done[k], cell_idle});
    TransitionId rel_r = b.add_transition(idx("relR", k));
    b.connect(rel_r, {done[right], hold_r}, {done[k], cell_idle});
  }

  // Root: grants the single token of the shared resource.
  PlaceId root_free = b.add_place("root_free", /*marked=*/true);
  TransitionId root_grant = b.add_transition("root_grant");
  b.connect(root_grant, {req[1], root_free}, {grant[1]});
  TransitionId root_done = b.add_transition("root_done");
  b.connect(root_done, {done[1]}, {root_free});
  return b.build();
}

PetriNet make_overtake(std::size_t n) {
  if (n < 2) throw std::invalid_argument("OVER needs at least 2 cars");
  NetBuilder b("over" + std::to_string(n));
  // One overtake session per car: car i (i < n-1) asks the car ahead for
  // permission to pass; the car ahead acks while driving, nacks while itself
  // asking or when already done. A nacked car retries; a successful pass
  // retires the car to `done`. The bug the protocol exhibits: once the car
  // ahead retires, a pending ack can never come, so a whole chain retiring
  // front-to-back strands the asker — a genuine reachable deadlock.
  std::vector<PlaceId> drive(n), asking(n), passing(n), done(n);
  for (std::size_t i = 0; i < n; ++i) {
    drive[i] = b.add_place(idx("drive", i), /*marked=*/true);
    asking[i] = b.add_place(idx("asking", i));
    passing[i] = b.add_place(idx("passing", i));
    done[i] = b.add_place(idx("done", i));
  }
  // The last car never overtakes; it retires directly.
  TransitionId retire_last = b.add_transition(idx("retire", n - 1));
  b.connect(retire_last, {drive[n - 1]}, {done[n - 1]});

  for (std::size_t i = 0; i + 1 < n; ++i) {
    // Channels between car i and the car ahead of it, i+1.
    PlaceId req = b.add_place(idx("req", i));
    PlaceId ack = b.add_place(idx("ack", i));
    PlaceId nack = b.add_place(idx("nack", i));
    PlaceId busy = b.add_place(idx("busy", i));  // car i+1 held by the pass

    TransitionId ask = b.add_transition(idx("ask", i));
    b.connect(ask, {drive[i]}, {asking[i], req});
    // Car i+1 acks when simply driving; nacks while itself engaged.
    TransitionId do_ack = b.add_transition(idx("ackRsp", i));
    b.connect(do_ack, {req, drive[i + 1]}, {ack, busy});
    TransitionId nack_ask = b.add_transition(idx("nackAsk", i));
    b.connect(nack_ask, {req, asking[i + 1]}, {nack, asking[i + 1]});
    TransitionId pass = b.add_transition(idx("pass", i));
    b.connect(pass, {asking[i], ack}, {passing[i]});
    TransitionId finish = b.add_transition(idx("finish", i));
    b.connect(finish, {passing[i], busy}, {done[i], drive[i + 1]});
    TransitionId retry = b.add_transition(idx("retry", i));
    b.connect(retry, {asking[i], nack}, {drive[i]});
  }
  return b.build();
}

PetriNet make_readers_writers(std::size_t n) {
  if (n < 1) throw std::invalid_argument("RW needs at least 1 process");
  NetBuilder b("rw" + std::to_string(n));
  std::vector<PlaceId> idle(n), reading(n), writing(n), rtok(n);
  for (std::size_t i = 0; i < n; ++i) {
    idle[i] = b.add_place(idx("idle", i), /*marked=*/true);
    reading[i] = b.add_place(idx("reading", i));
    writing[i] = b.add_place(idx("writing", i));
    rtok[i] = b.add_place(idx("rtok", i), /*marked=*/true);
  }
  for (std::size_t i = 0; i < n; ++i) {
    TransitionId start_read = b.add_transition(idx("startR", i));
    b.connect(start_read, {idle[i], rtok[i]}, {reading[i]});
    TransitionId end_read = b.add_transition(idx("endR", i));
    b.connect(end_read, {reading[i]}, {idle[i], rtok[i]});
    TransitionId start_write = b.add_transition(idx("startW", i));
    std::vector<PlaceId> pre{idle[i]};
    for (std::size_t j = 0; j < n; ++j) pre.push_back(rtok[j]);
    b.connect(start_write, pre, {writing[i]});
    TransitionId end_write = b.add_transition(idx("endW", i));
    std::vector<PlaceId> post{idle[i]};
    for (std::size_t j = 0; j < n; ++j) post.push_back(rtok[j]);
    b.connect(end_write, {writing[i]}, post);
  }
  return b.build();
}

PetriNet make_fig3() {
  NetBuilder b("fig3");
  PlaceId p1 = b.add_place("p1", /*marked=*/true);
  PlaceId p2 = b.add_place("p2");
  PlaceId p3 = b.add_place("p3");
  PlaceId p4 = b.add_place("p4");
  PlaceId p5 = b.add_place("p5");
  PlaceId p6 = b.add_place("p6");
  TransitionId a = b.add_transition("A");
  b.connect(a, {p1}, {p2, p3});
  TransitionId t = b.add_transition("B");
  b.connect(t, {p1}, {p4});
  TransitionId c = b.add_transition("C");
  b.connect(c, {p2, p3}, {p5});
  TransitionId d = b.add_transition("D");
  b.connect(d, {p3, p4}, {p6});
  return b.build();
}

PetriNet make_fig5() {
  NetBuilder b("fig5");
  PlaceId p0 = b.add_place("p0", /*marked=*/true);
  PlaceId p1 = b.add_place("p1", /*marked=*/true);
  PlaceId p2 = b.add_place("p2");
  PlaceId p3 = b.add_place("p3");
  PlaceId p4 = b.add_place("p4");
  TransitionId a = b.add_transition("A");
  b.connect(a, {p0, p1}, {p3});
  TransitionId t = b.add_transition("B");
  b.connect(t, {p0, p2}, {p4});
  return b.build();
}

PetriNet make_fig7() {
  NetBuilder b("fig7");
  PlaceId p0 = b.add_place("p0", /*marked=*/true);
  PlaceId p1 = b.add_place("p1");
  PlaceId p2 = b.add_place("p2");
  PlaceId p3 = b.add_place("p3", /*marked=*/true);
  PlaceId p4 = b.add_place("p4");
  PlaceId p5 = b.add_place("p5");
  TransitionId a = b.add_transition("A");
  b.connect(a, {p0}, {p1});
  TransitionId t = b.add_transition("B");
  b.connect(t, {p0}, {p2});
  TransitionId c = b.add_transition("C");
  b.connect(c, {p1, p3}, {p4});
  TransitionId d = b.add_transition("D");
  b.connect(d, {p2, p3}, {p5});
  return b.build();
}

PetriNet make_cyclic_scheduler(std::size_t n) {
  if (n < 2) throw std::invalid_argument("scheduler needs at least 2 cells");
  NetBuilder b("cysched" + std::to_string(n));
  std::vector<PlaceId> tok(n), idle(n), busy(n);
  for (std::size_t i = 0; i < n; ++i) {
    tok[i] = b.add_place(idx("tok", i), /*marked=*/i == 0);
    idle[i] = b.add_place(idx("idle", i), /*marked=*/true);
    busy[i] = b.add_place(idx("busy", i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    TransitionId start = b.add_transition(idx("start", i));
    b.connect(start, {tok[i], idle[i]}, {busy[i], tok[(i + 1) % n]});
    TransitionId finish = b.add_transition(idx("finish", i));
    b.connect(finish, {busy[i]}, {idle[i]});
  }
  return b.build();
}

PetriNet make_slotted_ring(std::size_t n) {
  if (n < 2) throw std::invalid_argument("ring needs at least 2 nodes");
  NetBuilder b("ring" + std::to_string(n));
  // Position i holds exactly one of: no slot (empty), an empty slot (free),
  // a slot carrying a message (full). Node i is ready to send or waiting
  // for its message to come back around.
  std::vector<PlaceId> empty(n), free_slot(n), full(n), ready(n), waiting(n);
  for (std::size_t i = 0; i < n; ++i) {
    bool has_slot = i % 2 == 0;  // ceil(n/2) slots, the rest empty
    empty[i] = b.add_place(idx("empty", i), /*marked=*/!has_slot);
    free_slot[i] = b.add_place(idx("free", i), /*marked=*/has_slot);
    full[i] = b.add_place(idx("full", i));
    ready[i] = b.add_place(idx("ready", i), /*marked=*/true);
    waiting[i] = b.add_place(idx("waiting", i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t next = (i + 1) % n;
    TransitionId move_free = b.add_transition(idx("moveF", i));
    b.connect(move_free, {free_slot[i], empty[next]},
              {empty[i], free_slot[next]});
    TransitionId fill = b.add_transition(idx("fill", i));
    b.connect(fill, {free_slot[i], empty[next], ready[i]},
              {empty[i], full[next], waiting[i]});
    TransitionId move_full = b.add_transition(idx("moveM", i));
    b.connect(move_full, {full[i], empty[next]}, {empty[i], full[next]});
    TransitionId receive = b.add_transition(idx("recv", i));
    b.connect(receive, {full[i], waiting[i]}, {free_slot[i], ready[i]});
  }
  return b.build();
}

PetriNet make_random_net(const RandomNetParams& params) {
  std::mt19937_64 rng(params.seed);
  NetBuilder b("random_" + std::to_string(params.seed));
  std::vector<std::vector<PlaceId>> state(params.machines);
  for (std::size_t m = 0; m < params.machines; ++m) {
    state[m].resize(params.states_per_machine);
    for (std::size_t j = 0; j < params.states_per_machine; ++j) {
      // Built with += (not operator+ chains): GCC 12's -Wrestrict fires a
      // bogus overlap warning on `const char* + std::string&&` at -O3.
      std::string name = "m";
      name += std::to_string(m);
      name += 's';
      name += std::to_string(j);
      state[m][j] = b.add_place(name, /*marked=*/j == 0);
    }
  }
  auto rand_below = [&](std::size_t bound) {
    return std::uniform_int_distribution<std::size_t>(0, bound - 1)(rng);
  };
  for (std::size_t t = 0; t < params.transitions; ++t) {
    bool sync = params.machines >= 2 &&
                rand_below(100) < params.sync_percent;
    std::size_t m1 = rand_below(params.machines);
    std::vector<PlaceId> pre{state[m1][rand_below(params.states_per_machine)]};
    std::vector<PlaceId> post{
        state[m1][rand_below(params.states_per_machine)]};
    if (sync) {
      std::size_t m2 = rand_below(params.machines - 1);
      if (m2 >= m1) ++m2;
      pre.push_back(state[m2][rand_below(params.states_per_machine)]);
      post.push_back(state[m2][rand_below(params.states_per_machine)]);
    }
    // Skip degenerate duplicates (same pre twice etc. cannot occur since the
    // two machines are distinct; identical pre/post self-loops are fine).
    std::string tname = "t";
    tname += std::to_string(t);
    TransitionId tr = b.add_transition(tname);
    b.connect(tr, pre, post);
  }
  return b.build();
}

std::optional<petri::PetriNet> make_by_spec(const std::string& spec) {
  auto colon = spec.find(':');
  std::string name = spec.substr(0, colon);
  std::size_t n = 0;
  if (colon != std::string::npos) n = std::stoul(spec.substr(colon + 1));
  if (name == "nsdp") return make_nsdp(n);
  if (name == "asat") return make_arbiter_tree(n);
  if (name == "over") return make_overtake(n);
  if (name == "rw") return make_readers_writers(n);
  if (name == "diamond") return make_diamond(n);
  if (name == "chain") return make_conflict_chain(n);
  if (name == "cyclic") return make_cyclic_scheduler(n);
  if (name == "ring") return make_slotted_ring(n);
  if (name == "fig3") return make_fig3();
  if (name == "fig5") return make_fig5();
  if (name == "fig7") return make_fig7();
  return std::nullopt;
}

}  // namespace gpo::models
