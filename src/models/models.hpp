// Parameterized benchmark models — reconstructions of the four Table-1
// families (NSDP, ASAT, OVER, RW), the two motivating figure nets (Fig 1
// diamond, Fig 2 conflict chain), and the Section-3 walkthrough nets
// (Figs 3/5/7). The original SPIN/Corbett sources are unavailable, so each
// family is rebuilt as a safe Petri net from its published description; see
// DESIGN.md ("Baseline substitutions") for what each preserves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "petri/net.hpp"

namespace gpo::models {

/// Fig. 1: n fully concurrent transitions (independent source/sink pairs).
/// Full reachability graph: 2^n markings with n! interleavings; partial-order
/// methods need n+1 states; GPO needs 2.
[[nodiscard]] petri::PetriNet make_diamond(std::size_t n);

/// Fig. 2: n concurrently marked conflict places, pair (A_i, B_i) each.
/// Full graph: 3^n states. Classical partial-order analysis: 2^{n+1}-1
/// (the binary anticipation tree of the paper). GPO: 2 states.
[[nodiscard]] petri::PetriNet make_conflict_chain(std::size_t n);

/// NSDP(n): non-serialized dining philosophers — each philosopher may pick
/// either fork first, so the classic "everybody holds one fork" deadlock is
/// reachable. Places per philosopher: think/hasL/hasR/eat + one fork place
/// between neighbours.
[[nodiscard]] petri::PetriNet make_nsdp(std::size_t n);

/// ASAT(n): asynchronous arbiter tree serving n clients (n a power of two)
/// through a binary tree of arbiter cells; each cell arbitrates between its
/// two children (one structural conflict per cell), the root grants.
/// Deadlock-free.
[[nodiscard]] petri::PetriNet make_arbiter_tree(std::size_t n);

/// OVER(n): overtake protocol — n cars in a row; car i may request to
/// overtake car i+1, which acks when driving or nacks when itself engaged in
/// an overtake. Conditional behaviour on every channel.
[[nodiscard]] petri::PetriNet make_overtake(std::size_t n);

/// RW(n): readers/writers over a shared object — reader i takes its own
/// read token, writer i must collect every read token. All start transitions
/// form one conflict clique through the shared tokens, which is why
/// classical partial-order reduction degenerates to the full graph here
/// (the paper's RW observation) while GPO stays constant.
[[nodiscard]] petri::PetriNet make_readers_writers(std::size_t n);

/// Fig. 3 walkthrough net: conflict pair (A, B) on p1; C joins A's two
/// outputs; D joins one output of A with B's output (blocked by conflicting
/// colors).
[[nodiscard]] petri::PetriNet make_fig3();

/// Fig. 5 walkthrough net: A: {p0,p1}->p3, B: {p0,p2}->p4 (conflict on p0).
[[nodiscard]] petri::PetriNet make_fig5();

/// Fig. 7 walkthrough net: conflict pairs {A,B} (on p0) and {C,D} (on p3);
/// firing {C,D} after {A,B} induces the "extended conflict" r2 =
/// {{A,C},{B,D}} of the paper.
[[nodiscard]] petri::PetriNet make_fig7();

/// Milner's cyclic scheduler for n tasks: scheduler cell i starts task i,
/// passes the token to cell i+1, and may only restart task i once it both
/// holds the token again and task i finished. A classic POR benchmark with
/// much concurrency and little conflict; deadlock-free.
[[nodiscard]] petri::PetriNet make_cyclic_scheduler(std::size_t n);

/// Slotted ring protocol with n nodes: one message slot circulates; each
/// node may fill a free slot passing by or consume a full slot addressed to
/// it (a conflict at every node between "use" and "forward"). Deadlock-free.
[[nodiscard]] petri::PetriNet make_slotted_ring(std::size_t n);

struct RandomNetParams {
  std::size_t machines = 3;
  std::size_t states_per_machine = 4;
  std::size_t transitions = 12;
  /// Probability (percent) that a transition synchronizes two machines.
  std::uint32_t sync_percent = 50;
  std::uint64_t seed = 1;
};

/// Random 1-safe net: a product of state machines with one token each and
/// fused (synchronizing) transitions; safe by construction. Used by the
/// cross-engine property tests.
[[nodiscard]] petri::PetriNet make_random_net(const RandomNetParams& params);

/// Builds a model from a "name:size" spec ("nsdp:8", "rw:12", "fig7") — the
/// shared lookup behind `julie --model`, batch manifests and the server's
/// CHECK command. Names: nsdp, asat, over, rw, diamond, chain, cyclic, ring,
/// fig3, fig5, fig7. Returns std::nullopt for an unknown name; throws
/// std::invalid_argument/std::out_of_range on a malformed size.
[[nodiscard]] std::optional<petri::PetriNet> make_by_spec(
    const std::string& spec);

}  // namespace gpo::models
