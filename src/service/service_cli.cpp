#include "service/service_cli.hpp"

#include <fstream>
#include <iostream>
#include <string>

#include "obs/report.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"

namespace gpo::service {

namespace {

int batch_usage() {
  std::cerr
      << "usage: julie batch <manifest> [options]\n"
      << "  --report FILE      write a JSON run report with one jobs[] entry\n"
      << "                     per manifest line (schema:\n"
      << "                     bench/report_schema.json)\n"
      << "  --pool-threads N   global worker-pool width shared by ALL jobs\n"
      << "                     and racers (default: hardware concurrency);\n"
      << "                     there is no per-job --threads\n"
      << "  --quiet            suppress the per-job progress lines\n"
      << "manifest line: <model> [engines=E1,..] [max-seconds=S]\n"
      << "               [max-states=N] [expect=deadlock|no-deadlock]\n";
  return 2;
}

void print_job(const JobResult& r) {
  std::cout << "job " << r.id << " " << r.model << ": " << r.verdict;
  if (!r.winner.empty()) std::cout << " (winner " << r.winner << ")";
  if (!r.expect.empty() && !r.expect_matched)
    std::cout << " EXPECTED " << r.expect;
  if (!r.error.empty()) std::cout << " [" << r.error << "]";
  std::cout << "  (" << r.seconds << "s";
  if (r.cancel_latency_seconds > 0)
    std::cout << ", cancel latency " << r.cancel_latency_seconds << "s";
  std::cout << ")\n";
}

}  // namespace

int batch_main(int argc, char** argv) {
  std::string manifest_file, report_file;
  SchedulerOptions sched;
  bool quiet = false;

  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--report") {
      report_file = next();
    } else if (arg == "--pool-threads") {
      sched.pool_threads = std::stoul(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h" ||
               (!arg.empty() && arg[0] == '-')) {
      if (arg != "--help" && arg != "-h")
        std::cerr << "unknown option " << arg << "\n";
      return batch_usage();
    } else if (manifest_file.empty()) {
      manifest_file = arg;
    } else {
      std::cerr << "extra argument '" << arg << "'\n";
      return batch_usage();
    }
  }
  if (manifest_file.empty()) return batch_usage();

  Manifest manifest;
  try {
    manifest = parse_manifest_file(manifest_file);
  } catch (const std::exception& e) {
    std::cerr << "error: " << manifest_file << ": " << e.what() << "\n";
    return 2;
  }
  if (manifest.jobs.empty()) {
    std::cerr << "error: " << manifest_file << " contains no jobs\n";
    return 2;
  }

  std::vector<JobResult> results = run_batch(manifest, std::move(sched));

  std::size_t failures = 0;
  for (const JobResult& r : results) {
    if (!quiet) print_job(r);
    if (r.verdict == "error" || !r.expect_matched ||
        (r.verdict == "undecided" && !r.expect.empty()))
      ++failures;
  }
  if (!quiet)
    std::cout << results.size() << " jobs, " << failures << " failures\n";

  if (!report_file.empty()) {
    obs::RunReport report("julie batch");
    report.set_command("julie batch " + manifest_file);
    add_jobs_to_report(report, results);
    std::ofstream out(report_file);
    if (!out) {
      std::cerr << "cannot write " << report_file << "\n";
      return 1;
    }
    report.write(out, nullptr, nullptr);
    if (!quiet) std::cout << "wrote " << report_file << "\n";
  }
  return failures == 0 ? 0 : 1;
}

int serve_main(int argc, char** argv) {
  ServerOptions options;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--pool-threads" && i + 1 < argc) {
      options.pool_threads = std::stoul(argv[++i]);
    } else {
      std::cerr << "usage: julie serve [--pool-threads N]\n"
                << "line protocol on stdin/stdout; see src/service/"
                   "server.hpp\n";
      return 2;
    }
  }
  serve(std::cin, std::cout, options);
  return 0;
}

}  // namespace gpo::service
