#include "service/service_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/diag.hpp"
#include "obs/event_log.hpp"
#include "obs/heartbeat.hpp"
#include "obs/report.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"

namespace gpo::service {

namespace {

int batch_usage() {
  std::cerr
      << "usage: julie batch <manifest> [options]\n"
      << "  --report FILE      write a JSON run report with one jobs[] entry\n"
      << "                     per manifest line (schema:\n"
      << "                     bench/report_schema.json)\n"
      << "  --events FILE      write a JSONL event log of job lifecycle\n"
      << "                     transitions (overrides the manifest's\n"
      << "                     events= directive)\n"
      << "  --progress [SECS]  heartbeat line on stderr every SECS (def 1)\n"
      << "                     with live queue depth\n"
      << "  --stats            print the scheduler's service.* metrics\n"
      << "                     (latency percentiles) on stderr at the end\n"
      << "  --pool-threads N   global worker-pool width shared by ALL jobs\n"
      << "                     and racers (default: hardware concurrency);\n"
      << "                     there is no per-job --threads\n"
      << "  --quiet            suppress the per-job progress lines\n"
      << "manifest line: <model> [engines=E1,..] [max-seconds=S]\n"
      << "               [max-states=N] [expect=deadlock|no-deadlock]\n"
      << "manifest directive: events=FILE\n";
  return 2;
}

void print_job(const JobResult& r) {
  std::cout << "job " << r.id << " " << r.model << ": " << r.verdict;
  if (!r.winner.empty()) std::cout << " (winner " << r.winner << ")";
  if (!r.expect.empty() && !r.expect_matched)
    std::cout << " EXPECTED " << r.expect;
  if (!r.error.empty()) std::cout << " [" << r.error << "]";
  if (r.reduction.has_value())
    std::cout << " [reduce " << r.reduction->level << ": "
              << r.reduction->places_before << "p/"
              << r.reduction->transitions_before << "t -> "
              << r.reduction->places_after << "p/"
              << r.reduction->transitions_after << "t]";
  std::cout << "  (" << r.seconds << "s";
  if (r.cancel_latency_seconds > 0)
    std::cout << ", cancel latency " << r.cancel_latency_seconds << "s";
  std::cout << ")\n";
  for (const EngineOutcome& o : r.engines)
    for (const std::string& w : o.warnings)
      std::cerr << "warning: job " << r.id << " " << o.engine << ": " << w
                << "\n";
}

/// Stderr dump of the scheduler's own telemetry scope (--stats): one line
/// per slot, histograms with their percentile estimates.
void print_service_stats(const obs::MetricsRegistry& reg) {
  obs::DiagSink& sink = obs::DiagSink::instance();
  sink.line("service stats:");
  for (const obs::MetricsRegistry::Snapshot& s : reg.snapshot("service.")) {
    char buf[160];
    switch (s.kind) {
      case obs::MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "  %s = %llu", s.name.c_str(),
                      static_cast<unsigned long long>(s.count));
        break;
      case obs::MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "  %s = %g", s.name.c_str(), s.value);
        break;
      case obs::MetricKind::kTimer:
        std::snprintf(buf, sizeof(buf), "  %s = %.6fs (n=%llu)",
                      s.name.c_str(), s.value,
                      static_cast<unsigned long long>(s.count));
        break;
      case obs::MetricKind::kHistogram:
        std::snprintf(buf, sizeof(buf),
                      "  %s = {n=%llu p50=%.6fs p90=%.6fs p99=%.6fs "
                      "max=%.6fs}",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.count), s.p50, s.p90,
                      s.p99, s.max);
        break;
    }
    sink.line(buf);
  }
}

/// `--progress [SECS]`: consumes an optional numeric argument (same pattern
/// as julie's solo flag). Returns the interval, default 1 s.
double parse_progress_arg(int argc, char** argv, int& i) {
  if (i + 1 < argc) {
    char* end = nullptr;
    double secs = std::strtod(argv[i + 1], &end);
    if (end != argv[i + 1] && *end == '\0' && secs > 0) {
      ++i;
      return secs;
    }
  }
  return 1.0;
}

}  // namespace

int batch_main(int argc, char** argv) {
  std::string manifest_file, report_file, events_file;
  SchedulerOptions sched;
  bool quiet = false;
  bool want_stats = false;
  double progress_secs = 0;

  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--report") {
      report_file = next();
    } else if (arg == "--events") {
      events_file = next();
    } else if (arg == "--progress") {
      progress_secs = parse_progress_arg(argc, argv, i);
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--pool-threads") {
      sched.pool_threads = std::stoul(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h" ||
               (!arg.empty() && arg[0] == '-')) {
      if (arg != "--help" && arg != "-h")
        std::cerr << "unknown option " << arg << "\n";
      return batch_usage();
    } else if (manifest_file.empty()) {
      manifest_file = arg;
    } else {
      std::cerr << "extra argument '" << arg << "'\n";
      return batch_usage();
    }
  }
  if (manifest_file.empty()) return batch_usage();

  Manifest manifest;
  try {
    manifest = parse_manifest_file(manifest_file);
  } catch (const std::exception& e) {
    std::cerr << "error: " << manifest_file << ": " << e.what() << "\n";
    return 2;
  }
  if (manifest.jobs.empty()) {
    std::cerr << "error: " << manifest_file << " contains no jobs\n";
    return 2;
  }

  // The CLI flag wins over the manifest's events= directive.
  const std::string events_path =
      !events_file.empty() ? events_file : manifest.events_path;
  std::unique_ptr<obs::EventLog> events;
  if (!events_path.empty()) {
    try {
      events = std::make_unique<obs::EventLog>(events_path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    sched.events = events.get();
  }

  // Direct scheduler use (not run_batch): the heartbeat, the --stats dump
  // and the report's histograms section all read scheduler.service_metrics,
  // which run_batch would destroy on return.
  PortfolioScheduler scheduler(std::move(sched));
  std::unique_ptr<obs::Heartbeat> heartbeat;
  if (progress_secs > 0) {
    heartbeat = std::make_unique<obs::Heartbeat>(
        scheduler.service_metrics(), nullptr, progress_secs, std::cerr);
    heartbeat->start();
  }

  for (const JobSpec& spec : manifest.jobs) scheduler.submit(spec);
  std::vector<JobResult> results;
  results.reserve(manifest.jobs.size());
  for (std::size_t id = 0; id < manifest.jobs.size(); ++id)
    results.push_back(scheduler.wait(id));

  if (heartbeat != nullptr) heartbeat->stop();
  if (events != nullptr) events->close();

  std::size_t failures = 0;
  for (const JobResult& r : results) {
    if (!quiet) print_job(r);
    if (r.verdict == "error" || !r.expect_matched ||
        (r.verdict == "undecided" && !r.expect.empty()))
      ++failures;
  }
  if (!quiet)
    std::cout << results.size() << " jobs, " << failures << " failures\n";
  if (want_stats) print_service_stats(scheduler.service_metrics());

  if (!report_file.empty()) {
    obs::RunReport report("julie batch");
    report.set_command("julie batch " + manifest_file);
    add_jobs_to_report(report, results);
    if (!events_path.empty()) report.set_events_path(events_path);
    std::ofstream out(report_file);
    if (!out) {
      std::cerr << "cannot write " << report_file << "\n";
      return 1;
    }
    report.write(out, nullptr, &scheduler.service_metrics());
    if (!quiet) std::cout << "wrote " << report_file << "\n";
  }
  return failures == 0 ? 0 : 1;
}

int serve_main(int argc, char** argv) {
  ServerOptions options;
  std::string events_file;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--pool-threads" && i + 1 < argc) {
      options.pool_threads = std::stoul(argv[++i]);
    } else if (arg == "--events" && i + 1 < argc) {
      events_file = argv[++i];
    } else if (arg == "--progress") {
      options.progress_secs = parse_progress_arg(argc, argv, i);
    } else {
      std::cerr << "usage: julie serve [--pool-threads N] [--events FILE]\n"
                << "                   [--progress [SECS]]\n"
                << "line protocol on stdin/stdout; see src/service/"
                   "server.hpp\n";
      return 2;
    }
  }
  std::unique_ptr<obs::EventLog> events;
  if (!events_file.empty()) {
    try {
      events = std::make_unique<obs::EventLog>(events_file);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    options.events = events.get();
  }
  serve(std::cin, std::cout, options);
  return 0;
}

}  // namespace gpo::service
