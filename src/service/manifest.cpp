#include "service/manifest.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>

#include "reduce/reduce.hpp"

namespace gpo::service {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) pos = s.size();
    if (pos > start) out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  std::ostringstream msg;
  msg << "manifest";
  if (line_no > 0) msg << " line " << line_no;
  msg << ": " << what;
  throw ManifestError(msg.str());
}

}  // namespace

const std::vector<std::string>& default_portfolio() {
  static const std::vector<std::string> kDefault = {"gpo-intern", "por", "bdd",
                                                    "unfold"};
  return kDefault;
}

bool is_known_engine(const std::string& name) {
  static const char* kKnown[] = {"full",    "por",        "bdd",    "gpo",
                                 "gpo-intern", "gpo-bdd", "unfold"};
  return std::any_of(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return name == k; });
}

JobSpec parse_job_line(const std::string& line, std::size_t line_no) {
  std::istringstream in(line);
  JobSpec spec;
  spec.line = line_no;
  if (!(in >> spec.model)) fail(line_no, "missing model");
  std::string field;
  while (in >> field) {
    std::size_t eq = field.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= field.size())
      fail(line_no, "malformed field '" + field + "' (want key=value)");
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    try {
      if (key == "engines") {
        spec.engines = split(value, ',');
        if (spec.engines.empty()) fail(line_no, "engines= names no engine");
        for (const std::string& e : spec.engines)
          if (!is_known_engine(e))
            fail(line_no, "unknown engine '" + e + "'");
      } else if (key == "max-seconds") {
        spec.max_seconds = std::stod(value);
        if (!(spec.max_seconds > 0))
          fail(line_no, "max-seconds must be positive");
      } else if (key == "max-states") {
        spec.max_states = std::stoul(value);
        if (spec.max_states == 0) fail(line_no, "max-states must be positive");
      } else if (key == "family-store") {
        if (value != "explicit" && value != "zdd")
          fail(line_no,
               "family-store must be explicit or zdd, got '" + value + "'");
        spec.family_store = value;
      } else if (key == "reduce") {
        if (!reduce::parse_reduce_level(value))
          fail(line_no, "reduce must be off, safe or aggressive, got '" +
                            value + "'");
        spec.reduce = value;
      } else if (key == "threads") {
        spec.threads = std::stoul(value);
        if (spec.threads == 0) fail(line_no, "threads must be positive");
      } else if (key == "expect") {
        if (value != "deadlock" && value != "no-deadlock")
          fail(line_no, "expect must be deadlock or no-deadlock, got '" +
                            value + "'");
        spec.expect = value;
      } else {
        fail(line_no, "unknown key '" + key + "'");
      }
    } catch (const ManifestError&) {
      throw;
    } catch (const std::exception&) {
      fail(line_no, "bad value for " + key + ": '" + value + "'");
    }
  }
  return spec;
}

Manifest parse_manifest(std::istream& in) {
  Manifest m;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    std::size_t last = line.find_last_not_of(" \t\r");
    std::string trimmed = line.substr(first, last - first + 1);
    // Manifest-level directive, not a job: the event-log destination.
    if (trimmed.compare(0, 7, "events=") == 0) {
      if (trimmed.size() == 7) fail(line_no, "events= names no file");
      m.events_path = trimmed.substr(7);
      continue;
    }
    m.jobs.push_back(parse_job_line(line, line_no));
  }
  return m;
}

Manifest parse_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ManifestError("cannot read manifest '" + path + "'");
  return parse_manifest(in);
}

}  // namespace gpo::service
