#include "service/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "models/models.hpp"
#include "obs/event_log.hpp"
#include "parser/net_format.hpp"
#include "parser/pnml.hpp"
#include "reduce/reduce.hpp"
#include "util/work_stealing.hpp"

namespace gpo::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool ends_with(const std::string& s, const char* suffix) {
  std::string_view sv(suffix);
  return s.size() >= sv.size() &&
         s.compare(s.size() - sv.size(), sv.size(), sv) == 0;
}

/// Loads a job's net: net-file path (by extension) or built-in model spec.
petri::PetriNet load_net(const std::string& model) {
  if (ends_with(model, ".pnml")) return parser::parse_pnml_file(model);
  if (ends_with(model, ".net")) return parser::parse_net_file(model);
  auto m = models::make_by_spec(model);
  if (!m) throw ManifestError("unknown model '" + model + "'");
  return std::move(*m);
}

/// The global pool: W workers over the shared work-stealing deques (the
/// same structure the parallel engines use for frontiers). Tasks are
/// whole racer runs — coarse, long-blocking items — so the boring
/// mutex-per-deque queues are far from contended.
class Pool {
 public:
  /// `depth` (optional) is kept equal to the number of submitted-but-not-
  /// yet-started tasks — the live queue-depth gauge.
  explicit Pool(std::size_t workers, obs::Gauge* depth = nullptr)
      : queues_(workers), depth_(depth) {
    threads_.reserve(queues_.worker_count());
    for (std::size_t i = 0; i < queues_.worker_count(); ++i)
      threads_.emplace_back([this, i] { worker(i); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] std::size_t workers() const { return queues_.worker_count(); }

  void submit(std::function<void()> task) {
    std::size_t depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (depth_ != nullptr) depth_->set(static_cast<double>(depth));
    queues_.push(next_.fetch_add(1, std::memory_order_relaxed) % workers(),
                 std::move(task));
    // Pairing the notify with the queue's own mutex would require exposing
    // it; instead sleepers use a bounded wait, so a lost notify costs at
    // most one wait quantum, never a hang.
    cv_.notify_one();
  }

  /// Tasks submitted but not yet picked up by a worker.
  [[nodiscard]] std::size_t queued() const {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  // Workers take the OLDEST item (the deques' steal end) from their own
  // queue first, then probe the others round-robin. FIFO matters here,
  // unlike in the engines' frontier use of the same deques: racers must
  // start in submission order, or a narrow pool can run a job's slowest
  // racer before the racer that would have decided the race and cancelled
  // it.
  void worker(std::size_t me) {
    std::function<void()> task;
    while (true) {
      bool got = false;
      for (std::size_t k = 0; k < queues_.worker_count() && !got; ++k)
        got = queues_.steal((me + k) % queues_.worker_count(), task);
      if (got) {
        std::size_t depth =
            queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
        if (depth_ != nullptr) depth_->set(static_cast<double>(depth));
        task();
        task = nullptr;
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return;
      cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
  }

  util::WorkStealingQueues<std::function<void()>> queues_;
  obs::Gauge* depth_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> next_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace

struct PortfolioScheduler::Impl {
  struct JobState {
    JobSpec spec;
    std::vector<std::string> engine_names;
    /// The net the racers run on: the loaded net, or (with reduce=) its
    /// reduction. `original` and `certificate` are set only in the latter
    /// case, for mapping the winner's counterexample back.
    std::optional<petri::PetriNet> net;
    std::optional<petri::PetriNet> original;
    std::optional<reduce::ReductionCertificate> certificate;
    util::CancelToken token;
    std::shared_ptr<obs::MetricsRegistry> metrics;
    Clock::time_point submitted_at;
    Clock::time_point cancel_at;

    std::mutex mu;
    std::condition_variable cv;
    bool decided = false;  // a winner fired the token
    bool started = false;  // some racer actually began running
    std::size_t remaining = 0;
    bool done = false;
    JobResult result;
  };

  explicit Impl(SchedulerOptions opts)
      : options(std::move(opts)),
        registry(options.registry != nullptr ? *options.registry
                                             : default_engine_registry()),
        jobs_submitted(service_metrics.counter("service.jobs.submitted")),
        jobs_completed(service_metrics.counter("service.jobs.completed")),
        jobs_in_flight(service_metrics.gauge("service.jobs.in_flight")),
        queue_depth_gauge(service_metrics.gauge("service.queue.depth")),
        job_hist(service_metrics.histogram("service.job_seconds")),
        cancel_hist(
            service_metrics.histogram("service.cancel_latency_seconds")),
        queue_wait_hist(
            service_metrics.histogram("service.queue_wait_seconds")),
        started_at(Clock::now()),
        pool(options.pool_threads != 0
                 ? options.pool_threads
                 : std::max<std::size_t>(
                       1, std::thread::hardware_concurrency()),
             &queue_depth_gauge) {}

  /// Emits one job lifecycle record when an event log is attached.
  void event(std::string_view name, std::size_t job, obs::json::Value extra) {
    if (options.events != nullptr)
      options.events->job_event(name, static_cast<long long>(job),
                                std::move(extra));
  }
  void event(std::string_view name, std::size_t job) {
    event(name, job, obs::json::Value::object());
  }

  /// Bookkeeping shared by the racer and error completion paths: runs after
  /// on_complete returned and before done is published.
  void note_job_completed(double seconds) {
    jobs_completed.add();
    job_hist.record_seconds(seconds);
    std::size_t still =
        in_flight.fetch_sub(1, std::memory_order_relaxed) - 1;
    jobs_in_flight.set(static_cast<double>(still));
    completed_count.fetch_add(1, std::memory_order_relaxed);
  }

  void run_racer(JobState& js, std::size_t index, const std::string& name,
                 const EngineRunner& runner) {
    const std::size_t job_id = js.result.id;
    EngineOutcome out;
    bool skip = false;
    bool first_start = false;
    {
      std::lock_guard<std::mutex> lock(js.mu);
      if (js.decided) {
        // The race was decided before this racer even started (narrow pool,
        // fast winner): report it cancelled without paying for the run.
        out.verdict = "cancelled";
        out.cancelled = true;
        out.aborted = true;
        skip = true;
      } else if (!js.started) {
        js.started = true;
        first_start = true;
      }
    }
    const Clock::time_point start = Clock::now();
    if (!skip) {
      // Queue wait: submission to this racer actually getting a worker.
      // Skipped racers are excluded — they never waited for a run.
      queue_wait_hist.record_seconds(seconds_between(js.submitted_at, start));
      if (first_start) event("started", job_id);
      {
        obs::json::Value ev = obs::json::Value::object();
        ev["engine"] = name;
        event("racer-start", job_id, std::move(ev));
      }
      RunLimits limits;
      limits.max_states = js.spec.max_states;
      limits.max_seconds = js.spec.max_seconds;
      limits.family_store = js.spec.family_store;
      limits.threads = js.spec.threads;
      try {
        out = runner(*js.net, limits, &js.token, js.metrics.get());
      } catch (const std::exception& e) {
        out = EngineOutcome{};
        out.verdict = "failed";
        out.aborted = true;
        out.error = e.what();
      }
      if (out.seconds == 0) out.seconds = seconds_between(start, Clock::now());
      service_metrics.histogram("service.engine." + name + ".seconds")
          .record_seconds(out.seconds);
    }
    out.engine = name;

    const Clock::time_point end = Clock::now();
    bool completed = false;
    bool won = false;
    bool was_cancelled = false;
    double cancel_latency = 0;
    std::string verdict = out.verdict;
    JobResult snapshot;
    {
      std::lock_guard<std::mutex> lock(js.mu);
      if (out.conclusive && !js.decided) {
        js.decided = true;
        js.cancel_at = end;
        js.result.winner = name;
        js.result.verdict = out.verdict;
        js.result.counterexample = out.counterexample;
        if (js.certificate.has_value() && !out.counterexample.empty()) {
          // Map the reduced-net trace back and replay it on the original
          // net — the certificate's acceptance oracle. A failure is a
          // reduction bug, not a property of the net: keep the verdict
          // (it transfers by the certificate argument) but flag the job.
          js.result.counterexample =
              js.certificate->map_to_original(out.counterexample);
          std::optional<petri::Marking> final_marking =
              reduce::replay_trace(*js.original, js.result.counterexample);
          if (!final_marking.has_value() ||
              !js.original->is_deadlocked(*final_marking))
            append_error(js.result,
                         name + " counterexample does not replay to a "
                                "deadlock on the original net (reduction "
                                "certificate violation)");
        }
        js.token.cancel();
        won = true;
      } else if (out.conclusive) {
        // A second racer finished conclusively before it saw the cancel.
        // Agreement is the expected (and tested) case; a disagreement is a
        // soundness alarm worth surfacing in the report.
        if (out.verdict != js.result.verdict)
          append_error(js.result,
                       out.engine + " disagrees with winner " +
                           js.result.winner + ": " + out.verdict + " vs " +
                           js.result.verdict);
      } else if (out.cancelled && !skip) {
        // Only racers that actually ran measure the drain, from the later of
        // token-fire and their own start; a skipped racer returning from the
        // queue says nothing about poll latency.
        cancel_latency = seconds_between(std::max(js.cancel_at, start), end);
        js.result.cancel_latency_seconds =
            std::max(js.result.cancel_latency_seconds, cancel_latency);
        was_cancelled = true;
      }
      js.result.engines[index] = std::move(out);
      if (--js.remaining == 0) {
        finish_locked(js, end);
        completed = true;
        snapshot = js.result;
      }
    }
    if (won) {
      service_metrics.counter("service.engine." + name + ".wins").add();
      obs::json::Value ev = obs::json::Value::object();
      ev["engine"] = name;
      ev["verdict"] = verdict;
      event("first-answer", job_id, std::move(ev));
    }
    if (was_cancelled) {
      service_metrics.counter("service.engine." + name + ".cancelled").add();
      // The per-job scalar keeps only the max drain; the histogram sees
      // every cancelled racer's drain, so p99 is a real fleet statistic.
      cancel_hist.record_seconds(cancel_latency);
      obs::json::Value ev = obs::json::Value::object();
      ev["engine"] = name;
      event("cancelled", job_id, std::move(ev));
    }
    // on_complete runs BEFORE done is published: wait()/wait_all() returning
    // guarantees every completion callback has also returned (the server
    // relies on this to print BYE after the last VERDICT).
    if (completed) {
      note_job_completed(snapshot.seconds);
      {
        obs::json::Value ev = obs::json::Value::object();
        ev["verdict"] = snapshot.verdict;
        ev["seconds"] = snapshot.seconds;
        event("finished", job_id, std::move(ev));
      }
      if (options.on_complete) options.on_complete(snapshot);
      // Notify while holding the mutex: a waiter freed to return by done may
      // destroy this JobState, so the broadcast must be ordered before any
      // waiter can re-acquire the lock and leave wait().
      std::lock_guard<std::mutex> lock(js.mu);
      js.done = true;
      js.cv.notify_all();
    }
  }

  static void append_error(JobResult& r, const std::string& msg) {
    if (!r.error.empty()) r.error += "; ";
    r.error += msg;
  }

  /// Called with js.mu held, once the last racer returned. Fills the final
  /// result but does NOT set done — that happens after on_complete ran.
  void finish_locked(JobState& js, Clock::time_point end) {
    js.result.seconds = seconds_between(js.submitted_at, end);
    if (js.result.winner.empty()) js.result.verdict = "undecided";
    js.result.expect_matched = js.spec.expect.empty() ||
                               js.result.verdict == js.spec.expect;
    js.result.metrics = js.metrics;
  }

  JobState* job(std::size_t id) {
    std::lock_guard<std::mutex> lock(jobs_mu);
    return id < jobs.size() ? jobs[id].get() : nullptr;
  }

  SchedulerOptions options;
  const EngineRegistry& registry;
  /// The scheduler's own telemetry scope; declared before the slot
  /// references and the pool (which publishes the queue-depth gauge).
  /// mutable: service_metrics() is conceptually const (snapshot reads), but
  /// slot registration is lazy.
  mutable obs::MetricsRegistry service_metrics;
  obs::Counter& jobs_submitted;
  obs::Counter& jobs_completed;
  obs::Gauge& jobs_in_flight;
  obs::Gauge& queue_depth_gauge;
  obs::Histogram& job_hist;
  obs::Histogram& cancel_hist;
  obs::Histogram& queue_wait_hist;
  std::atomic<std::size_t> in_flight{0};
  std::atomic<std::size_t> completed_count{0};
  Clock::time_point started_at;
  Pool pool;

  std::mutex jobs_mu;
  std::vector<std::unique_ptr<JobState>> jobs;
};

PortfolioScheduler::PortfolioScheduler(SchedulerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

PortfolioScheduler::~PortfolioScheduler() { wait_all(); }

std::size_t PortfolioScheduler::submit(const JobSpec& spec) {
  auto js = std::make_unique<Impl::JobState>();
  Impl::JobState* state = js.get();
  state->spec = spec;
  state->metrics = std::make_shared<obs::MetricsRegistry>();
  state->engine_names =
      spec.engines.empty() ? default_portfolio() : spec.engines;

  std::size_t id;
  {
    std::lock_guard<std::mutex> lock(impl_->jobs_mu);
    id = impl_->jobs.size();
    impl_->jobs.push_back(std::move(js));
  }
  state->result.id = id;
  state->result.model = spec.model;
  state->result.family_store = spec.family_store;
  state->result.expect = spec.expect;

  impl_->jobs_submitted.add();
  impl_->jobs_in_flight.set(static_cast<double>(
      impl_->in_flight.fetch_add(1, std::memory_order_relaxed) + 1));
  {
    obs::json::Value ev = obs::json::Value::object();
    ev["model"] = spec.model;
    impl_->event("submitted", id, std::move(ev));
  }

  // Resolve the portfolio and load the net up front; failures become an
  // immediate "error" result (one bad manifest line must not sink a batch).
  std::vector<const EngineRunner*> runners;
  std::string error;
  for (const std::string& name : state->engine_names) {
    const EngineRunner* r = impl_->registry.find(name);
    if (r == nullptr) {
      error = "no such engine '" + name + "'";
      break;
    }
    runners.push_back(r);
  }
  if (error.empty()) {
    try {
      state->net.emplace(load_net(spec.model));
      // Structural reduction, once per job: every racer sees the same
      // (smaller) net, paying the reduction cost once instead of per racer.
      auto level = reduce::parse_reduce_level(
          spec.reduce.empty() ? "off" : spec.reduce);
      if (level.has_value() && *level != reduce::ReduceLevel::kOff) {
        reduce::ReduceOptions ro;
        ro.level = *level;
        ro.metrics = state->metrics.get();
        reduce::ReductionResult red = reduce::reduce_net(*state->net, ro);
        state->result.reduction = reduce::to_report_run(red.stats);
        state->original = std::move(state->net);
        state->certificate = std::move(red.certificate);
        state->net.emplace(std::move(red.net));
      }
    } catch (const std::exception& e) {
      error = e.what();
    }
  }
  if (!error.empty()) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result.verdict = "error";
      state->result.error = error;
      state->result.expect_matched = spec.expect.empty();
      state->result.metrics = state->metrics;
    }
    // Completion is delivered from the pool, not inline, so a caller that
    // acks the submission (the server's JOB line) gets to do so before the
    // on_complete notification fires.
    impl_->pool.submit([impl = impl_.get(), state] {
      JobResult snapshot;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        snapshot = state->result;
      }
      impl->note_job_completed(snapshot.seconds);
      {
        obs::json::Value ev = obs::json::Value::object();
        ev["verdict"] = snapshot.verdict;
        impl->event("finished", snapshot.id, std::move(ev));
      }
      if (impl->options.on_complete) impl->options.on_complete(snapshot);
      // Notify under the lock — same lifetime reasoning as in run_racer.
      std::lock_guard<std::mutex> lock(state->mu);
      state->done = true;
      state->cv.notify_all();
    });
    return id;
  }

  state->submitted_at = Clock::now();
  state->remaining = state->engine_names.size();
  state->result.engines.resize(state->engine_names.size());
  for (std::size_t i = 0; i < state->engine_names.size(); ++i) {
    const std::string& name = state->engine_names[i];
    const EngineRunner* runner = runners[i];
    impl_->pool.submit([this, state, i, name, runner] {
      impl_->run_racer(*state, i, name, *runner);
    });
  }
  return id;
}

JobResult PortfolioScheduler::wait(std::size_t id) {
  Impl::JobState* js = impl_->job(id);
  if (js == nullptr)
    throw std::out_of_range("PortfolioScheduler::wait: no job " +
                            std::to_string(id));
  std::unique_lock<std::mutex> lock(js->mu);
  js->cv.wait(lock, [&] { return js->done; });
  return js->result;
}

void PortfolioScheduler::wait_all() {
  // New jobs may arrive while draining (server mode); loop until the count
  // is stable and every job is done.
  std::size_t waited = 0;
  while (true) {
    std::size_t n = submitted();
    if (waited == n) return;
    for (; waited < n; ++waited) (void)wait(waited);
  }
}

std::size_t PortfolioScheduler::pool_threads() const {
  return impl_->pool.workers();
}

std::size_t PortfolioScheduler::submitted() const {
  std::lock_guard<std::mutex> lock(impl_->jobs_mu);
  return impl_->jobs.size();
}

obs::MetricsRegistry& PortfolioScheduler::service_metrics() const {
  return impl_->service_metrics;
}

std::size_t PortfolioScheduler::queue_depth() const {
  return impl_->pool.queued();
}

std::size_t PortfolioScheduler::completed() const {
  return impl_->completed_count.load(std::memory_order_relaxed);
}

double PortfolioScheduler::uptime_seconds() const {
  return seconds_between(impl_->started_at, Clock::now());
}

std::vector<PortfolioScheduler::JobBrief> PortfolioScheduler::jobs_brief()
    const {
  // Two leaf locks, never held while a racer runs: jobs_mu to copy the
  // stable JobState pointers (jobs are never destroyed before the
  // scheduler), then each job's own mutex for its fields — racers hold
  // js.mu only around bookkeeping, not around engine runs, so this cannot
  // block on a slow job.
  std::vector<Impl::JobState*> states;
  {
    std::lock_guard<std::mutex> lock(impl_->jobs_mu);
    states.reserve(impl_->jobs.size());
    for (const auto& js : impl_->jobs) states.push_back(js.get());
  }
  std::vector<JobBrief> out;
  out.reserve(states.size());
  for (Impl::JobState* js : states) {
    JobBrief b;
    std::lock_guard<std::mutex> lock(js->mu);
    b.id = js->result.id;
    b.model = js->result.model;
    if (js->done) {
      b.state = "done";
      b.verdict = js->result.verdict;
      b.winner = js->result.winner;
      b.seconds = js->result.seconds;
    } else if (js->started) {
      b.state = "running";
      b.seconds = seconds_between(js->submitted_at, Clock::now());
    } else {
      b.state = "queued";
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<JobResult> run_batch(const Manifest& manifest,
                                 SchedulerOptions options) {
  PortfolioScheduler scheduler(std::move(options));
  for (const JobSpec& spec : manifest.jobs) scheduler.submit(spec);
  std::vector<JobResult> results;
  results.reserve(manifest.jobs.size());
  for (std::size_t id = 0; id < manifest.jobs.size(); ++id)
    results.push_back(scheduler.wait(id));
  return results;
}

void add_jobs_to_report(obs::RunReport& report,
                        const std::vector<JobResult>& results) {
  for (const JobResult& r : results) {
    obs::RunReport::JobRun job;
    job.id = static_cast<long long>(r.id);
    job.model = r.model;
    job.verdict = r.verdict;
    job.winner = r.winner;
    job.family_store = r.family_store;
    job.expect = r.expect;
    job.expect_matched = r.expect_matched;
    job.seconds = r.seconds;
    job.cancel_latency_seconds = r.cancel_latency_seconds;
    job.reduction = r.reduction;
    for (const EngineOutcome& o : r.engines)
      for (const std::string& w : o.warnings)
        job.warnings.push_back(o.engine + ": " + w);
    for (const EngineOutcome& o : r.engines) {
      obs::RunReport::EngineRun er;
      er.engine = o.engine;
      er.verdict = o.verdict;
      er.states = o.states;
      er.seconds = o.seconds;
      er.aborted = o.aborted;
      er.cancelled = o.cancelled;
      er.aborted_phase = o.aborted_phase;
      if (r.metrics != nullptr)
        er.counters =
            obs::registry_to_json(*r.metrics, "engine." + o.engine + ".");
      job.engines.push_back(std::move(er));
    }
    report.add_job(std::move(job));
  }
}

}  // namespace gpo::service
