// Engine portfolio: the pluggable racer set behind the verification service.
//
// Each engine is wrapped as an EngineRunner — a uniform "net in, deadlock
// verdict out" closure that honours a shared budget, polls a CancelToken and
// publishes its counters into the job's MetricsRegistry under
// "engine.<name>.". The scheduler races several runners per job and cancels
// the rest the moment the first conclusive outcome lands (SMPT-style
// portfolio with early cancellation; the registry keeps the engine set
// pluggable the way LTSmin's frontend/backend split does).
//
// Runners default to sequential engines (num_threads = 1): the service's
// parallelism comes from racing engines and multiplexing jobs over one
// global pool. A manifest can additionally opt a job into the gpo-intern
// racer's intra-state fork-join engine with threads=N (RunLimits::threads)
// when single-job latency matters more than batch throughput.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "petri/net.hpp"
#include "util/cancel_token.hpp"

namespace gpo::service {

/// Shared per-job budget every racer receives.
struct RunLimits {
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Family storage backend for the gpo racers: "" (default, explicit),
  /// "explicit" or "zdd" (kept as the manifest's string so this header does
  /// not depend on the core option enums; the gpo runners parse it).
  std::string family_store;
  /// Worker threads for the gpo-intern racer's fork-join engine (1 =
  /// sequential). Engines without a parallel mode ignore it; combinations
  /// that demote it (e.g. the zdd store) surface a warning in the outcome.
  std::size_t threads = 1;
};

/// Outcome of one racer. `conclusive` is the race-deciding bit: true iff the
/// engine finished with a trustworthy deadlock/no-deadlock verdict (no limit
/// hit, no cancellation, no blowup, no error).
struct EngineOutcome {
  std::string engine;
  /// "deadlock" | "no-deadlock" | "aborted" | "cancelled" | "failed"
  std::string verdict = "aborted";
  bool conclusive = false;
  bool deadlock = false;
  double states = -1;  // -1: not applicable
  double seconds = 0;
  bool aborted = false;
  /// The job's CancelToken stopped this run (subset of aborted).
  bool cancelled = false;
  /// Phase a limit or the cancel interrupted (engine-specific names).
  std::string aborted_phase;
  std::string error;  // "failed" verdicts: the exception text
  /// Winner's firing sequence into the deadlock, when the engine produces
  /// one (the GPO engines' replayed scenario, the explicit engines' trace).
  std::vector<petri::TransitionId> counterexample;
  /// Non-fatal diagnostics from the run (e.g. "--threads demoted to
  /// sequential"); the scheduler copies the winner's + losers' warnings into
  /// jobs[].warnings of the batch report.
  std::vector<std::string> warnings;
};

/// One engine wrapped for racing. The registry pointer may be null (no
/// telemetry); the token pointer may be null (standalone run).
using EngineRunner = std::function<EngineOutcome(
    const petri::PetriNet& net, const RunLimits& limits,
    const util::CancelToken* cancel, obs::MetricsRegistry* metrics)>;

/// Name -> runner map. Copyable so tests can extend the default set with
/// synthetic racers (e.g. a deliberately slow engine for cancellation
/// tests).
class EngineRegistry {
 public:
  /// Registers (or replaces) a runner.
  void add(const std::string& name, EngineRunner runner);
  /// nullptr when `name` is not registered.
  [[nodiscard]] const EngineRunner* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, EngineRunner>> entries_;
};

/// The real engines: full, por, bdd, gpo, gpo-intern, gpo-bdd, and unfold
/// (prefix construction + deadlock check through the complete prefix, so it
/// races as a genuine verdict producer).
[[nodiscard]] const EngineRegistry& default_engine_registry();

}  // namespace gpo::service
