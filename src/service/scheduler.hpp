// Portfolio verification scheduler: many (net, property) jobs multiplexed
// over ONE global thread pool, each job raced by an engine portfolio with
// first-to-answer cancellation.
//
// Shape of the system (see DESIGN.md "Portfolio verification service"):
//
//   submit(JobSpec) ──► JobState ──► one pool task per racer
//                                        │
//        global WorkStealingQueues<Task> ┴ W workers (pool_threads)
//
//   * Every racer of every job is one task on the shared pool — there is no
//     per-job --threads. Individual GPN graphs are tiny (frontier <= 2 on
//     the paper's models), so cross-job/cross-racer parallelism is where the
//     cores actually get used.
//   * The first racer to return a conclusive verdict wins the job: its
//     verdict/counterexample become the job's, and the job's CancelToken is
//     fired so the remaining racers abort at their next main-loop poll.
//     Racers that have not started yet observe the decided race under the
//     job lock and return "cancelled" without running at all.
//   * Each job gets its own MetricsRegistry scope; racers publish their
//     counters under "engine.<name>." into it, and the batch report nests
//     every racer outcome (winner, per-engine timing, cancellation latency)
//     under the job's jobs[] entry.
//
// Thread-safety: submit()/wait()/wait_all() may be called from any thread.
// The on_complete callback runs on whichever worker finished the job's last
// racer — keep it short and synchronize your own sinks (the line server
// takes an output mutex).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "petri/net.hpp"
#include "service/manifest.hpp"
#include "service/portfolio.hpp"

namespace gpo::obs {
class EventLog;
}  // namespace gpo::obs

namespace gpo::service {

/// Final state of one portfolio job.
struct JobResult {
  std::size_t id = 0;
  std::string model;
  /// "deadlock" | "no-deadlock" | "undecided" (every racer aborted) |
  /// "error" (the job never ran: bad model, unknown engine).
  std::string verdict = "undecided";
  /// Racer whose conclusive answer became the verdict; empty otherwise.
  std::string winner;
  /// Family-store backend the manifest requested for the gpo racers;
  /// "" = default (explicit).
  std::string family_store;
  std::string expect;          // from the manifest; "" = none
  bool expect_matched = true;  // false iff expect set and verdict differs
  std::string error;           // "error" verdicts: what went wrong
  /// Wall-clock from submission to the last racer returning.
  double seconds = 0;
  /// Longest drain of a cancelled racer: cancel-token fire -> that racer
  /// actually returning. The portfolio's overhead metric; 0 when nothing
  /// was cancelled.
  double cancel_latency_seconds = 0;
  /// Net reduction applied once before the racers fanned out (the
  /// manifest's reduce= key); nullopt when off.
  std::optional<obs::RunReport::ReductionRun> reduction;
  /// Every racer's outcome, in the job's engine-list order. With reduce=
  /// these are reduced-net runs (states, counterexamples of the reduced
  /// net); the job-level counterexample below is already mapped back.
  std::vector<EngineOutcome> engines;
  /// Winner's counterexample (deadlock verdicts, engine permitting), as a
  /// firing sequence of the ORIGINAL net: with reduce= the winner's trace is
  /// mapped through the reduction certificate and replayed on the original
  /// net before it is stored (a replay failure appends to `error`).
  std::vector<petri::TransitionId> counterexample;
  /// The job's private telemetry scope ("engine.<name>.*" counters).
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

struct SchedulerOptions {
  /// Global pool width. 0 = std::thread::hardware_concurrency().
  std::size_t pool_threads = 0;
  /// Engine set to resolve names against. nullptr = the real engines
  /// (default_engine_registry()); tests inject synthetic racers.
  const EngineRegistry* registry = nullptr;
  /// Invoked on a worker thread as each job completes (server mode pushes
  /// VERDICT lines from here). May be empty.
  std::function<void(const JobResult&)> on_complete;
  /// Structured JSONL event log; when set, the scheduler emits job
  /// lifecycle records (submitted/started/racer-start/first-answer/
  /// cancelled/finished). Must outlive the scheduler. May be null.
  obs::EventLog* events = nullptr;
};

class PortfolioScheduler {
 public:
  explicit PortfolioScheduler(SchedulerOptions options = {});
  /// Drains outstanding jobs, then joins the pool.
  ~PortfolioScheduler();

  PortfolioScheduler(const PortfolioScheduler&) = delete;
  PortfolioScheduler& operator=(const PortfolioScheduler&) = delete;

  /// Enqueues one job; returns its id (dense, submission order). Model
  /// loading happens inline (it is microseconds for the built-ins); a load
  /// failure yields an immediate "error" JobResult rather than a throw, so
  /// one bad manifest line cannot take down a batch.
  std::size_t submit(const JobSpec& spec);

  /// Blocks until job `id` completed and returns its result.
  [[nodiscard]] JobResult wait(std::size_t id);

  /// Blocks until every submitted job completed.
  void wait_all();

  [[nodiscard]] std::size_t pool_threads() const;
  [[nodiscard]] std::size_t submitted() const;

  // -- live introspection (the serve STATS/JOBS/HEALTH surface) -------------
  // All of these answer from relaxed-atomic slots or short leaf locks and
  // never wait on running racers, so they stay responsive mid-race.

  /// The scheduler's own telemetry scope: service.jobs.* counters, the
  /// service.queue.depth gauge, the service.job_seconds /
  /// service.cancel_latency_seconds / service.queue_wait_seconds histograms
  /// and lazily-registered per-engine service.engine.<name>.{wins,cancelled,
  /// seconds} slots. Lives as long as the scheduler.
  [[nodiscard]] obs::MetricsRegistry& service_metrics() const;
  /// Racer tasks enqueued on the pool but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Jobs whose completion callback has finished.
  [[nodiscard]] std::size_t completed() const;
  /// Seconds since the scheduler was constructed.
  [[nodiscard]] double uptime_seconds() const;

  /// One job's live state, for the JOBS command.
  struct JobBrief {
    std::size_t id = 0;
    std::string model;
    std::string state;    // "queued" | "running" | "done"
    std::string verdict;  // final verdict when done, "" before
    std::string winner;
    double seconds = 0;
  };
  /// Snapshot of every submitted job (submission order).
  [[nodiscard]] std::vector<JobBrief> jobs_brief() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: run a whole manifest through a fresh scheduler and return
/// the results in submission order. Used by `julie batch` and the tests.
[[nodiscard]] std::vector<JobResult> run_batch(const Manifest& manifest,
                                               SchedulerOptions options = {});

/// Appends one jobs[] entry per result (and nothing else) to `report`.
void add_jobs_to_report(obs::RunReport& report,
                        const std::vector<JobResult>& results);

}  // namespace gpo::service
