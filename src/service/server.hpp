// Long-running verification server over a line protocol (stdin/stdout by
// default: `julie serve`). One scheduler, one pool; requests race their
// portfolios concurrently and verdicts stream back as they complete, so
// responses are NOT in request order — they carry the job id instead.
//
// Protocol (one request or reply per line):
//
//   client -> server
//     CHECK <model> [engines=E1,E2,..] [max-seconds=S] [max-states=N]
//                   [expect=V]          # same grammar as a manifest line
//     STATS                             # live metrics snapshot
//     JOBS                              # per-job live state
//     HEALTH                            # liveness probe
//     QUIT                              # drain outstanding jobs, then exit
//
//   server -> client
//     READY <pool-threads> <engines-csv>           # once, at startup
//     JOB <id>                                     # ack: CHECK was accepted
//     ERR <message>                                # the CHECK was malformed
//     VERDICT <id> <verdict> winner=<w> seconds=<s> cancel-latency=<s>
//     STATS <one-line JSON>                        # uptime, job counts,
//                                                  #   queue depth, peak RSS,
//                                                  #   per-engine wins/
//                                                  #   cancels, histogram
//                                                  #   percentiles
//     JOBS <one-line JSON array>                   # [{id,model,state,...}]
//     HEALTH <one-line JSON>                       # {"status":"ok",...}
//     BYE <jobs-completed>                         # once, after QUIT / EOF
//
// STATS/JOBS/HEALTH are answered inline by the serving thread from the
// scheduler's introspection surface (relaxed atomics + leaf locks), so they
// return immediately even while slow jobs are racing — the protocol test
// proves a reply arrives while a job is still blocked.
//
// EOF on the input behaves like QUIT. Replies are serialized through one
// output mutex because VERDICT lines are pushed from pool worker threads.
#pragma once

#include <iosfwd>

#include "service/scheduler.hpp"

namespace gpo::service {

struct ServerOptions {
  std::size_t pool_threads = 0;  // 0 = hardware concurrency
  /// nullptr = default_engine_registry(); tests inject synthetic engines.
  const EngineRegistry* registry = nullptr;
  /// Structured JSONL event log for job lifecycle records; may be null.
  /// Must outlive the serve() call.
  obs::EventLog* events = nullptr;
  /// > 0: run a progress heartbeat over the scheduler's service metrics at
  /// this interval (stderr), like `julie --progress`.
  double progress_secs = 0;
};

/// Runs the serve loop until QUIT or EOF; returns the number of jobs
/// completed. Blocks the calling thread (verdict pushes happen on the
/// scheduler's workers).
std::size_t serve(std::istream& in, std::ostream& out,
                  const ServerOptions& options = {});

}  // namespace gpo::service
