// Batch manifests for the portfolio verification service.
//
// A manifest is a line-oriented job list consumed by `julie batch` (and, one
// line at a time, by the server's CHECK command). Grammar, one job per line:
//
//   <model> [engines=E1,E2,..] [max-seconds=S] [max-states=N]
//           [family-store=F] [reduce=L] [threads=T] [expect=V]
//
//   <model>       a built-in spec ("nsdp:8", "fig7") or a .net/.pnml path
//   engines=      portfolio to race; default gpo-intern,por,bdd,unfold
//   max-seconds=  per-job wall budget shared by every racer (default 60)
//   max-states=   state cap for the explicit racers
//   family-store= "explicit" | "zdd" — family storage backend for the gpo
//                 racers of this job (default explicit; zdd = canonical
//                 zero-suppressed-DD store, lower memory, sequential)
//   reduce=       "off" | "safe" | "aggressive" — structural net reduction
//                 applied ONCE per job before the racers fan out (default
//                 off); the job verdict transfers through the reduction
//                 certificate and a winner's counterexample is mapped back
//                 to and replayed on the original net
//   threads=      worker threads for the gpo-intern racer's fork-join engine
//                 (default 1). Other engines ignore it; combined with
//                 family-store=zdd the run is demoted to sequential and the
//                 job carries a warning in the report's jobs[].warnings
//   expect=       expected verdict ("deadlock" | "no-deadlock"); batch mode
//                 exits nonzero when a job's verdict disagrees — this is the
//                 column the CI portfolio-smoke job asserts against
//
// One manifest-level directive is recognized on a line of its own:
//
//   events=<path>   write the structured JSONL event log of the batch run
//                   there (same format as `julie --events`; the CLI flag
//                   wins when both are given)
//
// '#' starts a comment (full line or trailing); blank lines are skipped.
// Unknown keys, unknown engine names and malformed values are hard errors
// with the offending line number — a manifest typo must not silently shrink
// a CI verification matrix.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace gpo::service {

/// Default wall-clock budget per job (seconds).
inline constexpr double kDefaultJobSeconds = 60.0;

/// The engine set a job races when the manifest names none: the fastest
/// conclusive engine of each flavour (interned GPO, classical POR, symbolic,
/// unfolding) — deliberately diverse so structurally different nets each
/// have a racer that suits them.
[[nodiscard]] const std::vector<std::string>& default_portfolio();

/// Engine names the portfolio layer accepts (the CLI's --engine values that
/// produce a deadlock verdict, including "unfold" via its complete prefix).
[[nodiscard]] bool is_known_engine(const std::string& name);

struct JobSpec {
  std::string model;                 // built-in spec or net-file path
  std::vector<std::string> engines;  // empty = default_portfolio()
  double max_seconds = kDefaultJobSeconds;
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  /// "" (engine default, i.e. explicit) | "explicit" | "zdd"; forwarded to
  /// the gpo racers' GpoOptions::family_store.
  std::string family_store;
  /// "" (default, off) | "off" | "safe" | "aggressive"; structural net
  /// reduction the scheduler applies once per job before racing (kept as
  /// the manifest's string, same as family_store).
  std::string reduce;
  /// Worker threads for the gpo-intern racer (1 = sequential engine).
  std::size_t threads = 1;
  std::string expect;  // "" (none) | "deadlock" | "no-deadlock"
  std::size_t line = 0;  // 1-based manifest line, for diagnostics
};

struct Manifest {
  std::vector<JobSpec> jobs;
  /// The `events=` directive: where to write the batch run's JSONL event
  /// log. "" = none requested.
  std::string events_path;
};

class ManifestError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses one job line (comment already stripped; must be non-empty).
/// Shared by the manifest reader and the server's CHECK command. Throws
/// ManifestError on malformed input.
[[nodiscard]] JobSpec parse_job_line(const std::string& line,
                                     std::size_t line_no = 0);

/// Parses a whole manifest; throws ManifestError with a line number on the
/// first malformed job.
[[nodiscard]] Manifest parse_manifest(std::istream& in);
[[nodiscard]] Manifest parse_manifest_file(const std::string& path);

}  // namespace gpo::service
