#include "service/server.hpp"

#include <atomic>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace gpo::service {

namespace {

std::string format_verdict(const JobResult& r) {
  std::ostringstream line;
  line << "VERDICT " << r.id << ' ' << r.verdict;
  line << " winner=" << (r.winner.empty() ? "-" : r.winner);
  line << " seconds=" << r.seconds;
  line << " cancel-latency=" << r.cancel_latency_seconds;
  if (!r.error.empty()) line << " error=\"" << r.error << '"';
  return line.str();
}

}  // namespace

std::size_t serve(std::istream& in, std::ostream& out,
                  const ServerOptions& options) {
  std::mutex out_mu;
  std::atomic<std::size_t> completed{0};

  SchedulerOptions sched;
  sched.pool_threads = options.pool_threads;
  sched.registry = options.registry;
  sched.on_complete = [&](const JobResult& r) {
    completed.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(out_mu);
    out << format_verdict(r) << '\n' << std::flush;
  };
  PortfolioScheduler scheduler(std::move(sched));

  {
    const EngineRegistry& reg =
        options.registry != nullptr ? *options.registry
                                    : default_engine_registry();
    std::ostringstream ready;
    ready << "READY " << scheduler.pool_threads();
    std::string sep = " ";
    for (const std::string& name : reg.names()) {
      ready << sep << name;
      sep = ",";
    }
    std::lock_guard<std::mutex> lock(out_mu);
    out << ready.str() << '\n' << std::flush;
  }

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream words(line);
    std::string verb;
    words >> verb;
    if (verb.empty()) continue;
    if (verb == "QUIT") break;
    if (verb != "CHECK") {
      std::lock_guard<std::mutex> lock(out_mu);
      out << "ERR line " << line_no << ": unknown verb '" << verb << "'\n"
          << std::flush;
      continue;
    }
    // Everything after "CHECK " is one manifest job line.
    std::string rest;
    std::getline(words, rest);
    try {
      JobSpec spec = parse_job_line(rest, line_no);
      // Holding the output lock across submit() keeps the JOB ack ahead of
      // the job's VERDICT: completions always arrive on pool workers (never
      // inline in submit), and those workers block on this mutex.
      std::lock_guard<std::mutex> lock(out_mu);
      std::size_t id = scheduler.submit(spec);
      out << "JOB " << id << '\n' << std::flush;
    } catch (const ManifestError& e) {
      std::lock_guard<std::mutex> lock(out_mu);
      out << "ERR " << e.what() << '\n' << std::flush;
    }
  }

  scheduler.wait_all();
  std::size_t n = completed.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(out_mu);
    out << "BYE " << n << '\n' << std::flush;
  }
  return n;
}

}  // namespace gpo::service
