#include "service/server.hpp"

#include <atomic>
#include <iostream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

#include "obs/heartbeat.hpp"
#include "obs/json.hpp"

namespace gpo::service {

namespace {

namespace json = obs::json;

std::string format_verdict(const JobResult& r) {
  std::ostringstream line;
  line << "VERDICT " << r.id << ' ' << r.verdict;
  line << " winner=" << (r.winner.empty() ? "-" : r.winner);
  line << " seconds=" << r.seconds;
  line << " cancel-latency=" << r.cancel_latency_seconds;
  if (!r.error.empty()) line << " error=\"" << r.error << '"';
  return line.str();
}

json::Value histogram_json(const obs::MetricsRegistry::Snapshot& s) {
  json::Value h = json::Value::object();
  h["count"] = static_cast<long long>(s.count);
  h["p50"] = s.p50;
  h["p90"] = s.p90;
  h["p99"] = s.p99;
  h["max"] = s.max;
  return h;
}

/// The STATS reply: one ordered JSON object built from the scheduler's
/// introspection surface + service-metrics snapshot. Everything read here
/// is relaxed atomics or leaf locks — never blocked by a running racer.
json::Value stats_json(const PortfolioScheduler& sch) {
  json::Value doc = json::Value::object();
  doc["uptime_seconds"] = sch.uptime_seconds();

  const auto snaps = sch.service_metrics().snapshot("service.");
  auto value_of = [&](std::string_view name) -> double {
    for (const auto& s : snaps)
      if (s.name == name) return s.value;
    return 0;
  };
  json::Value jobs = json::Value::object();
  jobs["submitted"] =
      static_cast<long long>(value_of("service.jobs.submitted"));
  jobs["in_flight"] =
      static_cast<long long>(value_of("service.jobs.in_flight"));
  jobs["completed"] = static_cast<long long>(sch.completed());
  doc["jobs"] = std::move(jobs);

  json::Value pool = json::Value::object();
  pool["threads"] = static_cast<long long>(sch.pool_threads());
  pool["queue_depth"] = static_cast<long long>(sch.queue_depth());
  doc["pool"] = std::move(pool);

  json::Value mem = json::Value::object();
  mem["peak_rss_bytes"] = static_cast<long long>(obs::peak_rss_bytes());
  doc["memory"] = std::move(mem);

  // Per-engine win/cancel counts, grouped from the lazily-registered
  // "service.engine.<name>.<field>" slots.
  json::Value engines = json::Value::object();
  constexpr std::string_view kPrefix = "service.engine.";
  for (const auto& s : snaps) {
    if (s.name.size() <= kPrefix.size() ||
        std::string_view(s.name).substr(0, kPrefix.size()) != kPrefix)
      continue;
    std::string rest = s.name.substr(kPrefix.size());
    std::size_t dot = rest.rfind('.');
    if (dot == std::string::npos) continue;
    std::string engine = rest.substr(0, dot);
    std::string field = rest.substr(dot + 1);
    if (s.kind == obs::MetricKind::kCounter)
      engines[engine][field] = static_cast<long long>(s.count);
    else if (s.kind == obs::MetricKind::kHistogram)
      engines[engine][field] = histogram_json(s);
  }
  doc["engines"] = std::move(engines);

  json::Value hists = json::Value::object();
  for (const auto& s : snaps)
    if (s.kind == obs::MetricKind::kHistogram) hists[s.name] = histogram_json(s);
  doc["histograms"] = std::move(hists);
  return doc;
}

json::Value jobs_json(const PortfolioScheduler& sch) {
  json::Value arr = json::Value::array();
  for (const PortfolioScheduler::JobBrief& b : sch.jobs_brief()) {
    json::Value j = json::Value::object();
    j["id"] = static_cast<long long>(b.id);
    j["model"] = b.model;
    j["state"] = b.state;
    if (!b.verdict.empty()) j["verdict"] = b.verdict;
    if (!b.winner.empty()) j["winner"] = b.winner;
    j["seconds"] = b.seconds;
    arr.push_back(std::move(j));
  }
  return arr;
}

json::Value health_json(const PortfolioScheduler& sch) {
  json::Value doc = json::Value::object();
  doc["status"] = "ok";
  doc["uptime_seconds"] = sch.uptime_seconds();
  doc["jobs_in_flight"] = static_cast<long long>(
      static_cast<long long>(sch.submitted()) -
      static_cast<long long>(sch.completed()));
  doc["pool_threads"] = static_cast<long long>(sch.pool_threads());
  doc["peak_rss_bytes"] = static_cast<long long>(obs::peak_rss_bytes());
  return doc;
}

}  // namespace

std::size_t serve(std::istream& in, std::ostream& out,
                  const ServerOptions& options) {
  std::mutex out_mu;
  std::atomic<std::size_t> completed{0};

  SchedulerOptions sched;
  sched.pool_threads = options.pool_threads;
  sched.registry = options.registry;
  sched.events = options.events;
  sched.on_complete = [&](const JobResult& r) {
    completed.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(out_mu);
    out << format_verdict(r) << '\n' << std::flush;
  };
  PortfolioScheduler scheduler(std::move(sched));

  std::unique_ptr<obs::Heartbeat> heartbeat;
  if (options.progress_secs > 0) {
    heartbeat = std::make_unique<obs::Heartbeat>(
        scheduler.service_metrics(), nullptr, options.progress_secs,
        std::cerr);
    heartbeat->start();
  }

  {
    const EngineRegistry& reg =
        options.registry != nullptr ? *options.registry
                                    : default_engine_registry();
    std::ostringstream ready;
    ready << "READY " << scheduler.pool_threads();
    std::string sep = " ";
    for (const std::string& name : reg.names()) {
      ready << sep << name;
      sep = ",";
    }
    std::lock_guard<std::mutex> lock(out_mu);
    out << ready.str() << '\n' << std::flush;
  }

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream words(line);
    std::string verb;
    words >> verb;
    if (verb.empty()) continue;
    if (verb == "QUIT") break;
    if (verb == "STATS" || verb == "JOBS" || verb == "HEALTH") {
      // Answered inline on the serving thread; the introspection calls
      // never wait on running racers, so the reply is immediate even while
      // a slow job races.
      json::Value doc = verb == "STATS"   ? stats_json(scheduler)
                        : verb == "JOBS" ? jobs_json(scheduler)
                                         : health_json(scheduler);
      std::lock_guard<std::mutex> lock(out_mu);
      out << verb << ' ' << doc.dump_string(0) << '\n' << std::flush;
      continue;
    }
    if (verb != "CHECK") {
      std::lock_guard<std::mutex> lock(out_mu);
      out << "ERR line " << line_no << ": unknown verb '" << verb << "'\n"
          << std::flush;
      continue;
    }
    // Everything after "CHECK " is one manifest job line.
    std::string rest;
    std::getline(words, rest);
    try {
      JobSpec spec = parse_job_line(rest, line_no);
      // Holding the output lock across submit() keeps the JOB ack ahead of
      // the job's VERDICT: completions always arrive on pool workers (never
      // inline in submit), and those workers block on this mutex.
      std::lock_guard<std::mutex> lock(out_mu);
      std::size_t id = scheduler.submit(spec);
      out << "JOB " << id << '\n' << std::flush;
    } catch (const ManifestError& e) {
      std::lock_guard<std::mutex> lock(out_mu);
      out << "ERR " << e.what() << '\n' << std::flush;
    }
  }

  scheduler.wait_all();
  std::size_t n = completed.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(out_mu);
    out << "BYE " << n << '\n' << std::flush;
  }
  return n;
}

}  // namespace gpo::service
