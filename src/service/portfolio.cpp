#include "service/portfolio.hpp"

#include <utility>

#include "bdd/symbolic_reach.hpp"
#include "core/gpo.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"
#include "unfold/unfolding.hpp"
#include "util/stopwatch.hpp"

namespace gpo::service {

namespace {

/// Maps a finished (or interrupted) run onto the uniform outcome fields.
void finish_outcome(EngineOutcome& out, bool deadlock, bool limit_hit,
                    const util::CancelToken* cancel) {
  out.deadlock = deadlock;
  out.aborted = limit_hit;
  out.cancelled = limit_hit && util::cancel_requested(cancel);
  out.conclusive = !limit_hit;
  out.verdict = !limit_hit ? (deadlock ? "deadlock" : "no-deadlock")
              : out.cancelled ? "cancelled"
                              : "aborted";
}

EngineOutcome run_explicit(const petri::PetriNet& net, const RunLimits& limits,
                           const util::CancelToken* cancel,
                           obs::MetricsRegistry* metrics) {
  reach::ExplorerOptions opt;
  opt.max_states = limits.max_states;
  opt.max_seconds = limits.max_seconds;
  opt.cancel = cancel;
  opt.stop_at_first_deadlock = true;
  opt.metrics = metrics;
  opt.metrics_prefix = "engine.full.";
  auto r = reach::ExplicitExplorer(net, opt).explore();
  EngineOutcome out;
  out.states = static_cast<double>(r.state_count);
  out.seconds = r.seconds;
  out.aborted_phase = r.interrupted_phase;
  out.counterexample = r.counterexample;
  finish_outcome(out, r.deadlock_found, r.limit_hit, cancel);
  return out;
}

EngineOutcome run_por(const petri::PetriNet& net, const RunLimits& limits,
                      const util::CancelToken* cancel,
                      obs::MetricsRegistry* metrics) {
  por::StubbornOptions opt;
  opt.max_states = limits.max_states;
  opt.max_seconds = limits.max_seconds;
  opt.cancel = cancel;
  opt.stop_at_first_deadlock = true;
  opt.metrics = metrics;
  opt.metrics_prefix = "engine.por.";
  auto r = por::StubbornExplorer(net, opt).explore();
  EngineOutcome out;
  out.states = static_cast<double>(r.state_count);
  out.seconds = r.seconds;
  out.aborted_phase = r.interrupted_phase;
  out.counterexample = r.counterexample;
  finish_outcome(out, r.deadlock_found, r.limit_hit, cancel);
  return out;
}

EngineOutcome run_bdd(const petri::PetriNet& net, const RunLimits& limits,
                      const util::CancelToken* cancel,
                      obs::MetricsRegistry* metrics) {
  bdd::SymbolicOptions opt;
  opt.max_seconds = limits.max_seconds;
  opt.cancel = cancel;
  opt.metrics = metrics;
  opt.metrics_prefix = "engine.bdd.";
  auto r = bdd::SymbolicReachability(net, opt).analyze();
  EngineOutcome out;
  out.states = r.state_count;
  out.seconds = r.seconds;
  if (r.blowup) out.aborted_phase = "symbolic-fixpoint";
  finish_outcome(out, r.deadlock_found, r.blowup, cancel);
  return out;
}

EngineOutcome run_gpo_kind(core::FamilyKind kind, const char* name,
                           const petri::PetriNet& net, const RunLimits& limits,
                           const util::CancelToken* cancel,
                           obs::MetricsRegistry* metrics) {
  core::GpoOptions opt;
  opt.max_states = limits.max_states;
  opt.max_seconds = limits.max_seconds;
  opt.cancel = cancel;
  opt.stop_at_first_deadlock = true;
  opt.metrics = metrics;
  opt.metrics_prefix = std::string("engine.") + name + ".";
  if (limits.family_store == "zdd")
    opt.family_store = core::FamilyStore::kZdd;
  if (kind == core::FamilyKind::kInterned) opt.num_threads = limits.threads;
  auto r = core::run_gpo(net, kind, opt);
  EngineOutcome out;
  out.warnings = r.warnings;
  out.states = static_cast<double>(r.state_count);
  out.seconds = r.seconds;
  out.aborted_phase = r.interrupted_phase;
  out.counterexample = r.counterexample;
  finish_outcome(out, r.deadlock_found, r.limit_hit, cancel);
  return out;
}

EngineOutcome run_unfold(const petri::PetriNet& net, const RunLimits& limits,
                         const util::CancelToken* cancel,
                         obs::MetricsRegistry* metrics) {
  util::Stopwatch watch;
  unfold::UnfoldOptions opt;
  opt.max_seconds = limits.max_seconds;
  opt.cancel = cancel;
  opt.metrics = metrics;
  opt.metrics_prefix = "engine.unfold.";
  auto prefix = unfold::unfold(net, opt);
  EngineOutcome out;
  if (prefix.limit_hit) {
    out.seconds = watch.elapsed_seconds();
    out.aborted_phase = "prefix-construction";
    finish_outcome(out, false, true, cancel);
    return out;
  }
  // The prefix is complete: the original net deadlocks iff some reachable
  // cut of the prefix maps to a dead marking, which makes the unfolder a
  // genuine verdict-producing racer rather than a statistics pass.
  auto dead = unfold::deadlock_via_prefix(net, prefix, limits.max_states,
                                          cancel);
  out.states = static_cast<double>(dead.cuts_explored);
  out.seconds = watch.elapsed_seconds();
  if (dead.limit_hit) out.aborted_phase = "prefix-deadlock-check";
  finish_outcome(out, dead.deadlock_found, dead.limit_hit, cancel);
  return out;
}

}  // namespace

void EngineRegistry::add(const std::string& name, EngineRunner runner) {
  for (auto& [n, r] : entries_) {
    if (n == name) {
      r = std::move(runner);
      return;
    }
  }
  entries_.emplace_back(name, std::move(runner));
}

const EngineRunner* EngineRegistry::find(const std::string& name) const {
  for (const auto& [n, r] : entries_)
    if (n == name) return &r;
  return nullptr;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, r] : entries_) out.push_back(n);
  return out;
}

const EngineRegistry& default_engine_registry() {
  static const EngineRegistry kRegistry = [] {
    EngineRegistry reg;
    reg.add("full", run_explicit);
    reg.add("por", run_por);
    reg.add("bdd", run_bdd);
    reg.add("gpo", [](const petri::PetriNet& net, const RunLimits& l,
                      const util::CancelToken* c, obs::MetricsRegistry* m) {
      return run_gpo_kind(core::FamilyKind::kExplicit, "gpo", net, l, c, m);
    });
    reg.add("gpo-intern",
            [](const petri::PetriNet& net, const RunLimits& l,
               const util::CancelToken* c, obs::MetricsRegistry* m) {
              return run_gpo_kind(core::FamilyKind::kInterned, "gpo-intern",
                                  net, l, c, m);
            });
    reg.add("gpo-bdd",
            [](const petri::PetriNet& net, const RunLimits& l,
               const util::CancelToken* c, obs::MetricsRegistry* m) {
              return run_gpo_kind(core::FamilyKind::kBdd, "gpo-bdd", net, l, c,
                                  m);
            });
    reg.add("unfold", run_unfold);
    return reg;
  }();
  return kRegistry;
}

}  // namespace gpo::service
