// Entry points for the `julie batch` and `julie serve` subcommands (the
// argv they receive starts AFTER the subcommand word).
#pragma once

namespace gpo::service {

/// julie batch <manifest> [--report FILE] [--pool-threads N] [--quiet]
///
/// Runs every manifest job through the portfolio scheduler. Exit codes:
///   0  every job produced a verdict matching its expect= column (or had
///      none)
///   1  some job errored, stayed undecided against an expectation, or
///      produced a mismatching verdict
///   2  usage / manifest parse errors
int batch_main(int argc, char** argv);

/// julie serve [--pool-threads N]
///
/// Runs the line-protocol server on stdin/stdout until QUIT or EOF.
int serve_main(int argc, char** argv);

}  // namespace gpo::service
