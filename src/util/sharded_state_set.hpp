// Concurrent interning store for arbitrary states: an N-way striped hash set.
//
// Generalization of the PR-1 ShardedMarkingSet: the key type is any `State`
// with value semantics, `State::hash()` and `operator==`; each distinct state
// inserted gets a stable 64-bit StateId that encodes its shard, so lookups
// never consult a global table. A shard is a mutex, an open-addressing index
// (linear probing over (hash, local-id) slots) and a chunked entry arena
// whose entries never move, which keeps references handed out under the lock
// valid forever. The only cross-shard state is a relaxed atomic element
// counter, so size() is lock-free.
//
// Entries carry a caller-defined `Meta` payload (discovery breadcrumbs for
// the explorers: parent id + fired transitions), stored only by the first
// writer, exactly like sequential BFS bookkeeping.
//
// Thread-safety contract:
//   * insert() may be called concurrently from any number of threads.
//   * entry(id) is safe for an id the calling thread obtained from its own
//     insert(), or after synchronizing with the inserting thread (the
//     explorers' work queues and thread join provide that happens-before).
//   * size() / shard_sizes() are safe anytime (approximate while inserts
//     are in flight, exact once they quiesce).
//   * for_each() takes each shard lock in turn; call it after the workers
//     joined (the guard/telemetry phases), not from the insert hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace gpo::util {

template <typename State, typename Meta>
class ShardedStateSet {
 public:
  using StateId = std::uint64_t;
  static constexpr StateId kNoId = ~StateId{0};

  struct Entry {
    State state;
    Meta meta;
  };

  /// `shard_count` is rounded up to a power of two (at least 1, at most
  /// 2^kShardIdBits so every shard index fits in a StateId).
  explicit ShardedStateSet(std::size_t shard_count = 16) {
    std::size_t n = 1;
    while (n < shard_count && n < (std::size_t{1} << kShardIdBits)) n <<= 1;
    shards_ = std::vector<Shard>(n);
    shard_mask_ = n - 1;
  }

  /// Interns `s`. Returns the id and whether the state was new; the meta
  /// payload is stored only for a fresh insert (first writer wins, as in
  /// sequential BFS).
  std::pair<StateId, bool> insert(const State& s, Meta meta) {
    const std::uint64_t h = mix64(s.hash());
    Shard& shard = shards_[h & shard_mask_];
    std::lock_guard<std::mutex> lock(shard.mu);
    if ((shard.count + 1) * 4 > shard.slots.size() * 3) shard.grow();
    const std::size_t mask = shard.slots.size() - 1;
    std::size_t i = (h >> kShardHashBits) & mask;
    while (true) {
      Slot& slot = shard.slots[i];
      if (slot.local_plus_1 == 0) {
        const std::uint64_t local = shard.count++;
        slot.hash = h;
        slot.local_plus_1 = local + 1;
        shard.arena_emplace(local, Entry{s, std::move(meta)});
        size_.fetch_add(1, std::memory_order_relaxed);
        return {make_id(local, h & shard_mask_), true};
      }
      if (slot.hash == h && shard.arena_at(slot.local_plus_1 - 1).state == s)
        return {make_id(slot.local_plus_1 - 1, h & shard_mask_), false};
      i = (i + 1) & mask;
    }
  }

  /// The entry behind `id`. See the thread-safety contract above.
  [[nodiscard]] const Entry& entry(StateId id) const {
    const Shard& shard = shards_[id & shard_mask_];
    return shard.arena_at(id >> kShardIdBits);
  }

  /// Elements stored, via a relaxed atomic: lock-free, monotonic.
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Visits every entry as fn(StateId, const Entry&), shard by shard in
  /// insertion order within a shard. Takes each shard lock in turn — call
  /// after the inserting threads quiesced.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      const Shard& shard = shards_[sh];
      std::lock_guard<std::mutex> lock(shard.mu);
      for (std::uint64_t local = 0; local < shard.count; ++local)
        fn(make_id(local, sh), shard.arena_at(local));
    }
  }

  /// Approximate heap bytes held by the set: slot tables, entry chunks and
  /// (when State exposes memory_bytes()) the state payloads. Takes each
  /// shard lock in turn, so call it from one thread (the telemetry
  /// publisher), not the insert hot path.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = shards_.size() * sizeof(Shard);
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      bytes += s.slots.capacity() * sizeof(Slot);
      bytes += s.chunks.size() * kChunkSize * sizeof(Entry);
      if constexpr (requires(const State& st) { st.memory_bytes(); })
        for (std::uint64_t local = 0; local < s.count; ++local)
          bytes += s.arena_at(local).state.memory_bytes();
    }
    return bytes;
  }

  /// Per-shard element counts (for occupancy statistics).
  [[nodiscard]] std::vector<std::size_t> shard_sizes() const {
    std::vector<std::size_t> out;
    out.reserve(shards_.size());
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.push_back(s.count);
    }
    return out;
  }

 private:
  // A StateId is (local index << kShardIdBits) | shard. 16 bits of shard
  // leave 48 bits of local index — ample for explicit state spaces.
  static constexpr unsigned kShardIdBits = 16;
  static constexpr unsigned kShardHashBits = 16;

  struct Slot {
    std::uint64_t hash = 0;
    std::uint64_t local_plus_1 = 0;  // 0 = empty
  };

  // Entries live in fixed-size chunks so growth never moves them.
  static constexpr std::size_t kChunkBits = 12;  // 4096 entries per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;

  struct Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots = std::vector<Slot>(1024);
    std::vector<std::unique_ptr<Entry[]>> chunks;
    std::uint64_t count = 0;

    void arena_emplace(std::uint64_t local, Entry e) {
      const std::size_t chunk = local >> kChunkBits;
      if (chunk == chunks.size())
        chunks.push_back(std::make_unique<Entry[]>(kChunkSize));
      chunks[chunk][local & (kChunkSize - 1)] = std::move(e);
    }

    [[nodiscard]] const Entry& arena_at(std::uint64_t local) const {
      return chunks[local >> kChunkBits][local & (kChunkSize - 1)];
    }

    void grow() {
      std::vector<Slot> bigger(slots.size() * 2);
      const std::size_t mask = bigger.size() - 1;
      for (const Slot& s : slots) {
        if (s.local_plus_1 == 0) continue;
        std::size_t i = (s.hash >> kShardHashBits) & mask;
        while (bigger[i].local_plus_1 != 0) i = (i + 1) & mask;
        bigger[i] = s;
      }
      slots = std::move(bigger);
    }
  };

  [[nodiscard]] static StateId make_id(std::uint64_t local,
                                       std::uint64_t shard) {
    return (local << kShardIdBits) | shard;
  }

  std::vector<Shard> shards_;
  std::uint64_t shard_mask_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace gpo::util
