// Small hashing helpers shared by the state stores and the BDD unique table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace gpo::util {

/// Mixes `v` into the running hash `seed` (boost::hash_combine style, with a
/// 64-bit golden-ratio constant).
inline void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// Finalizer from MurmurHash3; good avalanche for integer keys.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace gpo::util
