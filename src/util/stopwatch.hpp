// Monotonic wall-clock stopwatch used by all analysis engines for the timing
// columns of the reproduced tables.
#pragma once

#include <chrono>

namespace gpo::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  void restart() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  /// Seconds since the previous lap() (or construction/restart for the first
  /// call), then resets the lap mark. The progress heartbeat uses this to
  /// turn cumulative counters into per-interval rates.
  [[nodiscard]] double lap() {
    Clock::time_point now = Clock::now();
    double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  // Timing columns must never run backwards under NTP adjustments.
  static_assert(Clock::is_steady, "Stopwatch requires a steady clock");
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace gpo::util
