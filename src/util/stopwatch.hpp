// Monotonic wall-clock stopwatch used by all analysis engines for the timing
// columns of the reproduced tables.
#pragma once

#include <chrono>

namespace gpo::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpo::util
