// Fork-join task pool over the shared WorkStealingQueues deques.
//
// PR 4 parallelized the GPN search at state granularity; BENCH_gpo_parallel
// then showed the paper's models give that engine nothing to chew on (2-18
// states, peak frontier 2, zero steals). The pool below re-targets the same
// work-stealing substrate at the *interior* of one state expansion: a worker
// expanding a state forks the candidate-MCS checks and family-op reduction
// levels as fine-grained range tasks, and every idle worker — including
// workers whose own state queue ran dry — helps drain them.
//
// Two task channels share one set of workers:
//   * jobs:  fire-and-forget closures (the engine submits one per discovered
//     state). Tracked by an outstanding counter; wait_all_jobs() blocks a
//     non-worker caller until the count drains to zero. Jobs may submit
//     further jobs (the increment happens before the push, so the counter
//     can never be observed at zero with work still queued).
//   * forks: index-range subtasks created by parallel_for(). Workers always
//     prefer forks over jobs, and a forker blocked on its join helps with
//     *forks only* — never with jobs — so join-helping cannot recursively
//     start another state expansion and grow the stack with the state graph.
//
// Determinism contract (relied on by the GPN engines' cross-check tests):
// parallel_for() fixes the chunk boundaries as a pure function of (n, grain,
// worker_count) and each chunk writes only caller-owned, index-addressed
// slots. Which worker runs which chunk — and in which order — varies run to
// run, but the written slots, and therefore everything merged from them in
// index order after the join, are bitwise identical to the serial execution.
//
// Blocking/progress: pushes and pops take the per-deque mutex (see
// work_stealing.hpp for why that is deliberately boring); a forker whose
// last chunk was stolen spin-yields on the join counter until the thief
// publishes. Idle workers spin briefly, then park on a condition variable
// with a timeout, so an idle pool costs microseconds of wakeups rather than
// a spinning core per worker.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/work_stealing.hpp"

namespace gpo::util {

class TaskPool {
 public:
  using Job = std::function<void()>;
  /// Half-open index range body; must be safe to run concurrently with other
  /// chunks of the same loop (write only index-addressed slots).
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  static constexpr std::size_t kNotAWorker = ~std::size_t{0};

  explicit TaskPool(std::size_t workers)
      : jobs_(workers == 0 ? 1 : workers),
        forks_(workers == 0 ? 1 : workers),
        steals_(jobs_.worker_count()),
        fork_tasks_(jobs_.worker_count()) {
    threads_.reserve(jobs_.worker_count());
    for (std::size_t i = 0; i < jobs_.worker_count(); ++i)
      threads_.emplace_back([this, i] { run_worker(i); });
  }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  ~TaskPool() { shutdown(); }

  /// Drains nothing: callers are expected to wait_all_jobs() first. Joins
  /// the workers; queued-but-unstarted jobs after a stop flag are the
  /// caller's contract to make cheap (every engine task polls its stop).
  void shutdown() {
    if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }

  [[nodiscard]] std::size_t worker_count() const {
    return jobs_.worker_count();
  }

  /// The calling thread's worker index, or kNotAWorker for outside callers.
  [[nodiscard]] std::size_t current_worker() const {
    return tls_pool == this ? tls_worker : kNotAWorker;
  }

  /// Enqueues a fire-and-forget closure. Callable from workers (lands on the
  /// caller's own deque, LIFO-hot) and from outside threads (round-robin).
  void submit(Job j) {
    outstanding_.fetch_add(1, std::memory_order_seq_cst);
    std::size_t me = current_worker();
    if (me == kNotAWorker)
      me = rr_.fetch_add(1, std::memory_order_relaxed) % worker_count();
    jobs_.push(me, std::move(j));
    wake(1);
  }

  /// Jobs submitted but not yet finished (forks are nested inside jobs and
  /// are not counted). Zero means the pool is quiescent w.r.t. jobs.
  [[nodiscard]] std::uint64_t outstanding_jobs() const {
    return outstanding_.load(std::memory_order_seq_cst);
  }

  /// Blocks a non-worker caller until every submitted job has finished.
  void wait_all_jobs() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_seq_cst) == 0;
    });
  }

  /// Runs body over [0, n) with deterministic chunk boundaries, forking the
  /// chunks onto the pool when the caller is a worker and the range is worth
  /// splitting; otherwise runs serially inline. The caller executes chunk 0
  /// itself and helps with forks (only) until the join completes.
  void parallel_for(std::size_t n, std::size_t grain, const RangeBody& body) {
    if (n == 0) return;
    const std::size_t me = current_worker();
    if (me == kNotAWorker || worker_count() <= 1 || n <= grain ||
        stopping_.load(std::memory_order_relaxed)) {
      body(0, n);
      return;
    }
    // Deterministic split: ~2 chunks per worker, each at least `grain` wide.
    std::size_t chunks = n / grain;
    chunks = std::min(chunks, worker_count() * 2);
    if (chunks <= 1) {
      body(0, n);
      return;
    }
    Join join{&body};
    join.remaining.store(chunks, std::memory_order_relaxed);
    const std::size_t base = n / chunks, rem = n % chunks;
    std::size_t begin = base + (rem > 0 ? 1 : 0);  // chunk 0 kept for self
    for (std::size_t k = 1; k < chunks; ++k) {
      const std::size_t len = base + (k < rem ? 1 : 0);
      forks_.push(me, ForkTask{&join, begin, begin + len});
      fork_tasks_[me].fetch_add(1, std::memory_order_relaxed);
      begin += len;
    }
    wake(chunks - 1);
    body(0, base + (rem > 0 ? 1 : 0));
    join.remaining.fetch_sub(1, std::memory_order_acq_rel);
    // Help until the join drains; forks only, so the stack stays bounded.
    ForkTask ft;
    bool stolen = false;
    while (join.remaining.load(std::memory_order_acquire) != 0) {
      if (forks_.acquire(me, ft, stolen)) {
        if (stolen) steals_[me].fetch_add(1, std::memory_order_relaxed);
        run_fork(ft);
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Work items taken from another worker's deque (jobs + forks), per
  /// worker; exact once the pool quiesces.
  [[nodiscard]] std::size_t steal_count(std::size_t worker) const {
    return steals_[worker].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t total_steals() const {
    std::size_t sum = 0;
    for (const auto& s : steals_) sum += s.load(std::memory_order_relaxed);
    return sum;
  }

  /// Range tasks forked by parallel_for (not counting the chunk the forker
  /// runs itself); exact once the pool quiesces.
  [[nodiscard]] std::size_t total_forks() const {
    std::size_t sum = 0;
    for (const auto& f : fork_tasks_) sum += f.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct Join {
    const RangeBody* body;
    std::atomic<std::size_t> remaining{0};
  };
  struct ForkTask {
    Join* join = nullptr;
    std::size_t begin = 0, end = 0;
  };

  static void run_fork(const ForkTask& ft) {
    (*ft.join->body)(ft.begin, ft.end);
    ft.join->remaining.fetch_sub(1, std::memory_order_acq_rel);
  }

  void run_worker(std::size_t me) {
    tls_pool = this;
    tls_worker = me;
    Job job;
    ForkTask ft;
    bool stolen = false;
    unsigned idle_spins = 0;
    while (true) {
      if (forks_.acquire(me, ft, stolen)) {
        if (stolen) steals_[me].fetch_add(1, std::memory_order_relaxed);
        run_fork(ft);
        idle_spins = 0;
        continue;
      }
      if (jobs_.acquire(me, job, stolen)) {
        if (stolen) steals_[me].fetch_add(1, std::memory_order_relaxed);
        job();
        job = nullptr;  // release captures before the counter says "done"
        if (outstanding_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
          std::lock_guard<std::mutex> lock(mu_);
          done_cv_.notify_all();
        }
        idle_spins = 0;
        continue;
      }
      if (stopping_.load(std::memory_order_acquire)) return;
      if (++idle_spins < 64) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  void wake(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (n == 1)
      cv_.notify_one();
    else
      cv_.notify_all();
  }

  // One thread-local (pool, index) pair: a thread belongs to at most one
  // pool at a time, which is all the engines need.
  static thread_local TaskPool* tls_pool;
  static thread_local std::size_t tls_worker;

  WorkStealingQueues<Job> jobs_;
  WorkStealingQueues<ForkTask> forks_;
  std::vector<std::atomic<std::size_t>> steals_;
  std::vector<std::atomic<std::size_t>> fork_tasks_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::size_t> rr_{0};
  std::atomic<bool> stopping_{false};
  std::mutex mu_;
  std::condition_variable cv_;       // idle workers park here
  std::condition_variable done_cv_;  // wait_all_jobs parks here
};

inline thread_local TaskPool* TaskPool::tls_pool = nullptr;
inline thread_local std::size_t TaskPool::tls_worker = 0;

}  // namespace gpo::util
