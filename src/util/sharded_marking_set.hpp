// Concurrent interning store for markings: the explicit explorer's
// instantiation of the generic ShardedStateSet (see sharded_state_set.hpp for
// the striping/arena design and the thread-safety contract). Each entry
// carries a (parent StateId, via transition) breadcrumb; after the owning
// threads have joined, a counterexample is reconstructed by walking parent
// pointers exactly like the sequential explorer does.
#pragma once

#include <cstdint>
#include <utility>

#include "util/bitset.hpp"
#include "util/sharded_state_set.hpp"

namespace gpo::util {

/// Discovery breadcrumb stored with each interned marking.
struct MarkingCrumb {
  std::uint64_t parent = ~std::uint64_t{0};
  std::uint32_t via = UINT32_MAX;  // transition fired to reach this state
};

class ShardedMarkingSet : public ShardedStateSet<Bitset, MarkingCrumb> {
 public:
  using Base = ShardedStateSet<Bitset, MarkingCrumb>;
  using StateId = Base::StateId;
  static constexpr StateId kNoParent = Base::kNoId;

  using Base::Base;
  using Base::insert;

  /// Interns `m` with its discovery breadcrumb; first writer wins.
  std::pair<StateId, bool> insert(const Bitset& m, StateId parent,
                                  std::uint32_t via) {
    return Base::insert(m, MarkingCrumb{parent, via});
  }
};

}  // namespace gpo::util
