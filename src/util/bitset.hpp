// Dynamic fixed-capacity bitset used for safe-Petri-net markings and
// transition sets. Unlike std::vector<bool> it exposes word-level operations
// (intersection, union, difference, subset tests) and a stable hash, which the
// explorers use on their hot paths.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace gpo::util {

/// A dynamically sized bitset with value semantics.
///
/// The number of bits is fixed at construction (the "universe size"); all
/// binary operations require operands over the same universe and throw
/// std::invalid_argument otherwise. Bits beyond size() are kept zero as a
/// class invariant so that word-wise comparison and hashing are exact.
class Bitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  Bitset() = default;

  /// Creates a bitset of `size` bits, all cleared.
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

  /// Creates a bitset of `size` bits with the listed bits set.
  Bitset(std::size_t size, std::initializer_list<std::size_t> bits)
      : Bitset(size) {
    for (std::size_t b : bits) set(b);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const {
    check_index(i);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i) {
    check_index(i);
    words_[i / kWordBits] |= Word{1} << (i % kWordBits);
  }

  void reset(std::size_t i) {
    check_index(i);
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }

  void assign(std::size_t i, bool value) { value ? set(i) : reset(i); }

  void clear() {
    for (Word& w : words_) w = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// The wi-th storage word (bit i lives in word i / kWordBits at bit
  /// i % kWordBits); bits past size() are zero by invariant. For word-level
  /// filters over many same-universe bitsets (ExplicitFamily::containing),
  /// where the caller hoists the word index and mask out of the loop
  /// instead of re-deriving them in every test().
  [[nodiscard]] Word word(std::size_t wi) const { return words_[wi]; }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  [[nodiscard]] bool none() const {
    for (Word w : words_)
      if (w != 0) return false;
    return true;
  }

  [[nodiscard]] bool any() const { return !none(); }

  /// Index of the lowest set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const { return find_next(0); }

  /// Index of the lowest set bit >= from, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t from) const {
    if (from >= size_) return size_;
    std::size_t wi = from / kWordBits;
    Word w = words_[wi] & (~Word{0} << (from % kWordBits));
    while (true) {
      if (w != 0) {
        std::size_t bit = wi * kWordBits +
                          static_cast<std::size_t>(std::countr_zero(w));
        return bit < size_ ? bit : size_;
      }
      if (++wi == words_.size()) return size_;
      w = words_[wi];
    }
  }

  Bitset& operator|=(const Bitset& o) {
    check_same(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  Bitset& operator&=(const Bitset& o) {
    check_same(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// Set difference: clears every bit that is set in `o`.
  Bitset& operator-=(const Bitset& o) {
    check_same(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  Bitset& operator^=(const Bitset& o) {
    check_same(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }
  friend Bitset operator^(Bitset a, const Bitset& b) { return a ^= b; }

  /// True if every bit set here is also set in `o`.
  [[nodiscard]] bool is_subset_of(const Bitset& o) const {
    check_same(o);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    return true;
  }

  /// True if this and `o` share at least one set bit.
  [[nodiscard]] bool intersects(const Bitset& o) const {
    check_same(o);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & o.words_[i]) != 0) return true;
    return false;
  }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Lexicographic order on (size, words); suitable for ordered containers
  /// and the canonical ordering inside set families.
  friend bool operator<(const Bitset& a, const Bitset& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  /// FNV-1a over the words in one pass, chained from `seed`; the trailing-bit
  /// invariant makes this exact. Callers hashing a sequence of bitsets
  /// (ExplicitFamily, the state stores) thread the running hash through
  /// `seed` instead of finalizing and re-mixing per element.
  [[nodiscard]] std::uint64_t hash_value(
      std::uint64_t seed = 1469598103934665603ull) const {
    std::uint64_t h = seed;
    for (Word w : words_) {
      h ^= w;
      h *= 1099511628211ull;
    }
    h ^= size_;
    h *= 1099511628211ull;
    return h;
  }

  [[nodiscard]] std::size_t hash() const {
    return static_cast<std::size_t>(hash_value());
  }

  /// Heap bytes owned by this bitset (the word payload; excludes sizeof the
  /// object itself). The telemetry layer sums this over marking stores for
  /// the "mem.*" gauges of the run report.
  [[nodiscard]] std::size_t memory_bytes() const {
    return words_.capacity() * sizeof(Word);
  }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> to_indices() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t i = find_first(); i < size_; i = find_next(i + 1))
      out.push_back(i);
    return out;
  }

  /// "{1,4,7}" style rendering, mainly for diagnostics and tests.
  [[nodiscard]] std::string to_string() const {
    std::string s = "{";
    bool first = true;
    for (std::size_t i = find_first(); i < size_; i = find_next(i + 1)) {
      if (!first) s += ',';
      s += std::to_string(i);
      first = false;
    }
    s += '}';
    return s;
  }

 private:
  void check_index(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("Bitset index out of range");
  }
  void check_same(const Bitset& o) const {
    if (size_ != o.size_)
      throw std::invalid_argument("Bitset size mismatch: " +
                                  std::to_string(size_) + " vs " +
                                  std::to_string(o.size_));
  }

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

struct BitsetHash {
  std::size_t operator()(const Bitset& b) const { return b.hash(); }
};

}  // namespace gpo::util

template <>
struct std::hash<gpo::util::Bitset> {
  std::size_t operator()(const gpo::util::Bitset& b) const noexcept {
    return b.hash();
  }
};
