// Shared work-stealing frontier used by the parallel engines.
//
// One mutex-guarded deque per worker: the owner pushes and pops at the back
// (depth-first-ish, cache-friendly), thieves take from the front (old,
// typically "big" work). acquire() first drains the caller's own deque, then
// probes the other workers round-robin starting at the neighbour, so steals
// spread instead of all hammering worker 0. The same policy used to live
// inline in the parallel explicit explorer (PR 1); it is now generic over the
// work item so the parallel GPN engine reuses it unchanged.
//
// A plain mutex per deque is deliberately boring: work items here are
// hundreds of bytes (a marking, or a GPN state), so the lock cost is noise
// next to the expansion cost, and boring is easy to keep TSan-clean.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace gpo::util {

template <typename Work>
class WorkStealingQueues {
 public:
  explicit WorkStealingQueues(std::size_t workers)
      : queues_(workers == 0 ? 1 : workers) {}

  WorkStealingQueues(const WorkStealingQueues&) = delete;
  WorkStealingQueues& operator=(const WorkStealingQueues&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return queues_.size(); }

  /// Enqueues `w` on `owner`'s deque (newest end).
  void push(std::size_t owner, Work&& w) {
    Deque& q = queues_[owner];
    std::lock_guard<std::mutex> lock(q.mu);
    q.items.push_back(std::move(w));
  }

  /// Pops the newest item of `owner`'s own deque.
  bool pop(std::size_t owner, Work& out) {
    Deque& q = queues_[owner];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.items.empty()) return false;
    out = std::move(q.items.back());
    q.items.pop_back();
    return true;
  }

  /// Steals the oldest item of `victim`'s deque.
  bool steal(std::size_t victim, Work& out) {
    Deque& q = queues_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.items.empty()) return false;
    out = std::move(q.items.front());
    q.items.pop_front();
    return true;
  }

  /// pop-or-steal: drains `me`'s own deque first, then probes the other
  /// workers round-robin. `stolen` reports which path produced the item so
  /// callers can keep steal tallies.
  bool acquire(std::size_t me, Work& out, bool& stolen) {
    stolen = false;
    if (pop(me, out)) return true;
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
      if (steal((me + k) % n, out)) {
        stolen = true;
        return true;
      }
    }
    return false;
  }

 private:
  struct Deque {
    std::mutex mu;
    std::deque<Work> items;
  };

  std::vector<Deque> queues_;
};

}  // namespace gpo::util
