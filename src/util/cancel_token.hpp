// Cooperative cancellation for engine runs.
//
// The portfolio scheduler races several engines on the same job and cancels
// the losers the moment the first conclusive verdict lands. Engines cannot be
// killed preemptively (they own arenas, interners and worker threads), so
// cancellation is cooperative: every engine's options carry an optional
// `const CancelToken*`, and the engine polls it in its main loop exactly
// where it already polls the wall-clock budget. A fired token is reported
// through the same channel as a timeout (`limit_hit` + `interrupted_phase`),
// so the abort plumbing introduced for `--max-seconds` serves both.
//
// The token is a single atomic flag: cancel() is release, cancelled() is
// acquire, so any state written by the canceller before firing (e.g. the
// winning verdict) is visible to an engine that observed the cancel. Tokens
// are shared by reference between the scheduler and N engine runs; the
// scheduler owns the storage and keeps it alive until every run returned.
#pragma once

#include <atomic>

namespace gpo::util {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent and thread-safe.
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Null-safe poll: engines hold `const CancelToken*` that is nullptr outside
/// portfolio runs.
[[nodiscard]] inline bool cancel_requested(const CancelToken* t) noexcept {
  return t != nullptr && t->cancelled();
}

}  // namespace gpo::util
