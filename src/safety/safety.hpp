// Safety checking via the deadlock reduction the paper invokes in Section 4:
// "obtained results are also valid for safety checks, since the verification
// of a safety property can always be reduced to a check for deadlock"
// [Godefroid-Wolper 1991].
//
// Construction (`reduce_safety_to_deadlock`): a global run place is added
// that every original transition self-loops on, plus one monitor transition
// that observes the bad submarking (self-looping the observed places so the
// witness is preserved) and consumes the run token into a violation place.
// Once the monitor fires nothing else can, so
//
//     bad submarking reachable in N
//         <=>  the reduced net has a deadlock marking the violation place.
//
// Original deadlocks of N survive in the reduced net too (with the run token
// still present), so the engines are asked for deadlocks that mark the
// violation place specifically — every engine exposes such a filter.
//
// Note on cost: the run place serializes the net for the *paper-literal*
// conflict relation (every transition pair shares it). With the refined
// relation (petri::ConflictDefinition::kIgnoreMutualSelfLoops, the default)
// mutual self-loops do not count as conflicts, so the GPO reduction
// machinery keeps working on the reduced net.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "petri/net.hpp"
#include "util/cancel_token.hpp"

namespace gpo::safety {

/// A safety property: "the listed places are never simultaneously marked".
/// (A monitor for richer state predicates can always be compiled into the
/// net as extra places; this is the canonical coverability form.)
struct SafetyProperty {
  std::vector<petri::PlaceId> never_all_marked;
};

struct ReducedNet {
  petri::PetriNet net;
  /// The global run place (marked initially; every transition loops on it).
  petri::PlaceId run_place;
  /// Marked exactly when the monitor observed the violation.
  petri::PlaceId violation_place;
  /// The monitor transition.
  petri::TransitionId monitor;
};

/// Builds the reduced net. Place/transition ids of the original net are
/// preserved (the new nodes are appended). Throws petri::NetError on invalid
/// place ids or an empty property.
[[nodiscard]] ReducedNet reduce_safety_to_deadlock(const petri::PetriNet& net,
                                                   const SafetyProperty& prop);

enum class Engine {
  kExplicit,
  kStubborn,
  kSymbolic,
  kGpo,
  kGpoBdd,
  kGpoInterned,
};

struct SafetyOptions {
  Engine engine = Engine::kGpoBdd;
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation, forwarded to the inner engine.
  const util::CancelToken* cancel = nullptr;
  /// Optional telemetry: the reduction and the inner engine run get
  /// "safety-reduction" / engine spans on `tracer`, and the inner engine
  /// publishes its counters to `metrics` under "safety.".
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct SafetyResult {
  bool violated = false;
  /// A reachable marking of the *original* net exhibiting the violation
  /// (the reduction's bookkeeping places stripped).
  std::optional<petri::Marking> witness;
  bool limit_hit = false;
  /// Phase a limit interrupted (from the inner engine). Empty otherwise.
  std::string interrupted_phase;
  double seconds = 0.0;
  /// States explored by the selected engine on the reduced net.
  std::size_t states_explored = 0;
};

/// Checks the property with the selected engine via the reduction above.
[[nodiscard]] SafetyResult check_safety(const petri::PetriNet& net,
                                        const SafetyProperty& prop,
                                        const SafetyOptions& options = {});

}  // namespace gpo::safety
