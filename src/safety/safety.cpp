#include "safety/safety.hpp"

#include <algorithm>

#include "bdd/symbolic_reach.hpp"
#include "core/gpo.hpp"
#include "petri/builder.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"

namespace gpo::safety {

using petri::Marking;
using petri::PetriNet;
using petri::PlaceId;
using petri::TransitionId;

ReducedNet reduce_safety_to_deadlock(const PetriNet& net,
                                     const SafetyProperty& prop) {
  if (prop.never_all_marked.empty())
    throw petri::NetError("safety property must name at least one place");
  for (PlaceId p : prop.never_all_marked)
    if (p >= net.place_count())
      throw petri::NetError("safety property names an unknown place");

  petri::NetBuilder b(std::string(net.name()) + "_safety");
  // Clone the original structure; ids are preserved by insertion order.
  for (PlaceId p = 0; p < net.place_count(); ++p)
    b.add_place(net.place(p).name, net.initial_marking().test(p));
  for (TransitionId t = 0; t < net.transition_count(); ++t)
    b.add_transition(net.transition(t).name);
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    for (PlaceId p : net.transition(t).pre) b.add_input_arc(p, t);
    for (PlaceId p : net.transition(t).post) b.add_output_arc(t, p);
  }

  PlaceId run = b.add_place("__run", /*marked=*/true);
  PlaceId violation = b.add_place("__violation");
  // Every original transition needs (and returns) the run token.
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    b.add_input_arc(run, t);
    b.add_output_arc(t, run);
  }
  // The monitor observes the bad submarking without disturbing it and
  // retires the run token: afterwards nothing can fire.
  TransitionId monitor = b.add_transition("__monitor");
  for (PlaceId p : prop.never_all_marked) {
    b.add_input_arc(p, monitor);
    b.add_output_arc(monitor, p);
  }
  b.add_input_arc(run, monitor);
  b.add_output_arc(monitor, violation);

  return ReducedNet{b.build(), run, violation, monitor};
}

namespace {

Marking strip_bookkeeping(const Marking& reduced_marking,
                          std::size_t original_places) {
  Marking m(original_places);
  for (std::size_t p = 0; p < original_places; ++p)
    if (reduced_marking.test(p)) m.set(p);
  return m;
}

}  // namespace

SafetyResult check_safety(const PetriNet& net, const SafetyProperty& prop,
                          const SafetyOptions& options) {
  std::optional<ReducedNet> reduced;
  {
    obs::Span span(options.tracer, "safety-reduction");
    reduced.emplace(reduce_safety_to_deadlock(net, prop));
  }
  SafetyResult result;
  const PlaceId violation = reduced->violation_place;

  switch (options.engine) {
    case Engine::kExplicit: {
      // The explicit engine can check the predicate directly on the original
      // net — no reduction overhead, and it doubles as the ground truth the
      // reduction is validated against.
      obs::Span span(options.tracer, "exploration");
      reach::ExplorerOptions opt;
      opt.max_states = options.max_states;
      opt.max_seconds = options.max_seconds;
      opt.cancel = options.cancel;
      opt.stop_at_first_deadlock = true;  // stop at first hit
      opt.metrics = options.metrics;
      opt.metrics_prefix = "safety.";
      opt.bad_state = [&](const Marking& m) {
        return std::all_of(prop.never_all_marked.begin(),
                           prop.never_all_marked.end(),
                           [&](PlaceId p) { return m.test(p); });
      };
      auto r = reach::ExplicitExplorer(net, opt).explore();
      result.violated = r.bad_state_found;
      if (r.first_bad_state) result.witness = *r.first_bad_state;
      result.limit_hit = r.limit_hit;
      result.interrupted_phase = r.interrupted_phase;
      result.seconds = r.seconds;
      result.states_explored = r.state_count;
      return result;
    }
    case Engine::kStubborn: {
      obs::Span span(options.tracer, "reduced-search");
      por::StubbornOptions opt;
      opt.max_states = options.max_states;
      opt.max_seconds = options.max_seconds;
      opt.cancel = options.cancel;
      opt.stop_at_first_deadlock = true;
      opt.metrics = options.metrics;
      opt.metrics_prefix = "safety.";
      opt.deadlock_filter = [violation](const Marking& m) {
        return m.test(violation);
      };
      auto r = por::StubbornExplorer(reduced->net, opt).explore();
      result.violated = r.deadlock_found;
      if (r.first_deadlock)
        result.witness = strip_bookkeeping(*r.first_deadlock,
                                           net.place_count());
      result.limit_hit = r.limit_hit;
      result.interrupted_phase = r.interrupted_phase;
      result.seconds = r.seconds;
      result.states_explored = r.state_count;
      return result;
    }
    case Engine::kSymbolic: {
      obs::Span span(options.tracer, "symbolic-fixpoint");
      bdd::SymbolicOptions opt;
      opt.max_seconds = options.max_seconds;
      opt.cancel = options.cancel;
      opt.required_deadlock_place = violation;
      opt.metrics = options.metrics;
      opt.metrics_prefix = "safety.";
      auto r = bdd::SymbolicReachability(reduced->net, opt).analyze();
      result.violated = r.deadlock_found;
      if (r.deadlock_witness)
        result.witness = strip_bookkeeping(*r.deadlock_witness,
                                           net.place_count());
      result.limit_hit = r.blowup;
      if (r.blowup) result.interrupted_phase = "symbolic-fixpoint";
      result.seconds = r.seconds;
      result.states_explored = static_cast<std::size_t>(r.state_count);
      return result;
    }
    case Engine::kGpo:
    case Engine::kGpoBdd:
    case Engine::kGpoInterned: {
      core::GpoOptions opt;
      opt.max_states = options.max_states;
      opt.max_seconds = options.max_seconds;
      opt.cancel = options.cancel;
      opt.stop_at_first_deadlock = true;
      opt.required_witness_place = violation;
      opt.metrics = options.metrics;
      opt.metrics_prefix = "safety.";
      opt.tracer = options.tracer;
      auto kind = options.engine == Engine::kGpo ? core::FamilyKind::kExplicit
                  : options.engine == Engine::kGpoInterned
                      ? core::FamilyKind::kInterned
                      : core::FamilyKind::kBdd;
      auto r = core::run_gpo(reduced->net, kind, opt);
      result.violated = r.deadlock_found;
      if (r.deadlock_witness)
        result.witness = strip_bookkeeping(*r.deadlock_witness,
                                           net.place_count());
      result.limit_hit = r.limit_hit;
      result.interrupted_phase = r.interrupted_phase;
      result.seconds = r.seconds;
      result.states_explored = r.state_count;
      return result;
    }
  }
  return result;  // unreachable
}

}  // namespace gpo::safety
