// Machine-readable run reports (`julie --report FILE`) and Chrome-trace
// export (`--trace FILE`).
//
// The report is the schema-stable JSON every front-end emits — `julie`,
// `bench_table1 --report` and `bench_gpo_intern --report` all go through
// RunReport, so cross-engine comparisons (the paper's Table 1, the ROADMAP's
// BENCH_* trajectory) are one `jq` away instead of a stdout-scraping
// exercise. The schema is checked in at bench/report_schema.json and
// validated both by the C++ golden test (obs::json::validate) and by CI
// (bench/validate_report.py).
//
// Document layout (schema_version 1):
//   {
//     "schema_version": 1,
//     "tool": "julie",
//     "command": "...",                      // optional
//     "net": {"name":..,"places":..,"transitions":..},
//     "reduction": {"level":"safe","places_before":..,"places_after":..,
//                   "transitions_before":..,"transitions_after":..,
//                   "seconds":..,
//                   "passes":[{"pass":"dead-places","applications":..}]},
//                                              // optional (--reduce runs);
//                                              // jobs[] entries carry their
//                                              // own "reduction" object
//     "engines": [ {"engine":"full", "model":"nsdp:8", "verdict":"deadlock",
//                   "states":.., "seconds":.., "aborted":false,
//                   "aborted_phase":"", "counters":{...}} ],
//     "jobs":    [ {"id":0, "model":"nsdp:6", "verdict":"deadlock",
//                   "winner":"gpo-intern", "expect":"deadlock",
//                   "expect_matched":true, "seconds":..,
//                   "cancel_latency_seconds":..,
//                   "engines":[...engine runs, with "cancelled"...]} ],
//     "phases": [ {"name":"parse","ms":..,"children":[...]} ],
//     "histograms": [ {"name":"service.job_seconds", "count":..,  // optional
//                      "p50":.., "p90":.., "p99":.., "max":..} ], // seconds
//     "events_path": "events.jsonl",                              // optional
//     "memory": {"peak_rss_bytes":.., "gauges":{...}}   // registry "mem.*"
//   }
//
// "jobs" is emitted by the batch/server front-ends (`julie batch`, `julie
// serve --report`) — one entry per portfolio job, each racer's outcome
// nested under it.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gpo::obs {

/// High-water resident set size of this process (Linux: VmHWM of
/// /proc/self/status); 0 when unavailable.
[[nodiscard]] std::size_t peak_rss_bytes();
/// Current resident set size (Linux: VmRSS); 0 when unavailable.
[[nodiscard]] std::size_t current_rss_bytes();

/// Registry entries under `prefix` as an ordered JSON object; the prefix is
/// stripped from the keys and the remaining dots become underscores, so
/// "engine.full.peak_frontier" serializes as "peak_frontier". Counters
/// serialize as integers, gauges and timers as numbers.
[[nodiscard]] json::Value registry_to_json(const MetricsRegistry& reg,
                                           std::string_view prefix);

/// The span records as a nested phase tree: [{name, ms, children}]. Spans
/// still open at snapshot time get "ms": -1.
[[nodiscard]] json::Value phase_tree(
    const std::vector<Tracer::Record>& records);

/// Writes the records as chrome://tracing JSON ("traceEvents" of complete
/// "X" events, microsecond timestamps). Load via chrome://tracing or
/// https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& out,
                        const std::vector<Tracer::Record>& records);

class RunReport {
 public:
  explicit RunReport(std::string tool) : tool_(std::move(tool)) {}

  void set_command(std::string command) { command_ = std::move(command); }
  void set_net(const std::string& name, std::size_t places,
               std::size_t transitions);

  /// One engine run. `states` < 0 means "not applicable" (serialized as -1,
  /// e.g. the unfolder reports events through counters instead).
  struct EngineRun {
    std::string engine;
    std::string model;  // optional: bench drivers tag the instance
    std::string verdict;
    double states = -1;
    double seconds = 0;
    bool aborted = false;
    /// The portfolio scheduler's first-to-answer cancellation stopped this
    /// run (a subset of aborted; serialized only inside jobs[] entries).
    bool cancelled = false;
    std::string aborted_phase;
    json::Value counters = json::Value::object();
  };
  void add_engine(EngineRun run) { engines_.push_back(std::move(run)); }

  /// Outcome of the structural net reduction applied in front of the
  /// engines (`--reduce` / the manifest's `reduce=` key). Kept as plain
  /// strings/numbers so this header does not depend on the reduce library;
  /// `passes` holds one (pass name, application count) pair per pass that
  /// applied. Serialized as a "reduction" object — top-level for single
  /// runs (set_reduction), per job inside jobs[] (JobRun::reduction).
  struct ReductionRun {
    std::string level;  // "safe" | "aggressive"
    long long places_before = 0;
    long long places_after = 0;
    long long transitions_before = 0;
    long long transitions_after = 0;
    double seconds = 0;
    std::vector<std::pair<std::string, long long>> passes;
  };
  void set_reduction(ReductionRun reduction) {
    reduction_ = std::move(reduction);
  }

  /// One portfolio job of a batch/server run (`julie batch` / `julie
  /// serve`). `engines` holds every racer's outcome; `winner` names the
  /// engine whose conclusive answer became the job verdict (empty when all
  /// racers aborted). Serialized as the report's "jobs" array.
  struct JobRun {
    long long id = 0;
    std::string model;
    std::string verdict;  // deadlock | no-deadlock | undecided | error
    std::string winner;
    /// Family-store backend requested for the job's gpo racers
    /// ("explicit" | "zdd"); "" = manifest default, omitted from the JSON.
    std::string family_store;
    std::string expect;  // expected verdict from the manifest; "" = none
    bool expect_matched = true;
    double seconds = 0;
    /// Longest drain of a cancelled loser: time from the cancel token firing
    /// to that engine actually returning. 0 when nothing was cancelled.
    double cancel_latency_seconds = 0;
    /// Net reduction applied once before the job's racers fanned out;
    /// absent when the manifest requested reduce=off (or nothing).
    std::optional<ReductionRun> reduction;
    /// Non-fatal diagnostics from the racers ("<engine>: <message>"), e.g.
    /// a threads= request the zdd store demoted to a sequential run.
    /// Omitted from the JSON when empty.
    std::vector<std::string> warnings;
    std::vector<EngineRun> engines;
  };
  void add_job(JobRun job) { jobs_.push_back(std::move(job)); }
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }

  /// Where the structured JSONL event log of this run was written (the
  /// `--events` flag / `events=` manifest directive). Emitted as the
  /// optional top-level "events_path" string so tooling can join the report
  /// with the event stream.
  void set_events_path(std::string path) { events_path_ = std::move(path); }

  /// Assembles the full document. `tracer` supplies the phase tree and `reg`
  /// the "mem." gauges; either may be null.
  [[nodiscard]] json::Value build(const Tracer* tracer,
                                  const MetricsRegistry* reg) const;

  void write(std::ostream& out, const Tracer* tracer,
             const MetricsRegistry* reg) const;

 private:
  std::string tool_;
  std::string command_;
  std::string events_path_;
  json::Value net_ = json::Value::object();
  std::optional<ReductionRun> reduction_;
  std::vector<EngineRun> engines_;
  std::vector<JobRun> jobs_;
};

}  // namespace gpo::obs
