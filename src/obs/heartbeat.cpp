#include "obs/heartbeat.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/diag.hpp"
#include "obs/report.hpp"

namespace gpo::obs {

namespace {

/// "86k" / "1.2M" style rate for the states/s field.
std::string human_rate(double per_sec) {
  char buf[32];
  if (per_sec >= 1e6)
    std::snprintf(buf, sizeof(buf), "%.1fM", per_sec / 1e6);
  else if (per_sec >= 1e3)
    std::snprintf(buf, sizeof(buf), "%.0fk", per_sec / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.0f", per_sec);
  return buf;
}

std::string human_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0 * 1024.0)
    std::snprintf(buf, sizeof(buf), "%.1fGB", bytes / (1024.0 * 1024.0 * 1024.0));
  else if (bytes >= 1024.0 * 1024.0)
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / (1024.0 * 1024.0));
  else
    std::snprintf(buf, sizeof(buf), "%.0fKB", bytes / 1024.0);
  return buf;
}

}  // namespace

Heartbeat::Heartbeat(MetricsRegistry& reg, const Tracer* tracer,
                     double interval_s, std::ostream& out)
    : reg_(reg),
      tracer_(tracer),
      interval_s_(interval_s > 0 ? interval_s : 1.0),
      out_(out),
      states_(reg.counter("progress.states")),
      frontier_(reg.gauge("progress.frontier")),
      families_(reg.gauge("interner.families")) {}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::start() {
  if (thread_.joinable()) return;
  uptime_.restart();
  rate_clock_.restart();
  last_states_ = states_.value();
  thread_ = std::thread([this] { run(); });
}

void Heartbeat::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  emit_line();
}

void Heartbeat::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto wake = std::chrono::duration<double>(interval_s_);
    if (cv_.wait_for(lock, wake, [this] { return stopping_; })) return;
    lock.unlock();
    emit_line();
    lock.lock();
  }
}

void Heartbeat::emit_line() {
  std::uint64_t states = states_.value();
  double dt = rate_clock_.lap();
  double rate = dt > 0 ? static_cast<double>(states - last_states_) / dt : 0;
  last_states_ = states;

  char line[256];
  std::snprintf(line, sizeof(line),
                "[progress %.1fs] states=%" PRIu64
                " (%s/s) frontier=%.0f rss=%s",
                uptime_.elapsed_seconds(), states,
                human_rate(rate).c_str(), frontier_.value(),
                human_bytes(static_cast<double>(peak_rss_bytes())).c_str());
  std::string text = line;
  if (double fam = families_.value(); fam > 0) {
    std::snprintf(line, sizeof(line), " families=%.0f", fam);
    text += line;
  }
  // Scheduler queue depth, when running under `julie batch`/`serve`. Looked
  // up by name (not registered here): its presence means a scheduler is
  // publishing into this registry.
  if (auto q = reg_.value("service.queue.depth")) {
    std::snprintf(line, sizeof(line), " queue=%.0f", *q);
    text += line;
  }
  if (tracer_ != nullptr) {
    std::string phase = tracer_->current_path();
    if (!phase.empty()) text += " phase=" + phase;
  }
  // Through the serialized sink: the ticker runs on its own thread, and
  // worker/CLI diagnostics must not interleave with the progress line.
  DiagSink::instance().line(out_, text);
}

}  // namespace gpo::obs
