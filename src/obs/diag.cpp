#include "obs/diag.hpp"

#include <iostream>
#include <mutex>

namespace gpo::obs {

namespace {
std::mutex g_diag_mu;
std::ostream* g_default_stream = nullptr;  // nullptr = std::cerr
}  // namespace

DiagSink& DiagSink::instance() {
  static DiagSink sink;
  return sink;
}

void DiagSink::line(std::ostream& out, std::string_view text) {
  std::lock_guard<std::mutex> lock(g_diag_mu);
  out << text << '\n' << std::flush;
}

void DiagSink::line(std::string_view text) {
  std::lock_guard<std::mutex> lock(g_diag_mu);
  std::ostream& out = g_default_stream != nullptr ? *g_default_stream
                                                  : std::cerr;
  out << text << '\n' << std::flush;
}

void DiagSink::set_default_stream(std::ostream* out) {
  std::lock_guard<std::mutex> lock(g_diag_mu);
  g_default_stream = out;
}

}  // namespace gpo::obs
