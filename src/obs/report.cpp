#include "obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>

namespace gpo::obs {

namespace {

/// Reads one "kB" field from /proc/self/status (Linux). Returns bytes, 0 on
/// any failure — telemetry must degrade, never abort a verification run.
std::size_t proc_status_kb(std::string_view key) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, key.size(), key.data(), key.size()) != 0) continue;
    // "VmHWM:     12345 kB"
    std::size_t pos = key.size();
    while (pos < line.size() && (line[pos] == ':' || line[pos] == ' ' ||
                                 line[pos] == '\t'))
      ++pos;
    std::size_t kb = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9')
      kb = kb * 10 + static_cast<std::size_t>(line[pos++] - '0');
    return kb * 1024;
  }
  return 0;
}

}  // namespace

std::size_t peak_rss_bytes() { return proc_status_kb("VmHWM"); }
std::size_t current_rss_bytes() { return proc_status_kb("VmRSS"); }

json::Value registry_to_json(const MetricsRegistry& reg,
                             std::string_view prefix) {
  json::Value out = json::Value::object();
  for (const MetricsRegistry::Snapshot& s : reg.snapshot(prefix)) {
    std::string key = s.name.substr(prefix.size());
    for (char& c : key)
      if (c == '.') c = '_';
    switch (s.kind) {
      case MetricKind::kCounter:
        out[key] = static_cast<long long>(s.count);
        break;
      case MetricKind::kGauge:
      case MetricKind::kTimer:
        out[key] = s.value;
        break;
      case MetricKind::kHistogram: {
        // Nested object so per-engine counters keep their flat numeric
        // shape; all durations in seconds (registry histograms record ns).
        json::Value h = json::Value::object();
        h["count"] = static_cast<long long>(s.count);
        h["p50"] = s.p50;
        h["p90"] = s.p90;
        h["p99"] = s.p99;
        h["max"] = s.max;
        out[key] = std::move(h);
        break;
      }
    }
  }
  return out;
}

json::Value phase_tree(const std::vector<Tracer::Record>& records) {
  // Records are in span-open order (parents precede children); group child
  // indices per parent, then emit the tree recursively so sibling order is
  // preserved.
  std::vector<std::vector<std::size_t>> children(records.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].parent == 0)
      roots.push_back(i);
    else
      children[records[i].parent - 1].push_back(i);
  }
  auto build = [&](auto&& self, std::size_t i) -> json::Value {
    json::Value n = json::Value::object();
    n["name"] = records[i].name;
    n["ms"] = records[i].dur_us < 0
                  ? -1.0
                  : static_cast<double>(records[i].dur_us) / 1000.0;
    json::Value kids = json::Value::array();
    for (std::size_t c : children[i]) kids.push_back(self(self, c));
    n["children"] = std::move(kids);
    return n;
  };
  json::Value out = json::Value::array();
  for (std::size_t r : roots) out.push_back(build(build, r));
  return out;
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<Tracer::Record>& records) {
  json::Value doc = json::Value::object();
  json::Value events = json::Value::array();
  for (const Tracer::Record& r : records) {
    json::Value e = json::Value::object();
    e["name"] = r.name;
    e["ph"] = "X";
    e["ts"] = r.start_us;
    // Chrome refuses negative durations; clamp open spans to 0.
    e["dur"] = r.dur_us < 0 ? static_cast<std::int64_t>(0) : r.dur_us;
    e["pid"] = 1;
    e["tid"] = 1;
    e["cat"] = "phase";
    events.push_back(std::move(e));
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  doc.dump(out);
  out << '\n';
}

void RunReport::set_net(const std::string& name, std::size_t places,
                        std::size_t transitions) {
  net_ = json::Value::object();
  net_["name"] = name;
  net_["places"] = static_cast<long long>(places);
  net_["transitions"] = static_cast<long long>(transitions);
}

namespace {

json::Value reduction_to_json(const RunReport::ReductionRun& red) {
  json::Value r = json::Value::object();
  r["level"] = red.level;
  r["places_before"] = red.places_before;
  r["places_after"] = red.places_after;
  r["transitions_before"] = red.transitions_before;
  r["transitions_after"] = red.transitions_after;
  r["seconds"] = red.seconds;
  json::Value passes = json::Value::array();
  for (const auto& [pass, applications] : red.passes) {
    json::Value p = json::Value::object();
    p["pass"] = pass;
    p["applications"] = applications;
    passes.push_back(std::move(p));
  }
  r["passes"] = std::move(passes);
  return r;
}

json::Value engine_run_to_json(const RunReport::EngineRun& run,
                               bool in_job) {
  json::Value e = json::Value::object();
  e["engine"] = run.engine;
  if (!run.model.empty()) e["model"] = run.model;
  e["verdict"] = run.verdict;
  e["states"] = static_cast<long long>(run.states);
  e["seconds"] = run.seconds;
  e["aborted"] = run.aborted;
  if (in_job) e["cancelled"] = run.cancelled;
  if (!run.aborted_phase.empty()) e["aborted_phase"] = run.aborted_phase;
  e["counters"] = run.counters;
  return e;
}

}  // namespace

json::Value RunReport::build(const Tracer* tracer,
                             const MetricsRegistry* reg) const {
  json::Value doc = json::Value::object();
  doc["schema_version"] = 1;
  doc["tool"] = tool_;
  if (!command_.empty()) doc["command"] = command_;
  if (net_.is_object() && net_.size() > 0) doc["net"] = net_;
  if (reduction_.has_value()) doc["reduction"] = reduction_to_json(*reduction_);

  json::Value engines = json::Value::array();
  for (const EngineRun& run : engines_)
    engines.push_back(engine_run_to_json(run, /*in_job=*/false));
  doc["engines"] = std::move(engines);

  if (!jobs_.empty()) {
    json::Value jobs = json::Value::array();
    for (const JobRun& job : jobs_) {
      json::Value j = json::Value::object();
      j["id"] = job.id;
      j["model"] = job.model;
      j["verdict"] = job.verdict;
      j["winner"] = job.winner;
      if (!job.family_store.empty()) j["family_store"] = job.family_store;
      if (!job.expect.empty()) {
        j["expect"] = job.expect;
        j["expect_matched"] = job.expect_matched;
      }
      j["seconds"] = job.seconds;
      j["cancel_latency_seconds"] = job.cancel_latency_seconds;
      if (job.reduction.has_value())
        j["reduction"] = reduction_to_json(*job.reduction);
      if (!job.warnings.empty()) {
        json::Value warns = json::Value::array();
        for (const std::string& w : job.warnings) warns.push_back(w);
        j["warnings"] = std::move(warns);
      }
      json::Value racers = json::Value::array();
      for (const EngineRun& run : job.engines)
        racers.push_back(engine_run_to_json(run, /*in_job=*/true));
      j["engines"] = std::move(racers);
      jobs.push_back(std::move(j));
    }
    doc["jobs"] = std::move(jobs);
  }

  if (tracer != nullptr) doc["phases"] = phase_tree(tracer->records());
  else doc["phases"] = json::Value::array();

  // Latency distributions: every registered histogram (even count == 0, so
  // the section's shape is independent of traffic), percentiles in seconds.
  if (reg != nullptr) {
    json::Value hists = json::Value::array();
    for (const MetricsRegistry::Snapshot& s : reg->snapshot()) {
      if (s.kind != MetricKind::kHistogram) continue;
      json::Value h = json::Value::object();
      h["name"] = s.name;
      h["count"] = static_cast<long long>(s.count);
      h["p50"] = s.p50;
      h["p90"] = s.p90;
      h["p99"] = s.p99;
      h["max"] = s.max;
      hists.push_back(std::move(h));
    }
    if (hists.size() > 0) doc["histograms"] = std::move(hists);
  }
  if (!events_path_.empty()) doc["events_path"] = events_path_;

  json::Value mem = json::Value::object();
  mem["peak_rss_bytes"] = static_cast<long long>(peak_rss_bytes());
  mem["gauges"] =
      reg != nullptr ? registry_to_json(*reg, "mem.") : json::Value::object();
  doc["memory"] = std::move(mem);
  return doc;
}

void RunReport::write(std::ostream& out, const Tracer* tracer,
                      const MetricsRegistry* reg) const {
  build(tracer, reg).dump(out);
  out << '\n';
}

}  // namespace gpo::obs
