// Minimal JSON document model for the telemetry layer: an ordered value
// tree with a writer, a parser and a JSON-Schema-subset validator.
//
// Why hand-rolled: the container bakes in no JSON library and the run-report
// schema is small. The model keeps object member order (so reports are
// deterministic and diffable), distinguishes integers from doubles (so
// schema "integer" checks are meaningful), and dumps doubles with the
// shortest round-tripping representation (so parse(dump(v)) == v exactly —
// the property the report round-trip test relies on).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace gpo::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T v) : type_(Type::kInt), int_(static_cast<long long>(v)) {}
  Value(double d) : type_(Type::kDouble), dbl_(d) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), str_(s) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}

  [[nodiscard]] static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_int() const { return type_ == Type::kInt; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] long long as_int() const { return int_; }
  [[nodiscard]] double as_number() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : dbl_;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // -- object access --------------------------------------------------------

  using Member = std::pair<std::string, Value>;

  /// Inserts (or finds) `key`; converts a null value into an object first.
  Value& operator[](std::string_view key);
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const std::vector<Member>& members() const { return obj_; }

  // -- array access ---------------------------------------------------------

  /// Appends; converts a null value into an array first.
  void push_back(Value v);
  [[nodiscard]] const std::vector<Value>& items() const { return arr_; }

  [[nodiscard]] std::size_t size() const {
    return type_ == Type::kArray ? arr_.size() : obj_.size();
  }

  // -- serialization --------------------------------------------------------

  void dump(std::ostream& out, int indent = 2) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

  /// Parses a complete JSON document; throws std::runtime_error with a byte
  /// offset on malformed input.
  [[nodiscard]] static Value parse(std::string_view text);

  /// Deep structural equality. Object member *order* is ignored (two objects
  /// with the same key/value pairs are equal); numbers compare by exact
  /// value with kInt(n) == kDouble(n) when the double is integral.
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

 private:
  void dump_impl(std::ostream& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
};

/// Validates `doc` against a JSON-Schema subset: `type` (single string),
/// `required`, `properties`, `items`, `enum` (strings), `minimum`,
/// `additionalProperties` (boolean), and `$ref` into `#/definitions/...` of
/// the root schema. On failure returns false and, if `error` is non-null,
/// stores a "path: reason" message. This is the same subset
/// bench/validate_report.py implements, so C++ tests and CI agree.
bool validate(const Value& schema, const Value& doc, const Value& root_schema,
              std::string* error);

inline bool validate(const Value& schema, const Value& doc,
                     std::string* error) {
  return validate(schema, doc, schema, error);
}

}  // namespace gpo::obs::json
