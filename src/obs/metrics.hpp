// Metrics registry: named counters, gauges and timers shared by every
// analysis engine.
//
// Design goals (ISSUE 3 tentpole):
//   * plain atomic slots — a hot-path increment is one relaxed fetch_add,
//     safe under the work-stealing parallel explorer and readable from the
//     progress-heartbeat thread without locks;
//   * zero cost when unused — engines take an optional MetricsRegistry* and
//     cache raw slot pointers once, so the disabled path is a null check
//     (and the per-event hot counters compile out entirely with
//     -DGPO_OBS_HOT_COUNTERS=OFF, see kHotCountersEnabled);
//   * stable references — slots live in std::deques, so a reference handed
//     out survives any later registration;
//   * registration order is preserved, which makes the CLI stats formatter
//     and the RunReport JSON deterministic.
//
// Naming convention: dotted lowercase paths. Engines publish their final
// counters under a per-run prefix ("engine.full.", "safety.") and update the
// global live-progress slots "progress.states" / "progress.frontier" /
// "interner.families" that the heartbeat reads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hpp"

namespace gpo::obs {

/// Per-event hot-path counters (state interned, event appended) are guarded
/// by this flag so a build can compile them out entirely; the end-of-run
/// publication of final counters is unconditional, so reports stay complete
/// either way. Controlled by the GPO_OBS_HOT_COUNTERS CMake option.
#if defined(GPO_OBS_NO_HOT_COUNTERS)
inline constexpr bool kHotCountersEnabled = false;
#else
inline constexpr bool kHotCountersEnabled = true;
#endif

/// Monotonically increasing 64-bit counter. All operations are relaxed
/// atomics: counts are exact once writers quiesce (e.g. after thread join),
/// approximate while concurrent — which is all the heartbeat needs.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Overwrites the count (used by end-of-run publication and per-engine
  /// resets in the CLI). Not atomic with respect to concurrent add()s.
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A last-value-wins double slot (occupancy, rates, ratios, byte sizes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water marks).
  void set_max(double v) {
    double prev = v_.load(std::memory_order_relaxed);
    while (prev < v && !v_.compare_exchange_weak(prev, v,
                                                 std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Accumulated duration + sample count (phase totals, per-op cost).
class Timer {
 public:
  void record_ns(std::uint64_t ns) {
    ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII accumulation into a Timer; a null timer makes it a no-op, so call
/// sites need no branching of their own.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* t)
      : t_(t), start_(t ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{}) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (t_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    t_->record_ns(static_cast<std::uint64_t>(ns));
  }

 private:
  Timer* t_;
  std::chrono::steady_clock::time_point start_;
};

enum class MetricKind { kCounter, kGauge, kTimer, kHistogram };

/// Named metric slots. Registration (counter()/gauge()/timer()) takes a lock
/// and is idempotent per name; the returned references are stable for the
/// registry's lifetime, so hot paths resolve a name once and then touch the
/// atomic directly. Reads for reporting snapshot under the same lock but
/// never block writers (the slots themselves are lock-free).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name) {
    return slot<Counter>(name, MetricKind::kCounter, counters_);
  }
  Gauge& gauge(std::string_view name) {
    return slot<Gauge>(name, MetricKind::kGauge, gauges_);
  }
  Timer& timer(std::string_view name) {
    return slot<Timer>(name, MetricKind::kTimer, timers_);
  }
  /// A duration histogram. Registry convention: record() takes NANOSECONDS
  /// (use record_seconds()/ScopedHistogramTimer); snapshot()/report
  /// percentiles are converted to seconds.
  Histogram& histogram(std::string_view name) {
    return slot<Histogram>(name, MetricKind::kHistogram, histograms_);
  }

  /// One registered metric, flattened for formatting/serialization.
  struct Snapshot {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /// counter: the count; gauge: the value; timer/histogram: accumulated
    /// seconds.
    double value = 0;
    /// counter: the exact count; timer/histogram: the sample count;
    /// gauge: 0.
    std::uint64_t count = 0;
    /// Histograms only: percentile estimates and the observed max, in
    /// seconds (recorded nanoseconds / 1e9). Zero for the other kinds.
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double max = 0;
  };

  /// All metrics whose name starts with `prefix` (empty = all), in
  /// registration order.
  [[nodiscard]] std::vector<Snapshot> snapshot(
      std::string_view prefix = {}) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Snapshot> out;
    for (const Entry& e : entries_) {
      if (e.name.size() < prefix.size() ||
          std::string_view(e.name).substr(0, prefix.size()) != prefix)
        continue;
      Snapshot s;
      s.name = e.name;
      s.kind = e.kind;
      switch (e.kind) {
        case MetricKind::kCounter: {
          std::uint64_t v = counters_[e.index].value();
          s.value = static_cast<double>(v);
          s.count = v;
          break;
        }
        case MetricKind::kGauge:
          s.value = gauges_[e.index].value();
          break;
        case MetricKind::kTimer:
          s.value = timers_[e.index].seconds();
          s.count = timers_[e.index].count();
          break;
        case MetricKind::kHistogram: {
          Histogram::Snapshot h = histograms_[e.index].snapshot();
          s.value = static_cast<double>(h.sum) * 1e-9;
          s.count = h.count;
          s.p50 = h.percentile(50) * 1e-9;
          s.p90 = h.percentile(90) * 1e-9;
          s.p99 = h.percentile(99) * 1e-9;
          s.max = static_cast<double>(h.max) * 1e-9;
          break;
        }
      }
      out.push_back(std::move(s));
    }
    return out;
  }

  /// The flattened value of one metric, if registered (any kind).
  [[nodiscard]] std::optional<double> value(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(std::string(name));
    if (it == by_name_.end()) return std::nullopt;
    const Entry& e = entries_[it->second];
    switch (e.kind) {
      case MetricKind::kCounter:
        return static_cast<double>(counters_[e.index].value());
      case MetricKind::kGauge:
        return gauges_[e.index].value();
      case MetricKind::kTimer:
        return timers_[e.index].seconds();
      case MetricKind::kHistogram:
        return static_cast<double>(histograms_[e.index].snapshot().sum) *
               1e-9;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::size_t index;  // into the deque of its kind
  };

  template <typename T>
  T& slot(std::string_view name, MetricKind kind, std::deque<T>& store) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = by_name_.try_emplace(std::string(name), 0);
    if (!inserted) {
      const Entry& e = entries_[it->second];
      if (e.kind != kind)
        throw std::logic_error("MetricsRegistry: '" + std::string(name) +
                               "' already registered with another kind");
      return store[e.index];
    }
    it->second = entries_.size();
    entries_.push_back({std::string(name), kind, store.size()});
    store.emplace_back();
    return store.back();
  }

  mutable std::mutex mu_;
  std::deque<Counter> counters_;  // deque: stable references across growth
  std::deque<Gauge> gauges_;
  std::deque<Timer> timers_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;  // registration order
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace gpo::obs
