// Phase tracing: RAII spans recording a timing tree.
//
// A Tracer accumulates span records (name, parent, start, duration) against
// a fixed steady_clock epoch; Span opens a node on construction and closes
// it on destruction. The records double as
//   * the "phases" tree of the machine-readable run report
//     (obs::phase_tree), and
//   * a chrome://tracing-compatible event stream (obs::write_chrome_trace),
// both produced by obs/report.
//
// Spans are designed for the coarse phase structure of a verification run
// (parse -> structural analysis -> per-engine search -> report); per-state
// costs inside the engines are aggregated with obs::Timer metrics instead.
// The tracer is mutex-guarded so a background heartbeat can read
// current_path() while the main thread runs, but span open/close is expected
// to be strictly nested per thread (RAII enforces that per scope).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpo::obs {

namespace detail {
/// Async-signal-safe phase mirror (obs/postmortem.cpp): every traced span
/// push/pops its name into a fixed lock-free stack so the fatal-signal
/// handler can print "what was running" without taking the tracer mutex.
void pm_phase_push(std::string_view name);
void pm_phase_pop();
}  // namespace detail

/// Receives span open/close notifications (the structured event log
/// implements this to emit span-open/span-close JSONL records). Callbacks
/// fire OUTSIDE the tracer mutex, on the thread that opened/closed the span;
/// implementations do their own synchronization.
class SpanEventSink {
 public:
  virtual ~SpanEventSink() = default;
  /// `trace_us` is the span's tracer-relative start time (the same clock as
  /// --trace output, so events join); `dur_us` is -1 on open.
  virtual void span_event(bool open, const std::string& name,
                          std::int64_t trace_us, std::int64_t dur_us) = 0;
};

class Tracer {
 public:
  struct Record {
    std::string name;
    /// 1-based index of the parent record; 0 = top-level.
    std::uint32_t parent = 0;
    std::uint32_t depth = 0;
    std::int64_t start_us = 0;
    /// -1 while the span is still open.
    std::int64_t dur_us = -1;
  };

  Tracer() : epoch_(Clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Snapshot of all records so far, in span-open order (so a parent always
  /// precedes its children). Open spans have dur_us == -1.
  [[nodiscard]] std::vector<Record> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  /// Attach (or detach with nullptr) a span open/close listener. Set it
  /// before spans start; the pointer is read with relaxed atomics on every
  /// span boundary and must outlive the tracer's spans.
  void set_event_sink(SpanEventSink* sink) {
    sink_.store(sink, std::memory_order_relaxed);
  }

  /// The open span stack as "outer/inner/..." — what the run is doing right
  /// now. Used by the heartbeat line and timeout diagnostics.
  [[nodiscard]] std::string current_path() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (std::size_t idx : open_) {
      if (!out.empty()) out += '/';
      out += records_[idx].name;
    }
    return out;
  }

 private:
  friend class Span;
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 epoch_)
        .count();
  }

  std::size_t begin(std::string name) {
    // The sink/postmortem notifications run outside the lock (they take
    // their own), so copy what they need while still holding it — records_
    // may reallocate under a concurrent begin().
    std::string copy = name;
    std::int64_t start = 0;
    std::size_t idx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Record r;
      r.name = std::move(name);
      r.parent = open_.empty()
                     ? 0
                     : static_cast<std::uint32_t>(open_.back() + 1);
      r.depth = static_cast<std::uint32_t>(open_.size());
      r.start_us = now_us();
      start = r.start_us;
      records_.push_back(std::move(r));
      open_.push_back(records_.size() - 1);
      idx = records_.size() - 1;
    }
    detail::pm_phase_push(copy);
    if (SpanEventSink* sink = sink_.load(std::memory_order_relaxed))
      sink->span_event(true, copy, start, -1);
    return idx;
  }

  void end(std::size_t idx) {
    std::string name;
    std::int64_t start = 0, dur = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      records_[idx].dur_us = now_us() - records_[idx].start_us;
      name = records_[idx].name;
      start = records_[idx].start_us;
      dur = records_[idx].dur_us;
      for (auto it = open_.rbegin(); it != open_.rend(); ++it)
        if (*it == idx) {
          open_.erase(std::next(it).base());
          break;
        }
    }
    detail::pm_phase_pop();
    if (SpanEventSink* sink = sink_.load(std::memory_order_relaxed))
      sink->span_event(false, name, start, dur);
  }

  mutable std::mutex mu_;
  std::vector<Record> records_;
  std::vector<std::size_t> open_;  // indices into records_, outer..inner
  Clock::time_point epoch_;
  std::atomic<SpanEventSink*> sink_{nullptr};
};

/// RAII phase scope. A null tracer makes the span a no-op, so engines can
/// open spans unconditionally against an optional tracer pointer.
class Span {
 public:
  Span(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) idx_ = tracer_->begin(std::move(name));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (tracer_ != nullptr) tracer_->end(idx_);
  }

 private:
  Tracer* tracer_;
  std::size_t idx_ = 0;
};

}  // namespace gpo::obs
