// Phase tracing: RAII spans recording a timing tree.
//
// A Tracer accumulates span records (name, parent, start, duration) against
// a fixed steady_clock epoch; Span opens a node on construction and closes
// it on destruction. The records double as
//   * the "phases" tree of the machine-readable run report
//     (obs::phase_tree), and
//   * a chrome://tracing-compatible event stream (obs::write_chrome_trace),
// both produced by obs/report.
//
// Spans are designed for the coarse phase structure of a verification run
// (parse -> structural analysis -> per-engine search -> report); per-state
// costs inside the engines are aggregated with obs::Timer metrics instead.
// The tracer is mutex-guarded so a background heartbeat can read
// current_path() while the main thread runs, but span open/close is expected
// to be strictly nested per thread (RAII enforces that per scope).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gpo::obs {

class Tracer {
 public:
  struct Record {
    std::string name;
    /// 1-based index of the parent record; 0 = top-level.
    std::uint32_t parent = 0;
    std::uint32_t depth = 0;
    std::int64_t start_us = 0;
    /// -1 while the span is still open.
    std::int64_t dur_us = -1;
  };

  Tracer() : epoch_(Clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Snapshot of all records so far, in span-open order (so a parent always
  /// precedes its children). Open spans have dur_us == -1.
  [[nodiscard]] std::vector<Record> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  /// The open span stack as "outer/inner/..." — what the run is doing right
  /// now. Used by the heartbeat line and timeout diagnostics.
  [[nodiscard]] std::string current_path() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (std::size_t idx : open_) {
      if (!out.empty()) out += '/';
      out += records_[idx].name;
    }
    return out;
  }

 private:
  friend class Span;
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 epoch_)
        .count();
  }

  std::size_t begin(std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    Record r;
    r.name = std::move(name);
    r.parent = open_.empty()
                   ? 0
                   : static_cast<std::uint32_t>(open_.back() + 1);
    r.depth = static_cast<std::uint32_t>(open_.size());
    r.start_us = now_us();
    records_.push_back(std::move(r));
    open_.push_back(records_.size() - 1);
    return records_.size() - 1;
  }

  void end(std::size_t idx) {
    std::lock_guard<std::mutex> lock(mu_);
    records_[idx].dur_us = now_us() - records_[idx].start_us;
    for (auto it = open_.rbegin(); it != open_.rend(); ++it)
      if (*it == idx) {
        open_.erase(std::next(it).base());
        break;
      }
  }

  mutable std::mutex mu_;
  std::vector<Record> records_;
  std::vector<std::size_t> open_;  // indices into records_, outer..inner
  Clock::time_point epoch_;
};

/// RAII phase scope. A null tracer makes the span a no-op, so engines can
/// open spans unconditionally against an optional tracer pointer.
class Span {
 public:
  Span(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) idx_ = tracer_->begin(std::move(name));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (tracer_ != nullptr) tracer_->end(idx_);
  }

 private:
  Tracer* tracer_;
  std::size_t idx_ = 0;
};

}  // namespace gpo::obs
