// Background progress heartbeat (`julie --progress [SECS]`).
//
// A detached-looking (but joinable) thread wakes every `interval` seconds,
// reads the live-progress metric slots and prints one line to stderr:
//
//   [progress 12.0s] states=1034212 (86k/s) frontier=4821 rss=182.4MB
//                    families=5121 phase=engine/gpo/reduced-search
//
// stdout is untouched, so `--quiet` pipelines stay one-line-per-engine.
// The heartbeat reads only lock-free slots (Counter/Gauge loads) plus
// Tracer::current_path() (a short mutex hold), so it cannot perturb engine
// timing beyond noise. stop() always prints a final line, which makes the
// CLI smoke test deterministic even when the run finishes inside the first
// interval.
//
// Well-known slot names (registered by Heartbeat itself so engines can rely
// on them existing):
//   progress.states    Counter  states interned / events added so far
//   progress.frontier  Gauge    current frontier / in-flight size
//   interner.families  Gauge    hash-consed set-family occupancy
#pragma once

#include <ostream>
#include <string>
#include <thread>

#include <condition_variable>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/stopwatch.hpp"

namespace gpo::obs {

class Heartbeat {
 public:
  /// `tracer` may be null (no phase= field). Does not start the thread.
  Heartbeat(MetricsRegistry& reg, const Tracer* tracer, double interval_s,
            std::ostream& out);
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void start();
  /// Joins the thread and prints the final progress line (idempotent).
  void stop();

  /// Formats and prints one progress line now (also used by the ticker
  /// thread). Exposed for unit tests.
  void emit_line();

 private:
  void run();

  MetricsRegistry& reg_;
  const Tracer* tracer_;
  double interval_s_;
  std::ostream& out_;

  Counter& states_;
  Gauge& frontier_;
  Gauge& families_;

  util::Stopwatch uptime_;
  util::Stopwatch rate_clock_;
  std::uint64_t last_states_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace gpo::obs
