// Structured JSONL event log: ring-buffered, background-flushed records of
// job lifecycle transitions and span open/close (`julie --events FILE`,
// `events=` manifest directive).
//
// Design:
//   * Producers (scheduler racers, the tracer's SpanEventSink hook) format
//     the complete one-line JSON record immediately, under a short mutex
//     that also stamps the monotonic `ts_us` timestamp — so timestamps are
//     non-decreasing in file order by construction.
//   * Records land in a bounded deque ring (default 8192 lines). A
//     background flusher thread drains it to the file every ~50 ms (or when
//     woken), so producers never block on disk I/O.
//   * Overflow policy: drop-newest. A dropped counter is kept and a final
//     {"event":"dropped","count":N} record is appended at close, so a
//     truncated log is detectable rather than silently misleading.
//   * close()/destruction stops the flusher, drains everything, and flushes
//     the stream. After close() further events are ignored.
//
// Every record is a single line of compact JSON with at least
//   {"ts_us": <int>, "event": "<name>"}
// Job lifecycle records add "job" (and event-specific fields: "model",
// "engine", "verdict", "seconds"); span records mirror the tracer:
//   {"ts_us":.., "event":"span-open"|"span-close", "name":..,
//    "trace_us":.., "dur_us":..}
// where `trace_us` is the span's start on the --trace clock, so the event
// stream joins chrome-trace output. `ts_us` is measured from the EventLog's
// own steady-clock epoch (construction time).
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace gpo::obs {

class EventLog : public SpanEventSink {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error when
  /// the file cannot be opened. `capacity` bounds the in-memory ring.
  explicit EventLog(const std::string& path, std::size_t capacity = 8192);
  /// Logs into a caller-owned stream (tests). The stream must outlive the
  /// log; writes happen on the flusher thread.
  explicit EventLog(std::ostream& out, std::size_t capacity = 8192);
  ~EventLog() override;

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one record. `fields` must be a JSON object; "ts_us" and
  /// "event" are prepended by the log. Cheap: one compact dump + a deque
  /// push under the mutex, no I/O.
  void log(std::string_view event, json::Value fields);

  /// Job lifecycle convenience: {"ts_us":.., "event":<event>, "job":<id>,
  /// ...extra}.
  void job_event(std::string_view event, long long job, json::Value extra);
  void job_event(std::string_view event, long long job) {
    job_event(event, job, json::Value::object());
  }

  /// SpanEventSink: called by the tracer outside its own mutex.
  void span_event(bool open, const std::string& name, std::int64_t trace_us,
                  std::int64_t dur_us) override;

  /// Records dropped so far due to ring overflow.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Stops the flusher, drains the ring (appending the final "dropped"
  /// record when anything was lost) and flushes the stream. Idempotent;
  /// the destructor calls it.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void flusher_main();

  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::string path_;
  std::unique_ptr<std::ostream> owned_out_;
  std::ostream* out_;  // owned_out_.get() or the caller's stream
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> ring_;
  std::uint64_t dropped_ = 0;
  bool stop_ = false;
  bool closed_ = false;
  std::thread flusher_;
};

}  // namespace gpo::obs
