// Log-bucketed atomic histogram (HDR-style): fixed storage, lock-free
// relaxed increments, mergeable snapshots with percentile estimation.
//
// Bucketing scheme (log-linear, the classic HdrHistogram layout):
//   * values 0..7 get one exact bucket each (the "linear" region);
//   * every power-of-two octave above that is split into kSubBuckets = 8
//     equal sub-buckets, so the relative quantization error is bounded by
//     1/kSubBuckets = 12.5% at every magnitude;
//   * 64-bit values therefore need (64 - kSubBits) * 8 + 8 = 496 buckets —
//     ~4 KB of atomics per histogram, allocated inline, never resized.
//
// Memory ordering: record() is a single relaxed fetch_add on one bucket
// (plus relaxed fetch_adds on the count/sum scalars and a relaxed CAS loop
// for the max). There are no locks and no release/acquire edges on the hot
// path — exactly like obs::Counter, totals are exact once writers quiesce
// (thread join), approximate while concurrent, which is all a latency
// distribution needs. snapshot() reads every bucket relaxed; it may observe
// a torn view of a concurrent record (count updated, bucket not yet), so
// snapshot totals are internally consistent only after quiescence — the
// percentile estimates are monotone regardless.
//
// Units: the histogram itself is unit-agnostic over uint64. By convention
// every *registry* histogram records NANOSECONDS (record_seconds() converts)
// and the snapshot/report layer divides by 1e9, so serialized percentiles
// are seconds. See MetricsRegistry::histogram().
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

namespace gpo::obs {

class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBits;
  static constexpr std::size_t kBucketCount =
      (64 - kSubBits) * kSubBuckets + kSubBuckets;  // 496

  /// Bucket holding `v`. Exact for v < 8; above that the bucket spans
  /// [lower, lower * (1 + 1/8)) at every magnitude.
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned top = 63 - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = top - kSubBits;
    return ((static_cast<std::size_t>(top - kSubBits) + 1) << kSubBits) |
           static_cast<std::size_t>((v >> shift) & (kSubBuckets - 1));
  }

  /// Smallest value mapping to bucket `idx` (inverse of bucket_index).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t idx) {
    if (idx < kSubBuckets) return idx;
    const std::uint64_t scale = idx >> kSubBits;  // >= 1
    const std::uint64_t sub = idx & (kSubBuckets - 1);
    return (kSubBuckets + sub) << (scale - 1);
  }

  /// One past the largest value in bucket `idx` (saturates at UINT64_MAX).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(std::size_t idx) {
    return idx + 1 < kBucketCount ? bucket_lower(idx + 1)
                                  : ~std::uint64_t{0};
  }

  /// Hot path: one relaxed fetch_add on the bucket plus the count/sum
  /// scalars and a relaxed CAS for the running max. No locks anywhere.
  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v && !max_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }

  /// Duration convenience: records nanoseconds (the registry convention).
  void record_seconds(double s) {
    record(s <= 0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

  /// A point-in-time copy of the distribution. Plain data: mergeable
  /// (operator+= adds bucket-wise) and cheap to pass around, so per-thread
  /// histograms can be aggregated at join time.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBucketCount> buckets{};

    /// Estimated value at percentile p (0..100): the midpoint of the bucket
    /// containing the rank-⌈p/100·count⌉ sample. Exact for values < 8,
    /// within 1/8 relative error above. Returns 0 on an empty snapshot.
    [[nodiscard]] double percentile(double p) const {
      if (count == 0) return 0.0;
      const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                            static_cast<double>(count);
      std::uint64_t seen = 0;
      for (std::size_t i = 0; i < kBucketCount; ++i) {
        seen += buckets[i];
        if (static_cast<double>(seen) >= target && buckets[i] > 0) {
          const std::uint64_t lo = bucket_lower(i);
          const std::uint64_t hi = bucket_upper(i);
          // (lo + hi - 1) / 2: exact value for width-1 buckets, midpoint
          // otherwise; never exceeds the recorded max.
          return std::min(static_cast<double>(max),
                          (static_cast<double>(lo) +
                           static_cast<double>(hi - 1)) / 2.0);
        }
      }
      return static_cast<double>(max);
    }

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
    }

    /// Bucket-wise merge; the result is exactly the snapshot that one
    /// histogram fed both record streams would produce.
    Snapshot& operator+=(const Snapshot& o) {
      count += o.count;
      sum += o.sum;
      max = std::max(max, o.max);
      for (std::size_t i = 0; i < kBucketCount; ++i)
        buckets[i] += o.buckets[i];
      return *this;
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBucketCount; ++i)
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII duration recording into a Histogram (nanoseconds); a null histogram
/// makes it a no-op, mirroring ScopedTimer. Per-event call sites in engine
/// hot loops resolve their Histogram* only under obs::kHotCountersEnabled,
/// so the whole record path compiles out with -DGPO_OBS_HOT_COUNTERS=OFF.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* h)
      : h_(h), start_(h ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{}) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() {
    if (h_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->record(static_cast<std::uint64_t>(ns));
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gpo::obs
