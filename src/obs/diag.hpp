// Process-wide serialized diagnostic sink.
//
// Several threads write human-readable lines to stderr while an analysis
// runs: the heartbeat ticker, the CLI's warning/stats printers, and (under
// --engine all with --progress) both at once. Raw `std::cerr <<` chains are
// not atomic per line, so their characters interleave. Every diagnostic
// line goes through DiagSink instead: the full line is formatted first,
// then written and flushed under one process-wide mutex, so lines come out
// whole in some order.
//
// stdout (the machine-readable one-line-per-engine output) is deliberately
// NOT routed here — it is written only by the main thread.
#pragma once

#include <ostream>
#include <string_view>

namespace gpo::obs {

class DiagSink {
 public:
  /// The process-wide sink (function-local static: safe across TUs).
  static DiagSink& instance();

  /// Writes `text` plus a newline to `out` and flushes, holding the global
  /// diagnostic mutex for the whole write — concurrent callers' lines come
  /// out unbroken.
  void line(std::ostream& out, std::string_view text);

  /// Same, to the default diagnostic stream (stderr unless redirected with
  /// set_default_stream — tests capture output that way).
  void line(std::string_view text);

  /// Redirects the default stream; nullptr restores stderr. Not thread-safe
  /// against in-flight line() calls — call it before spawning writers.
  void set_default_stream(std::ostream* out);

 private:
  DiagSink() = default;
};

/// Convenience: DiagSink::instance().line(text).
inline void diag_line(std::string_view text) {
  DiagSink::instance().line(text);
}

}  // namespace gpo::obs
