#include "obs/event_log.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace gpo::obs {

EventLog::EventLog(const std::string& path, std::size_t capacity)
    : path_(path),
      owned_out_(std::make_unique<std::ofstream>(path)),
      out_(owned_out_.get()),
      epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity) {
  if (!static_cast<std::ofstream&>(*owned_out_))
    throw std::runtime_error("cannot open event log '" + path + "'");
  flusher_ = std::thread([this] { flusher_main(); });
}

EventLog::EventLog(std::ostream& out, std::size_t capacity)
    : out_(&out),
      epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity) {
  flusher_ = std::thread([this] { flusher_main(); });
}

EventLog::~EventLog() { close(); }

void EventLog::log(std::string_view event, json::Value fields) {
  // Build the record with ts_us/event leading, then append the caller's
  // fields in order. The timestamp is taken under the mutex so lines are
  // pushed in non-decreasing ts_us order.
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  json::Value rec = json::Value::object();
  rec["ts_us"] = now_us();
  rec["event"] = std::string(event);
  if (fields.is_object())
    for (const json::Value::Member& m : fields.members())
      rec[m.first] = m.second;
  if (ring_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  ring_.push_back(rec.dump_string(0));
  cv_.notify_one();
}

void EventLog::job_event(std::string_view event, long long job,
                         json::Value extra) {
  json::Value fields = json::Value::object();
  fields["job"] = job;
  if (extra.is_object())
    for (const json::Value::Member& m : extra.members())
      fields[m.first] = m.second;
  log(event, std::move(fields));
}

void EventLog::span_event(bool open, const std::string& name,
                          std::int64_t trace_us, std::int64_t dur_us) {
  json::Value fields = json::Value::object();
  fields["name"] = name;
  fields["trace_us"] = trace_us;
  if (!open) fields["dur_us"] = dur_us;
  log(open ? "span-open" : "span-close", std::move(fields));
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EventLog::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    if (dropped_ > 0) {
      json::Value rec = json::Value::object();
      rec["ts_us"] = now_us();
      rec["event"] = "dropped";
      rec["count"] = static_cast<long long>(dropped_);
      ring_.push_back(rec.dump_string(0));
    }
    stop_ = true;
    cv_.notify_one();
  }
  if (flusher_.joinable()) flusher_.join();
  // Flusher has exited; drain whatever raced in before closed_ was set.
  std::deque<std::string> rest;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rest.swap(ring_);
  }
  for (const std::string& line : rest) *out_ << line << '\n';
  out_->flush();
}

void EventLog::flusher_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::milliseconds(50),
                 [this] { return stop_ || !ring_.empty(); });
    std::deque<std::string> batch;
    batch.swap(ring_);
    const bool done = stop_;
    lock.unlock();
    for (const std::string& line : batch) *out_ << line << '\n';
    if (!batch.empty()) out_->flush();
    if (done) return;
    lock.lock();
  }
}

}  // namespace gpo::obs
