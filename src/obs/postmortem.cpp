#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>

#include "obs/diag.hpp"

namespace gpo::obs {

namespace {

// ---- phase mirror (written by span boundaries, read by the handler) ------

constexpr int kMaxPhaseDepth = 16;
constexpr int kPhaseNameLen = 48;
char g_phase[kMaxPhaseDepth][kPhaseNameLen];
// acq_rel RMWs: a pusher's row write happens-before the next claimer of the
// same slot through the RMW chain, so row reuse across threads is ordered.
std::atomic<int> g_phase_depth{0};

// ---- watched slots --------------------------------------------------------

constexpr int kMaxWatch = 16;
struct WatchSlot {
  const char* label = nullptr;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
};
WatchSlot g_watch[kMaxWatch];
std::atomic<int> g_watch_count{0};

std::atomic<const Tracer*> g_tracer{nullptr};
std::atomic<const MetricsRegistry*> g_registry{nullptr};
std::atomic<bool> g_installed{false};
long g_page_size = 4096;  // cached at install(); sysconf is not sig-safe

// ---- async-signal-safe line builder --------------------------------------

/// Accumulates one "[postmortem] ..." line in a stack buffer and emits it
/// with a single write(2) — atomic w.r.t. other stderr writers for short
/// lines, and the only output primitive the signal path may use.
class RawLine {
 public:
  RawLine() { append("[postmortem] "); }
  void append(const char* s) {
    while (*s != '\0' && n_ < sizeof(buf_) - 1) buf_[n_++] = *s++;
  }
  void append_u64(unsigned long long v) {
    char tmp[20];
    int i = 0;
    if (v == 0) tmp[i++] = '0';
    while (v > 0 && i < 20) {
      tmp[i++] = static_cast<char>('0' + v % 10);
      v /= 10;
    }
    while (i > 0 && n_ < sizeof(buf_) - 1) buf_[n_++] = tmp[--i];
  }
  void emit() {
    buf_[n_++] = '\n';
    // The return value is irrelevant on the way down.
    [[maybe_unused]] ssize_t rc = ::write(2, buf_, n_);
  }

 private:
  char buf_[256];
  std::size_t n_ = 0;
};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    default: return "signal";
  }
}

/// Everything here is async-signal-safe: stack buffers, relaxed atomic
/// loads, open/read/close, write. No allocation, no locks, no iostreams.
void raw_dump(const char* reason) {
  {
    RawLine l;
    l.append("fatal: ");
    l.append(reason);
    l.emit();
  }
  int depth = g_phase_depth.load(std::memory_order_acquire);
  if (depth > kMaxPhaseDepth) depth = kMaxPhaseDepth;
  for (int i = 0; i < depth; ++i) {
    RawLine l;
    l.append("  phase[");
    l.append_u64(static_cast<unsigned long long>(i));
    l.append("]: ");
    l.append(g_phase[i]);
    l.emit();
  }
  int watches = g_watch_count.load(std::memory_order_acquire);
  if (watches > kMaxWatch) watches = kMaxWatch;
  for (int i = 0; i < watches; ++i) {
    const WatchSlot& w = g_watch[i];
    RawLine l;
    l.append("  ");
    l.append(w.label);
    l.append(" = ");
    if (w.counter != nullptr) {
      l.append_u64(w.counter->value());
    } else if (w.gauge != nullptr) {
      double v = w.gauge->value();
      l.append_u64(v <= 0 ? 0 : static_cast<unsigned long long>(v));
    }
    l.emit();
  }
  // /proc/self/statm: "size resident ..." in pages.
  int fd = ::open("/proc/self/statm", O_RDONLY);
  if (fd >= 0) {
    char buf[64];
    ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
    ::close(fd);
    if (n > 0) {
      buf[n] = '\0';
      unsigned long long pages = 0;
      const char* p = buf;
      while (*p >= '0' && *p <= '9') ++p;  // skip "size"
      while (*p == ' ') ++p;
      while (*p >= '0' && *p <= '9')
        pages = pages * 10 + static_cast<unsigned long long>(*p++ - '0');
      RawLine l;
      l.append("  rss_bytes = ");
      l.append_u64(pages * static_cast<unsigned long long>(g_page_size));
      l.emit();
    }
  }
}

void fatal_signal_handler(int sig) {
  raw_dump(signal_name(sig));
  // SA_RESETHAND already restored the default disposition; re-raising from
  // inside the handler leaves the signal pending (it is blocked here) and
  // it is delivered with the default action on return — same exit code /
  // core dump as without the handler.
  ::raise(sig);
}

[[noreturn]] void terminate_handler() {
  raw_dump("std::terminate (uncaught exception?)");
  // Keep SIGABRT from re-dumping through the signal handler.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SIG_DFL;
  ::sigaction(SIGABRT, &sa, nullptr);
  std::abort();
}

}  // namespace

namespace detail {

void pm_phase_push(std::string_view name) {
  int d = g_phase_depth.fetch_add(1, std::memory_order_acq_rel);
  if (d < 0 || d >= kMaxPhaseDepth) return;
  std::size_t n = name.size();
  if (n > kPhaseNameLen - 1) n = kPhaseNameLen - 1;
  std::memcpy(g_phase[d], name.data(), n);
  g_phase[d][n] = '\0';
}

void pm_phase_pop() {
  g_phase_depth.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace detail

void Postmortem::install() {
  if (g_installed.exchange(true)) return;
  g_page_size = ::sysconf(_SC_PAGESIZE);
  if (g_page_size <= 0) g_page_size = 4096;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    ::sigaction(sig, &sa, nullptr);
  std::set_terminate(terminate_handler);
}

void Postmortem::watch(const char* label, const Counter& c) {
  int i = g_watch_count.load(std::memory_order_relaxed);
  if (i >= kMaxWatch) return;
  g_watch[i].label = label;
  g_watch[i].counter = &c;
  g_watch[i].gauge = nullptr;
  g_watch_count.store(i + 1, std::memory_order_release);
}

void Postmortem::watch(const char* label, const Gauge& g) {
  int i = g_watch_count.load(std::memory_order_relaxed);
  if (i >= kMaxWatch) return;
  g_watch[i].label = label;
  g_watch[i].counter = nullptr;
  g_watch[i].gauge = &g;
  g_watch_count.store(i + 1, std::memory_order_release);
}

void Postmortem::set_context(const Tracer* tracer,
                             const MetricsRegistry* reg) {
  g_tracer.store(tracer, std::memory_order_release);
  g_registry.store(reg, std::memory_order_release);
}

void Postmortem::dump(const std::string& reason) {
  DiagSink& sink = DiagSink::instance();
  sink.line("[postmortem] " + reason);
  if (const Tracer* t = g_tracer.load(std::memory_order_acquire)) {
    std::string path = t->current_path();
    if (!path.empty()) sink.line("[postmortem]   phase: " + path);
  }
  if (const MetricsRegistry* r =
          g_registry.load(std::memory_order_acquire)) {
    for (const MetricsRegistry::Snapshot& s : r->snapshot()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " = %g", s.value);
      sink.line("[postmortem]   " + s.name + buf);
    }
  }
}

}  // namespace gpo::obs
