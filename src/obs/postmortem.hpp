// Postmortem diagnostics: dump "what was running" before the process dies.
//
// Two distinct paths, chosen by context (this distinction is the point —
// see the signal-safety note below):
//
//   * Normal context (--max-seconds aborts, explicit dump() calls): goes
//     through obs::DiagSink like every other diagnostic line, so postmortem
//     output cannot interleave with concurrent heartbeat lines. Prints the
//     tracer's current span path, the watched slots and a registry
//     snapshot.
//
//   * Fatal-signal/std::terminate context (SIGSEGV/SIGBUS/SIGILL/SIGFPE/
//     SIGABRT, uncaught exceptions): DiagSink is OFF LIMITS — its mutex is
//     not async-signal-safe, and if the signal lands while the heartbeat
//     thread holds that mutex, taking it again in the handler deadlocks a
//     dying process. Instead the handler uses a pre-formatted raw path:
//     only stack buffers, hand-rolled integer formatting, and ONE write(2)
//     call per output line. A single write() of a short line (< PIPE_BUF)
//     is atomic with respect to other writers on the same fd, so even if a
//     heartbeat line is mid-flight the postmortem lines come out whole —
//     the "[postmortem]" prefix marks them. After dumping, the handler
//     restores the default disposition and re-raises, so exit codes and
//     core dumps behave as without the handler.
//
// What the signal path can print is whatever is readable without locks:
//   * the active span stack, mirrored into a fixed lock-free buffer by
//     detail::pm_phase_push/pop on every traced span boundary (span.hpp);
//   * "watched" metric slots registered up front via watch() — relaxed
//     atomic loads on lock-free std::atomic slots are async-signal-safe;
//   * current/peak RSS read directly from /proc/self/statm with
//     open/read/close.
//
// The phase mirror is a single global stack: with concurrent racers the
// interleaving across threads is best-effort (entries may belong to
// different threads) — acceptable for a crash diagnostic, documented here
// rather than papered over with locks the handler could not take.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gpo::obs {

class Postmortem {
 public:
  /// Installs the fatal-signal handlers (SIGSEGV, SIGBUS, SIGILL, SIGFPE,
  /// SIGABRT) and the std::terminate handler. Idempotent; call once from
  /// main() before work starts.
  static void install();

  /// Registers a metric slot to be printed by the signal-path dump.
  /// `label` must be a string literal (stored by pointer); the slot must
  /// outlive the process's dying breath (registry-backed slots do — the
  /// registry deques never move). Capacity is fixed (16); further calls
  /// are ignored.
  static void watch(const char* label, const Counter& c);
  static void watch(const char* label, const Gauge& g);

  /// Context for normal-path dumps; either may be null. Not used by the
  /// signal path (which cannot take the tracer/registry locks).
  static void set_context(const Tracer* tracer, const MetricsRegistry* reg);

  /// Normal-context dump through DiagSink: reason, current span path,
  /// watched slots, registry snapshot. Safe to call from any thread that
  /// is allowed to block on the diagnostic mutex.
  static void dump(const std::string& reason);
};

}  // namespace gpo::obs
