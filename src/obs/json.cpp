#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gpo::obs::json {

// ---------------------------------------------------------------------------
// mutation
// ---------------------------------------------------------------------------

Value& Value::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject)
    throw std::runtime_error("json: operator[] on non-object");
  for (Member& m : obj_)
    if (m.first == key) return m.second;
  obj_.emplace_back(std::string(key), Value());
  return obj_.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : obj_)
    if (m.first == key) return &m.second;
  return nullptr;
}

void Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray)
    throw std::runtime_error("json: push_back on non-array");
  arr_.push_back(std::move(v));
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

namespace {

void dump_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Shortest decimal representation that parses back to exactly `d`, so
// dump/parse round-trips preserve the value bit-for-bit.
void dump_double(std::ostream& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; clamp to null-ish zero
    out << (d > 0 ? "1e308" : (d < 0 ? "-1e308" : "0"));
    return;
  }
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  // Ensure it still reads as a number with a fractional/exponent part so
  // parse() keeps the double/int distinction.
  std::string s(buf);
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  out << s;
}

void put_newline_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

void Value::dump_impl(std::ostream& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out << "null";
      break;
    case Type::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Type::kInt:
      out << int_;
      break;
    case Type::kDouble:
      dump_double(out, dbl_);
      break;
    case Type::kString:
      dump_escaped(out, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out << ',';
        put_newline_indent(out, indent, depth + 1);
        arr_[i].dump_impl(out, indent, depth + 1);
      }
      put_newline_indent(out, indent, depth);
      out << ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out << ',';
        put_newline_indent(out, indent, depth + 1);
        dump_escaped(out, obj_[i].first);
        out << (indent > 0 ? ": " : ":");
        obj_[i].second.dump_impl(out, indent, depth + 1);
      }
      put_newline_indent(out, indent, depth);
      out << '}';
      break;
    }
  }
}

void Value::dump(std::ostream& out, int indent) const {
  dump_impl(out, indent, 0);
}

std::string Value::dump_string(int indent) const {
  std::ostringstream ss;
  dump(ss, indent);
  return ss.str();
}

// ---------------------------------------------------------------------------
// parser (recursive descent)
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj[key] = parse_value();
      char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (telemetry strings are ASCII in
          // practice; surrogate pairs are out of scope).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    std::string num(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(num.c_str(), &end, 10);
      if (errno == 0 && end == num.c_str() + num.size()) return Value(v);
      is_double = true;  // out of long long range: fall through to double
    }
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("malformed number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Value::operator==(const Value& o) const {
  if (is_number() && o.is_number()) {
    if (type_ == o.type_)
      return type_ == Type::kInt ? int_ == o.int_ : dbl_ == o.dbl_;
    return as_number() == o.as_number() &&
           as_number() == std::floor(as_number());
  }
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == o.bool_;
    case Type::kInt:
    case Type::kDouble:
      return true;  // handled above
    case Type::kString:
      return str_ == o.str_;
    case Type::kArray:
      return arr_ == o.arr_;
    case Type::kObject: {
      if (obj_.size() != o.obj_.size()) return false;
      for (const Member& m : obj_) {
        const Value* other = o.find(m.first);
        if (other == nullptr || !(m.second == *other)) return false;
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// schema-subset validator
// ---------------------------------------------------------------------------

namespace {

const char* type_name(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      return "null";
    case Value::Type::kBool:
      return "boolean";
    case Value::Type::kInt:
      return "integer";
    case Value::Type::kDouble:
      return "number";
    case Value::Type::kString:
      return "string";
    case Value::Type::kArray:
      return "array";
    case Value::Type::kObject:
      return "object";
  }
  return "?";
}

bool type_matches(const std::string& want, const Value& v) {
  if (want == "number") return v.is_number();
  if (want == "integer")
    return v.is_int() ||
           (v.is_number() && v.as_number() == std::floor(v.as_number()));
  if (want == "string") return v.is_string();
  if (want == "boolean") return v.is_bool();
  if (want == "object") return v.is_object();
  if (want == "array") return v.is_array();
  if (want == "null") return v.is_null();
  return false;
}

bool validate_at(const Value& schema, const Value& doc, const Value& root,
                 const std::string& path, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr)
      *error = (path.empty() ? std::string("$") : path) + ": " + why;
    return false;
  };

  // $ref into #/definitions/<name> of the root schema.
  if (const Value* ref = schema.find("$ref")) {
    const std::string& target = ref->as_string();
    const std::string kPrefix = "#/definitions/";
    if (target.rfind(kPrefix, 0) != 0) return fail("unsupported $ref");
    const Value* defs = root.find("definitions");
    const Value* sub =
        defs != nullptr ? defs->find(target.substr(kPrefix.size())) : nullptr;
    if (sub == nullptr) return fail("unresolved $ref " + target);
    return validate_at(*sub, doc, root, path, error);
  }

  if (const Value* type = schema.find("type")) {
    if (!type_matches(type->as_string(), doc))
      return fail("expected type " + type->as_string() + ", got " +
                  type_name(doc));
  }

  if (const Value* en = schema.find("enum")) {
    bool hit = false;
    for (const Value& option : en->items())
      if (option == doc) {
        hit = true;
        break;
      }
    if (!hit) return fail("value not in enum");
  }

  if (const Value* minimum = schema.find("minimum")) {
    if (doc.is_number() && doc.as_number() < minimum->as_number())
      return fail("below minimum");
  }

  if (doc.is_object()) {
    if (const Value* req = schema.find("required")) {
      for (const Value& key : req->items())
        if (doc.find(key.as_string()) == nullptr)
          return fail("missing required member '" + key.as_string() + "'");
    }
    const Value* props = schema.find("properties");
    if (props != nullptr) {
      for (const Value::Member& m : doc.members()) {
        const Value* sub = props->find(m.first);
        if (sub != nullptr) {
          if (!validate_at(*sub, m.second, root, path + "." + m.first, error))
            return false;
        } else if (const Value* extra = schema.find("additionalProperties");
                   extra != nullptr && extra->is_bool() && !extra->as_bool()) {
          return fail("unexpected member '" + m.first + "'");
        }
      }
    }
  }

  if (doc.is_array()) {
    if (const Value* items = schema.find("items")) {
      for (std::size_t i = 0; i < doc.items().size(); ++i)
        if (!validate_at(*items, doc.items()[i], root,
                         path + "[" + std::to_string(i) + "]", error))
          return false;
    }
  }

  return true;
}

}  // namespace

bool validate(const Value& schema, const Value& doc, const Value& root_schema,
              std::string* error) {
  return validate_at(schema, doc, root_schema, "", error);
}

}  // namespace gpo::obs::json
