#include "por/stubborn.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/stopwatch.hpp"

namespace gpo::por {

using petri::Marking;
using petri::PlaceId;
using petri::TransitionId;

std::vector<TransitionId> stubborn_enabled_set(
    const petri::PetriNet& net, const petri::ConflictInfo& conflicts,
    const Marking& m, const std::vector<TransitionId>& seeds) {
  const std::size_t nt = net.transition_count();
  util::Bitset in_set(nt);
  std::vector<TransitionId> work;

  auto add = [&](TransitionId t) {
    if (!in_set.test(t)) {
      in_set.set(t);
      work.push_back(t);
    }
  };
  for (TransitionId t : seeds) add(t);

  while (!work.empty()) {
    TransitionId t = work.back();
    work.pop_back();
    if (net.enabled(t, m)) {
      // (D2) everything that could steal a token from •t must be inside.
      const util::Bitset& nb = conflicts.neighbors(t);
      for (std::size_t u = nb.find_first(); u < nt; u = nb.find_next(u + 1))
        add(static_cast<TransitionId>(u));
    } else {
      // (D1) pick the unmarked input place with the fewest producers as the
      // scapegoat; all its producers join the set.
      const auto& tr = net.transition(t);
      PlaceId scapegoat = petri::kInvalidPlace;
      std::size_t best = SIZE_MAX;
      for (PlaceId p : tr.pre) {
        if (m.test(p)) continue;
        if (net.place(p).pre.size() < best) {
          best = net.place(p).pre.size();
          scapegoat = p;
        }
      }
      // `t` is disabled, so an unmarked input place exists.
      for (TransitionId producer : net.place(scapegoat).pre) add(producer);
    }
  }

  std::vector<TransitionId> enabled;
  for (std::size_t t = in_set.find_first(); t < nt;
       t = in_set.find_next(t + 1))
    if (net.enabled(static_cast<TransitionId>(t), m))
      enabled.push_back(static_cast<TransitionId>(t));
  return enabled;
}

StubbornExplorer::StubbornExplorer(const petri::PetriNet& net,
                                   StubbornOptions options)
    : net_(net), conflicts_(net), options_(options) {}

std::vector<TransitionId> StubbornExplorer::ample_set(const Marking& m) const {
  std::vector<TransitionId> enabled = net_.enabled_transitions(m);
  if (enabled.empty()) return enabled;

  switch (options_.strategy) {
    case SeedStrategy::kFirstEnabled:
      return stubborn_enabled_set(net_, conflicts_, m, {enabled.front()});
    case SeedStrategy::kWholeConflictSet: {
      std::size_t comp = conflicts_.component_of(enabled.front());
      return stubborn_enabled_set(net_, conflicts_, m,
                                  conflicts_.components()[comp]);
    }
    case SeedStrategy::kBestOverSeeds: {
      std::vector<TransitionId> best;
      for (TransitionId seed : enabled) {
        auto candidate = stubborn_enabled_set(net_, conflicts_, m, {seed});
        if (best.empty() || candidate.size() < best.size())
          best = std::move(candidate);
        if (best.size() == 1) break;  // cannot do better
      }
      return best;
    }
  }
  return enabled;  // unreachable
}

reach::ExplorerResult StubbornExplorer::explore() const {
  return explore_from({net_.initial_marking()});
}

reach::ExplorerResult StubbornExplorer::explore_from(
    const std::vector<Marking>& roots) const {
  reach::ExplorerResult result;
  result.fireable_transitions = util::Bitset(net_.transition_count());
  util::Stopwatch timer;

  obs::Counter* live_states = nullptr;
  obs::Gauge* live_frontier = nullptr;
  if (obs::kHotCountersEnabled && options_.metrics != nullptr) {
    live_states = &options_.metrics->counter("progress.states");
    live_frontier = &options_.metrics->gauge("progress.frontier");
  }

  std::unordered_map<Marking, std::size_t> index;
  std::vector<Marking> states;
  struct Breadcrumb {
    std::size_t parent;
    TransitionId via;
  };
  std::vector<Breadcrumb> breadcrumbs;

  auto intern = [&](const Marking& m, std::size_t parent,
                    TransitionId via) -> std::pair<std::size_t, bool> {
    auto [it, inserted] = index.try_emplace(m, states.size());
    if (inserted) {
      states.push_back(m);
      breadcrumbs.push_back({parent, via});
      if (live_states != nullptr) live_states->add();
    }
    return {it->second, inserted};
  };

  auto reconstruct = [&](std::size_t s) {
    std::vector<TransitionId> seq;
    while (breadcrumbs[s].via != petri::kInvalidTransition) {
      seq.push_back(breadcrumbs[s].via);
      s = breadcrumbs[s].parent;
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  };

  std::deque<std::size_t> frontier;
  auto inspect = [&](std::size_t s) -> bool {
    if (net_.is_deadlocked(states[s]) &&
        (!options_.deadlock_filter || options_.deadlock_filter(states[s]))) {
      ++result.deadlock_count;
      if (!result.deadlock_found) {
        result.deadlock_found = true;
        result.first_deadlock = states[s];
        result.counterexample = reconstruct(s);
      }
      if (options_.stop_at_first_deadlock) return true;
    }
    return false;
  };

  bool stopped = false;
  for (const Marking& root : roots) {
    auto [idx, fresh] = intern(root, 0, petri::kInvalidTransition);
    if (fresh) {
      frontier.push_back(idx);
      stopped = inspect(idx);
      if (stopped) break;
    }
  }

  std::size_t peak_frontier = frontier.size();
  std::vector<TransitionId> enabled;  // per-state scratch, capacity reused
  enabled.reserve(net_.transition_count());
  while (!frontier.empty() && !stopped) {
    peak_frontier = std::max(peak_frontier, frontier.size());
    if (live_frontier != nullptr)
      live_frontier->set(static_cast<double>(frontier.size()));
    if (states.size() > options_.max_states ||
        timer.elapsed_seconds() > options_.max_seconds ||
        util::cancel_requested(options_.cancel)) {
      result.limit_hit = true;
      result.interrupted_phase = "reduced-search";
      break;
    }
    std::size_t s = frontier.front();
    frontier.pop_front();
    const Marking m = states[s];

    net_.enabled_transitions(m, enabled);
    for (TransitionId t : enabled) result.fireable_transitions.set(t);
    for (TransitionId t : ample_set(m)) {
      bool unsafe = false;
      Marking next = net_.fire(t, m, &unsafe);
      if (unsafe && !result.safeness_violation) {
        result.safeness_violation = true;
        result.unsafe_source = m;
      }
      ++result.edge_count;
      auto [idx, fresh] = intern(next, s, t);
      if (options_.build_graph)
        result.graph.edges.push_back({s, idx, net_.transition(t).name});
      if (fresh) {
        frontier.push_back(idx);
        if (inspect(idx)) {
          stopped = true;
          break;
        }
      }
    }
  }

  result.state_count = states.size();
  result.seconds = timer.elapsed_seconds();
  result.stats.threads = 1;
  result.stats.peak_frontier = peak_frontier;
  if (result.seconds > 0)
    result.stats.states_per_second = result.state_count / result.seconds;
  if (options_.metrics != nullptr) {
    std::size_t per_marking =
        sizeof(Marking) +
        (states.empty() ? 0 : states.front().memory_bytes());
    reach::publish_explorer_stats(*options_.metrics, options_.metrics_prefix,
                                  result, states.size() * per_marking);
  }
  if (options_.build_graph) {
    result.graph.initial = 0;
    for (const Marking& m : states)
      result.graph.node_labels.push_back(reach::marking_to_string(net_, m));
  }
  return result;
}

}  // namespace gpo::por
