// Classical partial-order reduction (Section 2.3 of the paper) via stubborn
// sets [Valmari 1990] / persistent sets [Godefroid-Wolper 1991]. This engine
// stands in for the paper's SPIN+PO baseline: it collapses interleavings of
// independent transitions but — by construction — still enumerates every
// combination of concurrently marked conflict places, which is exactly the
// weakness generalized partial-order analysis removes.
//
// A transition set S is stubborn at marking m when
//   (D1) every *disabled* t in S has an unmarked input place p with all of
//        p's producer transitions in S (a "scapegoat" place),
//   (D2) every *enabled* t in S has all transitions conflicting with it
//        (sharing an input place) in S, and
//   (KEY) S contains at least one enabled transition.
// For 1-safe nets these conditions make the enabled members of S a persistent
// set, so firing only those preserves every reachable deadlock.
#pragma once

#include <functional>
#include <vector>

#include "petri/conflict.hpp"
#include "petri/net.hpp"
#include "reach/explorer.hpp"

namespace gpo::por {

enum class SeedStrategy {
  /// Compute the closure for every enabled seed; keep the set with the
  /// fewest enabled transitions (slower per state, smallest graphs).
  kBestOverSeeds,
  /// Seed with the first enabled transition only (fast, larger graphs).
  kFirstEnabled,
  /// Seed with the whole maximal conflicting set of the first enabled
  /// transition — the "anticipation" flavour sketched in Section 2.3.
  kWholeConflictSet,
};

/// Computes the stubborn closure of `seeds` at marking `m` and returns its
/// enabled transitions, ascending. Exposed separately for unit tests.
[[nodiscard]] std::vector<petri::TransitionId> stubborn_enabled_set(
    const petri::PetriNet& net, const petri::ConflictInfo& conflicts,
    const petri::Marking& m, const std::vector<petri::TransitionId>& seeds);

struct StubbornOptions {
  SeedStrategy strategy = SeedStrategy::kBestOverSeeds;
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation; see reach::ExplorerOptions::cancel.
  const util::CancelToken* cancel = nullptr;
  bool stop_at_first_deadlock = false;
  bool build_graph = false;
  /// When set, only dead markings satisfying the predicate count as
  /// deadlocks (used by the safety-to-deadlock reduction to single out
  /// monitor-induced deadlocks). Stubborn sets preserve *all* deadlocks, so
  /// filtering is sound.
  std::function<bool(const petri::Marking&)> deadlock_filter;
  /// Optional telemetry sink; see reach::ExplorerOptions::metrics.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "por.";
};

/// Reduced-order explorer: breadth-first search that expands, per marking,
/// only the enabled transitions of one stubborn set. Reuses
/// reach::ExplorerResult so results are directly comparable with the
/// exhaustive engine.
class StubbornExplorer {
 public:
  StubbornExplorer(const petri::PetriNet& net, StubbornOptions options = {});

  [[nodiscard]] reach::ExplorerResult explore() const;

  /// Same search, but started from the given markings instead of the net's
  /// initial marking (used by the GPO engine's anti-ignoring delegation).
  /// Counterexample traces are relative to whichever root reached the
  /// deadlock first.
  [[nodiscard]] reach::ExplorerResult explore_from(
      const std::vector<petri::Marking>& roots) const;

  /// The reduced successor-generating set at m (enabled transitions of the
  /// selected stubborn set). Exposed for tests.
  [[nodiscard]] std::vector<petri::TransitionId> ample_set(
      const petri::Marking& m) const;

 private:
  const petri::PetriNet& net_;
  petri::ConflictInfo conflicts_;
  StubbornOptions options_;
};

}  // namespace gpo::por
