#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace gpo::util {
namespace {

TEST(Bitset, DefaultIsEmpty) {
  Bitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitset, SetResetTest) {
  Bitset b(130);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, InitializerList) {
  Bitset b(10, {1, 3, 7});
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.test(1));
  EXPECT_TRUE(b.test(3));
  EXPECT_TRUE(b.test(7));
}

TEST(Bitset, OutOfRangeThrows) {
  Bitset b(10);
  EXPECT_THROW(b.set(10), std::out_of_range);
  EXPECT_THROW((void)b.test(10), std::out_of_range);
  EXPECT_THROW(b.reset(100), std::out_of_range);
}

TEST(Bitset, SizeMismatchThrows) {
  Bitset a(10), b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
  EXPECT_THROW((void)a.intersects(b), std::invalid_argument);
}

TEST(Bitset, BooleanOps) {
  Bitset a(70, {0, 5, 69});
  Bitset b(70, {5, 6});
  EXPECT_EQ((a | b), Bitset(70, {0, 5, 6, 69}));
  EXPECT_EQ((a & b), Bitset(70, {5}));
  EXPECT_EQ((a - b), Bitset(70, {0, 69}));
  EXPECT_EQ((a ^ b), Bitset(70, {0, 6, 69}));
}

TEST(Bitset, SubsetAndIntersect) {
  Bitset a(70, {0, 5});
  Bitset b(70, {0, 5, 6});
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(Bitset(70, {6})));
  EXPECT_TRUE(Bitset(70).is_subset_of(a));
}

TEST(Bitset, FindFirstNext) {
  Bitset b(130, {3, 64, 127});
  EXPECT_EQ(b.find_first(), 3u);
  EXPECT_EQ(b.find_next(4), 64u);
  EXPECT_EQ(b.find_next(64), 64u);
  EXPECT_EQ(b.find_next(65), 127u);
  EXPECT_EQ(b.find_next(128), 130u);
  EXPECT_EQ(Bitset(130).find_first(), 130u);
}

TEST(Bitset, IterationMatchesToIndices) {
  Bitset b(100, {0, 17, 63, 64, 99});
  std::vector<std::size_t> via_iter;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i + 1))
    via_iter.push_back(i);
  EXPECT_EQ(via_iter, b.to_indices());
}

TEST(Bitset, OrderingIsTotal) {
  Bitset a(10, {1});
  Bitset b(10, {2});
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(Bitset, HashDistinguishesSizes) {
  // The trailing-zero invariant means same-words-different-size must still
  // hash apart.
  Bitset a(64, {0});
  Bitset b(65, {0});
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Bitset, ToString) {
  EXPECT_EQ(Bitset(10, {1, 4, 7}).to_string(), "{1,4,7}");
  EXPECT_EQ(Bitset(10).to_string(), "{}");
}

TEST(Bitset, RandomizedAgainstStdSet) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 1 + rng() % 200;
    Bitset bs(n);
    std::set<std::size_t> ref;
    for (int op = 0; op < 100; ++op) {
      std::size_t i = rng() % n;
      if (rng() % 2) {
        bs.set(i);
        ref.insert(i);
      } else {
        bs.reset(i);
        ref.erase(i);
      }
    }
    EXPECT_EQ(bs.count(), ref.size());
    auto idx = bs.to_indices();
    EXPECT_TRUE(std::equal(idx.begin(), idx.end(), ref.begin(), ref.end()));
  }
}

TEST(Bitset, RandomizedBooleanAlgebra) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 1 + rng() % 150;
    Bitset a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng() % 2) a.set(i);
      if (rng() % 2) b.set(i);
    }
    // De Morgan-ish identities expressible without complement.
    EXPECT_EQ((a - b) | (a & b), a);
    EXPECT_EQ((a | b) - b, a - b);
    EXPECT_EQ((a ^ b), (a | b) - (a & b));
    EXPECT_TRUE((a & b).is_subset_of(a));
    EXPECT_TRUE(a.is_subset_of(a | b));
    EXPECT_EQ(a.intersects(b), (a & b).any());
  }
}

}  // namespace
}  // namespace gpo::util
