// Fork-join TaskPool unit tests: job tracking, parallel_for completeness and
// determinism of the chunk layout, nesting, and the counter surface the GPN
// engines publish. Labeled `parallel` so the TSan CI leg races the pool for
// real.
#include "util/task_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace gpo::util {
namespace {

TEST(TaskPool, RunsSubmittedJobs) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_all_jobs();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.outstanding_jobs(), 0u);
}

TEST(TaskPool, JobsMaySubmitMoreJobs) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  // A 3-level fan-out submitted from inside jobs: wait_all_jobs must not
  // return while recursively-submitted work is still outstanding.
  pool.submit([&] {
    ran.fetch_add(1);
    for (int i = 0; i < 10; ++i)
      pool.submit([&] {
        ran.fetch_add(1);
        for (int j = 0; j < 10; ++j) pool.submit([&] { ran.fetch_add(1); });
      });
  });
  pool.wait_all_jobs();
  EXPECT_EQ(ran.load(), 1 + 10 + 100);
}

TEST(TaskPool, ParallelForCoversEveryIndexExactlyOnce) {
  TaskPool pool(8);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  // parallel_for only forks from worker threads; drive it from a job.
  pool.submit([&] {
    pool.parallel_for(kN, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  pool.wait_all_jobs();
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPool, ParallelForFromOutsideRunsSerially) {
  TaskPool pool(4);
  // Outside callers are not workers: the loop must still run (inline).
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.total_forks(), 0u);
}

TEST(TaskPool, ParallelForRespectsGrain) {
  TaskPool pool(4);
  // n <= grain: no forks, one inline call.
  std::atomic<std::size_t> calls{0};
  pool.submit([&] {
    pool.parallel_for(4, 8, [&](std::size_t b, std::size_t e) {
      calls.fetch_add(1);
      EXPECT_EQ(b, 0u);
      EXPECT_EQ(e, 4u);
    });
  });
  pool.wait_all_jobs();
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(pool.total_forks(), 0u);
}

TEST(TaskPool, NestedParallelForCompletes) {
  TaskPool pool(4);
  constexpr std::size_t kOuter = 16, kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.submit([&] {
    pool.parallel_for(kOuter, 1, [&](std::size_t ob, std::size_t oe) {
      for (std::size_t o = ob; o < oe; ++o)
        pool.parallel_for(kInner, 4, [&, o](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i)
            hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
        });
    });
  });
  pool.wait_all_jobs();
  long sum = 0;
  for (auto& h : hits) sum += h.load();
  EXPECT_EQ(sum, static_cast<long>(kOuter * kInner));
}

TEST(TaskPool, DeterministicChunkLayout) {
  // The chunk boundaries are a pure function of (n, grain, worker_count):
  // two runs over the same range must produce the same [begin, end) set.
  auto layout = [](std::size_t workers, std::size_t n, std::size_t grain) {
    TaskPool pool(workers);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.submit([&] {
      pool.parallel_for(n, grain, [&](std::size_t b, std::size_t e) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(b, e);
      });
    });
    pool.wait_all_jobs();
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  auto a = layout(4, 1000, 8);
  auto b = layout(4, 1000, 8);
  EXPECT_EQ(a, b);
  // Coverage: chunks tile [0, 1000) without gap or overlap.
  std::size_t expect_begin = 0;
  for (const auto& [cb, ce] : a) {
    EXPECT_EQ(cb, expect_begin);
    EXPECT_LT(cb, ce);
    expect_begin = ce;
  }
  EXPECT_EQ(expect_begin, 1000u);
}

TEST(TaskPool, CurrentWorkerIdentification) {
  TaskPool pool(3);
  EXPECT_EQ(pool.current_worker(), TaskPool::kNotAWorker);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::atomic<bool> ok{false};
  pool.submit([&] {
    ok.store(pool.current_worker() < pool.worker_count());
  });
  pool.wait_all_jobs();
  EXPECT_TRUE(ok.load());
}

TEST(TaskPool, ForkAndStealCountersQuiesce) {
  TaskPool pool(4);
  std::atomic<long> sum{0};
  for (int j = 0; j < 8; ++j)
    pool.submit([&] {
      pool.parallel_for(512, 1, [&](std::size_t b, std::size_t e) {
        long s = 0;
        for (std::size_t i = b; i < e; ++i) s += static_cast<long>(i);
        sum.fetch_add(s, std::memory_order_relaxed);
      });
    });
  pool.wait_all_jobs();
  EXPECT_EQ(sum.load(), 8L * (511L * 512L / 2));
  // Each loop forks chunks-1 tasks; with 4 workers and grain 1 the layout
  // caps at 8 chunks, so 8 loops fork 56 tasks total.
  EXPECT_EQ(pool.total_forks(), 56u);
  std::size_t per_worker = 0;
  for (std::size_t w = 0; w < pool.worker_count(); ++w)
    per_worker += pool.steal_count(w);
  EXPECT_EQ(per_worker, pool.total_steals());
}

TEST(TaskPool, ZeroWorkersClampsToOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait_all_jobs();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace gpo::util
