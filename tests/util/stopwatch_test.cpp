#include "util/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace gpo::util {
namespace {

TEST(Stopwatch, ElapsedIsMonotone) {
  Stopwatch sw;
  double a = sw.elapsed_seconds();
  double b = sw.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GE(sw.elapsed_ms(), b * 1e3);
}

TEST(Stopwatch, LapMeasuresIntervalsNotTotals) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double first = sw.lap();
  EXPECT_GE(first, 0.015);  // at least most of the sleep
  // An immediate second lap sees only the tiny interval since the first,
  // not the cumulative elapsed time — this is what turns the heartbeat's
  // cumulative state counter into a per-interval rate.
  double second = sw.lap();
  EXPECT_LT(second, first);
  EXPECT_GE(sw.elapsed_seconds(), first);
}

TEST(Stopwatch, RestartResetsBothMarks) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.restart();
  EXPECT_LT(sw.elapsed_seconds(), 0.010);
  EXPECT_LT(sw.lap(), 0.010);
}

}  // namespace
}  // namespace gpo::util
