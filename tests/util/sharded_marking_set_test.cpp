#include "util/sharded_marking_set.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gpo::util {
namespace {

Bitset make_marking(std::size_t universe, std::size_t value) {
  Bitset m(universe);
  for (std::size_t b = 0; b < universe && value != 0; ++b, value >>= 1)
    if (value & 1) m.set(b);
  return m;
}

TEST(ShardedMarkingSet, InsertInternsAndDedupes) {
  ShardedMarkingSet set(4);
  auto [id1, fresh1] = set.insert(make_marking(16, 5), 0, 7);
  EXPECT_TRUE(fresh1);
  auto [id2, fresh2] = set.insert(make_marking(16, 9), 0, 8);
  EXPECT_TRUE(fresh2);
  EXPECT_NE(id1, id2);
  // Re-inserting an existing marking returns the original id and keeps the
  // original breadcrumb (first writer wins).
  auto [id3, fresh3] = set.insert(make_marking(16, 5), id2, 99);
  EXPECT_FALSE(fresh3);
  EXPECT_EQ(id3, id1);
  EXPECT_EQ(set.entry(id1).meta.via, 7u);
  EXPECT_EQ(set.size(), 2u);
}

TEST(ShardedMarkingSet, ParentChainWalksBackToRoot) {
  ShardedMarkingSet set(2);
  auto [root, fresh] =
      set.insert(make_marking(8, 1), ShardedMarkingSet::kNoParent, UINT32_MAX);
  ASSERT_TRUE(fresh);
  auto [a, fa] = set.insert(make_marking(8, 2), root, 0);
  ASSERT_TRUE(fa);
  auto [b, fb] = set.insert(make_marking(8, 4), a, 1);
  ASSERT_TRUE(fb);

  std::vector<std::uint32_t> path;
  for (auto s = b; set.entry(s).meta.parent != ShardedMarkingSet::kNoParent;
       s = set.entry(s).meta.parent)
    path.push_back(set.entry(s).meta.via);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 1u);
  EXPECT_EQ(path[1], 0u);
}

TEST(ShardedMarkingSet, GrowsPastSlotAndChunkBoundaries) {
  // 20k distinct markings through 1 shard: exercises open-addressing growth
  // (initial 1024 slots) and multiple 4096-entry arena chunks.
  ShardedMarkingSet set(1);
  const std::size_t n = 20'000;
  std::vector<ShardedMarkingSet::StateId> ids;
  ids.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto [id, fresh] = set.insert(make_marking(32, v + 1), v, 3);
    ASSERT_TRUE(fresh) << v;
    ids.push_back(id);
  }
  EXPECT_EQ(set.size(), n);
  // Every marking still resolves to its original id and entry.
  for (std::size_t v = 0; v < n; v += 997) {
    auto [id, fresh] = set.insert(make_marking(32, v + 1), 0, 0);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(id, ids[v]);
    EXPECT_EQ(set.entry(id).state, make_marking(32, v + 1));
    EXPECT_EQ(set.entry(id).meta.parent, v);
  }
}

TEST(ShardedMarkingSet, ShardSizesSumToSize) {
  ShardedMarkingSet set(8);
  EXPECT_EQ(set.shard_count(), 8u);
  for (std::size_t v = 1; v <= 500; ++v) set.insert(make_marking(24, v), 0, 0);
  std::size_t sum = 0;
  for (std::size_t s : set.shard_sizes()) sum += s;
  EXPECT_EQ(sum, set.size());
  EXPECT_EQ(set.size(), 500u);
}

TEST(ShardedMarkingSet, ConcurrentInsertersAgreeOnIds) {
  // 4 threads race to insert overlapping ranges; afterwards the set must
  // contain each distinct marking exactly once, with one id per marking.
  ShardedMarkingSet set(8);
  constexpr std::size_t kDistinct = 4'000;
  constexpr std::size_t kThreads = 4;
  std::atomic<std::size_t> fresh_total{0};
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kThreads; ++w) {
    pool.emplace_back([&set, &fresh_total, w] {
      std::size_t fresh_here = 0;
      // Each worker covers the full range, offset so collisions interleave.
      for (std::size_t k = 0; k < kDistinct; ++k) {
        std::size_t v = (k + w * (kDistinct / kThreads)) % kDistinct;
        auto [id, fresh] = set.insert(make_marking(32, v + 1), v, 1);
        (void)id;
        if (fresh) ++fresh_here;
      }
      fresh_total.fetch_add(fresh_here);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(set.size(), kDistinct);
  EXPECT_EQ(fresh_total.load(), kDistinct);
  for (std::size_t v = 0; v < kDistinct; v += 13) {
    auto [id, fresh] = set.insert(make_marking(32, v + 1), 0, 0);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(set.entry(id).state, make_marking(32, v + 1));
  }
}

}  // namespace
}  // namespace gpo::util
