#include "unfold/unfolding.hpp"

#include <gtest/gtest.h>

#include <set>

#include "models/models.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::unfold {
namespace {

using petri::Marking;
using petri::PetriNet;

/// The reachable markings of `net` as a set.
std::set<Marking> reachable_set(const PetriNet& net,
                                std::size_t cap = 200000) {
  std::set<Marking> out;
  reach::ExplorerOptions opt;
  opt.max_states = cap;
  opt.bad_state = [&](const Marking& m) {
    out.insert(m);
    return false;
  };
  auto r = reach::ExplicitExplorer(net, opt).explore();
  EXPECT_FALSE(r.limit_hit);
  return out;
}

/// Completeness + soundness, checked literally: replaying the prefix as a
/// net, its cuts map exactly onto the original net's reachable markings.
void expect_prefix_exact(const PetriNet& net) {
  Prefix prefix = unfold(net);
  ASSERT_FALSE(prefix.limit_hit) << net.name();
  PetriNet occurrence = prefix_as_net(net, prefix);

  std::set<Marking> via_prefix;
  reach::ExplorerOptions opt;
  opt.max_states = 500000;
  opt.bad_state = [&](const Marking& cut) {
    via_prefix.insert(cut_to_marking(net, prefix, cut));
    return false;
  };
  auto r = reach::ExplicitExplorer(occurrence, opt).explore();
  ASSERT_FALSE(r.limit_hit) << net.name();
  EXPECT_FALSE(r.safeness_violation) << net.name();  // occurrence nets are safe

  EXPECT_EQ(via_prefix, reachable_set(net)) << net.name();
}

TEST(Unfolding, SequenceNet) {
  // p0 -> a -> p1 -> b -> p2: the prefix is the net itself (acyclic,
  // conflict-free): 2 events, no cutoffs.
  petri::NetBuilder bld;
  auto p0 = bld.add_place("p0", true);
  auto p1 = bld.add_place("p1");
  auto p2 = bld.add_place("p2");
  auto a = bld.add_transition("a");
  bld.connect(a, {p0}, {p1});
  auto b = bld.add_transition("b");
  bld.connect(b, {p1}, {p2});
  PetriNet net = bld.build();
  Prefix prefix = unfold(net);
  EXPECT_EQ(prefix.events.size(), 2u);
  EXPECT_EQ(prefix.conditions.size(), 3u);
  EXPECT_EQ(prefix.cutoff_count, 0u);
  expect_prefix_exact(net);
}

TEST(Unfolding, DiamondIsLinearInN) {
  // The unfolding's claim to fame: n concurrent transitions need n events
  // (no interleavings at all), versus 2^n reachable markings.
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    PetriNet net = models::make_diamond(n);
    Prefix prefix = unfold(net);
    EXPECT_EQ(prefix.events.size(), n) << n;
    EXPECT_EQ(prefix.cutoff_count, 0u) << n;
  }
  expect_prefix_exact(models::make_diamond(4));
}

TEST(Unfolding, ConflictChainPrefixIsLinearToo) {
  // n conflict pairs: the unfolding keeps both branches of each pair but
  // never multiplies across pairs: 2n events.
  for (std::size_t n : {2u, 4u, 8u}) {
    PetriNet net = models::make_conflict_chain(n);
    Prefix prefix = unfold(net);
    EXPECT_EQ(prefix.events.size(), 2 * n) << n;
  }
  expect_prefix_exact(models::make_conflict_chain(3));
}

TEST(Unfolding, CycleNeedsCutoff) {
  // p0 -> a -> p1 -> b -> p0: the loop closes on a repeated marking, so the
  // prefix ends in a cut-off event.
  petri::NetBuilder bld;
  auto p0 = bld.add_place("p0", true);
  auto p1 = bld.add_place("p1");
  auto a = bld.add_transition("a");
  bld.connect(a, {p0}, {p1});
  auto b = bld.add_transition("b");
  bld.connect(b, {p1}, {p0});
  PetriNet net = bld.build();
  Prefix prefix = unfold(net);
  EXPECT_EQ(prefix.events.size(), 2u);
  EXPECT_EQ(prefix.cutoff_count, 1u);  // b returns to m0
  expect_prefix_exact(net);
}

TEST(Unfolding, ExactCoverageOnBenchmarks) {
  expect_prefix_exact(models::make_fig3());
  expect_prefix_exact(models::make_fig7());
  expect_prefix_exact(models::make_nsdp(2));
  expect_prefix_exact(models::make_nsdp(3));
  expect_prefix_exact(models::make_overtake(3));
  expect_prefix_exact(models::make_readers_writers(3));
  expect_prefix_exact(models::make_cyclic_scheduler(3));
  expect_prefix_exact(models::make_arbiter_tree(2));
}

TEST(Unfolding, ExactCoverageOnRandomNets) {
  for (std::uint64_t seed = 1300; seed < 1330; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 2;
    p.states_per_machine = 3;
    p.transitions = 4 + seed % 8;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    UnfoldOptions opt;
    opt.max_events = 20000;
    Prefix prefix = unfold(net, opt);
    if (prefix.limit_hit) continue;
    PetriNet occurrence = prefix_as_net(net, prefix);
    std::set<Marking> via_prefix;
    reach::ExplorerOptions eo;
    eo.max_states = 300000;
    eo.bad_state = [&](const Marking& cut) {
      via_prefix.insert(cut_to_marking(net, prefix, cut));
      return false;
    };
    auto r = reach::ExplicitExplorer(occurrence, eo).explore();
    if (r.limit_hit) continue;
    EXPECT_EQ(via_prefix, reachable_set(net)) << "seed=" << seed;
  }
}

TEST(Unfolding, EventMarksAreReachable) {
  PetriNet net = models::make_nsdp(3);
  auto reachable = reachable_set(net);
  Prefix prefix = unfold(net);
  for (const Event& e : prefix.events)
    EXPECT_TRUE(reachable.contains(e.mark));
}

TEST(Unfolding, LocalConfigSizesAreMonotoneInMcMillanOrder) {
  // Events are inserted in ascending |[e]| order; cut-offs must compare
  // against a strictly smaller configuration with the same mark.
  PetriNet net = models::make_overtake(3);
  Prefix prefix = unfold(net);
  for (std::size_t i = 1; i < prefix.events.size(); ++i)
    EXPECT_LE(prefix.events[i - 1].local_size, prefix.events[i].local_size);
  EXPECT_GT(prefix.cutoff_count, 0u);
}

TEST(Unfolding, DeadlockViaPrefixMatchesGroundTruth) {
  for (auto make : {+[] { return models::make_nsdp(3); },
                    +[] { return models::make_overtake(3); },
                    +[] { return models::make_readers_writers(3); },
                    +[] { return models::make_arbiter_tree(2); },
                    +[] { return models::make_conflict_chain(3); }}) {
    PetriNet net = make();
    Prefix prefix = unfold(net);
    ASSERT_FALSE(prefix.limit_hit) << net.name();
    auto via_prefix = deadlock_via_prefix(net, prefix);
    auto ground = reach::ExplicitExplorer(net).explore();
    EXPECT_EQ(via_prefix.deadlock_found, ground.deadlock_found) << net.name();
    if (via_prefix.deadlock_found) {
      ASSERT_TRUE(via_prefix.witness.has_value());
      EXPECT_TRUE(net.is_deadlocked(*via_prefix.witness)) << net.name();
    }
  }
}

TEST(Unfolding, DeadlockViaPrefixOnRandomNets) {
  for (std::uint64_t seed = 1400; seed < 1430; ++seed) {
    models::RandomNetParams p;
    p.machines = 2;
    p.states_per_machine = 3;
    p.transitions = 4 + seed % 8;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    UnfoldOptions opt;
    opt.max_events = 20000;
    Prefix prefix = unfold(net, opt);
    if (prefix.limit_hit) continue;
    auto via_prefix = deadlock_via_prefix(net, prefix, 300000);
    if (via_prefix.limit_hit) continue;
    auto ground = reach::ExplicitExplorer(net).explore();
    EXPECT_EQ(via_prefix.deadlock_found, ground.deadlock_found)
        << "seed=" << seed;
  }
}

TEST(Unfolding, EventLimitReported) {
  UnfoldOptions opt;
  opt.max_events = 3;
  Prefix prefix = unfold(models::make_nsdp(4), opt);
  EXPECT_TRUE(prefix.limit_hit);
  EXPECT_LE(prefix.events.size(), 4u);
}

TEST(Unfolding, PrefixSizeVersusStateCount) {
  // On concurrency-heavy nets the prefix is far smaller than the graph.
  PetriNet net = models::make_cyclic_scheduler(8);
  Prefix prefix = unfold(net);
  auto full = reach::ExplicitExplorer(net).explore();
  EXPECT_LT(prefix.events.size(), full.state_count / 10);
}

}  // namespace
}  // namespace gpo::unfold
