// Tests for the structural net-reduction pipeline (src/reduce/): per-pass
// side conditions on hand-built nets, certificate mapping/replay, and the
// acceptance gate of the subsystem — bitwise verdict parity between reduced
// and unreduced runs across every engine on the Table-1 models and a random
// net corpus, with every deadlock counterexample mapped back through the
// certificate and replayed on the original net.
#include "reduce/reduce.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bdd/symbolic_reach.hpp"
#include "core/gpo.hpp"
#include "models/models.hpp"
#include "petri/builder.hpp"
#include "por/stubborn.hpp"
#include "reach/explorer.hpp"

namespace gpo::reduce {
namespace {

using petri::Marking;
using petri::NetBuilder;
using petri::PetriNet;
using petri::TransitionId;

bool pass_applied(const ReductionStats& stats, const std::string& pass) {
  for (const PassCount& pc : stats.pass_counts)
    if (pc.pass == pass) return pc.applications > 0;
  return false;
}

/// Exhaustive deadlock verdict — the ground truth every comparison uses.
bool has_deadlock(const PetriNet& net) {
  return reach::ExplicitExplorer(net).explore().deadlock_found;
}

// ---------------------------------------------------------------------------
// Per-pass side conditions
// ---------------------------------------------------------------------------

TEST(ReducePasses, DeadTransitionWithUnmarkablePresetIsRemoved) {
  NetBuilder b("dead-t");
  auto a = b.add_place("a", true);
  auto bb = b.add_place("b", false);
  auto p = b.add_place("p", false);  // unmarked, no producer: unmarkable
  auto q = b.add_place("q", false);
  auto live = b.add_transition("live");
  b.add_input_arc(a, live);
  b.add_output_arc(live, bb);
  auto dead = b.add_transition("dead");
  b.add_input_arc(p, dead);
  b.add_output_arc(dead, q);
  PetriNet net = b.build();

  ReductionResult red = reduce_net(net, {});
  EXPECT_TRUE(pass_applied(red.stats, "dead-transitions"));
  for (TransitionId t = 0; t < red.net.transition_count(); ++t)
    EXPECT_NE(red.net.transition(t).name, "dead");
  EXPECT_EQ(has_deadlock(net), has_deadlock(red.net));
}

TEST(ReducePasses, SinkPlaceIsRemoved) {
  NetBuilder b("sink");
  auto a = b.add_place("a", true);
  auto s = b.add_place("sink", false);  // no consumer
  auto t = b.add_transition("t");
  b.add_input_arc(a, t);
  b.add_output_arc(t, s);
  PetriNet net = b.build();

  ReductionResult red = reduce_net(net, {});
  EXPECT_TRUE(pass_applied(red.stats, "dead-places"));
  EXPECT_LT(red.net.place_count(), net.place_count());
  EXPECT_EQ(has_deadlock(net), has_deadlock(red.net));
}

TEST(ReducePasses, ConstantSelfLoopPlaceIsRemoved) {
  NetBuilder b("const");
  auto a = b.add_place("a", true);
  auto c = b.add_place("c", true);  // every adjacent transition self-loops
  auto out = b.add_place("out", false);
  auto t = b.add_transition("t");
  b.add_input_arc(a, t);
  b.add_input_arc(c, t);
  b.add_output_arc(t, c);
  auto u = b.add_transition("u");  // keeps `out` from being a plain sink
  b.add_input_arc(out, u);
  b.add_output_arc(u, a);
  b.add_output_arc(t, out);
  PetriNet net = b.build();

  ReductionResult red = reduce_net(net, {});
  EXPECT_TRUE(pass_applied(red.stats, "constant-places"));
  for (petri::PlaceId p = 0; p < red.net.place_count(); ++p)
    EXPECT_NE(red.net.place(p).name, "c");
  EXPECT_EQ(has_deadlock(net), has_deadlock(red.net));
}

TEST(ReducePasses, DuplicateTransitionsFuse) {
  NetBuilder b("dup-t");
  auto a = b.add_place("a", true);
  auto c = b.add_place("c", false);
  auto loop = b.add_transition("back");
  b.add_input_arc(c, loop);
  b.add_output_arc(loop, a);
  for (const char* name : {"t1", "t2"}) {  // identical pre and post
    auto t = b.add_transition(name);
    b.add_input_arc(a, t);
    b.add_output_arc(t, c);
  }
  PetriNet net = b.build();

  ReductionResult red = reduce_net(net, {});
  EXPECT_TRUE(pass_applied(red.stats, "dup-transitions"));
  EXPECT_EQ(red.net.transition_count(), net.transition_count() - 1);
  EXPECT_EQ(has_deadlock(net), has_deadlock(red.net));
}

TEST(ReducePasses, DuplicatePlacesFuse) {
  NetBuilder b("dup-p");
  auto p1 = b.add_place("p1", true);
  auto p2 = b.add_place("p2", true);  // same producers/consumers/marking
  auto c = b.add_place("c", false);
  auto t = b.add_transition("t");
  b.add_input_arc(p1, t);
  b.add_input_arc(p2, t);
  b.add_output_arc(t, c);
  auto u = b.add_transition("u");
  b.add_input_arc(c, u);
  b.add_output_arc(u, p1);
  b.add_output_arc(u, p2);
  PetriNet net = b.build();

  ReductionResult red = reduce_net(net, {});
  EXPECT_TRUE(pass_applied(red.stats, "dup-places"));
  EXPECT_EQ(red.net.place_count(), net.place_count() - 1);
  EXPECT_EQ(has_deadlock(net), has_deadlock(red.net));
}

TEST(ReducePasses, AgglomerationCollapsesSequenceAtAggressiveOnly) {
  NetBuilder b("agg");
  auto a = b.add_place("a", true);
  auto p = b.add_place("p", false);
  auto out = b.add_place("out", false);
  auto back = b.add_place("back", false);
  auto f = b.add_transition("f");
  b.add_input_arc(a, f);
  b.add_output_arc(f, p);  // post(f) = {p}
  auto h = b.add_transition("h");
  b.add_input_arc(p, h);  // pre(h) = {p}
  b.add_output_arc(h, out);  // producers(out) = {h}
  auto u = b.add_transition("u");
  b.add_input_arc(out, u);
  b.add_output_arc(u, back);
  PetriNet net = b.build();

  ReduceOptions safe;
  safe.level = ReduceLevel::kSafe;
  EXPECT_FALSE(pass_applied(reduce_net(net, safe).stats, "agglomeration"));

  ReduceOptions aggressive;
  aggressive.level = ReduceLevel::kAggressive;
  ReductionResult red = reduce_net(net, aggressive);
  EXPECT_TRUE(pass_applied(red.stats, "agglomeration"));
  EXPECT_EQ(has_deadlock(net), has_deadlock(red.net));

  // The fused transition expands to [f, h] on the original net, and the
  // expanded deadlock trace replays there.
  reach::ExplorerResult r = reach::ExplicitExplorer(red.net).explore();
  ASSERT_TRUE(r.deadlock_found);
  std::vector<TransitionId> mapped =
      red.certificate.map_to_original(r.counterexample);
  EXPECT_GT(mapped.size(), r.counterexample.size());
  std::optional<Marking> end = replay_trace(net, mapped);
  ASSERT_TRUE(end.has_value());
  EXPECT_TRUE(net.is_deadlocked(*end));
}

TEST(ReducePasses, AgglomerationRefusesMarkedMiddlePlace) {
  NetBuilder b("agg-marked");
  auto a = b.add_place("a", true);
  auto p = b.add_place("p", true);  // marked: side condition fails
  auto out = b.add_place("out", false);
  auto out2 = b.add_place("out2", false);
  auto f = b.add_transition("f");
  b.add_input_arc(a, f);
  b.add_output_arc(f, p);
  auto h = b.add_transition("h");
  b.add_input_arc(p, h);
  // post(h) = {out, out2}, so neither out place is a candidate either
  // (its producer's postset is not the singleton {place}).
  b.add_output_arc(h, out);
  b.add_output_arc(h, out2);
  auto u = b.add_transition("u");
  b.add_input_arc(out, u);
  b.add_input_arc(out2, u);
  b.add_output_arc(u, a);
  // Extra consumer keeps out/out2 from being dup-place-fused upstream in
  // the fixpoint (which would re-enable agglomeration on the fused place).
  auto w = b.add_transition("w");
  b.add_input_arc(out2, w);
  b.add_output_arc(w, a);
  PetriNet net = b.build();

  ReduceOptions aggressive;
  aggressive.level = ReduceLevel::kAggressive;
  EXPECT_FALSE(
      pass_applied(reduce_net(net, aggressive).stats, "agglomeration"));
}

TEST(ReducePasses, AgglomerationRefusesConsumerOutputWithOtherProducers) {
  NetBuilder b("agg-shared");
  auto a = b.add_place("a", true);
  auto p = b.add_place("p", false);
  auto out = b.add_place("out", false);
  auto f = b.add_transition("f");
  b.add_input_arc(a, f);
  b.add_output_arc(f, p);
  auto h = b.add_transition("h");
  b.add_input_arc(p, h);
  b.add_output_arc(h, out);
  auto rival = b.add_transition("rival");  // second producer of `out`
  b.add_input_arc(a, rival);
  b.add_output_arc(rival, out);
  // pre(u) = {a, out} keeps `out` itself from being agglomerated (its
  // consumer's preset is not the singleton {out}).
  auto u = b.add_transition("u");
  b.add_input_arc(out, u);
  b.add_input_arc(a, u);
  b.add_output_arc(u, a);
  PetriNet net = b.build();

  ReduceOptions aggressive;
  aggressive.level = ReduceLevel::kAggressive;
  EXPECT_FALSE(
      pass_applied(reduce_net(net, aggressive).stats, "agglomeration"));
}

// ---------------------------------------------------------------------------
// Certificate and option plumbing
// ---------------------------------------------------------------------------

TEST(ReduceCertificate, OffLevelIsIdentity) {
  PetriNet net = models::make_nsdp(3);
  ReduceOptions off;
  off.level = ReduceLevel::kOff;
  ReductionResult red = reduce_net(net, off);
  EXPECT_TRUE(red.certificate.empty());
  EXPECT_EQ(red.net.place_count(), net.place_count());
  EXPECT_EQ(red.net.transition_count(), net.transition_count());
  std::vector<TransitionId> trace = {0, 1};
  EXPECT_EQ(red.certificate.map_to_original(trace), trace);
}

TEST(ReduceCertificate, ExplorerOptionMapsCounterexampleToOriginalNet) {
  PetriNet net = models::make_overtake(3);
  reach::ExplorerOptions opt;
  opt.reduce_level = ReduceLevel::kAggressive;
  reach::ExplorerResult r = reach::ExplicitExplorer(net, opt).explore();
  reach::ExplorerResult base = reach::ExplicitExplorer(net).explore();
  ASSERT_EQ(r.deadlock_found, base.deadlock_found);
  ASSERT_TRUE(r.deadlock_found);
  // The mapped counterexample is a firing sequence of the ORIGINAL net and
  // the explorer has already replayed it into first_deadlock.
  std::optional<Marking> end = replay_trace(net, r.counterexample);
  ASSERT_TRUE(end.has_value());
  EXPECT_TRUE(net.is_deadlocked(*end));
  ASSERT_TRUE(r.first_deadlock.has_value());
  EXPECT_EQ(*r.first_deadlock, *end);
}

TEST(ReduceCertificate, GpoOptionMapsCounterexampleToOriginalNet) {
  PetriNet net = models::make_overtake(3);
  core::GpoOptions opt;
  opt.reduce_level = ReduceLevel::kAggressive;
  core::GpoResult r =
      core::run_gpo(net, core::FamilyKind::kInterned, opt);
  ASSERT_TRUE(r.deadlock_found);
  if (!r.counterexample.empty()) {
    std::optional<Marking> end = replay_trace(net, r.counterexample);
    ASSERT_TRUE(end.has_value());
    EXPECT_TRUE(net.is_deadlocked(*end));
  }
}

TEST(ReduceCertificate, ReplayRejectsDisabledSteps) {
  PetriNet net = models::make_nsdp(2);
  // A transition fired twice in a row from the initial marking cannot be
  // enabled the second time on these models.
  std::vector<TransitionId> bogus = {0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(replay_trace(net, bogus).has_value());
  std::vector<TransitionId> unknown = {
      static_cast<TransitionId>(net.transition_count())};
  EXPECT_FALSE(replay_trace(net, unknown).has_value());
}

// ---------------------------------------------------------------------------
// Reduced-vs-unreduced parity: Table-1 models x engines x levels
// ---------------------------------------------------------------------------

struct Verdicts {
  bool full, por, bdd, gpo, gpo_intern, gpo_bdd;
};

Verdicts run_all_engines(const PetriNet& net) {
  Verdicts v{};
  v.full = reach::ExplicitExplorer(net).explore().deadlock_found;
  v.por = por::StubbornExplorer(net).explore().deadlock_found;
  v.bdd = bdd::SymbolicReachability(net).analyze().deadlock_found;
  v.gpo = core::run_gpo(net, core::FamilyKind::kExplicit).deadlock_found;
  v.gpo_intern =
      core::run_gpo(net, core::FamilyKind::kInterned).deadlock_found;
  v.gpo_bdd = core::run_gpo(net, core::FamilyKind::kBdd).deadlock_found;
  return v;
}

class ReduceParity : public ::testing::TestWithParam<const char*> {};

TEST_P(ReduceParity, VerdictsIdenticalAcrossEnginesAndLevels) {
  PetriNet net = *models::make_by_spec(GetParam());
  Verdicts base = run_all_engines(net);
  // All engines agree on the unreduced net (cross-engine invariant).
  EXPECT_EQ(base.full, base.por);
  EXPECT_EQ(base.full, base.bdd);
  EXPECT_EQ(base.full, base.gpo);
  EXPECT_EQ(base.full, base.gpo_intern);
  EXPECT_EQ(base.full, base.gpo_bdd);

  for (ReduceLevel level : {ReduceLevel::kSafe, ReduceLevel::kAggressive}) {
    ReduceOptions ro;
    ro.level = level;
    ReductionResult red = reduce_net(net, ro);
    Verdicts v = run_all_engines(red.net);
    const char* lvl = reduce_level_name(level);
    EXPECT_EQ(v.full, base.full) << GetParam() << " full @" << lvl;
    EXPECT_EQ(v.por, base.full) << GetParam() << " por @" << lvl;
    EXPECT_EQ(v.bdd, base.full) << GetParam() << " bdd @" << lvl;
    EXPECT_EQ(v.gpo, base.full) << GetParam() << " gpo @" << lvl;
    EXPECT_EQ(v.gpo_intern, base.full)
        << GetParam() << " gpo-intern @" << lvl;
    EXPECT_EQ(v.gpo_bdd, base.full) << GetParam() << " gpo-bdd @" << lvl;

    // Deadlock counterexamples map back and replay on the original net.
    reach::ExplorerResult r = reach::ExplicitExplorer(red.net).explore();
    if (r.deadlock_found) {
      std::vector<TransitionId> mapped =
          red.certificate.map_to_original(r.counterexample);
      std::optional<Marking> end = replay_trace(net, mapped);
      ASSERT_TRUE(end.has_value())
          << GetParam() << " @" << lvl << ": counterexample does not replay";
      EXPECT_TRUE(net.is_deadlocked(*end))
          << GetParam() << " @" << lvl << ": replay ends non-deadlocked";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, ReduceParity,
                         ::testing::Values("nsdp:4", "asat:2", "over:3",
                                           "over:4", "rw:6", "cyclic:4",
                                           "ring:4", "diamond:5", "chain:8",
                                           "fig3", "fig5", "fig7"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == ':') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Reduced-vs-unreduced parity: random net corpus
// ---------------------------------------------------------------------------

TEST(ReduceParity, SixtyRandomNetsAcrossBothLevels) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    models::RandomNetParams params;
    params.machines = 2 + seed % 3;
    params.states_per_machine = 3 + seed % 4;
    params.transitions = 8 + seed % 9;
    params.sync_percent = (seed * 17) % 101;
    params.seed = seed;
    PetriNet net = models::make_random_net(params);
    bool base = has_deadlock(net);
    for (ReduceLevel level :
         {ReduceLevel::kSafe, ReduceLevel::kAggressive}) {
      ReduceOptions ro;
      ro.level = level;
      ReductionResult red = reduce_net(net, ro);
      reach::ExplorerResult r = reach::ExplicitExplorer(red.net).explore();
      EXPECT_EQ(r.deadlock_found, base)
          << "seed " << seed << " @" << reduce_level_name(level);
      if (r.deadlock_found) {
        std::optional<Marking> end = replay_trace(
            net, red.certificate.map_to_original(r.counterexample));
        ASSERT_TRUE(end.has_value()) << "seed " << seed;
        EXPECT_TRUE(net.is_deadlocked(*end)) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace gpo::reduce
