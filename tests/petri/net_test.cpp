#include "petri/net.hpp"

#include <gtest/gtest.h>

#include "petri/builder.hpp"
#include "models/models.hpp"

namespace gpo::petri {
namespace {

PetriNet two_step_net() {
  // p0* -> a -> p1 -> b -> p2
  NetBuilder b("twostep");
  PlaceId p0 = b.add_place("p0", true);
  PlaceId p1 = b.add_place("p1");
  PlaceId p2 = b.add_place("p2");
  TransitionId a = b.add_transition("a");
  b.connect(a, {p0}, {p1});
  TransitionId t = b.add_transition("b");
  b.connect(t, {p1}, {p2});
  return b.build();
}

TEST(NetBuilder, BuildsStructure) {
  PetriNet net = two_step_net();
  EXPECT_EQ(net.place_count(), 3u);
  EXPECT_EQ(net.transition_count(), 2u);
  EXPECT_EQ(net.place(0).name, "p0");
  EXPECT_EQ(net.transition(0).name, "a");
  EXPECT_EQ(net.transition(0).pre, std::vector<PlaceId>{0});
  EXPECT_EQ(net.transition(0).post, std::vector<PlaceId>{1});
  EXPECT_EQ(net.place(1).pre, std::vector<TransitionId>{0});   // •p1 = {a}
  EXPECT_EQ(net.place(1).post, std::vector<TransitionId>{1});  // p1• = {b}
  EXPECT_TRUE(net.initial_marking().test(0));
  EXPECT_FALSE(net.initial_marking().test(1));
}

TEST(NetBuilder, FindByName) {
  PetriNet net = two_step_net();
  EXPECT_EQ(net.find_place("p1"), 1u);
  EXPECT_EQ(net.find_place("zzz"), kInvalidPlace);
  EXPECT_EQ(net.find_transition("b"), 1u);
  EXPECT_EQ(net.find_transition("zzz"), kInvalidTransition);
}

TEST(NetBuilder, RejectsDuplicateNames) {
  NetBuilder b;
  b.add_place("p");
  EXPECT_THROW(b.add_place("p"), NetError);
  b.add_transition("t");
  EXPECT_THROW(b.add_transition("t"), NetError);
  // Places and transitions live in separate namespaces.
  EXPECT_NO_THROW(b.add_transition("p"));
}

TEST(NetBuilder, RejectsDuplicateArcs) {
  NetBuilder b;
  PlaceId p = b.add_place("p", true);
  TransitionId t = b.add_transition("t");
  b.add_input_arc(p, t);
  b.add_input_arc(p, t);
  EXPECT_THROW((void)b.build(), NetError);
}

TEST(NetBuilder, RejectsUnknownIds) {
  NetBuilder b;
  b.add_place("p");
  b.add_transition("t");
  EXPECT_THROW(b.add_input_arc(5, 0), NetError);
  EXPECT_THROW(b.add_output_arc(0, 5), NetError);
}

TEST(NetBuilder, RejectsEmptyPresetByDefault) {
  NetBuilder b;
  PlaceId p = b.add_place("p");
  TransitionId t = b.add_transition("t");
  b.add_output_arc(t, p);
  EXPECT_THROW((void)b.build(), NetError);
  EXPECT_NO_THROW((void)b.build(/*allow_empty_presets=*/true));
}

TEST(Net, EnablingRule) {
  PetriNet net = two_step_net();
  Marking m = net.initial_marking();
  EXPECT_TRUE(net.enabled(0, m));
  EXPECT_FALSE(net.enabled(1, m));
}

TEST(Net, FiringRule) {
  PetriNet net = two_step_net();
  Marking m1 = net.fire(0, net.initial_marking());
  EXPECT_EQ(m1, Marking(3, {1}));
  Marking m2 = net.fire(1, m1);
  EXPECT_EQ(m2, Marking(3, {2}));
  EXPECT_TRUE(net.is_deadlocked(m2));
  EXPECT_FALSE(net.is_deadlocked(m1));
}

TEST(Net, FiringReportsSafenessViolation) {
  // t: p0 -> p1 where p1 is already marked.
  NetBuilder b;
  PlaceId p0 = b.add_place("p0", true);
  PlaceId p1 = b.add_place("p1", true);
  TransitionId t = b.add_transition("t");
  b.connect(t, {p0}, {p1});
  PetriNet net = b.build();
  bool unsafe = false;
  Marking m = net.fire(0, net.initial_marking(), &unsafe);
  EXPECT_TRUE(unsafe);
  EXPECT_TRUE(m.test(p1));
  EXPECT_FALSE(m.test(p0));
}

TEST(Net, SelfLoopKeepsToken) {
  // t consumes and produces p (p in •t ∩ t•): token survives firing.
  NetBuilder b;
  PlaceId p = b.add_place("p", true);
  PlaceId q = b.add_place("q");
  TransitionId t = b.add_transition("t");
  b.connect(t, {p}, {p, q});
  PetriNet net = b.build();
  bool unsafe = false;
  Marking m = net.fire(0, net.initial_marking(), &unsafe);
  EXPECT_FALSE(unsafe);
  EXPECT_TRUE(m.test(p));
  EXPECT_TRUE(m.test(q));
}

TEST(Net, EnabledTransitions) {
  PetriNet net = models::make_diamond(4);
  auto enabled = net.enabled_transitions(net.initial_marking());
  EXPECT_EQ(enabled.size(), 4u);
}

TEST(Net, MultiInputEnabling) {
  NetBuilder b;
  PlaceId p0 = b.add_place("p0", true);
  PlaceId p1 = b.add_place("p1");
  PlaceId p2 = b.add_place("p2");
  TransitionId t = b.add_transition("t");
  b.connect(t, {p0, p1}, {p2});
  PetriNet net = b.build();
  EXPECT_FALSE(net.enabled(0, net.initial_marking()));
  Marking m = net.initial_marking();
  m.set(p1);
  EXPECT_TRUE(net.enabled(0, m));
  Marking next = net.fire(0, m);
  EXPECT_EQ(next, Marking(3, {2}));
}

}  // namespace
}  // namespace gpo::petri
