#include "petri/structure.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::petri {
namespace {

using util::Bitset;

Bitset places_by_name(const PetriNet& net,
                      std::initializer_list<const char*> names) {
  Bitset s(net.place_count());
  for (const char* n : names) s.set(net.find_place(n));
  return s;
}

TEST(Structure, SiphonAndTrapPredicates) {
  // p0* -> a -> p1 -> b -> p0  (a simple cycle): {p0,p1} is both siphon and
  // trap; each singleton is neither.
  NetBuilder b;
  auto p0 = b.add_place("p0", true);
  auto p1 = b.add_place("p1");
  auto ta = b.add_transition("a");
  b.connect(ta, {p0}, {p1});
  auto tb = b.add_transition("b");
  b.connect(tb, {p1}, {p0});
  PetriNet net = b.build();

  Bitset both(2, {0, 1});
  EXPECT_TRUE(is_siphon(net, both));
  EXPECT_TRUE(is_trap(net, both));
  Bitset just0(2, {0});
  EXPECT_FALSE(is_siphon(net, just0));  // b produces into p0 from outside
  EXPECT_FALSE(is_trap(net, just0));    // a consumes p0, produces outside
  EXPECT_TRUE(is_siphon(net, Bitset(2)));  // empty set, by convention
  (void)p0;
  (void)p1;
}

TEST(Structure, SourceOnlyPlaceIsSiphon) {
  PetriNet net = models::make_conflict_chain(2);
  // p_i has no producers: {p_i} is a siphon; its outputs qa/qb are not.
  EXPECT_TRUE(is_siphon(net, places_by_name(net, {"p_0"})));
  EXPECT_FALSE(is_siphon(net, places_by_name(net, {"qa_0"})));
  // qa_0 has no consumers: it is a trap.
  EXPECT_TRUE(is_trap(net, places_by_name(net, {"qa_0"})));
  EXPECT_FALSE(is_trap(net, places_by_name(net, {"p_0"})));
}

TEST(Structure, MaximalSiphonFixpoint) {
  PetriNet net = models::make_conflict_chain(2);
  Bitset all(net.place_count());
  for (std::size_t p = 0; p < net.place_count(); ++p) all.set(p);
  Bitset max_siphon = maximal_siphon_within(net, all);
  EXPECT_TRUE(is_siphon(net, max_siphon));
  // The conflict places have no producers, so they must survive.
  EXPECT_TRUE(max_siphon.test(net.find_place("p_0")));
  EXPECT_TRUE(max_siphon.test(net.find_place("p_1")));
  // Nothing outside the fixpoint can be added back: it is maximal.
  for (std::size_t p = 0; p < net.place_count(); ++p) {
    if (max_siphon.test(p)) continue;
    Bitset bigger = max_siphon;
    bigger.set(p);
    EXPECT_FALSE(is_siphon(net, bigger)) << net.place(p).name;
  }
}

TEST(Structure, MaximalTrapFixpoint) {
  PetriNet net = models::make_nsdp(2);
  Bitset all(net.place_count());
  for (std::size_t p = 0; p < net.place_count(); ++p) all.set(p);
  Bitset max_trap = maximal_trap_within(net, all);
  EXPECT_TRUE(is_trap(net, max_trap));
  for (std::size_t p = 0; p < net.place_count(); ++p) {
    if (max_trap.test(p)) continue;
    Bitset bigger = max_trap;
    bigger.set(p);
    EXPECT_FALSE(is_trap(net, bigger));
  }
}

TEST(Structure, MinimalSiphonsAgainstBruteForce) {
  // Exhaustive comparison on small random nets (<= 10 places).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    models::RandomNetParams p;
    p.machines = 2;
    p.states_per_machine = 2 + seed % 3;
    p.transitions = 4 + seed % 6;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    const std::size_t np = net.place_count();
    if (np > 12) continue;

    // Brute force: all minimal nonempty siphons.
    std::vector<Bitset> brute;
    for (std::uint64_t mask = 1; mask < (1ull << np); ++mask) {
      Bitset s(np);
      for (std::size_t i = 0; i < np; ++i)
        if (mask & (1ull << i)) s.set(i);
      if (!is_siphon(net, s)) continue;
      brute.push_back(s);
    }
    std::vector<Bitset> brute_min;
    for (const Bitset& s : brute) {
      bool minimal = true;
      for (const Bitset& o : brute)
        if (!(o == s) && o.is_subset_of(s)) {
          minimal = false;
          break;
        }
      if (minimal) brute_min.push_back(s);
    }
    std::sort(brute_min.begin(), brute_min.end());

    bool complete = true;
    auto mined = minimal_siphons(net, 1u << 16, &complete);
    ASSERT_TRUE(complete) << "seed=" << seed;
    std::sort(mined.begin(), mined.end());
    EXPECT_EQ(mined, brute_min) << "seed=" << seed;
  }
}

TEST(Structure, FreeChoiceClassification) {
  EXPECT_TRUE(is_free_choice(models::make_conflict_chain(3)));
  EXPECT_TRUE(is_free_choice(models::make_diamond(3)));
  // NSDP's forks are shared asymmetrically: not free choice.
  EXPECT_FALSE(is_free_choice(models::make_nsdp(3)));
  EXPECT_FALSE(is_free_choice(models::make_readers_writers(3)));
}

TEST(Structure, SiphonTrapFlagsDeadlockingNets) {
  // Terminal nets (chain, diamond) and NSDP deadlock: the property must
  // fail. On the deadlock-free cyclic ASAT it should hold.
  EXPECT_FALSE(siphon_trap_property(models::make_conflict_chain(2)).holds);
  EXPECT_FALSE(siphon_trap_property(models::make_nsdp(3)).holds);
  auto asat = siphon_trap_property(models::make_arbiter_tree(2));
  EXPECT_TRUE(asat.holds);
  EXPECT_TRUE(asat.exhaustive);
}

TEST(Structure, SiphonTrapCounterexampleIsAnUnprotectedSiphon) {
  auto r = siphon_trap_property(models::make_nsdp(2));
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample_siphon.has_value());
  PetriNet net = models::make_nsdp(2);
  EXPECT_TRUE(is_siphon(net, *r.counterexample_siphon));
  Bitset trap = maximal_trap_within(net, *r.counterexample_siphon);
  EXPECT_FALSE(trap.intersects(net.initial_marking()));
}

TEST(Structure, InvariantBasisValuesAreConserved) {
  for (auto make : {+[] { return models::make_nsdp(3); },
                    +[] { return models::make_readers_writers(3); },
                    +[] { return models::make_arbiter_tree(2); },
                    +[] { return models::make_overtake(3); }}) {
    PetriNet net = make();
    auto basis = place_invariant_basis(net);
    EXPECT_FALSE(basis.empty()) << net.name();
    // Check conservation on every reachable marking.
    reach::ExplorerOptions opt;
    opt.build_graph = true;
    auto r = reach::ExplicitExplorer(net, opt).explore();
    // Recompute markings by replaying the graph is overkill; instead use a
    // fresh exploration with a bad_state probe that checks invariants.
    for (const PlaceInvariant& inv : basis) {
      reach::ExplorerOptions probe;
      probe.bad_state = [&](const Marking& m) {
        return invariant_value(inv, m) != inv.initial_value;
      };
      EXPECT_FALSE(
          reach::ExplicitExplorer(net, probe).explore().bad_state_found)
          << net.name();
    }
  }
}

TEST(Structure, SemiflowsAreNonnegativeAndConserved) {
  PetriNet net = models::make_readers_writers(3);
  bool complete = true;
  auto flows = place_semiflows(net, 4096, &complete);
  EXPECT_TRUE(complete);
  EXPECT_FALSE(flows.empty());
  for (const PlaceInvariant& inv : flows) {
    for (std::int64_t w : inv.weights) EXPECT_GE(w, 0);
    reach::ExplorerOptions probe;
    probe.bad_state = [&](const Marking& m) {
      return invariant_value(inv, m) != inv.initial_value;
    };
    EXPECT_FALSE(
        reach::ExplicitExplorer(net, probe).explore().bad_state_found);
  }
}

TEST(Structure, SemiflowsCertifySafenessOfStateMachineComponents) {
  // Each process of RW cycles through {idle, reading, writing}: a semiflow
  // with weight 1 on those places and initial value 1 certifies them 1-safe.
  PetriNet net = models::make_readers_writers(3);
  auto flows = place_semiflows(net);
  Bitset certified = safeness_certified_places(net, flows);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(certified.test(net.find_place("idle_" + std::to_string(i))));
    EXPECT_TRUE(
        certified.test(net.find_place("reading_" + std::to_string(i))));
  }
}

TEST(Structure, NsdpForkInvariant) {
  // fork_i + hasL_i + hasR_{i-1} + eat_i + eat_{i-1} is conserved (each fork
  // is either on the table or accounted for by a holder) — find a semiflow
  // whose support contains fork_0.
  PetriNet net = models::make_nsdp(3);
  auto flows = place_semiflows(net);
  PlaceId fork0 = net.find_place("fork_0");
  bool found = false;
  for (const PlaceInvariant& inv : flows)
    if (inv.weights[fork0] > 0) {
      found = true;
      EXPECT_EQ(inv.initial_value, 1);  // exactly one fork_0 token ever
    }
  EXPECT_TRUE(found);
}

TEST(Structure, RandomNetsSemiflowConservation) {
  for (std::uint64_t seed = 900; seed < 915; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 2;
    p.states_per_machine = 3;
    p.transitions = 5 + seed % 6;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    auto flows = place_semiflows(net);
    // Each component state machine conserves its one token: at least one
    // semiflow per machine.
    EXPECT_GE(flows.size(), p.machines) << "seed=" << seed;
    for (const PlaceInvariant& inv : flows) {
      reach::ExplorerOptions probe;
      probe.max_states = 50000;
      probe.bad_state = [&](const Marking& m) {
        return invariant_value(inv, m) != inv.initial_value;
      };
      EXPECT_FALSE(
          reach::ExplicitExplorer(net, probe).explore().bad_state_found)
          << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace gpo::petri
