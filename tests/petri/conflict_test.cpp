#include "petri/conflict.hpp"

#include <gtest/gtest.h>

#include <set>

#include "models/models.hpp"
#include "petri/builder.hpp"

namespace gpo::petri {
namespace {

TEST(Conflict, PairwiseRelation) {
  PetriNet net = models::make_fig7();  // A,B share p0; C,D share p3
  ConflictInfo ci(net);
  TransitionId a = net.find_transition("A");
  TransitionId b = net.find_transition("B");
  TransitionId c = net.find_transition("C");
  TransitionId d = net.find_transition("D");
  EXPECT_TRUE(ci.in_conflict(a, b));
  EXPECT_TRUE(ci.in_conflict(b, a));
  EXPECT_TRUE(ci.in_conflict(c, d));
  EXPECT_FALSE(ci.in_conflict(a, c));
  EXPECT_FALSE(ci.in_conflict(b, d));
  EXPECT_TRUE(ci.in_conflict(a, a));  // reflexive by Definition 2.2
}

TEST(Conflict, ComponentsAreMaximalConflictSets) {
  PetriNet net = models::make_fig7();
  ConflictInfo ci(net);
  EXPECT_EQ(ci.components().size(), 2u);
  EXPECT_EQ(ci.choice_component_count(), 2u);
  TransitionId a = net.find_transition("A");
  TransitionId b = net.find_transition("B");
  EXPECT_EQ(ci.component_of(a), ci.component_of(b));
  EXPECT_NE(ci.component_of(a), ci.component_of(net.find_transition("C")));
  EXPECT_TRUE(ci.has_choice(a));
}

TEST(Conflict, ConflictFreeTransitionIsSingletonComponent) {
  PetriNet net = models::make_diamond(3);
  ConflictInfo ci(net);
  EXPECT_EQ(ci.components().size(), 3u);
  EXPECT_EQ(ci.choice_component_count(), 0u);
  for (TransitionId t = 0; t < 3; ++t) {
    EXPECT_FALSE(ci.has_choice(t));
    EXPECT_TRUE(ci.neighbors(t).none());
  }
}

TEST(Conflict, TransitiveClosureThroughSharedPlaces) {
  // a-b share p, b-c share q: one component {a,b,c} even though a,c do not
  // directly conflict.
  NetBuilder bld;
  PlaceId p = bld.add_place("p", true);
  PlaceId q = bld.add_place("q", true);
  PlaceId out = bld.add_place("out");
  TransitionId a = bld.add_transition("a");
  bld.connect(a, {p}, {out});
  TransitionId b = bld.add_transition("b");
  bld.connect(b, {p, q}, {out});
  TransitionId c = bld.add_transition("c");
  bld.connect(c, {q}, {out});
  ConflictInfo ci(bld.build());
  EXPECT_FALSE(ci.in_conflict(a, c) && a != c);
  EXPECT_EQ(ci.component_of(a), ci.component_of(c));
  EXPECT_EQ(ci.components().size(), 1u);
}

TEST(Conflict, MaximalIndependentSetsOfCliqueAreSingletons) {
  // Three transitions all sharing one place: MIS = each alone.
  NetBuilder bld;
  PlaceId p = bld.add_place("p", true);
  PlaceId o = bld.add_place("o");
  for (int i = 0; i < 3; ++i) {
    TransitionId t = bld.add_transition("t" + std::to_string(i));
    bld.connect(t, {p}, {o});
  }
  ConflictInfo ci(bld.build());
  ASSERT_EQ(ci.components().size(), 1u);
  auto mis = ci.maximal_independent_sets(0);
  EXPECT_EQ(mis.size(), 3u);
  for (const auto& s : mis) EXPECT_EQ(s.count(), 1u);
}

TEST(Conflict, MaximalIndependentSetsOfPath) {
  // Conflict path a-b-c (b conflicts both): MIS = {a,c} and {b}.
  NetBuilder bld;
  PlaceId p = bld.add_place("p", true);
  PlaceId q = bld.add_place("q", true);
  PlaceId o = bld.add_place("o");
  TransitionId a = bld.add_transition("a");
  bld.connect(a, {p}, {o});
  TransitionId b = bld.add_transition("b");
  bld.connect(b, {p, q}, {o});
  TransitionId c = bld.add_transition("c");
  bld.connect(c, {q}, {o});
  ConflictInfo ci(bld.build());
  auto mis = ci.maximal_independent_sets(0);
  ASSERT_EQ(mis.size(), 2u);
  std::set<std::string> rendered;
  for (const auto& s : mis) rendered.insert(s.to_string());
  EXPECT_TRUE(rendered.contains(util::Bitset(3, {0, 2}).to_string()));
  EXPECT_TRUE(rendered.contains(util::Bitset(3, {1}).to_string()));
  (void)a;
  (void)b;
  (void)c;
}

TEST(Conflict, MaximalConflictFreeSetsAreProductOverComponents) {
  PetriNet net = models::make_fig7();  // components {A,B}, {C,D}
  ConflictInfo ci(net);
  auto r0 = ci.maximal_conflict_free_sets();
  EXPECT_EQ(r0.size(), 4u);  // {A,C},{A,D},{B,C},{B,D}
  for (const auto& v : r0) {
    EXPECT_EQ(v.count(), 2u);
    // Independence: no conflicting pair inside.
    auto idx = v.to_indices();
    EXPECT_FALSE(ci.in_conflict(static_cast<TransitionId>(idx[0]),
                                static_cast<TransitionId>(idx[1])));
  }
}

TEST(Conflict, MaximalConflictFreeSetsContainAllConflictFreeTransitions) {
  PetriNet net = models::make_nsdp(3);
  ConflictInfo ci(net);
  auto r0 = ci.maximal_conflict_free_sets();
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    if (!ci.neighbors(t).none()) continue;
    for (const auto& v : r0) EXPECT_TRUE(v.test(t));
  }
}

TEST(Conflict, MaximalityIsRespected) {
  // Every r0 member must be non-extensible: adding any absent transition
  // creates a conflict.
  PetriNet net = models::make_nsdp(2);
  ConflictInfo ci(net);
  for (const auto& v : ci.maximal_conflict_free_sets()) {
    for (TransitionId t = 0; t < net.transition_count(); ++t) {
      if (v.test(t)) continue;
      EXPECT_TRUE(v.intersects(ci.neighbors(t)))
          << "set " << v.to_string() << " extensible by t" << t;
    }
  }
}

TEST(Conflict, ExplicitR0CapThrows) {
  // 24 binary conflict pairs -> 2^24 maximal sets, beyond the default cap.
  PetriNet net = models::make_conflict_chain(24);
  ConflictInfo ci(net);
  EXPECT_THROW((void)ci.maximal_conflict_free_sets(1u << 20),
               std::length_error);
}

TEST(Conflict, ConflictChainCounts) {
  for (std::size_t n : {1u, 3u, 5u}) {
    PetriNet net = models::make_conflict_chain(n);
    ConflictInfo ci(net);
    EXPECT_EQ(ci.choice_component_count(), n);
    EXPECT_EQ(ci.maximal_conflict_free_sets().size(), std::size_t{1} << n);
  }
}

}  // namespace
}  // namespace gpo::petri
