#include "safety/safety.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "models/models.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::safety {
namespace {

using petri::Marking;
using petri::PetriNet;
using petri::PlaceId;

TEST(SafetyReduction, StructureOfReducedNet) {
  PetriNet net = models::make_fig7();
  SafetyProperty prop{{net.find_place("p4")}};
  ReducedNet reduced = reduce_safety_to_deadlock(net, prop);
  EXPECT_EQ(reduced.net.place_count(), net.place_count() + 2);
  EXPECT_EQ(reduced.net.transition_count(), net.transition_count() + 1);
  EXPECT_EQ(reduced.net.place(reduced.run_place).name, "__run");
  EXPECT_EQ(reduced.net.place(reduced.violation_place).name, "__violation");
  EXPECT_TRUE(reduced.net.initial_marking().test(reduced.run_place));
  EXPECT_FALSE(reduced.net.initial_marking().test(reduced.violation_place));
  // Every original transition self-loops on the run place.
  for (petri::TransitionId t = 0; t < net.transition_count(); ++t) {
    EXPECT_TRUE(reduced.net.transition(t).pre_bits.test(reduced.run_place));
    EXPECT_TRUE(reduced.net.transition(t).post_bits.test(reduced.run_place));
  }
  // The monitor consumes run without returning it.
  EXPECT_TRUE(
      reduced.net.transition(reduced.monitor).pre_bits.test(reduced.run_place));
  EXPECT_FALSE(reduced.net.transition(reduced.monitor)
                   .post_bits.test(reduced.run_place));
}

TEST(SafetyReduction, RejectsBadProperties) {
  PetriNet net = models::make_fig7();
  EXPECT_THROW((void)reduce_safety_to_deadlock(net, SafetyProperty{{}}),
               petri::NetError);
  EXPECT_THROW(
      (void)reduce_safety_to_deadlock(net, SafetyProperty{{99}}),
      petri::NetError);
}

TEST(SafetyReduction, ReducedNetDeadlocksIffViolationOrOriginalDeadlock) {
  // Hand check on fig7: p4 is reachable, so the reduced net must have a
  // deadlock marking __violation; and fig7's own terminal deadlocks persist.
  PetriNet net = models::make_fig7();
  SafetyProperty prop{{net.find_place("p4")}};
  ReducedNet reduced = reduce_safety_to_deadlock(net, prop);
  auto r = reach::ExplicitExplorer(reduced.net).explore();
  ASSERT_TRUE(r.deadlock_found);
  bool violation_deadlock = false, plain_deadlock = false;
  reach::ExplorerOptions opt;
  opt.build_graph = true;
  auto g = reach::ExplicitExplorer(reduced.net, opt).explore();
  (void)g;
  // Re-walk all deadlocks via a bad_state probe.
  reach::ExplorerOptions probe;
  probe.bad_state = [&](const Marking& m) {
    if (!reduced.net.is_deadlocked(m)) return false;
    (m.test(reduced.violation_place) ? violation_deadlock : plain_deadlock) =
        true;
    return false;
  };
  (void)reach::ExplicitExplorer(reduced.net, probe).explore();
  EXPECT_TRUE(violation_deadlock);
  EXPECT_TRUE(plain_deadlock);
}

class SafetyEngines : public ::testing::TestWithParam<Engine> {};

INSTANTIATE_TEST_SUITE_P(All, SafetyEngines,
                         ::testing::Values(Engine::kExplicit,
                                           Engine::kStubborn,
                                           Engine::kSymbolic, Engine::kGpo,
                                           Engine::kGpoBdd),
                         [](const auto& info) {
                           switch (info.param) {
                             case Engine::kExplicit: return "explicit";
                             case Engine::kStubborn: return "stubborn";
                             case Engine::kSymbolic: return "symbolic";
                             case Engine::kGpo: return "gpo";
                             default: return "gpo_bdd";
                           }
                         });

TEST_P(SafetyEngines, ReachableViolationIsFound) {
  // NSDP: "philosopher 0 and philosopher 1 both hold their left fork" is
  // reachable (it is on the way to the deadlock).
  PetriNet net = models::make_nsdp(3);
  SafetyProperty prop{
      {net.find_place("hasL_0"), net.find_place("hasL_1")}};
  SafetyOptions opt;
  opt.engine = GetParam();
  auto r = check_safety(net, prop, opt);
  EXPECT_TRUE(r.violated);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->size(), net.place_count());
  EXPECT_TRUE(r.witness->test(net.find_place("hasL_0")));
  EXPECT_TRUE(r.witness->test(net.find_place("hasL_1")));
}

TEST_P(SafetyEngines, UnreachableViolationIsRejected) {
  // The arbiter tree guarantees mutual exclusion: two clients in their
  // critical sections simultaneously is unreachable.
  PetriNet net = models::make_arbiter_tree(4);
  SafetyProperty prop{{net.find_place("crit_4"), net.find_place("crit_5")}};
  SafetyOptions opt;
  opt.engine = GetParam();
  opt.max_seconds = 60;
  auto r = check_safety(net, prop, opt);
  EXPECT_FALSE(r.limit_hit);
  EXPECT_FALSE(r.violated);
  EXPECT_FALSE(r.witness.has_value());
}

TEST_P(SafetyEngines, WriterExclusionHolds) {
  PetriNet net = models::make_readers_writers(4);
  SafetyProperty prop{
      {net.find_place("writing_0"), net.find_place("writing_1")}};
  SafetyOptions opt;
  opt.engine = GetParam();
  auto r = check_safety(net, prop, opt);
  EXPECT_FALSE(r.violated);
}

TEST_P(SafetyEngines, WriterReaderConflictIsCaughtWhenPresent) {
  // Reading and writing by the same process simultaneously is impossible;
  // reader 0 + reader 1 concurrently is possible.
  PetriNet net = models::make_readers_writers(4);
  SafetyOptions opt;
  opt.engine = GetParam();
  auto impossible = check_safety(
      net, SafetyProperty{{net.find_place("reading_0"),
                           net.find_place("writing_0")}},
      opt);
  EXPECT_FALSE(impossible.violated);
  auto possible = check_safety(
      net, SafetyProperty{{net.find_place("reading_0"),
                           net.find_place("reading_1")}},
      opt);
  EXPECT_TRUE(possible.violated);
}

TEST(SafetyProperty, RandomNetsAgreeWithGroundTruth) {
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3;
    p.transitions = 5 + seed % 10;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);

    // Property: machine 0 in state 1 while machine 1 in state 1.
    SafetyProperty prop{
        {net.find_place("m0s1"), net.find_place("m1s1")}};

    reach::ExplorerOptions eo;
    eo.max_states = 100000;
    eo.bad_state = [&](const Marking& m) {
      return std::all_of(prop.never_all_marked.begin(),
                         prop.never_all_marked.end(),
                         [&](PlaceId pl) { return m.test(pl); });
    };
    auto ground = reach::ExplicitExplorer(net, eo).explore();
    if (ground.limit_hit) continue;

    for (Engine e : {Engine::kStubborn, Engine::kSymbolic, Engine::kGpo,
                     Engine::kGpoBdd}) {
      SafetyOptions opt;
      opt.engine = e;
      opt.max_seconds = 30;
      auto r = check_safety(net, prop, opt);
      ASSERT_FALSE(r.limit_hit) << "seed=" << seed;
      EXPECT_EQ(r.violated, ground.bad_state_found)
          << "seed=" << seed << " engine=" << static_cast<int>(e);
      if (r.violated) {
        ASSERT_TRUE(r.witness.has_value());
        for (PlaceId pl : prop.never_all_marked)
          EXPECT_TRUE(r.witness->test(pl)) << "seed=" << seed;
      }
    }
  }
}

TEST(SafetyWitness, IsReachableInOriginalNet) {
  PetriNet net = models::make_nsdp(2);
  SafetyProperty prop{{net.find_place("hasL_0"), net.find_place("hasL_1")}};
  SafetyOptions opt;
  opt.engine = Engine::kGpoBdd;
  auto r = check_safety(net, prop, opt);
  ASSERT_TRUE(r.violated);
  // The stripped witness must be a classically reachable marking.
  reach::ExplorerOptions eo;
  eo.bad_state = [&](const Marking& m) { return m == *r.witness; };
  EXPECT_TRUE(reach::ExplicitExplorer(net, eo).explore().bad_state_found);
}

}  // namespace
}  // namespace gpo::safety
