// Line-protocol server: READY/JOB/VERDICT/BYE framing, malformed-input ERR
// replies, out-of-order verdict delivery by id, EOF-as-QUIT draining, and
// the live introspection verbs — STATS/JOBS/HEALTH must answer with valid
// one-line JSON *while a job is still racing* (the non-blocking proof).
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "service/portfolio.hpp"

namespace gpo::service {
namespace {

using namespace std::chrono_literals;

std::vector<std::string> run_server(const std::string& input,
                                    std::size_t pool_threads = 2) {
  std::istringstream in(input);
  std::ostringstream out;
  ServerOptions options;
  options.pool_threads = pool_threads;
  serve(in, out, options);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

/// id -> full VERDICT line.
std::map<int, std::string> verdicts(const std::vector<std::string>& lines) {
  std::map<int, std::string> out;
  for (const std::string& l : lines)
    if (l.rfind("VERDICT ", 0) == 0)
      out[std::stoi(l.substr(8))] = l;
  return out;
}

TEST(Server, ChecksYieldVerdictsAndBye) {
  auto lines = run_server(
      "CHECK fig7\n"
      "CHECK rw:3 engines=por,bdd expect=no-deadlock\n"
      "QUIT\n");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.front().rfind("READY 2 ", 0), 0u) << lines.front();
  // Every registered engine is advertised in the READY line.
  EXPECT_NE(lines.front().find("gpo-intern"), std::string::npos);

  auto v = verdicts(lines);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].find(" deadlock "), std::string::npos) << v[0];
  EXPECT_NE(v[0].find("winner="), std::string::npos);
  EXPECT_NE(v[1].find(" no-deadlock "), std::string::npos) << v[1];
  EXPECT_NE(v[1].find("cancel-latency="), std::string::npos);
  EXPECT_EQ(lines.back(), "BYE 2");
}

TEST(Server, JobAckAlwaysPrecedesItsVerdict) {
  auto lines = run_server("CHECK nosuch:9\nCHECK fig7\nQUIT\n");
  std::map<int, std::size_t> ack_at, verdict_at;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("JOB ", 0) == 0)
      ack_at[std::stoi(lines[i].substr(4))] = i;
    else if (lines[i].rfind("VERDICT ", 0) == 0)
      verdict_at[std::stoi(lines[i].substr(8))] = i;
  }
  ASSERT_EQ(ack_at.size(), 2u);
  ASSERT_EQ(verdict_at.size(), 2u);
  for (const auto& [id, pos] : ack_at)
    EXPECT_LT(pos, verdict_at.at(id)) << "JOB " << id << " after its VERDICT";
  // The bad model is an error verdict, not a dropped request.
  EXPECT_NE(verdicts(lines)[0].find(" error "), std::string::npos);
}

TEST(Server, MalformedLinesGetErrAndDoNotKillTheSession) {
  auto lines = run_server(
      "PING\n"
      "CHECK fig7 engines=smt\n"
      "CHECK fig7\n"
      "QUIT\n");
  std::size_t errs = 0;
  for (const std::string& l : lines)
    if (l.rfind("ERR", 0) == 0) ++errs;
  EXPECT_EQ(errs, 2u) << "unknown verb + unknown engine";
  ASSERT_EQ(verdicts(lines).size(), 1u);
  EXPECT_EQ(lines.back(), "BYE 1");
}

TEST(Server, EofDrainsLikeQuit) {
  auto lines = run_server("CHECK fig5\n");  // no QUIT: EOF ends the session
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "BYE 1");
  EXPECT_EQ(verdicts(lines).size(), 1u);
}

TEST(Server, EmptySessionSaysReadyAndBye) {
  auto lines = run_server("QUIT\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("READY", 0), 0u);
  EXPECT_EQ(lines[1], "BYE 0");
}

/// Extracts the JSON payload of the first reply line with `prefix`
/// ("STATS " / "JOBS " / "HEALTH ") and parses it.
obs::json::Value reply_json(const std::vector<std::string>& lines,
                            const std::string& prefix) {
  for (const std::string& l : lines)
    if (l.rfind(prefix, 0) == 0)
      return obs::json::Value::parse(l.substr(prefix.size()));
  ADD_FAILURE() << "no reply line starts with '" << prefix << "'";
  return obs::json::Value();
}

TEST(Server, StatsJobsHealthRepliesAreOneLineJson) {
  auto lines = run_server(
      "CHECK fig7\n"
      "STATS\n"
      "JOBS\n"
      "HEALTH\n"
      "QUIT\n");

  obs::json::Value stats = reply_json(lines, "STATS ");
  ASSERT_TRUE(stats.is_object());
  EXPECT_GE(stats.find("uptime_seconds")->as_number(), 0.0);
  EXPECT_EQ(stats.find("jobs")->find("submitted")->as_int(), 1);
  EXPECT_GT(stats.find("pool")->find("threads")->as_int(), 0);
  EXPECT_GT(stats.find("memory")->find("peak_rss_bytes")->as_int(), 0);
  // The three scheduler histograms are always registered.
  const obs::json::Value* hists = stats.find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->find("service.job_seconds"), nullptr);
  EXPECT_NE(hists->find("service.queue_wait_seconds"), nullptr);

  obs::json::Value jobs = reply_json(lines, "JOBS ");
  ASSERT_TRUE(jobs.is_array());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs.items()[0].find("model")->as_string(), "fig7");
  EXPECT_EQ(jobs.items()[0].find("id")->as_int(), 0);

  obs::json::Value health = reply_json(lines, "HEALTH ");
  EXPECT_EQ(health.find("status")->as_string(), "ok");
  EXPECT_NE(health.find("jobs_in_flight"), nullptr);
}

/// Input streambuf whose underflow blocks until the test pushes more bytes:
/// lets the test interleave protocol lines with assertions about the
/// server's state between them.
class BlockingFeed : public std::streambuf {
 public:
  void push(const std::string& s) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      data_ += s;
    }
    cv_.notify_all();
  }
  void finish() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

 protected:
  int_type underflow() override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pos_ < data_.size() || done_; });
    if (pos_ >= data_.size()) return traits_type::eof();
    ch_ = data_[pos_++];
    setg(&ch_, &ch_, &ch_ + 1);
    return traits_type::to_int_type(static_cast<unsigned char>(ch_));
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string data_;
  std::size_t pos_ = 0;
  bool done_ = false;
  char ch_ = 0;
};

/// Output streambuf collecting complete lines under a mutex; the test can
/// block until a line with a given prefix arrives.
class LineCollector : public std::streambuf {
 public:
  /// Returns the first line starting with `prefix`, waiting up to 10 s
  /// ("" on timeout).
  std::string wait_for(const std::string& prefix) {
    std::unique_lock<std::mutex> lock(mu_);
    std::string found;
    cv_.wait_for(lock, 10s, [&] {
      for (const std::string& l : lines_)
        if (l.rfind(prefix, 0) == 0) {
          found = l;
          return true;
        }
      return false;
    });
    return found;
  }

 protected:
  int_type overflow(int_type c) override {
    if (traits_type::eq_int_type(c, traits_type::eof()))
      return traits_type::not_eof(c);
    std::lock_guard<std::mutex> lock(mu_);
    if (traits_type::to_char_type(c) == '\n') {
      lines_.push_back(std::move(cur_));
      cur_.clear();
      cv_.notify_all();
    } else {
      cur_ += traits_type::to_char_type(c);
    }
    return c;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string cur_;
  std::vector<std::string> lines_;
};

/// THE non-blocking proof of the protocol: STATS/JOBS/HEALTH replies must
/// arrive while a job is verifiably mid-race (its only engine is gate-
/// blocked), i.e. the introspection path never waits on running racers.
TEST(Server, IntrospectionAnswersWhileAJobIsRacing) {
  std::atomic<bool> engine_started{false};
  std::atomic<bool> release{false};
  EngineRegistry engines;
  // Registered under a real engine name: CHECK's manifest grammar only
  // accepts known engines, and ServerOptions::registry swaps the runner.
  engines.add("gpo", [&](const petri::PetriNet&, const RunLimits&,
                         const util::CancelToken*, obs::MetricsRegistry*) {
    engine_started.store(true);
    auto deadline = std::chrono::steady_clock::now() + 10s;
    while (!release.load() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(200us);
    EngineOutcome out;
    out.verdict = "deadlock";
    out.deadlock = true;
    out.conclusive = true;
    return out;
  });

  BlockingFeed feed;
  LineCollector sink;
  std::istream in(&feed);
  std::ostream out(&sink);
  ServerOptions options;
  options.registry = &engines;
  options.pool_threads = 2;
  std::thread server([&] { serve(in, out, options); });

  feed.push("CHECK fig7 engines=gpo\n");
  ASSERT_FALSE(sink.wait_for("JOB 0").empty());
  auto started_deadline = std::chrono::steady_clock::now() + 10s;
  while (!engine_started.load() &&
         std::chrono::steady_clock::now() < started_deadline)
    std::this_thread::sleep_for(200us);
  ASSERT_TRUE(engine_started.load());

  // The job is now provably mid-race (its engine is spinning on the gate):
  // every introspection verb must still answer.
  feed.push("STATS\n");
  std::string stats_line = sink.wait_for("STATS ");
  ASSERT_FALSE(stats_line.empty()) << "STATS blocked behind a running job";
  obs::json::Value stats = obs::json::Value::parse(stats_line.substr(6));
  EXPECT_EQ(stats.find("jobs")->find("submitted")->as_int(), 1);
  EXPECT_EQ(stats.find("jobs")->find("completed")->as_int(), 0);

  feed.push("JOBS\n");
  std::string jobs_line = sink.wait_for("JOBS ");
  ASSERT_FALSE(jobs_line.empty());
  obs::json::Value jobs = obs::json::Value::parse(jobs_line.substr(5));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs.items()[0].find("state")->as_string(), "running");
  EXPECT_EQ(jobs.items()[0].find("verdict"), nullptr) << "not decided yet";

  feed.push("HEALTH\n");
  std::string health_line = sink.wait_for("HEALTH ");
  ASSERT_FALSE(health_line.empty());
  obs::json::Value health = obs::json::Value::parse(health_line.substr(7));
  EXPECT_EQ(health.find("status")->as_string(), "ok");
  EXPECT_EQ(health.find("jobs_in_flight")->as_int(), 1);

  // Release the race; the verdict streams out and the session drains.
  release.store(true);
  ASSERT_FALSE(sink.wait_for("VERDICT 0 deadlock").empty());
  feed.push("QUIT\n");
  feed.finish();
  server.join();
  EXPECT_FALSE(sink.wait_for("BYE 1").empty());

  // After completion JOBS reports would say "done" — verified via a fresh
  // scripted session in StatsJobsHealthRepliesAreOneLineJson; here the
  // mid-race states were the point.
}

}  // namespace
}  // namespace gpo::service
