// Line-protocol server: READY/JOB/VERDICT/BYE framing, malformed-input ERR
// replies, out-of-order verdict delivery by id, and EOF-as-QUIT draining.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace gpo::service {
namespace {

std::vector<std::string> run_server(const std::string& input,
                                    std::size_t pool_threads = 2) {
  std::istringstream in(input);
  std::ostringstream out;
  ServerOptions options;
  options.pool_threads = pool_threads;
  serve(in, out, options);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

/// id -> full VERDICT line.
std::map<int, std::string> verdicts(const std::vector<std::string>& lines) {
  std::map<int, std::string> out;
  for (const std::string& l : lines)
    if (l.rfind("VERDICT ", 0) == 0)
      out[std::stoi(l.substr(8))] = l;
  return out;
}

TEST(Server, ChecksYieldVerdictsAndBye) {
  auto lines = run_server(
      "CHECK fig7\n"
      "CHECK rw:3 engines=por,bdd expect=no-deadlock\n"
      "QUIT\n");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.front().rfind("READY 2 ", 0), 0u) << lines.front();
  // Every registered engine is advertised in the READY line.
  EXPECT_NE(lines.front().find("gpo-intern"), std::string::npos);

  auto v = verdicts(lines);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].find(" deadlock "), std::string::npos) << v[0];
  EXPECT_NE(v[0].find("winner="), std::string::npos);
  EXPECT_NE(v[1].find(" no-deadlock "), std::string::npos) << v[1];
  EXPECT_NE(v[1].find("cancel-latency="), std::string::npos);
  EXPECT_EQ(lines.back(), "BYE 2");
}

TEST(Server, JobAckAlwaysPrecedesItsVerdict) {
  auto lines = run_server("CHECK nosuch:9\nCHECK fig7\nQUIT\n");
  std::map<int, std::size_t> ack_at, verdict_at;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("JOB ", 0) == 0)
      ack_at[std::stoi(lines[i].substr(4))] = i;
    else if (lines[i].rfind("VERDICT ", 0) == 0)
      verdict_at[std::stoi(lines[i].substr(8))] = i;
  }
  ASSERT_EQ(ack_at.size(), 2u);
  ASSERT_EQ(verdict_at.size(), 2u);
  for (const auto& [id, pos] : ack_at)
    EXPECT_LT(pos, verdict_at.at(id)) << "JOB " << id << " after its VERDICT";
  // The bad model is an error verdict, not a dropped request.
  EXPECT_NE(verdicts(lines)[0].find(" error "), std::string::npos);
}

TEST(Server, MalformedLinesGetErrAndDoNotKillTheSession) {
  auto lines = run_server(
      "PING\n"
      "CHECK fig7 engines=smt\n"
      "CHECK fig7\n"
      "QUIT\n");
  std::size_t errs = 0;
  for (const std::string& l : lines)
    if (l.rfind("ERR", 0) == 0) ++errs;
  EXPECT_EQ(errs, 2u) << "unknown verb + unknown engine";
  ASSERT_EQ(verdicts(lines).size(), 1u);
  EXPECT_EQ(lines.back(), "BYE 1");
}

TEST(Server, EofDrainsLikeQuit) {
  auto lines = run_server("CHECK fig5\n");  // no QUIT: EOF ends the session
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "BYE 1");
  EXPECT_EQ(verdicts(lines).size(), 1u);
}

TEST(Server, EmptySessionSaysReadyAndBye) {
  auto lines = run_server("QUIT\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("READY", 0), 0u);
  EXPECT_EQ(lines[1], "BYE 0");
}

}  // namespace
}  // namespace gpo::service
