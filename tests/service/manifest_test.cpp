// Manifest grammar: defaults, every key, comments, and the hard-error
// contract (a typo must not silently shrink a verification matrix).
#include "service/manifest.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace gpo::service {
namespace {

TEST(Manifest, ModelOnlyLineGetsDefaults) {
  JobSpec job = parse_job_line("nsdp:8");
  EXPECT_EQ(job.model, "nsdp:8");
  EXPECT_TRUE(job.engines.empty());  // scheduler substitutes the default set
  EXPECT_DOUBLE_EQ(job.max_seconds, kDefaultJobSeconds);
  EXPECT_EQ(job.max_states, std::numeric_limits<std::size_t>::max());
  EXPECT_TRUE(job.expect.empty());
}

TEST(Manifest, AllKeysParse) {
  JobSpec job = parse_job_line(
      "examples/nets/fig7.net engines=gpo-intern,por max-seconds=2.5 "
      "max-states=1000 family-store=zdd expect=deadlock",
      7);
  EXPECT_EQ(job.model, "examples/nets/fig7.net");
  ASSERT_EQ(job.engines.size(), 2u);
  EXPECT_EQ(job.engines[0], "gpo-intern");
  EXPECT_EQ(job.engines[1], "por");
  EXPECT_DOUBLE_EQ(job.max_seconds, 2.5);
  EXPECT_EQ(job.max_states, 1000u);
  EXPECT_EQ(job.family_store, "zdd");
  EXPECT_EQ(job.expect, "deadlock");
  EXPECT_EQ(job.line, 7u);
}

TEST(Manifest, FamilyStoreDefaultsEmptyAndValidates) {
  EXPECT_TRUE(parse_job_line("nsdp:8").family_store.empty());
  EXPECT_EQ(parse_job_line("nsdp:8 family-store=explicit").family_store,
            "explicit");
  EXPECT_EQ(parse_job_line("nsdp:8 family-store=zdd").family_store, "zdd");
  EXPECT_THROW((void)parse_job_line("nsdp:8 family-store=bdd"), ManifestError);
  EXPECT_THROW((void)parse_job_line("nsdp:8 family-store="), ManifestError);
}

TEST(Manifest, CommentsAndBlankLinesAreSkipped) {
  std::istringstream in(
      "# full-line comment\n"
      "\n"
      "fig7 expect=deadlock   # trailing comment\n"
      "   \n"
      "rw:4 engines=por\n");
  Manifest m = parse_manifest(in);
  ASSERT_EQ(m.jobs.size(), 2u);
  EXPECT_EQ(m.jobs[0].model, "fig7");
  EXPECT_EQ(m.jobs[0].expect, "deadlock");
  EXPECT_EQ(m.jobs[0].line, 3u);
  EXPECT_EQ(m.jobs[1].model, "rw:4");
  EXPECT_EQ(m.jobs[1].line, 5u);
}

TEST(Manifest, DefaultPortfolioIsKnownAndDiverse) {
  const auto& portfolio = default_portfolio();
  ASSERT_GE(portfolio.size(), 3u);
  for (const std::string& name : portfolio)
    EXPECT_TRUE(is_known_engine(name)) << name;
  EXPECT_FALSE(is_known_engine("smt"));
}

TEST(Manifest, MalformedLinesAreHardErrors) {
  EXPECT_THROW((void)parse_job_line("fig7 engines="), ManifestError);
  EXPECT_THROW((void)parse_job_line("fig7 engines=por,smt"), ManifestError);
  EXPECT_THROW((void)parse_job_line("fig7 max-seconds=0"), ManifestError);
  EXPECT_THROW((void)parse_job_line("fig7 max-seconds=abc"), ManifestError);
  EXPECT_THROW((void)parse_job_line("fig7 max-states=0"), ManifestError);
  EXPECT_THROW((void)parse_job_line("fig7 expect=maybe"), ManifestError);
  EXPECT_THROW((void)parse_job_line("fig7 budget=3"), ManifestError);
  EXPECT_THROW((void)parse_job_line("   "), ManifestError);
}

TEST(Manifest, ErrorsCarryTheLineNumber) {
  std::istringstream in("fig7\nrw:4 engines=nosuch\n");
  try {
    (void)parse_manifest(in);
    FAIL() << "expected ManifestError";
  } catch (const ManifestError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Manifest, MissingFileThrows) {
  EXPECT_THROW((void)parse_manifest_file("/nonexistent/jobs.manifest"),
               ManifestError);
}

}  // namespace
}  // namespace gpo::service
