// Scheduler semantics: first-to-answer cancellation (a deliberately slow
// racer must lose, observe the fired token, and be reported cancelled with a
// latency), verdict/counterexample propagation from the winner, error
// isolation, and the determinism cross-check — batch verdicts equal
// single-engine CLI verdicts for every manifest entry.
#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "models/models.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "service/manifest.hpp"
#include "service/portfolio.hpp"

namespace gpo::service {
namespace {

using namespace std::chrono_literals;

/// Conclusive no-deadlock; optionally holds its answer until `gate` turns
/// true (with a 10s safety valve), so tests can force the loser to be
/// genuinely mid-run when the race is decided.
EngineRunner fast_engine(std::vector<petri::TransitionId> cex = {},
                         std::atomic<bool>* gate = nullptr) {
  return [cex, gate](const petri::PetriNet&, const RunLimits&,
                     const util::CancelToken*, obs::MetricsRegistry*) {
    auto deadline = std::chrono::steady_clock::now() + 10s;
    while (gate != nullptr && !gate->load() &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(200us);
    EngineOutcome out;
    out.verdict = "no-deadlock";
    out.conclusive = true;
    out.counterexample = cex;
    return out;
  };
}

/// Spins until the job token fires (or a 10s safety valve), then reports
/// itself cancelled — the shape every real engine's main loop implements.
/// Sets `started` on loop entry so a gated fast engine can wait for it.
EngineRunner slow_engine(std::atomic<bool>* saw_cancel = nullptr,
                         std::atomic<bool>* started = nullptr) {
  return [saw_cancel, started](const petri::PetriNet&, const RunLimits&,
                               const util::CancelToken* cancel,
                               obs::MetricsRegistry*) {
    if (started != nullptr) started->store(true);
    EngineOutcome out;
    auto deadline = std::chrono::steady_clock::now() + 10s;
    while (!util::cancel_requested(cancel) &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(200us);
    out.aborted = true;
    out.cancelled = util::cancel_requested(cancel);
    out.verdict = out.cancelled ? "cancelled" : "aborted";
    if (saw_cancel != nullptr && out.cancelled) saw_cancel->store(true);
    return out;
  };
}

JobSpec spec_for(const std::string& model,
                 std::vector<std::string> engines = {}) {
  JobSpec spec;
  spec.model = model;
  spec.engines = std::move(engines);
  return spec;
}

TEST(Scheduler, SlowEngineLosesTheRaceAndIsCancelled) {
  std::atomic<bool> saw_cancel{false};
  std::atomic<bool> slow_running{false};
  EngineRegistry reg;
  // The fast racer answers only once the slow one is verifiably inside its
  // cancel-poll loop, so the token genuinely interrupts a running engine.
  reg.add("fast", fast_engine({1, 2}, &slow_running));
  reg.add("slow", slow_engine(&saw_cancel, &slow_running));

  SchedulerOptions opts;
  opts.registry = &reg;
  opts.pool_threads = 2;  // both racers genuinely run concurrently
  PortfolioScheduler scheduler(opts);
  std::size_t id = scheduler.submit(spec_for("fig7", {"slow", "fast"}));
  JobResult r = scheduler.wait(id);

  EXPECT_EQ(r.verdict, "no-deadlock");
  EXPECT_EQ(r.winner, "fast");
  EXPECT_TRUE(saw_cancel.load()) << "the loser never observed the token";
  ASSERT_EQ(r.engines.size(), 2u);
  // Outcomes stay in the job's engine-list order regardless of finish order.
  EXPECT_EQ(r.engines[0].engine, "slow");
  EXPECT_EQ(r.engines[1].engine, "fast");
  EXPECT_TRUE(r.engines[0].cancelled);
  EXPECT_EQ(r.engines[0].verdict, "cancelled");
  EXPECT_FALSE(r.engines[1].cancelled);
  EXPECT_GT(r.cancel_latency_seconds, 0.0);
  EXPECT_LT(r.cancel_latency_seconds, 5.0) << "token poll took implausibly long";
  // The winner's counterexample becomes the job's.
  ASSERT_EQ(r.counterexample.size(), 2u);
  EXPECT_EQ(r.counterexample[0], 1u);
}

TEST(Scheduler, SingleThreadPoolSkipsRacersAfterTheDecision) {
  EngineRegistry reg;
  reg.add("fast", fast_engine());
  reg.add("slow", slow_engine());

  SchedulerOptions opts;
  opts.registry = &reg;
  opts.pool_threads = 1;  // racers run one after another
  PortfolioScheduler scheduler(opts);
  std::size_t id = scheduler.submit(spec_for("fig7", {"fast", "slow"}));
  JobResult r = scheduler.wait(id);

  EXPECT_EQ(r.winner, "fast");
  ASSERT_EQ(r.engines.size(), 2u);
  // The slow racer was never started: the decided race short-circuits it.
  EXPECT_TRUE(r.engines[1].cancelled);
  EXPECT_EQ(r.engines[1].verdict, "cancelled");
  EXPECT_LT(r.seconds, 5.0);
}

TEST(Scheduler, AllRacersAbortingYieldsUndecided) {
  EngineRegistry reg;
  reg.add("giveup", [](const petri::PetriNet&, const RunLimits&,
                       const util::CancelToken*, obs::MetricsRegistry*) {
    EngineOutcome out;
    out.aborted = true;
    return out;  // verdict "aborted", not conclusive
  });
  SchedulerOptions opts;
  opts.registry = &reg;
  opts.pool_threads = 2;
  PortfolioScheduler scheduler(opts);
  JobSpec spec = spec_for("fig7", {"giveup"});
  spec.expect = "deadlock";
  JobResult r = scheduler.wait(scheduler.submit(spec));
  EXPECT_EQ(r.verdict, "undecided");
  EXPECT_TRUE(r.winner.empty());
  EXPECT_FALSE(r.expect_matched);
  EXPECT_DOUBLE_EQ(r.cancel_latency_seconds, 0.0);
}

TEST(Scheduler, ThrowingEngineIsAFailedOutcomeNotACrash) {
  EngineRegistry reg;
  reg.add("boom", [](const petri::PetriNet&, const RunLimits&,
                     const util::CancelToken*, obs::MetricsRegistry*)
              -> EngineOutcome {
    throw std::runtime_error("kaboom");
  });
  reg.add("fast", fast_engine());
  SchedulerOptions opts;
  opts.registry = &reg;
  opts.pool_threads = 2;
  PortfolioScheduler scheduler(opts);
  // Alone, the throwing engine yields a failed outcome and an undecided job.
  JobResult solo = scheduler.wait(scheduler.submit(spec_for("fig7", {"boom"})));
  EXPECT_EQ(solo.verdict, "undecided");
  ASSERT_EQ(solo.engines.size(), 1u);
  EXPECT_EQ(solo.engines[0].verdict, "failed");
  EXPECT_EQ(solo.engines[0].error, "kaboom");
  // Raced, the crash cannot take the job down with it: the healthy racer
  // still decides. (Whether boom ran or was skipped depends on timing, so
  // only the job-level outcome is asserted.)
  JobResult r =
      scheduler.wait(scheduler.submit(spec_for("fig7", {"boom", "fast"})));
  EXPECT_EQ(r.verdict, "no-deadlock");
  EXPECT_EQ(r.winner, "fast");
}

TEST(Scheduler, BadModelAndUnknownEngineAreErrorJobsNotThrows) {
  PortfolioScheduler scheduler{SchedulerOptions{}};
  std::size_t bad_model = scheduler.submit(spec_for("nosuch:3"));
  std::size_t bad_engine = scheduler.submit(spec_for("fig7", {"smt"}));
  JobResult m = scheduler.wait(bad_model);
  EXPECT_EQ(m.verdict, "error");
  EXPECT_NE(m.error.find("nosuch:3"), std::string::npos) << m.error;
  JobResult e = scheduler.wait(bad_engine);
  EXPECT_EQ(e.verdict, "error");
  EXPECT_NE(e.error.find("smt"), std::string::npos) << e.error;
}

TEST(Scheduler, OnCompleteFiresOncePerJob) {
  std::atomic<int> completions{0};
  SchedulerOptions opts;
  EngineRegistry reg;
  reg.add("fast", fast_engine());
  opts.registry = &reg;
  opts.pool_threads = 2;
  opts.on_complete = [&](const JobResult&) { completions.fetch_add(1); };
  {
    PortfolioScheduler scheduler(std::move(opts));
    scheduler.submit(spec_for("fig7", {"fast"}));
    scheduler.submit(spec_for("nosuch:1"));  // error jobs also complete
    scheduler.wait_all();
  }
  EXPECT_EQ(completions.load(), 2);
}

TEST(Scheduler, PerJobMetricsAreIsolated) {
  SchedulerOptions opts;
  opts.pool_threads = 2;
  PortfolioScheduler scheduler(std::move(opts));
  std::size_t a = scheduler.submit(spec_for("fig7", {"por"}));
  std::size_t b = scheduler.submit(spec_for("rw:3", {"por"}));
  JobResult ra = scheduler.wait(a);
  JobResult rb = scheduler.wait(b);
  ASSERT_NE(ra.metrics, nullptr);
  ASSERT_NE(rb.metrics, nullptr);
  EXPECT_NE(ra.metrics.get(), rb.metrics.get());
  // Each registry only saw its own job's run.
  EXPECT_FALSE(ra.metrics->snapshot("engine.por.").empty());
}

/// The scheduler's own telemetry scope and live-introspection surface: the
/// latency histograms count every job, a mid-run cancellation lands in
/// cancel_latency_seconds, and queue_depth/jobs_brief/completed agree with
/// reality once the batch drains.
TEST(Scheduler, ServiceMetricsHistogramsAndIntrospection) {
  std::atomic<bool> slow_running{false};
  EngineRegistry reg;
  reg.add("fast", fast_engine({}, &slow_running));
  reg.add("slow", slow_engine(nullptr, &slow_running));

  SchedulerOptions opts;
  opts.registry = &reg;
  opts.pool_threads = 2;
  PortfolioScheduler scheduler(std::move(opts));
  EXPECT_GE(scheduler.uptime_seconds(), 0.0);

  // Job 0 forces a genuine mid-run cancellation (the gated-fast pattern);
  // job 1 is a plain single-racer win.
  std::size_t a = scheduler.submit(spec_for("fig7", {"slow", "fast"}));
  std::size_t b = scheduler.submit(spec_for("fig7", {"fast"}));
  (void)scheduler.wait(a);
  (void)scheduler.wait(b);

  obs::MetricsRegistry& sm = scheduler.service_metrics();
  EXPECT_EQ(sm.counter("service.jobs.submitted").value(), 2u);
  EXPECT_EQ(sm.counter("service.jobs.completed").value(), 2u);
  EXPECT_DOUBLE_EQ(sm.gauge("service.jobs.in_flight").value(), 0.0);
  EXPECT_DOUBLE_EQ(sm.gauge("service.queue.depth").value(), 0.0);

  // One histogram sample per job; every queue wait was measured; the
  // cancelled racer contributed exactly one cancel-latency sample.
  EXPECT_EQ(sm.histogram("service.job_seconds").count(), 2u);
  EXPECT_GE(sm.histogram("service.queue_wait_seconds").count(), 2u);
  EXPECT_EQ(sm.histogram("service.cancel_latency_seconds").count(), 1u);
  auto cancel = sm.histogram("service.cancel_latency_seconds").snapshot();
  EXPECT_GT(cancel.max, 0u);
  // Lazily-registered per-engine slots: the fast engine won both jobs.
  EXPECT_EQ(sm.counter("service.engine.fast.wins").value(), 2u);
  EXPECT_EQ(sm.counter("service.engine.slow.cancelled").value(), 1u);
  EXPECT_EQ(sm.histogram("service.engine.fast.seconds").count(), 2u);

  EXPECT_EQ(scheduler.queue_depth(), 0u);
  EXPECT_EQ(scheduler.completed(), 2u);
  auto briefs = scheduler.jobs_brief();
  ASSERT_EQ(briefs.size(), 2u);
  for (const auto& brief : briefs) {
    EXPECT_EQ(brief.state, "done");
    EXPECT_EQ(brief.verdict, "no-deadlock");
    EXPECT_EQ(brief.winner, "fast");
    EXPECT_GE(brief.seconds, 0.0);
  }
  EXPECT_EQ(briefs[0].id, 0u);
  EXPECT_EQ(briefs[1].id, 1u);
}

/// The scheduler feeds the structured event log the full job lifecycle, in
/// causal order per job.
TEST(Scheduler, EventLogReceivesJobLifecycle) {
  std::ostringstream sink;
  {
    obs::EventLog events(sink);
    std::atomic<bool> slow_running{false};
    EngineRegistry reg;
    reg.add("fast", fast_engine({}, &slow_running));
    reg.add("slow", slow_engine(nullptr, &slow_running));
    SchedulerOptions opts;
    opts.registry = &reg;
    opts.pool_threads = 2;
    opts.events = &events;
    PortfolioScheduler scheduler(std::move(opts));
    (void)scheduler.wait(scheduler.submit(spec_for("fig7", {"slow", "fast"})));
    events.close();
  }
  std::vector<std::string> order;
  std::istringstream lines(sink.str());
  std::string line;
  std::int64_t last_ts = -1;
  while (std::getline(lines, line)) {
    obs::json::Value rec = obs::json::Value::parse(line);
    order.push_back(rec.find("event")->as_string());
    EXPECT_EQ(rec.find("job")->as_int(), 0);
    const std::int64_t ts = rec.find("ts_us")->as_int();
    EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts;
  }
  // Assert only the orderings the scheduler guarantees: "submitted" leads,
  // "finished" (the last completer) trails, and the first answer cannot
  // precede the job starting. "first-answer" vs the loser's "cancelled" is
  // a genuine race between two worker threads — not asserted.
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), "submitted");
  EXPECT_EQ(order.back(), "finished");
  auto index_of = [&](const std::string& e) {
    return std::find(order.begin(), order.end(), e) - order.begin();
  };
  EXPECT_EQ(std::count(order.begin(), order.end(), "racer-start"), 2);
  EXPECT_EQ(std::count(order.begin(), order.end(), "cancelled"), 1);
  EXPECT_EQ(std::count(order.begin(), order.end(), "first-answer"), 1);
  EXPECT_LT(index_of("started"), index_of("first-answer"));
}

/// The determinism cross-check of the acceptance criteria: for every
/// manifest entry, the batch portfolio verdict equals the verdict of each
/// single-engine run on the same model (racing changes who answers first,
/// never what the answer is).
TEST(Scheduler, BatchVerdictsMatchSingleEngineRuns) {
  const char* manifest_text =
      "fig3 expect=deadlock\n"
      "fig5 expect=deadlock\n"
      "fig7 expect=deadlock\n"
      "nsdp:3 expect=deadlock\n"
      "chain:4 expect=deadlock\n"
      "diamond:3 expect=deadlock\n"
      "over:2 expect=deadlock\n"
      "rw:3 expect=no-deadlock\n"
      "asat:2 expect=no-deadlock\n";
  std::istringstream in(manifest_text);
  Manifest manifest = parse_manifest(in);

  SchedulerOptions opts;
  opts.pool_threads = 4;
  std::vector<JobResult> results = run_batch(manifest, std::move(opts));
  ASSERT_EQ(results.size(), manifest.jobs.size());

  const EngineRegistry& reg = default_engine_registry();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    EXPECT_EQ(r.verdict, manifest.jobs[i].expect) << r.model;
    EXPECT_TRUE(r.expect_matched) << r.model;
    EXPECT_FALSE(r.winner.empty()) << r.model;
    // Cross-check against every default-portfolio engine run standalone.
    for (const std::string& name : default_portfolio()) {
      auto net = models::make_by_spec(r.model);
      ASSERT_TRUE(net.has_value()) << r.model;
      EngineOutcome solo = (*reg.find(name))(*net, RunLimits{}, nullptr,
                                             nullptr);
      EXPECT_TRUE(solo.conclusive) << name << " on " << r.model;
      EXPECT_EQ(solo.verdict, r.verdict) << name << " on " << r.model;
    }
  }
}

TEST(Scheduler, BatchReportValidatesAgainstTheCheckedInSchema) {
  std::istringstream in("fig7 expect=deadlock\nrw:3 engines=por,bdd\n");
  Manifest manifest = parse_manifest(in);
  SchedulerOptions opts;
  opts.pool_threads = 2;
  std::vector<JobResult> results = run_batch(manifest, std::move(opts));

  obs::RunReport report("julie batch");
  report.set_command("julie batch jobs.manifest");
  add_jobs_to_report(report, results);
  obs::json::Value doc = report.build(nullptr, nullptr);

  std::ifstream schema_in(std::string(GPO_REPO_ROOT) +
                          "/bench/report_schema.json");
  ASSERT_TRUE(schema_in.is_open());
  std::ostringstream ss;
  ss << schema_in.rdbuf();
  obs::json::Value schema = obs::json::Value::parse(ss.str());
  std::string error;
  EXPECT_TRUE(obs::json::validate(schema, doc, &error)) << error;

  const obs::json::Value* jobs = doc.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->items().size(), 2u);
  const obs::json::Value& job0 = jobs->items()[0];
  EXPECT_EQ(job0.find("verdict")->as_string(), "deadlock");
  EXPECT_NE(job0.find("winner"), nullptr);
  EXPECT_NE(job0.find("cancel_latency_seconds"), nullptr);
  EXPECT_EQ(job0.find("expect")->as_string(), "deadlock");
  // Per-engine entries keep their own timing and cancellation flags.
  const obs::json::Value& engines = *job0.find("engines");
  ASSERT_GE(engines.items().size(), 1u);
  for (const auto& er : engines.items()) {
    EXPECT_NE(er.find("seconds"), nullptr);
    EXPECT_NE(er.find("cancelled"), nullptr);
  }
}

}  // namespace
}  // namespace gpo::service
