// Engine runners as racers: every registry engine must (a) produce the
// correct conclusive verdict when left alone and (b) honour a fired
// CancelToken by returning promptly as cancelled — the property first-to-
// answer cancellation is built on.
#include "service/portfolio.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "obs/metrics.hpp"
#include "util/cancel_token.hpp"

namespace gpo::service {
namespace {

TEST(Portfolio, RegistryHasTheSevenEngines) {
  const EngineRegistry& reg = default_engine_registry();
  for (const char* name :
       {"full", "por", "bdd", "gpo", "gpo-intern", "gpo-bdd", "unfold"})
    EXPECT_NE(reg.find(name), nullptr) << name;
  EXPECT_EQ(reg.find("smt"), nullptr);
  EXPECT_EQ(reg.names().size(), 7u);
}

TEST(Portfolio, AddReplacesExistingEntry) {
  EngineRegistry reg;
  reg.add("e", [](const petri::PetriNet&, const RunLimits&,
                  const util::CancelToken*, obs::MetricsRegistry*) {
    return EngineOutcome{};
  });
  EngineOutcome marked;
  marked.verdict = "deadlock";
  reg.add("e", [marked](const petri::PetriNet&, const RunLimits&,
                        const util::CancelToken*, obs::MetricsRegistry*) {
    return marked;
  });
  ASSERT_EQ(reg.names().size(), 1u);
  EngineOutcome out = (*reg.find("e"))(models::make_fig7(), RunLimits{},
                                       nullptr, nullptr);
  EXPECT_EQ(out.verdict, "deadlock");
}

TEST(Portfolio, EveryEngineAgreesOnDeadlockAndDeadlockFreedom) {
  const EngineRegistry& reg = default_engine_registry();
  auto deadlocking = models::make_fig7();       // 5 states, deadlocks
  auto live = models::make_readers_writers(3);  // cyclic, deadlock-free
  for (const std::string& name : reg.names()) {
    const EngineRunner& runner = *reg.find(name);
    EngineOutcome dead = runner(deadlocking, RunLimits{}, nullptr, nullptr);
    EXPECT_TRUE(dead.conclusive) << name;
    EXPECT_EQ(dead.verdict, "deadlock") << name;
    EXPECT_TRUE(dead.deadlock) << name;
    EngineOutcome ok = runner(live, RunLimits{}, nullptr, nullptr);
    EXPECT_TRUE(ok.conclusive) << name;
    EXPECT_EQ(ok.verdict, "no-deadlock") << name;
    EXPECT_FALSE(ok.deadlock) << name;
  }
}

TEST(Portfolio, EveryEngineHonoursAFiredCancelToken) {
  const EngineRegistry& reg = default_engine_registry();
  auto net = models::make_nsdp(4);
  util::CancelToken token;
  token.cancel();  // fired before the run: first main-loop poll must stop it
  for (const std::string& name : reg.names()) {
    EngineOutcome out = (*reg.find(name))(net, RunLimits{}, &token, nullptr);
    EXPECT_FALSE(out.conclusive) << name;
    EXPECT_TRUE(out.aborted) << name;
    EXPECT_TRUE(out.cancelled) << name;
    EXPECT_EQ(out.verdict, "cancelled") << name;
  }
}

TEST(Portfolio, CancelledRunsReportTheInterruptedPhase) {
  auto net = models::make_nsdp(4);
  util::CancelToken token;
  token.cancel();
  const EngineRegistry& reg = default_engine_registry();
  EngineOutcome por = (*reg.find("por"))(net, RunLimits{}, &token, nullptr);
  EXPECT_EQ(por.aborted_phase, "reduced-search");
  EngineOutcome bdd = (*reg.find("bdd"))(net, RunLimits{}, &token, nullptr);
  EXPECT_EQ(bdd.aborted_phase, "symbolic-fixpoint");
  EngineOutcome unf = (*reg.find("unfold"))(net, RunLimits{}, &token, nullptr);
  EXPECT_EQ(unf.aborted_phase, "prefix-construction");
}

TEST(Portfolio, RunnersPublishIntoTheJobRegistryUnderEnginePrefix) {
  auto net = models::make_fig7();
  obs::MetricsRegistry metrics;
  const EngineRegistry& reg = default_engine_registry();
  (void)(*reg.find("por"))(net, RunLimits{}, nullptr, &metrics);
  EXPECT_FALSE(metrics.snapshot("engine.por.").empty());
}

TEST(Portfolio, WinnerCounterexampleReachesTheOutcome) {
  auto net = models::make_fig7();
  const EngineRegistry& reg = default_engine_registry();
  EngineOutcome out = (*reg.find("full"))(net, RunLimits{}, nullptr, nullptr);
  ASSERT_EQ(out.verdict, "deadlock");
  EXPECT_FALSE(out.counterexample.empty());
}

TEST(Portfolio, StateBudgetAbortsWithoutCancelFlag) {
  auto net = models::make_nsdp(4);  // 81 states > the 2-state cap
  RunLimits limits;
  limits.max_states = 2;
  const EngineRegistry& reg = default_engine_registry();
  EngineOutcome out = (*reg.find("full"))(net, limits, nullptr, nullptr);
  EXPECT_FALSE(out.conclusive);
  EXPECT_TRUE(out.aborted);
  EXPECT_FALSE(out.cancelled);  // its own limit, not the job token
  EXPECT_EQ(out.verdict, "aborted");
}

}  // namespace
}  // namespace gpo::service
