#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <random>

namespace gpo::bdd {
namespace {

TEST(Bdd, TerminalsAndVars) {
  BddManager mgr(4);
  EXPECT_NE(kFalse, kTrue);
  Ref x0 = mgr.var(0);
  EXPECT_EQ(mgr.var(0), x0);  // hash-consed
  EXPECT_NE(mgr.var(1), x0);
  EXPECT_EQ(mgr.var_of(x0), 0u);
  EXPECT_EQ(mgr.low_of(x0), kFalse);
  EXPECT_EQ(mgr.high_of(x0), kTrue);
}

TEST(Bdd, CanonicityOfEquivalentFormulas) {
  BddManager mgr(4);
  Ref a = mgr.var(0), b = mgr.var(1);
  // a AND b == NOT(NOT a OR NOT b)
  Ref lhs = mgr.apply_and(a, b);
  Ref rhs = mgr.apply_not(mgr.apply_or(mgr.apply_not(a), mgr.apply_not(b)));
  EXPECT_EQ(lhs, rhs);
  // XOR expansions agree.
  EXPECT_EQ(mgr.apply_xor(a, b),
            mgr.apply_or(mgr.apply_and(a, mgr.apply_not(b)),
                         mgr.apply_and(mgr.apply_not(a), b)));
  // Constants.
  EXPECT_EQ(mgr.apply_and(a, kFalse), kFalse);
  EXPECT_EQ(mgr.apply_or(a, kTrue), kTrue);
  EXPECT_EQ(mgr.apply_and(a, kTrue), a);
  EXPECT_EQ(mgr.apply_xor(a, a), kFalse);
  EXPECT_EQ(mgr.apply_diff(a, a), kFalse);
}

TEST(Bdd, IteIdentities) {
  BddManager mgr(4);
  Ref a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  EXPECT_EQ(mgr.ite(kTrue, b, c), b);
  EXPECT_EQ(mgr.ite(kFalse, b, c), c);
  EXPECT_EQ(mgr.ite(a, kTrue, kFalse), a);
  EXPECT_EQ(mgr.ite(a, b, b), b);
  EXPECT_EQ(mgr.ite(a, b, c),
            mgr.apply_or(mgr.apply_and(a, b),
                         mgr.apply_and(mgr.apply_not(a), c)));
}

TEST(Bdd, ImpAndIff) {
  BddManager mgr(3);
  Ref a = mgr.var(0), b = mgr.var(1);
  EXPECT_EQ(mgr.apply_imp(a, b), mgr.apply_or(mgr.apply_not(a), b));
  EXPECT_EQ(mgr.apply_iff(a, b), mgr.apply_not(mgr.apply_xor(a, b)));
}

TEST(Bdd, CubeIsSortedConjunction) {
  BddManager mgr(6);
  Ref c1 = mgr.cube({4, 0, 2});
  Ref c2 = mgr.apply_and(mgr.var(0), mgr.apply_and(mgr.var(2), mgr.var(4)));
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(mgr.cube({}), kTrue);
}

TEST(Bdd, ExistsQuantification) {
  BddManager mgr(4);
  Ref a = mgr.var(0), b = mgr.var(1);
  Ref f = mgr.apply_and(a, b);
  EXPECT_EQ(mgr.exists(f, mgr.cube({0})), b);
  EXPECT_EQ(mgr.exists(f, mgr.cube({0, 1})), kTrue);
  EXPECT_EQ(mgr.exists(kFalse, mgr.cube({0})), kFalse);
  // Quantifying a variable not in the support is a no-op.
  EXPECT_EQ(mgr.exists(f, mgr.cube({3})), f);
  // exists x . (x XOR y) == true
  EXPECT_EQ(mgr.exists(mgr.apply_xor(a, b), mgr.cube({0})), kTrue);
}

TEST(Bdd, ForallQuantification) {
  BddManager mgr(4);
  Ref a = mgr.var(0), b = mgr.var(1);
  EXPECT_EQ(mgr.forall(mgr.apply_or(a, b), mgr.cube({0})), b);
  EXPECT_EQ(mgr.forall(mgr.apply_and(a, b), mgr.cube({0})), kFalse);
  EXPECT_EQ(mgr.forall(kTrue, mgr.cube({0, 1})), kTrue);
}

TEST(Bdd, AndExistsMatchesComposition) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    BddManager mgr(8);
    auto random_fn = [&]() {
      Ref f = rng() % 2 ? kTrue : kFalse;
      for (int i = 0; i < 6; ++i) {
        Ref lit = rng() % 2 ? mgr.var(rng() % 8) : mgr.nvar(rng() % 8);
        f = rng() % 2 ? mgr.apply_and(f, lit) : mgr.apply_or(f, lit);
      }
      return f;
    };
    Ref f = random_fn(), g = random_fn();
    std::vector<Var> qvars;
    for (Var v = 0; v < 8; ++v)
      if (rng() % 3 == 0) qvars.push_back(v);
    Ref cube = mgr.cube(qvars);
    EXPECT_EQ(mgr.and_exists(f, g, cube),
              mgr.exists(mgr.apply_and(f, g), cube));
  }
}

TEST(Bdd, RenameMonotone) {
  BddManager mgr(6);
  Ref f = mgr.apply_and(mgr.var(1), mgr.apply_or(mgr.var(3), mgr.nvar(5)));
  std::vector<Var> map{0, 0, 2, 2, 4, 4};  // 1->0, 3->2, 5->4
  Ref g = mgr.rename(f, map);
  Ref expect =
      mgr.apply_and(mgr.var(0), mgr.apply_or(mgr.var(2), mgr.nvar(4)));
  EXPECT_EQ(g, expect);
}

TEST(Bdd, RenameRejectsNonMonotoneMap) {
  BddManager mgr(4);
  Ref f = mgr.apply_and(mgr.var(0), mgr.var(1));
  std::vector<Var> swap{1, 0, 2, 3};
  EXPECT_THROW((void)mgr.rename(f, swap), std::invalid_argument);
}

TEST(Bdd, RestrictVar) {
  BddManager mgr(4);
  Ref a = mgr.var(0), b = mgr.var(1);
  Ref f = mgr.ite(a, b, mgr.apply_not(b));
  EXPECT_EQ(mgr.restrict_var(f, 0, true), b);
  EXPECT_EQ(mgr.restrict_var(f, 0, false), mgr.apply_not(b));
  // Shannon expansion reconstructs f.
  Ref rebuilt = mgr.ite(a, mgr.restrict_var(f, 0, true),
                        mgr.restrict_var(f, 0, false));
  EXPECT_EQ(rebuilt, f);
}

TEST(Bdd, SatCount) {
  BddManager mgr(10);
  std::vector<Var> all;
  for (Var v = 0; v < 10; ++v) all.push_back(v);
  EXPECT_EQ(mgr.sat_count(kTrue, all), 1024.0);
  EXPECT_EQ(mgr.sat_count(kFalse, all), 0.0);
  EXPECT_EQ(mgr.sat_count(mgr.var(3), all), 512.0);
  Ref f = mgr.apply_and(mgr.var(0), mgr.var(9));
  EXPECT_EQ(mgr.sat_count(f, all), 256.0);
  // Restricted universe.
  EXPECT_EQ(mgr.sat_count(mgr.var(0), {0, 1}), 2.0);
  // Support outside universe is rejected.
  EXPECT_THROW((void)mgr.sat_count(mgr.var(5), {0, 1}),
               std::invalid_argument);
}

TEST(Bdd, PickOneSat) {
  BddManager mgr(6);
  Ref f = mgr.apply_and(mgr.var(2), mgr.nvar(4));
  util::Bitset a = mgr.pick_one_sat(f);
  EXPECT_TRUE(a.test(2));
  EXPECT_FALSE(a.test(4));
  EXPECT_THROW((void)mgr.pick_one_sat(kFalse), std::invalid_argument);
}

TEST(Bdd, EnumerateSats) {
  BddManager mgr(3);
  Ref f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(2));
  std::vector<util::Bitset> sats;
  bool complete = mgr.enumerate_sats(f, {0, 1, 2}, 100,
                                     [&](const util::Bitset& b) {
                                       sats.push_back(b);
                                     });
  EXPECT_TRUE(complete);
  // (a&b)|c over 3 vars has 5 satisfying assignments.
  EXPECT_EQ(sats.size(), 5u);
  for (const auto& b : sats)
    EXPECT_TRUE((b.test(0) && b.test(1)) || b.test(2));
}

TEST(Bdd, EnumerateSatsTruncates) {
  BddManager mgr(5);
  std::size_t count = 0;
  bool complete = mgr.enumerate_sats(kTrue, {0, 1, 2, 3, 4}, 7,
                                     [&](const util::Bitset&) { ++count; });
  EXPECT_FALSE(complete);
  EXPECT_EQ(count, 7u);
}

TEST(Bdd, Support) {
  BddManager mgr(8);
  Ref f = mgr.apply_and(mgr.var(1), mgr.apply_xor(mgr.var(4), mgr.var(6)));
  EXPECT_EQ(mgr.support(f), (std::vector<Var>{1, 4, 6}));
  EXPECT_TRUE(mgr.support(kTrue).empty());
}

TEST(Bdd, NodeCount) {
  BddManager mgr(4);
  EXPECT_EQ(mgr.node_count(kTrue), 1u);
  EXPECT_EQ(mgr.node_count(mgr.var(0)), 3u);  // node + 2 terminals
  Ref f = mgr.apply_xor(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.node_count(f), 5u);  // 1 top, 2 mid, 2 terminals
}

TEST(Bdd, NodeLimitThrows) {
  BddManager mgr(40, /*node_limit=*/64);
  Ref f = kFalse;
  EXPECT_THROW(
      {
        // Parity of 40 variables needs far more than 64 nodes.
        for (Var v = 0; v < 40; ++v) f = mgr.apply_xor(f, mgr.var(v));
      },
      BddLimitExceeded);
}

TEST(Bdd, ReducednessInvariant) {
  // No node may have identical children, and the unique table must never
  // contain duplicates. Exercised via a random workload.
  std::mt19937 rng(5);
  BddManager mgr(10);
  std::vector<Ref> pool{kTrue, kFalse};
  for (int i = 0; i < 300; ++i) {
    Ref a = pool[rng() % pool.size()];
    Ref b = pool[rng() % pool.size()];
    switch (rng() % 4) {
      case 0: pool.push_back(mgr.apply_and(a, b)); break;
      case 1: pool.push_back(mgr.apply_or(a, b)); break;
      case 2: pool.push_back(mgr.apply_xor(a, b)); break;
      default: pool.push_back(mgr.var(rng() % 10)); break;
    }
  }
  for (std::size_t i = 2; i < mgr.total_nodes(); ++i) {
    Ref r = static_cast<Ref>(i);
    EXPECT_NE(mgr.low_of(r), mgr.high_of(r)) << "redundant node " << i;
    EXPECT_LT(mgr.var_of(r), 10u);
    // Ordered: children sit strictly below.
    if (!mgr.is_terminal(mgr.low_of(r))) {
      EXPECT_GT(mgr.var_of(mgr.low_of(r)), mgr.var_of(r));
    }
    if (!mgr.is_terminal(mgr.high_of(r))) {
      EXPECT_GT(mgr.var_of(mgr.high_of(r)), mgr.var_of(r));
    }
  }
}

// Exhaustive semantic check against truth tables on 4 variables.
TEST(Bdd, TruthTableEquivalence) {
  std::mt19937 rng(123);
  BddManager mgr(4);
  for (int trial = 0; trial < 30; ++trial) {
    // Build a random expression tree and an equivalent evaluator.
    struct Expr {
      int op;  // 0 var, 1 and, 2 or, 3 xor, 4 not
      Var v = 0;
      int lhs = -1, rhs = -1;
    };
    std::vector<Expr> exprs;
    std::function<int()> build = [&]() -> int {
      if (exprs.size() > 10 || rng() % 3 == 0) {
        exprs.push_back({0, static_cast<Var>(rng() % 4), -1, -1});
        return static_cast<int>(exprs.size()) - 1;
      }
      int op = 1 + static_cast<int>(rng() % 4);
      if (op == 4) {
        int l = build();
        exprs.push_back({4, 0, l, -1});
      } else {
        int l = build();
        int r = build();
        exprs.push_back({op, 0, l, r});
      }
      return static_cast<int>(exprs.size()) - 1;
    };
    int root = build();

    std::function<Ref(int)> to_bdd = [&](int e) -> Ref {
      const Expr& x = exprs[e];
      switch (x.op) {
        case 0: return mgr.var(x.v);
        case 1: return mgr.apply_and(to_bdd(x.lhs), to_bdd(x.rhs));
        case 2: return mgr.apply_or(to_bdd(x.lhs), to_bdd(x.rhs));
        case 3: return mgr.apply_xor(to_bdd(x.lhs), to_bdd(x.rhs));
        default: return mgr.apply_not(to_bdd(x.lhs));
      }
    };
    std::function<bool(int, unsigned)> eval = [&](int e,
                                                  unsigned bits) -> bool {
      const Expr& x = exprs[e];
      switch (x.op) {
        case 0: return (bits >> x.v) & 1;
        case 1: return eval(x.lhs, bits) && eval(x.rhs, bits);
        case 2: return eval(x.lhs, bits) || eval(x.rhs, bits);
        case 3: return eval(x.lhs, bits) != eval(x.rhs, bits);
        default: return !eval(x.lhs, bits);
      }
    };

    Ref f = to_bdd(root);
    for (unsigned bits = 0; bits < 16; ++bits) {
      Ref cur = f;
      while (!mgr.is_terminal(cur))
        cur = ((bits >> mgr.var_of(cur)) & 1) ? mgr.high_of(cur)
                                              : mgr.low_of(cur);
      EXPECT_EQ(cur == kTrue, eval(root, bits)) << "bits=" << bits;
    }
  }
}

}  // namespace
}  // namespace gpo::bdd
