#include "bdd/symbolic_reach.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "reach/explorer.hpp"

namespace gpo::bdd {
namespace {

using petri::PetriNet;

struct ModelCase {
  const char* name;
  PetriNet (*make)(std::size_t);
  std::size_t param;
};

PetriNet wrap_fig7(std::size_t) { return models::make_fig7(); }
PetriNet wrap_fig3(std::size_t) { return models::make_fig3(); }

class SymbolicVsExplicit : public ::testing::TestWithParam<ModelCase> {};

TEST_P(SymbolicVsExplicit, CountsAndDeadlockAgree) {
  const ModelCase& c = GetParam();
  PetriNet net = c.make(c.param);
  auto ground = reach::ExplicitExplorer(net).explore();
  ASSERT_FALSE(ground.safeness_violation);
  auto sym = SymbolicReachability(net).analyze();
  ASSERT_FALSE(sym.blowup);
  EXPECT_EQ(sym.state_count, static_cast<double>(ground.state_count));
  EXPECT_EQ(sym.deadlock_found, ground.deadlock_found);
  EXPECT_GT(sym.peak_nodes, 0u);
  EXPECT_GE(sym.iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Models, SymbolicVsExplicit,
    ::testing::Values(ModelCase{"diamond", models::make_diamond, 5},
                      ModelCase{"chain", models::make_conflict_chain, 4},
                      ModelCase{"nsdp2", models::make_nsdp, 2},
                      ModelCase{"nsdp4", models::make_nsdp, 4},
                      ModelCase{"asat", models::make_arbiter_tree, 4},
                      ModelCase{"over", models::make_overtake, 4},
                      ModelCase{"rw", models::make_readers_writers, 5},
                      ModelCase{"fig7", wrap_fig7, 0},
                      ModelCase{"fig3", wrap_fig3, 0}),
    [](const auto& info) { return info.param.name; });

TEST(Symbolic, DeadlockWitnessIsDead) {
  PetriNet net = models::make_nsdp(4);
  auto sym = SymbolicReachability(net).analyze();
  ASSERT_TRUE(sym.deadlock_found);
  ASSERT_TRUE(sym.deadlock_witness.has_value());
  EXPECT_TRUE(net.is_deadlocked(*sym.deadlock_witness));
}

TEST(Symbolic, NodeLimitReportsBlowup) {
  SymbolicOptions opt;
  opt.node_limit = 300;
  auto sym = SymbolicReachability(models::make_nsdp(6), opt).analyze();
  EXPECT_TRUE(sym.blowup);
  EXPECT_FALSE(sym.blowup_reason.empty());
  EXPECT_LE(sym.peak_nodes, 300u);
}

TEST(Symbolic, PlaceOrderCoversAllPlacesOnce) {
  PetriNet net = models::make_arbiter_tree(4);
  for (VariableOrder ord : {VariableOrder::kDeclaration, VariableOrder::kBfs}) {
    auto order = compute_place_order(net, ord);
    ASSERT_EQ(order.size(), net.place_count());
    std::vector<bool> seen(net.place_count(), false);
    for (petri::PlaceId p : order) {
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST(Symbolic, OrderingsAgreeOnSemantics) {
  PetriNet net = models::make_nsdp(4);
  SymbolicOptions decl;
  decl.order = VariableOrder::kDeclaration;
  SymbolicOptions bfs;
  bfs.order = VariableOrder::kBfs;
  auto a = SymbolicReachability(net, decl).analyze();
  auto b = SymbolicReachability(net, bfs).analyze();
  ASSERT_FALSE(a.blowup);
  ASSERT_FALSE(b.blowup);
  EXPECT_EQ(a.state_count, b.state_count);
  EXPECT_EQ(a.deadlock_found, b.deadlock_found);
}

TEST(Symbolic, RandomNetsMatchExplicit) {
  for (std::uint64_t seed = 300; seed < 340; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3;
    p.transitions = 6 + seed % 8;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    auto ground = reach::ExplicitExplorer(net).explore();
    auto sym = SymbolicReachability(net).analyze();
    ASSERT_FALSE(sym.blowup) << seed;
    EXPECT_EQ(sym.state_count, static_cast<double>(ground.state_count))
        << "seed=" << seed;
    EXPECT_EQ(sym.deadlock_found, ground.deadlock_found) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gpo::bdd
