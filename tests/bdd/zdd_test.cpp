// ZDD kernel tests: canonicity (equal families <=> equal Refs, however they
// were built), the zero-suppression invariant, and the family algebra —
// unite/intersect/subtract/containing/product — cross-checked against a
// brute-force std::set-of-Bitset model on random universes of up to 12
// elements, where exhaustive comparison is cheap.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "bdd/zdd.hpp"
#include "util/bitset.hpp"

namespace gpo::zdd {
namespace {

using util::Bitset;
using SetFamily = std::set<Bitset>;

Bitset make_set(std::size_t n, std::initializer_list<std::size_t> bits) {
  return Bitset(n, bits);
}

/// Reference model of the same algebra over explicit sets.
SetFamily brute_unite(const SetFamily& a, const SetFamily& b) {
  SetFamily out = a;
  out.insert(b.begin(), b.end());
  return out;
}

SetFamily brute_intersect(const SetFamily& a, const SetFamily& b) {
  SetFamily out;
  for (const Bitset& s : a)
    if (b.count(s) != 0) out.insert(s);
  return out;
}

SetFamily brute_subtract(const SetFamily& a, const SetFamily& b) {
  SetFamily out;
  for (const Bitset& s : a)
    if (b.count(s) == 0) out.insert(s);
  return out;
}

SetFamily brute_containing(const SetFamily& a, std::size_t t) {
  SetFamily out;
  for (const Bitset& s : a)
    if (s.test(t)) out.insert(s);
  return out;
}

SetFamily brute_product(const SetFamily& a, const SetFamily& b) {
  SetFamily out;
  for (const Bitset& s : a)
    for (const Bitset& t : b) {
      Bitset u = s;
      for (std::size_t i = t.find_first(); i < t.size();
           i = t.find_next(i + 1))
        u.set(i);
      out.insert(u);
    }
  return out;
}

/// Full member dump of a diagram, as the reference's sorted set.
SetFamily members_of(const ZddManager& mgr, Ref f) {
  SetFamily out;
  bool complete = mgr.enumerate(
      f, std::size_t(-1), [&](const Bitset& s) { out.insert(s); });
  EXPECT_TRUE(complete);
  return out;
}

/// Asserts the diagram f denotes exactly `expect` — via enumeration, count,
/// and per-set membership walks (three independent read paths).
void expect_family(const ZddManager& mgr, Ref f, const SetFamily& expect) {
  EXPECT_EQ(members_of(mgr, f), expect);
  EXPECT_EQ(mgr.count(f), expect.size());
  for (const Bitset& s : expect) EXPECT_TRUE(mgr.contains(f, s));
}

TEST(Zdd, TerminalsDenoteEmptyFamilyAndUnitFamily) {
  ZddManager mgr(4);
  EXPECT_EQ(mgr.count(kEmpty), 0u);
  EXPECT_EQ(mgr.count(kUnit), 1u);
  EXPECT_FALSE(mgr.contains(kEmpty, Bitset(4)));
  EXPECT_TRUE(mgr.contains(kUnit, Bitset(4)));
  EXPECT_FALSE(mgr.contains(kUnit, make_set(4, {1})));
  expect_family(mgr, kEmpty, {});
  expect_family(mgr, kUnit, {Bitset(4)});
}

TEST(Zdd, SingleBuildsOneMemberFamily) {
  ZddManager mgr(6);
  Bitset s = make_set(6, {0, 3, 5});
  Ref f = mgr.single(s);
  expect_family(mgr, f, {s});
  EXPECT_FALSE(mgr.contains(f, make_set(6, {0, 3})));
  EXPECT_FALSE(mgr.contains(f, make_set(6, {0, 3, 4, 5})));
}

TEST(Zdd, FromSetsCollapsesDuplicatesAndIsOrderInsensitive) {
  ZddManager mgr(5);
  Bitset a = make_set(5, {0, 2});
  Bitset b = make_set(5, {1});
  Bitset c = make_set(5, {2, 3, 4});
  Ref f = mgr.from_sets({a, b, c, a, b});
  Ref g = mgr.from_sets({c, a, b});
  // Canonicity: same family, same Ref — regardless of build order.
  EXPECT_EQ(f, g);
  expect_family(mgr, f, {a, b, c});
}

TEST(Zdd, CanonicityAcrossOperationOrders) {
  ZddManager mgr(6);
  Ref a = mgr.from_sets({make_set(6, {0}), make_set(6, {1, 2})});
  Ref b = mgr.from_sets({make_set(6, {3}), make_set(6, {1, 2})});
  Ref c = mgr.single(make_set(6, {4, 5}));
  EXPECT_EQ(mgr.unite(mgr.unite(a, b), c), mgr.unite(a, mgr.unite(b, c)));
  EXPECT_EQ(mgr.unite(a, b), mgr.unite(b, a));
  EXPECT_EQ(mgr.unite(a, a), a);
  EXPECT_EQ(mgr.intersect(a, a), a);
  EXPECT_EQ(mgr.subtract(a, a), kEmpty);
  EXPECT_EQ(mgr.subtract(a, kEmpty), a);
  EXPECT_EQ(mgr.intersect(a, kEmpty), kEmpty);
  EXPECT_EQ(mgr.unite(a, kEmpty), a);
  EXPECT_EQ(mgr.product(a, kUnit), a);
  EXPECT_EQ(mgr.product(a, kEmpty), kEmpty);
}

TEST(Zdd, ZeroSuppressionHoldsStructurally) {
  ZddManager mgr(8);
  // make_node applies the rule directly...
  Ref low = mgr.single(make_set(8, {5}));
  EXPECT_EQ(mgr.make_node(2, low, kEmpty), low);
  // ...and no reachable node of a built diagram violates it.
  std::mt19937_64 rng(7);
  std::vector<Bitset> sets;
  for (int i = 0; i < 20; ++i) {
    Bitset s(8);
    for (std::size_t v = 0; v < 8; ++v)
      if (rng() % 3 == 0) s.set(v);
    sets.push_back(s);
  }
  Ref f = mgr.from_sets(sets);
  std::vector<Ref> stack{f};
  std::set<Ref> seen;
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (mgr.is_terminal(r) || !seen.insert(r).second) continue;
    EXPECT_NE(mgr.high_of(r), kEmpty) << "zero-suppression violated";
    EXPECT_LT(mgr.var_of(r), mgr.num_vars());
    stack.push_back(mgr.low_of(r));
    stack.push_back(mgr.high_of(r));
  }
}

TEST(Zdd, ContainingSelectsExactlyTheMembersWithThatElement) {
  ZddManager mgr(6);
  Bitset a = make_set(6, {0, 2});
  Bitset b = make_set(6, {2, 4});
  Bitset c = make_set(6, {1});
  Ref f = mgr.from_sets({a, b, c});
  expect_family(mgr, mgr.containing(f, 2), {a, b});
  expect_family(mgr, mgr.containing(f, 1), {c});
  expect_family(mgr, mgr.containing(f, 5), {});
  // The result is canonical too: equal to building the subset directly.
  EXPECT_EQ(mgr.containing(f, 2), mgr.from_sets({a, b}));
}

TEST(Zdd, ProductComputesUnorderedUnions) {
  ZddManager mgr(6);
  Ref f = mgr.from_sets({make_set(6, {0}), make_set(6, {1})});
  Ref g = mgr.from_sets({make_set(6, {4}), make_set(6, {5})});
  expect_family(mgr, mgr.product(f, g),
                {make_set(6, {0, 4}), make_set(6, {0, 5}),
                 make_set(6, {1, 4}), make_set(6, {1, 5})});
  // Overlapping supports collapse duplicates: {0}x{0,1} = {{0},{0,1}}.
  Ref h = mgr.from_sets({make_set(6, {0}), make_set(6, {0, 1})});
  expect_family(mgr, mgr.product(mgr.single(make_set(6, {0})), h),
                {make_set(6, {0}), make_set(6, {0, 1})});
}

TEST(Zdd, EnumerateTruncatesAtMaxCount) {
  ZddManager mgr(5);
  Ref f = mgr.from_sets({make_set(5, {0}), make_set(5, {1}),
                         make_set(5, {2}), make_set(5, {3})});
  std::size_t visited = 0;
  bool complete = mgr.enumerate(f, 2, [&](const Bitset&) { ++visited; });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visited, 2u);
}

TEST(Zdd, NodeLimitThrows) {
  ZddManager mgr(16, /*node_limit=*/8);
  std::vector<Bitset> sets;
  for (std::size_t i = 0; i + 1 < 16; ++i)
    sets.push_back(make_set(16, {i, i + 1}));
  EXPECT_THROW((void)mgr.from_sets(sets), ZddLimitExceeded);
}

TEST(Zdd, RandomizedAlgebraMatchesBruteForce) {
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 4 + rng() % 9;  // universe of 4..12 elements
    ZddManager mgr(static_cast<Var>(n));
    auto random_family = [&](std::size_t max_members) {
      SetFamily fam;
      std::size_t k = rng() % (max_members + 1);
      for (std::size_t i = 0; i < k; ++i) {
        Bitset s(n);
        for (std::size_t v = 0; v < n; ++v)
          if (rng() % 4 == 0) s.set(v);
        fam.insert(s);
      }
      return fam;
    };
    SetFamily fa = random_family(12);
    SetFamily fb = random_family(12);
    Ref a = mgr.from_sets({fa.begin(), fa.end()});
    Ref b = mgr.from_sets({fb.begin(), fb.end()});
    SCOPED_TRACE("round=" + std::to_string(round) +
                 " n=" + std::to_string(n));
    expect_family(mgr, a, fa);
    expect_family(mgr, b, fb);
    expect_family(mgr, mgr.unite(a, b), brute_unite(fa, fb));
    expect_family(mgr, mgr.intersect(a, b), brute_intersect(fa, fb));
    expect_family(mgr, mgr.subtract(a, b), brute_subtract(fa, fb));
    expect_family(mgr, mgr.product(a, b), brute_product(fa, fb));
    std::size_t t = rng() % n;
    expect_family(mgr, mgr.containing(a, static_cast<Var>(t)),
                  brute_containing(fa, t));
    // Canonicity against the reference: rebuilding the brute-force result
    // from scratch lands on the very same Ref the operation produced.
    SetFamily u = brute_unite(fa, fb);
    EXPECT_EQ(mgr.unite(a, b), mgr.from_sets({u.begin(), u.end()}));
  }
}

TEST(Zdd, StatsCountNodesAndCacheTraffic) {
  ZddManager mgr(10, std::size_t{1} << 20, /*cache_entries=*/64);
  std::mt19937_64 rng(3);
  Ref acc = kEmpty;
  for (int i = 0; i < 50; ++i) {
    Bitset s(10);
    for (std::size_t v = 0; v < 10; ++v)
      if (rng() % 3 == 0) s.set(v);
    acc = mgr.unite(acc, mgr.single(s));
  }
  ZddStats s = mgr.stats();
  EXPECT_GT(s.nodes, 2u);
  EXPECT_GT(s.cache_misses, 0u);
  EXPECT_GT(s.memory_bytes, 0u);
  EXPECT_EQ(s.cache_entries, 64u);
  EXPECT_LE(s.cache_occupied, s.cache_entries);
}

}  // namespace
}  // namespace gpo::zdd
