#include "por/stubborn.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::por {
namespace {

using petri::ConflictInfo;
using petri::Marking;
using petri::PetriNet;
using petri::TransitionId;

TEST(StubbornSet, SingletonForIndependentTransition) {
  PetriNet net = models::make_diamond(3);
  ConflictInfo ci(net);
  auto s = stubborn_enabled_set(net, ci, net.initial_marking(), {0});
  EXPECT_EQ(s, std::vector<TransitionId>{0});
}

TEST(StubbornSet, PullsInConflictingTransitions) {
  PetriNet net = models::make_fig7();
  ConflictInfo ci(net);
  TransitionId a = net.find_transition("A");
  TransitionId b = net.find_transition("B");
  auto s = stubborn_enabled_set(net, ci, net.initial_marking(), {a});
  EXPECT_EQ(s, (std::vector<TransitionId>{a, b}));
}

TEST(StubbornSet, DisabledSeedPullsInScapegoatProducers) {
  // c disabled for lack of p1; the producer a of p1 must join, and since a
  // is enabled the returned enabled subset is {a}.
  petri::NetBuilder bld;
  auto p0 = bld.add_place("p0", true);
  auto p1 = bld.add_place("p1");
  auto p2 = bld.add_place("p2");
  auto ta = bld.add_transition("a");
  bld.connect(ta, {p0}, {p1});
  auto tc = bld.add_transition("c");
  bld.connect(tc, {p1}, {p2});
  PetriNet net = bld.build();
  ConflictInfo ci(net);
  auto s = stubborn_enabled_set(net, ci, net.initial_marking(), {tc});
  EXPECT_EQ(s, std::vector<TransitionId>{ta});
}

TEST(StubbornSet, AlwaysContainsAnEnabledKeyTransition) {
  PetriNet net = models::make_nsdp(3);
  ConflictInfo ci(net);
  Marking m = net.initial_marking();
  for (TransitionId t : net.enabled_transitions(m)) {
    auto s = stubborn_enabled_set(net, ci, m, {t});
    EXPECT_FALSE(s.empty());
    for (TransitionId u : s) EXPECT_TRUE(net.enabled(u, m));
  }
}

TEST(StubbornExplorer, DiamondIsLinear) {
  // The motivating Fig. 1 reduction: n+1 states instead of 2^n.
  for (std::size_t n : {2u, 4u, 8u}) {
    auto result = StubbornExplorer(models::make_diamond(n)).explore();
    EXPECT_EQ(result.state_count, n + 1) << "n=" << n;
    EXPECT_TRUE(result.deadlock_found);
  }
}

TEST(StubbornExplorer, ConflictChainIsAnticipationTree) {
  // The paper's Fig. 2: partial order methods still need 2^{n+1}-1 states.
  for (std::size_t n : {2u, 4u, 6u}) {
    auto result =
        StubbornExplorer(models::make_conflict_chain(n)).explore();
    EXPECT_EQ(result.state_count, (std::size_t{2} << n) - 1) << "n=" << n;
  }
}

TEST(StubbornExplorer, NeverMoreStatesThanFull) {
  for (const char* which : {"nsdp", "asat", "over", "rw"}) {
    PetriNet net = std::string(which) == "nsdp" ? models::make_nsdp(4)
                   : std::string(which) == "asat"
                       ? models::make_arbiter_tree(4)
                   : std::string(which) == "over" ? models::make_overtake(4)
                                                  : models::make_readers_writers(5);
    auto full = reach::ExplicitExplorer(net).explore();
    auto red = StubbornExplorer(net).explore();
    EXPECT_LE(red.state_count, full.state_count) << which;
    EXPECT_EQ(red.deadlock_found, full.deadlock_found) << which;
  }
}

class StrategyTest : public ::testing::TestWithParam<SeedStrategy> {};

TEST_P(StrategyTest, DeadlockPreservedOnRandomNets) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3 + seed % 3;
    p.transitions = 5 + seed % 10;
    p.sync_percent = 40;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    reach::ExplorerOptions eo;
    eo.max_states = 100000;
    auto ground = reach::ExplicitExplorer(net, eo).explore();
    if (ground.limit_hit) continue;
    StubbornOptions so;
    so.strategy = GetParam();
    auto red = StubbornExplorer(net, so).explore();
    EXPECT_EQ(red.deadlock_found, ground.deadlock_found) << "seed=" << seed;
    EXPECT_LE(red.state_count, ground.state_count) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(SeedStrategy::kBestOverSeeds,
                                           SeedStrategy::kFirstEnabled,
                                           SeedStrategy::kWholeConflictSet));

TEST(StubbornExplorer, CounterexampleReplays) {
  PetriNet net = models::make_nsdp(3);
  auto result = StubbornExplorer(net).explore();
  ASSERT_TRUE(result.deadlock_found);
  Marking m = net.initial_marking();
  for (TransitionId t : result.counterexample) {
    ASSERT_TRUE(net.enabled(t, m));
    m = net.fire(t, m);
  }
  EXPECT_TRUE(net.is_deadlocked(m));
}

TEST(StubbornExplorer, ExploreFromCustomRoots) {
  PetriNet net = models::make_nsdp(2);
  // Root: the all-left deadlock marking itself -> found immediately.
  Marking dead(net.place_count());
  dead.set(net.find_place("hasL_0"));
  dead.set(net.find_place("hasL_1"));
  StubbornOptions so;
  auto result = StubbornExplorer(net, so).explore_from({dead});
  EXPECT_TRUE(result.deadlock_found);
  EXPECT_EQ(result.counterexample.size(), 0u);
  EXPECT_EQ(*result.first_deadlock, dead);
}

TEST(StubbornExplorer, ExploreFromMultipleRootsDeduplicates) {
  PetriNet net = models::make_diamond(2);
  Marking m0 = net.initial_marking();
  auto one = StubbornExplorer(net).explore_from({m0});
  auto twice = StubbornExplorer(net).explore_from({m0, m0});
  EXPECT_EQ(one.state_count, twice.state_count);
}

TEST(StubbornExplorer, StateLimit) {
  StubbornOptions so;
  so.max_states = 5;
  auto result = StubbornExplorer(models::make_nsdp(6), so).explore();
  EXPECT_TRUE(result.limit_hit);
}

}  // namespace
}  // namespace gpo::por
