// Cross-checks for the parallel sharded explorer: on every net the parallel
// engine (2/4/8 workers) must report exactly the counts of the sequential
// ground truth, and its counterexamples must replay. These tests carry the
// ctest label "parallel" so the TSan CI job can run precisely this binary.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "models/models.hpp"
#include "parser/net_format.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::reach {
namespace {

using petri::Marking;
using petri::PetriNet;

constexpr std::size_t kThreadCounts[] = {2, 4, 8};

void expect_matches_sequential(const PetriNet& net, const std::string& what) {
  ExplorerResult seq = ExplicitExplorer(net).explore();
  ASSERT_FALSE(seq.limit_hit) << what;
  for (std::size_t threads : kThreadCounts) {
    ExplorerOptions opt;
    opt.num_threads = threads;
    ExplorerResult par = ExplicitExplorer(net, opt).explore();
    const std::string ctx = what + " threads=" + std::to_string(threads);
    EXPECT_FALSE(par.limit_hit) << ctx;
    EXPECT_EQ(par.state_count, seq.state_count) << ctx;
    EXPECT_EQ(par.edge_count, seq.edge_count) << ctx;
    EXPECT_EQ(par.deadlock_count, seq.deadlock_count) << ctx;
    EXPECT_EQ(par.deadlock_found, seq.deadlock_found) << ctx;
    EXPECT_EQ(par.fireable_transitions, seq.fireable_transitions) << ctx;
    EXPECT_EQ(par.safeness_violation, seq.safeness_violation) << ctx;
    EXPECT_EQ(par.stats.threads, threads) << ctx;
    if (par.deadlock_found) {
      // The parallel engine may pick a different deadlock than sequential
      // BFS, but its counterexample must replay to a real one.
      Marking m = net.initial_marking();
      for (petri::TransitionId t : par.counterexample) {
        ASSERT_TRUE(net.enabled(t, m)) << ctx;
        m = net.fire(t, m);
      }
      EXPECT_EQ(m, *par.first_deadlock) << ctx;
      EXPECT_TRUE(net.is_deadlocked(m)) << ctx;
    }
  }
}

TEST(ParallelExplorer, MatchesSequentialOnBenchmarkFamilies) {
  expect_matches_sequential(models::make_diamond(8), "diamond(8)");
  expect_matches_sequential(models::make_conflict_chain(4), "chain(4)");
  expect_matches_sequential(models::make_nsdp(4), "nsdp(4)");
  expect_matches_sequential(models::make_arbiter_tree(4), "asat(4)");
  expect_matches_sequential(models::make_overtake(3), "over(3)");
  expect_matches_sequential(models::make_readers_writers(6), "rw(6)");
  expect_matches_sequential(models::make_cyclic_scheduler(6), "cys(6)");
  expect_matches_sequential(models::make_slotted_ring(4), "ring(4)");
}

TEST(ParallelExplorer, MatchesSequentialOnExampleNets) {
  for (const char* name :
       {"fig7.net", "nsdp4.net", "overtake3.net", "readers_writers6.net"}) {
    PetriNet net = parser::parse_net_file(std::string(GPO_EXAMPLES_NETS_DIR) +
                                          "/" + name);
    expect_matches_sequential(net, name);
  }
}

TEST(ParallelExplorer, MatchesSequentialOnRandomNets) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    models::RandomNetParams params;
    params.machines = 4;
    params.states_per_machine = 4;
    params.transitions = 18;
    params.seed = seed;
    expect_matches_sequential(models::make_random_net(params),
                              "random(seed=" + std::to_string(seed) + ")");
  }
}

TEST(ParallelExplorer, CounterexampleReplaysToDeadlock) {
  PetriNet net = models::make_nsdp(4);
  ExplorerOptions opt;
  opt.num_threads = 4;
  auto result = ExplicitExplorer(net, opt).explore();
  ASSERT_TRUE(result.deadlock_found);
  Marking m = net.initial_marking();
  for (petri::TransitionId t : result.counterexample) {
    ASSERT_TRUE(net.enabled(t, m));
    m = net.fire(t, m);
  }
  EXPECT_EQ(m, *result.first_deadlock);
  EXPECT_TRUE(net.is_deadlocked(m));
}

TEST(ParallelExplorer, StopAtFirstDeadlockStopsEarly) {
  PetriNet net = models::make_nsdp(4);
  ExplorerOptions opt;
  opt.num_threads = 4;
  opt.stop_at_first_deadlock = true;
  auto early = ExplicitExplorer(net, opt).explore();
  auto full = ExplicitExplorer(net).explore();
  EXPECT_TRUE(early.deadlock_found);
  EXPECT_LE(early.state_count, full.state_count);
}

TEST(ParallelExplorer, StateLimitHonoredCooperatively) {
  ExplorerOptions opt;
  opt.max_states = 10;
  opt.num_threads = 4;
  auto result = ExplicitExplorer(models::make_nsdp(6), opt).explore();
  EXPECT_TRUE(result.limit_hit);
  // Each worker may overshoot by the batch in flight before it notices the
  // shared stop flag.
  EXPECT_LE(result.state_count, 10u + 4 * 30u);
}

TEST(ParallelExplorer, BadStatePredicate) {
  PetriNet net = models::make_nsdp(2);
  petri::PlaceId eat0 = net.find_place("eat_0");
  ExplorerOptions opt;
  opt.num_threads = 4;
  opt.bad_state = [eat0](const Marking& m) { return m.test(eat0); };
  auto result = ExplicitExplorer(net, opt).explore();
  EXPECT_TRUE(result.bad_state_found);
  ASSERT_TRUE(result.first_bad_state.has_value());
  EXPECT_TRUE(result.first_bad_state->test(eat0));
}

TEST(ParallelExplorer, DetectsSafenessViolation) {
  // Same non-1-safe net as the sequential test: both a and b feed p2.
  petri::NetBuilder b;
  auto p0 = b.add_place("p0", true);
  auto p1 = b.add_place("p1", true);
  auto p2 = b.add_place("p2");
  auto ta = b.add_transition("a");
  b.connect(ta, {p0}, {p2});
  auto tb = b.add_transition("b");
  b.connect(tb, {p1}, {p2});
  PetriNet net = b.build();
  ExplorerOptions opt;
  opt.num_threads = 2;
  auto result = ExplicitExplorer(net, opt).explore();
  EXPECT_TRUE(result.safeness_violation);
  ASSERT_TRUE(result.unsafe_source.has_value());
}

TEST(ParallelExplorer, StatsBlockPopulated) {
  ExplorerOptions opt;
  opt.num_threads = 4;
  auto result = ExplicitExplorer(models::make_readers_writers(6), opt).explore();
  EXPECT_EQ(result.stats.threads, 4u);
  EXPECT_GE(result.stats.shard_count, 16u);
  EXPECT_GT(result.stats.states_per_second, 0.0);
  EXPECT_GT(result.stats.peak_frontier, 0u);
  EXPECT_GT(result.stats.max_shard_size, 0u);
  EXPECT_GE(result.stats.max_shard_size, result.stats.min_shard_size);
}

TEST(ParallelExplorer, BuildGraphFallsBackToSequential) {
  ExplorerOptions opt;
  opt.num_threads = 4;
  opt.build_graph = true;
  auto result = ExplicitExplorer(models::make_fig7(), opt).explore();
  EXPECT_EQ(result.stats.threads, 1u);  // sequential path was taken
  EXPECT_EQ(result.graph.node_labels.size(), result.state_count);
  EXPECT_EQ(result.graph.edges.size(), result.edge_count);
}

}  // namespace
}  // namespace gpo::reach
