#include "reach/explorer.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "petri/builder.hpp"

namespace gpo::reach {
namespace {

using petri::Marking;
using petri::NetBuilder;
using petri::PetriNet;

TEST(Explorer, DiamondHasPowerSetOfStates) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    auto result =
        ExplicitExplorer(models::make_diamond(n)).explore();
    EXPECT_EQ(result.state_count, std::size_t{1} << n) << "n=" << n;
    EXPECT_TRUE(result.deadlock_found);  // terminal marking
    EXPECT_EQ(result.deadlock_count, 1u);
    EXPECT_FALSE(result.safeness_violation);
  }
}

TEST(Explorer, ConflictChainHasThreeToTheN) {
  for (std::size_t n : {1u, 2u, 4u}) {
    auto result =
        ExplicitExplorer(models::make_conflict_chain(n)).explore();
    std::size_t expect = 1;
    for (std::size_t i = 0; i < n; ++i) expect *= 3;
    EXPECT_EQ(result.state_count, expect) << "n=" << n;
    // All 2^n terminal resolutions are deadlocks.
    EXPECT_EQ(result.deadlock_count, std::size_t{1} << n);
  }
}

TEST(Explorer, CounterexampleReplaysToDeadlock) {
  PetriNet net = models::make_nsdp(3);
  auto result = ExplicitExplorer(net).explore();
  ASSERT_TRUE(result.deadlock_found);
  Marking m = net.initial_marking();
  for (petri::TransitionId t : result.counterexample) {
    ASSERT_TRUE(net.enabled(t, m));
    m = net.fire(t, m);
  }
  EXPECT_EQ(m, *result.first_deadlock);
  EXPECT_TRUE(net.is_deadlocked(m));
}

TEST(Explorer, StopAtFirstDeadlockStopsEarly) {
  PetriNet net = models::make_nsdp(4);
  ExplorerOptions opt;
  opt.stop_at_first_deadlock = true;
  auto early = ExplicitExplorer(net, opt).explore();
  auto full = ExplicitExplorer(net).explore();
  EXPECT_TRUE(early.deadlock_found);
  EXPECT_LT(early.state_count, full.state_count);
}

TEST(Explorer, DeadlockFreeNetReportsNone) {
  auto result = ExplicitExplorer(models::make_readers_writers(3)).explore();
  EXPECT_FALSE(result.deadlock_found);
  EXPECT_EQ(result.deadlock_count, 0u);
}

TEST(Explorer, StateLimitReported) {
  ExplorerOptions opt;
  opt.max_states = 10;
  auto result =
      ExplicitExplorer(models::make_nsdp(6), opt).explore();
  EXPECT_TRUE(result.limit_hit);
  // The limit stops further expansion, but the batch in flight may overshoot
  // by up to one state's successor count.
  EXPECT_LE(result.state_count, 10u + 30u);
}

TEST(Explorer, DetectsSafenessViolation) {
  // a: p0 -> p2 ; b: p1 -> p2 with both p0 and p1 marked: firing both puts
  // two tokens in p2.
  NetBuilder b;
  auto p0 = b.add_place("p0", true);
  auto p1 = b.add_place("p1", true);
  auto p2 = b.add_place("p2");
  auto ta = b.add_transition("a");
  b.connect(ta, {p0}, {p2});
  auto tb = b.add_transition("b");
  b.connect(tb, {p1}, {p2});
  auto result = ExplicitExplorer(b.build()).explore();
  EXPECT_TRUE(result.safeness_violation);
  ASSERT_TRUE(result.unsafe_source.has_value());
}

TEST(Explorer, BadStatePredicate) {
  PetriNet net = models::make_nsdp(2);
  petri::PlaceId eat0 = net.find_place("eat_0");
  ExplorerOptions opt;
  opt.bad_state = [eat0](const Marking& m) { return m.test(eat0); };
  auto result = ExplicitExplorer(net, opt).explore();
  EXPECT_TRUE(result.bad_state_found);
  ASSERT_TRUE(result.first_bad_state.has_value());
  EXPECT_TRUE(result.first_bad_state->test(eat0));
}

TEST(Explorer, BuildGraphMatchesCounts) {
  ExplorerOptions opt;
  opt.build_graph = true;
  auto result = ExplicitExplorer(models::make_fig7(), opt).explore();
  EXPECT_EQ(result.graph.node_labels.size(), result.state_count);
  EXPECT_EQ(result.graph.edges.size(), result.edge_count);
  EXPECT_EQ(result.graph.initial, 0u);
  // Initial label mentions both initially marked places.
  EXPECT_NE(result.graph.node_labels[0].find("p0"), std::string::npos);
  EXPECT_NE(result.graph.node_labels[0].find("p3"), std::string::npos);
}

TEST(Explorer, EdgeCountIsTotalFirings) {
  // Diamond(2): states p0p1 -> (t0|t1) -> ... 4 states, 4 edges.
  auto result = ExplicitExplorer(models::make_diamond(2)).explore();
  EXPECT_EQ(result.state_count, 4u);
  EXPECT_EQ(result.edge_count, 4u);
}

TEST(Explorer, MarkingToString) {
  PetriNet net = models::make_fig7();
  EXPECT_EQ(marking_to_string(net, net.initial_marking()), "{p0,p3}");
  EXPECT_EQ(marking_to_string(net, Marking(net.place_count())), "{}");
}

// The paper's Fig. 1 example: the full graph of n concurrent transitions has
// n! interleavings but 2^n states; every permutation is a valid firing
// sequence.
TEST(Explorer, Fig1InterleavingSemantics) {
  PetriNet net = models::make_diamond(3);
  Marking m = net.initial_marking();
  // Fire in an arbitrary order; all orders end in the same marking.
  Marking end1 = net.fire(2, net.fire(0, net.fire(1, m)));
  Marking end2 = net.fire(0, net.fire(1, net.fire(2, m)));
  EXPECT_EQ(end1, end2);
  EXPECT_TRUE(net.is_deadlocked(end1));
}

}  // namespace
}  // namespace gpo::reach
