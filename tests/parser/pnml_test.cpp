#include "parser/pnml.hpp"

#include <gtest/gtest.h>

#include <random>

#include "models/models.hpp"
#include "petri/builder.hpp"

namespace gpo::parser {
namespace {

using petri::PetriNet;

constexpr const char* kMinimal = R"(<?xml version="1.0"?>
<pnml xmlns="http://www.pnml.org/version-2009/grammar/pnml">
  <net id="demo" type="http://www.pnml.org/version-2009/grammar/ptnet">
    <page id="g">
      <place id="p0">
        <name><text>start</text></name>
        <initialMarking><text>1</text></initialMarking>
      </place>
      <place id="p1"/>
      <transition id="t0"><name><text>go</text></name></transition>
      <arc id="a0" source="p0" target="t0"/>
      <arc id="a1" source="t0" target="p1"/>
    </page>
  </net>
</pnml>)";

TEST(Pnml, ParsesMinimalDocument) {
  PetriNet net = parse_pnml(kMinimal);
  EXPECT_EQ(net.name(), "demo");
  EXPECT_EQ(net.place_count(), 2u);
  EXPECT_EQ(net.transition_count(), 1u);
  EXPECT_EQ(net.place(0).name, "start");  // label wins over id
  EXPECT_EQ(net.place(1).name, "p1");     // id fallback
  EXPECT_EQ(net.transition(0).name, "go");
  EXPECT_TRUE(net.initial_marking().test(0));
  EXPECT_FALSE(net.initial_marking().test(1));
  EXPECT_EQ(net.transition(0).pre, std::vector<petri::PlaceId>{0});
  EXPECT_EQ(net.transition(0).post, std::vector<petri::PlaceId>{1});
}

TEST(Pnml, ToleratesTopLevelNodesWithoutPage) {
  PetriNet net = parse_pnml(R"(<pnml><net id="n">
      <place id="p"><initialMarking><text>1</text></initialMarking></place>
      <transition id="t"/>
      <arc id="a" source="p" target="t"/>
    </net></pnml>)");
  EXPECT_EQ(net.place_count(), 1u);
  EXPECT_EQ(net.transition_count(), 1u);
}

TEST(Pnml, NestedPagesAreFlattened) {
  PetriNet net = parse_pnml(R"(<pnml><net id="n">
      <page id="outer">
        <place id="p"><initialMarking><text>1</text></initialMarking></place>
        <page id="inner">
          <transition id="t"/>
          <arc id="a" source="p" target="t"/>
        </page>
      </page>
    </net></pnml>)");
  EXPECT_EQ(net.place_count(), 1u);
  EXPECT_EQ(net.transition_count(), 1u);
  EXPECT_EQ(net.transition(0).pre.size(), 1u);
}

TEST(Pnml, CommentsEntitiesAndNamespaces) {
  PetriNet net = parse_pnml(R"(<?xml version="1.0"?>
    <!-- a comment -->
    <pnml:pnml xmlns:pnml="x">
      <pnml:net id="a&amp;b">
        <place id="p"><name><text>&lt;p&gt;</text></name>
          <initialMarking><text> 1 </text></initialMarking></place>
        <transition id="t"/>
        <arc id="a" source="p" target="t"/>
      </pnml:net>
    </pnml:pnml>)");
  EXPECT_EQ(net.name(), "a&b");
  EXPECT_EQ(net.place(0).name, "<p>");
}

TEST(Pnml, RejectsMalformedXml) {
  EXPECT_THROW((void)parse_pnml("<pnml><net id='n'></pnml>"), ParseError);
  EXPECT_THROW((void)parse_pnml("<pnml"), ParseError);
  EXPECT_THROW((void)parse_pnml("not xml at all"), ParseError);
  EXPECT_THROW((void)parse_pnml("<pnml></pnml><extra/>"), ParseError);
}

TEST(Pnml, RejectsUnsupportedConstructs) {
  // Root must be <pnml> with a <net>.
  EXPECT_THROW((void)parse_pnml("<net id='n'></net>"), ParseError);
  EXPECT_THROW((void)parse_pnml("<pnml></pnml>"), ParseError);
  // Non-safe markings and weighted arcs are out of scope.
  EXPECT_THROW((void)parse_pnml(R"(<pnml><net id="n">
      <place id="p"><initialMarking><text>2</text></initialMarking></place>
    </net></pnml>)"),
               ParseError);
  EXPECT_THROW((void)parse_pnml(R"(<pnml><net id="n">
      <place id="p"><initialMarking><text>1</text></initialMarking></place>
      <transition id="t"/>
      <arc id="a" source="p" target="t">
        <inscription><text>3</text></inscription>
      </arc>
    </net></pnml>)"),
               ParseError);
  // Arcs must connect a place and a transition that exist.
  EXPECT_THROW((void)parse_pnml(R"(<pnml><net id="n">
      <place id="p"/><transition id="t"/>
      <arc id="a" source="p" target="zzz"/>
    </net></pnml>)"),
               ParseError);
}

// Expects `fn` to throw a ParseError and returns it for inspection.
ParseError capture_error(const std::string& text) {
  try {
    (void)parse_pnml(text);
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError for: " << text;
  return ParseError(0, "no error");
}

TEST(Pnml, MalformedArcWeightIsADiagnosableError) {
  // stoi's prefix parsing would accept "1x" as 1 and let "abc" escape as a
  // bare std::invalid_argument; both must be ParseErrors naming the value.
  for (const char* weight : {"abc", "1x", "--2", "+", "1 2"}) {
    std::string doc = std::string(R"(<pnml><net id="n">
      <place id="p"><initialMarking><text>1</text></initialMarking></place>
      <transition id="t"/>
      <arc id="a" source="p" target="t">
        <inscription><text>)") +
                      weight + R"(</text></inscription>
      </arc>
    </net></pnml>)";
    ParseError e = capture_error(doc);
    EXPECT_NE(std::string(e.what()).find("arc weight"), std::string::npos)
        << "weight '" << weight << "' error: " << e.what();
    EXPECT_NE(std::string(e.what()).find(weight), std::string::npos)
        << "diagnostic must quote the offending value: " << e.what();
  }
}

TEST(Pnml, MalformedInitialMarkingIsADiagnosableError) {
  ParseError e = capture_error(R"(<pnml><net id="n">
      <place id="p"><initialMarking><text>one</text></initialMarking></place>
    </net></pnml>)");
  EXPECT_NE(std::string(e.what()).find("initial marking"), std::string::npos)
      << e.what();
  EXPECT_NE(std::string(e.what()).find("'one'"), std::string::npos)
      << e.what();
}

TEST(Pnml, ErrorsCarryTheOffendingLine) {
  // The malformed arc sits on line 5 of this document (1-based).
  ParseError arc = capture_error(
      "<pnml><net id=\"n\">\n"       // 1
      "  <place id=\"p\"/>\n"        // 2
      "  <transition id=\"t\"/>\n"   // 3
      "  <arc id=\"a\" source=\"p\" target=\"t\">\n"  // 4
      "    <inscription><text>7</text></inscription>\n"  // 5
      "  </arc>\n"
      "</net></pnml>\n");
  EXPECT_EQ(arc.line(), 4u) << arc.what();

  ParseError place = capture_error(
      "<pnml><net id=\"n\">\n"                       // 1
      "  <place id=\"ok\"/>\n"                       // 2
      "  <place><name><text>anon</text></name></place>\n"  // 3: no id
      "</net></pnml>\n");
  EXPECT_EQ(place.line(), 3u) << place.what();

  ParseError weight = capture_error(
      "<pnml><net id=\"n\">\n"                      // 1
      "  <place id=\"p\"/>\n"                       // 2
      "  <transition id=\"t\"/>\n"                  // 3
      "  <arc id=\"a\" source=\"p\" target=\"t\">\n"  // 4
      "    <inscription><text>zz</text></inscription>\n"  // 5
      "  </arc>\n"
      "</net></pnml>\n");
  EXPECT_EQ(weight.line(), 5u) << weight.what();

  // XML-level failures report the line too (mismatched close tag on 3).
  ParseError xml = capture_error(
      "<pnml>\n"       // 1
      "  <net id=\"n\">\n"  // 2
      "  </wrong>\n"   // 3
      "</pnml>\n");
  EXPECT_EQ(xml.line(), 3u) << xml.what();
}

class PnmlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PnmlRoundTrip, WriteThenParseIsIdentity) {
  std::string which = GetParam();
  PetriNet original = which == "nsdp"   ? models::make_nsdp(3)
                      : which == "asat" ? models::make_arbiter_tree(4)
                      : which == "over" ? models::make_overtake(3)
                      : which == "rw"   ? models::make_readers_writers(4)
                                        : models::make_fig7();
  PetriNet reparsed = parse_pnml(pnml_to_string(original));
  ASSERT_EQ(reparsed.place_count(), original.place_count());
  ASSERT_EQ(reparsed.transition_count(), original.transition_count());
  EXPECT_EQ(reparsed.initial_marking(), original.initial_marking());
  for (petri::PlaceId p = 0; p < original.place_count(); ++p)
    EXPECT_EQ(reparsed.place(p).name, original.place(p).name);
  for (petri::TransitionId t = 0; t < original.transition_count(); ++t) {
    EXPECT_EQ(reparsed.transition(t).name, original.transition(t).name);
    EXPECT_EQ(reparsed.transition(t).pre, original.transition(t).pre);
    EXPECT_EQ(reparsed.transition(t).post, original.transition(t).post);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, PnmlRoundTrip,
                         ::testing::Values("nsdp", "asat", "over", "rw",
                                           "fig7"));

TEST(Pnml, RandomNetsRoundTrip) {
  for (std::uint64_t seed = 40; seed < 60; ++seed) {
    models::RandomNetParams p;
    p.seed = seed;
    p.transitions = 4 + seed % 10;
    PetriNet original = models::make_random_net(p);
    PetriNet reparsed = parse_pnml(pnml_to_string(original));
    ASSERT_EQ(reparsed.place_count(), original.place_count());
    EXPECT_EQ(reparsed.initial_marking(), original.initial_marking());
    for (petri::TransitionId t = 0; t < original.transition_count(); ++t) {
      EXPECT_EQ(reparsed.transition(t).pre, original.transition(t).pre);
      EXPECT_EQ(reparsed.transition(t).post, original.transition(t).post);
    }
  }
}

TEST(Pnml, FuzzedInputsNeverCrash) {
  // Mutate a valid document; the parser must either succeed or throw
  // ParseError/NetError — never crash or hang.
  std::string base = pnml_to_string(models::make_fig7());
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng() % 5);
    for (int e = 0; e < edits; ++e) {
      std::size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0: mutated[pos] = static_cast<char>(rng() % 128); break;
        case 1: mutated.erase(pos, 1 + rng() % 10); break;
        default:
          mutated.insert(pos, std::string(1 + rng() % 5,
                                          static_cast<char>(rng() % 128)));
      }
      if (mutated.empty()) mutated = "<";
    }
    try {
      (void)parse_pnml(mutated);
    } catch (const ParseError&) {
    } catch (const petri::NetError&) {
    } catch (const std::invalid_argument&) {  // std::stoi on mutated digits
    } catch (const std::out_of_range&) {
    }
  }
}

}  // namespace
}  // namespace gpo::parser
