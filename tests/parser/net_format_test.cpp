#include "parser/net_format.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "petri/builder.hpp"

namespace gpo::parser {
namespace {

using petri::PetriNet;

TEST(Parser, ParsesMinimalNet) {
  PetriNet net = parse_net(R"(
    net demo
    place p0 marked
    place p1
    trans t0
    arc p0 -> t0
    arc t0 -> p1
  )");
  EXPECT_EQ(net.name(), "demo");
  EXPECT_EQ(net.place_count(), 2u);
  EXPECT_EQ(net.transition_count(), 1u);
  EXPECT_TRUE(net.initial_marking().test(net.find_place("p0")));
  EXPECT_FALSE(net.initial_marking().test(net.find_place("p1")));
  EXPECT_EQ(net.transition(0).pre, std::vector<petri::PlaceId>{0});
  EXPECT_EQ(net.transition(0).post, std::vector<petri::PlaceId>{1});
}

TEST(Parser, CommentsAndBlankLines) {
  PetriNet net = parse_net(
      "# full-line comment\n"
      "\n"
      "place p0 marked  # trailing comment\n"
      "trans t0 ; semicolon comment\n"
      "arc p0 -> t0\n");
  EXPECT_EQ(net.place_count(), 1u);
  EXPECT_EQ(net.transition_count(), 1u);
}

TEST(Parser, ArrowWithoutSpaces) {
  PetriNet net = parse_net(
      "place p0 marked\ntrans t0\narc p0->t0\narc t0 ->p0\n");
  EXPECT_EQ(net.transition(0).pre.size(), 1u);
  EXPECT_EQ(net.transition(0).post.size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_net("place p0\n???\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parser, RejectsMalformedDeclarations) {
  EXPECT_THROW((void)parse_net("place\n"), ParseError);
  EXPECT_THROW((void)parse_net("place p extra junk\n"), ParseError);
  EXPECT_THROW((void)parse_net("trans\n"), ParseError);
  EXPECT_THROW((void)parse_net("arc a b\n"), ParseError);
  EXPECT_THROW((void)parse_net("frobnicate x\n"), ParseError);
  EXPECT_THROW((void)parse_net("net a\nnet b\n"), ParseError);
}

TEST(Parser, RejectsUndeclaredArcEndpoints) {
  EXPECT_THROW((void)parse_net("place p\ntrans t\narc q -> t\n"), ParseError);
  EXPECT_THROW((void)parse_net("place p\ntrans t\narc p -> u\n"), ParseError);
}

TEST(Parser, RejectsPlaceToPlaceArcs) {
  EXPECT_THROW((void)parse_net("place p\nplace q\ntrans t\narc p -> q\n"),
               ParseError);
  EXPECT_THROW((void)parse_net("place p\ntrans t\ntrans u\narc t -> u\n"),
               ParseError);
}

TEST(Parser, StructuralValidationStillApplies) {
  // Transition without input places: builder-level NetError.
  EXPECT_THROW((void)parse_net("place p\ntrans t\narc t -> p\n"),
               petri::NetError);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW((void)parse_net_file("/nonexistent/net.net"),
               std::runtime_error);
}

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, WriteThenParseIsIdentity) {
  std::string name = GetParam();
  PetriNet original = [&]() -> PetriNet {
    if (name == "nsdp") return models::make_nsdp(3);
    if (name == "asat") return models::make_arbiter_tree(4);
    if (name == "over") return models::make_overtake(3);
    if (name == "rw") return models::make_readers_writers(4);
    if (name == "chain") return models::make_conflict_chain(3);
    return models::make_fig7();
  }();

  std::string text = net_to_string(original);
  PetriNet reparsed = parse_net(text);

  ASSERT_EQ(reparsed.place_count(), original.place_count());
  ASSERT_EQ(reparsed.transition_count(), original.transition_count());
  EXPECT_EQ(reparsed.initial_marking(), original.initial_marking());
  for (petri::PlaceId p = 0; p < original.place_count(); ++p)
    EXPECT_EQ(reparsed.place(p).name, original.place(p).name);
  for (petri::TransitionId t = 0; t < original.transition_count(); ++t) {
    EXPECT_EQ(reparsed.transition(t).name, original.transition(t).name);
    EXPECT_EQ(reparsed.transition(t).pre, original.transition(t).pre);
    EXPECT_EQ(reparsed.transition(t).post, original.transition(t).post);
  }
  // Idempotence: serializing again produces the same text.
  EXPECT_EQ(net_to_string(reparsed), text);
}

INSTANTIATE_TEST_SUITE_P(Models, RoundTrip,
                         ::testing::Values("nsdp", "asat", "over", "rw",
                                           "chain", "fig7"));

}  // namespace
}  // namespace gpo::parser
