#include "mc/ctl.hpp"

#include <gtest/gtest.h>

#include <random>

#include "models/models.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::mc {
namespace {

using petri::PetriNet;

TEST(CtlParser, ParsesAndRenders) {
  PetriNet net = models::make_fig7();
  auto check = [&](const char* in, const char* rendered) {
    CtlFormula f = parse_ctl(in, net);
    EXPECT_EQ(f.to_string(net), rendered) << in;
  };
  check("p0", "p0");
  check("deadlock", "deadlock");
  check("!p0", "!p0");
  check("p0 && p1 || p2", "((p0 && p1) || p2)");
  check("p0 -> p1 -> p2", "(p0 -> (p1 -> p2))");  // right associative
  check("AG EF p0", "AG EF p0");
  check("E [ p0 U p4 ]", "E [p0 U p4]");
  check("A [ !p0 U deadlock ]", "A [!p0 U deadlock]");
  check("AG (p0 -> AF p4)", "AG (p0 -> AF p4)");
}

TEST(CtlParser, Errors) {
  PetriNet net = models::make_fig7();
  EXPECT_THROW((void)parse_ctl("", net), parser::ParseError);
  EXPECT_THROW((void)parse_ctl("p0 &&", net), parser::ParseError);
  EXPECT_THROW((void)parse_ctl("nosuchplace", net), parser::ParseError);
  EXPECT_THROW((void)parse_ctl("(p0", net), parser::ParseError);
  EXPECT_THROW((void)parse_ctl("E p0 U p1 ]", net), parser::ParseError);
  EXPECT_THROW((void)parse_ctl("E [ p0 p1 ]", net), parser::ParseError);
  EXPECT_THROW((void)parse_ctl("p0 p1", net), parser::ParseError);
  EXPECT_THROW((void)parse_ctl("p0 @ p1", net), parser::ParseError);
}

TEST(Ctl, AtomsAndConstants) {
  PetriNet net = models::make_fig7();
  EXPECT_TRUE(check_ctl(net, "p0").holds);   // initially marked
  EXPECT_FALSE(check_ctl(net, "p4").holds);  // initially empty
  EXPECT_TRUE(check_ctl(net, "true").holds);
  EXPECT_FALSE(check_ctl(net, "false").holds);
  auto r = check_ctl(net, "true");
  EXPECT_EQ(r.satisfying_states, r.state_count);
}

TEST(Ctl, EfDeadlockMatchesDeadlockSearch) {
  for (auto make : {+[] { return models::make_nsdp(3); },
                    +[] { return models::make_readers_writers(3); },
                    +[] { return models::make_overtake(3); },
                    +[] { return models::make_arbiter_tree(2); }}) {
    PetriNet net = make();
    auto ground = reach::ExplicitExplorer(net).explore();
    EXPECT_EQ(check_ctl(net, "EF deadlock").holds, ground.deadlock_found)
        << net.name();
  }
}

TEST(Ctl, AgMutualExclusionOnArbiter) {
  PetriNet net = models::make_arbiter_tree(2);
  EXPECT_TRUE(check_ctl(net, "AG !(crit_2 && crit_3)").holds);
  // And the liveness-flavoured: a pending request can always be granted.
  EXPECT_TRUE(check_ctl(net, "AG (wait_2 -> EF crit_2)").holds);
  // But not inevitably (the sibling may win forever): AF fails.
  EXPECT_FALSE(check_ctl(net, "AG (wait_2 -> AF crit_2)").holds);
}

TEST(Ctl, NsdpDeadlockCharacterization) {
  PetriNet net = models::make_nsdp(2);
  EXPECT_TRUE(check_ctl(net, "EF deadlock").holds);
  // Not every path deadlocks (philosophers can cycle forever).
  EXPECT_FALSE(check_ctl(net, "AF deadlock").holds);
  // All-left implies deadlock.
  EXPECT_TRUE(check_ctl(net, "AG (hasL_0 && hasL_1 -> deadlock)").holds);
  // Eating is always still possible before the system commits.
  EXPECT_TRUE(check_ctl(net, "EF eat_0").holds);
  // ... but it is not invariantly reachable (the deadlock kills it).
  EXPECT_FALSE(check_ctl(net, "AG EF eat_0").holds);
}

TEST(Ctl, HomeStateOfCyclicScheduler) {
  // Deadlock-free and reversible-ish: from everywhere the initial token
  // configuration is reachable again.
  PetriNet net = models::make_cyclic_scheduler(3);
  EXPECT_TRUE(check_ctl(net, "AG !deadlock").holds);
  EXPECT_TRUE(check_ctl(net, "AG EF (tok_0 && idle_0 && idle_1 && idle_2)")
                  .holds);
}

TEST(Ctl, UntilOperators) {
  // Linear net: p0 -> a -> p1 -> b -> p2 (dead end).
  petri::NetBuilder bld;
  auto p0 = bld.add_place("p0", true);
  auto p1 = bld.add_place("p1");
  auto p2 = bld.add_place("p2");
  auto a = bld.add_transition("a");
  bld.connect(a, {p0}, {p1});
  auto b = bld.add_transition("b");
  bld.connect(b, {p1}, {p2});
  PetriNet net = bld.build();
  (void)p0;
  (void)p1;
  (void)p2;

  EXPECT_TRUE(check_ctl(net, "A [ !p2 U p1 ]").holds);
  EXPECT_TRUE(check_ctl(net, "E [ !p2 U p2 ]").holds);
  EXPECT_TRUE(check_ctl(net, "A [ true U deadlock ]").holds);  // AF deadlock
  EXPECT_FALSE(check_ctl(net, "A [ p0 U p2 ]").holds);  // p1 gap breaks it
  EXPECT_FALSE(check_ctl(net, "E [ p0 U (p0 && p2) ]").holds);
}

TEST(Ctl, AgCounterexampleReplays) {
  PetriNet net = models::make_nsdp(3);
  auto r = check_ctl(net, "AG !deadlock");
  ASSERT_FALSE(r.holds);
  ASSERT_FALSE(r.counterexample.empty());
  petri::Marking m = net.initial_marking();
  for (petri::TransitionId t : r.counterexample) {
    ASSERT_TRUE(net.enabled(t, m));
    m = net.fire(t, m);
  }
  EXPECT_TRUE(net.is_deadlocked(m));
}

TEST(Ctl, DualitiesOnRandomNets) {
  // Structural dualities evaluated through different code paths must agree
  // state-set-wise; checked via satisfying_states counts and the initial
  // verdict.
  std::mt19937 rng(31);
  const char* duals[][2] = {
      {"AX p", "!EX !p"},
      {"AF p", "!EG !p"},
      {"AG p", "!EF !p"},
      {"EF p", "E [ true U p ]"},
      {"AF p", "A [ true U p ]"},
      {"A [ p U q ]", "!(E [ !q U (!p && !q) ] || EG !q)"},
  };
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    models::RandomNetParams params;
    params.machines = 2;
    params.states_per_machine = 3;
    params.transitions = 4 + seed % 6;
    params.seed = seed;
    PetriNet net = models::make_random_net(params);
    // Two atom choices to substitute for p/q.
    std::string p = net.place(rng() % net.place_count()).name;
    std::string q = net.place(rng() % net.place_count()).name;
    for (const auto& [lhs, rhs] : duals) {
      auto substitute = [&](std::string s) {
        std::string out;
        for (std::size_t i = 0; i < s.size(); ++i) {
          if (s[i] == 'p' && (i + 1 == s.size() || !std::isalnum(s[i + 1])))
            out += p;
          else if (s[i] == 'q' &&
                   (i + 1 == s.size() || !std::isalnum(s[i + 1])))
            out += q;
          else
            out += s[i];
        }
        return out;
      };
      auto a = check_ctl(net, substitute(lhs));
      auto b = check_ctl(net, substitute(rhs));
      EXPECT_EQ(a.holds, b.holds) << lhs << " vs " << rhs << " seed=" << seed;
      EXPECT_EQ(a.satisfying_states, b.satisfying_states)
          << lhs << " vs " << rhs << " seed=" << seed;
    }
  }
}

TEST(Ctl, SafetyFormulasAgreeWithSafetyModule) {
  PetriNet net = models::make_readers_writers(3);
  // AG !(writing_0 && writing_1) <=> the safety module's verdict.
  EXPECT_TRUE(check_ctl(net, "AG !(writing_0 && writing_1)").holds);
  EXPECT_FALSE(check_ctl(net, "AG !(reading_0 && reading_1)").holds);
}

TEST(Ctl, StateLimit) {
  CtlOptions opt;
  opt.max_states = 10;
  auto r = check_ctl(models::make_nsdp(4), "EF deadlock", opt);
  EXPECT_TRUE(r.limit_hit);
}

}  // namespace
}  // namespace gpo::mc
