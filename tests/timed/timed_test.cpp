#include "timed/timed_net.hpp"
#include "timed/parse.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "petri/builder.hpp"
#include "reach/explorer.hpp"

namespace gpo::timed {
namespace {

using petri::Marking;
using petri::NetBuilder;
using petri::PetriNet;
using petri::TransitionId;

/// Two independent transitions a, b with the given intervals.
TimedNet two_concurrent(TimeInterval ia, TimeInterval ib) {
  NetBuilder bld;
  auto pa = bld.add_place("pa", true);
  auto pb = bld.add_place("pb", true);
  auto qa = bld.add_place("qa");
  auto qb = bld.add_place("qb");
  auto a = bld.add_transition("a");
  bld.connect(a, {pa}, {qa});
  auto b = bld.add_transition("b");
  bld.connect(b, {pb}, {qb});
  return TimedNet(bld.build(), {ia, ib});
}

/// Conflict pair a vs b on a shared place.
TimedNet conflict_pair(TimeInterval ia, TimeInterval ib) {
  NetBuilder bld;
  auto p = bld.add_place("p", true);
  auto qa = bld.add_place("qa");
  auto qb = bld.add_place("qb");
  auto a = bld.add_transition("a");
  bld.connect(a, {p}, {qa});
  auto b = bld.add_transition("b");
  bld.connect(b, {p}, {qb});
  return TimedNet(bld.build(), {ia, ib});
}

TEST(TimedNet, ValidatesIntervals) {
  NetBuilder bld;
  auto p = bld.add_place("p", true);
  auto q = bld.add_place("q");
  auto t = bld.add_transition("t");
  bld.connect(t, {p}, {q});
  PetriNet net = bld.build();
  EXPECT_THROW(TimedNet(net, {}), std::invalid_argument);
  EXPECT_THROW(TimedNet(net, {TimeInterval{-1, Bound::inf()}}),
               std::invalid_argument);
  EXPECT_THROW(TimedNet(net, {TimeInterval{5, Bound{3, false}}}),
               std::invalid_argument);
  EXPECT_NO_THROW(TimedNet(net, {TimeInterval{2, Bound{2, false}}}));
}

TEST(StateClass, InitialClassHoldsStaticIntervals) {
  TimedNet tnet = two_concurrent({2, Bound{5, false}}, {1, Bound{3, false}});
  StateClassExplorer ex(tnet);
  StateClass c = ex.initial_class();
  ASSERT_EQ(c.enabled.size(), 2u);
  // dbm[i][0] = lft, dbm[0][i] = -eft (before tightening 5 vs 3+? closure
  // may tighten a's upper bound through b's: theta_a <= theta_b + (a-b
  // difference) — with no cross constraints it stays).
  const std::size_t n = 3;
  EXPECT_EQ(c.dbm[1 * n + 0], 5);
  EXPECT_EQ(c.dbm[0 * n + 1], -2);
  EXPECT_EQ(c.dbm[2 * n + 0], 3);
  EXPECT_EQ(c.dbm[0 * n + 2], -1);
}

TEST(StateClass, TimingDisablesLateCompetitorInConcurrency) {
  // a in [0,1], b in [2,3]: a's deadline passes before b may fire, so the
  // only firable transition initially is a.
  TimedNet tnet = two_concurrent({0, Bound{1, false}}, {2, Bound{3, false}});
  StateClassExplorer ex(tnet);
  auto f = ex.firable(ex.initial_class());
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(tnet.net().transition(f[0]).name, "a");
}

TEST(StateClass, OverlappingIntervalsAllowBothOrders) {
  TimedNet tnet = two_concurrent({0, Bound{4, false}}, {2, Bound{3, false}});
  StateClassExplorer ex(tnet);
  auto f = ex.firable(ex.initial_class());
  EXPECT_EQ(f.size(), 2u);
}

TEST(StateClass, TimedConflictPrunesSlowBranch) {
  // In a conflict, the competitor whose eft exceeds the other's lft never
  // wins the race.
  TimedNet tnet = conflict_pair({0, Bound{1, false}}, {2, Bound{4, false}});
  StateClassExplorer ex(tnet);
  auto f = ex.firable(ex.initial_class());
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(tnet.net().transition(f[0]).name, "a");
  auto r = ex.explore();
  EXPECT_EQ(r.class_count, 2u);  // initial + a-fired (b branch pruned)
}

TEST(StateClass, UntimedIntervalsKeepBothBranches) {
  TimedNet tnet = conflict_pair({0, Bound::inf()}, {0, Bound::inf()});
  auto r = StateClassExplorer(tnet).explore();
  EXPECT_EQ(r.class_count, 3u);
  EXPECT_EQ(r.distinct_markings, 3u);
}

TEST(StateClass, PersistentTransitionKeepsElapsedTime) {
  // a in [1,1] and b in [3,3] concurrent: after a fires at time 1, b's
  // remaining delay is [2,2]; then b must be the unique next event, and the
  // graph is a 3-class chain.
  TimedNet tnet = two_concurrent({1, Bound{1, false}}, {3, Bound{3, false}});
  StateClassExplorer ex(tnet);
  StateClass c0 = ex.initial_class();
  auto f0 = ex.firable(c0);
  ASSERT_EQ(f0.size(), 1u);
  StateClass c1 = ex.fire(c0, f0[0]);
  ASSERT_EQ(c1.enabled.size(), 1u);
  const std::size_t n = 2;
  EXPECT_EQ(c1.dbm[1 * n + 0], 2);   // upper bound on remaining delay
  EXPECT_EQ(c1.dbm[0 * n + 1], -2);  // lower bound
  auto r = ex.explore();
  EXPECT_EQ(r.class_count, 3u);
  EXPECT_TRUE(r.deadlock_found);  // terminal marking
}

TEST(StateClass, NewlyEnabledGetsFreshInterval) {
  // p -> a[5,5] -> q -> b[1,2] -> done: b's clock starts when a fires.
  NetBuilder bld;
  auto p = bld.add_place("p", true);
  auto q = bld.add_place("q");
  auto done = bld.add_place("done");
  auto a = bld.add_transition("a");
  bld.connect(a, {p}, {q});
  auto b = bld.add_transition("b");
  bld.connect(b, {q}, {done});
  TimedNet tnet(bld.build(),
                {TimeInterval{5, Bound{5, false}}, TimeInterval{1, Bound{2, false}}});
  StateClassExplorer ex(tnet);
  StateClass c1 = ex.fire(ex.initial_class(), 0);
  const std::size_t n = 2;
  EXPECT_EQ(c1.dbm[1 * n + 0], 2);
  EXPECT_EQ(c1.dbm[0 * n + 1], -1);
}

TEST(StateClass, SelfConflictReenablementIsFresh) {
  // A cyclic transition re-enables itself: every firing restarts its clock,
  // and the class graph has exactly one class (it loops onto itself).
  NetBuilder bld;
  auto p = bld.add_place("p", true);
  auto t = bld.add_transition("t");
  bld.connect(t, {p}, {p});
  TimedNet tnet(bld.build(), {TimeInterval{1, Bound{2, false}}});
  auto r = StateClassExplorer(tnet).explore();
  EXPECT_EQ(r.class_count, 1u);
  EXPECT_FALSE(r.deadlock_found);
}

TEST(StateClassGraph, UntimedNetMatchesClassicalReachability) {
  // With every interval [0, inf) the class graph collapses to the ordinary
  // reachability graph: same marking count and same deadlock verdict.
  for (auto make : {+[] { return models::make_nsdp(2); },
                    +[] { return models::make_conflict_chain(3); },
                    +[] { return models::make_overtake(3); },
                    +[] { return models::make_readers_writers(3); }}) {
    PetriNet net = make();
    std::vector<TimeInterval> ivs(net.transition_count());
    TimedNet tnet(net, ivs);
    auto timed = StateClassExplorer(tnet).explore();
    auto ground = reach::ExplicitExplorer(net).explore();
    EXPECT_EQ(timed.distinct_markings, ground.state_count) << net.name();
    EXPECT_EQ(timed.class_count, ground.state_count) << net.name();
    EXPECT_EQ(timed.deadlock_found, ground.deadlock_found) << net.name();
  }
}

TEST(StateClassGraph, TimedMarkingsAreSubsetOfUntimed) {
  // Any timing only prunes behaviour: markings reached in the class graph
  // are classically reachable.
  PetriNet net = models::make_nsdp(2);
  std::vector<TimeInterval> ivs(net.transition_count());
  for (std::size_t t = 0; t < ivs.size(); ++t)
    ivs[t] = TimeInterval{static_cast<std::int64_t>(t % 3),
                          Bound{static_cast<std::int64_t>(3 + t % 4), false}};
  TimedNet tnet(net, ivs);
  auto timed = StateClassExplorer(tnet).explore();
  auto ground = reach::ExplicitExplorer(net).explore();
  EXPECT_LE(timed.distinct_markings, ground.state_count);
}

TEST(StateClassGraph, TimingCanRemoveADeadlock) {
  // p cycles through a (fast) back to p; b (slow) leads into a dead sink.
  // Untimed, the b-branch deadlocks. Timed, a's deadline (lft = 1) always
  // beats b's earliest firing (eft = 3), and every firing of a disables and
  // re-enables b, resetting its clock: b never fires and the deadlock
  // disappears.
  NetBuilder bld;
  auto p = bld.add_place("p", true);
  auto qa = bld.add_place("qa");
  auto qb = bld.add_place("qb");
  auto a = bld.add_transition("a");
  bld.connect(a, {p}, {qa});
  auto c = bld.add_transition("c");
  bld.connect(c, {qa}, {p});
  auto b = bld.add_transition("b");
  bld.connect(b, {p}, {qb});
  PetriNet net = bld.build();
  EXPECT_TRUE(reach::ExplicitExplorer(net).explore().deadlock_found);

  TimedNet tnet(net, {TimeInterval{0, Bound{1, false}},
                      TimeInterval{0, Bound{1, false}},
                      TimeInterval{3, Bound{4, false}}});
  auto timed = StateClassExplorer(tnet).explore();
  EXPECT_FALSE(timed.deadlock_found);
  // The dead sink's marking is never reached.
  EXPECT_LT(timed.distinct_markings,
            reach::ExplicitExplorer(net).explore().state_count);
}

TEST(StateClassGraph, DeadlockTraceReplays) {
  TimedNet tnet = two_concurrent({1, Bound{1, false}}, {3, Bound{3, false}});
  auto r = StateClassExplorer(tnet).explore();
  ASSERT_TRUE(r.deadlock_found);
  Marking m = tnet.net().initial_marking();
  for (TransitionId t : r.counterexample) {
    ASSERT_TRUE(tnet.net().enabled(t, m));
    m = tnet.net().fire(t, m);
  }
  EXPECT_EQ(m, *r.deadlock_marking);
}

TEST(TimedParse, ParsesAnnotatedNet) {
  TimedNet tnet = parse_timed_net(R"(
    net demo
    place p0 marked
    place p1
    place p2
    trans a
    trans b
    arc p0 -> a
    arc a -> p1
    arc p1 -> b
    arc b -> p2
    time a 2 5
    time b 1 inf
  )");
  EXPECT_EQ(tnet.net().name(), "demo");
  auto a = tnet.net().find_transition("a");
  auto b = tnet.net().find_transition("b");
  EXPECT_EQ(tnet.interval(a).eft, 2);
  EXPECT_EQ(tnet.interval(a).lft, (Bound{5, false}));
  EXPECT_EQ(tnet.interval(b).eft, 1);
  EXPECT_TRUE(tnet.interval(b).lft.infinite);
}

TEST(TimedParse, DefaultsToUntimed) {
  TimedNet tnet = parse_timed_net("place p marked\ntrans t\narc p -> t\n");
  EXPECT_EQ(tnet.interval(0).eft, 0);
  EXPECT_TRUE(tnet.interval(0).lft.infinite);
}

TEST(TimedParse, Errors) {
  const char* base = "place p marked\ntrans t\narc p -> t\n";
  EXPECT_THROW((void)parse_timed_net(std::string(base) + "time t 1\n"),
               parser::ParseError);
  EXPECT_THROW((void)parse_timed_net(std::string(base) + "time u 1 2\n"),
               parser::ParseError);
  EXPECT_THROW((void)parse_timed_net(std::string(base) + "time t x 2\n"),
               parser::ParseError);
  EXPECT_THROW(
      (void)parse_timed_net(std::string(base) + "time t 1 2\ntime t 1 3\n"),
      parser::ParseError);
  EXPECT_THROW((void)parse_timed_net(std::string(base) + "time t 5 2\n"),
               std::invalid_argument);  // lft < eft
}

TEST(TimedParse, RoundTrip) {
  petri::NetBuilder bld("rt");
  auto p = bld.add_place("p", true);
  auto q = bld.add_place("q");
  auto a = bld.add_transition("a");
  bld.connect(a, {p}, {q});
  auto b = bld.add_transition("b");
  bld.connect(b, {q}, {p});
  TimedNet original(bld.build(), {TimeInterval{1, Bound{4, false}},
                                  TimeInterval{0, Bound::inf()}});
  TimedNet reparsed = parse_timed_net(timed_net_to_string(original));
  for (petri::TransitionId t = 0; t < 2; ++t) {
    EXPECT_EQ(reparsed.interval(t).eft, original.interval(t).eft);
    EXPECT_EQ(reparsed.interval(t).lft, original.interval(t).lft);
  }
  // Same class graph either way.
  auto r1 = StateClassExplorer(original).explore();
  auto r2 = StateClassExplorer(reparsed).explore();
  EXPECT_EQ(r1.class_count, r2.class_count);
}

TEST(StateClassGraph, ClassLimit) {
  PetriNet net = models::make_nsdp(3);
  std::vector<TimeInterval> ivs(net.transition_count());
  TimedOptions opt;
  opt.max_classes = 5;
  auto r = StateClassExplorer(TimedNet(net, ivs), opt).explore();
  EXPECT_TRUE(r.limit_hit);
}

TEST(StateClassGraph, HashDistinguishesDomains) {
  // Same marking, different firing domains -> different classes.
  TimedNet tnet = two_concurrent({0, Bound{10, false}}, {0, Bound{10, false}});
  StateClassExplorer ex(tnet);
  StateClass c0 = ex.initial_class();
  StateClass via_a = ex.fire(c0, 0);
  StateClass via_a2 = ex.fire(c0, 0);
  EXPECT_TRUE(via_a == via_a2);
  EXPECT_EQ(via_a.hash(), via_a2.hash());
}

}  // namespace
}  // namespace gpo::timed
