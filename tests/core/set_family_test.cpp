#include "core/set_family.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/family_interner.hpp"
#include "core/zdd_family.hpp"
#include "models/models.hpp"
#include "petri/conflict.hpp"

namespace gpo::core {
namespace {

TransitionSet ts(std::size_t n, std::initializer_list<std::size_t> bits) {
  return TransitionSet(n, bits);
}

// ---------------------------------------------------------------------------
// Typed tests running identically over both representations.
// ---------------------------------------------------------------------------

template <typename F>
class FamilyTest : public ::testing::Test {};

using FamilyTypes =
    ::testing::Types<ExplicitFamily, BddFamily, InternedFamily, ZddFamily>;
TYPED_TEST_SUITE(FamilyTest, FamilyTypes);

TYPED_TEST(FamilyTest, EmptyFamily) {
  typename TypeParam::Context ctx(4);
  auto e = ctx.empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.count(), 0.0);
  EXPECT_TRUE(e.members().empty());
  EXPECT_FALSE(e.contains(ts(4, {})));
}

TYPED_TEST(FamilyTest, SingleAndContains) {
  typename TypeParam::Context ctx(4);
  auto f = ctx.single(ts(4, {0, 2}));
  EXPECT_FALSE(f.is_empty());
  EXPECT_EQ(f.count(), 1.0);
  EXPECT_TRUE(f.contains(ts(4, {0, 2})));
  EXPECT_FALSE(f.contains(ts(4, {0})));
  EXPECT_FALSE(f.contains(ts(4, {0, 1, 2})));
  // The empty set is a legitimate member, distinct from the empty family.
  auto g = ctx.single(ts(4, {}));
  EXPECT_FALSE(g.is_empty());
  EXPECT_TRUE(g.contains(ts(4, {})));
}

TYPED_TEST(FamilyTest, SetAlgebra) {
  typename TypeParam::Context ctx(4);
  auto ab = ctx.from_sets({ts(4, {0}), ts(4, {1})});
  auto bc = ctx.from_sets({ts(4, {1}), ts(4, {2})});
  EXPECT_EQ(ab.intersect(bc), ctx.single(ts(4, {1})));
  EXPECT_EQ(ab.unite(bc),
            ctx.from_sets({ts(4, {0}), ts(4, {1}), ts(4, {2})}));
  EXPECT_EQ(ab.subtract(bc), ctx.single(ts(4, {0})));
  EXPECT_EQ(ab.subtract(ab), ctx.empty());
  EXPECT_EQ(ab.intersect(ctx.empty()), ctx.empty());
  EXPECT_EQ(ab.unite(ctx.empty()), ab);
}

TYPED_TEST(FamilyTest, ContainingFiltersOnMembership) {
  typename TypeParam::Context ctx(4);
  auto f = ctx.from_sets({ts(4, {0, 1}), ts(4, {1, 2}), ts(4, {3})});
  EXPECT_EQ(f.containing(1),
            ctx.from_sets({ts(4, {0, 1}), ts(4, {1, 2})}));
  EXPECT_EQ(f.containing(3), ctx.single(ts(4, {3})));
  EXPECT_EQ(f.containing(0).containing(2), ctx.empty());
}

TYPED_TEST(FamilyTest, EqualityAndHashAreCanonical) {
  typename TypeParam::Context ctx(4);
  auto a = ctx.from_sets({ts(4, {0}), ts(4, {1})});
  auto b = ctx.from_sets({ts(4, {1}), ts(4, {0})});  // different order
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  auto c = a.unite(ctx.single(ts(4, {2}))).subtract(ctx.single(ts(4, {2})));
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.hash(), c.hash());
}

TYPED_TEST(FamilyTest, MembersRoundTrip) {
  typename TypeParam::Context ctx(5);
  std::vector<TransitionSet> sets{ts(5, {0, 3}), ts(5, {1}), ts(5, {2, 4})};
  auto f = ctx.from_sets(sets);
  auto out = f.members();
  EXPECT_EQ(out.size(), 3u);
  for (const auto& s : sets)
    EXPECT_NE(std::find(out.begin(), out.end(), s), out.end());
}

TYPED_TEST(FamilyTest, MembersRespectsCap) {
  typename TypeParam::Context ctx(4);
  auto f = ctx.from_sets({ts(4, {0}), ts(4, {1}), ts(4, {2}), ts(4, {3})});
  EXPECT_EQ(f.members(2).size(), 2u);
}

TYPED_TEST(FamilyTest, InitialValidSetsOnFig7) {
  auto net = models::make_fig7();
  petri::ConflictInfo ci(net);
  typename TypeParam::Context ctx(net.transition_count());
  auto r0 = ctx.initial_valid_sets(ci);
  EXPECT_EQ(r0.count(), 4.0);  // {A,C},{A,D},{B,C},{B,D}
  auto a = net.find_transition("A");
  auto b = net.find_transition("B");
  auto c = net.find_transition("C");
  auto d = net.find_transition("D");
  TransitionSet ac(net.transition_count());
  ac.set(a);
  ac.set(c);
  EXPECT_TRUE(r0.contains(ac));
  TransitionSet abx(net.transition_count());
  abx.set(a);
  abx.set(b);
  EXPECT_FALSE(r0.contains(abx));  // conflicting pair
  TransitionSet just_a(net.transition_count());
  just_a.set(a);
  EXPECT_FALSE(r0.contains(just_a));  // not maximal
  (void)d;
}

TYPED_TEST(FamilyTest, InitialValidSetsAreMaximalIndependent) {
  auto net = models::make_nsdp(2);
  petri::ConflictInfo ci(net);
  typename TypeParam::Context ctx(net.transition_count());
  auto r0 = ctx.initial_valid_sets(ci);
  for (const TransitionSet& v : r0.members()) {
    for (std::size_t t = 0; t < net.transition_count(); ++t) {
      if (v.test(t)) {
        // Independence.
        EXPECT_FALSE(v.intersects(ci.neighbors(static_cast<std::uint32_t>(t))));
      } else {
        // Maximality.
        EXPECT_TRUE(v.intersects(ci.neighbors(static_cast<std::uint32_t>(t))));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-representation equivalence under random operation sequences.
// ---------------------------------------------------------------------------

TEST(FamilyEquivalence, RandomOperationSequences) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 6;
    ExplicitFamily::Context ectx(n);
    BddFamily::Context bctx(n);
    ZddFamily::Context zctx(n);

    auto random_set = [&]() {
      TransitionSet s(n);
      for (std::size_t i = 0; i < n; ++i)
        if (rng() % 2) s.set(i);
      return s;
    };

    std::vector<ExplicitFamily> epool{ectx.empty()};
    std::vector<BddFamily> bpool{bctx.empty()};
    std::vector<ZddFamily> zpool{zctx.empty()};
    for (int step = 0; step < 60; ++step) {
      std::size_t i = rng() % epool.size();
      std::size_t j = rng() % epool.size();
      switch (rng() % 5) {
        case 0: {
          TransitionSet s = random_set();
          epool.push_back(ectx.single(s));
          bpool.push_back(bctx.single(s));
          zpool.push_back(zctx.single(s));
          break;
        }
        case 1:
          epool.push_back(epool[i].unite(epool[j]));
          bpool.push_back(bpool[i].unite(bpool[j]));
          zpool.push_back(zpool[i].unite(zpool[j]));
          break;
        case 2:
          epool.push_back(epool[i].intersect(epool[j]));
          bpool.push_back(bpool[i].intersect(bpool[j]));
          zpool.push_back(zpool[i].intersect(zpool[j]));
          break;
        case 3:
          epool.push_back(epool[i].subtract(epool[j]));
          bpool.push_back(bpool[i].subtract(bpool[j]));
          zpool.push_back(zpool[i].subtract(zpool[j]));
          break;
        default: {
          petri::TransitionId t = rng() % n;
          epool.push_back(epool[i].containing(t));
          bpool.push_back(bpool[i].containing(t));
          zpool.push_back(zpool[i].containing(t));
          break;
        }
      }
      const ExplicitFamily& e = epool.back();
      const BddFamily& b = bpool.back();
      const ZddFamily& z = zpool.back();
      ASSERT_EQ(e.count(), b.count()) << "trial " << trial << " step " << step;
      ASSERT_EQ(e.count(), z.count()) << "trial " << trial << " step " << step;
      ASSERT_EQ(e.is_empty(), b.is_empty());
      ASSERT_EQ(e.is_empty(), z.is_empty());
      auto em = e.members();
      auto bm = b.members();
      auto zm = z.members();
      std::sort(bm.begin(), bm.end());
      std::sort(zm.begin(), zm.end());
      ASSERT_EQ(em, bm) << "trial " << trial << " step " << step;
      ASSERT_EQ(em, zm) << "trial " << trial << " step " << step;
    }

    // Equality semantics agree pairwise across the pools.
    for (std::size_t i = 0; i < epool.size(); ++i)
      for (std::size_t j = 0; j < epool.size(); ++j) {
        ASSERT_EQ(epool[i] == epool[j], bpool[i] == bpool[j]);
        ASSERT_EQ(epool[i] == epool[j], zpool[i] == zpool[j]);
      }
  }
}

TEST(FamilyEquivalence, InitialValidSetsMatchOnModels) {
  for (auto make : {+[] { return models::make_nsdp(3); },
                    +[] { return models::make_arbiter_tree(4); },
                    +[] { return models::make_overtake(3); },
                    +[] { return models::make_readers_writers(4); }}) {
    auto net = make();
    petri::ConflictInfo ci(net);
    ExplicitFamily::Context ectx(net.transition_count());
    BddFamily::Context bctx(net.transition_count());
    ZddFamily::Context zctx(net.transition_count());
    auto er0 = ectx.initial_valid_sets(ci);
    auto br0 = bctx.initial_valid_sets(ci);
    auto zr0 = zctx.initial_valid_sets(ci);
    EXPECT_EQ(er0.count(), br0.count()) << net.name();
    EXPECT_EQ(er0.count(), zr0.count()) << net.name();
    auto em = er0.members();
    auto bm = br0.members();
    auto zm = zr0.members();
    std::sort(bm.begin(), bm.end());
    std::sort(zm.begin(), zm.end());
    EXPECT_EQ(em, bm) << net.name();
    EXPECT_EQ(em, zm) << net.name();
  }
}

TEST(FamilyContext, UniverseMismatchThrows) {
  ExplicitFamily::Context ectx(4);
  EXPECT_THROW((void)ectx.single(ts(5, {0})), std::invalid_argument);
  BddFamily::Context bctx(4);
  EXPECT_THROW((void)bctx.single(ts(5, {0})), std::invalid_argument);
  ZddFamily::Context zctx(4);
  EXPECT_THROW((void)zctx.single(ts(5, {0})), std::invalid_argument);
}

TEST(ExplicitFamilyContaining, MatchesBruteForceOnRandomFamilies) {
  // Regression for the word/mask fast path in ExplicitFamily::containing:
  // the hoisted single-word probe must select exactly the members a per-bit
  // test(t) loop selects, across word boundaries (universe > 64).
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng() % 140;  // spans 1..3 storage words
    ExplicitFamily::Context ctx(n);
    std::vector<TransitionSet> sets;
    const std::size_t members = rng() % 30;
    for (std::size_t k = 0; k < members; ++k) {
      TransitionSet s(n);
      for (std::size_t i = 0; i < n; ++i)
        if (rng() % 4 == 0) s.set(i);
      sets.push_back(s);
    }
    ExplicitFamily f = ctx.from_sets(sets);
    for (int probe = 0; probe < 8; ++probe) {
      const petri::TransitionId t =
          static_cast<petri::TransitionId>(rng() % n);
      std::vector<TransitionSet> expect;
      for (const TransitionSet& s : f.members())
        if (s.test(t)) expect.push_back(s);
      EXPECT_EQ(f.containing(t).members(), expect)
          << "trial " << trial << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace gpo::core
