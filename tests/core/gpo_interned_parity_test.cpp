// Parity suite: the interned GPO path (hash-consed families + op cache) must
// be observationally identical to the seed ExplicitFamily path — same state
// counts, step mix, fireability verdicts, witnesses, and counterexamples —
// on the paper's models and on random nets. Also checks the interner stats
// the result carries (dedup ratio, cache hit rate) are populated and sane.
#include <gtest/gtest.h>

#include "core/gpo.hpp"
#include "models/models.hpp"

namespace gpo::core {
namespace {

using petri::PetriNet;

void expect_parity(const PetriNet& net, const GpoOptions& opt = {}) {
  auto seed = run_gpo(net, FamilyKind::kExplicit, opt);
  auto interned = run_gpo(net, FamilyKind::kInterned, opt);

  EXPECT_EQ(seed.state_count, interned.state_count) << net.name();
  EXPECT_EQ(seed.edge_count, interned.edge_count) << net.name();
  EXPECT_EQ(seed.multiple_steps, interned.multiple_steps) << net.name();
  EXPECT_EQ(seed.single_steps, interned.single_steps) << net.name();
  EXPECT_EQ(seed.deadlock_found, interned.deadlock_found) << net.name();
  EXPECT_EQ(seed.bailed_to_classical, interned.bailed_to_classical)
      << net.name();
  EXPECT_EQ(seed.ignoring_expansions, interned.ignoring_expansions)
      << net.name();
  EXPECT_EQ(seed.fireable_transitions, interned.fireable_transitions)
      << net.name();
  EXPECT_EQ(seed.deadlock_witness, interned.deadlock_witness) << net.name();
  EXPECT_EQ(seed.counterexample, interned.counterexample) << net.name();

  // Only the interned path reports family stats, and they must be coherent.
  EXPECT_FALSE(seed.family_stats.available) << net.name();
  ASSERT_TRUE(interned.family_stats.available) << net.name();
  EXPECT_GT(interned.family_stats.distinct_families, 0u) << net.name();
  EXPECT_GE(interned.family_stats.dedup_ratio, 1.0) << net.name();
  EXPECT_GT(interned.family_stats.families_bytes, 0u) << net.name();
}

TEST(GpoInternedParity, PaperModels) {
  expect_parity(models::make_diamond(5));
  expect_parity(models::make_conflict_chain(6));
  expect_parity(models::make_nsdp(4));
  expect_parity(models::make_arbiter_tree(4));
  expect_parity(models::make_readers_writers(6));
  expect_parity(models::make_fig3());
  expect_parity(models::make_fig5());
  expect_parity(models::make_fig7());
}

TEST(GpoInternedParity, GuardAndDelegationPathsAgree) {
  // overtake exercises the anti-ignoring guard, slotted_ring (with a low
  // threshold) the fragmentation bail-out; parity must hold through both
  // delegated classical searches.
  expect_parity(models::make_overtake(4));
  GpoOptions opt;
  opt.delegate_after_states = 500;
  expect_parity(models::make_slotted_ring(3), opt);
}

TEST(GpoInternedParity, StopAtFirstDeadlockAndWitnessFilter) {
  GpoOptions opt;
  opt.stop_at_first_deadlock = true;
  expect_parity(models::make_nsdp(4), opt);

  PetriNet net = models::make_nsdp(3);
  GpoOptions filt;
  filt.required_witness_place = net.find_place("hasL_0");
  expect_parity(net, filt);
}

TEST(GpoInternedParity, RandomNets) {
  for (std::uint64_t seed = 2200; seed < 2260; ++seed) {
    models::RandomNetParams p;
    p.machines = 2 + seed % 3;
    p.states_per_machine = 3;
    p.transitions = 5 + seed % 10;
    p.seed = seed;
    PetriNet net = models::make_random_net(p);
    GpoOptions opt;
    opt.max_seconds = 20;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_parity(net, opt);
  }
}

TEST(GpoInternedParity, DedupRatioClearsTwoOnHeadlineFamilies) {
  // The acceptance bar of the interner PR: at least 2x fewer family
  // constructions than stored families on the Fig-2/Table-1 workloads.
  for (auto make : {+[] { return models::make_conflict_chain(10); },
                    +[] { return models::make_readers_writers(8); }}) {
    PetriNet net = make();
    auto r = run_gpo(net, FamilyKind::kInterned);
    ASSERT_TRUE(r.family_stats.available) << net.name();
    EXPECT_GE(r.family_stats.dedup_ratio, 2.0) << net.name();
    EXPECT_GT(r.family_stats.op_cache_hit_rate, 0.5) << net.name();
  }
}

TEST(GpoInternedParity, CounterexampleReplaysOnInternedPath) {
  for (auto make : {+[] { return models::make_nsdp(4); },
                    +[] { return models::make_conflict_chain(5); },
                    +[] { return models::make_fig7(); }}) {
    PetriNet net = make();
    auto r = run_gpo(net, FamilyKind::kInterned);
    ASSERT_TRUE(r.deadlock_found) << net.name();
    ASSERT_FALSE(r.counterexample.empty()) << net.name();
    petri::Marking m = net.initial_marking();
    for (petri::TransitionId t : r.counterexample) {
      ASSERT_TRUE(net.enabled(t, m)) << net.name();
      m = net.fire(t, m);
    }
    EXPECT_EQ(m, *r.deadlock_witness) << net.name();
    EXPECT_TRUE(net.is_deadlocked(m)) << net.name();
  }
}

}  // namespace
}  // namespace gpo::core
